// Command doclint enforces the documentation contract of the public
// API surface: every exported symbol in the given package directories
// must carry a doc comment, and every package must have package-level
// godoc. CI runs it over the facade and service packages and fails the
// build on violations.
//
// Usage:
//
//	go run ./tools/doclint <pkg-dir>...
//
// A grouped const/var/type declaration is satisfied by a doc comment on
// the group. Methods on unexported receiver types are skipped — they
// are not part of the public surface. Test files are ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doclint <pkg-dir>...")
		os.Exit(2)
	}
	violations := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		violations += n
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented exported symbols\n", violations)
		os.Exit(1)
	}
}

// lintDir parses the non-test Go files of one package directory and
// reports each undocumented exported symbol, returning the count.
func lintDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0, fmt.Errorf("no Go files")
	}

	violations := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s: %s lacks a doc comment\n", fset.Position(pos), what)
		violations++
	}

	hasPkgDoc := false
	for _, f := range files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		fmt.Printf("%s: package %s lacks package-level godoc\n", dir, files[0].Name.Name)
		violations++
	}

	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				if d.Recv != nil && !exportedReceiver(d.Recv) {
					continue
				}
				report(d.Pos(), "func "+d.Name.Name)
			case *ast.GenDecl:
				if d.Tok == token.IMPORT || d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && sp.Doc == nil && sp.Comment == nil {
							report(sp.Pos(), "type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						if sp.Doc != nil || sp.Comment != nil {
							continue
						}
						for _, n := range sp.Names {
							if n.IsExported() {
								report(n.Pos(), d.Tok.String()+" "+n.Name)
								break
							}
						}
					}
				}
			}
		}
	}
	return violations, nil
}

// exportedReceiver reports whether a method's receiver names an
// exported type (stripping pointers and type parameters).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
