package chordal_test

import (
	"context"
	"testing"

	"chordal"
)

// This file is the differential half of the engine bake-off: several
// independent implementations of "extract a chordal subgraph" now live
// behind one Engine interface, so each one's output can be judged by
// every *other* implementation's notion of chordality. A bug would
// have to fool the MCS+PEO verifier, the PEO-based chordalalg stack,
// and the elimination game identically to slip through.

// differentialSources is the zoo of the cross-engine checks: one graph
// per structural family, sized for test time.
var differentialSources = []string{
	"rmat-er:8:3", "rmat-g:9:11", "rmat-b:8:5",
	"gnm:400:1600:5", "ws:300:6:0.1:9", "geo:300:0.08:11", "ktree:200:4:13",
	"gse5140-crt:64:3",
}

// differentialEngines lists every engine configuration of the grid.
func differentialEngines() []struct {
	label string
	spec  chordal.Spec
} {
	type row = struct {
		label string
		spec  chordal.Spec
	}
	return []row{
		{"parallel", chordal.Spec{Engine: chordal.EngineParallel}},
		{"serial", chordal.Spec{Engine: chordal.EngineSerial}},
		{"partitioned", chordal.Spec{Engine: chordal.EnginePartitioned, EngineConfig: chordal.EngineConfig{Partitions: 4}}},
		{"sharded", chordal.Spec{Engine: chordal.EngineSharded, EngineConfig: chordal.EngineConfig{Shards: 3}}},
		{"external", chordal.Spec{Engine: chordal.EngineExternal, EngineConfig: chordal.EngineConfig{Shards: 3, ResidentShards: 2}}},
		{"dearing", chordal.Spec{Engine: chordal.EngineDearing}},
		{"dearing-start7", chordal.Spec{Engine: chordal.EngineDearing, EngineConfig: chordal.EngineConfig{Start: 7}}},
		{"elimination-mindeg", chordal.Spec{Engine: chordal.EngineElimination, EngineConfig: chordal.EngineConfig{Order: chordal.OrderMinDegree}}},
		{"elimination-natural", chordal.Spec{Engine: chordal.EngineElimination, EngineConfig: chordal.EngineConfig{Order: chordal.OrderNatural}}},
	}
}

// TestEngineDifferentialGrid cross-verifies every engine's output with
// the independent chordality oracles: the MCS+PEO verifier (what the
// verify stage runs), the hole finder (a constructive witness search),
// the chordalalg PEO (which re-derives and re-checks its own ordering),
// and the metamorphic fill identity — the elimination game on a chordal
// graph under its own perfect elimination ordering creates exactly zero
// fill. Each output must also be a subgraph of its input, and the
// dearing engine's result must be maximal from every start vertex.
// Runs under -race in CI.
func TestEngineDifferentialGrid(t *testing.T) {
	for _, src := range differentialSources {
		src := src
		t.Run(src, func(t *testing.T) {
			t.Parallel()
			acq, err := chordal.Spec{Source: src, Engine: chordal.EngineNone}.Run()
			if err != nil {
				t.Fatal(err)
			}
			g := acq.Input
			for _, eng := range differentialEngines() {
				res, err := chordal.Runner{Input: g}.Run(context.Background(), eng.spec)
				if err != nil {
					t.Fatalf("%s: %v", eng.label, err)
				}
				sub := res.Subgraph
				if sub == nil || sub.NumEdges() == 0 {
					t.Fatalf("%s: empty extraction", eng.label)
				}
				if !isSubgraphOf(sub, g) {
					t.Errorf("%s: output contains an edge absent from the input", eng.label)
				}
				// Oracle 1: MCS + PEO check (internal/verify).
				if !chordal.IsChordal(sub) {
					t.Errorf("%s: verifier says output is not chordal", eng.label)
				}
				// Oracle 2: the hole finder must fail to produce a witness.
				if hole := chordal.FindHole(sub); hole != nil {
					t.Errorf("%s: found chordless cycle %v in output", eng.label, hole)
				}
				// Oracle 3: chordalalg derives its own PEO or errors.
				peo, err := chordal.PerfectEliminationOrdering(sub)
				if err != nil {
					t.Errorf("%s: PEO derivation failed: %v", eng.label, err)
					continue
				}
				// Metamorphic identity: zero fill under the subgraph's own
				// PEO — ties the elimination game to the verifier.
				fill, err := chordal.Fill(sub, peo)
				if err != nil {
					t.Errorf("%s: fill: %v", eng.label, err)
				} else if fill != 0 {
					t.Errorf("%s: chordal output has fill %d under its own PEO, want 0", eng.label, fill)
				}
				// The serial-growth engines guarantee maximality from any
				// start vertex.
				if eng.spec.Engine == chordal.EngineDearing || eng.spec.Engine == chordal.EngineSerial {
					if !chordal.IsMaximalChordal(g, sub) {
						t.Errorf("%s: output is not a maximal chordal subgraph", eng.label)
					}
				}
			}
		})
	}
}

// TestEngineQualityConsistency pins the quality metrics' internal
// consistency on one representative run per engine: retention matches
// the actual edge counts, the subgraph's self-fill is zero, and the
// chordal invariants respect their definitional relations (chromatic
// number = clique number = treewidth + 1 on a chordal graph).
func TestEngineQualityConsistency(t *testing.T) {
	for _, eng := range differentialEngines() {
		spec := eng.spec
		spec.Source = "rmat-g:9:11"
		spec.Verify = true
		res, err := spec.Run()
		if err != nil {
			t.Fatalf("%s: %v", eng.label, err)
		}
		q := res.Quality
		if q == nil {
			t.Fatalf("%s: quality metrics missing", eng.label)
		}
		if q.EdgesRetained != res.Subgraph.NumEdges() || q.EdgesInput != res.Input.NumEdges() {
			t.Errorf("%s: retention counts %d/%d, want %d/%d",
				eng.label, q.EdgesRetained, q.EdgesInput, res.Subgraph.NumEdges(), res.Input.NumEdges())
		}
		if !q.FillComputed || q.SubgraphFill != 0 {
			t.Errorf("%s: subgraph self-fill computed=%t fill=%d, want computed with 0",
				eng.label, q.FillComputed, q.SubgraphFill)
		}
		if !q.CliquesComputed {
			t.Fatalf("%s: chordal invariants skipped on a small input", eng.label)
		}
		if q.MaxCliqueSize != q.Treewidth+1 {
			t.Errorf("%s: max clique %d != treewidth %d + 1", eng.label, q.MaxCliqueSize, q.Treewidth)
		}
		if q.ChromaticNumber != q.MaxCliqueSize {
			t.Errorf("%s: chromatic number %d != clique number %d on a chordal (perfect) graph",
				eng.label, q.ChromaticNumber, q.MaxCliqueSize)
		}
	}
}
