// Genecorrelation reproduces the paper's biological pipeline end to
// end: synthesize a gene-expression matrix, build the Pearson
// correlation network exactly as the paper describes (connect pairs
// with rho >= 0.95), extract its maximal chordal subgraph, and compare
// the structural properties the sampling literature cares about —
// this is the noise-reducing network sampling application of the
// paper's references [4] and [5].
//
// Run with:
//
//	go run ./examples/genecorrelation
package main

import (
	"fmt"
	"log"

	"chordal"
	"chordal/internal/analysis"
	"chordal/internal/biogen"
)

func main() {
	// 1. Synthetic microarray: 1200 genes, 120 samples, co-expression
	// modules of ~15 genes (stand-in for the GEO datasets, which are
	// not redistributable).
	const genes, samples, moduleSize = 1200, 60, 15
	fmt.Printf("synthesizing expression matrix: %d genes x %d samples\n", genes, samples)
	expr, modules := biogen.GenerateExpression(genes, samples, moduleSize, 7)
	numModules := 0
	for _, m := range modules {
		if m+1 > numModules {
			numModules = m + 1
		}
	}
	fmt.Printf("planted co-expression modules: %d\n\n", numModules)

	// 2. Correlation network at the paper's threshold.
	const rho = 0.95
	g := biogen.CorrelationNetwork(expr, rho)
	fmt.Printf("correlation network (rho >= %.2f): %s\n", rho, chordal.ComputeStats(g))
	fmt.Printf("mean clustering coefficient: %.3f\n", analysis.GlobalClusteringCoefficient(g))
	fmt.Printf("degree assortativity: %+.3f\n\n", analysis.DegreeAssortativity(g))

	// 3. Extract the maximal chordal subgraph (the sampling step).
	res, err := chordal.Extract(g, chordal.Options{StitchComponents: true})
	if err != nil {
		log.Fatal(err)
	}
	sub := res.ToGraph()
	fmt.Printf("maximal chordal subgraph: %d of %d edges (%.1f%%), %d iterations\n",
		res.NumChordalEdges(), g.NumEdges(),
		100*float64(res.NumChordalEdges())/float64(g.NumEdges()), len(res.Iterations))
	fmt.Printf("chordal: %v\n\n", chordal.IsChordal(sub))

	// 4. What did the sample preserve? Hub membership and module
	// reachability are the properties refs [4,5] track.
	origDeg := topK(g, 10)
	subDeg := topK(sub, 10)
	kept := 0
	for v := range origDeg {
		if subDeg[v] {
			kept++
		}
	}
	fmt.Printf("hub preservation: %d of 10 highest-degree genes stay in the sample's top 10\n", kept)

	_, gComps := analysis.Components(g)
	_, sComps := analysis.Components(sub)
	fmt.Printf("connected components: %d (network) vs %d (chordal sample with stitching)\n", gComps, sComps)

	// 5. The payoff: NP-hard analyses become tractable on the sample.
	clique, err := chordal.MaxClique(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("largest co-expression clique in the sample: %d genes %v...\n",
		len(clique), clique[:min(4, len(clique))])
}

// topK returns the k highest-degree vertices of g as a set.
func topK(g *chordal.Graph, k int) map[int32]bool {
	type dv struct {
		v int32
		d int
	}
	best := make([]dv, 0, k+1)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		d := g.Degree(v)
		best = append(best, dv{v, d})
		for i := len(best) - 1; i > 0 && best[i].d > best[i-1].d; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	out := make(map[int32]bool, k)
	for _, e := range best {
		out[e.v] = true
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
