// Quickstart walks Algorithm 1 step by step on a small graph, in the
// spirit of the paper's Figure 1: it prints every lowest-parent test,
// which edges join the chordal set and why, and verifies the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chordal"
)

func main() {
	// A small graph with one chordless 4-cycle (2-4-6-5-2), a triangle
	// (0-1-2) and a couple of tails — enough structure for at least one
	// edge to be rejected.
	b := chordal.NewBuilder(8)
	edges := [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, // triangle
		{2, 4}, {2, 5}, {4, 6}, {5, 6}, // 4-cycle 2-4-6-5
		{3, 6}, // tail into the cycle
		{6, 7}, // pendant
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	fmt.Printf("input graph: %s\n\n", chordal.ComputeStats(g))

	// Trace every subset test. One worker keeps the printout in
	// deterministic order.
	fmt.Println("extraction trace (parent -> child, subset test result):")
	res, err := chordal.Extract(g, chordal.Options{
		Workers: 1,
		OnEvent: func(iter int, parent, child int32, accepted bool) {
			verdict := "REJECT (child's chordal set not within parent's)"
			if accepted {
				verdict = "accept"
			}
			fmt.Printf("  iter %d: test edge (%d,%d): %s\n", iter, parent, child, verdict)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchordal edge set EC (%d of %d edges):\n", res.NumChordalEdges(), g.NumEdges())
	for _, e := range res.Edges {
		fmt.Printf("  (%d,%d)\n", e.U, e.V)
	}
	fmt.Printf("\niterations: %d, queue sizes %v\n", len(res.Iterations), res.QueueSizes())

	sub := res.ToGraph()
	fmt.Printf("output is chordal: %v\n", chordal.IsChordal(sub))
	fmt.Printf("output is maximal: %v\n", chordal.IsMaximalChordal(g, sub))
	if !chordal.IsMaximalChordal(g, sub) {
		// This small graph exhibits the gap in the paper's Theorem 2
		// (see DESIGN.md §5): both 4-cycle closings were rejected, yet
		// after the rejections one of them no longer closes any cycle.
		// The repair pass re-admits safely addable edges.
		repaired, err := chordal.Extract(g, chordal.Options{RepairMaximality: true})
		if err != nil {
			log.Fatal(err)
		}
		rsub := repaired.ToGraph()
		fmt.Printf("after RepairMaximality: %d edges, maximal: %v\n",
			repaired.NumChordalEdges(), chordal.IsMaximalChordal(g, rsub))
	}

	// The subset test stores, for every vertex, its smaller chordal
	// neighbors — the C sets of the paper.
	fmt.Println("\nper-vertex chordal sets C[v]:")
	for v := int32(0); v < 8; v++ {
		fmt.Printf("  C[%d] = %v\n", v, res.ChordalNeighbors(v))
	}
}
