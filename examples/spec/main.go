// Spec demonstrates the declarative run description shared by the
// library, the CLI and the HTTP service: build one chordal.Spec, watch
// its unified event stream, read its canonical cache identity, round
// trip it through JSON, and swap the extraction engine by name.
//
// Run with:
//
//	go run ./examples/spec
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"chordal"
)

func main() {
	// One declarative description of the whole run: acquire a skewed
	// R-MAT graph, extract with the sharded engine, verify the result.
	spec := chordal.Spec{
		Source:       "rmat-g:12:7",
		EngineConfig: chordal.EngineConfig{Shards: 4},
		Verify:       true,
	}

	// Canonical() is the run's identity: the exact string the service
	// uses as its cache and dedup key. Any spelling of the same run —
	// different JSON key order, omitted defaults, upper-case source —
	// canonicalizes to the same line.
	canon, err := spec.Canonical()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("canonical identity:\n  %s\n\n", canon)

	respelled := chordal.Spec{
		Source: " RMAT-G:12:7:8 ",
		Engine: "sharded",
		EngineConfig: chordal.EngineConfig{
			Shards:   4,
			Variant:  "auto",
			Schedule: "dataflow",
			Workers:  2, // execution width is not identity
		},
		Verify: true,
	}
	if c2, _ := respelled.Canonical(); c2 != canon {
		log.Fatalf("respelled spec diverged: %s", c2)
	}
	fmt.Println("respelled spec (upper-case source, spelled-out defaults,")
	fmt.Println("explicit workers) canonicalizes identically.")

	// Specs round trip through JSON — this is exactly what travels in a
	// POST /v1/jobs body or sits in a config file.
	norm, err := spec.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	blob, _ := json.MarshalIndent(norm, "  ", "  ")
	fmt.Printf("\nas JSON:\n  %s\n\n", blob)

	// Run it with an Observer on the unified event stream: stage
	// begin/end with timing, per-shard iterations, the verify outcome.
	events := 0
	res, err := chordal.Runner{Observer: func(ev chordal.Event) {
		events++
		switch ev.Type {
		case chordal.EventStageBegin:
			fmt.Printf("  -> %s\n", ev.Stage)
		case chordal.EventStageEnd:
			fmt.Printf("  <- %-8s %8.2fms\n", ev.Stage, ev.Millis)
		case chordal.EventIteration:
			if ev.Shard != nil {
				fmt.Printf("     shard %d iter %d: %d accepted\n", *ev.Shard, ev.Index, ev.EdgesAccepted)
			}
		case chordal.EventVerify:
			fmt.Printf("     chordal: %v\n", *ev.Chordal)
		}
	}}.Run(context.Background(), spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d events; %d of %d edges kept across %d shards\n",
		events, res.Subgraph.NumEdges(), res.Input.NumEdges(), res.Shard.Shards)

	// Engines are a registry keyed by name: the same spec runs the
	// serial baseline by changing one field (conflicting parameters,
	// like shards on the serial engine, are validation errors).
	serial := spec
	serial.Engine = chordal.EngineSerial
	serial.Shards = 0
	sres, err := serial.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistered engines: %v\n", chordal.EngineNames())
	fmt.Printf("serial baseline on the same source: %d edges in %s\n",
		sres.Subgraph.NumEdges(), sres.SerialDuration)

	if err := (chordal.Spec{Source: "rmat-g:12:7", Engine: "serial",
		EngineConfig: chordal.EngineConfig{Shards: 4}}).Validate(); err != nil {
		fmt.Printf("conflicting selection rejected: %v\n", err)
	}
}
