// Scaling runs the strong-scaling experiment of the paper's Figures 4-6
// on the host machine: the same extraction at 1, 2, 4, ... workers for
// both the optimized and unoptimized variants, next to the Cray XMT
// model's projection from the instrumented trace.
//
// Run with:
//
//	go run ./examples/scaling            # scale-15 RMAT-G
//	go run ./examples/scaling -scale 17 -preset b
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"

	"chordal"
	"chordal/internal/core"
	"chordal/internal/machine"
)

func main() {
	var (
		scale  = flag.Int("scale", 15, "R-MAT scale")
		preset = flag.String("preset", "g", "er|g|b")
		trials = flag.Int("trials", 3, "trials per point (fastest kept)")
	)
	flag.Parse()

	var p chordal.RMATPreset
	switch *preset {
	case "er":
		p = chordal.RMATER
	case "g":
		p = chordal.RMATG
	case "b":
		p = chordal.RMATB
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	g, err := chordal.GenerateRMAT(p, *scale, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %s\n", chordal.ComputeStats(g))

	maxP := runtime.GOMAXPROCS(0)
	fmt.Printf("host sweep to %d workers; XMT model projected to 128 processors\n\n", maxP)
	fmt.Printf("%8s %14s %14s %14s | %14s\n", "workers", "host-Unopt", "host-Opt", "speedup(Opt)", "XMT-Opt@same-p")

	var trace machine.Trace
	var base float64
	for procs := 1; procs <= maxP; procs *= 2 {
		bestU, bestO := measure(g, procs, chordal.VariantUnoptimized, *trials), measure(g, procs, chordal.VariantOptimized, *trials)
		if procs == 1 {
			base = bestO.seconds
		}
		if trace.Work == nil {
			trace = machine.TraceFromResult(bestO.res, g.NumEdges())
		}
		xmt := machine.DefaultXMT().Predict(trace, procs)
		fmt.Printf("%8d %13.2fms %13.2fms %14.2f | %13.2fms\n",
			procs, bestU.seconds*1000, bestO.seconds*1000, base/bestO.seconds,
			float64(xmt.Microseconds())/1000)
	}

	fmt.Printf("\nXMT model full machine (128p, Opt trace): %v\n",
		machine.DefaultXMT().Predict(trace, 128))
	fmt.Printf("XMT model speedup at 128p: %.1f (paper Table II: 28-48 on synthetic inputs)\n",
		machine.Speedup(machine.DefaultXMT(), trace, 128))
}

type point struct {
	res     *core.Result
	seconds float64
}

func measure(g *chordal.Graph, workers int, v chordal.Variant, trials int) point {
	best := point{seconds: 1e18}
	for i := 0; i < trials; i++ {
		res, err := chordal.Extract(g, chordal.Options{Workers: workers, Variant: v})
		if err != nil {
			log.Fatal(err)
		}
		if s := res.Total.Seconds(); s < best.seconds {
			best = point{res: res, seconds: s}
		}
	}
	return best
}
