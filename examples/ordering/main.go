// Ordering demonstrates the sparse-factorization application of
// chordal subgraph extraction: an elimination ordering that is a
// perfect elimination ordering of a large extracted chordal subgraph
// confines all fill to the non-chordal remainder, competing with the
// classic minimum-degree heuristic.
//
// Run with:
//
//	go run ./examples/ordering
package main

import (
	"fmt"
	"log"

	"chordal"
)

func main() {
	instances := []struct {
		name string
		g    *chordal.Graph
	}{
		{"k-tree(1000,3) + 500 noise edges", noisyKTree()},
		{"random geometric, avg degree 8", chordal.GenerateGeometric(1500, 0.041, 7)},
		{"RMAT-G scale 10", mustRMAT()},
	}
	for _, inst := range instances {
		fmt.Printf("== %s: %s ==\n", inst.name, chordal.ComputeStats(inst.g))
		n := inst.g.NumVertices()

		natural := make([]int32, n)
		for i := range natural {
			natural[i] = int32(i)
		}
		fNat, err := chordal.Fill(inst.g, natural)
		if err != nil {
			log.Fatal(err)
		}
		fMD, err := chordal.Fill(inst.g, chordal.MinDegreeOrder(inst.g))
		if err != nil {
			log.Fatal(err)
		}
		guided, err := chordal.ChordalGuidedOrder(inst.g)
		if err != nil {
			log.Fatal(err)
		}
		fCh, err := chordal.Fill(inst.g, guided)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  fill: natural %8d | min-degree %8d | chordal-guided %8d\n\n", fNat, fMD, fCh)
	}
	fmt.Println("zero fill is possible exactly when the graph is chordal; the")
	fmt.Println("chordal-guided order pays fill only for edges the extractor rejected.")
}

func noisyKTree() *chordal.Graph {
	// A treewidth-3 backbone plus noise: the planted chordal part is a
	// best case for the guided ordering.
	base := chordal.GenerateKTree(1000, 3, 42)
	us, vs := base.EdgeList()
	// Add 500 pseudo-random extra edges.
	state := uint64(99)
	next := func(n int) int32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int32(state % uint64(n))
	}
	added := 0
	for added < 500 {
		u, v := next(1000), next(1000)
		if u == v || base.HasEdge(u, v) {
			continue
		}
		us = append(us, u)
		vs = append(vs, v)
		added++
	}
	return chordal.BuildFromEdges(1000, us, vs)
}

func mustRMAT() *chordal.Graph {
	g, err := chordal.GenerateRMAT(chordal.RMATG, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	return g
}
