// Cliques demonstrates the paper's motivating application: problems
// that are NP-hard on general graphs — maximum clique, chromatic
// number, treewidth — become linear-time once a chordal subgraph is
// extracted, giving fast lower bounds and orderings for the original
// graph.
//
// Run with:
//
//	go run ./examples/cliques
package main

import (
	"fmt"
	"log"

	"chordal"
)

func main() {
	// A scale-12 RMAT-B graph: skewed degrees, dense local communities.
	g, err := chordal.GenerateRMAT(chordal.RMATB, 12, 2012)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %s\n", chordal.ComputeStats(g))
	fmt.Println("maximum clique / chromatic number are NP-hard here...")

	res, err := chordal.Extract(g, chordal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sub := res.ToGraph()
	fmt.Printf("\nextracted maximal chordal subgraph: %d edges in %s (%d iterations)\n",
		res.NumChordalEdges(), res.Total, len(res.Iterations))

	// ...but linear-time on the chordal subgraph.
	clique, err := chordal.MaxClique(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaximum clique of the subgraph: %d vertices %v\n", len(clique), clique)
	// Any clique of a subgraph is a clique of the original: verify and
	// report it as a lower bound.
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			if !g.HasEdge(clique[i], clique[j]) {
				log.Fatal("clique not present in original graph?!")
			}
		}
	}
	fmt.Printf("=> the original graph's clique number is at least %d\n", len(clique))

	colors, k, err := chordal.Coloring(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal coloring of the subgraph: %d colors (= its clique number)\n", k)
	conflicts := 0
	sub.Edges(func(u, v int32) {
		if colors[u] == colors[v] {
			conflicts++
		}
	})
	fmt.Printf("coloring conflicts on subgraph edges: %d\n", conflicts)

	td, err := chordal.Decompose(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntree decomposition: width %d, %d bags\n", td.Width, len(td.Bags))
	fmt.Println("(a chordal subgraph's clique tree seeds elimination orderings for")
	fmt.Println(" sparse factorization preconditioners on the full graph)")

	// A PEO of the subgraph is a useful elimination order for the
	// original matrix.
	peo, err := chordal.PerfectEliminationOrdering(sub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nperfect elimination ordering computed (first 8: %v)\n", peo[:8])
}
