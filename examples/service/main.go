// Service walks the extraction service's HTTP API end to end: submit a
// job, follow its server-sent-event progress stream, read the status
// metrics, download the resulting chordal subgraph, and demonstrate
// that resubmitting the same spec is a cache hit.
//
// By default it starts an in-process server on a loopback port so the
// example is self-contained; point it at a running chordald with -addr.
//
// Run with:
//
//	go run ./examples/service
//	go run ./examples/service -addr localhost:8080 -source rmat-g:16:42
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"

	"chordal/internal/service"
)

func main() {
	addr := flag.String("addr", "", "address of a running chordald (empty = start one in-process)")
	source := flag.String("source", "rmat-g:14:42", "input Source spec to submit")
	flag.Parse()

	base := "http://" + *addr
	if *addr == "" {
		// Self-contained mode: serve the extraction service from this
		// process on a loopback port.
		svc := service.New(service.Config{})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go http.Serve(ln, svc)
		base = "http://" + ln.Addr().String()
		fmt.Printf("started in-process server on %s\n\n", ln.Addr())
	}

	// 1. Submit a job: POST /v1/jobs with a Source spec and options.
	status := submit(base, *source)
	fmt.Printf("submitted job %s (state %s, source %s)\n\n", status.ID, status.State, status.Source)

	// 2. Follow the SSE progress stream until the terminal done event.
	fmt.Println("event stream:")
	status = follow(base, status.ID)

	// 3. Status + metrics.
	if status.State != service.StateDone {
		log.Fatalf("job ended %s: %s", status.State, status.Error)
	}
	m := status.Metrics
	fmt.Printf("\njob done: %d vertices, %d input edges -> %d chordal edges (%.1f%%) in %d iterations\n",
		m.Vertices, m.InputEdges, m.ChordalEdges, m.EdgesKeptPct, m.Iterations)
	if m.Chordal != nil {
		fmt.Printf("verified chordal: %v\n", *m.Chordal)
	}

	// 4. Fetch the subgraph as a text edge list.
	resp, err := http.Get(base + "/v1/jobs/" + status.ID + "/result?format=edges")
	if err != nil {
		log.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	fmt.Println("\nresult (first lines):")
	for i := 0; i < 4 && sc.Scan(); i++ {
		fmt.Printf("  %s\n", sc.Text())
	}
	resp.Body.Close()

	// 5. Resubmit the same spec, spelled differently: served from cache.
	again := submit(base, " "+strings.ToUpper(*source)+" ")
	fmt.Printf("\nresubmitted as %q: state %s, cached %t (no re-extraction)\n",
		strings.ToUpper(*source), again.State, again.Cached)
}

// submit posts a JSON job request and decodes the returned status.
func submit(base, source string) service.JobStatus {
	body, _ := json.Marshal(service.JobRequest{Source: source})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	if st.Error != "" && st.ID == "" {
		log.Fatalf("submission rejected: %s", st.Error)
	}
	return st
}

// follow prints the job's SSE stream until the done event, returning
// the terminal status it carries.
func follow(base, id string) service.JobStatus {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "done" {
				var st service.JobStatus
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %-10s state=%s\n", event, st.State)
				return st
			}
			fmt.Printf("  %-10s %s\n", event, data)
		}
	}
	log.Fatalf("event stream ended without done (err=%v)", sc.Err())
	return service.JobStatus{}
}
