package chordal

import (
	"context"
	"fmt"
	"strings"
	"time"

	"chordal/internal/analysis"
	"chordal/internal/graph"
	"chordal/internal/quality"
	"chordal/internal/verify"
)

// This file defines the declarative Spec — the single description of
// an end-to-end run shared by the library, the CLI tools, and the HTTP
// service — and the Runner that executes it. A Spec is versioned and
// JSON-round-trippable; Canonical() is its one normalized encoding,
// which the service uses verbatim as its cache and dedup key. Engine
// selection is explicit: conflicting parameters (say, shards on the
// serial engine) are validation errors, never silent precedence.

// SpecVersion is the current Spec schema version. Normalize fills it
// into a zero V and rejects any other value, so persisted specs from a
// future incompatible schema fail loudly instead of being misread.
const SpecVersion = 1

// EngineConfig parameterizes an extraction Engine. Its JSON fields
// flatten into the Spec object. The zero value selects the defaults
// (auto variant, dataflow schedule, machine-width workers).
type EngineConfig struct {
	// Variant is the kernel code path: auto|opt|unopt (default auto).
	Variant string `json:"variant,omitempty"`
	// Schedule is the subset-test ordering: dataflow|async|sync
	// (default dataflow).
	Schedule string `json:"schedule,omitempty"`
	// Workers bounds the engine's parallelism; <= 0 means machine
	// width. Excluded from Canonical: the dataflow schedule's edge set
	// is worker-count independent, and for the async schedule any run's
	// output is an equally valid representative, so a repeat of the
	// same spec at a different parallelism still shares one identity.
	Workers int `json:"workers,omitempty"`
	// Grain overrides the extraction loop's parallel-for chunk size;
	// <= 0 uses the startup calibration (internal/tune). Excluded from
	// Canonical: a pure speed knob, it never changes the edge set.
	Grain int `json:"grain,omitempty"`
	// DegreeThreshold overrides the chordal-set size at which the
	// subset test switches to the hybrid bitset probe; 0 uses the
	// startup calibration, negative forces merge scan only. Excluded
	// from Canonical for the same reason as Grain.
	DegreeThreshold int `json:"degreeThreshold,omitempty"`
	// Repair enables the maximality repair post-pass (DESIGN.md §5).
	Repair bool `json:"repair,omitempty"`
	// Stitch enables the component stitch post-pass.
	Stitch bool `json:"stitch,omitempty"`
	// Partitions is the part count of the partitioned engine; setting
	// it with any other engine is a validation error.
	Partitions int `json:"partitions,omitempty"`
	// Shards is the shard count of the sharded engine; setting it with
	// any other engine is a validation error.
	Shards int `json:"shards,omitempty"`
	// ShardStitchOnly restricts the sharded (and external) engine's
	// border reconciliation to the spanning stitch (bridges only).
	// Normalize clears it on every other engine so it cannot split
	// identities.
	ShardStitchOnly bool `json:"shardStitchOnly,omitempty"`
	// ResidentShards bounds how many decoded shards the external engine
	// holds in memory at once (the one being extracted plus prefetch);
	// <= 0 defaults to 2, the minimum that overlaps IO with extraction.
	// Excluded from Canonical: a pure residency/speed knob, it never
	// changes the edge set.
	ResidentShards int `json:"residentShards,omitempty"`
	// MaxDeferred bounds a streaming session's deferred queue; when the
	// bound is reached, newly rejected edges are dropped with an
	// "overflow" defer event instead of queued for repair. 0 means
	// unbounded. Dropped edges leave the session's accumulated input, so
	// the bound is part of a stream spec's canonical identity; setting
	// it outside stream mode is a validation error.
	MaxDeferred int `json:"maxDeferred,omitempty"`
	// Start is the dearing engine's selection-start vertex (the serial
	// growth seeds there; different starts grow different — equally
	// maximal — subgraphs). Setting it non-zero with any other engine
	// is a validation error. It changes the edge set, so it is part of
	// the canonical identity of dearing specs.
	Start int `json:"start,omitempty"`
	// Order is the elimination engine's ordering: natural|mindeg
	// (default mindeg, the fill-reducing heuristic). Setting it with
	// any other engine is a validation error. It changes the edge set,
	// so it is part of the canonical identity of elimination specs.
	Order string `json:"order,omitempty"`

	// Observer receives the run's event stream. Runtime-only: excluded
	// from JSON and from Canonical.
	Observer Observer `json:"-"`
	// Core, when non-nil, seeds the kernel options with advanced
	// settings the declarative fields do not cover (UnsortedQueue,
	// OnEvent, chained OnIteration). The declarative fields then
	// override their counterparts. Runtime-only escape hatch used by
	// the deprecated Pipeline adapter; excluded from JSON and from
	// Canonical.
	Core *Options `json:"-"`
}

// coreOptions resolves the declarative fields onto the kernel options,
// starting from the Core escape hatch when present.
func (c EngineConfig) coreOptions() (Options, error) {
	var o Options
	if c.Core != nil {
		o = *c.Core
	}
	var err error
	if o.Variant, err = ParseVariant(c.Variant); err != nil {
		return o, err
	}
	if o.Schedule, err = ParseSchedule(c.Schedule); err != nil {
		return o, err
	}
	o.Workers = c.Workers
	o.Grain = c.Grain
	o.DegreeThreshold = c.DegreeThreshold
	o.RepairMaximality = c.Repair
	o.StitchComponents = c.Stitch
	return o, nil
}

// Spec is the versioned, declarative description of one end-to-end run:
// acquire (Source) → relabel → extract (Engine + EngineConfig) →
// verify → write (Output). It is JSON-round-trippable, and Canonical
// returns its single normalized encoding — the identity the service
// keys every cache on. Execute a Spec with Run/RunContext, or with a
// Runner to inject a pre-acquired input graph or an Observer.
type Spec struct {
	// V is the schema version; 0 normalizes to SpecVersion, any other
	// mismatch is a validation error.
	V int `json:"v"`
	// Source is the input file path, generator spec (see SourceSpecs),
	// or upload identity. May be empty only when a Runner injects the
	// input graph directly.
	Source string `json:"source,omitempty"`
	// Relabel renumbers vertices before extraction: none|bfs|degree
	// (default none).
	Relabel string `json:"relabel,omitempty"`
	// Mode selects batch execution (the default; Run) or a streaming
	// session (OpenStream): batch|stream. Batch normalizes to the empty
	// string, so every pre-existing spec — and its canonical key — is
	// unchanged. Stream mode requires a StreamEngine-capable engine,
	// takes its input as edge deltas (Source must be empty), and is
	// incompatible with Relabel and Output (both need the whole graph up
	// front; the session's Close delivers the result instead).
	Mode string `json:"mode,omitempty"`
	// Engine names the registered extraction engine (see EngineNames),
	// or "none" to skip extraction. Empty selects parallel — unless
	// exactly one of Partitions/Shards is set, which implies the
	// partitioned/sharded engine.
	Engine string `json:"engine,omitempty"`
	// EngineConfig parameterizes the engine; its fields flatten into
	// the spec's JSON object.
	EngineConfig
	// Verify checks the extracted subgraph for chordality and, on small
	// inputs, audits maximality.
	Verify bool `json:"verify,omitempty"`
	// Output writes the final graph (the subgraph when an extraction
	// engine ran, otherwise the input) to this path. Excluded from
	// Canonical: it changes where the result lands, not what it is.
	Output string `json:"output,omitempty"`
}

// Normalize resolves the spec to its canonical form: version filled,
// source canonicalized (family lowercased, defaults filled), enum
// names lowercased and defaulted, the engine made explicit, and
// engine-irrelevant toggles cleared. It validates as it goes — unknown
// engines or enum names, version mismatches, and conflicting engine
// selections (partitions or shards against a non-matching engine) are
// errors, never silent precedence.
func (s Spec) Normalize() (Spec, error) {
	n := s
	switch n.V {
	case 0:
		n.V = SpecVersion
	case SpecVersion:
	default:
		return n, fmt.Errorf("chordal: spec version %d unsupported (this release speaks v%d)", n.V, SpecVersion)
	}

	if src := strings.TrimSpace(n.Source); src == "" {
		n.Source = ""
	} else {
		parsed, err := ParseSource(src)
		if err != nil {
			return n, err
		}
		n.Source = parsed.Canonical()
	}

	relabel, err := ParseRelabel(n.Relabel)
	if err != nil {
		return n, err
	}
	n.Relabel = relabel.String()
	variant, err := ParseVariant(n.Variant)
	if err != nil {
		return n, err
	}
	n.Variant = variantName(variant)
	schedule, err := ParseSchedule(n.Schedule)
	if err != nil {
		return n, err
	}
	n.Schedule = scheduleName(schedule)
	if n.Workers < 0 {
		n.Workers = 0
	}
	if n.Grain < 0 {
		n.Grain = 0
	}
	if n.Partitions < 0 {
		return n, fmt.Errorf("chordal: spec: partitions %d must be >= 0", n.Partitions)
	}
	if n.Shards < 0 {
		return n, fmt.Errorf("chordal: spec: shards %d must be >= 0", n.Shards)
	}

	n.Engine = strings.ToLower(strings.TrimSpace(n.Engine))
	if n.Engine == "" {
		switch {
		case n.Partitions > 0 && n.Shards > 0:
			return n, fmt.Errorf("chordal: spec: partitions=%d and shards=%d conflict; they select different engines", n.Partitions, n.Shards)
		case n.Partitions > 0:
			n.Engine = EnginePartitioned
		case n.Shards > 0:
			n.Engine = EngineSharded
		default:
			n.Engine = EngineParallel
		}
	}
	if n.Engine != EngineNone {
		if _, ok := LookupEngine(n.Engine); !ok {
			return n, fmt.Errorf("chordal: spec: unknown engine %q (registered: %s)", n.Engine, strings.Join(EngineNames(), "|"))
		}
	}
	if n.Partitions > 0 && n.Engine != EnginePartitioned {
		return n, fmt.Errorf("chordal: spec: partitions=%d conflicts with engine %q", n.Partitions, n.Engine)
	}
	if n.Shards > 0 && n.Engine != EngineSharded && n.Engine != EngineExternal {
		return n, fmt.Errorf("chordal: spec: shards=%d conflicts with engine %q", n.Shards, n.Engine)
	}
	if n.Engine == EnginePartitioned && n.Partitions == 0 {
		return n, fmt.Errorf("chordal: spec: the partitioned engine needs partitions >= 1")
	}
	if (n.Engine == EngineSharded || n.Engine == EngineExternal) && n.Shards == 0 {
		return n, fmt.Errorf("chordal: spec: the %s engine needs shards >= 1", n.Engine)
	}
	if n.Engine != EngineSharded && n.Engine != EngineExternal {
		// Meaningless off the shard-based engines; clear it so a stray
		// toggle cannot split cache identities.
		n.ShardStitchOnly = false
	}
	if n.ResidentShards < 0 {
		n.ResidentShards = 0
	}
	if n.Engine == EngineExternal && n.Relabel != RelabelNone.String() {
		// Relabeling needs the whole graph in memory, which is exactly
		// what the out-of-core engine exists to avoid.
		return n, fmt.Errorf("chordal: spec: relabel=%s requires an in-memory graph; the external engine cannot apply it", n.Relabel)
	}
	if n.MaxDeferred < 0 {
		return n, fmt.Errorf("chordal: spec: maxDeferred %d must be >= 0", n.MaxDeferred)
	}
	// Start and Order change the extracted edge set, so — unlike the
	// stitch toggle above — a stray value is a conflict error, never
	// silently dropped.
	if n.Start < 0 {
		return n, fmt.Errorf("chordal: spec: start %d must be >= 0", n.Start)
	}
	if n.Start != 0 && n.Engine != EngineDearing {
		return n, fmt.Errorf("chordal: spec: start=%d requires the dearing engine (engine %q selected)", n.Start, n.Engine)
	}
	n.Order = strings.ToLower(strings.TrimSpace(n.Order))
	if n.Engine == EngineElimination {
		switch n.Order {
		case "":
			n.Order = OrderMinDegree
		case OrderNatural, OrderMinDegree:
		default:
			return n, fmt.Errorf("chordal: spec: unknown order %q (want %s|%s)", n.Order, OrderNatural, OrderMinDegree)
		}
	} else if n.Order != "" {
		return n, fmt.Errorf("chordal: spec: order=%q requires the elimination engine (engine %q selected)", n.Order, n.Engine)
	}
	if n.Verify && n.Engine == EngineNone {
		return n, fmt.Errorf("chordal: spec: verify requires an extraction engine")
	}
	n.Mode = strings.ToLower(strings.TrimSpace(n.Mode))
	switch n.Mode {
	case "", ModeBatch:
		// Batch is the zero value: normalizing it away keeps every
		// pre-existing spec's JSON form and canonical key byte-identical.
		n.Mode = ""
	case ModeStream:
		if n.Engine == EngineNone {
			return n, fmt.Errorf("chordal: spec: stream mode requires an extraction engine")
		}
		if eng, ok := LookupEngine(n.Engine); !ok {
			return n, fmt.Errorf("chordal: spec: unknown engine %q", n.Engine)
		} else if _, ok := eng.(StreamEngine); !ok {
			return n, fmt.Errorf("chordal: spec: engine %q does not support streaming (it implements no StreamEngine)", n.Engine)
		}
		if n.Source != "" {
			return n, fmt.Errorf("chordal: spec: stream mode takes edge deltas through the session, not a source (%q)", n.Source)
		}
		if n.Relabel != RelabelNone.String() {
			return n, fmt.Errorf("chordal: spec: relabel=%s requires the whole graph up front; stream mode cannot apply it", n.Relabel)
		}
		if n.Output != "" {
			return n, fmt.Errorf("chordal: spec: stream mode delivers results through the session's Close, not output=%q", n.Output)
		}
	default:
		return n, fmt.Errorf("chordal: spec: unknown mode %q (want %s|%s)", n.Mode, ModeBatch, ModeStream)
	}
	if n.MaxDeferred > 0 && n.Mode != ModeStream {
		return n, fmt.Errorf("chordal: spec: maxDeferred=%d bounds a streaming session's deferred queue and requires mode=stream", n.MaxDeferred)
	}
	return n, nil
}

// Validate reports whether the spec is well-formed, without returning
// the normalized form.
func (s Spec) Validate() error {
	_, err := s.Normalize()
	return err
}

// Canonical returns the spec's single normalized encoding — a stable,
// human-readable k=v line over every identity-bearing field in fixed
// order. Equal canonical strings mean "same input, same extraction,
// same result", so the string is used verbatim as the cache and dedup
// key across the library, CLI, and service (it replaced the service's
// private option hash). Workers, Grain, DegreeThreshold and Output are
// deliberately excluded: none of them changes the extracted subgraph.
// The encoding is pinned by golden tests; changing it invalidates
// every persisted cache key.
func (s Spec) Canonical() (string, error) {
	n, err := s.Normalize()
	if err != nil {
		return "", err
	}
	key := fmt.Sprintf("v%d engine=%s relabel=%s variant=%s schedule=%s repair=%t stitch=%t partitions=%d shards=%d stitchonly=%t verify=%t",
		n.V, n.Engine, n.Relabel, n.Variant, n.Schedule, n.Repair, n.Stitch,
		n.Partitions, n.Shards, n.ShardStitchOnly, n.Verify)
	// The mode token appears only for stream specs — a scoped token, like
	// the engine-specific fields below, so every pre-existing batch key
	// stays byte-identical.
	if n.Mode == ModeStream {
		key += " mode=" + ModeStream
		// A bounded deferred queue drops edges from the session's
		// accumulated input, so it is identity-bearing — but only in
		// stream mode, so the token is scoped under it.
		if n.MaxDeferred > 0 {
			key += fmt.Sprintf(" maxdeferred=%d", n.MaxDeferred)
		}
	}
	// Engine-specific identity fields appear only for the engine they
	// parameterize, so keys of every pre-existing engine — and every
	// persisted cache entry — are byte-identical to earlier releases.
	// src stays last: file-path sources may contain spaces.
	switch n.Engine {
	case EngineDearing:
		key += fmt.Sprintf(" start=%d", n.Start)
	case EngineElimination:
		key += " order=" + n.Order
	}
	return key + " src=" + n.Source, nil
}

// Deterministic reports whether two runs of this spec are guaranteed
// the same input graph — true for generator sources (deterministic in
// their canonical spec) and content-addressed uploads, false for file
// paths, whose contents may change between loads. Results of
// deterministic specs are safe to cache by Canonical.
func (s Spec) Deterministic() bool {
	src, err := ParseSource(s.Source)
	if err != nil {
		return false
	}
	return src.Generated() || src.ContentAddressed()
}

// Run executes the spec with a background context.
func (s Spec) Run() (*PipelineResult, error) {
	return s.RunContext(context.Background())
}

// RunContext executes the spec under ctx; see Runner.Run for the
// execution contract.
func (s Spec) RunContext(ctx context.Context) (*PipelineResult, error) {
	return Runner{}.Run(ctx, s)
}

// Runner executes Specs with execution-time inputs that are not part
// of the spec's identity: a pre-acquired input graph and an event
// Observer. The zero value is ready to use.
type Runner struct {
	// Input, when non-nil, is used directly as the acquired graph and
	// the spec's Source is not loaded. Graphs are immutable, so a
	// cached or shared instance can be injected safely; this is how the
	// service reuses cached generated inputs and parsed uploads.
	Input *Graph
	// Observer, when non-nil, receives the run's unified event stream:
	// stage begin/end with timing, extraction iterations (tagged with
	// the shard during sharded extraction, possibly concurrently), and
	// the verify outcome.
	Observer Observer
}

// maxAuditEdges bounds the input size for the maximality audit, whose
// cost grows with the number of absent edges.
const maxAuditEdges = 200000

// Run executes the spec under ctx. The spec is normalized first, so
// validation errors surface before any work. Cancellation is observed
// between stages and, inside the parallel and sharded engines, between
// iterations of the extract loop; the first error returned after
// cancellation is ctx.Err(). A canceled run leaves no goroutines
// behind.
func (r Runner) Run(ctx context.Context, s Spec) (*PipelineResult, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	if s.Mode == ModeStream {
		return nil, fmt.Errorf("chordal: stream-mode specs open sessions through OpenStream, not Run")
	}
	res := &PipelineResult{}
	emit := func(ev Event) {
		if r.Observer != nil {
			r.Observer(ev)
		}
	}
	enter := func(stage string) time.Time {
		emit(newStageEvent(stage))
		return time.Now()
	}
	mark := func(stage string, start time.Time) {
		d := time.Since(start)
		res.Timings = append(res.Timings, StageTiming{stage, d})
		emit(newStageEndEvent(stage, d))
	}

	// Check before acquire: a run canceled while queued must not pay
	// for the most expensive stage (loading or generating the input).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := r.Input
	// Out-of-core fast path: when the selected engine can extract
	// straight from a file (SourceEngine) and the source is a binary-CSR
	// path, skip the acquire stage entirely — the input is never
	// materialized in memory. Generated and content-addressed sources
	// still load normally (there is no file to map).
	var srcEng SourceEngine
	var srcPath string
	if g == nil && s.Source != "" && s.Engine != EngineNone {
		if eng, ok := LookupEngine(s.Engine); ok {
			if se, ok := eng.(SourceEngine); ok {
				if src, err := ParseSource(s.Source); err == nil &&
					!src.Generated() && !src.ContentAddressed() &&
					strings.HasSuffix(strings.ToLower(src.Canonical()), ".bin") {
					srcEng, srcPath = se, src.Canonical()
				}
			}
		}
	}
	if g == nil && srcEng == nil {
		if s.Source == "" {
			return nil, fmt.Errorf("chordal: spec needs a source (or a Runner-injected input graph)")
		}
		src, err := ParseSource(s.Source)
		if err != nil {
			return nil, err
		}
		start := enter("acquire")
		g, err = src.LoadWorkers(s.Workers)
		if err != nil {
			return nil, err
		}
		mark("acquire", start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if g != nil && s.Relabel != RelabelNone.String() {
		start := enter("relabel")
		mode, err := ParseRelabel(s.Relabel)
		if err != nil {
			return nil, err
		}
		switch mode {
		case RelabelBFS:
			g = g.RelabelWorkers(analysis.BFSOrder(g, 0), s.Workers)
		case RelabelDegree:
			g = g.RelabelWorkers(analysis.DegreeOrder(g), s.Workers)
		}
		mark("relabel", start)
	}
	if g != nil {
		res.Input = g
		res.InputStats = ComputeStats(g)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if s.Engine != EngineNone {
		eng, ok := LookupEngine(s.Engine)
		if !ok {
			return nil, fmt.Errorf("chordal: spec: unknown engine %q", s.Engine)
		}
		cfg := s.EngineConfig
		cfg.Observer = r.Observer
		start := enter("extract")
		var er *EngineResult
		if srcEng != nil {
			er, err = srcEng.ExtractSource(ctx, srcPath, cfg)
		} else {
			er, err = eng.Extract(ctx, g, cfg)
		}
		if err != nil {
			return nil, err
		}
		if er.InputStats != nil {
			// The out-of-core path computed the Table-I stats from the
			// file header and offsets instead of a resident graph.
			res.InputStats = *er.InputStats
		}
		res.Subgraph = er.Subgraph
		res.Extraction = er.Extraction
		res.SerialDuration = er.SerialDuration
		res.Partition = er.Partition
		res.Shard = er.Shard
		res.Dearing = er.Dearing
		res.Elimination = er.Elimination
		res.Tuning = er.Tuning
		res.External = er.External
		mark("extract", start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if s.Verify {
		if res.Subgraph == nil {
			return nil, fmt.Errorf("chordal: spec: verify requires an extraction engine")
		}
		start := enter("verify")
		res.Verified = true
		if res.Shard != nil {
			// The shard stage already ran the chordality check on this
			// exact subgraph as its reconciliation self-check; reuse it
			// rather than paying the O(V+E) MCS+PEO pass twice.
			res.ChordalOK = res.Shard.Chordal
		} else {
			res.ChordalOK = verify.IsChordal(res.Subgraph)
		}
		if res.ChordalOK && g != nil && g.NumEdges() <= maxAuditEdges {
			res.MaximalityAudited = true
			res.ReAddableEdges = len(verify.AuditMaximality(g, res.Subgraph, 10))
		}
		emit(newVerifyEvent(res.ChordalOK, res.MaximalityAudited, res.ReAddableEdges))
		mark("verify", start)
	}

	// Quality metrics are reporting, not identity: they never change
	// the subgraph, so they ride outside the spec (and its canonical
	// key) and are skipped silently when the subgraph is not chordal
	// (the verify stage is the loud path for that) or the input exceeds
	// the default bounds.
	if g != nil && res.Subgraph != nil && (!res.Verified || res.ChordalOK) {
		if q, err := quality.Compute(g, res.Subgraph, quality.DefaultLimits()); err == nil {
			res.Quality = q
		}
	}

	if s.Output != "" {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := enter("write")
		out := res.Subgraph
		if out == nil {
			out = res.Input
		}
		if err := graph.SaveFile(s.Output, out); err != nil {
			return nil, err
		}
		mark("write", start)
	}
	return res, nil
}

// ParseVariant parses the CLI names of the extraction variants:
// auto|opt|unopt.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return VariantAuto, nil
	case "opt":
		return VariantOptimized, nil
	case "unopt":
		return VariantUnoptimized, nil
	}
	return VariantAuto, fmt.Errorf("chordal: unknown variant %q (want auto|opt|unopt)", s)
}

// variantName returns the canonical CLI/wire name of a Variant.
func variantName(v Variant) string {
	switch v {
	case VariantOptimized:
		return "opt"
	case VariantUnoptimized:
		return "unopt"
	default:
		return "auto"
	}
}

// ParseSchedule parses the CLI names of the test schedules:
// dataflow|async|sync.
func ParseSchedule(s string) (Schedule, error) {
	switch strings.ToLower(s) {
	case "dataflow", "":
		return ScheduleDataflow, nil
	case "async":
		return ScheduleAsync, nil
	case "sync":
		return ScheduleSynchronous, nil
	}
	return ScheduleDataflow, fmt.Errorf("chordal: unknown schedule %q (want dataflow|async|sync)", s)
}

// scheduleName returns the canonical CLI/wire name of a Schedule.
func scheduleName(s Schedule) string {
	switch s {
	case ScheduleAsync:
		return "async"
	case ScheduleSynchronous:
		return "sync"
	default:
		return "dataflow"
	}
}

// ParseRelabel parses the CLI names of the relabel modes:
// none|bfs|degree.
func ParseRelabel(s string) (RelabelMode, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return RelabelNone, nil
	case "bfs":
		return RelabelBFS, nil
	case "degree":
		return RelabelDegree, nil
	}
	return RelabelNone, fmt.Errorf("chordal: unknown relabel mode %q (want none|bfs|degree)", s)
}

// RelabelMode selects the optional vertex renumbering stage.
type RelabelMode int

const (
	// RelabelNone keeps the input numbering.
	RelabelNone RelabelMode = iota
	// RelabelBFS renumbers in breadth-first order from vertex 0 (the
	// paper's connectivity remark below Theorem 2).
	RelabelBFS
	// RelabelDegree gives the highest-degree vertices the smallest ids
	// (the DESIGN.md §5 maximality heuristic).
	RelabelDegree
)

// String returns the canonical CLI/wire name of the mode.
func (m RelabelMode) String() string {
	switch m {
	case RelabelBFS:
		return "bfs"
	case RelabelDegree:
		return "degree"
	default:
		return "none"
	}
}
