package chordal

// This file defines the machine-readable summary of a finished run:
// one JSON object carrying the normalized spec, its canonical identity,
// input statistics, the engine summary, the verify outcome, and
// per-stage timings. `chordal -json` emits it on stdout so benchrunner
// and CI consume runs without scraping text.

// ReportInput describes the acquired (and possibly relabeled) input
// graph in a RunReport.
type ReportInput struct {
	// Vertices and Edges size the graph.
	Vertices int   `json:"vertices"`
	Edges    int64 `json:"edges"`
	// AvgDegree and MaxDegree summarize the degree distribution.
	AvgDegree float64 `json:"avgDegree"`
	MaxDegree int     `json:"maxDegree"`
}

// ReportExtraction summarizes the engine stage in a RunReport.
type ReportExtraction struct {
	// Engine is the engine that ran.
	Engine string `json:"engine"`
	// ChordalEdges is |EC|; EdgesKeptPct its share of the input edges.
	ChordalEdges int64   `json:"chordalEdges"`
	EdgesKeptPct float64 `json:"edgesKeptPct"`
	// Iterations is the extract loop's iteration count (parallel
	// whole-graph engine; sharded runs report per-shard counts in
	// Shard instead).
	Iterations int `json:"iterations,omitempty"`
	// Variant and Schedule are the code path and test ordering actually
	// used by the parallel engine.
	Variant  string `json:"variant,omitempty"`
	Schedule string `json:"schedule,omitempty"`
	// RepairedEdges and StitchedEdges count post-pass additions.
	RepairedEdges int `json:"repairedEdges,omitempty"`
	StitchedEdges int `json:"stitchedEdges,omitempty"`
	// SerialMillis is the serial baseline's extraction time.
	SerialMillis float64 `json:"serialMillis,omitempty"`
	// Partition and Shard carry the baselines' summaries, when used.
	Partition *PartitionSummary `json:"partition,omitempty"`
	Shard     *ShardSummary     `json:"shard,omitempty"`
	// Dearing and Elimination carry those engines' summaries, when used.
	Dearing     *DearingSummary     `json:"dearing,omitempty"`
	Elimination *EliminationSummary `json:"elimination,omitempty"`
	// External carries the out-of-core engine's IO summary, when used
	// (its reconciliation counters ride Shard, as for the sharded
	// engine).
	External *ExternalSummary `json:"external,omitempty"`
}

// ReportVerify is the verify stage's outcome in a RunReport.
type ReportVerify struct {
	// Chordal reports the chordality check.
	Chordal bool `json:"chordal"`
	// MaximalityAudited reports whether the bounded audit ran;
	// ReAddableEdges counts the violations it found.
	MaximalityAudited bool `json:"maximalityAudited"`
	ReAddableEdges    int  `json:"reAddableEdges"`
}

// ReportTiming is one pipeline stage's wall-clock duration in a
// RunReport.
type ReportTiming struct {
	// Stage is the stage name; Millis its duration.
	Stage  string  `json:"stage"`
	Millis float64 `json:"millis"`
}

// RunReport is the JSON-ready summary of one finished run.
type RunReport struct {
	// Spec is the normalized spec the run executed.
	Spec Spec `json:"spec"`
	// Canonical is the spec's cache identity (Spec.Canonical).
	Canonical string `json:"canonical"`
	// Input describes the acquired input graph.
	Input ReportInput `json:"input"`
	// Extraction summarizes the engine stage; nil for engine "none".
	Extraction *ReportExtraction `json:"extraction,omitempty"`
	// Tuning is the resolved kernel tuning of the extract stage (grain,
	// degree threshold, worker width, and how each was decided); nil
	// for engines without tunable kernels.
	Tuning *Tuning `json:"tuning,omitempty"`
	// Verify carries the verify outcome; nil when verification was off.
	Verify *ReportVerify `json:"verify,omitempty"`
	// Quality scores the extracted subgraph against the input (edge
	// retention, fill-in under the subgraph's PEO, treewidth and
	// chromatic number); nil when no subgraph was extracted or the
	// metrics were skipped (non-chordal subgraph or oversize input).
	Quality *Quality `json:"quality,omitempty"`
	// Timings holds per-stage wall-clock durations in stage order;
	// TotalMillis is their sum.
	Timings     []ReportTiming `json:"timings"`
	TotalMillis float64        `json:"totalMillis"`
}

// StreamReport is the JSON-ready summary of a closed streaming
// session: the normalized stream-mode spec and its canonical identity,
// the online session counters, the accumulated input, and the
// canonical Close-time extraction and verify outcomes. `chordal
// -stream -json` emits it, and the service returns it from POST
// /v1/streams/{id}/close.
type StreamReport struct {
	// Spec is the normalized stream-mode spec the session ran.
	Spec Spec `json:"spec"`
	// Canonical is the spec's identity (Spec.Canonical), shared across
	// the library, CLI, and service.
	Canonical string `json:"canonical"`
	// Stream holds the online session counters at Close.
	Stream StreamStats `json:"stream"`
	// Input describes the graph accumulated from the deltas.
	Input ReportInput `json:"input"`
	// Extraction summarizes the canonical Close-time extraction.
	Extraction *ReportExtraction `json:"extraction,omitempty"`
	// Tuning is the resolved kernel tuning of that extraction.
	Tuning *Tuning `json:"tuning,omitempty"`
	// Verify carries the verify outcome; nil when verification was off.
	Verify *ReportVerify `json:"verify,omitempty"`
}

// BatchItemReport is one batch item in a BatchReport.
type BatchItemReport struct {
	// Index is the item's position in the submitted batch.
	Index int `json:"index"`
	// Canonical is the item's spec identity (empty when the spec failed
	// to normalize).
	Canonical string `json:"canonical,omitempty"`
	// DupOf points at the earlier item this one was deduplicated onto;
	// nil for items that executed themselves.
	DupOf *int `json:"dupOf,omitempty"`
	// Error is the item's failure message, when it failed.
	Error string `json:"error,omitempty"`
	// Report is the full run report of an item that executed
	// successfully; nil for failures and deduplicated items (whose
	// outcome lives at DupOf).
	Report *RunReport `json:"report,omitempty"`
}

// BatchReport is the JSON-ready aggregate of a finished Batch:
// per-item reports plus the totals `chordal -batch -json` emits.
type BatchReport struct {
	// Items has one entry per submitted spec, in submission order.
	Items []BatchItemReport `json:"items"`
	// Total, Unique, Deduplicated and Failed count the items: Total =
	// Unique + Deduplicated + items that never ran (invalid specs,
	// output-path collisions, or items canceled before dispatch).
	Total        int `json:"total"`
	Unique       int `json:"unique"`
	Deduplicated int `json:"deduplicated"`
	Failed       int `json:"failed"`
	// VerifyFailed counts items that ran but failed verification (a
	// non-chordal verify outcome or a failed shard self-check); such
	// items carry a report, not an error. A batch passed only when
	// Failed and VerifyFailed are both zero — the CLI's exit code
	// checks exactly that.
	VerifyFailed int `json:"verifyFailed"`
	// WallMillis is the batch's wall-clock time; SumMillis the sum of
	// per-item stage totals. Sum exceeding wall is the overlap the
	// shared pool won over running the items back-to-back.
	WallMillis float64 `json:"wallMillis"`
	SumMillis  float64 `json:"sumMillis"`
}

// Report aggregates the batch into its JSON-ready summary.
func (r *BatchResult) Report() BatchReport {
	rep := BatchReport{
		Total:        len(r.Items),
		Unique:       r.Unique,
		Failed:       r.Failed(),
		VerifyFailed: r.VerifyFailed(),
		WallMillis:   durationMillis(r.Wall),
	}
	for i := range r.Items {
		it := &r.Items[i]
		out := BatchItemReport{Index: it.Index, Canonical: it.Canonical}
		if it.DupOf >= 0 {
			dup := it.DupOf
			out.DupOf = &dup
			rep.Deduplicated++
		}
		if it.Err != nil {
			out.Error = it.Err.Error()
		} else if it.DupOf < 0 && it.Result != nil {
			if run, err := Report(it.Spec, it.Result); err == nil {
				out.Report = &run
				rep.SumMillis += run.TotalMillis
			}
		}
		rep.Items = append(rep.Items, out)
	}
	return rep
}

// Report summarizes a finished run of spec s as one JSON-ready object.
func Report(s Spec, res *PipelineResult) (RunReport, error) {
	n, err := s.Normalize()
	if err != nil {
		return RunReport{}, err
	}
	canon, err := n.Canonical()
	if err != nil {
		return RunReport{}, err
	}
	rep := RunReport{
		Spec:      n,
		Canonical: canon,
		Input: ReportInput{
			Vertices:  res.InputStats.Vertices,
			Edges:     res.InputStats.Edges,
			AvgDegree: res.InputStats.AvgDegree,
			MaxDegree: res.InputStats.MaxDegree,
		},
	}
	if res.Subgraph != nil {
		ex := &ReportExtraction{Engine: n.Engine, ChordalEdges: res.Subgraph.NumEdges()}
		if res.InputStats.Edges > 0 {
			ex.EdgesKeptPct = 100 * float64(ex.ChordalEdges) / float64(res.InputStats.Edges)
		}
		if r := res.Extraction; r != nil {
			ex.Iterations = len(r.Iterations)
			ex.Variant = variantName(r.Variant)
			ex.Schedule = scheduleName(r.Schedule)
			ex.RepairedEdges = r.RepairedEdges
			ex.StitchedEdges = r.StitchedEdges
		}
		if res.SerialDuration > 0 {
			ex.SerialMillis = durationMillis(res.SerialDuration)
		}
		ex.Partition = res.Partition
		if sh := res.Shard; sh != nil {
			ex.Shard = sh
			ex.RepairedEdges = sh.RepairedEdges
			ex.StitchedEdges = sh.StitchedEdges
		}
		ex.Dearing = res.Dearing
		ex.Elimination = res.Elimination
		ex.External = res.External
		rep.Extraction = ex
	}
	rep.Quality = res.Quality
	if res.Tuning != nil {
		t := *res.Tuning
		rep.Tuning = &t
	}
	if res.Verified {
		rep.Verify = &ReportVerify{
			Chordal:           res.ChordalOK,
			MaximalityAudited: res.MaximalityAudited,
			ReAddableEdges:    res.ReAddableEdges,
		}
	}
	for _, st := range res.Timings {
		ms := durationMillis(st.Duration)
		rep.Timings = append(rep.Timings, ReportTiming{st.Stage, ms})
		rep.TotalMillis += ms
	}
	return rep, nil
}
