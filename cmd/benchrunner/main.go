// Command benchrunner regenerates the paper's evaluation artifacts:
// Table I, Figures 2-7, Table II and the §V chordal-edge percentages.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig4 -scales 14,15,16 -maxprocs 8
//	benchrunner -exp table2 -bio-downscale 4 -trials 5
//
// The paper's absolute scales (2^24-2^26 vertices on a 128-processor
// Cray XMT) exceed commodity environments; pick -scales to fit your
// memory and time budget. EXPERIMENTS.md records the shape comparisons
// between these outputs and the paper's figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"chordal/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	var (
		exp    = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|"))
		scales = flag.String("scales", "", "comma-separated R-MAT scales (default 14,15,16)")
	)
	flag.IntVar(&cfg.BioDownscale, "bio-downscale", cfg.BioDownscale, "bio network gene-count divisor (1 = paper size)")
	flag.IntVar(&cfg.MaxProcs, "maxprocs", cfg.MaxProcs, "max workers in scaling sweeps (0 = GOMAXPROCS)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.SmallScale, "small-scale", cfg.SmallScale, "scale for structure figures 2-3 (paper: 10)")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "timing trials per measurement (fastest kept)")
	flag.Parse()

	if *scales != "" {
		cfg.Scales = cfg.Scales[:0]
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 || v > 30 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad scale %q\n", s)
				os.Exit(2)
			}
			cfg.Scales = append(cfg.Scales, v)
		}
	}
	if err := experiments.Run(os.Stdout, *exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}
