// Command benchrunner regenerates the paper's evaluation artifacts:
// Table I, Figures 2-7, Table II and the §V chordal-edge percentages.
// It can also benchmark the full pipeline on any input source.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig4 -scales 14,15,16 -maxprocs 8
//	benchrunner -exp table2 -bio-downscale 4 -trials 5
//	benchrunner -graph rmat-g:18 -maxprocs 8    # worker sweep on one input
//	benchrunner -graph web.mtx -trials 5
//	benchrunner -batch-suite 20                 # batched vs per-run throughput
//	                                            # comparison -> BENCH_batch.json
//
// The paper's absolute scales (2^24-2^26 vertices on a 128-processor
// Cray XMT) exceed commodity environments; pick -scales to fit your
// memory and time budget. EXPERIMENTS.md records the shape comparisons
// between these outputs and the paper's figures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"chordal"
	"chordal/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	var (
		exp      = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|"))
		scales   = flag.String("scales", "", "comma-separated R-MAT scales (default 14,15,16)")
		graphS   = flag.String("graph", "", "pipeline source (path or generator spec): run an extraction worker sweep on it instead of a paper experiment")
		batchN   = flag.Int("batch-suite", 0, "run the batched-throughput comparison (chordal.Batch vs per-run Spec.Run) on an n-item bio-suite and write the JSON report")
		batchOut = flag.String("batch-out", "BENCH_batch.json", "output path for the -batch-suite report")
	)
	flag.IntVar(&cfg.BioDownscale, "bio-downscale", cfg.BioDownscale, "bio network gene-count divisor (1 = paper size)")
	flag.IntVar(&cfg.MaxProcs, "maxprocs", cfg.MaxProcs, "max workers in scaling sweeps (0 = GOMAXPROCS)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.SmallScale, "small-scale", cfg.SmallScale, "scale for structure figures 2-3 (paper: 10)")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "timing trials per measurement (fastest kept)")
	flag.Parse()

	if *graphS != "" {
		if err := sweep(*graphS, cfg.MaxProcs, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *batchN > 0 {
		if err := batchBench(*batchN, *batchOut, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}

	if *scales != "" {
		cfg.Scales = cfg.Scales[:0]
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 || v > 30 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad scale %q\n", s)
				os.Exit(2)
			}
			cfg.Scales = append(cfg.Scales, v)
		}
	}
	if err := experiments.Run(os.Stdout, *exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// batchReport is the JSON record batchBench writes: the batched-vs-
// sequential throughput comparison on the bio-suite shape, one data
// point of the perf trajectory per commit.
type batchReport struct {
	// Items and Unique size the suite (Unique < Items in the dedup
	// shape); CPUs and Trials record the measurement conditions.
	Items  int `json:"items"`
	Unique int `json:"unique"`
	CPUs   int `json:"cpus"`
	Trials int `json:"trials"`
	// SequentialMillis is N independent Spec.Run calls back-to-back;
	// BatchMillis the same suite through chordal.Batch; Speedup their
	// ratio (fastest trial each).
	SequentialMillis float64 `json:"sequentialMillis"`
	BatchMillis      float64 `json:"batchMillis"`
	Speedup          float64 `json:"speedup"`
	// The dedup variant re-submits each dataset repeatedly (the re-run
	// analysis shape); Batch collapses the repeats by canonical key.
	DedupItems            int     `json:"dedupItems"`
	DedupUnique           int     `json:"dedupUnique"`
	DedupSequentialMillis float64 `json:"dedupSequentialMillis"`
	DedupBatchMillis      float64 `json:"dedupBatchMillis"`
	DedupSpeedup          float64 `json:"dedupSpeedup"`
	// Timestamp dates the data point.
	Timestamp string `json:"timestamp"`
}

// batchSuite builds an n-item bio-suite: the four gene-correlation
// datasets cycled with advancing seeds (sameSeed collapses them to at
// most four unique canonical specs — the dedup shape).
func batchSuite(n int, sameSeed bool) []chordal.Spec {
	datasets := []string{"gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non"}
	specs := make([]chordal.Spec, n)
	for i := range specs {
		seed := 7
		if !sameSeed {
			seed = 1 + i/len(datasets)
		}
		specs[i] = chordal.Spec{Source: fmt.Sprintf("%s:32:%d", datasets[i%len(datasets)], seed)}
	}
	return specs
}

// bestMillis runs fn trials times and returns the fastest wall time in
// milliseconds.
func bestMillis(trials int, fn func() error) (float64, error) {
	best := time.Duration(0)
	for t := 0; t < trials; t++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return float64(best.Microseconds()) / 1000, nil
}

// batchBench measures the n-item suite through sequential Spec.Run
// calls and through chordal.Batch (plus the dedup shape), prints the
// comparison, and writes it as JSON to out.
func batchBench(n int, out string, trials int) error {
	if trials < 1 {
		trials = 1
	}
	rep := batchReport{
		Items:     n,
		CPUs:      runtime.NumCPU(),
		Trials:    trials,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	measure := func(specs []chordal.Spec) (seqMs, batchMs float64, unique int, err error) {
		seqMs, err = bestMillis(trials, func() error {
			for _, s := range specs {
				if _, err := s.Run(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, 0, 0, err
		}
		batchMs, err = bestMillis(trials, func() error {
			res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
			if err != nil {
				return err
			}
			unique = res.Unique
			if f := res.Failed(); f != 0 {
				return fmt.Errorf("%d batch items failed", f)
			}
			return nil
		})
		return seqMs, batchMs, unique, err
	}

	var err error
	if rep.SequentialMillis, rep.BatchMillis, rep.Unique, err = measure(batchSuite(n, false)); err != nil {
		return err
	}
	rep.Speedup = rep.SequentialMillis / rep.BatchMillis
	rep.DedupItems = n
	if rep.DedupSequentialMillis, rep.DedupBatchMillis, rep.DedupUnique, err = measure(batchSuite(n, true)); err != nil {
		return err
	}
	rep.DedupSpeedup = rep.DedupSequentialMillis / rep.DedupBatchMillis

	fmt.Printf("batch suite: %d items (%d unique) on %d CPUs, best of %d trials\n",
		rep.Items, rep.Unique, rep.CPUs, rep.Trials)
	fmt.Printf("  sequential Spec.Run: %10.3f ms\n", rep.SequentialMillis)
	fmt.Printf("  chordal.Batch:       %10.3f ms   (%.2fx)\n", rep.BatchMillis, rep.Speedup)
	fmt.Printf("  dedup shape (%d unique): sequential %.3f ms, batch %.3f ms (%.2fx)\n",
		rep.DedupUnique, rep.DedupSequentialMillis, rep.DedupBatchMillis, rep.DedupSpeedup)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// sweep measures pipeline acquisition once and extraction across a
// doubling worker axis on the given source, the Figure 4/5-style curve
// for arbitrary inputs.
func sweep(source string, maxProcs, trials int) error {
	if maxProcs <= 0 {
		maxProcs = runtime.GOMAXPROCS(0)
	}
	if trials < 1 {
		trials = 1
	}
	acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("source %s: %s\n", source, acq.InputStats)
	for _, st := range acq.Timings {
		fmt.Printf("stage %-8s %12s\n", st.Stage, st.Duration)
	}
	axis := []int{}
	for w := 1; w <= maxProcs; w *= 2 {
		axis = append(axis, w)
	}
	if last := axis[len(axis)-1]; last != maxProcs {
		axis = append(axis, maxProcs) // full-machine endpoint
	}
	fmt.Printf("\n%8s %14s %14s %10s\n", "workers", "extract", "chordal-edges", "iters")
	for _, workers := range axis {
		best := time.Duration(0)
		var edges, iters int
		for t := 0; t < trials; t++ {
			res, err := chordal.Extract(acq.Input, chordal.Options{Workers: workers})
			if err != nil {
				return err
			}
			// Keep every column from the same (fastest) run.
			if best == 0 || res.Total < best {
				best = res.Total
				edges, iters = res.NumChordalEdges(), len(res.Iterations)
			}
		}
		fmt.Printf("%8d %14s %14d %10d\n", workers, best, edges, iters)
	}
	return nil
}
