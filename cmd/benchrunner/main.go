// Command benchrunner regenerates the paper's evaluation artifacts:
// Table I, Figures 2-7, Table II and the §V chordal-edge percentages.
// It can also benchmark the full pipeline on any input source.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig4 -scales 14,15,16 -maxprocs 8
//	benchrunner -exp table2 -bio-downscale 4 -trials 5
//	benchrunner -graph rmat-g:18 -maxprocs 8    # worker sweep on one input
//	benchrunner -graph web.mtx -trials 5
//
// The paper's absolute scales (2^24-2^26 vertices on a 128-processor
// Cray XMT) exceed commodity environments; pick -scales to fit your
// memory and time budget. EXPERIMENTS.md records the shape comparisons
// between these outputs and the paper's figures.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"chordal"
	"chordal/internal/experiments"
)

func main() {
	cfg := experiments.DefaultConfig()
	var (
		exp    = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|"))
		scales = flag.String("scales", "", "comma-separated R-MAT scales (default 14,15,16)")
		graphS = flag.String("graph", "", "pipeline source (path or generator spec): run an extraction worker sweep on it instead of a paper experiment")
	)
	flag.IntVar(&cfg.BioDownscale, "bio-downscale", cfg.BioDownscale, "bio network gene-count divisor (1 = paper size)")
	flag.IntVar(&cfg.MaxProcs, "maxprocs", cfg.MaxProcs, "max workers in scaling sweeps (0 = GOMAXPROCS)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.SmallScale, "small-scale", cfg.SmallScale, "scale for structure figures 2-3 (paper: 10)")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "timing trials per measurement (fastest kept)")
	flag.Parse()

	if *graphS != "" {
		if err := sweep(*graphS, cfg.MaxProcs, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}

	if *scales != "" {
		cfg.Scales = cfg.Scales[:0]
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 || v > 30 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad scale %q\n", s)
				os.Exit(2)
			}
			cfg.Scales = append(cfg.Scales, v)
		}
	}
	if err := experiments.Run(os.Stdout, *exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// sweep measures pipeline acquisition once and extraction across a
// doubling worker axis on the given source, the Figure 4/5-style curve
// for arbitrary inputs.
func sweep(source string, maxProcs, trials int) error {
	if maxProcs <= 0 {
		maxProcs = runtime.GOMAXPROCS(0)
	}
	if trials < 1 {
		trials = 1
	}
	acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("source %s: %s\n", source, acq.InputStats)
	for _, st := range acq.Timings {
		fmt.Printf("stage %-8s %12s\n", st.Stage, st.Duration)
	}
	axis := []int{}
	for w := 1; w <= maxProcs; w *= 2 {
		axis = append(axis, w)
	}
	if last := axis[len(axis)-1]; last != maxProcs {
		axis = append(axis, maxProcs) // full-machine endpoint
	}
	fmt.Printf("\n%8s %14s %14s %10s\n", "workers", "extract", "chordal-edges", "iters")
	for _, workers := range axis {
		best := time.Duration(0)
		var edges, iters int
		for t := 0; t < trials; t++ {
			res, err := chordal.Extract(acq.Input, chordal.Options{Workers: workers})
			if err != nil {
				return err
			}
			// Keep every column from the same (fastest) run.
			if best == 0 || res.Total < best {
				best = res.Total
				edges, iters = res.NumChordalEdges(), len(res.Iterations)
			}
		}
		fmt.Printf("%8d %14s %14d %10d\n", workers, best, edges, iters)
	}
	return nil
}
