// Command benchrunner regenerates the paper's evaluation artifacts:
// Table I, Figures 2-7, Table II and the §V chordal-edge percentages.
// It can also benchmark the full pipeline on any input source.
//
// Usage:
//
//	benchrunner -exp all
//	benchrunner -exp fig4 -scales 14,15,16 -maxprocs 8
//	benchrunner -exp table2 -bio-downscale 4 -trials 5
//	benchrunner -graph rmat-g:18 -maxprocs 8    # worker sweep on one input
//	benchrunner -graph web.mtx -trials 5
//	benchrunner -batch-suite 20                 # batched vs per-run throughput
//	                                            # comparison -> BENCH_batch.json
//	benchrunner -kernel-suite                   # degree-threshold x grain x
//	                                            # workers sweep -> BENCH_kernels.json
//	benchrunner -engine-suite                   # every engine x generator zoo
//	                                            # bake-off -> BENCH_engines.json
//	benchrunner -stream-suite                   # streaming-session throughput and
//	                                            # repair-cadence amortization
//	                                            # -> BENCH_stream.json
//
// The paper's absolute scales (2^24-2^26 vertices on a 128-processor
// Cray XMT) exceed commodity environments; pick -scales to fit your
// memory and time budget. EXPERIMENTS.md records the shape comparisons
// between these outputs and the paper's figures.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"chordal"
	"chordal/internal/experiments"
	"chordal/internal/tune"
)

func main() {
	cfg := experiments.DefaultConfig()
	var (
		exp       = flag.String("exp", "all", "experiment: "+strings.Join(experiments.Names(), "|"))
		scales    = flag.String("scales", "", "comma-separated R-MAT scales (default 14,15,16)")
		graphS    = flag.String("graph", "", "pipeline source (path or generator spec): run an extraction worker sweep on it instead of a paper experiment")
		batchN    = flag.Int("batch-suite", 0, "run the batched-throughput comparison (chordal.Batch vs per-run Spec.Run) on an n-item bio-suite and write the JSON report")
		batchOut  = flag.String("batch-out", "BENCH_batch.json", "output path for the -batch-suite report")
		kernelRun = flag.Bool("kernel-suite", false, "sweep degree-threshold x grain x workers over the generator zoo, verify byte-identical outputs, and write the JSON report")
		kernelOut = flag.String("kernel-out", "BENCH_kernels.json", "output path for the -kernel-suite report")
		engineRun = flag.Bool("engine-suite", false, "run every registered engine over the generator zoo with verification and quality metrics (the bake-off matrix), and write the JSON report")
		engineOut = flag.String("engine-out", "BENCH_engines.json", "output path for the -engine-suite report")
		streamRun = flag.Bool("stream-suite", false, "measure streaming-session admission throughput and repair-cadence amortization over the generator zoo, and write the JSON report")
		streamOut = flag.String("stream-out", "BENCH_stream.json", "output path for the -stream-suite report")
		extRun    = flag.Bool("external-suite", false, "run the out-of-core external engine over the generator zoo from temp .bin files (shards x resident grid), gate byte-identity against the in-memory sharded engine, and write the JSON report")
		extOut    = flag.String("external-out", "BENCH_external.json", "output path for the -external-suite report")
	)
	flag.IntVar(&cfg.BioDownscale, "bio-downscale", cfg.BioDownscale, "bio network gene-count divisor (1 = paper size)")
	flag.IntVar(&cfg.MaxProcs, "maxprocs", cfg.MaxProcs, "max workers in scaling sweeps (0 = GOMAXPROCS)")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.IntVar(&cfg.SmallScale, "small-scale", cfg.SmallScale, "scale for structure figures 2-3 (paper: 10)")
	flag.IntVar(&cfg.Trials, "trials", cfg.Trials, "timing trials per measurement (fastest kept)")
	flag.Parse()

	if *graphS != "" {
		if err := sweep(*graphS, cfg.MaxProcs, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *batchN > 0 {
		if err := batchBench(*batchN, *batchOut, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *kernelRun {
		if err := kernelBench(*kernelOut, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *engineRun {
		if err := engineBench(*engineOut, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *streamRun {
		if err := streamBench(*streamOut, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}
	if *extRun {
		if err := externalBench(*extOut, cfg.Trials); err != nil {
			fmt.Fprintln(os.Stderr, "benchrunner:", err)
			os.Exit(1)
		}
		return
	}

	if *scales != "" {
		cfg.Scales = cfg.Scales[:0]
		for _, s := range strings.Split(*scales, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || v < 1 || v > 30 {
				fmt.Fprintf(os.Stderr, "benchrunner: bad scale %q\n", s)
				os.Exit(2)
			}
			cfg.Scales = append(cfg.Scales, v)
		}
	}
	if err := experiments.Run(os.Stdout, *exp, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

// batchReport is the JSON record batchBench writes: the batched-vs-
// sequential throughput comparison on the bio-suite shape, one data
// point of the perf trajectory per commit.
type batchReport struct {
	// Items and Unique size the suite (Unique < Items in the dedup
	// shape); CPUs and Trials record the measurement conditions.
	Items  int `json:"items"`
	Unique int `json:"unique"`
	CPUs   int `json:"cpus"`
	// GOMAXPROCS and the tuner's calibrated kernel parameters pin down
	// the machine conditions of the data point.
	GOMAXPROCS           int `json:"gomaxprocs"`
	TunedGrain           int `json:"tunedGrain"`
	TunedDegreeThreshold int `json:"tunedDegreeThreshold"`
	// OverlapValid marks whether the batched-vs-sequential comparison
	// measures real overlap: false on a single-CPU machine, where the
	// shared pool cannot run items concurrently and any speedup is
	// scheduling noise rather than won overlap.
	OverlapValid bool `json:"overlapValid"`
	Trials       int  `json:"trials"`
	// SequentialMillis is N independent Spec.Run calls back-to-back;
	// BatchMillis the same suite through chordal.Batch; Speedup their
	// ratio (fastest trial each).
	SequentialMillis float64 `json:"sequentialMillis"`
	BatchMillis      float64 `json:"batchMillis"`
	Speedup          float64 `json:"speedup"`
	// The dedup variant re-submits each dataset repeatedly (the re-run
	// analysis shape); Batch collapses the repeats by canonical key.
	DedupItems            int     `json:"dedupItems"`
	DedupUnique           int     `json:"dedupUnique"`
	DedupSequentialMillis float64 `json:"dedupSequentialMillis"`
	DedupBatchMillis      float64 `json:"dedupBatchMillis"`
	DedupSpeedup          float64 `json:"dedupSpeedup"`
	// Timestamp dates the data point.
	Timestamp string `json:"timestamp"`
}

// batchSuite builds an n-item bio-suite: the four gene-correlation
// datasets cycled with advancing seeds (sameSeed collapses them to at
// most four unique canonical specs — the dedup shape).
func batchSuite(n int, sameSeed bool) []chordal.Spec {
	datasets := []string{"gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non"}
	specs := make([]chordal.Spec, n)
	for i := range specs {
		seed := 7
		if !sameSeed {
			seed = 1 + i/len(datasets)
		}
		specs[i] = chordal.Spec{Source: fmt.Sprintf("%s:32:%d", datasets[i%len(datasets)], seed)}
	}
	return specs
}

// bestMillis runs fn trials times and returns the fastest wall time in
// milliseconds.
func bestMillis(trials int, fn func() error) (float64, error) {
	best := time.Duration(0)
	for t := 0; t < trials; t++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); best == 0 || d < best {
			best = d
		}
	}
	return float64(best.Microseconds()) / 1000, nil
}

// batchBench measures the n-item suite through sequential Spec.Run
// calls and through chordal.Batch (plus the dedup shape), prints the
// comparison, and writes it as JSON to out.
func batchBench(n int, out string, trials int) error {
	if trials < 1 {
		trials = 1
	}
	prof := tune.Current()
	rep := batchReport{
		Items:                n,
		CPUs:                 runtime.NumCPU(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		TunedGrain:           prof.Grain,
		TunedDegreeThreshold: prof.DegreeThreshold,
		OverlapValid:         runtime.NumCPU() > 1,
		Trials:               trials,
		Timestamp:            time.Now().UTC().Format(time.RFC3339),
	}
	measure := func(specs []chordal.Spec) (seqMs, batchMs float64, unique int, err error) {
		seqMs, err = bestMillis(trials, func() error {
			for _, s := range specs {
				if _, err := s.Run(); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return 0, 0, 0, err
		}
		batchMs, err = bestMillis(trials, func() error {
			res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
			if err != nil {
				return err
			}
			unique = res.Unique
			if f := res.Failed(); f != 0 {
				return fmt.Errorf("%d batch items failed", f)
			}
			return nil
		})
		return seqMs, batchMs, unique, err
	}

	var err error
	if rep.SequentialMillis, rep.BatchMillis, rep.Unique, err = measure(batchSuite(n, false)); err != nil {
		return err
	}
	rep.Speedup = rep.SequentialMillis / rep.BatchMillis
	rep.DedupItems = n
	if rep.DedupSequentialMillis, rep.DedupBatchMillis, rep.DedupUnique, err = measure(batchSuite(n, true)); err != nil {
		return err
	}
	rep.DedupSpeedup = rep.DedupSequentialMillis / rep.DedupBatchMillis

	fmt.Printf("batch suite: %d items (%d unique) on %d CPUs, best of %d trials\n",
		rep.Items, rep.Unique, rep.CPUs, rep.Trials)
	fmt.Printf("  sequential Spec.Run: %10.3f ms\n", rep.SequentialMillis)
	fmt.Printf("  chordal.Batch:       %10.3f ms   (%.2fx)\n", rep.BatchMillis, rep.Speedup)
	fmt.Printf("  dedup shape (%d unique): sequential %.3f ms, batch %.3f ms (%.2fx)\n",
		rep.DedupUnique, rep.DedupSequentialMillis, rep.DedupBatchMillis, rep.DedupSpeedup)
	if !rep.OverlapValid {
		fmt.Println("  note: single CPU — the overlap comparison is not meaningful (overlapValid=false)")
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// kernelPoint is one cell of the kernel sweep: a (source, workers,
// grain, degree-threshold) configuration with its fastest extraction
// time and the FNV-1a hash of its edge set (the byte-identity witness).
type kernelPoint struct {
	Source          string  `json:"source"`
	Workers         int     `json:"workers"`
	Grain           int     `json:"grain"`
	DegreeThreshold int     `json:"degreeThreshold"`
	Millis          float64 `json:"millis"`
	ChordalEdges    int     `json:"chordalEdges"`
	Iterations      int     `json:"iterations"`
	EdgeHash        string  `json:"edgeHash"`
}

// kernelSummary compares, per source at equal worker count, the best
// pure merge-scan configuration against the best hybrid one.
type kernelSummary struct {
	Source          string  `json:"source"`
	Workers         int     `json:"workers"`
	MergeScanMillis float64 `json:"mergeScanMillis"`
	HybridMillis    float64 `json:"hybridMillis"`
	// Speedup is mergeScan/hybrid: > 1 means the hybrid path won.
	Speedup float64 `json:"speedup"`
}

// kernelReport is the JSON record of one -kernel-suite run.
type kernelReport struct {
	CPUs                 int `json:"cpus"`
	GOMAXPROCS           int `json:"gomaxprocs"`
	TunedGrain           int `json:"tunedGrain"`
	TunedDegreeThreshold int `json:"tunedDegreeThreshold"`
	Trials               int `json:"trials"`
	// ByteIdentical reports that every configuration of every source
	// produced the same edge-set hash — the sweep's correctness gate.
	ByteIdentical bool            `json:"byteIdentical"`
	Points        []kernelPoint   `json:"points"`
	Summary       []kernelSummary `json:"summary"`
	Timestamp     string          `json:"timestamp"`
}

// edgeHash is the FNV-1a digest of an edge set in its canonical (U, V)
// order; equal hashes across configurations witness byte-identical
// extractions.
func edgeHash(edges []chordal.Edge) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, e := range edges {
		buf[0] = byte(e.U)
		buf[1] = byte(e.U >> 8)
		buf[2] = byte(e.U >> 16)
		buf[3] = byte(e.U >> 24)
		buf[4] = byte(e.V)
		buf[5] = byte(e.V >> 8)
		buf[6] = byte(e.V >> 16)
		buf[7] = byte(e.V >> 24)
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// kernelSources is the generator zoo of the kernel sweep: skewed R-MAT
// (hub-heavy, the paper's main inputs) at two densities, a bio-suite
// network (dense correlated clusters), a k-tree (uniformly large
// chordal sets), and a uniform G(n,m) control.
var kernelSources = []string{
	"rmat-g:12",
	"rmat-b:12:42:16",
	"gse5140-crt:8",
	"ktree:3000:48",
	"gnm:4096:65536",
}

// kernelBench sweeps degree-threshold x grain x workers over the
// generator zoo, verifies that every configuration extracts the same
// edge set, prints the merge-scan vs hybrid comparison, and writes the
// JSON report to out. Exits non-zero if any configuration's edge set
// diverges.
func kernelBench(out string, trials int) error {
	if trials < 1 {
		trials = 1
	}
	prof := tune.Current()
	rep := kernelReport{
		CPUs:                 runtime.NumCPU(),
		GOMAXPROCS:           runtime.GOMAXPROCS(0),
		TunedGrain:           prof.Grain,
		TunedDegreeThreshold: prof.DegreeThreshold,
		Trials:               trials,
		ByteIdentical:        true,
		Timestamp:            time.Now().UTC().Format(time.RFC3339),
	}
	thresholds := dedupInts([]int{-1, 2, prof.DegreeThreshold, 128})
	grains := dedupInts([]int{16, prof.Grain, 256})
	workerAxis := []int{1, 2}

	fmt.Printf("kernel suite: %d CPUs, best of %d trials; tuned grain=%d threshold=%d\n",
		rep.CPUs, trials, prof.Grain, prof.DegreeThreshold)
	for _, source := range kernelSources {
		acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
		if err != nil {
			return err
		}
		g := acq.Input
		fmt.Printf("\n%s: %s\n", source, acq.InputStats)
		wantHash := ""
		// Per (source, workers): fastest merge-scan and hybrid cells.
		type best struct{ merge, hybrid float64 }
		bests := map[int]*best{}
		for _, workers := range workerAxis {
			bests[workers] = &best{}
			for _, grain := range grains {
				for _, thr := range thresholds {
					pt := kernelPoint{
						Source:          source,
						Workers:         workers,
						Grain:           grain,
						DegreeThreshold: thr,
					}
					for t := 0; t < trials; t++ {
						res, err := chordal.Extract(g, chordal.Options{
							Workers:         workers,
							Grain:           grain,
							DegreeThreshold: thr,
						})
						if err != nil {
							return err
						}
						ms := float64(res.Total.Microseconds()) / 1000
						if pt.Millis == 0 || ms < pt.Millis {
							pt.Millis = ms
							pt.ChordalEdges = res.NumChordalEdges()
							pt.Iterations = len(res.Iterations)
							pt.EdgeHash = edgeHash(res.Edges)
						}
					}
					if wantHash == "" {
						wantHash = pt.EdgeHash
					} else if pt.EdgeHash != wantHash {
						rep.ByteIdentical = false
						fmt.Printf("  DIVERGED: workers=%d grain=%d threshold=%d hash %s != %s\n",
							workers, grain, thr, pt.EdgeHash, wantHash)
					}
					b := bests[workers]
					if thr < 0 {
						if b.merge == 0 || pt.Millis < b.merge {
							b.merge = pt.Millis
						}
					} else if b.hybrid == 0 || pt.Millis < b.hybrid {
						b.hybrid = pt.Millis
					}
					rep.Points = append(rep.Points, pt)
				}
			}
		}
		for _, workers := range workerAxis {
			b := bests[workers]
			s := kernelSummary{
				Source:          source,
				Workers:         workers,
				MergeScanMillis: b.merge,
				HybridMillis:    b.hybrid,
			}
			if b.hybrid > 0 {
				s.Speedup = b.merge / b.hybrid
			}
			rep.Summary = append(rep.Summary, s)
			fmt.Printf("  workers=%d: merge-scan %8.3f ms, hybrid %8.3f ms (%.2fx)\n",
				workers, s.MergeScanMillis, s.HybridMillis, s.Speedup)
		}
	}

	if rep.ByteIdentical {
		fmt.Println("\nbyte-identity: all configurations extracted identical edge sets")
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if !rep.ByteIdentical {
		return fmt.Errorf("kernel sweep outputs diverged across configurations")
	}
	return nil
}

// engineRow is one cell of the bake-off matrix: a (engine, config,
// source) triple with its fastest run time, memory estimate,
// verification bit, and the shared quality metrics.
type engineRow struct {
	Engine string `json:"engine"`
	// Config is the engine-specific parameterization of the row, as a
	// canonical-style fragment ("partitions=4", "order=mindeg", ...);
	// empty for engines without one.
	Config string  `json:"config,omitempty"`
	Source string  `json:"source"`
	Millis float64 `json:"millis"`
	// PeakRSSEstimateBytes is runtime.MemStats.Sys after the run — the
	// Go runtime's total OS reservation, an upper-bound estimate of the
	// run's resident-set contribution. AllocDeltaBytes is the heap
	// allocation the run itself performed (TotalAlloc delta).
	PeakRSSEstimateBytes uint64 `json:"peakRSSEstimateBytes"`
	AllocDeltaBytes      uint64 `json:"allocDeltaBytes"`
	// Verified is the verify stage's chordality check — the matrix's
	// correctness gate; every row must be true.
	Verified bool `json:"verified"`
	// Maximal reports that the bounded maximality audit ran and found
	// no re-addable edges. Only the serial-family engines guarantee it.
	Maximal      bool  `json:"maximal"`
	ChordalEdges int64 `json:"chordalEdges"`
	// Quality metrics from internal/quality (shared with
	// RunReport.Quality): retention, fill-in of the input under the
	// subgraph's PEO, and the exact chordal invariants.
	RetentionPct    float64 `json:"retentionPct"`
	FillComputed    bool    `json:"fillComputed"`
	FillIn          int64   `json:"fillIn"`
	Treewidth       int     `json:"treewidth,omitempty"`
	ChromaticNumber int     `json:"chromaticNumber,omitempty"`
}

// engineReport is the JSON record of one -engine-suite run: the
// quality-vs-speed bake-off of every registered engine over the zoo.
type engineReport struct {
	CPUs       int      `json:"cpus"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Trials     int      `json:"trials"`
	Engines    []string `json:"engines"`
	Sources    []string `json:"sources"`
	// AllVerified reports that every row passed the chordality check;
	// the suite exits non-zero otherwise.
	AllVerified bool        `json:"allVerified"`
	Rows        []engineRow `json:"rows"`
	Timestamp   string      `json:"timestamp"`
}

// engineSources is the bake-off zoo: the paper's three R-MAT presets, a
// uniform G(n,m) control, a small-world and a mesh-like geometric
// graph, a k-tree (known maximal chordal ground truth), and a
// bio-suite network. Sizes are chosen so the full matrix — including
// the exact quality metrics — runs in CI smoke time.
var engineSources = []string{
	"rmat-er:10",
	"rmat-g:10:7",
	"rmat-b:10:5",
	"gnm:2048:16384:3",
	"ws:1000:8:0.1:7",
	"geo:1200:0.05:11",
	"ktree:1500:24:9",
	"gse5140-crt:16:3",
}

// engineConfigs expands one registered engine name into the spec
// configurations the bake-off runs it under. Engines with mandatory
// parameters get a representative value; the elimination engine runs
// once per ordering so the matrix shows the order's quality effect.
func engineConfigs(name string) []struct {
	label string
	cfg   chordal.EngineConfig
} {
	type row = struct {
		label string
		cfg   chordal.EngineConfig
	}
	switch name {
	case chordal.EnginePartitioned:
		return []row{{"partitions=4", chordal.EngineConfig{Partitions: 4}}}
	case chordal.EngineSharded:
		return []row{{"shards=3", chordal.EngineConfig{Shards: 3}}}
	case chordal.EngineDearing:
		return []row{{"start=0", chordal.EngineConfig{Start: 0}}}
	case chordal.EngineElimination:
		return []row{
			{"order=mindeg", chordal.EngineConfig{Order: chordal.OrderMinDegree}},
			{"order=natural", chordal.EngineConfig{Order: chordal.OrderNatural}},
		}
	default:
		return []row{{"", chordal.EngineConfig{}}}
	}
}

// engineBench runs the bake-off: every registered engine (each under
// its engineConfigs) x the engineSources zoo, with verification on and
// the shared quality metrics recorded per row. Writes the JSON report
// to out and exits non-zero if any row fails verification.
func engineBench(out string, trials int) error {
	if trials < 1 {
		trials = 1
	}
	rep := engineReport{
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Trials:      trials,
		Engines:     chordal.EngineNames(),
		Sources:     engineSources,
		AllVerified: true,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	fmt.Printf("engine suite: %d engines x %d sources on %d CPUs, best of %d trials\n",
		len(rep.Engines), len(engineSources), rep.CPUs, trials)
	for _, source := range engineSources {
		acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
		if err != nil {
			return err
		}
		g := acq.Input
		fmt.Printf("\n%s: %s\n", source, acq.InputStats)
		for _, engine := range rep.Engines {
			for _, ec := range engineConfigs(engine) {
				spec := chordal.Spec{
					Source:       source,
					Engine:       engine,
					EngineConfig: ec.cfg,
					Verify:       true,
				}
				row := engineRow{Engine: engine, Config: ec.label, Source: source}
				var res *chordal.PipelineResult
				for t := 0; t < trials; t++ {
					runtime.GC()
					var before, after runtime.MemStats
					runtime.ReadMemStats(&before)
					t0 := time.Now()
					r, err := chordal.Runner{Input: g}.Run(context.Background(), spec)
					if err != nil {
						return fmt.Errorf("%s on %s: %w", engine, source, err)
					}
					ms := float64(time.Since(t0).Microseconds()) / 1000
					runtime.ReadMemStats(&after)
					if res == nil || ms < row.Millis {
						res = r
						row.Millis = ms
						row.PeakRSSEstimateBytes = after.Sys
						row.AllocDeltaBytes = after.TotalAlloc - before.TotalAlloc
					}
				}
				row.Verified = res.Verified && res.ChordalOK
				row.Maximal = res.MaximalityAudited && res.ReAddableEdges == 0
				row.ChordalEdges = res.Subgraph.NumEdges()
				if q := res.Quality; q != nil {
					row.RetentionPct = q.RetentionPct
					row.FillComputed = q.FillComputed
					row.FillIn = q.FillIn
					if q.CliquesComputed {
						row.Treewidth = q.Treewidth
						row.ChromaticNumber = q.ChromaticNumber
					}
				}
				if !row.Verified {
					rep.AllVerified = false
				}
				rep.Rows = append(rep.Rows, row)
				status := "chordal"
				if !row.Verified {
					status = "NOT CHORDAL"
				}
				maximal := ""
				if row.Maximal {
					maximal = " maximal"
				}
				fmt.Printf("  %-12s %-16s %9.3f ms  %7d edges (%5.1f%%)  fill %6d  tw %3d  %s%s\n",
					engine, ec.label, row.Millis, row.ChordalEdges, row.RetentionPct,
					row.FillIn, row.Treewidth, status, maximal)
			}
		}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	if !rep.AllVerified {
		return fmt.Errorf("engine suite: some rows failed verification")
	}
	return nil
}

// streamRow is one cell of the stream suite: a (source, repair cadence)
// pair with its fastest session timings and the final session stats.
type streamRow struct {
	Source string `json:"source"`
	// RepairEvery is the session's automatic repair cadence; 0 repairs
	// only at Close (the spec has Repair on in every row).
	RepairEvery int   `json:"repairEvery"`
	Edges       int64 `json:"edges"`
	// PushMillis covers the admission loop (every delta through the
	// maintainer), CloseMillis the canonical extraction + verify at
	// EOF; AdmissionsPerSec is Edges over the push time.
	PushMillis       float64 `json:"pushMillis"`
	CloseMillis      float64 `json:"closeMillis"`
	AdmissionsPerSec float64 `json:"admissionsPerSec"`
	// The final stats of the fastest trial: how much of the input the
	// online pass admitted directly, how much arrived via repair
	// passes, and how many passes the cadence cost.
	Admitted int64 `json:"admitted"`
	Repaired int64 `json:"repaired"`
	Repairs  int64 `json:"repairs"`
	Deferred int64 `json:"deferred"`
	// Verified is the Close-time chordality check on the canonical
	// subgraph — the suite's correctness gate.
	Verified     bool  `json:"verified"`
	ChordalEdges int64 `json:"chordalEdges"`
}

// streamReport is the JSON record of one -stream-suite run.
type streamReport struct {
	CPUs       int `json:"cpus"`
	GOMAXPROCS int `json:"gomaxprocs"`
	Trials     int `json:"trials"`
	// OverlapValid marks whether timings reflect real parallel close
	// extractions: false on a single-CPU machine, where the Close-time
	// engine cannot overlap workers and cadence comparisons measure
	// only the admission loop honestly.
	OverlapValid bool        `json:"overlapValid"`
	AllVerified  bool        `json:"allVerified"`
	Cadences     []int       `json:"cadences"`
	Sources      []string    `json:"sources"`
	Rows         []streamRow `json:"rows"`
	Timestamp    string      `json:"timestamp"`
}

// streamSources is the stream-suite zoo: the engine bake-off sources,
// whose sizes keep the full cadence matrix in CI smoke time.
var streamSources = engineSources

// streamCadences is the repair-cadence axis: repair only at Close
// (maximum deferral, one big pass), every 64 deltas (amortized), and
// every 512 (coarse).
var streamCadences = []int{0, 64, 512}

// streamBench drives a full streaming session per (source, cadence)
// cell — open, push every edge, close for the canonical extraction —
// and records admission throughput plus how the repair cadence shifts
// work between the online pass and Close. Writes the JSON report to
// out and exits non-zero if any close fails verification.
func streamBench(out string, trials int) error {
	if trials < 1 {
		trials = 1
	}
	rep := streamReport{
		CPUs:         runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Trials:       trials,
		OverlapValid: runtime.NumCPU() > 1,
		AllVerified:  true,
		Cadences:     streamCadences,
		Sources:      streamSources,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	ctx := context.Background()
	fmt.Printf("stream suite: %d sources x %d cadences on %d CPUs, best of %d trials\n",
		len(streamSources), len(streamCadences), rep.CPUs, trials)
	for _, source := range streamSources {
		acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
		if err != nil {
			return err
		}
		g := acq.Input
		us, vs := g.EdgeList()
		fmt.Printf("\n%s: %s\n", source, acq.InputStats)
		for _, cadence := range streamCadences {
			row := streamRow{Source: source, RepairEvery: cadence, Edges: g.NumEdges()}
			for t := 0; t < trials; t++ {
				spec := chordal.Spec{
					Mode:         chordal.ModeStream,
					EngineConfig: chordal.EngineConfig{Repair: true},
					Verify:       true,
				}
				s, err := chordal.OpenStream(ctx, spec, chordal.StreamConfig{
					Vertices:    g.NumVertices(),
					RepairEvery: cadence,
				})
				if err != nil {
					return err
				}
				t0 := time.Now()
				for i := range us {
					if _, err := s.Push(ctx, us[i], vs[i]); err != nil {
						return err
					}
				}
				pushMs := float64(time.Since(t0).Microseconds()) / 1000
				t0 = time.Now()
				res, err := s.Close(ctx)
				if err != nil {
					return err
				}
				closeMs := float64(time.Since(t0).Microseconds()) / 1000
				if row.PushMillis == 0 || pushMs+closeMs < row.PushMillis+row.CloseMillis {
					st := res.Report.Stream
					row.PushMillis = pushMs
					row.CloseMillis = closeMs
					row.Admitted = st.Admitted
					row.Repaired = st.Repaired
					row.Repairs = st.Repairs
					row.Deferred = st.Deferred
					row.Verified = res.Report.Verify != nil && res.Report.Verify.Chordal
					row.ChordalEdges = res.Subgraph.NumEdges()
				}
			}
			if row.PushMillis > 0 {
				row.AdmissionsPerSec = float64(row.Edges) / (row.PushMillis / 1000)
			}
			if !row.Verified {
				rep.AllVerified = false
			}
			rep.Rows = append(rep.Rows, row)
			status := "chordal"
			if !row.Verified {
				status = "NOT CHORDAL"
			}
			fmt.Printf("  repairEvery=%-4d push %9.3f ms (%11.0f adm/s)  close %9.3f ms  admitted %7d  repaired %6d in %4d passes  %s\n",
				cadence, row.PushMillis, row.AdmissionsPerSec, row.CloseMillis,
				row.Admitted, row.Repaired, row.Repairs, status)
		}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	if !rep.AllVerified {
		return fmt.Errorf("stream suite: some sessions failed verification")
	}
	return nil
}

// externalRow is one cell of the external suite: a (source, shards,
// resident) configuration of the out-of-core engine run from a .bin
// file, with its fastest times, the fastest trial's IO accounting, and
// the byte-identity gate against the in-memory sharded engine at the
// same shard count.
type externalRow struct {
	Source   string `json:"source"`
	Shards   int    `json:"shards"`
	Resident int    `json:"resident"`
	// ShardedMillis is the in-memory sharded engine's fastest
	// extract-stage time at the same shard count; ExternalMillis the
	// out-of-core extract stage on the temp .bin (open + decode +
	// extract + merge included). Stage timings, not wall clock, so the
	// verify and quality passes outside the engines do not distort the
	// comparison.
	ShardedMillis  float64 `json:"shardedMillis"`
	ExternalMillis float64 `json:"externalMillis"`
	// The IO accounting of the fastest external trial: whether the file
	// was memory-mapped (false = buffered fallback), the byte volumes,
	// the decoded-shard residency watermark, and the decode/kernel
	// overlap the double buffer won.
	Mapped            bool    `json:"mapped"`
	BytesMapped       int64   `json:"bytesMapped"`
	BytesRead         int64   `json:"bytesRead"`
	SpillBytes        int64   `json:"spillBytes"`
	PeakResidentBytes int64   `json:"peakResidentBytes"`
	OverlapMillis     float64 `json:"overlapMillis"`
	// ByteIdentical is the suite's gate: the external subgraph's edge
	// hash must equal the sharded engine's at equal shards. Verified is
	// the external run's own chordality check.
	ByteIdentical bool   `json:"byteIdentical"`
	Verified      bool   `json:"verified"`
	ChordalEdges  int64  `json:"chordalEdges"`
	EdgeHash      string `json:"edgeHash"`
}

// externalReport is the JSON record of one -external-suite run.
type externalReport struct {
	CPUs       int   `json:"cpus"`
	GOMAXPROCS int   `json:"gomaxprocs"`
	Trials     int   `json:"trials"`
	Shards     []int `json:"shards"`
	Residents  []int `json:"residents"`
	// Sources is the zoo (the engine bake-off's); AllIdentical reports
	// that every cell matched its sharded baseline and verified — the
	// suite exits non-zero otherwise.
	Sources      []string      `json:"sources"`
	AllIdentical bool          `json:"allIdentical"`
	Rows         []externalRow `json:"rows"`
	Timestamp    string        `json:"timestamp"`
}

// extractMillis is the run's extract-stage duration in milliseconds —
// the engine's own cost, excluding acquire, verify, and quality.
func extractMillis(res *chordal.PipelineResult) float64 {
	for _, st := range res.Timings {
		if st.Stage == "extract" {
			return float64(st.Duration.Microseconds()) / 1000
		}
	}
	return 0
}

// graphHash is edgeHash over a graph's full edge list — the
// byte-identity witness for merged subgraphs.
func graphHash(g *chordal.Graph) string {
	us, vs := g.EdgeList()
	edges := make([]chordal.Edge, len(us))
	for i := range us {
		edges[i] = chordal.Edge{U: us[i], V: vs[i]}
	}
	return edgeHash(edges)
}

// externalBench runs the out-of-core suite: every zoo source is saved
// to a temp .bin and extracted by the external engine straight from the
// file (the no-acquire source path) across a shards x resident grid,
// against the in-memory sharded engine at equal shard counts as both
// the byte-identity gate and the timing baseline. Writes the JSON
// report to out and exits non-zero if any cell diverges or fails
// verification.
func externalBench(out string, trials int) error {
	if trials < 1 {
		trials = 1
	}
	rep := externalReport{
		CPUs:         runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Trials:       trials,
		Shards:       []int{2, 4, 8},
		Residents:    []int{2, 3},
		Sources:      engineSources,
		AllIdentical: true,
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
	}
	dir, err := os.MkdirTemp("", "chordal-bench-ext-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()
	fmt.Printf("external suite: %d sources x shards %v x resident %v on %d CPUs, best of %d trials\n",
		len(rep.Sources), rep.Shards, rep.Residents, rep.CPUs, trials)
	for si, source := range rep.Sources {
		acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
		if err != nil {
			return err
		}
		g := acq.Input
		bin := filepath.Join(dir, fmt.Sprintf("src%d.bin", si))
		if err := chordal.SaveGraph(bin, g); err != nil {
			return err
		}
		fmt.Printf("\n%s: %s (%d-byte .bin)\n", source, acq.InputStats, g.SizeBytes())
		for _, shards := range rep.Shards {
			// In-memory sharded baseline: the identity oracle and the
			// cost of having the whole CSR resident.
			baseSpec := chordal.Spec{
				Engine:       chordal.EngineSharded,
				EngineConfig: chordal.EngineConfig{Shards: shards},
			}
			var baseHash string
			var baseMs float64
			for t := 0; t < trials; t++ {
				r, err := chordal.Runner{Input: g}.Run(ctx, baseSpec)
				if err != nil {
					return fmt.Errorf("sharded on %s: %w", source, err)
				}
				if ms := extractMillis(r); baseMs == 0 || ms < baseMs {
					baseMs = ms
					baseHash = graphHash(r.Subgraph)
				}
			}
			for _, resident := range rep.Residents {
				row := externalRow{Source: source, Shards: shards, Resident: resident, ShardedMillis: baseMs}
				spec := chordal.Spec{
					Source:       bin,
					Engine:       chordal.EngineExternal,
					EngineConfig: chordal.EngineConfig{Shards: shards, ResidentShards: resident},
					Verify:       true,
				}
				var res *chordal.PipelineResult
				for t := 0; t < trials; t++ {
					r, err := spec.Run()
					if err != nil {
						return fmt.Errorf("external on %s: %w", source, err)
					}
					if ms := extractMillis(r); res == nil || ms < row.ExternalMillis {
						res = r
						row.ExternalMillis = ms
					}
				}
				if ex := res.External; ex != nil {
					row.Mapped = ex.Mapped
					row.BytesMapped = ex.BytesMapped
					row.BytesRead = ex.BytesRead
					row.SpillBytes = ex.SpillBytes
					row.PeakResidentBytes = ex.PeakResidentBytes
					row.OverlapMillis = ex.OverlapMillis
				}
				row.Verified = res.Verified && res.ChordalOK
				row.ChordalEdges = res.Subgraph.NumEdges()
				row.EdgeHash = graphHash(res.Subgraph)
				row.ByteIdentical = row.EdgeHash == baseHash
				if !row.ByteIdentical || !row.Verified {
					rep.AllIdentical = false
				}
				rep.Rows = append(rep.Rows, row)
				status := "identical"
				if !row.ByteIdentical {
					status = "DIVERGED"
				} else if !row.Verified {
					status = "NOT CHORDAL"
				}
				fmt.Printf("  shards=%d resident=%d: sharded %9.3f ms, external %9.3f ms  peak ~%8d B  overlap %7.3f ms  %s\n",
					shards, resident, row.ShardedMillis, row.ExternalMillis,
					row.PeakResidentBytes, row.OverlapMillis, status)
			}
		}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", out)
	if !rep.AllIdentical {
		return fmt.Errorf("external suite: some cells diverged from the sharded baseline or failed verification")
	}
	return nil
}

// dedupInts drops duplicates preserving first occurrence.
func dedupInts(in []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// sweep measures pipeline acquisition once and extraction across a
// doubling worker axis on the given source, the Figure 4/5-style curve
// for arbitrary inputs.
func sweep(source string, maxProcs, trials int) error {
	if maxProcs <= 0 {
		maxProcs = runtime.GOMAXPROCS(0)
	}
	if trials < 1 {
		trials = 1
	}
	acq, err := chordal.Spec{Source: source, Engine: chordal.EngineNone}.Run()
	if err != nil {
		return err
	}
	fmt.Printf("source %s: %s\n", source, acq.InputStats)
	for _, st := range acq.Timings {
		fmt.Printf("stage %-8s %12s\n", st.Stage, st.Duration)
	}
	axis := []int{}
	for w := 1; w <= maxProcs; w *= 2 {
		axis = append(axis, w)
	}
	if last := axis[len(axis)-1]; last != maxProcs {
		axis = append(axis, maxProcs) // full-machine endpoint
	}
	fmt.Printf("\n%8s %14s %14s %10s\n", "workers", "extract", "chordal-edges", "iters")
	for _, workers := range axis {
		best := time.Duration(0)
		var edges, iters int
		for t := 0; t < trials; t++ {
			res, err := chordal.Extract(acq.Input, chordal.Options{Workers: workers})
			if err != nil {
				return err
			}
			// Keep every column from the same (fastest) run.
			if best == 0 || res.Total < best {
				best = res.Total
				edges, iters = res.NumChordalEdges(), len(res.Iterations)
			}
		}
		fmt.Printf("%8d %14s %14d %10d\n", workers, best, edges, iters)
	}
	return nil
}
