// Command chordal extracts a maximal chordal subgraph from a graph file
// or generator spec using the paper's multithreaded algorithm,
// optionally verifying the result and writing the subgraph out. It is a
// thin flag layer over the chordal.Spec API: flags compile to one
// declarative Spec, which runs through the same engine registry and
// runner as the library and the HTTP service.
//
// Usage:
//
//	chordal -in graph.bin -out sub.bin -verify
//	chordal -in rmat-g:16:7 -variant unopt -schedule async -workers 8
//	chordal -in rmat-g:18:7 -shards 8 -verify   # sharded engine
//	chordal -in graph.txt -serial               # Dearing et al. baseline
//	chordal -in rmat-er:12 -json                # machine-readable report
//
// Exactly one engine may be selected: combining -serial, -partition,
// -shards, or a conflicting -engine name exits non-zero with a clear
// error instead of silently picking one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"chordal"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph path or generator spec (required)")
		out        = flag.String("out", "", "optional output path for the chordal subgraph")
		engineSel  = flag.String("engine", "", "extraction engine: "+strings.Join(chordal.EngineNames(), "|")+" (default parallel; -serial/-partition/-shards imply one)")
		variant    = flag.String("variant", "auto", "auto|opt|unopt")
		schedule   = flag.String("schedule", "dataflow", "dataflow|async|sync")
		workers    = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		serial     = flag.Bool("serial", false, "use the serial Dearing et al. baseline engine")
		parts      = flag.Int("partition", 0, "use the distributed-style partitioned engine with this many partitions (plus cycle cleanup)")
		shards     = flag.Int("shards", 0, "use the sharded engine with this many vertex-range shards (border edges reconciled chordality-preserving)")
		stitchOnly = flag.Bool("shard-stitch-only", false, "with -shards: reconcile border edges by spanning stitch only")
		repair     = flag.Bool("repair", false, "run the maximality repair post-pass")
		stitch     = flag.Bool("stitch", false, "stitch disconnected chordal components")
		bfs        = flag.Bool("bfs-relabel", false, "renumber vertices in BFS order before extraction")
		doVerify   = flag.Bool("verify", false, "verify chordality (and audit maximality on small graphs)")
		iters      = flag.Bool("iters", false, "print per-iteration queue statistics")
		timings    = flag.Bool("timings", false, "print per-stage pipeline timings")
		jsonOut    = flag.Bool("json", false, "emit the full run report as one JSON object on stdout (for benchrunner and CI)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chordal: -in is required (a path or one of:\n"+chordal.SourceSpecs+")")
		flag.Usage()
		os.Exit(2)
	}

	engine := *engineSel
	if *serial {
		if engine != "" && engine != chordal.EngineSerial {
			fail(fmt.Errorf("-serial conflicts with -engine %s", engine))
		}
		engine = chordal.EngineSerial
	}

	spec := chordal.Spec{
		Source: *in,
		Engine: engine,
		EngineConfig: chordal.EngineConfig{
			Variant:         *variant,
			Schedule:        *schedule,
			Workers:         *workers,
			Repair:          *repair,
			Stitch:          *stitch,
			Partitions:      *parts,
			Shards:          *shards,
			ShardStitchOnly: *stitchOnly,
		},
		Verify: *doVerify,
		Output: *out,
	}
	if *bfs {
		spec.Relabel = "bfs"
	}
	// Normalize up front: engine conflicts (say -serial -shards 4) and
	// unknown enum names exit here, before any graph is loaded.
	spec, err := spec.Normalize()
	if err != nil {
		fail(err)
	}

	res, err := spec.Run()
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		rep, err := chordal.Report(spec, res)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		// Same exit-code contract as the text mode: a failed verify or
		// a failed shard reconciliation self-check is non-zero.
		if (res.Verified && !res.ChordalOK) || (res.Shard != nil && !res.Shard.Chordal) {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("input: %s\n", res.InputStats)
	if *bfs {
		fmt.Println("relabeled vertices in BFS order")
	}

	switch spec.Engine {
	case chordal.EngineNone:
		// Acquire/relabel/write only; nothing was extracted.
	case chordal.EngineSerial:
		fmt.Printf("serial (Dearing et al.): %d chordal edges in %s\n",
			res.Subgraph.NumEdges(), res.SerialDuration)
	case chordal.EnginePartitioned:
		ps := res.Partition
		fmt.Printf("partitioned (%d parts): %d interior + %d border edges kept; cleanup removed %d in %d rounds\n",
			ps.Parts, ps.InteriorEdges, ps.BorderAdmitted, ps.CleanupRemoved, ps.CleanupRounds)
	case chordal.EngineSharded:
		sh := res.Shard
		fmt.Printf("sharded (%d shards): %d interior + %d stitched (%d border bridges) + %d border-admitted + %d repaired = %d edges\n",
			sh.Shards, sh.InteriorEdges, sh.StitchedEdges, sh.BorderBridges, sh.BorderAdmitted,
			sh.RepairedEdges, res.Subgraph.NumEdges())
		if *iters {
			fmt.Printf("%6s %12s %12s\n", "shard", "iters", "edges")
			for i, it := range sh.PerShardIterations {
				fmt.Printf("%6d %12d %12d\n", i, it, sh.PerShardEdges[i])
			}
		}
		if !sh.Chordal {
			fail(fmt.Errorf("shard reconciliation self-check FAILED: merged subgraph not chordal"))
		}
	default:
		r := res.Extraction
		fmt.Printf("parallel (%s/%s): %d chordal edges (%.1f%% of input) in %s, %d iterations\n",
			r.Variant, r.Schedule, r.NumChordalEdges(),
			100*float64(r.NumChordalEdges())/float64(res.Input.NumEdges()),
			r.Total, len(r.Iterations))
		if r.RepairedEdges > 0 {
			fmt.Printf("repair pass re-admitted %d edges\n", r.RepairedEdges)
		}
		if r.StitchedEdges > 0 {
			fmt.Printf("stitch pass connected %d component pairs\n", r.StitchedEdges)
		}
		if *iters {
			fmt.Printf("%6s %12s %12s %12s %12s\n", "iter", "|Q1|", "tested", "accepted", "time")
			for _, it := range r.Iterations {
				fmt.Printf("%6d %12d %12d %12d %12s\n",
					it.Index, it.QueueSize, it.EdgesTested, it.EdgesAccepted, it.Duration)
			}
		}
	}

	if res.Verified {
		if !res.ChordalOK {
			fail(fmt.Errorf("verification FAILED: output is not chordal"))
		}
		fmt.Println("verified: output is chordal")
		switch {
		case !res.MaximalityAudited:
			fmt.Println("maximality audit skipped (graph too large; use -repair to enforce)")
		case res.ReAddableEdges == 0:
			fmt.Println("verified: output is maximal (no re-addable edges)")
		default:
			fmt.Printf("maximality audit: %d+ re-addable edges (see DESIGN.md §5; rerun with -repair)\n",
				res.ReAddableEdges)
		}
	}

	if *out != "" {
		written := res.Subgraph
		if written == nil {
			written = res.Input
		}
		fmt.Printf("wrote %s: %s\n", *out, chordal.ComputeStats(written))
	}
	if *timings {
		for _, st := range res.Timings {
			fmt.Printf("stage %-8s %12s\n", st.Stage, st.Duration)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chordal:", err)
	os.Exit(1)
}
