// Command chordal extracts a maximal chordal subgraph from a graph file
// using the paper's multithreaded algorithm, optionally verifying the
// result and writing the subgraph out.
//
// Usage:
//
//	chordal -in graph.bin -out sub.bin -verify
//	chordal -in graph.txt -variant unopt -schedule async -workers 8
//	chordal -in graph.txt -serial          # Dearing et al. baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"chordal/internal/analysis"
	"chordal/internal/core"
	"chordal/internal/dearing"
	"chordal/internal/graph"
	"chordal/internal/partition"
	"chordal/internal/verify"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph path (required)")
		out      = flag.String("out", "", "optional output path for the chordal subgraph")
		variant  = flag.String("variant", "auto", "auto|opt|unopt")
		schedule = flag.String("schedule", "dataflow", "dataflow|async|sync")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		serial   = flag.Bool("serial", false, "use the serial Dearing et al. baseline")
		parts    = flag.Int("partition", 0, "use the distributed-style baseline with this many partitions (plus cycle cleanup)")
		repair   = flag.Bool("repair", false, "run the maximality repair post-pass")
		stitch   = flag.Bool("stitch", false, "stitch disconnected chordal components")
		bfs      = flag.Bool("bfs-relabel", false, "renumber vertices in BFS order before extraction")
		doVerify = flag.Bool("verify", false, "verify chordality (and audit maximality on small graphs)")
		iters    = flag.Bool("iters", false, "print per-iteration queue statistics")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chordal: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := graph.LoadFile(*in)
	if err != nil {
		fail(err)
	}
	fmt.Printf("input: %s\n", graph.ComputeStats(g))

	if *bfs {
		g = g.Relabel(analysis.BFSOrder(g, 0))
		fmt.Println("relabeled vertices in BFS order")
	}

	var sub *graph.Graph
	switch {
	case *serial:
		r := dearing.Extract(g, 0)
		fmt.Printf("serial (Dearing et al.): %d chordal edges in %s\n", r.NumChordalEdges(), r.Total)
		sub = r.ToGraph(g.NumVertices())
	case *parts > 0:
		r, rep := partition.ExtractAndClean(g, *parts)
		fmt.Printf("partitioned (%d parts): %d interior + %d border edges kept; cleanup removed %d in %d rounds\n",
			r.Parts, r.InteriorEdges, r.BorderAdmitted, rep.Removed, rep.Rounds)
		sub = r.ToGraph(g.NumVertices())
	default:
		opts := core.Options{Workers: *workers, RepairMaximality: *repair, StitchComponents: *stitch}
		switch *variant {
		case "auto":
			opts.Variant = core.VariantAuto
		case "opt":
			opts.Variant = core.VariantOptimized
		case "unopt":
			opts.Variant = core.VariantUnoptimized
		default:
			fail(fmt.Errorf("unknown variant %q", *variant))
		}
		switch *schedule {
		case "dataflow":
			opts.Schedule = core.ScheduleDataflow
		case "async":
			opts.Schedule = core.ScheduleAsync
		case "sync":
			opts.Schedule = core.ScheduleSynchronous
		default:
			fail(fmt.Errorf("unknown schedule %q", *schedule))
		}
		res, err := core.Extract(g, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("parallel (%s/%s): %d chordal edges (%.1f%% of input) in %s, %d iterations\n",
			res.Variant, res.Schedule, res.NumChordalEdges(),
			100*float64(res.NumChordalEdges())/float64(g.NumEdges()),
			res.Total, len(res.Iterations))
		if res.RepairedEdges > 0 {
			fmt.Printf("repair pass re-admitted %d edges\n", res.RepairedEdges)
		}
		if res.StitchedEdges > 0 {
			fmt.Printf("stitch pass connected %d component pairs\n", res.StitchedEdges)
		}
		if *iters {
			fmt.Printf("%6s %12s %12s %12s %12s\n", "iter", "|Q1|", "tested", "accepted", "time")
			for _, it := range res.Iterations {
				fmt.Printf("%6d %12d %12d %12d %12s\n",
					it.Index, it.QueueSize, it.EdgesTested, it.EdgesAccepted, it.Duration)
			}
		}
		sub = res.ToGraph()
	}

	if *doVerify {
		if !verify.IsChordal(sub) {
			fail(fmt.Errorf("verification FAILED: output is not chordal"))
		}
		fmt.Println("verified: output is chordal")
		if g.NumEdges() <= 200000 {
			viol := verify.AuditMaximality(g, sub, 10)
			if len(viol) == 0 {
				fmt.Println("verified: output is maximal (no re-addable edges)")
			} else {
				fmt.Printf("maximality audit: %d+ re-addable edges (see DESIGN.md §5; rerun with -repair)\n", len(viol))
			}
		} else {
			fmt.Println("maximality audit skipped (graph too large; use -repair to enforce)")
		}
	}

	if *out != "" {
		if err := graph.SaveFile(*out, sub); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s: %s\n", *out, graph.ComputeStats(sub))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chordal:", err)
	os.Exit(1)
}
