// Command chordal extracts a maximal chordal subgraph from a graph file
// or generator spec using the paper's multithreaded algorithm,
// optionally verifying the result and writing the subgraph out. It is a
// thin flag layer over the chordal.Spec API: flags compile to one
// declarative Spec, which runs through the same engine registry and
// runner as the library and the HTTP service.
//
// Usage:
//
//	chordal -in graph.bin -out sub.bin -verify
//	chordal -in rmat-g:16:7 -variant unopt -schedule async -workers 8
//	chordal -in rmat-g:18:7 -shards 8 -verify   # sharded engine
//	chordal -in big.bin -engine external -shards 8 -verify  # out-of-core from the .bin, never loaded whole
//	chordal -in graph.txt -serial               # Dearing et al. baseline
//	chordal -in rmat-er:12 -json                # machine-readable report
//	chordal -batch suite.txt -verify -json      # every source in a manifest
//	chordal -batch 'graphs/*.bin' -verify       # every file matching a glob
//	chordal -stream -repair -json < deltas.txt  # streaming session on stdin
//
// Exactly one engine may be selected: combining -serial, -partition,
// -shards, or a conflicting -engine name exits non-zero with a clear
// error instead of silently picking one.
//
// Stream mode (-stream) reads edge deltas from stdin — one per line,
// either "u v" or {"u":..,"v":..} (blank lines and # comments skipped) —
// and prints one NDJSON admission event per decision on stdout
// (admit/defer, plus repair-pass summaries). At EOF the session closes:
// the canonical batch engine runs over every distinct delta, so the
// final subgraph is independent of arrival order and identical to a
// batch run on the same edges. -json appends the chordal.StreamReport;
// -out writes the canonical subgraph; the human summary goes to stderr
// so stdout stays pure NDJSON.
//
// Batch mode runs every input listed in a manifest file (one source per
// line, # comments) or matching a glob pattern through one shared
// worker pool (see chordal.Batch): items with identical canonical specs
// run once, -workers bounds the batch's total parallelism instead of a
// single run's, and -json emits the aggregate chordal.BatchReport.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chordal"
)

func main() {
	var (
		in          = flag.String("in", "", "input graph path or generator spec (required)")
		out         = flag.String("out", "", "optional output path for the chordal subgraph")
		engineSel   = flag.String("engine", "", "extraction engine: "+strings.Join(chordal.EngineNames(), "|")+" (default parallel; -serial/-partition/-shards imply one)")
		variant     = flag.String("variant", "auto", "auto|opt|unopt")
		schedule    = flag.String("schedule", "dataflow", "dataflow|async|sync")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = pick by machine model, capped at all CPUs)")
		grain       = flag.Int("grain", 0, "extraction loop chunk size (0 = startup calibration)")
		degreeThr   = flag.Int("degree-threshold", 0, "chordal-set size switching the subset test to the bitset probe (0 = startup calibration, negative = merge scan only)")
		serial      = flag.Bool("serial", false, "use the serial Dearing et al. baseline engine")
		parts       = flag.Int("partition", 0, "use the distributed-style partitioned engine with this many partitions (plus cycle cleanup)")
		shards      = flag.Int("shards", 0, "use the sharded engine with this many vertex-range shards (border edges reconciled chordality-preserving)")
		stitchOnly  = flag.Bool("shard-stitch-only", false, "with -shards: reconcile border edges by spanning stitch only")
		resident    = flag.Int("resident-shards", 0, "with -engine external: max shards resident in memory at once (0 = 2, the double-buffer minimum)")
		maxDeferred = flag.Int("max-deferred", 0, "with -stream: bound on the deferred-edge queue; excess deltas drop with an overflow event (0 = unbounded)")
		startV      = flag.Int("start", 0, "with -engine dearing: start vertex the incremental extraction grows from")
		order       = flag.String("order", "", "with -engine elimination: elimination ordering, natural|mindeg (default mindeg)")
		repair      = flag.Bool("repair", false, "run the maximality repair post-pass")
		stitch      = flag.Bool("stitch", false, "stitch disconnected chordal components")
		bfs         = flag.Bool("bfs-relabel", false, "renumber vertices in BFS order before extraction")
		doVerify    = flag.Bool("verify", false, "verify chordality (and audit maximality on small graphs)")
		iters       = flag.Bool("iters", false, "print per-iteration queue statistics")
		timings     = flag.Bool("timings", false, "print per-stage pipeline timings")
		jsonOut     = flag.Bool("json", false, "emit the full run report as one JSON object on stdout (for benchrunner and CI)")
		batch       = flag.String("batch", "", "run every source in a manifest file (one per line, # comments) or matching a glob, over one shared worker pool")
		batchPar    = flag.Int("batch-par", 0, "with -batch: max items running simultaneously (0 = one per worker token)")
		stream      = flag.Bool("stream", false, "streaming session: read edge deltas from stdin, print NDJSON admission events, extract canonically at EOF")
		streamVerts = flag.Int("stream-vertices", 0, "with -stream: initial vertex universe (grows on demand)")
		repairEvery = flag.Int("repair-every", 0, "with -stream: run a repair pass every N deltas (0 = only at EOF with -repair)")
	)
	flag.Parse()

	// One template for both modes: -batch stamps each manifest source
	// into a copy, the single-run path adds -in/-out. Keeping a single
	// literal means a future EngineConfig flag cannot reach one mode
	// and silently miss the other.
	spec := chordal.Spec{
		Engine: pickEngine(*engineSel, *serial),
		EngineConfig: chordal.EngineConfig{
			Variant:         *variant,
			Schedule:        *schedule,
			Workers:         *workers,
			Grain:           *grain,
			DegreeThreshold: *degreeThr,
			Repair:          *repair,
			Stitch:          *stitch,
			Partitions:      *parts,
			Shards:          *shards,
			ShardStitchOnly: *stitchOnly,
			ResidentShards:  *resident,
			MaxDeferred:     *maxDeferred,
			Start:           *startV,
			Order:           *order,
		},
		Verify:  *doVerify,
		Relabel: relabelFlag(*bfs),
	}

	if *stream {
		if *in != "" || *batch != "" {
			fail(fmt.Errorf("-stream reads deltas from stdin; it conflicts with -in and -batch"))
		}
		if *iters || *timings {
			fail(fmt.Errorf("-iters and -timings are not supported with -stream"))
		}
		runStream(spec, *out, *jsonOut, *streamVerts, *repairEvery)
		return
	}
	if *batch != "" {
		if *in != "" || *out != "" {
			fail(fmt.Errorf("-batch replaces -in and does not support -out (outputs would collide)"))
		}
		if *iters || *timings {
			fail(fmt.Errorf("-iters and -timings are not supported with -batch; use -json for per-item reports"))
		}
		runBatch(*batch, *batchPar, *jsonOut, spec, *workers)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "chordal: -in is required (a path or one of:\n"+chordal.SourceSpecs+")")
		flag.Usage()
		os.Exit(2)
	}
	spec.Source = *in
	spec.Output = *out
	// Normalize up front: engine conflicts (say -serial -shards 4) and
	// unknown enum names exit here, before any graph is loaded.
	spec, err := spec.Normalize()
	if err != nil {
		fail(err)
	}

	res, err := spec.Run()
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		rep, err := chordal.Report(spec, res)
		if err != nil {
			fail(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		// Same exit-code contract as the text mode: a failed verify or
		// a failed shard reconciliation self-check is non-zero.
		if (res.Verified && !res.ChordalOK) || (res.Shard != nil && !res.Shard.Chordal) {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("input: %s\n", res.InputStats)
	if *bfs {
		fmt.Println("relabeled vertices in BFS order")
	}

	switch spec.Engine {
	case chordal.EngineNone:
		// Acquire/relabel/write only; nothing was extracted.
	case chordal.EngineSerial:
		fmt.Printf("serial (Dearing et al.): %d chordal edges in %s\n",
			res.Subgraph.NumEdges(), res.SerialDuration)
	case chordal.EngineDearing:
		fmt.Printf("dearing (start vertex %d): %d chordal edges in %s\n",
			res.Dearing.Start, res.Subgraph.NumEdges(), res.SerialDuration)
	case chordal.EngineElimination:
		fmt.Printf("elimination (%s order): %d chordal edges (not necessarily maximal)\n",
			res.Elimination.Order, res.Subgraph.NumEdges())
	case chordal.EnginePartitioned:
		ps := res.Partition
		fmt.Printf("partitioned (%d parts): %d interior + %d border edges kept; cleanup removed %d in %d rounds\n",
			ps.Parts, ps.InteriorEdges, ps.BorderAdmitted, ps.CleanupRemoved, ps.CleanupRounds)
	case chordal.EngineSharded:
		sh := res.Shard
		fmt.Printf("sharded (%d shards): %d interior + %d stitched (%d border bridges) + %d border-admitted + %d repaired = %d edges\n",
			sh.Shards, sh.InteriorEdges, sh.StitchedEdges, sh.BorderBridges, sh.BorderAdmitted,
			sh.RepairedEdges, res.Subgraph.NumEdges())
		if *iters {
			fmt.Printf("%6s %12s %12s\n", "shard", "iters", "edges")
			for i, it := range sh.PerShardIterations {
				fmt.Printf("%6d %12d %12d\n", i, it, sh.PerShardEdges[i])
			}
		}
		if !sh.Chordal {
			fail(fmt.Errorf("shard reconciliation self-check FAILED: merged subgraph not chordal"))
		}
	case chordal.EngineExternal:
		sh, ex := res.Shard, res.External
		fmt.Printf("external (%d shards, %d resident): %d interior + %d stitched (%d border bridges) + %d border-admitted = %d edges, edge cut %d (%.1f%%)\n",
			sh.Shards, ex.ResidentShards, sh.InteriorEdges, sh.StitchedEdges, sh.BorderBridges,
			sh.BorderAdmitted, res.Subgraph.NumEdges(), sh.EdgeCut, sh.EdgeCutPct)
		mode := "buffered reads"
		if ex.Mapped {
			mode = "mmap"
		}
		fmt.Printf("io (%s): %d bytes mapped, %d read, %d spilled; peak resident ~%d bytes; decode %.1fms, kernels %.1fms, overlap %.1fms\n",
			mode, ex.BytesMapped, ex.BytesRead, ex.SpillBytes, ex.PeakResidentBytes,
			ex.DecodeMillis, ex.KernelMillis, ex.OverlapMillis)
		if *iters {
			fmt.Printf("%6s %12s %12s\n", "shard", "iters", "edges")
			for i, it := range sh.PerShardIterations {
				fmt.Printf("%6d %12d %12d\n", i, it, sh.PerShardEdges[i])
			}
		}
		if !sh.Chordal {
			fail(fmt.Errorf("shard reconciliation self-check FAILED: merged subgraph not chordal"))
		}
	default:
		r := res.Extraction
		fmt.Printf("parallel (%s/%s): %d chordal edges (%.1f%% of input) in %s, %d iterations\n",
			r.Variant, r.Schedule, r.NumChordalEdges(),
			100*float64(r.NumChordalEdges())/float64(res.Input.NumEdges()),
			r.Total, len(r.Iterations))
		if r.RepairedEdges > 0 {
			fmt.Printf("repair pass re-admitted %d edges\n", r.RepairedEdges)
		}
		if r.StitchedEdges > 0 {
			fmt.Printf("stitch pass connected %d component pairs\n", r.StitchedEdges)
		}
		if *iters {
			fmt.Printf("%6s %12s %12s %12s %12s\n", "iter", "|Q1|", "tested", "accepted", "time")
			for _, it := range r.Iterations {
				fmt.Printf("%6d %12d %12d %12d %12s\n",
					it.Index, it.QueueSize, it.EdgesTested, it.EdgesAccepted, it.Duration)
			}
		}
	}

	if res.Verified {
		if !res.ChordalOK {
			fail(fmt.Errorf("verification FAILED: output is not chordal"))
		}
		fmt.Println("verified: output is chordal")
		switch {
		case !res.MaximalityAudited:
			fmt.Println("maximality audit skipped (graph too large; use -repair to enforce)")
		case res.ReAddableEdges == 0:
			fmt.Println("verified: output is maximal (no re-addable edges)")
		default:
			fmt.Printf("maximality audit: %d+ re-addable edges (see DESIGN.md §5; rerun with -repair)\n",
				res.ReAddableEdges)
		}
	}

	if q := res.Quality; q != nil {
		fmt.Printf("quality: retained %d/%d edges (%.1f%%)", q.EdgesRetained, q.EdgesInput, q.RetentionPct)
		if q.FillComputed {
			fmt.Printf(", fill-in under subgraph PEO %d", q.FillIn)
		}
		if q.CliquesComputed {
			fmt.Printf(", treewidth %d, chromatic number %d", q.Treewidth, q.ChromaticNumber)
		}
		fmt.Println()
	}

	if *out != "" {
		written := res.Subgraph
		if written == nil {
			written = res.Input
		}
		fmt.Printf("wrote %s: %s\n", *out, chordal.ComputeStats(written))
	}
	if *timings {
		for _, st := range res.Timings {
			fmt.Printf("stage %-8s %12s\n", st.Stage, st.Duration)
		}
	}
}

// pickEngine resolves -engine and the -serial shorthand into one
// engine name, failing on a conflicting combination.
func pickEngine(engine string, serial bool) string {
	if serial {
		if engine != "" && engine != chordal.EngineSerial {
			fail(fmt.Errorf("-serial conflicts with -engine %s", engine))
		}
		return chordal.EngineSerial
	}
	return engine
}

// relabelFlag maps -bfs-relabel onto the spec's relabel mode.
func relabelFlag(bfs bool) string {
	if bfs {
		return "bfs"
	}
	return ""
}

// batchSources resolves the -batch argument: an existing file is read
// as a manifest listing one source per line (blank lines and
// #-comments skipped); otherwise a pattern containing glob
// metacharacters expands to the matching files. The stat-first order
// keeps a manifest whose own name contains glob characters
// ("suite[v2].txt") readable.
func batchSources(arg string) ([]string, error) {
	if fi, err := os.Stat(arg); (err != nil || fi.IsDir()) && strings.ContainsAny(arg, "*?[") {
		matches, err := filepath.Glob(arg)
		if err != nil {
			return nil, fmt.Errorf("bad -batch glob %q: %w", arg, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("-batch glob %q matched no files", arg)
		}
		return matches, nil
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sources []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sources = append(sources, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("-batch manifest %q lists no sources", arg)
	}
	return sources, nil
}

// runBatch executes the batch mode: every source from the manifest or
// glob runs the template spec over one shared pool, then the aggregate
// report prints (text, or the full chordal.BatchReport with -json).
// Any failed item, failed verify, or failed shard self-check exits
// non-zero.
func runBatch(arg string, concurrency int, jsonOut bool, template chordal.Spec, workers int) {
	// Validate the flag template once before touching the manifest, so
	// an engine conflict (say -serial -shards 4) fails with one error
	// up front exactly as in single-run mode, instead of repeating per
	// item. Per-item validation still covers source-specific problems.
	probe := template
	probe.Source = "gnm:1:1"
	if err := probe.Validate(); err != nil {
		fail(err)
	}
	sources, err := batchSources(arg)
	if err != nil {
		fail(err)
	}
	specs := make([]chordal.Spec, len(sources))
	for i, src := range sources {
		specs[i] = template
		specs[i].Source = src
	}
	res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{
		Workers:     workers,
		Concurrency: concurrency,
	})
	if err != nil {
		fail(err)
	}

	rep := res.Report()
	bad := rep.Failed + rep.VerifyFailed

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		for i := range res.Items {
			it := &res.Items[i]
			switch {
			case it.Err != nil:
				fmt.Printf("[%d] %-32s ERROR: %v\n", i, sources[i], it.Err)
			case it.DupOf >= 0:
				fmt.Printf("[%d] %-32s = item %d (same canonical spec)\n", i, sources[i], it.DupOf)
			case it.Result.Subgraph == nil: // engine "none": nothing extracted
				fmt.Printf("[%d] %-32s V=%d E=%d (no extraction)\n",
					i, sources[i], it.Result.InputStats.Vertices, it.Result.InputStats.Edges)
			default:
				r := it.Result
				status := ""
				if r.Verified {
					status = "  chordal"
					if !r.ChordalOK {
						status = "  NOT CHORDAL"
					}
				}
				fmt.Printf("[%d] %-32s V=%d E=%d -> %d chordal edges%s\n",
					i, sources[i], r.InputStats.Vertices, r.InputStats.Edges,
					r.Subgraph.NumEdges(), status)
			}
		}
		fmt.Printf("batch: %d items (%d unique, %d deduplicated, %d failed, %d failed verify) in %s\n",
			rep.Total, rep.Unique, rep.Deduplicated, rep.Failed, rep.VerifyFailed, res.Wall)
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// runStream executes the streaming mode: the flag template becomes a
// stream-mode spec, stdin deltas drive the session, each decision is
// printed as one NDJSON event, and EOF closes the session with the
// canonical extraction. The subgraph is written by the CLI itself
// (stream specs reject Output — results come from Close), and the
// verify outcome keeps the usual exit-code contract.
func runStream(template chordal.Spec, out string, jsonOut bool, vertices, repairEvery int) {
	spec := template
	spec.Mode = chordal.ModeStream
	ctx := context.Background()
	enc := json.NewEncoder(os.Stdout)
	s, err := chordal.OpenStream(ctx, spec, chordal.StreamConfig{
		Vertices:    vertices,
		RepairEvery: repairEvery,
		Observer: func(ev chordal.Event) {
			switch ev.Type {
			case chordal.EventAdmit, chordal.EventDefer, chordal.EventRepair:
				enc.Encode(ev)
			}
		},
	})
	if err != nil {
		fail(err)
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		d, err := chordal.ParseEdgeDelta(text)
		if err != nil {
			fail(fmt.Errorf("stdin line %d: %w", line, err))
		}
		if _, err := s.Push(ctx, d.U, d.V); err != nil {
			fail(err)
		}
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	res, err := s.Close(ctx)
	if err != nil {
		fail(err)
	}
	rep := res.Report
	if jsonOut {
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
	} else {
		st := rep.Stream
		fmt.Fprintf(os.Stderr, "stream: %d deltas (%d admitted, %d repaired, %d deferred, %d duplicate, %d invalid), %d repair passes\n",
			st.Pushed, st.Admitted, st.Repaired, st.Deferred, st.Duplicates, st.Invalid, st.Repairs)
		fmt.Fprintf(os.Stderr, "canonical result: %d vertices, %d input edges -> %d chordal edges\n",
			rep.Input.Vertices, rep.Input.Edges, res.Subgraph.NumEdges())
		if v := rep.Verify; v != nil {
			if v.Chordal {
				fmt.Fprintln(os.Stderr, "verified: output is chordal")
			} else {
				fmt.Fprintln(os.Stderr, "verification FAILED: output is not chordal")
			}
		}
	}
	if out != "" {
		if err := chordal.SaveGraph(out, res.Subgraph); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %s\n", out, chordal.ComputeStats(res.Subgraph))
	}
	if v := rep.Verify; v != nil && !v.Chordal {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "chordal:", err)
	os.Exit(1)
}
