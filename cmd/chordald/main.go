// Command chordald is the extraction service: a long-running HTTP
// server that accepts graph uploads or generator Source specs, runs
// chordal.Pipeline jobs with bounded concurrency under a weighted-fair
// multi-tenant scheduler over a shared worker budget, caches generated
// inputs and completed extractions by canonical spec, and streams
// per-iteration progress as server-sent events.
//
// Usage:
//
//	chordald -addr :8080 -jobs 2 -workers 0
//	chordald -max-queue 256 -tenant-config tenants.json
//
// Tenancy: requests carry a tenant name in the X-Tenant (or X-API-Key)
// header; requests without one belong to the default tenant and behave
// exactly like the single-tenant service. -tenant-config names a JSON
// file mapping tenant name -> {weight, priority, maxQueue,
// maxConcurrent, ratePerSec, burst} (all fields optional); -max-queue
// bounds the global pending queue and -default-weight sets the weight
// of tenants the file does not name. When a queue is full or a rate
// limit is exceeded, submissions shed with 429 Too Many Requests and a
// Retry-After header computed from the observed drain rate.
//
// Endpoints (see internal/service and README.md for the full API):
//
//	POST   /v1/jobs              submit (JSON {source, options} or multipart upload)
//	GET    /v1/jobs/{id}         status + metrics
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	GET    /v1/jobs/{id}/result  chordal subgraph (?format=edges|bin|mtx)
//	GET    /v1/scheduler         fair-scheduler stats (per-tenant shares, sheds)
//	GET    /healthz              liveness + occupancy
//
// SIGINT/SIGTERM shut the server down gracefully: listeners close,
// in-flight jobs are canceled at their next iteration boundary, and
// their worker goroutines drain before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chordal/internal/sched"
	"chordal/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		jobs        = flag.Int("jobs", 2, "maximum concurrently running jobs")
		workers     = flag.Int("workers", 0, "worker tokens shared across jobs (0 = all CPUs)")
		inputCache  = flag.Int64("input-cache-bytes", 256<<20, "generated-input LRU byte budget, charged at CSR size (negative disables)")
		resultCache = flag.Int64("result-cache-bytes", 256<<20, "completed-extraction LRU byte budget, charged at CSR size (negative disables)")
		maxUpload   = flag.Int64("max-upload", 256<<20, "maximum multipart upload bytes")
		allowPaths  = flag.Bool("allow-paths", false, "permit server-side file paths as job sources (trusted deployments only)")
		jobTTL      = flag.Duration("job-ttl", 15*time.Minute, "garbage-collect terminal jobs this long after finishing (negative disables)")
		maxQueue    = flag.Int("max-queue", 0, "global pending-job queue bound; full queues shed with 429 (0 = default 4096, negative = unbounded)")
		defWeight   = flag.Int("default-weight", 0, "fair-share weight for tenants not named in -tenant-config (0 = 1)")
		tenantConf  = flag.String("tenant-config", "", "JSON file mapping tenant name to {weight, priority, maxQueue, maxConcurrent, ratePerSec, burst}")
	)
	flag.Parse()

	tenants, err := loadTenantConfig(*tenantConf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chordald:", err)
		os.Exit(2)
	}

	svc := service.New(service.Config{
		MaxConcurrent:    *jobs,
		Workers:          *workers,
		InputCacheBytes:  *inputCache,
		ResultCacheBytes: *resultCache,
		MaxUploadBytes:   *maxUpload,
		AllowPathSources: *allowPaths,
		JobTTL:           *jobTTL,
		Scheduler: sched.Config{
			MaxQueue:      *maxQueue,
			DefaultTenant: sched.TenantConfig{Weight: *defWeight},
		},
		Tenants: tenants,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Println("chordald: shutting down")
		// Cancel jobs first: SSE handlers stream until their job
		// reaches a terminal state, so draining jobs is what lets
		// Shutdown's handler wait finish.
		svc.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("chordald: shutdown: %v", err)
		}
	}()

	log.Printf("chordald: serving on %s (max %d concurrent jobs)", *addr, *jobs)
	err = httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		svc.Close()
		fmt.Fprintln(os.Stderr, "chordald:", err)
		os.Exit(1)
	}
	// ErrServerClosed means the signal goroutine is mid-shutdown: wait
	// for it to finish draining jobs and in-flight responses.
	<-shutdownDone
}

// loadTenantConfig reads the -tenant-config JSON file: an object
// mapping tenant name to its sched.TenantConfig. An empty path means
// no per-tenant overrides.
func loadTenantConfig(path string) (map[string]sched.TenantConfig, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant config: %w", err)
	}
	var tenants map[string]sched.TenantConfig
	if err := json.Unmarshal(data, &tenants); err != nil {
		return nil, fmt.Errorf("tenant config %s: %w", path, err)
	}
	return tenants, nil
}
