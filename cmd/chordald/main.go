// Command chordald is the extraction service: a long-running HTTP
// server that accepts graph uploads or generator Source specs, runs
// chordal.Pipeline jobs with bounded concurrency over a shared worker
// budget, caches generated inputs and completed extractions by
// canonical spec, and streams per-iteration progress as server-sent
// events.
//
// Usage:
//
//	chordald -addr :8080 -jobs 2 -workers 0
//
// Endpoints (see internal/service and README.md for the full API):
//
//	POST   /v1/jobs              submit (JSON {source, options} or multipart upload)
//	GET    /v1/jobs/{id}         status + metrics
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/jobs/{id}/events  SSE progress stream
//	GET    /v1/jobs/{id}/result  chordal subgraph (?format=edges|bin|mtx)
//	GET    /healthz              liveness + occupancy
//
// SIGINT/SIGTERM shut the server down gracefully: listeners close,
// in-flight jobs are canceled at their next iteration boundary, and
// their worker goroutines drain before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"chordal/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		jobs        = flag.Int("jobs", 2, "maximum concurrently running jobs")
		workers     = flag.Int("workers", 0, "worker tokens shared across jobs (0 = all CPUs)")
		inputCache  = flag.Int64("input-cache-bytes", 256<<20, "generated-input LRU byte budget, charged at CSR size (negative disables)")
		resultCache = flag.Int64("result-cache-bytes", 256<<20, "completed-extraction LRU byte budget, charged at CSR size (negative disables)")
		maxUpload   = flag.Int64("max-upload", 256<<20, "maximum multipart upload bytes")
		allowPaths  = flag.Bool("allow-paths", false, "permit server-side file paths as job sources (trusted deployments only)")
		jobTTL      = flag.Duration("job-ttl", 15*time.Minute, "garbage-collect terminal jobs this long after finishing (negative disables)")
	)
	flag.Parse()

	svc := service.New(service.Config{
		MaxConcurrent:    *jobs,
		Workers:          *workers,
		InputCacheBytes:  *inputCache,
		ResultCacheBytes: *resultCache,
		MaxUploadBytes:   *maxUpload,
		AllowPathSources: *allowPaths,
		JobTTL:           *jobTTL,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		log.Println("chordald: shutting down")
		// Cancel jobs first: SSE handlers stream until their job
		// reaches a terminal state, so draining jobs is what lets
		// Shutdown's handler wait finish.
		svc.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("chordald: shutdown: %v", err)
		}
	}()

	log.Printf("chordald: serving on %s (max %d concurrent jobs)", *addr, *jobs)
	err := httpSrv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		svc.Close()
		fmt.Fprintln(os.Stderr, "chordald:", err)
		os.Exit(1)
	}
	// ErrServerClosed means the signal goroutine is mid-shutdown: wait
	// for it to finish draining jobs and in-flight responses.
	<-shutdownDone
}
