// Command graphgen generates the test-suite graphs of the paper and
// writes them to disk.
//
// Usage:
//
//	graphgen -kind rmat-er -scale 16 -seed 42 -out er16.bin
//	graphgen -kind gse5140-unt -downscale 8 -out bio.txt
//
// Kinds: rmat-er, rmat-g, rmat-b, gse5140-crt, gse5140-unt,
// gse17072-ctl, gse17072-non. The output format follows the file
// extension: .bin (binary CSR), .mtx (Matrix Market), anything else a
// text edge list.
package main

import (
	"flag"
	"fmt"
	"os"

	"chordal/internal/biogen"
	"chordal/internal/graph"
	"chordal/internal/rmat"
)

func main() {
	var (
		kind      = flag.String("kind", "rmat-er", "graph family: rmat-er|rmat-g|rmat-b|gse5140-crt|gse5140-unt|gse17072-ctl|gse17072-non")
		scale     = flag.Int("scale", 14, "R-MAT scale (2^scale vertices)")
		edgeFac   = flag.Int("edgefactor", 8, "R-MAT edges per vertex")
		downscale = flag.Int("downscale", 8, "bio network gene-count divisor (1 = paper size)")
		seed      = flag.Uint64("seed", 42, "generator seed")
		out       = flag.String("out", "", "output path (.bin/.mtx/.txt); required")
		stats     = flag.Bool("stats", true, "print Table-I statistics of the generated graph")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := generate(*kind, *scale, *edgeFac, *downscale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if err := graph.SaveFile(*out, g); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("%s: %s\n", *out, graph.ComputeStats(g))
	}
}

func generate(kind string, scale, edgeFactor, downscale int, seed uint64) (*graph.Graph, error) {
	switch kind {
	case "rmat-er", "rmat-g", "rmat-b":
		var preset rmat.Preset
		switch kind {
		case "rmat-er":
			preset = rmat.ER
		case "rmat-g":
			preset = rmat.G
		default:
			preset = rmat.B
		}
		p := rmat.PresetParams(preset, scale, seed)
		p.EdgeFactor = edgeFactor
		return rmat.Generate(p)
	case "gse5140-crt":
		return biogen.Generate(biogen.PresetParams(biogen.GSE5140CRT, downscale, seed))
	case "gse5140-unt":
		return biogen.Generate(biogen.PresetParams(biogen.GSE5140UNT, downscale, seed))
	case "gse17072-ctl":
		return biogen.Generate(biogen.PresetParams(biogen.GSE17072CTL, downscale, seed))
	case "gse17072-non":
		return biogen.Generate(biogen.PresetParams(biogen.GSE17072NON, downscale, seed))
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}
