// Command graphgen generates the test-suite graphs of the paper and
// writes them to disk through the chordal.Spec generate→write path
// (engine "none": acquire and write, no extraction).
//
// Usage:
//
//	graphgen -kind rmat-er -scale 16 -seed 42 -out er16.bin
//	graphgen -kind gse5140-unt -downscale 8 -out bio.txt
//	graphgen -spec gnm:100000:800000:7 -out gnm.bin
//
// Kinds: rmat-er, rmat-g, rmat-b, gse5140-crt, gse5140-unt,
// gse17072-ctl, gse17072-non; -spec accepts any pipeline source spec
// and overrides -kind. The output format follows the file extension:
// .bin (binary CSR), .mtx (Matrix Market), anything else a text edge
// list.
package main

import (
	"flag"
	"fmt"
	"os"

	"chordal"
)

func main() {
	var (
		kind      = flag.String("kind", "rmat-er", "graph family: rmat-er|rmat-g|rmat-b|gse5140-crt|gse5140-unt|gse17072-ctl|gse17072-non")
		spec      = flag.String("spec", "", "full generator spec (overrides -kind); one of:\n"+chordal.SourceSpecs)
		scale     = flag.Int("scale", 14, "R-MAT scale (2^scale vertices)")
		edgeFac   = flag.Int("edgefactor", 8, "R-MAT edges per vertex")
		downscale = flag.Int("downscale", 8, "bio network gene-count divisor (1 = paper size)")
		seed      = flag.Uint64("seed", 42, "generator seed")
		out       = flag.String("out", "", "output path (.bin/.mtx/.txt); required")
		stats     = flag.Bool("stats", true, "print Table-I statistics of the generated graph")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "graphgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	source := *spec
	if source == "" {
		switch *kind {
		case "rmat-er", "rmat-g", "rmat-b":
			source = fmt.Sprintf("%s:%d:%d:%d", *kind, *scale, *seed, *edgeFac)
		case "gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non":
			source = fmt.Sprintf("%s:%d:%d", *kind, *downscale, *seed)
		default:
			fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
			os.Exit(2)
		}
	}
	res, err := chordal.Spec{Source: source, Engine: chordal.EngineNone, Output: *out}.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	if *stats {
		fmt.Printf("%s: %s\n", *out, res.InputStats)
	}
}
