// Command graphstats reports the structural measures the paper uses to
// characterize its inputs (Table I, Figure 2, Figure 3): degree
// statistics, clustering coefficients by degree, shortest-path-length
// distribution, connected components, assortativity and k-cores.
//
// Usage:
//
//	graphstats -in graph.bin
//	graphstats -in rmat-b:14 -paths -clustering -sources 512
//
// -in accepts a file path or any chordal.Spec generator source; the
// graph is acquired through the pipeline's parallel ingestion path.
package main

import (
	"flag"
	"fmt"
	"os"

	"chordal"
	"chordal/internal/analysis"
	"chordal/internal/verify"
)

func main() {
	var (
		in         = flag.String("in", "", "input graph path or generator spec (required)")
		clustering = flag.Bool("clustering", false, "print average clustering coefficient by degree (Figure 2)")
		paths      = flag.Bool("paths", false, "print shortest-path-length distribution (Figure 3)")
		sources    = flag.Int("sources", 0, "BFS sources for -paths (0 = all)")
		cores      = flag.Bool("kcores", false, "print k-core size distribution")
		chordality = flag.Bool("chordal", false, "test chordality; print a hole witness if not chordal")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "graphstats: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	res, err := chordal.Spec{Source: *in, Engine: chordal.EngineNone}.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphstats:", err)
		os.Exit(1)
	}
	g := res.Input

	fmt.Println(res.InputStats)
	_, comps := analysis.Components(g)
	fmt.Printf("components: %d\n", comps)
	fmt.Printf("degree assortativity: %+.4f\n", analysis.DegreeAssortativity(g))
	fmt.Printf("mean clustering coefficient: %.4f\n", analysis.GlobalClusteringCoefficient(g))

	if *clustering {
		fmt.Printf("\n%10s %12s %10s\n", "degree", "avg-cc", "vertices")
		for _, p := range analysis.ClusteringByDegree(g) {
			fmt.Printf("%10d %12.4f %10d\n", p.Degree, p.AvgCC, p.Vertices)
		}
	}
	if *paths {
		h := analysis.ShortestPathHistogram(g, *sources)
		fmt.Printf("\n%8s %14s\n", "length", "frequency")
		for d := 1; d < len(h); d++ {
			fmt.Printf("%8d %14d\n", d, h[d])
		}
	}
	if *chordality {
		if verify.IsChordal(g) {
			fmt.Println("chordal: yes")
		} else {
			hole := verify.FindHole(verify.AdjFromGraph(g))
			fmt.Printf("chordal: no (witness hole of length %d: %v)\n", len(hole), hole)
		}
	}
	if *cores {
		core := analysis.KCores(g)
		max := int32(0)
		for _, c := range core {
			if c > max {
				max = c
			}
		}
		counts := make([]int, max+1)
		for _, c := range core {
			counts[c]++
		}
		fmt.Printf("\n%8s %10s\n", "core", "vertices")
		for k, c := range counts {
			if c > 0 {
				fmt.Printf("%8d %10d\n", k, c)
			}
		}
	}
}
