package chordal_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"chordal"
)

// pushAll streams every edge of g into s in the order fn visits them.
func pushAll(t *testing.T, s *chordal.Stream, g *chordal.Graph, reverse bool) {
	t.Helper()
	us, vs := g.EdgeList()
	if reverse {
		for i := len(us) - 1; i >= 0; i-- {
			if _, err := s.Push(context.Background(), us[i], vs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for i := range us {
		if _, err := s.Push(context.Background(), us[i], vs[i]); err != nil {
			t.Fatal(err)
		}
	}
}

// sameGraph compares two graphs by vertex count and exact edge list.
func sameGraph(a, b *chordal.Graph) bool {
	if a.NumVertices() != b.NumVertices() {
		return false
	}
	au, av := a.EdgeList()
	bu, bv := b.EdgeList()
	return reflect.DeepEqual(au, bu) && reflect.DeepEqual(av, bv)
}

// TestStreamCanonicalGolden pins the stream-mode canonical token. The
// batch goldens in TestSpecCanonicalGolden prove the token is absent
// from every pre-existing key; this one pins where it appears.
func TestStreamCanonicalGolden(t *testing.T) {
	spec := chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}, Verify: true}
	want := "v1 engine=parallel relabel=none variant=auto schedule=dataflow repair=true stitch=false partitions=0 shards=0 stitchonly=false verify=true mode=stream src="
	if got := mustCanonical(t, spec); got != want {
		t.Errorf("stream canonical:\n got  %s\n want %s", got, want)
	}
	// Spelling out batch is identity-neutral: it normalizes to the zero
	// value and the canonical key carries no mode token.
	a := mustCanonical(t, chordal.Spec{Source: "gnm:100:300"})
	b := mustCanonical(t, chordal.Spec{Source: "gnm:100:300", Mode: "batch"})
	if a != b {
		t.Errorf("mode=batch split the identity: %q vs %q", a, b)
	}
}

// TestStreamSpecValidation exercises the stream-mode validation rules.
func TestStreamSpecValidation(t *testing.T) {
	bad := []chordal.Spec{
		{Mode: "stream", Source: "gnm:100:300"},                         // deltas, not a source
		{Mode: "stream", Relabel: "bfs"},                                // needs the whole graph
		{Mode: "stream", Output: "out.bin"},                             // results come from Close
		{Mode: "stream", Engine: "serial"},                              // no StreamEngine
		{Mode: "stream", Engine: "none"},                                // no engine at all
		{Mode: "trickle"},                                               // unknown mode
		{Mode: "stream", EngineConfig: chordal.EngineConfig{Shards: 2}}, // sharded: no StreamEngine
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v: want validation error, got none", s)
		}
	}
	if _, err := (chordal.Spec{Mode: "stream"}).Run(); err == nil {
		t.Error("Run on a stream spec: want error, got none")
	}
	if _, err := chordal.OpenStream(context.Background(), chordal.Spec{Source: "gnm:100:300"}, chordal.StreamConfig{}); err == nil {
		t.Error("OpenStream on a batch spec: want error, got none")
	}
}

// TestStreamEquivalenceGrid is the PR's central equivalence property:
// streaming a graph's edges — in the batch engine's input order or
// reversed — and closing with repair on yields a final subgraph
// byte-identical to the batch parallel engine with the maximality
// repair pass on the same input. Close canonicalizes by running the
// batch engine over the accumulated edge set, so the identity holds by
// construction for every arrival order; this test pins the whole path
// (delta accounting, input reconstruction, canonical extraction).
func TestStreamEquivalenceGrid(t *testing.T) {
	sources := []string{
		"rmat-er:8:3", "rmat-g:8:7", "rmat-b:8:5",
		"gnm:400:1600:5", "ws:300:6:0.1:9", "geo:300:0.08:11",
		"ktree:200:4:13", "gse5140-crt:64:3",
	}
	for _, srcSpec := range sources {
		src, err := chordal.ParseSource(srcSpec)
		if err != nil {
			t.Fatal(err)
		}
		g, err := src.Load()
		if err != nil {
			t.Fatal(err)
		}
		batch, err := chordal.Spec{
			Source:       srcSpec,
			EngineConfig: chordal.EngineConfig{Repair: true},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, reverse := range []bool{false, true} {
			spec := chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}}
			s, err := chordal.OpenStream(context.Background(), spec, chordal.StreamConfig{Vertices: g.NumVertices()})
			if err != nil {
				t.Fatal(err)
			}
			pushAll(t, s, g, reverse)
			res, err := s.Close(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(res.Input, g) {
				t.Errorf("%s (reverse=%t): accumulated input differs from the source graph", srcSpec, reverse)
			}
			if !sameGraph(res.Subgraph, batch.Subgraph) {
				t.Errorf("%s (reverse=%t): stream subgraph (%d edges) differs from parallel+repair (%d edges)",
					srcSpec, reverse, res.Subgraph.NumEdges(), batch.Subgraph.NumEdges())
			}
			st := res.Report.Stream
			if st.Pushed != g.NumEdges() {
				t.Errorf("%s: pushed %d of %d deltas", srcSpec, st.Pushed, g.NumEdges())
			}
		}
	}
}

// TestStreamMetamorphicChordalInsertion: inserting an already-chordal
// graph, in any order, ends with zero net rejections — after the final
// repair pass the deferred queue is empty and the maintained subgraph
// is the input itself (a chordal graph is its own unique maximal
// chordal subgraph). Mid-stream deferrals are expected (an edge can
// arrive before the clique that licenses it); the property is that
// repair always clears them.
func TestStreamMetamorphicChordalInsertion(t *testing.T) {
	inputs := []*chordal.Graph{
		chordal.GenerateKTree(200, 4, 13),
		chordal.GenerateKTree(120, 3, 7),
		chordal.GenerateKTree(60, 6, 1),
	}
	for gi, g := range inputs {
		if !chordal.IsChordal(g) {
			t.Fatalf("input %d: generator promised a chordal graph", gi)
		}
		us, vs := g.EdgeList()
		for trial := 0; trial < 4; trial++ {
			rng := rand.New(rand.NewSource(int64(100*gi + trial)))
			perm := rng.Perm(len(us))
			spec := chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}}
			s, err := chordal.OpenStream(context.Background(), spec, chordal.StreamConfig{Vertices: g.NumVertices()})
			if err != nil {
				t.Fatal(err)
			}
			for _, i := range perm {
				if _, err := s.Push(context.Background(), us[i], vs[i]); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.Repair(context.Background()); err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.Deferred != 0 {
				t.Errorf("input %d trial %d: %d edges still deferred after repair on a chordal input", gi, trial, st.Deferred)
			}
			if st.Admitted+st.Repaired != int64(len(us)) {
				t.Errorf("input %d trial %d: admitted %d + repaired %d != %d edges", gi, trial, st.Admitted, st.Repaired, len(us))
			}
			if got := s.Maintained(); int64(len(got)) != g.NumEdges() {
				t.Errorf("input %d trial %d: maintained %d edges, want the full input %d", gi, trial, len(got), g.NumEdges())
			}
			res, err := s.Close(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if !sameGraph(res.Subgraph, g) {
				t.Errorf("input %d trial %d: canonical result differs from the chordal input", gi, trial)
			}
		}
	}
}

// TestStreamSessionMechanics covers the session-surface behaviors the
// equivalence grid does not: events, repair cadence, growth and caps,
// duplicate/invalid accounting, and Close idempotence.
func TestStreamSessionMechanics(t *testing.T) {
	var events []chordal.Event
	spec := chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}, Verify: true}
	s, err := chordal.OpenStream(context.Background(), spec, chordal.StreamConfig{
		Vertices:    2,
		MaxVertices: 64,
		Observer:    func(ev chordal.Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	push := func(u, v int32, wantReason chordal.AdmitReason) {
		t.Helper()
		d, err := s.Push(ctx, u, v)
		if err != nil {
			t.Fatal(err)
		}
		if d.Reason != string(wantReason) {
			t.Fatalf("push (%d,%d): reason %s, want %s", u, v, d.Reason, wantReason)
		}
	}
	// C4 in an order that forces a deferral, plus growth past the
	// initial universe, a duplicate, a self loop and a capped id.
	push(0, 1, chordal.AdmitBridge)
	push(1, 2, chordal.AdmitBridge) // grows the universe to 3
	push(2, 3, chordal.AdmitBridge) // and to 4
	push(0, 3, chordal.AdmitDeferred)
	push(0, 3, chordal.AdmitDeferred) // dedup: still one queue slot
	push(0, 1, chordal.AdmitPresent)
	push(5, 5, chordal.AdmitInvalid)
	push(1, 99, chordal.AdmitInvalid) // beyond MaxVertices
	push(0, 2, chordal.AdmitAccepted) // chords the square...
	if n, err := s.Repair(ctx); err != nil || n != 1 {
		t.Fatalf("repair: admitted %d (%v), want 1", n, err)
	}
	st := s.Stats()
	if st.Deferred != 0 || st.Repaired != 1 || st.Duplicates != 1 || st.Invalid != 2 || st.Admitted != 4 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Vertices != 4 {
		t.Fatalf("universe %d, want 4 (grown on demand from 2)", st.Vertices)
	}
	res, err := s.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.NumEdges() != 5 || !res.Report.Verify.Chordal {
		t.Fatalf("close: %d edges, verify %+v", res.Subgraph.NumEdges(), res.Report.Verify)
	}
	if res.Report.Verify.ReAddableEdges != 0 || !res.Report.Verify.MaximalityAudited {
		t.Fatalf("close verify: %+v", res.Report.Verify)
	}
	// Idempotent close; pushes after close fail.
	if res2, err := s.Close(ctx); err != nil || res2 != res {
		t.Fatalf("second close: %v, same result %t", err, res2 == res)
	}
	if _, err := s.Push(ctx, 0, 1); err == nil {
		t.Fatal("push after close: want error")
	}
	// Event accounting: one admit/defer per push plus one admit per
	// repaired edge, and a repair summary per pass (cadence + close).
	var admits, defers, repairs int
	for _, ev := range events {
		switch ev.Type {
		case chordal.EventAdmit:
			admits++
			if ev.Delta == nil || !ev.Delta.Accepted {
				t.Fatalf("admit event without accepted delta: %+v", ev)
			}
		case chordal.EventDefer:
			defers++
		case chordal.EventRepair:
			repairs++
		}
	}
	if admits != 5 || defers != 5 || repairs != 2 {
		t.Fatalf("events: %d admits, %d defers, %d repairs", admits, defers, repairs)
	}
}

// TestStreamRepairCadence verifies RepairEvery triggers repair passes
// during the stream, not only at close.
func TestStreamRepairCadence(t *testing.T) {
	spec := chordal.Spec{Mode: chordal.ModeStream}
	s, err := chordal.OpenStream(context.Background(), spec, chordal.StreamConfig{Vertices: 4, RepairEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 3}} { // C4: last edge defers
		if _, err := s.Push(ctx, e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Repairs != 0 || st.Deferred != 1 {
		t.Fatalf("before cadence: %+v", st)
	}
	if _, err := s.Push(ctx, 0, 2); err != nil { // 5th delta: chord lands, cadence fires
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Repairs != 1 || st.Repaired != 1 || st.Deferred != 0 {
		t.Fatalf("after cadence: %+v", st)
	}
}
