package chordal_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"chordal"
)

// FuzzSpecCanonical fuzzes the spec wire path the service and CLI
// trust: arbitrary bytes → JSON decode → Normalize/Validate →
// Canonical. The invariants: no panic anywhere on the path, and for
// every spec that normalizes, the canonical key is stable under
// re-encode (normalize → JSON → decode → normalize reproduces the
// identical spec and key — the cache-identity property the golden
// tests pin for hand-picked cases, here under adversarial inputs).
//
// The seed corpus under testdata/fuzz/FuzzSpecCanonical is generated
// from the canonical-golden specs; run the fuzzer with
//
//	go test -fuzz=FuzzSpecCanonical -fuzztime=30s -run '^$' .
func FuzzSpecCanonical(f *testing.F) {
	// Seeds mirror the golden specs plus shapes that exercise every
	// validation branch (conflicts, bad enums, versions, sources).
	seeds := []string{
		`{"source":"rmat-er:12"}`,
		`{"v":1,"source":" RMAT-ER:12:42:8 ","relabel":"BFS","engine":"parallel","variant":"unopt","schedule":"sync","workers":8,"repair":true,"verify":true,"output":"sub.bin"}`,
		`{"source":"gnm:1000:5000","engine":"serial","verify":true}`,
		`{"source":"rmat-g:10:7","partitions":8}`,
		`{"source":"rmat-g:10:7","shards":4,"shardStitchOnly":true,"verify":true}`,
		`{"source":"gnm:100:300","shardStitchOnly":true}`,
		`{"source":"upload:edges:8ba65ee1bbe8297e30cab4c5fc9b62a8caa0dbe7b89298edf1da2609beb24ae1","verify":true}`,
		`{"v":2,"source":"gnm:10:20"}`,
		`{"source":"gnm:10:20","engine":"warp"}`,
		`{"source":"gnm:10:20","partitions":2,"shards":4}`,
		`{"source":"ws:300:6:0.1:9","relabel":"degree","engine":"none"}`,
		`{"source":"rmat-er","workers":-3,"shards":-1}`,
		`{"source":"gnm:100:300","engine":"dearing","start":5,"verify":true}`,
		`{"source":"gnm:100:300","engine":"elimination","order":"natural"}`,
		`{"source":"ktree:200:4:13","engine":"elimination","order":" MinDeg "}`,
		`{"source":"gnm:100:300","engine":"parallel","order":"mindeg"}`,
		`{"source":"gnm:100:300","engine":"serial","start":3}`,
		`{"source":"gnm:100:300","engine":"elimination","order":"amd"}`,
		`{"source":"gnm:100:300","engine":"dearing","start":-2}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		var s chordal.Spec
		if err := json.Unmarshal(raw, &s); err != nil {
			return // not a spec; only the decoded path is under test
		}
		// Validate and Normalize must agree and never panic.
		n, err := s.Normalize()
		if verr := s.Validate(); (err == nil) != (verr == nil) {
			t.Fatalf("Normalize err %v but Validate err %v", err, verr)
		}
		if err != nil {
			return
		}
		canon, err := n.Canonical()
		if err != nil {
			t.Fatalf("normalized spec %+v failed Canonical: %v", n, err)
		}
		if canon == "" {
			t.Fatalf("normalized spec %+v has empty canonical key", n)
		}

		// Stability under re-encode: the normalized form is a fixed
		// point, and its JSON round trip preserves spec and key.
		n2, err := n.Normalize()
		if err != nil {
			t.Fatalf("re-normalize failed: %v", err)
		}
		if !reflect.DeepEqual(n, n2) {
			t.Fatalf("Normalize is not a fixed point:\n first %+v\n again %+v", n, n2)
		}
		blob, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal normalized: %v", err)
		}
		var back chordal.Spec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		back, err = back.Normalize()
		if err != nil {
			t.Fatalf("normalize decoded copy of %s: %v", blob, err)
		}
		canon2, err := back.Canonical()
		if err != nil {
			t.Fatalf("canonical of decoded copy: %v", err)
		}
		if canon != canon2 {
			t.Fatalf("canonical key drifted under re-encode:\n before %s\n after  %s", canon, canon2)
		}
	})
}
