package chordal_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"chordal"
)

// TestCLIEndToEnd drives the four command-line tools through a full
// generate → analyze → extract → verify round trip, the workflow the
// README documents. It is skipped when the go tool is unavailable.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	subPath := filepath.Join(dir, "sub.txt")

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(goTool, append([]string{"run"}, args...)...)
		cmd.Dir = repoRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("./cmd/graphgen", "-kind", "rmat-g", "-scale", "9", "-seed", "5", "-out", graphPath)
	if !strings.Contains(out, "V=512") {
		t.Fatalf("graphgen output: %s", out)
	}

	out = run("./cmd/graphstats", "-in", graphPath, "-chordal")
	if !strings.Contains(out, "chordal: no") {
		t.Fatalf("graphstats should report a hole witness: %s", out)
	}

	out = run("./cmd/chordal", "-in", graphPath, "-out", subPath, "-verify", "-repair")
	if !strings.Contains(out, "verified: output is chordal") {
		t.Fatalf("chordal CLI output: %s", out)
	}
	if !strings.Contains(out, "output is maximal") {
		t.Fatalf("repair did not reach maximality: %s", out)
	}

	out = run("./cmd/graphstats", "-in", subPath, "-chordal")
	if !strings.Contains(out, "chordal: yes") {
		t.Fatalf("extracted subgraph not verified chordal: %s", out)
	}

	out = run("./cmd/chordal", "-in", graphPath, "-serial")
	if !strings.Contains(out, "Dearing") {
		t.Fatalf("serial mode output: %s", out)
	}

	out = run("./cmd/chordal", "-in", graphPath, "-shards", "4", "-verify")
	if !strings.Contains(out, "sharded (4 shards)") || !strings.Contains(out, "verified: output is chordal") {
		t.Fatalf("sharded mode output: %s", out)
	}

	out = run("./cmd/benchrunner", "-exp", "pct", "-scales", "8", "-bio-downscale", "64")
	if !strings.Contains(out, "RMAT-ER(8)") {
		t.Fatalf("benchrunner output: %s", out)
	}
}

// TestCLIModeConflicts pins the engine-conflict contract: flag
// combinations that used to pick one engine by silent precedence must
// exit non-zero with an error naming the conflict.
func TestCLIModeConflicts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-serial", "-shards", "4"},
		{"-serial", "-partition", "2"},
		{"-partition", "2", "-shards", "4"},
		{"-engine", "parallel", "-shards", "4"},
		{"-engine", "serial", "-partition", "2"},
		{"-engine", "warp"},
	}
	for _, flags := range cases {
		args := append([]string{"run", "./cmd/chordal", "-in", "gnm:100:300:1"}, flags...)
		cmd := exec.Command(goTool, args...)
		cmd.Dir = repoRoot
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("chordal %v exited 0; want a conflict error\n%s", flags, out)
			continue
		}
		if !strings.Contains(string(out), "conflict") && !strings.Contains(string(out), "unknown engine") {
			t.Errorf("chordal %v error does not name the conflict:\n%s", flags, out)
		}
	}
}

// TestCLIStreamMode pipes an NDJSON delta feed into chordal -stream and
// checks the full contract: one admission event per decision on stdout,
// a trailing StreamReport under -json with a passing chordal verify, a
// canonical key equal to the library's stream spec, and an -out subgraph
// byte-identical to the library session driven with the same deltas.
func TestCLIStreamMode(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	subPath := filepath.Join(dir, "stream-sub.bin")

	// C4 plus a chord, mixing both delta line forms with noise lines.
	feed := "# C4 first\n0 1\n1 2\n2 3\n{\"u\":3,\"v\":0}\n\n0 2\n"
	cmd := exec.Command(goTool, "run", "./cmd/chordal",
		"-stream", "-repair", "-verify", "-json", "-out", subPath)
	cmd.Dir = repoRoot
	cmd.Stdin = strings.NewReader(feed)
	raw, err := cmd.Output()
	if err != nil {
		t.Fatalf("chordal -stream: %v\n%s", err, raw)
	}

	// Stdout is a sequence of JSON values: NDJSON events, then the report.
	dec := json.NewDecoder(bytes.NewReader(raw))
	events := map[string]int{}
	var last json.RawMessage
	for dec.More() {
		var v json.RawMessage
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("stdout is not a JSON value stream: %v\n%s", err, raw)
		}
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(v, &probe) == nil && probe.Type != "" {
			events[probe.Type]++
		}
		last = v
	}
	// Four pushes admit, 3-0 defers (it closes the C4 before the chord
	// arrives), and the close-time repair pass re-admits it with its own
	// admit event: 5 admits + 1 defer.
	if events["admit"] != 5 || events["defer"] != 1 {
		t.Fatalf("events %v: want 5 admits and 1 defer", events)
	}
	if events["repair"] == 0 {
		t.Fatalf("events %v: want at least one repair pass event", events)
	}
	var rep chordal.StreamReport
	if err := json.Unmarshal(last, &rep); err != nil {
		t.Fatalf("trailing value is not a StreamReport: %v\n%s", err, last)
	}
	wantCanon, err := chordal.Spec{
		Mode:         chordal.ModeStream,
		EngineConfig: chordal.EngineConfig{Repair: true},
		Verify:       true,
	}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canonical != wantCanon {
		t.Errorf("CLI canonical\n %s\nlibrary canonical\n %s", rep.Canonical, wantCanon)
	}
	if rep.Verify == nil || !rep.Verify.Chordal {
		t.Fatalf("report verify %+v, want chordal", rep.Verify)
	}
	if rep.Stream.Pushed != 5 || rep.Input.Edges != 5 {
		t.Fatalf("report stream %+v input %+v, want 5 pushed / 5 input edges", rep.Stream, rep.Input)
	}

	// The written subgraph matches a library session fed the same deltas.
	lib, err := chordal.OpenStream(context.Background(),
		chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}, Verify: true},
		chordal.StreamConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		if _, err := lib.Push(context.Background(), e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	libRes, err := lib.Close(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	libPath := filepath.Join(dir, "lib-sub.bin")
	if err := chordal.SaveGraph(libPath, libRes.Subgraph); err != nil {
		t.Fatal(err)
	}
	cliBytes, err := os.ReadFile(subPath)
	if err != nil {
		t.Fatal(err)
	}
	libBytes, err := os.ReadFile(libPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cliBytes, libBytes) {
		t.Errorf("CLI stream subgraph (%d bytes) differs from library session (%d bytes)",
			len(cliBytes), len(libBytes))
	}

	// -stream conflicts with -in and -batch.
	for _, extra := range [][]string{{"-in", "gnm:100:300:1"}, {"-batch", "x.txt"}} {
		args := append([]string{"run", "./cmd/chordal", "-stream"}, extra...)
		cmd := exec.Command(goTool, args...)
		cmd.Dir = repoRoot
		cmd.Stdin = strings.NewReader("")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Errorf("chordal -stream %v exited 0; want a conflict error\n%s", extra, out)
		} else if !strings.Contains(string(out), "conflicts") {
			t.Errorf("chordal -stream %v error does not name the conflict:\n%s", extra, out)
		}
	}
}

// TestCLIJSONReport drives chordal -json and pins the cross-surface
// identity contract: the CLI's reported canonical key equals the
// library's Spec.Canonical for the same parameters, and the written
// subgraph is byte-identical to a library Spec.Run of that spec.
func TestCLIJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cliOut := filepath.Join(dir, "cli.bin")

	cmd := exec.Command(goTool, "run", "./cmd/chordal",
		"-in", "gnm:500:1500:3", "-shards", "2", "-verify", "-json", "-out", cliOut)
	cmd.Dir = repoRoot
	raw, err := cmd.Output()
	if err != nil {
		t.Fatalf("chordal -json: %v", err)
	}
	var rep struct {
		Spec struct {
			V      int    `json:"v"`
			Engine string `json:"engine"`
		} `json:"spec"`
		Canonical  string `json:"canonical"`
		Extraction *struct {
			Engine       string `json:"engine"`
			ChordalEdges int64  `json:"chordalEdges"`
			Shard        *struct {
				Shards int `json:"shards"`
			} `json:"shard"`
		} `json:"extraction"`
		Tuning *struct {
			Grain           int    `json:"grain"`
			DegreeThreshold int    `json:"degreeThreshold"`
			Workers         int    `json:"workers"`
			Source          string `json:"source"`
		} `json:"tuning"`
		Verify *struct {
			Chordal bool `json:"chordal"`
		} `json:"verify"`
		Timings []struct {
			Stage string `json:"stage"`
		} `json:"timings"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("chordal -json emitted unparseable output: %v\n%s", err, raw)
	}
	if rep.Spec.V != 1 || rep.Spec.Engine != "sharded" {
		t.Errorf("report spec %+v, want v1 sharded", rep.Spec)
	}
	if rep.Extraction == nil || rep.Extraction.Shard == nil || rep.Extraction.Shard.Shards != 2 {
		t.Errorf("report extraction %+v, want a 2-shard summary", rep.Extraction)
	}
	if rep.Verify == nil || !rep.Verify.Chordal {
		t.Errorf("report verify %+v, want chordal", rep.Verify)
	}
	if rep.Tuning == nil || rep.Tuning.Grain < 1 || rep.Tuning.Workers < 1 ||
		rep.Tuning.DegreeThreshold == 0 || rep.Tuning.Source == "" {
		t.Errorf("report tuning %+v, want resolved grain/threshold/workers/source", rep.Tuning)
	}
	if len(rep.Timings) == 0 {
		t.Error("report has no stage timings")
	}

	spec := chordal.Spec{
		Source:       "gnm:500:1500:3",
		EngineConfig: chordal.EngineConfig{Shards: 2},
		Verify:       true,
	}
	wantCanon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canonical != wantCanon {
		t.Errorf("CLI canonical\n %s\nlibrary canonical\n %s", rep.Canonical, wantCanon)
	}

	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Extraction.ChordalEdges != res.Subgraph.NumEdges() {
		t.Errorf("CLI reported %d chordal edges, library run extracted %d",
			rep.Extraction.ChordalEdges, res.Subgraph.NumEdges())
	}
	libOut := filepath.Join(dir, "lib.bin")
	if err := chordal.SaveGraph(libOut, res.Subgraph); err != nil {
		t.Fatal(err)
	}
	cliBytes, err := os.ReadFile(cliOut)
	if err != nil {
		t.Fatal(err)
	}
	libBytes, err := os.ReadFile(libOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cliBytes, libBytes) {
		t.Errorf("CLI-written subgraph (%d bytes) differs from library Spec.Run (%d bytes)",
			len(cliBytes), len(libBytes))
	}
}
