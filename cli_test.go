package chordal_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIEndToEnd drives the four command-line tools through a full
// generate → analyze → extract → verify round trip, the workflow the
// README documents. It is skipped when the go tool is unavailable.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	repoRoot, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.bin")
	subPath := filepath.Join(dir, "sub.txt")

	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command(goTool, append([]string{"run"}, args...)...)
		cmd.Dir = repoRoot
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	out := run("./cmd/graphgen", "-kind", "rmat-g", "-scale", "9", "-seed", "5", "-out", graphPath)
	if !strings.Contains(out, "V=512") {
		t.Fatalf("graphgen output: %s", out)
	}

	out = run("./cmd/graphstats", "-in", graphPath, "-chordal")
	if !strings.Contains(out, "chordal: no") {
		t.Fatalf("graphstats should report a hole witness: %s", out)
	}

	out = run("./cmd/chordal", "-in", graphPath, "-out", subPath, "-verify", "-repair")
	if !strings.Contains(out, "verified: output is chordal") {
		t.Fatalf("chordal CLI output: %s", out)
	}
	if !strings.Contains(out, "output is maximal") {
		t.Fatalf("repair did not reach maximality: %s", out)
	}

	out = run("./cmd/graphstats", "-in", subPath, "-chordal")
	if !strings.Contains(out, "chordal: yes") {
		t.Fatalf("extracted subgraph not verified chordal: %s", out)
	}

	out = run("./cmd/chordal", "-in", graphPath, "-serial")
	if !strings.Contains(out, "Dearing") {
		t.Fatalf("serial mode output: %s", out)
	}

	out = run("./cmd/chordal", "-in", graphPath, "-shards", "4", "-verify")
	if !strings.Contains(out, "sharded (4 shards)") || !strings.Contains(out, "verified: output is chordal") {
		t.Fatalf("sharded mode output: %s", out)
	}

	out = run("./cmd/benchrunner", "-exp", "pct", "-scales", "8", "-bio-downscale", "64")
	if !strings.Contains(out, "RMAT-ER(8)") {
		t.Fatalf("benchrunner output: %s", out)
	}
}
