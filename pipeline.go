package chordal

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"chordal/internal/analysis"
	"chordal/internal/biogen"
	"chordal/internal/core"
	"chordal/internal/dearing"
	"chordal/internal/graph"
	"chordal/internal/partition"
	"chordal/internal/rmat"
	"chordal/internal/shard"
	"chordal/internal/synth"
	"chordal/internal/verify"
)

// This file implements the end-to-end ingestion-to-output pipeline:
//
//	acquire (load file / generate) → relabel → extract → verify → write
//
// Every stage is parallel under the shared internal/parallel runtime,
// so the full flow — not just the extraction kernel — scales with
// cores. The CLI tools (cmd/chordal, cmd/graphgen, cmd/graphstats,
// cmd/benchrunner) are thin flag layers over Pipeline and Source, and
// the HTTP service (cmd/chordald) runs Pipeline jobs with progress
// callbacks and cancellable contexts.
//
// # Source spec grammar
//
// A Source is either a path to a graph file (.bin binary CSR, .mtx
// Matrix Market, anything else a text edge list) or a generator spec
// "family:arg:arg..." with colon-separated arguments; trailing
// arguments with defaults may be omitted. The SourceSpecs constant is
// the authoritative one-line-per-family grammar (the CLIs print it in
// their usage text). Family names are case-insensitive; seed defaults
// to 42, edgefactor to 8, downscale to 8. Source.Canonical returns
// the lowercased, default-filled form that cache keys are built from.

// Source describes where a pipeline input graph comes from: a file
// path, or a generator spec of the form "family:arg:arg...". Use
// ParseSource to build one from a string.
type Source struct {
	spec      string
	canon     string
	generated bool
	load      func(workers int) (*Graph, error)
}

// String returns the spec the source was parsed from.
func (s Source) String() string { return s.spec }

// Canonical returns the normalized form of the spec: the generator
// family lowercased and every optional argument filled in with its
// default, so that two specs naming the same input ("rmat-er:14",
// "RMAT-ER:14:42:8", " rmat-er:14 ") canonicalize identically. File
// paths are path-cleaned. The service layer keys its caches on this.
func (s Source) Canonical() string { return s.canon }

// Generated reports whether the source is a synthetic generator spec,
// whose Load is deterministic in the canonical spec — safe to cache by
// Canonical — as opposed to a file path, whose contents may change
// between loads.
func (s Source) Generated() bool { return s.generated }

// Load acquires the graph (reading or generating it) at machine width.
func (s Source) Load() (*Graph, error) {
	return s.LoadWorkers(0)
}

// LoadWorkers acquires the graph with the parallel parts of reading or
// generating bounded to the given worker count (<= 0 means machine
// width). Generated graphs are identical whatever the bound — sampling
// runs on fixed PRNG streams — so caching by Canonical stays sound
// while each service job loads inside its own budget lease.
func (s Source) LoadWorkers(workers int) (*Graph, error) {
	if s.load == nil {
		return nil, fmt.Errorf("chordal: empty source")
	}
	return s.load(workers)
}

// SourceSpecs documents the generator spec grammar understood by
// ParseSource, one spec per line.
const SourceSpecs = `rmat-er:scale[:seed[:edgefactor]]   R-MAT, uniform quadrants
rmat-g:scale[:seed[:edgefactor]]    R-MAT, skewed (communities)
rmat-b:scale[:seed[:edgefactor]]    R-MAT, heavily skewed
gse5140-crt[:downscale[:seed]]      bio suite (also -unt, gse17072-ctl, -non)
gnm:n:m[:seed]                      uniform random G(n,m)
ws:n:k:beta[:seed]                  Watts-Strogatz small world
geo:n:radius[:seed]                 random geometric
ktree:n:k[:seed]                    k-tree (chordal ground truth)
<path>                              graph file (.bin/.mtx/edge list)`

// ParseSource parses a file path or generator spec. Any spec whose
// first colon-separated field is not a known generator family is
// treated as a file path. Surrounding whitespace is ignored.
func ParseSource(spec string) (Source, error) {
	spec = strings.TrimSpace(spec)
	fields := strings.Split(spec, ":")
	head := strings.ToLower(fields[0])
	args := fields[1:]

	intArg := func(i int, name string, def int64) (int64, error) {
		if i >= len(args) || args[i] == "" {
			return def, nil
		}
		v, err := strconv.ParseInt(args[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("chordal: source %q: bad %s %q", spec, name, args[i])
		}
		return v, nil
	}
	floatArg := func(i int, name string) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("chordal: source %q: missing %s", spec, name)
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return 0, fmt.Errorf("chordal: source %q: bad %s %q", spec, name, args[i])
		}
		return v, nil
	}

	switch head {
	case "rmat-er", "rmat-g", "rmat-b":
		preset := map[string]RMATPreset{"rmat-er": RMATER, "rmat-g": RMATG, "rmat-b": RMATB}[head]
		scale, err := intArg(0, "scale", -1)
		if err != nil {
			return Source{}, err
		}
		if scale < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: missing scale", spec)
		}
		seed, err := intArg(1, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		edgeFactor, err := intArg(2, "edgefactor", 8)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("%s:%d:%d:%d", head, scale, seed, edgeFactor)
		return Source{spec, canon, true, func(workers int) (*Graph, error) {
			p := rmat.PresetParams(preset, int(scale), uint64(seed))
			p.EdgeFactor = int(edgeFactor)
			p.Workers = workers
			return rmat.Generate(p)
		}}, nil

	case "gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non":
		dataset := map[string]BioDataset{
			"gse5140-crt": GSE5140CRT, "gse5140-unt": GSE5140UNT,
			"gse17072-ctl": GSE17072CTL, "gse17072-non": GSE17072NON,
		}[head]
		downscale, err := intArg(0, "downscale", 8)
		if err != nil {
			return Source{}, err
		}
		seed, err := intArg(1, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("%s:%d:%d", head, downscale, seed)
		return Source{spec, canon, true, func(workers int) (*Graph, error) {
			p := biogen.PresetParams(dataset, int(downscale), uint64(seed))
			p.Workers = workers
			return biogen.Generate(p)
		}}, nil

	case "gnm":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		m, err := intArg(1, "m", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 || m < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need gnm:n:m", spec)
		}
		seed, err := intArg(2, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("gnm:%d:%d:%d", n, m, seed)
		return Source{spec, canon, true, func(workers int) (*Graph, error) {
			return synth.GNM(int(n), m, uint64(seed), workers), nil
		}}, nil

	case "ws":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		k, err := intArg(1, "k", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 || k < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need ws:n:k:beta", spec)
		}
		beta, err := floatArg(2, "beta")
		if err != nil {
			return Source{}, err
		}
		seed, err := intArg(3, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("ws:%d:%d:%s:%d", n, k, strconv.FormatFloat(beta, 'g', -1, 64), seed)
		return Source{spec, canon, true, func(workers int) (*Graph, error) {
			return synth.WattsStrogatz(int(n), int(k), beta, uint64(seed), workers), nil
		}}, nil

	case "geo":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need geo:n:radius", spec)
		}
		radius, err := floatArg(1, "radius")
		if err != nil {
			return Source{}, err
		}
		seed, err := intArg(2, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("geo:%d:%s:%d", n, strconv.FormatFloat(radius, 'g', -1, 64), seed)
		return Source{spec, canon, true, func(workers int) (*Graph, error) {
			return synth.RandomGeometric(int(n), radius, uint64(seed), workers), nil
		}}, nil

	case "ktree":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		k, err := intArg(1, "k", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 || k < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need ktree:n:k", spec)
		}
		seed, err := intArg(2, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("ktree:%d:%d:%d", n, k, seed)
		return Source{spec, canon, true, func(workers int) (*Graph, error) {
			return synth.KTree(int(n), int(k), uint64(seed), workers), nil
		}}, nil
	}
	// Anything else is a file path.
	return Source{spec, filepath.Clean(spec), false, func(workers int) (*Graph, error) {
		return graph.LoadFileWorkers(spec, workers)
	}}, nil
}

// ParseVariant parses the CLI names of the extraction variants:
// auto|opt|unopt.
func ParseVariant(s string) (Variant, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return VariantAuto, nil
	case "opt":
		return VariantOptimized, nil
	case "unopt":
		return VariantUnoptimized, nil
	}
	return VariantAuto, fmt.Errorf("chordal: unknown variant %q (want auto|opt|unopt)", s)
}

// ParseSchedule parses the CLI names of the test schedules:
// dataflow|async|sync.
func ParseSchedule(s string) (Schedule, error) {
	switch strings.ToLower(s) {
	case "dataflow", "":
		return ScheduleDataflow, nil
	case "async":
		return ScheduleAsync, nil
	case "sync":
		return ScheduleSynchronous, nil
	}
	return ScheduleDataflow, fmt.Errorf("chordal: unknown schedule %q (want dataflow|async|sync)", s)
}

// ParseRelabel parses the CLI names of the relabel modes:
// none|bfs|degree.
func ParseRelabel(s string) (RelabelMode, error) {
	switch strings.ToLower(s) {
	case "none", "":
		return RelabelNone, nil
	case "bfs":
		return RelabelBFS, nil
	case "degree":
		return RelabelDegree, nil
	}
	return RelabelNone, fmt.Errorf("chordal: unknown relabel mode %q (want none|bfs|degree)", s)
}

// RelabelMode selects the optional vertex renumbering stage.
type RelabelMode int

const (
	// RelabelNone keeps the input numbering.
	RelabelNone RelabelMode = iota
	// RelabelBFS renumbers in breadth-first order from vertex 0 (the
	// paper's connectivity remark below Theorem 2).
	RelabelBFS
	// RelabelDegree gives the highest-degree vertices the smallest ids
	// (the DESIGN.md §5 maximality heuristic).
	RelabelDegree
)

// Pipeline is the end-to-end flow: acquire → relabel → extract →
// verify → write. Zero-value fields disable their stage; only Source
// (or Input) is required. All stages run on the shared parallel
// runtime. Run executes with a background context; RunContext makes
// the whole flow cancellable.
type Pipeline struct {
	// Source is the input file path or generator spec (see ParseSource).
	Source string
	// Input, when non-nil, is used directly as the acquired graph and
	// Source is ignored. Graphs are immutable, so a cached or shared
	// instance can be injected safely; this is how the service layer
	// reuses cached generated inputs across jobs.
	Input *Graph
	// Relabel renumbers vertices before extraction.
	Relabel RelabelMode
	// Extract runs the paper's multithreaded extraction with Options.
	Extract bool
	// Options configures the parallel extraction.
	Options Options
	// Serial replaces the parallel extraction with the Dearing-Shier-
	// Warner serial baseline.
	Serial bool
	// Partitions > 0 replaces the parallel extraction with the
	// distributed-style partitioned baseline (plus cycle cleanup).
	Partitions int
	// Shards > 0 replaces the whole-graph extraction with sharded
	// extraction: Algorithm 1 runs per contiguous vertex-range shard
	// (concurrently, inside Options.Workers) and border edges are
	// reconciled with a chordality-preserving stitch. See
	// internal/shard and DESIGN.md §7. Options (variant, schedule,
	// repair) configure the per-shard kernels; Options.RepairMaximality
	// maps to the merged repair pass.
	Shards int
	// ShardStitchOnly restricts border reconciliation to the spanning
	// stitch (bridges only); the default additionally admits border
	// edges that provably keep the merged subgraph chordal.
	ShardStitchOnly bool
	// Verify checks the extracted subgraph for chordality and, on
	// small inputs, audits maximality.
	Verify bool
	// Output writes the final graph (the subgraph when an extraction
	// stage ran, otherwise the input) to this path.
	Output string
	// OnStage, when non-nil, is called as each stage begins, with one of
	// "acquire", "relabel", "extract", "verify", "write".
	OnStage func(stage string)
	// OnIteration, when non-nil, receives each extraction iteration's
	// statistics as its barrier completes — the pipeline-level mirror of
	// Options.OnIteration (which it chains with, not replaces). Only the
	// parallel extraction stage reports iterations; the serial and
	// partitioned baselines do not.
	OnIteration func(IterationStats)
	// OnShardIteration, when non-nil, receives each shard kernel's
	// iteration statistics during a sharded extraction (Shards > 0).
	// Shards extract concurrently, so the callback may be invoked
	// concurrently for different shards; the service layer serializes
	// the SSE events it emits from this hook.
	OnShardIteration func(shard int, it IterationStats)
}

// PartitionSummary reports the partitioned-baseline stage.
type PartitionSummary struct {
	Parts          int
	InteriorEdges  int
	BorderAdmitted int
	CleanupRemoved int
	CleanupRounds  int
}

// ShardSummary reports the sharded extraction stage: how the input was
// split, what each shard's kernel did, and how the border was
// reconciled.
type ShardSummary struct {
	// Shards is the shard count actually used (after clamping).
	Shards int
	// PerShardIterations and PerShardEdges have one entry per shard:
	// the kernel's iteration count and chordal edge count.
	PerShardIterations []int
	PerShardEdges      []int
	// InteriorEdges is the merged per-shard chordal edge total before
	// border reconciliation.
	InteriorEdges int
	// BorderTotal is the number of input edges crossing shards;
	// StitchedEdges counts spanning-stitch additions (BorderBridges the
	// cross-shard subset); BorderAdmitted counts border edges admitted
	// by the exact chordality-preserving pass; RepairedEdges counts the
	// merged repair pass additions.
	BorderTotal    int
	StitchedEdges  int
	BorderBridges  int
	BorderAdmitted int
	RepairedEdges  int
	// Chordal is the shard stage's own verification of the merged
	// subgraph (always expected true; a self-check of reconciliation).
	Chordal bool
}

// StageTiming is the wall-clock duration of one pipeline stage.
type StageTiming struct {
	Stage    string
	Duration time.Duration
}

// PipelineResult carries the outputs of every stage that ran.
type PipelineResult struct {
	// Input is the acquired (and possibly relabeled) graph.
	Input *Graph
	// InputStats are the Table-I statistics of Input.
	InputStats Stats
	// Subgraph is the extracted chordal subgraph, nil when no
	// extraction stage ran.
	Subgraph *Graph
	// Extraction is the parallel extraction result (nil for the serial
	// and partitioned baselines).
	Extraction *Result
	// SerialDuration is the serial baseline's runtime, when used.
	SerialDuration time.Duration
	// Partition summarizes the partitioned baseline, when used.
	Partition *PartitionSummary
	// Shard summarizes the sharded extraction, when used.
	Shard *ShardSummary
	// Verified reports whether the verify stage ran; ChordalOK whether
	// the subgraph passed the chordality check.
	Verified  bool
	ChordalOK bool
	// MaximalityAudited reports whether the bounded maximality audit
	// ran (it is skipped on large inputs); ReAddableEdges is the number
	// of audit violations found (0 means maximal as far as audited).
	MaximalityAudited bool
	ReAddableEdges    int
	// Timings records per-stage wall-clock durations in stage order.
	Timings []StageTiming
}

// maxAuditEdges bounds the input size for the maximality audit, whose
// cost grows with the number of absent edges.
const maxAuditEdges = 200000

// Run executes the pipeline with a background context.
func (p Pipeline) Run() (*PipelineResult, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the pipeline under ctx. Cancellation is observed
// between stages and, during the parallel extraction stage, between
// iterations of the extract loop; the first error returned after
// cancellation is ctx.Err(). A canceled run leaves no goroutines
// behind.
func (p Pipeline) RunContext(ctx context.Context) (*PipelineResult, error) {
	res := &PipelineResult{}
	mark := func(stage string, start time.Time) {
		res.Timings = append(res.Timings, StageTiming{stage, time.Since(start)})
	}
	enter := func(stage string) time.Time {
		if p.OnStage != nil {
			p.OnStage(stage)
		}
		return time.Now()
	}

	// Check before acquire: a run canceled while queued must not pay
	// for the most expensive stage (loading or generating the input).
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var g *Graph
	if p.Input != nil {
		g = p.Input
	} else {
		src, err := ParseSource(p.Source)
		if err != nil {
			return nil, err
		}
		start := enter("acquire")
		var loadErr error
		g, loadErr = src.LoadWorkers(p.Options.Workers)
		if loadErr != nil {
			return nil, loadErr
		}
		mark("acquire", start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if p.Relabel != RelabelNone {
		start := enter("relabel")
		switch p.Relabel {
		case RelabelBFS:
			g = g.RelabelWorkers(analysis.BFSOrder(g, 0), p.Options.Workers)
		case RelabelDegree:
			g = g.RelabelWorkers(analysis.DegreeOrder(g), p.Options.Workers)
		default:
			return nil, fmt.Errorf("chordal: unknown relabel mode %d", p.Relabel)
		}
		mark("relabel", start)
	}
	res.Input = g
	res.InputStats = ComputeStats(g)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	extracting := p.Extract || p.Serial || p.Partitions > 0 || p.Shards > 0
	if extracting {
		start := enter("extract")
		switch {
		case p.Serial:
			r := dearing.Extract(g, 0)
			res.SerialDuration = r.Total
			res.Subgraph = r.ToGraph(g.NumVertices())
		case p.Partitions > 0:
			r, rep := partition.ExtractAndClean(g, p.Partitions)
			res.Partition = &PartitionSummary{
				Parts:          r.Parts,
				InteriorEdges:  r.InteriorEdges,
				BorderAdmitted: r.BorderAdmitted,
				CleanupRemoved: rep.Removed,
				CleanupRounds:  rep.Rounds,
			}
			res.Subgraph = r.ToGraph(g.NumVertices())
		case p.Shards > 0:
			opts := shard.Options{
				Shards:     p.Shards,
				Core:       p.Options,
				StitchOnly: p.ShardStitchOnly,
				Repair:     p.Options.RepairMaximality,
			}
			if p.OnShardIteration != nil {
				opts.OnShardIteration = p.OnShardIteration
			}
			r, err := shard.ExtractContext(ctx, g, opts)
			if err != nil {
				return nil, err
			}
			sum := &ShardSummary{
				Shards:         len(r.Shards),
				BorderTotal:    r.BorderTotal,
				StitchedEdges:  r.StitchedEdges,
				BorderBridges:  r.BorderBridges,
				BorderAdmitted: r.BorderAdmitted,
				RepairedEdges:  r.RepairedEdges,
				Chordal:        r.Chordal,
			}
			for _, st := range r.Shards {
				sum.PerShardIterations = append(sum.PerShardIterations, st.Iterations)
				sum.PerShardEdges = append(sum.PerShardEdges, st.ChordalEdges)
				sum.InteriorEdges += st.ChordalEdges
			}
			res.Shard = sum
			res.Subgraph = r.Subgraph
		default:
			opts := p.Options
			if p.OnIteration != nil {
				inner := opts.OnIteration
				opts.OnIteration = func(it IterationStats) {
					if inner != nil {
						inner(it)
					}
					p.OnIteration(it)
				}
			}
			r, err := core.ExtractContext(ctx, g, opts)
			if err != nil {
				return nil, err
			}
			res.Extraction = r
			res.Subgraph = r.ToGraph()
		}
		mark("extract", start)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if p.Verify {
		if res.Subgraph == nil {
			return nil, fmt.Errorf("chordal: pipeline verify requires an extraction stage")
		}
		start := enter("verify")
		res.Verified = true
		if res.Shard != nil {
			// The shard stage already ran the chordality check on this
			// exact subgraph as its reconciliation self-check; reuse it
			// rather than paying the O(V+E) MCS+PEO pass twice.
			res.ChordalOK = res.Shard.Chordal
		} else {
			res.ChordalOK = verify.IsChordal(res.Subgraph)
		}
		if res.ChordalOK && g.NumEdges() <= maxAuditEdges {
			res.MaximalityAudited = true
			res.ReAddableEdges = len(verify.AuditMaximality(g, res.Subgraph, 10))
		}
		mark("verify", start)
	}

	if p.Output != "" {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := enter("write")
		out := res.Subgraph
		if out == nil {
			out = res.Input
		}
		if err := graph.SaveFile(p.Output, out); err != nil {
			return nil, err
		}
		mark("write", start)
	}
	return res, nil
}
