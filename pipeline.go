package chordal

import (
	"context"
	"fmt"
	"time"
)

// This file keeps the original flat Pipeline struct as a thin adapter
// over the declarative Spec API. New code should build a Spec (one
// versioned, serializable description of the whole run) and execute it
// with Spec.Run or a Runner; the Pipeline fields map one-to-one onto
// Spec fields and its three callbacks onto the unified Event stream.

// Pipeline is the legacy end-to-end flow description: acquire →
// relabel → extract → verify → write, with one boolean/int field per
// extraction mode. It compiles to a Spec (see Pipeline.Spec) and runs
// through the same Runner as every other entry point; conflicting mode
// fields (say Serial together with Shards) are validation errors.
//
// Deprecated: build a Spec instead — it is versioned, serializable,
// and names the engine explicitly; Pipeline survives only as an
// adapter for existing callers.
type Pipeline struct {
	// Source is the input file path or generator spec (see ParseSource).
	Source string
	// Input, when non-nil, is used directly as the acquired graph and
	// Source is ignored. Graphs are immutable, so a cached or shared
	// instance can be injected safely.
	Input *Graph
	// Relabel renumbers vertices before extraction.
	Relabel RelabelMode
	// Extract runs the paper's multithreaded extraction with Options.
	Extract bool
	// Options configures the parallel extraction.
	Options Options
	// Serial selects the Dearing-Shier-Warner serial baseline engine.
	Serial bool
	// Partitions > 0 selects the distributed-style partitioned baseline
	// engine (plus cycle cleanup).
	Partitions int
	// Shards > 0 selects the sharded extraction engine: Algorithm 1
	// runs per contiguous vertex-range shard (concurrently, inside
	// Options.Workers) and border edges are reconciled with a
	// chordality-preserving stitch. See internal/shard and DESIGN.md §7.
	Shards int
	// ShardStitchOnly restricts border reconciliation to the spanning
	// stitch (bridges only).
	ShardStitchOnly bool
	// Verify checks the extracted subgraph for chordality and, on
	// small inputs, audits maximality.
	Verify bool
	// Output writes the final graph (the subgraph when an extraction
	// stage ran, otherwise the input) to this path.
	Output string
	// OnStage, when non-nil, is called as each stage begins, with one of
	// "acquire", "relabel", "extract", "verify", "write".
	OnStage func(stage string)
	// OnIteration, when non-nil, receives each extraction iteration's
	// statistics as its barrier completes — the pipeline-level mirror of
	// Options.OnIteration (which it chains with, not replaces). Only the
	// parallel engine reports whole-graph iterations.
	OnIteration func(IterationStats)
	// OnShardIteration, when non-nil, receives each shard kernel's
	// iteration statistics during a sharded extraction (Shards > 0).
	// Shards extract concurrently, so the callback may be invoked
	// concurrently for different shards.
	OnShardIteration func(shard int, it IterationStats)
}

// Spec compiles the Pipeline to its declarative equivalent. Conflicting
// mode fields (more than one of Serial / Partitions / Shards) surface
// as validation errors from Spec.Normalize rather than being resolved
// by silent precedence.
func (p Pipeline) Spec() (Spec, error) {
	if p.Relabel < RelabelNone || p.Relabel > RelabelDegree {
		return Spec{}, fmt.Errorf("chordal: unknown relabel mode %d", p.Relabel)
	}
	engine := ""
	if p.Serial {
		engine = EngineSerial
	}
	if !p.Extract && !p.Serial && p.Partitions == 0 && p.Shards == 0 {
		engine = EngineNone
	}
	opts := p.Options
	return Spec{
		V:       SpecVersion,
		Source:  p.Source,
		Relabel: p.Relabel.String(),
		Engine:  engine,
		EngineConfig: EngineConfig{
			Variant:         variantName(p.Options.Variant),
			Schedule:        scheduleName(p.Options.Schedule),
			Workers:         p.Options.Workers,
			Repair:          p.Options.RepairMaximality,
			Stitch:          p.Options.StitchComponents,
			Partitions:      p.Partitions,
			Shards:          p.Shards,
			ShardStitchOnly: p.ShardStitchOnly,
			Core:            &opts,
		},
		Verify: p.Verify,
		Output: p.Output,
	}, nil
}

// observer adapts the Pipeline's three callbacks onto the unified
// event stream; nil when no callback is set.
func (p Pipeline) observer() Observer {
	if p.OnStage == nil && p.OnIteration == nil && p.OnShardIteration == nil {
		return nil
	}
	return func(ev Event) {
		switch ev.Type {
		case EventStageBegin:
			if p.OnStage != nil {
				p.OnStage(ev.Stage)
			}
		case EventIteration:
			if ev.Shard != nil {
				if p.OnShardIteration != nil {
					p.OnShardIteration(*ev.Shard, *ev.Stats)
				}
			} else if p.OnIteration != nil {
				p.OnIteration(*ev.Stats)
			}
		}
	}
}

// Run executes the pipeline with a background context.
func (p Pipeline) Run() (*PipelineResult, error) {
	return p.RunContext(context.Background())
}

// RunContext compiles the pipeline to a Spec and executes it under ctx
// through the shared Runner; see Runner.Run for the cancellation
// contract.
func (p Pipeline) RunContext(ctx context.Context) (*PipelineResult, error) {
	s, err := p.Spec()
	if err != nil {
		return nil, err
	}
	return Runner{Input: p.Input, Observer: p.observer()}.Run(ctx, s)
}

// PartitionSummary reports the partitioned-baseline stage.
type PartitionSummary struct {
	// Parts is the partition count used.
	Parts int `json:"parts"`
	// InteriorEdges and BorderAdmitted count edges kept inside parts and
	// across the border; CleanupRemoved/CleanupRounds report the cycle
	// cleanup pass.
	InteriorEdges  int `json:"interiorEdges"`
	BorderAdmitted int `json:"borderAdmitted"`
	CleanupRemoved int `json:"cleanupRemoved"`
	CleanupRounds  int `json:"cleanupRounds"`
}

// ShardSummary reports the sharded extraction stage: how the input was
// split, what each shard's kernel did, and how the border was
// reconciled.
type ShardSummary struct {
	// Shards is the shard count actually used (after clamping).
	Shards int `json:"shards"`
	// PerShardIterations and PerShardEdges have one entry per shard:
	// the kernel's iteration count and chordal edge count.
	PerShardIterations []int `json:"perShardIterations"`
	PerShardEdges      []int `json:"perShardEdges"`
	// InteriorEdges is the merged per-shard chordal edge total before
	// border reconciliation.
	InteriorEdges int `json:"interiorEdges"`
	// BorderTotal is the number of input edges crossing shards;
	// StitchedEdges counts spanning-stitch additions (BorderBridges the
	// cross-shard subset); BorderAdmitted counts border edges admitted
	// by the exact chordality-preserving pass; RepairedEdges counts the
	// merged repair pass additions.
	BorderTotal    int `json:"borderTotal"`
	StitchedEdges  int `json:"stitchedEdges"`
	BorderBridges  int `json:"borderBridges"`
	BorderAdmitted int `json:"borderAdmitted"`
	RepairedEdges  int `json:"repairedEdges"`
	// EdgeCut is the number of input edges crossing the contiguous-range
	// partition (partition.CutEdges; equal to BorderTotal, typed for the
	// report), and EdgeCutPct the same as a percentage of the input's
	// edges — the border-reconciliation cost a smarter partitioner would
	// shrink.
	EdgeCut    int64   `json:"edgeCut"`
	EdgeCutPct float64 `json:"edgeCutPct"`
	// Chordal is the shard stage's own verification of the merged
	// subgraph (always expected true; a self-check of reconciliation).
	Chordal bool `json:"chordal"`
}

// ExternalSummary reports the out-of-core engine's IO behavior: how the
// input was read, how much of it was resident at peak, and how well the
// double-buffered lane split hid decode time behind kernel time.
type ExternalSummary struct {
	// Mapped reports whether the input file was memory-mapped;
	// BytesMapped is the mapped file size (0 when the buffered fallback
	// reader served the run).
	Mapped      bool  `json:"mapped"`
	BytesMapped int64 `json:"bytesMapped"`
	// BytesRead is the total bytes decoded from the input across shard
	// decodes and the edge-stream reconciliation passes.
	BytesRead int64 `json:"bytesRead"`
	// SpillBytes is the size of the per-shard edge spill file.
	SpillBytes int64 `json:"spillBytes"`
	// PeakResidentBytes estimates the high-water mark of decoded shard
	// CSR bytes held in memory at once — the quantity ResidentShards
	// bounds.
	PeakResidentBytes int64 `json:"peakResidentBytes"`
	// ResidentShards is the residency bound the run used (after
	// defaulting).
	ResidentShards int `json:"residentShards"`
	// DecodeMillis and KernelMillis are the summed shard decode and
	// kernel wall-clock times; OverlapMillis is how much of the decode
	// time the double buffer hid behind extraction (0 on a single
	// worker, where the lanes serialize).
	DecodeMillis  float64 `json:"decodeMillis"`
	KernelMillis  float64 `json:"kernelMillis"`
	OverlapMillis float64 `json:"overlapMillis"`
}

// DearingSummary reports the dearing engine run.
type DearingSummary struct {
	// Start is the start vertex the incremental extraction grew from.
	Start int `json:"start"`
}

// EliminationSummary reports the elimination engine run.
type EliminationSummary struct {
	// Order is the elimination ordering used (OrderNatural or
	// OrderMinDegree).
	Order string `json:"order"`
}

// StageTiming is the wall-clock duration of one pipeline stage.
type StageTiming struct {
	// Stage is the stage name; Duration its wall-clock time.
	Stage    string
	Duration time.Duration
}

// PipelineResult carries the outputs of every stage that ran.
type PipelineResult struct {
	// Input is the acquired (and possibly relabeled) graph.
	Input *Graph
	// InputStats are the Table-I statistics of Input.
	InputStats Stats
	// Subgraph is the extracted chordal subgraph, nil when no
	// extraction stage ran.
	Subgraph *Graph
	// Extraction is the parallel extraction result (nil for the serial
	// and partitioned baselines).
	Extraction *Result
	// SerialDuration is the serial baseline's runtime, when used.
	SerialDuration time.Duration
	// Partition summarizes the partitioned baseline, when used.
	Partition *PartitionSummary
	// Shard summarizes the sharded extraction, when used.
	Shard *ShardSummary
	// Dearing summarizes the dearing engine run, when used.
	Dearing *DearingSummary
	// Elimination summarizes the elimination engine run, when used.
	Elimination *EliminationSummary
	// External summarizes the out-of-core engine's IO, when used. On its
	// no-acquire path Input stays nil and InputStats comes from the file.
	External *ExternalSummary
	// Tuning is the resolved kernel tuning of the extract stage; nil
	// when no extraction ran or the engine has no tunable kernels.
	Tuning *Tuning
	// Verified reports whether the verify stage ran; ChordalOK whether
	// the subgraph passed the chordality check.
	Verified  bool
	ChordalOK bool
	// MaximalityAudited reports whether the bounded maximality audit
	// ran (it is skipped on large inputs); ReAddableEdges is the number
	// of audit violations found (0 means maximal as far as audited).
	MaximalityAudited bool
	ReAddableEdges    int
	// Quality scores the extracted subgraph against the input (edge
	// retention, fill-in under the subgraph's PEO, treewidth and
	// chromatic number); nil when no subgraph was extracted, the
	// subgraph failed verification, or the input exceeded the default
	// quality bounds.
	Quality *Quality
	// Timings records per-stage wall-clock durations in stage order.
	Timings []StageTiming
}
