package chordal

import (
	"context"
	"fmt"
	"sync"
	"time"

	"chordal/internal/parallel"
)

// This file defines the batch layer: one call that runs many Specs over
// a single persistent worker pool and shared budget — the paper's
// headline workload is a suite of gene-correlation graphs extracted
// back-to-back, not one giant graph. Batch amortizes what per-item
// Spec.Run cannot: items run concurrently inside one worker budget
// (never oversubscribing the machine the way N full-width runs would),
// the pool's budget leases persist across items instead of being
// re-negotiated per run, and items with identical Canonical() keys are
// deduplicated onto one execution. The service's POST /v1/batches and
// the CLI's -batch mode are thin layers over the same semantics.

// BatchOptions configures a Batch run. The zero value is ready to use:
// machine-width budget, one pool slot per token, events discarded.
type BatchOptions struct {
	// Workers is the total worker-token budget shared by every item in
	// the batch; <= 0 selects the machine's effective parallelism. An
	// item's own Spec.Workers request is honored only below its slot's
	// granted width — the batch never oversubscribes its budget.
	Workers int
	// Concurrency bounds simultaneously running items (the pool's slot
	// count). <= 0 selects one slot per budget token — for suites of
	// small graphs, cross-item overlap beats within-item width. Values
	// above the budget are clamped; each slot leases an equal share of
	// the budget and holds it for the batch's lifetime.
	Concurrency int
	// Observer receives every item's event stream, each event tagged
	// with its batch item index in Event.Batch. Items run concurrently,
	// so events of different items interleave; the Observer must be
	// safe for concurrent use. nil discards events.
	Observer Observer
}

// BatchItem is the outcome of one spec in a Batch.
type BatchItem struct {
	// Index is the item's position in the submitted spec slice.
	Index int
	// Spec is the normalized spec (zero when normalization failed; see
	// Err).
	Spec Spec
	// Canonical is the spec's identity key (empty when normalization
	// failed).
	Canonical string
	// DupOf is the index of the earlier item with the same Canonical
	// key and Output path that this item was deduplicated onto, or -1
	// when the item executed (or failed) itself. A duplicate shares the
	// original's Result and Err.
	DupOf int
	// Result is the finished run's outputs; nil when the item failed.
	Result *PipelineResult
	// Err is the item's failure: a normalization error, the run error,
	// or the batch context's error for items canceled before running.
	Err error
}

// BatchResult is the outcome of a Batch: one BatchItem per submitted
// spec, in submission order.
type BatchResult struct {
	// Items has one entry per submitted spec.
	Items []BatchItem
	// Unique counts the items that ran their own execution —
	// duplicates, invalid items, output-path collisions, and items
	// canceled before a pool slot accepted them are excluded.
	Unique int
	// Wall is the batch's wall-clock time, scheduling included. Compare
	// with the sum of per-item timings to see the overlap won.
	Wall time.Duration
}

// Failed counts items that finished with an error (duplicates of a
// failed item included).
func (r *BatchResult) Failed() int {
	n := 0
	for _, it := range r.Items {
		if it.Err != nil {
			n++
		}
	}
	return n
}

// VerifyFailed counts items that ran to completion but failed their
// verification: the verify stage found the subgraph non-chordal, or
// the sharded engine's reconciliation self-check failed. Duplicates of
// such an item are counted too. These items carry no Err — use this
// alongside Failed to decide whether a batch passed.
func (r *BatchResult) VerifyFailed() int {
	n := 0
	for _, it := range r.Items {
		if res := it.Result; it.Err == nil && res != nil &&
			((res.Verified && !res.ChordalOK) || (res.Shard != nil && !res.Shard.Chordal)) {
			n++
		}
	}
	return n
}

// Batch runs every spec over one persistent worker pool and shared
// budget, with bounded concurrency and per-item events tagged with the
// item index. Items whose Canonical() keys collide are deduplicated
// (unless their Output paths differ — every requested file is still
// written): only the first runs, later duplicates share its result and
// record DupOf. Invalid specs, and distinct specs naming one Output
// path (concurrent writes to one file would race), fail their own item
// without stopping the batch.
//
// On context cancellation, running items drain at their next stage or
// iteration boundary and unstarted items fail with ctx.Err(); the
// returned error is ctx.Err() then and nil otherwise — per-item
// failures live in the items, not the batch error. The result is
// non-nil either way, with every item accounted for.
func Batch(ctx context.Context, specs []Spec, opts BatchOptions) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	res := &BatchResult{Items: make([]BatchItem, len(specs))}

	// Normalize and dedup up front: validation errors settle their item
	// immediately, duplicates point at the first holder of their key.
	// The dedup key is Canonical plus the Output path: Canonical alone
	// deliberately excludes Output (it does not change the result), but
	// an item asked to write a different file must still run — skipping
	// it would silently drop the write. Conversely, two *distinct*
	// specs naming one Output path would run concurrently and race
	// truncating the same file, so the collision fails the later item.
	firstByKey := make(map[string]int, len(specs))
	firstByCanon := make(map[string]int, len(specs))
	firstByOutput := make(map[string]int)
	for i, s := range specs {
		it := &res.Items[i]
		it.Index = i
		it.DupOf = -1
		n, err := s.Normalize()
		if err != nil {
			it.Err = err
			continue
		}
		canon, err := n.Canonical()
		if err != nil {
			it.Err = err
			continue
		}
		it.Spec = n
		it.Canonical = canon
		key := canon + "\x00" + n.Output
		if first, dup := firstByKey[key]; dup {
			it.DupOf = first
			continue
		}
		if n.Output == "" {
			// An outputless item needs only the result, so it can ride
			// any earlier run of the same canonical spec, even one that
			// also writes a file.
			if first, dup := firstByCanon[canon]; dup {
				it.DupOf = first
				continue
			}
		} else {
			if prev, clash := firstByOutput[n.Output]; clash {
				it.Err = fmt.Errorf("chordal: batch item %d: output %q collides with item %d (distinct specs writing one file would race)", i, n.Output, prev)
				continue
			}
			firstByOutput[n.Output] = i
		}
		firstByKey[key] = i
		if _, seen := firstByCanon[canon]; !seen {
			firstByCanon[canon] = i
		}
		res.Unique++
	}

	budget := parallel.NewBudget(opts.Workers)
	pool := parallel.NewPool(ctx, budget, opts.Concurrency)
	defer pool.Close()

	var wg sync.WaitGroup
	for i := range res.Items {
		it := &res.Items[i]
		if it.Err != nil || it.DupOf >= 0 {
			continue
		}
		idx := i
		// One tag per item, not per event: Event is delivered by value,
		// so every event of this item can share the one pointer.
		tag := idx
		task := func(workers int) {
			defer wg.Done()
			spec := res.Items[idx].Spec
			// The slot's granted width is the item's parallelism bound;
			// an explicit smaller request in the spec still wins.
			if spec.Workers <= 0 || spec.Workers > workers {
				spec.Workers = workers
			}
			runner := Runner{}
			if obs := opts.Observer; obs != nil {
				runner.Observer = func(ev Event) {
					ev.Batch = &tag
					obs(ev)
				}
			}
			out, err := runner.Run(ctx, spec)
			res.Items[idx].Result = out
			res.Items[idx].Err = err
		}
		wg.Add(1)
		if err := pool.Submit(ctx, task); err != nil {
			// Never accepted by a slot: the item did not run, so it is
			// not one of the batch's executed uniques.
			wg.Done()
			it.Err = err
			res.Unique--
		}
	}
	wg.Wait()

	// Settle duplicates onto their originals' outcomes.
	for i := range res.Items {
		it := &res.Items[i]
		if it.DupOf >= 0 {
			orig := &res.Items[it.DupOf]
			it.Result = orig.Result
			it.Err = orig.Err
		}
	}
	res.Wall = time.Since(start)
	return res, ctx.Err()
}
