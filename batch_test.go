package chordal_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"chordal"
)

// TestBatchRunsSuite covers the batch layer end to end on a small
// mixed suite: every item runs, duplicates (by canonical spec, not by
// spelling) share one execution, invalid specs fail their own item
// without sinking the batch, and results match standalone Spec.Run.
func TestBatchRunsSuite(t *testing.T) {
	specs := []chordal.Spec{
		{Source: "rmat-g:9:5", Verify: true},
		{Source: "gnm:500:2000:3", Verify: true},
		{Source: " RMAT-G:9:5:8 ", Verify: true}, // canonical dup of item 0
		{Source: "rmat-er"},                      // invalid: missing scale
		{Source: "ktree:100:3:2", Engine: "serial", Verify: true},
	}
	res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(res.Items) != len(specs) {
		t.Fatalf("%d items, want %d", len(res.Items), len(specs))
	}
	if res.Unique != 3 {
		t.Errorf("Unique = %d, want 3", res.Unique)
	}
	if res.Failed() != 1 {
		t.Errorf("Failed = %d, want 1 (the invalid spec)", res.Failed())
	}

	for _, i := range []int{0, 1, 4} {
		it := res.Items[i]
		if it.Err != nil {
			t.Fatalf("item %d: %v", i, it.Err)
		}
		if it.DupOf != -1 {
			t.Errorf("item %d DupOf = %d, want -1", i, it.DupOf)
		}
		if !it.Result.ChordalOK {
			t.Errorf("item %d not chordal", i)
		}
	}
	dup := res.Items[2]
	if dup.DupOf != 0 {
		t.Fatalf("item 2 DupOf = %d, want 0", dup.DupOf)
	}
	if dup.Result != res.Items[0].Result {
		t.Error("duplicate item does not share the original's result")
	}
	if res.Items[3].Err == nil || !strings.Contains(res.Items[3].Err.Error(), "missing scale") {
		t.Errorf("invalid item error = %v", res.Items[3].Err)
	}

	// A batch item's subgraph is byte-identical to a standalone run of
	// the same spec — the pool width must not change the result.
	solo, err := specs[0].Run()
	if err != nil {
		t.Fatal(err)
	}
	got := res.Items[0].Result.Subgraph
	if !reflect.DeepEqual(got.Offsets, solo.Subgraph.Offsets) || !reflect.DeepEqual(got.Adj, solo.Subgraph.Adj) {
		t.Error("batch subgraph differs from standalone Spec.Run")
	}

	// The aggregate report accounts for every item.
	rep := res.Report()
	if rep.Total != 5 || rep.Unique != 3 || rep.Deduplicated != 1 || rep.Failed != 1 {
		t.Errorf("report totals %+v", rep)
	}
	if rep.Items[2].DupOf == nil || *rep.Items[2].DupOf != 0 {
		t.Errorf("report item 2 DupOf = %v, want 0", rep.Items[2].DupOf)
	}
	if rep.Items[0].Report == nil || rep.Items[0].Report.Verify == nil || !rep.Items[0].Report.Verify.Chordal {
		t.Errorf("report item 0 missing verified run report")
	}
	if rep.Items[3].Error == "" {
		t.Error("report item 3 missing error")
	}
}

// TestBatchEventTagging checks that a shared Observer sees every
// item's events tagged with its batch index, and that duplicate items
// (which never run) produce no events of their own.
func TestBatchEventTagging(t *testing.T) {
	specs := []chordal.Spec{
		{Source: "rmat-g:8:3", Verify: true},
		{Source: "gnm:300:1200:9", Verify: true},
		{Source: "rmat-g:8:3", Verify: true}, // dup of 0
	}
	var mu sync.Mutex
	stagesByItem := map[int][]string{}
	res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{
		Observer: func(ev chordal.Event) {
			mu.Lock()
			defer mu.Unlock()
			if ev.Batch == nil {
				t.Error("batch event without Batch index")
				return
			}
			if ev.Type == chordal.EventStageBegin {
				stagesByItem[*ev.Batch] = append(stagesByItem[*ev.Batch], ev.Stage)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Failed(); n != 0 {
		t.Fatalf("%d failures", n)
	}
	want := []string{"acquire", "extract", "verify"}
	for _, idx := range []int{0, 1} {
		if !reflect.DeepEqual(stagesByItem[idx], want) {
			t.Errorf("item %d stages %v, want %v", idx, stagesByItem[idx], want)
		}
	}
	if evs, ok := stagesByItem[2]; ok {
		t.Errorf("duplicate item emitted its own events: %v", evs)
	}
}

// TestBatchDistinctOutputsNotDeduped pins the dedup key: two items
// with one canonical spec but different Output paths must both run —
// Canonical excludes Output, but skipping the second item would
// silently drop its file write.
func TestBatchDistinctOutputsNotDeduped(t *testing.T) {
	dir := t.TempDir()
	outA, outB := filepath.Join(dir, "a.bin"), filepath.Join(dir, "b.bin")
	specs := []chordal.Spec{
		{Source: "gnm:200:800:3", Output: outA},
		{Source: "gnm:200:800:3", Output: outB},
		{Source: "gnm:200:800:3", Output: outA}, // true duplicate of item 0
		{Source: "gnm:100:400:9", Output: outA}, // DISTINCT spec, same file: rejected
		{Source: "gnm:200:800:3"},               // outputless: rides item 0's run
	}
	res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Failed(); n != 1 {
		t.Fatalf("%d failed, want 1 (the output collision)", n)
	}
	if res.Unique != 2 {
		t.Errorf("Unique = %d, want 2 (distinct outputs both run)", res.Unique)
	}
	if res.Items[1].DupOf != -1 {
		t.Errorf("item 1 (different output) deduplicated onto %d", res.Items[1].DupOf)
	}
	if res.Items[2].DupOf != 0 {
		t.Errorf("item 2 DupOf = %d, want 0", res.Items[2].DupOf)
	}
	if e := res.Items[3].Err; e == nil || !strings.Contains(e.Error(), "collides with item 0") {
		t.Errorf("item 3 (distinct spec, shared file) err = %v, want output collision", e)
	}
	if res.Items[4].DupOf != 0 {
		t.Errorf("item 4 (outputless dup) DupOf = %d, want to ride item 0", res.Items[4].DupOf)
	}
	for _, p := range []string{outA, outB} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("output %s not written: %v", p, err)
		}
	}
}

// brokenEngine produces a deliberately non-chordal subgraph (a 4-cycle)
// so verify fails without an execution error.
type brokenEngine struct{}

func (brokenEngine) Name() string { return "test-broken" }
func (brokenEngine) Extract(_ context.Context, g *chordal.Graph, _ chordal.EngineConfig) (*chordal.EngineResult, error) {
	sub := chordal.BuildFromEdges(g.NumVertices(), []int32{0, 1, 2, 3}, []int32{1, 2, 3, 0})
	return &chordal.EngineResult{Subgraph: sub}, nil
}

var registerBroken sync.Once

// TestBatchVerifyFailedCount pins the pass/fail accounting surface: an
// item that runs but fails verification carries no error, so it lands
// in VerifyFailed (and the report's verifyFailed), not Failed — and
// both the CLI exit code and JSON consumers read the same rule.
func TestBatchVerifyFailedCount(t *testing.T) {
	registerBroken.Do(func() { chordal.RegisterEngine(brokenEngine{}) })
	specs := []chordal.Spec{
		{Source: "gnm:100:400:3", Verify: true},
		{Source: "gnm:100:400:3", Engine: "test-broken", Verify: true},
	}
	res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Failed(); got != 0 {
		t.Errorf("Failed = %d, want 0 (verify failure is not an execution error)", got)
	}
	if got := res.VerifyFailed(); got != 1 {
		t.Errorf("VerifyFailed = %d, want 1", got)
	}
	rep := res.Report()
	if rep.Failed != 0 || rep.VerifyFailed != 1 {
		t.Errorf("report failed=%d verifyFailed=%d, want 0/1", rep.Failed, rep.VerifyFailed)
	}
}

// TestBatchCancel checks the drain contract: a canceled batch returns
// ctx.Err(), every item is accounted for, and items that never started
// carry the context error rather than hanging.
func TestBatchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead before the batch starts: nothing may run
	specs := []chordal.Spec{
		{Source: "rmat-g:10:3", Verify: true},
		{Source: "gnm:1000:8000:3", Verify: true},
	}
	res, err := chordal.Batch(ctx, specs, chordal.BatchOptions{Concurrency: 1})
	if err != context.Canceled {
		t.Fatalf("Batch err = %v, want context.Canceled", err)
	}
	for i, it := range res.Items {
		if it.Err == nil {
			t.Errorf("item %d ran to completion under a dead context", i)
		}
	}
}

// TestBatchWorkersBound checks that an item's explicit narrow Workers
// request survives the pool (the slot width only caps, never widens).
func TestBatchWorkersBound(t *testing.T) {
	specs := []chordal.Spec{{
		Source:       "rmat-g:8:3",
		EngineConfig: chordal.EngineConfig{Workers: 1},
		Verify:       true,
	}}
	res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{Workers: 4, Concurrency: 1})
	if err != nil || res.Items[0].Err != nil {
		t.Fatalf("Batch: %v / %v", err, res.Items[0].Err)
	}
	if got := res.Items[0].Spec.Workers; got != 1 {
		t.Errorf("normalized spec Workers = %d, want the explicit 1 preserved", got)
	}
	if !res.Items[0].Result.ChordalOK {
		t.Error("not chordal")
	}
}
