package chordal

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"chordal/internal/biogen"
	"chordal/internal/graph"
	"chordal/internal/rmat"
	"chordal/internal/synth"
)

// # Source spec grammar
//
// A Source is either a path to a graph file (.bin binary CSR, .mtx
// Matrix Market, anything else a text edge list), a generator spec
// "family:arg:arg..." with colon-separated arguments (trailing
// arguments with defaults may be omitted), or a content-addressed
// upload identity "upload:format:sha256hex" naming graph bytes the
// caller supplies out of band. The SourceSpecs constant is the
// authoritative one-line-per-family grammar (the CLIs print it in
// their usage text). Family names are case-insensitive; seed defaults
// to 42, edgefactor to 8, downscale to 8. Source.Canonical returns
// the lowercased, default-filled form that cache keys are built from.

// Source describes where a pipeline input graph comes from: a file
// path, a generator spec of the form "family:arg:arg...", or a
// content-addressed upload identity. Use ParseSource to build one from
// a string.
type Source struct {
	spec      string
	canon     string
	generated bool
	content   bool
	load      func(workers int) (*Graph, error)
}

// String returns the spec the source was parsed from.
func (s Source) String() string { return s.spec }

// Canonical returns the normalized form of the spec: the generator
// family lowercased and every optional argument filled in with its
// default, so that two specs naming the same input ("rmat-er:14",
// "RMAT-ER:14:42:8", " rmat-er:14 ") canonicalize identically. File
// paths are path-cleaned; upload identities are already canonical.
// Spec.Canonical embeds this form, so every cache key is built from it.
func (s Source) Canonical() string { return s.canon }

// Generated reports whether the source is a synthetic generator spec,
// whose Load is deterministic in the canonical spec — safe to cache by
// Canonical — as opposed to a file path, whose contents may change
// between loads.
func (s Source) Generated() bool { return s.generated }

// ContentAddressed reports whether the source is an upload identity
// ("upload:format:sha256hex") naming graph bytes by their content
// digest. Such sources cannot Load — the bytes arrive out of band (the
// service parses the multipart upload and injects the graph) — but two
// identical identities always denote the same graph, so results are
// safe to cache by Canonical.
func (s Source) ContentAddressed() bool { return s.content }

// Load acquires the graph (reading or generating it) at machine width.
func (s Source) Load() (*Graph, error) {
	return s.LoadWorkers(0)
}

// LoadWorkers acquires the graph with the parallel parts of reading or
// generating bounded to the given worker count (<= 0 means machine
// width). Generated graphs are identical whatever the bound — sampling
// runs on fixed PRNG streams — so caching by Canonical stays sound
// while each service job loads inside its own budget lease.
func (s Source) LoadWorkers(workers int) (*Graph, error) {
	if s.load == nil {
		return nil, fmt.Errorf("chordal: empty source")
	}
	return s.load(workers)
}

// SourceSpecs documents the generator spec grammar understood by
// ParseSource, one spec per line.
const SourceSpecs = `rmat-er:scale[:seed[:edgefactor]]   R-MAT, uniform quadrants
rmat-g:scale[:seed[:edgefactor]]    R-MAT, skewed (communities)
rmat-b:scale[:seed[:edgefactor]]    R-MAT, heavily skewed
gse5140-crt[:downscale[:seed]]      bio suite (also -unt, gse17072-ctl, -non)
gnm:n:m[:seed]                      uniform random G(n,m)
ws:n:k:beta[:seed]                  Watts-Strogatz small world
geo:n:radius[:seed]                 random geometric
ktree:n:k[:seed]                    k-tree (chordal ground truth)
<path>                              graph file (.bin/.mtx/edge list)`

// UploadSource returns the canonical content-addressed source identity
// of uploaded graph bytes: "upload:" plus the decode format and the
// full SHA-256 content digest. The format is part of the identity
// because the same bytes decode to different graphs under different
// parsers (Matrix Market is 1-based with comment banners; edge lists
// are 0-based); within one format, re-submitting the same bytes shares
// one identity no matter the filename. Takes the digest rather than
// the bytes so callers can hash a streamed upload without buffering it.
func UploadSource(format string, digest [sha256.Size]byte) string {
	return "upload:" + strings.ToLower(format) + ":" + hex.EncodeToString(digest[:])
}

// ParseSource parses a file path, generator spec, or upload identity.
// Any spec whose first colon-separated field is not a known generator
// family (or "upload") is treated as a file path. Surrounding
// whitespace is ignored.
func ParseSource(spec string) (Source, error) {
	spec = strings.TrimSpace(spec)
	fields := strings.Split(spec, ":")
	head := strings.ToLower(fields[0])
	args := fields[1:]

	intArg := func(i int, name string, def int64) (int64, error) {
		if i >= len(args) || args[i] == "" {
			return def, nil
		}
		v, err := strconv.ParseInt(args[i], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("chordal: source %q: bad %s %q", spec, name, args[i])
		}
		return v, nil
	}
	floatArg := func(i int, name string) (float64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("chordal: source %q: missing %s", spec, name)
		}
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil {
			return 0, fmt.Errorf("chordal: source %q: bad %s %q", spec, name, args[i])
		}
		return v, nil
	}

	switch head {
	case "upload":
		// A content-addressed identity minted by UploadSource: already
		// canonical, never loadable here — the bytes arrive out of band.
		if len(args) != 2 || args[1] == "" {
			return Source{}, fmt.Errorf("chordal: source %q: want upload:format:sha256hex", spec)
		}
		return Source{spec, spec, false, true, func(int) (*Graph, error) {
			return nil, fmt.Errorf("chordal: upload source %q has no loadable bytes; inject the parsed graph as the run input", spec)
		}}, nil

	case "rmat-er", "rmat-g", "rmat-b":
		preset := map[string]RMATPreset{"rmat-er": RMATER, "rmat-g": RMATG, "rmat-b": RMATB}[head]
		scale, err := intArg(0, "scale", -1)
		if err != nil {
			return Source{}, err
		}
		if scale < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: missing scale", spec)
		}
		seed, err := intArg(1, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		edgeFactor, err := intArg(2, "edgefactor", 8)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("%s:%d:%d:%d", head, scale, seed, edgeFactor)
		return Source{spec, canon, true, false, func(workers int) (*Graph, error) {
			p := rmat.PresetParams(preset, int(scale), uint64(seed))
			p.EdgeFactor = int(edgeFactor)
			p.Workers = workers
			return rmat.Generate(p)
		}}, nil

	case "gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non":
		dataset := map[string]BioDataset{
			"gse5140-crt": GSE5140CRT, "gse5140-unt": GSE5140UNT,
			"gse17072-ctl": GSE17072CTL, "gse17072-non": GSE17072NON,
		}[head]
		downscale, err := intArg(0, "downscale", 8)
		if err != nil {
			return Source{}, err
		}
		seed, err := intArg(1, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("%s:%d:%d", head, downscale, seed)
		return Source{spec, canon, true, false, func(workers int) (*Graph, error) {
			p := biogen.PresetParams(dataset, int(downscale), uint64(seed))
			p.Workers = workers
			return biogen.Generate(p)
		}}, nil

	case "gnm":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		m, err := intArg(1, "m", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 || m < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need gnm:n:m", spec)
		}
		seed, err := intArg(2, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("gnm:%d:%d:%d", n, m, seed)
		return Source{spec, canon, true, false, func(workers int) (*Graph, error) {
			return synth.GNM(int(n), m, uint64(seed), workers), nil
		}}, nil

	case "ws":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		k, err := intArg(1, "k", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 || k < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need ws:n:k:beta", spec)
		}
		beta, err := floatArg(2, "beta")
		if err != nil {
			return Source{}, err
		}
		seed, err := intArg(3, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("ws:%d:%d:%s:%d", n, k, strconv.FormatFloat(beta, 'g', -1, 64), seed)
		return Source{spec, canon, true, false, func(workers int) (*Graph, error) {
			return synth.WattsStrogatz(int(n), int(k), beta, uint64(seed), workers), nil
		}}, nil

	case "geo":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need geo:n:radius", spec)
		}
		radius, err := floatArg(1, "radius")
		if err != nil {
			return Source{}, err
		}
		seed, err := intArg(2, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("geo:%d:%s:%d", n, strconv.FormatFloat(radius, 'g', -1, 64), seed)
		return Source{spec, canon, true, false, func(workers int) (*Graph, error) {
			return synth.RandomGeometric(int(n), radius, uint64(seed), workers), nil
		}}, nil

	case "ktree":
		n, err := intArg(0, "n", -1)
		if err != nil {
			return Source{}, err
		}
		k, err := intArg(1, "k", -1)
		if err != nil {
			return Source{}, err
		}
		if n < 0 || k < 0 {
			return Source{}, fmt.Errorf("chordal: source %q: need ktree:n:k", spec)
		}
		seed, err := intArg(2, "seed", 42)
		if err != nil {
			return Source{}, err
		}
		canon := fmt.Sprintf("ktree:%d:%d:%d", n, k, seed)
		return Source{spec, canon, true, false, func(workers int) (*Graph, error) {
			return synth.KTree(int(n), int(k), uint64(seed), workers), nil
		}}, nil
	}
	// Anything else is a file path.
	return Source{spec, filepath.Clean(spec), false, false, func(workers int) (*Graph, error) {
		return graph.LoadFileWorkers(spec, workers)
	}}, nil
}
