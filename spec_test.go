package chordal_test

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"chordal"
)

// mustCanonical returns the canonical encoding or fails the test.
func mustCanonical(t *testing.T, s chordal.Spec) string {
	t.Helper()
	c, err := s.Canonical()
	if err != nil {
		t.Fatalf("Canonical(%+v): %v", s, err)
	}
	return c
}

// TestSpecCanonicalGolden pins the canonical encoding of representative
// specs across all four engines, upload digests and shard options. The
// canonical string is the cache/dedup key of the library, CLI and
// service: if one of these goldens changes, every persisted cache key
// drifts — treat a failure here as an API break, not a test to update
// casually.
func TestSpecCanonicalGolden(t *testing.T) {
	cases := []struct {
		name string
		spec chordal.Spec
		want string
	}{
		{
			name: "parallel defaults",
			spec: chordal.Spec{Source: "rmat-er:12"},
			want: "v1 engine=parallel relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=false src=rmat-er:12:42:8",
		},
		{
			name: "parallel spelled-out options",
			spec: chordal.Spec{
				V:       1,
				Source:  " RMAT-ER:12:42:8 ",
				Relabel: "BFS",
				Engine:  "parallel",
				EngineConfig: chordal.EngineConfig{
					Variant:         "unopt",
					Schedule:        "sync",
					Workers:         8,   // excluded from identity
					Grain:           128, // excluded from identity
					DegreeThreshold: 16,  // excluded from identity
					Repair:          true,
				},
				Verify: true,
				Output: "sub.bin", // excluded from identity
			},
			want: "v1 engine=parallel relabel=bfs variant=unopt schedule=sync repair=true stitch=false partitions=0 shards=0 stitchonly=false verify=true src=rmat-er:12:42:8",
		},
		{
			name: "serial engine",
			spec: chordal.Spec{Source: "gnm:1000:5000", Engine: "serial", Verify: true},
			want: "v1 engine=serial relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=true src=gnm:1000:5000:42",
		},
		{
			name: "partitioned engine implied by partitions",
			spec: chordal.Spec{Source: "rmat-g:10:7", EngineConfig: chordal.EngineConfig{Partitions: 8}},
			want: "v1 engine=partitioned relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=8 shards=0 stitchonly=false verify=false src=rmat-g:10:7:8",
		},
		{
			name: "sharded engine with stitch-only",
			spec: chordal.Spec{
				Source:       "rmat-g:10:7",
				EngineConfig: chordal.EngineConfig{Shards: 4, ShardStitchOnly: true},
				Verify:       true,
			},
			want: "v1 engine=sharded relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=4 stitchonly=true verify=true src=rmat-g:10:7:8",
		},
		{
			name: "stitch-only canonicalized away off the sharded engine",
			spec: chordal.Spec{Source: "gnm:100:300", EngineConfig: chordal.EngineConfig{ShardStitchOnly: true}},
			want: "v1 engine=parallel relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=false src=gnm:100:300:42",
		},
		{
			name: "dearing engine default start",
			spec: chordal.Spec{Source: "gnm:1000:5000", Engine: "dearing", Verify: true},
			want: "v1 engine=dearing relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=true start=0 src=gnm:1000:5000:42",
		},
		{
			name: "dearing engine explicit start",
			spec: chordal.Spec{Source: "gnm:1000:5000", Engine: "dearing", EngineConfig: chordal.EngineConfig{Start: 5}},
			want: "v1 engine=dearing relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=false start=5 src=gnm:1000:5000:42",
		},
		{
			name: "elimination engine defaults to mindeg",
			spec: chordal.Spec{Source: "gnm:1000:5000", Engine: "elimination", Verify: true},
			want: "v1 engine=elimination relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=true order=mindeg src=gnm:1000:5000:42",
		},
		{
			name: "elimination engine natural order",
			spec: chordal.Spec{Source: "gnm:1000:5000", Engine: "elimination", EngineConfig: chordal.EngineConfig{Order: " Natural "}},
			want: "v1 engine=elimination relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=false order=natural src=gnm:1000:5000:42",
		},
		{
			name: "upload digest",
			spec: chordal.Spec{
				Source: chordal.UploadSource("edges", sha256.Sum256([]byte("0 1\n1 2\n"))),
				Verify: true,
			},
			want: "v1 engine=parallel relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=0 stitchonly=false verify=true src=upload:edges:8ba65ee1bbe8297e30cab4c5fc9b62a8caa0dbe7b89298edf1da2609beb24ae1",
		},
	}
	for _, c := range cases {
		if got := mustCanonical(t, c.spec); got != c.want {
			t.Errorf("%s:\n got  %s\n want %s", c.name, got, c.want)
		}
	}
}

// TestSpecJSONRoundTrip is the stability property: for a grid of specs,
// normalize → JSON → decode → normalize must reproduce the identical
// spec and canonical key, so specs can be persisted, shipped over the
// service API, and replayed without identity drift.
func TestSpecJSONRoundTrip(t *testing.T) {
	var grid []chordal.Spec
	for _, engine := range []string{"", "parallel", "serial", "partitioned", "sharded", "dearing", "elimination", "none"} {
		for _, relabel := range []string{"", "bfs", "degree"} {
			for _, verifyOn := range []bool{false, true} {
				s := chordal.Spec{
					Source:  "rmat-b:9:7",
					Engine:  engine,
					Relabel: relabel,
					Verify:  verifyOn,
					EngineConfig: chordal.EngineConfig{
						Variant:  "opt",
						Schedule: "async",
						Repair:   verifyOn,
					},
				}
				if engine == "partitioned" {
					s.Partitions = 4
				}
				if engine == "sharded" {
					s.Shards = 4
					s.ShardStitchOnly = true
				}
				if engine == "dearing" {
					s.Start = 7
				}
				if engine == "elimination" {
					s.Order = "natural"
				}
				if engine == "none" && verifyOn {
					continue // invalid by construction: verify needs an engine
				}
				grid = append(grid, s)
			}
		}
	}
	if len(grid) < 30 {
		t.Fatalf("grid too small: %d", len(grid))
	}
	for _, s := range grid {
		norm, err := s.Normalize()
		if err != nil {
			t.Fatalf("Normalize(%+v): %v", s, err)
		}
		blob, err := json.Marshal(norm)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back chordal.Spec
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		back2, err := back.Normalize()
		if err != nil {
			t.Fatalf("re-normalize %s: %v", blob, err)
		}
		if !reflect.DeepEqual(norm, back2) {
			t.Errorf("round trip drifted:\n before %+v\n after  %+v", norm, back2)
		}
		if mustCanonical(t, norm) != mustCanonical(t, back2) {
			t.Errorf("canonical drifted across JSON round trip for %s", blob)
		}
	}
}

// TestSpecValidationErrors pins the redesign's central contract:
// conflicting or unknown engine selections are errors, never silent
// precedence.
func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name    string
		spec    chordal.Spec
		errWant string
	}{
		{"unknown engine", chordal.Spec{Source: "gnm:10:20", Engine: "warp"}, "unknown engine"},
		{"serial+shards", chordal.Spec{Source: "gnm:10:20", Engine: "serial", EngineConfig: chordal.EngineConfig{Shards: 4}}, "conflict"},
		{"parallel+partitions", chordal.Spec{Source: "gnm:10:20", Engine: "parallel", EngineConfig: chordal.EngineConfig{Partitions: 2}}, "conflict"},
		{"partitions+shards", chordal.Spec{Source: "gnm:10:20", EngineConfig: chordal.EngineConfig{Partitions: 2, Shards: 4}}, "conflict"},
		{"sharded without shards", chordal.Spec{Source: "gnm:10:20", Engine: "sharded"}, "shards >= 1"},
		{"partitioned without partitions", chordal.Spec{Source: "gnm:10:20", Engine: "partitioned"}, "partitions >= 1"},
		{"negative shards", chordal.Spec{Source: "gnm:10:20", EngineConfig: chordal.EngineConfig{Shards: -1}}, "must be >= 0"},
		{"bad variant", chordal.Spec{Source: "gnm:10:20", EngineConfig: chordal.EngineConfig{Variant: "fast"}}, "unknown variant"},
		{"bad schedule", chordal.Spec{Source: "gnm:10:20", EngineConfig: chordal.EngineConfig{Schedule: "eventually"}}, "unknown schedule"},
		{"bad relabel", chordal.Spec{Source: "gnm:10:20", Relabel: "shuffle"}, "unknown relabel"},
		{"bad version", chordal.Spec{V: 2, Source: "gnm:10:20"}, "version"},
		{"verify without engine", chordal.Spec{Source: "gnm:10:20", Engine: "none", Verify: true}, "verify requires"},
		{"negative start", chordal.Spec{Source: "gnm:10:20", Engine: "dearing", EngineConfig: chordal.EngineConfig{Start: -1}}, "must be >= 0"},
		{"start off the dearing engine", chordal.Spec{Source: "gnm:10:20", EngineConfig: chordal.EngineConfig{Start: 3}}, "requires the dearing engine"},
		{"start on the serial engine", chordal.Spec{Source: "gnm:10:20", Engine: "serial", EngineConfig: chordal.EngineConfig{Start: 3}}, "requires the dearing engine"},
		{"unknown order", chordal.Spec{Source: "gnm:10:20", Engine: "elimination", EngineConfig: chordal.EngineConfig{Order: "amd"}}, "unknown order"},
		{"order off the elimination engine", chordal.Spec{Source: "gnm:10:20", EngineConfig: chordal.EngineConfig{Order: "mindeg"}}, "requires the elimination engine"},
		{"bad source", chordal.Spec{Source: "rmat-er"}, "missing scale"},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errWant) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errWant)
		}
	}
}

// noopEngine is a registry test double: it extracts nothing.
type noopEngine struct{}

func (noopEngine) Name() string { return "test-noop" }
func (noopEngine) Extract(_ context.Context, g *chordal.Graph, _ chordal.EngineConfig) (*chordal.EngineResult, error) {
	return &chordal.EngineResult{Subgraph: chordal.BuildFromEdges(g.NumVertices(), nil, nil)}, nil
}

var registerNoop sync.Once

// TestEngineRegistry covers the pluggable seam: the four built-ins are
// registered, duplicates panic, and a custom engine becomes reachable
// through Spec by name alone.
func TestEngineRegistry(t *testing.T) {
	names := chordal.EngineNames()
	for _, want := range []string{"parallel", "serial", "partitioned", "sharded", "dearing", "elimination"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("built-in engine %q not registered (have %v)", want, names)
		}
	}
	if _, ok := chordal.LookupEngine("parallel"); !ok {
		t.Fatal("LookupEngine(parallel) missed")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		chordal.RegisterEngine(parallelDup{})
	}()

	registerNoop.Do(func() { chordal.RegisterEngine(noopEngine{}) })
	res, err := chordal.Spec{Source: "gnm:50:100:1", Engine: "test-noop"}.Run()
	if err != nil {
		t.Fatalf("custom engine run: %v", err)
	}
	if res.Subgraph == nil || res.Subgraph.NumEdges() != 0 {
		t.Errorf("custom engine result %+v, want empty subgraph", res.Subgraph)
	}
	if got := mustCanonical(t, chordal.Spec{Source: "gnm:50:100:1", Engine: "test-noop"}); !strings.Contains(got, "engine=test-noop") {
		t.Errorf("custom engine canonical %q", got)
	}
}

// parallelDup collides with the built-in parallel engine's name.
type parallelDup struct{}

func (parallelDup) Name() string { return "parallel" }
func (parallelDup) Extract(context.Context, *chordal.Graph, chordal.EngineConfig) (*chordal.EngineResult, error) {
	return nil, nil
}

// TestSpecEngineConformanceGrid is the cross-engine conformance grid:
// for a matrix of generated graphs (rmat/synth/biogen families at
// several sizes and seeds), every registered built-in engine must
// produce a verified chordal subgraph that is byte-identical across
// worker counts, under one canonical spec identity that survives a
// JSON round trip. This is the contract the caches and the service
// dedup stand on: one canonical key ⇒ one result, whatever the
// machine's width. Run under -race in CI.
func TestSpecEngineConformanceGrid(t *testing.T) {
	sources := []string{
		// rmat sizes × seeds
		"rmat-er:8:3", "rmat-g:8:7", "rmat-g:9:11", "rmat-b:8:5",
		// synthetic families
		"gnm:400:1600:5", "ws:300:6:0.1:9", "geo:300:0.08:11", "ktree:200:4:13",
		// bio suite shape (downscaled for test time)
		"gse5140-crt:64:3", "gse17072-non:64:7",
	}
	engines := []struct {
		name string
		cfg  chordal.EngineConfig
		// maximal marks engines that guarantee a maximal chordal
		// subgraph (serial growth admits every admissible edge; the
		// parallel family has the DESIGN.md §5 gap and elimination is
		// chordal-only).
		maximal bool
	}{
		{chordal.EngineParallel, chordal.EngineConfig{}, false},
		{chordal.EngineSerial, chordal.EngineConfig{}, true},
		{chordal.EnginePartitioned, chordal.EngineConfig{Partitions: 4}, false},
		{chordal.EngineSharded, chordal.EngineConfig{Shards: 3}, false},
		{chordal.EngineDearing, chordal.EngineConfig{Start: 3}, true},
		{chordal.EngineElimination, chordal.EngineConfig{Order: chordal.OrderMinDegree}, false},
		{chordal.EngineElimination + "-natural", chordal.EngineConfig{Order: chordal.OrderNatural}, false},
	}
	for _, src := range sources {
		for _, eng := range engines {
			src, eng := src, eng
			t.Run(eng.name+"/"+src, func(t *testing.T) {
				t.Parallel()
				name := strings.TrimSuffix(eng.name, "-natural")
				spec := chordal.Spec{Source: src, Engine: name, EngineConfig: eng.cfg, Verify: true}

				// Same spec at two worker widths: the subgraph bytes and
				// the canonical identity must not move.
				one, three := spec, spec
				one.Workers, three.Workers = 1, 3
				if mustCanonical(t, one) != mustCanonical(t, three) {
					t.Fatal("canonical key depends on worker count")
				}
				r1, err := one.Run()
				if err != nil {
					t.Fatalf("workers=1: %v", err)
				}
				r3, err := three.Run()
				if err != nil {
					t.Fatalf("workers=3: %v", err)
				}
				for _, r := range []*chordal.PipelineResult{r1, r3} {
					if !r.ChordalOK {
						t.Fatal("verify failed: subgraph not chordal")
					}
					if r.Subgraph.NumEdges() == 0 {
						t.Fatal("empty extraction")
					}
					if !isSubgraphOf(r.Subgraph, r.Input) {
						t.Fatal("extraction emitted an edge absent from the input")
					}
					if eng.maximal && (!r.MaximalityAudited || r.ReAddableEdges != 0) {
						t.Fatalf("engine %s guarantees maximality but audit found %d re-addable edges (audited=%t)",
							eng.name, r.ReAddableEdges, r.MaximalityAudited)
					}
				}
				if !reflect.DeepEqual(r1.Subgraph.Offsets, r3.Subgraph.Offsets) ||
					!reflect.DeepEqual(r1.Subgraph.Adj, r3.Subgraph.Adj) {
					t.Fatal("subgraph bytes differ across worker counts")
				}

				// The spec's JSON form is the wire format of the service
				// and the manifest format of the CLI: a decoded copy must
				// keep the same identity and reproduce the same bytes.
				blob, err := json.Marshal(one)
				if err != nil {
					t.Fatal(err)
				}
				var wire chordal.Spec
				if err := json.Unmarshal(blob, &wire); err != nil {
					t.Fatal(err)
				}
				if mustCanonical(t, wire) != mustCanonical(t, one) {
					t.Fatal("canonical key drifted across JSON round trip")
				}
				rw, err := wire.Run()
				if err != nil {
					t.Fatalf("wire copy: %v", err)
				}
				if !reflect.DeepEqual(rw.Subgraph.Adj, r1.Subgraph.Adj) {
					t.Fatal("wire copy produced different subgraph bytes")
				}
			})
		}
	}
}

// isSubgraphOf reports whether every edge of sub is an edge of g (the
// graphs share a vertex set).
func isSubgraphOf(sub, g *chordal.Graph) bool {
	for v := 0; v < sub.NumVertices(); v++ {
		for _, w := range sub.Neighbors(int32(v)) {
			if !g.HasEdge(int32(v), w) {
				return false
			}
		}
	}
	return true
}

// TestSpecRunMatchesPipeline pins the adapter: the deprecated Pipeline
// and the Spec it compiles to produce byte-identical subgraphs.
func TestSpecRunMatchesPipeline(t *testing.T) {
	p := chordal.Pipeline{
		Source:  "rmat-g:9:5",
		Relabel: chordal.RelabelBFS,
		Extract: true,
		Options: chordal.Options{RepairMaximality: true},
		Verify:  true,
	}
	want, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	s, err := p.Spec()
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Subgraph.Offsets, want.Subgraph.Offsets) ||
		!reflect.DeepEqual(got.Subgraph.Adj, want.Subgraph.Adj) {
		t.Error("Spec.Run subgraph differs from Pipeline.Run")
	}
	if !got.ChordalOK || got.ReAddableEdges != want.ReAddableEdges {
		t.Errorf("verify outcome differs: %+v vs %+v", got, want)
	}
}

// TestPipelineConflictErrors pins that the adapter inherits validation:
// the mode combinations that used to resolve by silent precedence now
// fail loudly.
func TestPipelineConflictErrors(t *testing.T) {
	for _, p := range []chordal.Pipeline{
		{Source: "gnm:100:300", Serial: true, Shards: 4},
		{Source: "gnm:100:300", Serial: true, Partitions: 2},
		{Source: "gnm:100:300", Partitions: 2, Shards: 4},
	} {
		if _, err := p.Run(); err == nil || !strings.Contains(err.Error(), "conflict") {
			t.Errorf("Pipeline %+v: err %v, want engine conflict", p, err)
		}
	}
}

// TestObserverEventStream checks the unified stream end to end: stage
// begin/end pairs with timing, iteration events carrying stats, and the
// verify outcome, all through one Observer.
func TestObserverEventStream(t *testing.T) {
	var mu sync.Mutex
	byType := map[chordal.EventType]int{}
	var stages []string
	var verifyEv *chordal.Event
	obs := func(ev chordal.Event) {
		mu.Lock()
		defer mu.Unlock()
		byType[ev.Type]++
		if ev.Type == chordal.EventStageBegin {
			stages = append(stages, ev.Stage)
		}
		if ev.Type == chordal.EventVerify {
			e := ev
			verifyEv = &e
		}
		if ev.Type == chordal.EventIteration {
			if ev.IterationEvent == nil || ev.Stats == nil {
				t.Error("iteration event without stats")
			} else if ev.Index != ev.Stats.Index {
				t.Errorf("wire index %d != stats index %d", ev.Index, ev.Stats.Index)
			}
		}
	}
	res, err := chordal.Runner{Observer: obs}.Run(context.Background(), chordal.Spec{
		Source:       "rmat-g:9:5",
		EngineConfig: chordal.EngineConfig{Shards: 2},
		Verify:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.ChordalOK {
		t.Fatal("run not chordal")
	}
	wantStages := []string{"acquire", "extract", "verify"}
	if !reflect.DeepEqual(stages, wantStages) {
		t.Errorf("stage begins %v, want %v", stages, wantStages)
	}
	if byType[chordal.EventStageEnd] != len(wantStages) {
		t.Errorf("%d stage-end events, want %d", byType[chordal.EventStageEnd], len(wantStages))
	}
	if byType[chordal.EventIteration] < 2 {
		t.Errorf("%d iteration events, want >= 2 (one per shard at minimum)", byType[chordal.EventIteration])
	}
	if verifyEv == nil || verifyEv.Chordal == nil || !*verifyEv.Chordal {
		t.Errorf("verify event %+v, want chordal=true", verifyEv)
	}

	// Iteration events from the sharded engine carry their shard index
	// and marshal it on the wire.
	blob, err := json.Marshal(chordal.Event{})
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != `{"type":""}` {
		t.Errorf("zero event marshals as %s; optional fields must be omitted", blob)
	}
}
