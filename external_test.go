package chordal_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"chordal"
)

// This file is the acceptance suite of the out-of-core external engine
// and its satellites: the differential byte-identity grid against the
// in-memory sharded engine, the no-acquire source path, the canonical
// key pins for the new spec surface, and the bounded deferred queue.

// externalGridSources is the zoo of the byte-identity grid — the same
// eight structural families the engine bake-off uses.
var externalGridSources = []string{
	"rmat-er:8:3", "rmat-g:9:11", "rmat-b:8:5",
	"gnm:400:1600:5", "ws:300:6:0.1:9", "geo:300:0.08:11", "ktree:200:4:13",
	"gse5140-crt:64:3",
}

// TestEngineExternalDifferentialGrid is the tentpole's acceptance
// proof, library-level half: on every zoo source and shard count, the
// external engine's subgraph is byte-identical to the sharded engine's
// at equal partitions, both verify chordal, and the parallel engine on
// the same input verifies chordal too (the cross-engine sanity leg).
// Runs under -race in CI.
func TestEngineExternalDifferentialGrid(t *testing.T) {
	for _, src := range externalGridSources {
		src := src
		t.Run(src, func(t *testing.T) {
			t.Parallel()
			acq, err := chordal.Spec{Source: src, Engine: chordal.EngineNone}.Run()
			if err != nil {
				t.Fatal(err)
			}
			g := acq.Input

			par, err := chordal.Runner{Input: g}.Run(context.Background(),
				chordal.Spec{Engine: chordal.EngineParallel, Verify: true})
			if err != nil {
				t.Fatal(err)
			}
			if !par.ChordalOK {
				t.Fatal("parallel subgraph failed verification")
			}

			for _, shards := range []int{1, 2, 3, 5} {
				for _, resident := range []int{0, 1, 3} {
					ext, err := chordal.Runner{Input: g}.Run(context.Background(), chordal.Spec{
						Engine:       chordal.EngineExternal,
						EngineConfig: chordal.EngineConfig{Shards: shards, ResidentShards: resident},
						Verify:       true,
					})
					if err != nil {
						t.Fatalf("external shards=%d resident=%d: %v", shards, resident, err)
					}
					shd, err := chordal.Runner{Input: g}.Run(context.Background(), chordal.Spec{
						Engine:       chordal.EngineSharded,
						EngineConfig: chordal.EngineConfig{Shards: shards},
						Verify:       true,
					})
					if err != nil {
						t.Fatalf("sharded shards=%d: %v", shards, err)
					}
					if !ext.ChordalOK || !shd.ChordalOK {
						t.Fatalf("shards=%d: verification failed (external=%t sharded=%t)",
							shards, ext.ChordalOK, shd.ChordalOK)
					}
					if !sameGraph(ext.Subgraph, shd.Subgraph) {
						t.Fatalf("shards=%d resident=%d: external subgraph differs from sharded (%d vs %d edges)",
							shards, resident, ext.Subgraph.NumEdges(), shd.Subgraph.NumEdges())
					}
					if ext.External == nil {
						t.Fatal("external run missing ExternalSummary")
					}
					if ext.Shard == nil || ext.Shard.EdgeCut != shd.Shard.EdgeCut {
						t.Fatalf("shards=%d: edge cut mismatch external=%v sharded=%v", shards, ext.Shard, shd.Shard)
					}
					if shards > 1 && ext.Shard.EdgeCut == 0 {
						t.Fatalf("shards=%d: edge cut 0 on a multi-shard run", shards)
					}
				}
			}
		})
	}
}

// TestEngineExternalSourcePath exercises the true out-of-core path: a
// .bin file source with the external engine skips the acquire stage
// (Input stays nil, the file is never loaded whole), fills InputStats
// from the file, and still produces the sharded engine's exact edges.
func TestEngineExternalSourcePath(t *testing.T) {
	const src = "gnm:2000:9000:17"
	bin := filepath.Join(t.TempDir(), "input.bin")
	acq, err := chordal.Spec{Source: src, Engine: chordal.EngineNone, Output: bin}.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := acq.Input

	res, err := chordal.Spec{
		Source:       bin,
		Engine:       chordal.EngineExternal,
		EngineConfig: chordal.EngineConfig{Shards: 4},
		Verify:       true,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Input != nil {
		t.Fatal("out-of-core run materialized the input graph")
	}
	if res.InputStats != chordal.ComputeStats(g) {
		t.Fatalf("InputStats %+v differ from the in-memory stats %+v", res.InputStats, chordal.ComputeStats(g))
	}
	if res.External == nil || !res.ChordalOK || res.Shard == nil || !res.Shard.Chordal {
		t.Fatalf("out-of-core run incomplete: external=%v chordalOK=%t", res.External, res.ChordalOK)
	}
	if res.External.BytesRead == 0 || res.External.PeakResidentBytes <= 0 {
		t.Fatalf("IO stats not accounted: %+v", res.External)
	}

	shd, err := chordal.Runner{Input: g}.Run(context.Background(), chordal.Spec{
		Engine:       chordal.EngineSharded,
		EngineConfig: chordal.EngineConfig{Shards: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(res.Subgraph, shd.Subgraph) {
		t.Fatalf("out-of-core subgraph differs from sharded (%d vs %d edges)",
			res.Subgraph.NumEdges(), shd.Subgraph.NumEdges())
	}

	// The run's report must carry the IO summary and the file-derived
	// input stats.
	rep, err := chordal.Report(chordal.Spec{
		Source:       bin,
		Engine:       chordal.EngineExternal,
		EngineConfig: chordal.EngineConfig{Shards: 4},
		Verify:       true,
	}, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Extraction == nil || rep.Extraction.External == nil || rep.Input.Edges != g.NumEdges() {
		t.Fatalf("report missing external summary or input stats: %+v", rep.Extraction)
	}
}

// TestEngineExternalSpecSurface pins the new spec surface: the
// canonical key of external specs (fixed tokens only — ResidentShards
// must not split identities), the stream-scoped maxdeferred token, and
// the validation rules.
func TestEngineExternalSpecSurface(t *testing.T) {
	want := "v1 engine=external relabel=none variant=auto schedule=dataflow repair=false stitch=false partitions=0 shards=4 stitchonly=false verify=true src=gnm:400:1600:5"
	got := mustCanonical(t, chordal.Spec{
		Source:       "gnm:400:1600:5",
		Engine:       chordal.EngineExternal,
		EngineConfig: chordal.EngineConfig{Shards: 4},
		Verify:       true,
	})
	if got != want {
		t.Errorf("external canonical:\n got %q\nwant %q", got, want)
	}
	// ResidentShards is a residency knob, not identity.
	withResident := mustCanonical(t, chordal.Spec{
		Source:       "gnm:400:1600:5",
		Engine:       chordal.EngineExternal,
		EngineConfig: chordal.EngineConfig{Shards: 4, ResidentShards: 7},
		Verify:       true,
	})
	if withResident != got {
		t.Errorf("residentShards split the canonical key: %q vs %q", withResident, got)
	}
	// MaxDeferred is identity — but only in stream mode.
	streamKey := mustCanonical(t, chordal.Spec{
		Mode:         chordal.ModeStream,
		Engine:       chordal.EngineParallel,
		EngineConfig: chordal.EngineConfig{MaxDeferred: 64},
	})
	if !strings.Contains(streamKey, " mode=stream maxdeferred=64 ") {
		t.Errorf("stream canonical missing maxdeferred token: %q", streamKey)
	}
	unbounded := mustCanonical(t, chordal.Spec{Mode: chordal.ModeStream, Engine: chordal.EngineParallel})
	if strings.Contains(unbounded, "maxdeferred") {
		t.Errorf("unbounded stream key grew a maxdeferred token: %q", unbounded)
	}

	for name, bad := range map[string]chordal.Spec{
		"external needs shards": {Source: "gnm:100:300:1", Engine: chordal.EngineExternal},
		"external vs relabel": {Source: "gnm:100:300:1", Relabel: "bfs",
			Engine: chordal.EngineExternal, EngineConfig: chordal.EngineConfig{Shards: 2}},
		"shards vs parallel engine": {Source: "gnm:100:300:1", Engine: chordal.EngineParallel,
			EngineConfig: chordal.EngineConfig{Shards: 2}},
		"maxDeferred outside stream": {Source: "gnm:100:300:1",
			EngineConfig: chordal.EngineConfig{MaxDeferred: 8}},
		"negative maxDeferred": {Mode: chordal.ModeStream, Engine: chordal.EngineParallel,
			EngineConfig: chordal.EngineConfig{MaxDeferred: -1}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: invalid spec validated", name)
		}
	}

	// external in stream mode: no StreamEngine implementation.
	streamExt := chordal.Spec{Mode: chordal.ModeStream, Engine: chordal.EngineExternal,
		EngineConfig: chordal.EngineConfig{Shards: 2}}
	if err := streamExt.Validate(); err == nil {
		t.Error("external stream spec validated")
	}
}

// TestStreamMaxDeferredBoundedHostile is the satellite regression: a
// hostile stream of all-distinct inadmissible edges (the closing edge
// of disjoint 4-cycles — connected endpoints with no common neighbor)
// must not grow the deferred queue past the bound; the excess is
// dropped with overflow events and memory stays flat. Runs under -race
// in CI via the TestStream pattern.
func TestStreamMaxDeferredBoundedHostile(t *testing.T) {
	const bound, cycles = 8, 200
	s, err := chordal.OpenStream(context.Background(), chordal.Spec{
		Mode:         chordal.ModeStream,
		Engine:       chordal.EngineParallel,
		EngineConfig: chordal.EngineConfig{MaxDeferred: bound},
	}, chordal.StreamConfig{Vertices: 4 * cycles})
	if err != nil {
		t.Fatal(err)
	}
	overflow := 0
	for k := int32(0); k < cycles; k++ {
		a, b, c, d := 4*k, 4*k+1, 4*k+2, 4*k+3
		for _, e := range [][2]int32{{a, b}, {b, c}, {c, d}} {
			if _, err := s.Push(context.Background(), e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		delta, err := s.Push(context.Background(), d, a)
		if err != nil {
			t.Fatal(err)
		}
		if delta.Accepted {
			t.Fatalf("cycle %d: closing edge accepted", k)
		}
		switch delta.Reason {
		case string(chordal.AdmitDeferred):
		case string(chordal.AdmitOverflow):
			overflow++
		default:
			t.Fatalf("cycle %d: unexpected reason %q", k, delta.Reason)
		}
		if st := s.Stats(); st.Deferred > bound {
			t.Fatalf("cycle %d: deferred queue %d exceeds bound %d", k, st.Deferred, bound)
		}
	}
	st := s.Stats()
	if st.Deferred != bound || st.Overflowed != cycles-bound || overflow != cycles-bound {
		t.Fatalf("stats %+v, want deferred=%d overflowed=%d (saw %d overflow deltas)",
			st, bound, cycles-bound, overflow)
	}
	if _, err := s.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
