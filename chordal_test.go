package chordal_test

import (
	"path/filepath"
	"testing"

	"chordal"
)

func TestQuickstartFlow(t *testing.T) {
	// The README's quickstart must work exactly as written.
	g, err := chordal.GenerateRMAT(chordal.RMATER, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chordal.Extract(g, chordal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChordalEdges() == 0 || len(res.Iterations) == 0 {
		t.Fatal("empty extraction")
	}
	sub := res.ToGraph()
	if !chordal.IsChordal(sub) {
		t.Fatal("not chordal")
	}
}

func TestBuilderFacade(t *testing.T) {
	b := chordal.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	res, err := chordal.Extract(g, chordal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChordalEdges() != 3 {
		t.Fatalf("C4 kept %d edges", res.NumChordalEdges())
	}
	g2 := chordal.BuildFromEdges(3, []int32{0, 1}, []int32{1, 2})
	if g2.NumEdges() != 2 {
		t.Fatal("BuildFromEdges wrong")
	}
}

func TestSerialFacade(t *testing.T) {
	g, _ := chordal.GenerateRMAT(chordal.RMATG, 9, 3)
	sub := chordal.ExtractSerial(g)
	if !chordal.IsChordal(sub) {
		t.Fatal("serial result not chordal")
	}
	if !chordal.IsMaximalChordal(g, sub) {
		t.Fatal("serial result not maximal")
	}
}

func TestBioFacade(t *testing.T) {
	g, err := chordal.GenerateBio(chordal.GSE17072NON, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := chordal.Extract(g, chordal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !chordal.IsChordal(res.ToGraph()) {
		t.Fatal("bio extraction not chordal")
	}
}

func TestChordalAlgorithmsFacade(t *testing.T) {
	g, _ := chordal.GenerateRMAT(chordal.RMATB, 9, 4)
	res, _ := chordal.Extract(g, chordal.Options{})
	sub := res.ToGraph()

	peo, err := chordal.PerfectEliminationOrdering(sub)
	if err != nil {
		t.Fatal(err)
	}
	if len(peo) != sub.NumVertices() {
		t.Fatal("PEO length")
	}
	clique, err := chordal.MaxClique(sub)
	if err != nil {
		t.Fatal(err)
	}
	colors, k, err := chordal.Coloring(sub)
	if err != nil {
		t.Fatal(err)
	}
	if k != len(clique) {
		t.Fatalf("chromatic %d != clique %d", k, len(clique))
	}
	sub.Edges(func(u, v int32) {
		if colors[u] == colors[v] {
			t.Fatal("improper coloring")
		}
	})
	td, err := chordal.Decompose(sub)
	if err != nil {
		t.Fatal(err)
	}
	if td.Width != len(clique)-1 {
		t.Fatalf("width %d != clique-1", td.Width)
	}
	// Non-chordal input is rejected.
	if _, err := chordal.MaxClique(g); err == nil {
		t.Fatal("MaxClique accepted a non-chordal graph")
	}
}

func TestBFSRelabelConnectivity(t *testing.T) {
	// The remark below Theorem 2: BFS numbering of a connected graph
	// makes the extracted subgraph connected.
	g, _ := chordal.GenerateRMAT(chordal.RMATER, 10, 6)
	// Take the largest connected piece by relabeling and testing on the
	// BFS-relabeled graph directly: extract and check the component
	// containing vertex 0 spans all vertices reachable in g.
	rg := chordal.BFSRelabel(g, 0)
	res, err := chordal.Extract(rg, chordal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := res.ToGraph()
	// Every vertex reachable from 0 in rg must be reachable in sub.
	reachG := reach(rg, 0)
	reachS := reach(sub, 0)
	for v, inG := range reachG {
		if inG && !reachS[v] {
			t.Fatalf("vertex %d connected in input, disconnected in BFS-relabeled extraction", v)
		}
	}
}

func reach(g *chordal.Graph, src int32) []bool {
	seen := make([]bool, g.NumVertices())
	stack := []int32{src}
	seen[src] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return seen
}

func TestSaveLoadFacade(t *testing.T) {
	g, _ := chordal.GenerateRMAT(chordal.RMATER, 8, 7)
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := chordal.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := chordal.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() || back.NumVertices() != g.NumVertices() {
		t.Fatal("round trip lost data")
	}
}

func TestAnalysisFacade(t *testing.T) {
	g, _ := chordal.GenerateBio(chordal.GSE5140UNT, 64, 8)
	if pts := chordal.ClusteringByDegree(g); len(pts) == 0 {
		t.Fatal("no clustering points")
	}
	if h := chordal.ShortestPathHistogram(g, 64); len(h) < 2 {
		t.Fatal("degenerate path histogram")
	}
	s := chordal.ComputeStats(g)
	if s.Vertices != g.NumVertices() {
		t.Fatal("stats mismatch")
	}
}

func TestExtendedFacade(t *testing.T) {
	// k-tree ground truth through the facade.
	kt := chordal.GenerateKTree(60, 2, 5)
	if !chordal.IsChordal(kt) {
		t.Fatal("k-tree not chordal")
	}
	if hole := chordal.FindHole(kt); hole != nil {
		t.Fatalf("hole %v in chordal graph", hole)
	}
	mis, err := chordal.MaximumIndependentSet(kt)
	if err != nil {
		t.Fatal(err)
	}
	cover, num, err := chordal.CliqueCover(kt)
	if err != nil {
		t.Fatal(err)
	}
	if len(mis) != num || len(cover) != num {
		t.Fatalf("perfection violated: alpha %d, cover %d", len(mis), num)
	}

	// Non-chordal witness.
	b := chordal.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	c4 := b.Build()
	if hole := chordal.FindHole(c4); len(hole) != 4 {
		t.Fatalf("C4 witness %v", hole)
	}

	// Elimination orderings.
	g := chordal.GenerateGNM(120, 480, 9)
	order, err := chordal.ChordalGuidedOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	fill, err := chordal.Fill(g, order)
	if err != nil {
		t.Fatal(err)
	}
	md := chordal.MinDegreeOrder(g)
	mdFill, err := chordal.Fill(g, md)
	if err != nil {
		t.Fatal(err)
	}
	if fill < 0 || mdFill < 0 {
		t.Fatal("negative fill")
	}

	// Degree relabel keeps structure.
	dr := chordal.DegreeRelabel(g)
	if dr.NumEdges() != g.NumEdges() {
		t.Fatal("DegreeRelabel changed edge count")
	}

	// Other generators produce valid graphs.
	ws := chordal.GenerateWattsStrogatz(100, 3, 0.2, 4)
	geo := chordal.GenerateGeometric(200, 0.1, 4)
	for _, gg := range []*chordal.Graph{ws, geo} {
		res, err := chordal.Extract(gg, chordal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !chordal.IsChordal(res.ToGraph()) {
			t.Fatal("extraction not chordal")
		}
	}
}
