// Package chordal extracts maximal chordal subgraphs from large
// undirected graphs with a fine-grained multithreaded algorithm, a Go
// reproduction of "A Novel Multithreaded Algorithm for Extracting
// Maximal Chordal Subgraphs" (Halappanavar, Feo, Dempsey, Ali,
// Bhowmick; ICPP 2012).
//
// A chordal graph contains no induced cycle longer than a triangle.
// Many problems that are NP-hard in general — maximum clique, chromatic
// number, treewidth — are linear-time on chordal graphs, so extracting
// a large chordal subgraph is a practical preprocessing and sampling
// step; see the Cliques, Coloring and Decompose helpers.
//
// # Quick start
//
//	g, _ := chordal.GenerateRMAT(chordal.RMATER, 14, 42)
//	res, _ := chordal.Extract(g, chordal.Options{})
//	fmt.Println(res.NumChordalEdges(), "chordal edges in",
//		len(res.Iterations), "iterations")
//	sub := res.ToGraph()
//	fmt.Println("chordal:", chordal.IsChordal(sub))
//
// The package is a thin, documented facade over the internal packages;
// everything needed for extraction, generation, verification and the
// downstream chordal-graph algorithms is re-exported here.
//
// For whole runs (acquire → relabel → extract → verify → write), build
// a declarative Spec: it is versioned, JSON-round-trippable, selects
// its extraction Engine by registry name, exposes one canonical cache
// identity (Spec.Canonical), and reports progress through the unified
// Event stream. The CLI tools and the HTTP extraction service execute
// the same Spec type, so identical parameters share one identity —
// and one cache entry — across all three surfaces.
package chordal

import (
	"context"

	"chordal/internal/analysis"
	"chordal/internal/biogen"
	"chordal/internal/chordalalg"
	"chordal/internal/core"
	"chordal/internal/dearing"
	"chordal/internal/elimination"
	"chordal/internal/graph"
	"chordal/internal/quality"
	"chordal/internal/rmat"
	"chordal/internal/shard"
	"chordal/internal/synth"
	"chordal/internal/verify"
)

// Graph is an immutable undirected graph in compressed sparse row form.
type Graph = graph.Graph

// Builder accumulates edges for Graph construction.
type Builder = graph.Builder

// Stats holds the Table-I structural statistics of a graph.
type Stats = graph.Stats

// Options configures Extract; the zero value uses automatic variant
// selection and GOMAXPROCS workers.
type Options = core.Options

// Result is the outcome of a parallel extraction, including the chordal
// edge set and per-iteration instrumentation.
type Result = core.Result

// Edge is an undirected chordal edge with U < V.
type Edge = core.Edge

// IterationStats describes one iteration of the extraction loop.
type IterationStats = core.IterationStats

// Variant selects the paper's optimized or unoptimized code path.
type Variant = core.Variant

// Extraction variants; see the core package for semantics.
const (
	VariantAuto        = core.VariantAuto
	VariantOptimized   = core.VariantOptimized
	VariantUnoptimized = core.VariantUnoptimized
)

// Schedule selects how subset tests are ordered relative to the growth
// of the chordal sets they read; see the core package for semantics.
type Schedule = core.Schedule

// Extraction schedules; see the core package for semantics.
const (
	ScheduleDataflow    = core.ScheduleDataflow
	ScheduleAsync       = core.ScheduleAsync
	ScheduleSynchronous = core.ScheduleSynchronous
)

// RMATPreset selects one of the paper's three R-MAT parameterizations.
type RMATPreset = rmat.Preset

// The paper's synthetic graph families.
const (
	RMATER = rmat.ER // uniform: Erdős–Rényi-like
	RMATG  = rmat.G  // skewed: small-world with communities
	RMATB  = rmat.B  // heavily skewed: widest degree distribution
)

// BioDataset names the four gene-correlation networks modeled after the
// paper's GEO inputs.
type BioDataset = biogen.Dataset

// The paper's biological network suite.
const (
	GSE5140CRT  = biogen.GSE5140CRT
	GSE5140UNT  = biogen.GSE5140UNT
	GSE17072CTL = biogen.GSE17072CTL
	GSE17072NON = biogen.GSE17072NON
)

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// BuildFromEdges constructs a simple undirected graph from endpoint
// slices, dropping self loops and duplicates.
func BuildFromEdges(n int, us, vs []int32) *Graph {
	return graph.BuildFromEdges(n, us, vs)
}

// Extract runs the multithreaded maximal-chordal-subgraph algorithm on
// g with the given options.
func Extract(g *Graph, opts Options) (*Result, error) {
	return core.Extract(g, opts)
}

// ExtractContext is Extract under a cancellable context: cancellation
// is observed at iteration boundaries and returns ctx.Err() with no
// leaked worker goroutines.
func ExtractContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	return core.ExtractContext(ctx, g, opts)
}

// ExtractSerial runs the serial baseline of Dearing, Shier and Warner
// starting from vertex 0 and returns the resulting chordal subgraph.
func ExtractSerial(g *Graph) *Graph {
	return dearing.Extract(g, 0).ToGraph(g.NumVertices())
}

// ShardOptions configures ExtractSharded; see the shard package for
// field semantics. The zero value with Shards set is ready to use.
type ShardOptions = shard.Options

// ShardResult is the merged outcome of a sharded extraction, including
// per-shard statistics and border reconciliation counts.
type ShardResult = shard.Result

// ShardStat describes one shard's extraction within a ShardResult.
type ShardStat = shard.ShardStat

// ExtractSharded runs Algorithm 1 independently on contiguous
// vertex-range shards of g and reconciles the per-shard chordal
// subgraphs with a chordality-preserving border stitch — the
// out-of-core-shaped alternative to Extract for graphs whose full
// worklist state should never be resident at once. See DESIGN.md §7.
func ExtractSharded(g *Graph, opts ShardOptions) (*ShardResult, error) {
	return shard.Extract(g, opts)
}

// ExtractShardedContext is ExtractSharded under a cancellable context.
func ExtractShardedContext(ctx context.Context, g *Graph, opts ShardOptions) (*ShardResult, error) {
	return shard.ExtractContext(ctx, g, opts)
}

// GenerateRMAT generates one of the paper's synthetic graph families at
// the given scale (2^scale vertices, 8·2^scale requested edges).
func GenerateRMAT(preset RMATPreset, scale int, seed uint64) (*Graph, error) {
	return rmat.Generate(rmat.PresetParams(preset, scale, seed))
}

// GenerateBio generates a synthetic gene-correlation network modeled
// after one of the paper's GEO datasets. downscale divides the gene
// count (1 reproduces the paper's network sizes).
func GenerateBio(dataset BioDataset, downscale int, seed uint64) (*Graph, error) {
	return biogen.Generate(biogen.PresetParams(dataset, downscale, seed))
}

// IsChordal reports whether g is a chordal graph (via maximum
// cardinality search, O(V+E)).
func IsChordal(g *Graph) bool { return verify.IsChordal(g) }

// IsMaximalChordal reports whether sub is chordal and cannot absorb any
// further edge of g without breaking chordality. Cost grows with the
// number of absent edges; intended for validation, not hot paths.
func IsMaximalChordal(g, sub *Graph) bool { return verify.IsMaximalChordal(g, sub) }

// PerfectEliminationOrdering returns a PEO of the chordal graph g, or
// an error if g is not chordal.
func PerfectEliminationOrdering(g *Graph) ([]int32, error) { return chordalalg.PEO(g) }

// MaxClique returns a maximum clique of the chordal graph g — the
// NP-hard-on-general-graphs problem that motivates chordal extraction.
func MaxClique(g *Graph) ([]int32, error) { return chordalalg.MaxClique(g) }

// Coloring optimally colors the chordal graph g, returning per-vertex
// colors and the chromatic number.
func Coloring(g *Graph) ([]int32, int, error) { return chordalalg.Coloring(g) }

// Decompose returns a tree decomposition of the chordal graph g.
func Decompose(g *Graph) (*chordalalg.TreeDecomposition, error) { return chordalalg.Decompose(g) }

// TreeDecomposition is a clique-tree decomposition of a chordal graph.
type TreeDecomposition = chordalalg.TreeDecomposition

// ComputeStats returns the Table-I structural statistics of g.
func ComputeStats(g *Graph) Stats { return graph.ComputeStats(g) }

// ClusteringByDegree returns the Figure-2 series: average clustering
// coefficient per vertex degree.
func ClusteringByDegree(g *Graph) []analysis.DegreeClusteringPoint {
	return analysis.ClusteringByDegree(g)
}

// DegreeClusteringPoint is one degree bucket of ClusteringByDegree.
type DegreeClusteringPoint = analysis.DegreeClusteringPoint

// ShortestPathHistogram returns the Figure-3 series: ordered-pair
// counts per shortest-path length; sources=0 runs every BFS root.
func ShortestPathHistogram(g *Graph, sources int) []int64 {
	return analysis.ShortestPathHistogram(g, sources)
}

// BFSRelabel renumbers g in breadth-first order from root. Running
// Extract on the relabeled graph of a connected input yields a
// connected chordal subgraph (remark below the paper's Theorem 2).
func BFSRelabel(g *Graph, root int32) *Graph {
	return g.Relabel(analysis.BFSOrder(g, root))
}

// LoadGraph reads a graph from a file; the format follows the
// extension (.bin binary CSR, .mtx Matrix Market, otherwise edge list).
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph to a file; format selection as in LoadGraph.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// MaximumIndependentSet returns a maximum independent set of the
// chordal graph g (linear-time by the PEO greedy).
func MaximumIndependentSet(g *Graph) ([]int32, error) {
	return chordalalg.MaximumIndependentSet(g)
}

// CliqueCover partitions the chordal graph g into the minimum number
// of cliques.
func CliqueCover(g *Graph) ([][]int32, int, error) { return chordalalg.CliqueCover(g) }

// FindHole returns a chordless cycle of length >= 4 witnessing that g
// is not chordal, or nil when g is chordal.
func FindHole(g *Graph) []int32 {
	return verify.FindHole(verify.AdjFromGraph(g))
}

// DegreeRelabel renumbers g so the highest-degree vertices receive the
// smallest ids — a maximality heuristic for Extract on graphs whose
// hubs carry large ids (see DESIGN.md §5).
func DegreeRelabel(g *Graph) *Graph {
	return g.Relabel(analysis.DegreeOrder(g))
}

// GenerateGNM returns a uniform random simple graph with n vertices
// and m edges, part of the broader input set the paper's conclusion
// proposes.
func GenerateGNM(n int, m int64, seed uint64) *Graph { return synth.GNM(n, m, seed) }

// GenerateWattsStrogatz returns a small-world graph (ring lattice with
// 2k neighbors per vertex, rewiring probability beta).
func GenerateWattsStrogatz(n, k int, beta float64, seed uint64) *Graph {
	return synth.WattsStrogatz(n, k, beta, seed)
}

// GenerateGeometric returns a random geometric (mesh-like) graph with
// the given connection radius in the unit square.
func GenerateGeometric(n int, radius float64, seed uint64) *Graph {
	return synth.RandomGeometric(n, radius, seed)
}

// GenerateKTree returns a k-tree on n vertices — a maximal chordal
// graph of treewidth k, useful as ground truth for extraction quality.
func GenerateKTree(n, k int, seed uint64) *Graph { return synth.KTree(n, k, seed) }

// Quality scores an extracted chordal subgraph against its input:
// edge retention, fill-in under the subgraph's perfect elimination
// ordering, and the exact chordal-graph invariants (treewidth,
// chromatic number). Populated on PipelineResult.Quality and
// RunReport.Quality; compute directly with ComputeQuality.
type Quality = quality.Metrics

// QualityLimits bounds the expensive metric groups of ComputeQuality.
type QualityLimits = quality.Limits

// DefaultQualityLimits returns the bounds the Runner applies to its
// always-on quality reporting.
func DefaultQualityLimits() QualityLimits { return quality.DefaultLimits() }

// ComputeQuality scores the chordal subgraph sub against its input
// graph g. sub must be chordal and share g's vertex set.
func ComputeQuality(g, sub *Graph, lim QualityLimits) (*Quality, error) {
	return quality.Compute(g, sub, lim)
}

// Fill counts the fill edges symbolic elimination creates on g under
// the given ordering; zero exactly when the ordering is a perfect
// elimination ordering of a chordal graph.
func Fill(g *Graph, order []int32) (int64, error) { return elimination.Fill(g, order) }

// MinDegreeOrder returns the greedy minimum-degree fill-reducing
// ordering of g.
func MinDegreeOrder(g *Graph) []int32 { return elimination.MinDegreeOrder(g) }

// ChordalGuidedOrder returns an elimination ordering of g that is a
// perfect elimination ordering of an extracted maximal chordal
// subgraph, confining all fill to the non-chordal remainder.
func ChordalGuidedOrder(g *Graph) ([]int32, error) {
	return elimination.ChordalGuidedOrder(g, core.Options{})
}
