package chordal

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"chordal/internal/core"
	"chordal/internal/dearing"
	"chordal/internal/elimination"
	"chordal/internal/parallel"
	"chordal/internal/partition"
	"chordal/internal/shard"
	"chordal/internal/tune"
)

// This file defines the pluggable extraction-engine seam. An Engine
// turns an acquired graph into a chordal subgraph; the registry maps
// the Spec's declarative engine name to an implementation, so new
// extraction strategies (out-of-core streaming shards, batched
// multi-graph, remote backends) plug in here once and become reachable
// from the library, the CLI, and the service without touching any of
// them. The four built-in engines model the paper's algorithm variants:
// Algorithm 1 whole-graph (parallel), the serial Dearing–Shier–Warner
// baseline, the distributed-style partitioned baseline, and sharded
// extraction with chordality-preserving border reconciliation.

// Names of the built-in engines, plus the "none" pseudo-engine that
// disables the extraction stage (acquire/relabel/write-only runs).
const (
	// EngineParallel runs the paper's multithreaded Algorithm 1 on the
	// whole graph (the default engine).
	EngineParallel = "parallel"
	// EngineSerial runs the serial Dearing-Shier-Warner baseline.
	EngineSerial = "serial"
	// EnginePartitioned runs the distributed-style partitioned baseline
	// plus cycle cleanup; requires Partitions >= 1.
	EnginePartitioned = "partitioned"
	// EngineSharded runs Algorithm 1 per contiguous vertex-range shard
	// and reconciles border edges chordality-preserving (DESIGN.md §7);
	// requires Shards >= 1.
	EngineSharded = "sharded"
	// EngineDearing runs the serial Dearing-Shier-Warner incremental
	// extractor from an explicit start vertex (EngineConfig.Start);
	// unlike EngineSerial it exposes the start vertex as part of the
	// run's identity and records it in the report.
	EngineDearing = "dearing"
	// EngineElimination builds the chordal subgraph induced by a
	// fill-reducing elimination order (EngineConfig.Order selects the
	// natural or greedy minimum-degree ordering). The result is chordal
	// by construction but not necessarily maximal.
	EngineElimination = "elimination"
	// EngineExternal runs the out-of-core disk-shard driver
	// (internal/extio): the input's binary CSR is mmap'd and decoded per
	// vertex-range shard on demand, at most ResidentShards shards are
	// held in memory, and per-shard edges spill to a temp file before the
	// border reconciliation. Byte-identical to EngineSharded at equal
	// shard counts; requires Shards >= 1. With a .bin file source the
	// Runner skips the acquire stage entirely (see SourceEngine); other
	// inputs are spilled to a temp .bin first.
	EngineExternal = "external"
	// EngineNone is not a registered Engine: it marks a Spec that stops
	// after acquire/relabel (and optional write), extracting nothing.
	EngineNone = "none"
)

// Elimination-order names accepted by EngineConfig.Order for the
// elimination engine.
const (
	// OrderNatural eliminates vertices in identity order 0..n-1.
	OrderNatural = "natural"
	// OrderMinDegree eliminates by the classic greedy minimum-degree
	// heuristic (the default for the elimination engine).
	OrderMinDegree = "mindeg"
)

// EngineResult is the outcome of one Engine.Extract call. Subgraph is
// always set; the summary fields are populated per engine.
type EngineResult struct {
	// Subgraph is the extracted chordal subgraph.
	Subgraph *Graph
	// Extraction is the parallel kernel's full result (edge set and
	// per-iteration instrumentation); nil for other engines.
	Extraction *Result
	// SerialDuration is the serial baseline's extraction time.
	SerialDuration time.Duration
	// Partition summarizes the partitioned baseline, when used.
	Partition *PartitionSummary
	// Shard summarizes the sharded extraction, when used.
	Shard *ShardSummary
	// Dearing summarizes the dearing engine run, when used.
	Dearing *DearingSummary
	// Elimination summarizes the elimination engine run, when used.
	Elimination *EliminationSummary
	// External summarizes the out-of-core engine's IO behavior, when
	// used (alongside Shard, which carries the reconciliation counters).
	External *ExternalSummary
	// Tuning is the resolved kernel tuning of the run; nil for engines
	// that do not use the tunable kernels (serial, partitioned).
	Tuning *Tuning
	// InputStats, when non-nil, carries the input's Table-I statistics
	// computed by a SourceEngine from the file itself — the substitute
	// for ComputeStats when no input graph is ever resident.
	InputStats *Stats
}

// Engine is one extraction strategy. Implementations must be safe for
// concurrent use: one Engine value serves every run that names it.
type Engine interface {
	// Name returns the registry name the Spec selects the engine by.
	Name() string
	// Extract runs the strategy on g under ctx. Cancellation is
	// observed at the engine's natural boundaries; cfg carries the
	// declarative parameters plus the run's Observer.
	Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error)
}

// SourceEngine is an Engine that can extract directly from a source
// file without the input graph ever being materialized in memory. The
// Runner takes this path when the selected engine implements it and the
// spec's source is a binary-CSR file path: the acquire stage is skipped
// and the engine owns all input IO. PipelineResult.Input stays nil on
// this path (InputStats is filled from EngineResult.InputStats), which
// also disables the stages that need a resident input — the maximality
// audit and quality metrics.
type SourceEngine interface {
	Engine
	// ExtractSource runs the strategy against the graph stored at path
	// (binary CSR format) under ctx.
	ExtractSource(ctx context.Context, path string, cfg EngineConfig) (*EngineResult, error)
}

var (
	engineMu sync.RWMutex
	engines  = make(map[string]Engine)
)

// RegisterEngine adds an engine to the registry under e.Name(),
// making it selectable by Spec.Engine. It panics on an empty or
// duplicate name — engine names are global API surface, and a silent
// replacement would change what existing specs mean.
func RegisterEngine(e Engine) {
	name := e.Name()
	engineMu.Lock()
	defer engineMu.Unlock()
	if name == "" || name == EngineNone {
		panic(fmt.Sprintf("chordal: invalid engine name %q", name))
	}
	if _, dup := engines[name]; dup {
		panic(fmt.Sprintf("chordal: engine %q already registered", name))
	}
	engines[name] = e
}

// LookupEngine returns the registered engine with the given name.
func LookupEngine(name string) (Engine, bool) {
	engineMu.RLock()
	defer engineMu.RUnlock()
	e, ok := engines[name]
	return e, ok
}

// EngineNames returns the sorted names of all registered engines.
func EngineNames() []string {
	engineMu.RLock()
	defer engineMu.RUnlock()
	names := make([]string, 0, len(engines))
	for name := range engines {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterEngine(parallelEngine{})
	RegisterEngine(serialEngine{})
	RegisterEngine(partitionedEngine{})
	RegisterEngine(shardedEngine{})
	RegisterEngine(dearingEngine{})
	RegisterEngine(eliminationEngine{})
	RegisterEngine(externalEngine{})
}

// resolveTuning fills the kernel tuning of opts in place and returns
// the decision record: explicit spec values win, everything left unset
// comes from the startup calibration (tune.Current), and when the
// caller did not bound Workers the cache-CPU model picks the width
// with the smallest predicted runtime for the input's estimated
// workload (clamped to local parallelism — on small inputs the model
// knows that extra cores only add barrier cost).
func resolveTuning(opts *Options, g *Graph) Tuning {
	return resolveTuningStats(opts, g.MaxDegree(), g.NumVertices(), g.NumEdges())
}

// resolveTuningStats is resolveTuning from the input's degree summary
// alone — the form the out-of-core engine uses, where no input graph is
// resident and the summary comes from one pass over the file's offsets.
func resolveTuningStats(opts *Options, maxDegree, numVertices int, numEdges int64) Tuning {
	prof := tune.Current()
	t := Tuning{Source: prof.Source}
	if opts.Grain <= 0 {
		opts.Grain = prof.Grain
	} else {
		t.Source = "spec"
	}
	if opts.DegreeThreshold == 0 {
		// The calibrated threshold, shape-checked against this graph's
		// degree summary: hub-free and uniformly dense graphs disable
		// the hybrid probe (-1) because its amortization cannot win
		// there (see tune.ThresholdFor).
		opts.DegreeThreshold = prof.ThresholdFor(maxDegree, numVertices, numEdges)
	} else {
		t.Source = "spec"
	}
	t.Grain = opts.Grain
	t.DegreeThreshold = opts.DegreeThreshold
	if opts.Workers <= 0 {
		w, model := tune.Width(tune.EstimateTrace(numVertices, numEdges), 0)
		opts.Workers = w
		t.WidthModel = model
	}
	t.Workers = parallel.WorkerCount(opts.Workers)
	return t
}

// parallelEngine is the paper's multithreaded Algorithm 1 on the whole
// graph.
type parallelEngine struct{}

// Name implements Engine.
func (parallelEngine) Name() string { return EngineParallel }

// Extract implements Engine with core.ExtractContext.
func (parallelEngine) Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	tun := resolveTuning(&opts, g)
	if obs := cfg.Observer; obs != nil {
		obs(newTuningEvent(tun))
		inner := opts.OnIteration
		opts.OnIteration = func(it IterationStats) {
			if inner != nil {
				inner(it)
			}
			obs(newIterationEvent(nil, it))
		}
	}
	r, err := core.ExtractContext(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	return &EngineResult{Subgraph: r.ToGraph(), Extraction: r, Tuning: &tun}, nil
}

// serialEngine is the Dearing-Shier-Warner serial baseline.
type serialEngine struct{}

// Name implements Engine.
func (serialEngine) Name() string { return EngineSerial }

// Extract implements Engine with the dearing package. The baseline is
// a single uninterruptible pass; ctx is only checked on entry.
func (serialEngine) Extract(ctx context.Context, g *Graph, _ EngineConfig) (*EngineResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := dearing.Extract(g, 0)
	return &EngineResult{
		Subgraph:       r.ToGraph(g.NumVertices()),
		SerialDuration: r.Total,
	}, nil
}

// dearingEngine is the Dearing-Shier-Warner incremental extractor run
// from a caller-chosen start vertex. The start vertex changes which
// maximal chordal subgraph is found, so it is validated here and kept
// as part of the run's identity rather than silently clamped.
type dearingEngine struct{}

// Name implements Engine.
func (dearingEngine) Name() string { return EngineDearing }

// Extract implements Engine with the dearing package. The extractor is
// a single uninterruptible pass; ctx is only checked on entry.
func (dearingEngine) Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if cfg.Start < 0 || (n > 0 && cfg.Start >= n) {
		return nil, fmt.Errorf("chordal: dearing start vertex %d out of range [0, %d)", cfg.Start, n)
	}
	r := dearing.Extract(g, int32(cfg.Start))
	return &EngineResult{
		Subgraph:       r.ToGraph(n),
		SerialDuration: r.Total,
		Dearing:        &DearingSummary{Start: cfg.Start},
	}, nil
}

// eliminationEngine builds the chordal subgraph induced by a
// fill-reducing elimination order. Chordal by construction (the order
// is a PEO of the result), not necessarily maximal.
type eliminationEngine struct{}

// Name implements Engine.
func (eliminationEngine) Name() string { return EngineElimination }

// Extract implements Engine with elimination.ChordalSubgraph. The
// construction is a single pass; ctx is only checked on entry.
func (eliminationEngine) Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	name := cfg.Order
	if name == "" {
		name = OrderMinDegree
	}
	var order []int32
	switch name {
	case OrderNatural:
		order = elimination.NaturalOrder(g.NumVertices())
	case OrderMinDegree:
		order = elimination.MinDegreeOrder(g)
	default:
		return nil, fmt.Errorf("chordal: unknown elimination order %q (want %s|%s)", name, OrderNatural, OrderMinDegree)
	}
	sub, err := elimination.ChordalSubgraph(g, order)
	if err != nil {
		return nil, err
	}
	return &EngineResult{
		Subgraph:    sub,
		Elimination: &EliminationSummary{Order: name},
	}, nil
}

// partitionedEngine is the distributed-style partitioned baseline plus
// cycle cleanup.
type partitionedEngine struct{}

// Name implements Engine.
func (partitionedEngine) Name() string { return EnginePartitioned }

// Extract implements Engine with partition.ExtractAndClean. The
// baseline runs to completion; ctx is only checked on entry.
func (partitionedEngine) Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, rep := partition.ExtractAndClean(g, cfg.Partitions)
	return &EngineResult{
		Subgraph: r.ToGraph(g.NumVertices()),
		Partition: &PartitionSummary{
			Parts:          r.Parts,
			InteriorEdges:  r.InteriorEdges,
			BorderAdmitted: r.BorderAdmitted,
			CleanupRemoved: rep.Removed,
			CleanupRounds:  rep.Rounds,
		},
	}, nil
}

// shardedEngine runs Algorithm 1 per contiguous vertex-range shard and
// reconciles the border chordality-preserving (DESIGN.md §7).
type shardedEngine struct{}

// Name implements Engine.
func (shardedEngine) Name() string { return EngineSharded }

// Extract implements Engine with shard.ExtractContext.
func (shardedEngine) Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error) {
	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	tun := resolveTuning(&opts, g)
	sOpts := shard.Options{
		Shards:     cfg.Shards,
		Core:       opts,
		StitchOnly: cfg.ShardStitchOnly,
		Repair:     opts.RepairMaximality,
	}
	if obs := cfg.Observer; obs != nil {
		obs(newTuningEvent(tun))
		sOpts.OnShardIteration = func(sh int, it IterationStats) {
			shardIdx := sh
			obs(newIterationEvent(&shardIdx, it))
		}
	}
	r, err := shard.ExtractContext(ctx, g, sOpts)
	if err != nil {
		return nil, err
	}
	sum := newShardSummary(r, g.NumEdges())
	return &EngineResult{Subgraph: r.Subgraph, Shard: sum, Tuning: &tun}, nil
}

// newShardSummary maps a shard.Result onto the report summary shared by
// the sharded and external engines. The edge cut equals the
// reconciliation pass's border count (both count edges crossing the
// contiguous-range partition — partition.CutEdges is the standalone
// definition, pinned equal by test), expressed also as a fraction of
// the input's edges so partition quality is comparable across inputs.
func newShardSummary(r *shard.Result, inputEdges int64) *ShardSummary {
	sum := &ShardSummary{
		Shards:         len(r.Shards),
		BorderTotal:    r.BorderTotal,
		EdgeCut:        int64(r.BorderTotal),
		StitchedEdges:  r.StitchedEdges,
		BorderBridges:  r.BorderBridges,
		BorderAdmitted: r.BorderAdmitted,
		RepairedEdges:  r.RepairedEdges,
		Chordal:        r.Chordal,
	}
	if inputEdges > 0 {
		sum.EdgeCutPct = 100 * float64(sum.EdgeCut) / float64(inputEdges)
	}
	for _, st := range r.Shards {
		sum.PerShardIterations = append(sum.PerShardIterations, st.Iterations)
		sum.PerShardEdges = append(sum.PerShardEdges, st.ChordalEdges)
		sum.InteriorEdges += st.ChordalEdges
	}
	return sum
}
