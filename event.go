package chordal

import "time"

// This file defines the unified event stream of a run: one typed Event
// carries every kind of progress notification — stage begin/end with
// timing, extraction iterations (whole-graph and per-shard), and the
// verify outcome — replacing the three per-kind callbacks the Pipeline
// adapter still exposes (OnStage, OnIteration, OnShardIteration). The
// service's SSE handler serializes Events directly: the Type is the SSE
// event name and the marshaled Event is the data payload.

// EventType discriminates the kinds of Event a run emits.
type EventType string

// The event kinds, in the order a run emits them. Stage begin events
// use the bare name "stage" (and iteration events "iteration") so the
// service's SSE wire format is a superset of what earlier releases
// emitted.
const (
	// EventStageBegin marks a pipeline stage starting; Stage carries its
	// name (acquire, relabel, extract, verify, write).
	EventStageBegin EventType = "stage"
	// EventStageEnd marks a pipeline stage finishing; Millis carries its
	// wall-clock duration.
	EventStageEnd EventType = "stageEnd"
	// EventTuning carries the resolved kernel tuning of the extract
	// stage (grain, degree threshold, worker width and how each was
	// decided), emitted once before the first iteration.
	EventTuning EventType = "tuning"
	// EventIteration carries one extraction iteration's statistics;
	// Shard is set during sharded extraction and nil otherwise.
	EventIteration EventType = "iteration"
	// EventVerify carries the verify stage's outcome.
	EventVerify EventType = "verify"
	// EventAdmit carries one accepted stream delta (reason "admitted",
	// "bridge", or — when Repair re-admits a deferred edge — "repaired");
	// Delta holds the edge and its sequence number.
	EventAdmit EventType = "admit"
	// EventDefer carries one stream delta that did not join the
	// maintained subgraph: rejected for now ("deferred", queued for
	// Repair), already present ("present"), malformed ("invalid"), or
	// dropped because the deferred queue hit the spec's MaxDeferred
	// bound ("overflow" — never retested).
	EventDefer EventType = "defer"
	// EventRepair summarizes one repair pass over the deferred queue;
	// Repaired counts the edges it admitted (each also announced by its
	// own EventAdmit).
	EventRepair EventType = "repair"
)

// Tuning describes the resolved kernel tuning of one extraction run:
// the values the kernels actually used after the spec's overrides, the
// startup calibration (internal/tune), and the machine model's width
// choice were combined.
type Tuning struct {
	// Grain is the parallel-for chunk size of the extraction loop.
	Grain int `json:"grain"`
	// DegreeThreshold is the chordal-set size at which the subset test
	// switches to the hybrid bitset probe; -1 means merge scan only.
	DegreeThreshold int `json:"degreeThreshold"`
	// Workers is the resolved worker width of the run.
	Workers int `json:"workers"`
	// WidthModel names the machine model that picked Workers; empty
	// when the width came from the spec or caller instead.
	WidthModel string `json:"widthModel,omitempty"`
	// Source records where grain and threshold came from: "calibrated",
	// "env", "off" (tuning disabled, defaults), or "spec" (at least one
	// value set explicitly in the spec).
	Source string `json:"source"`
}

// IterationEvent is the wire form of one extraction iteration's
// statistics, flattened into the Event JSON object. Field names match
// the service's SSE payloads.
type IterationEvent struct {
	// Index is the 1-based iteration number.
	Index int `json:"index"`
	// QueueSize is |Q1|, the number of lowest parents processed.
	QueueSize int `json:"queueSize"`
	// EdgesTested counts subset-condition evaluations.
	EdgesTested int64 `json:"edgesTested"`
	// EdgesAccepted counts edges admitted to the chordal set.
	EdgesAccepted int64 `json:"edgesAccepted"`
	// ScanWork is the total adjacency length scanned.
	ScanWork int64 `json:"scanWork"`
	// DurationMillis is the iteration's wall-clock time in milliseconds.
	DurationMillis float64 `json:"durationMillis"`
}

// Event is one notification in a run's unified progress stream. Fields
// beyond Type are populated per kind; unset fields are omitted from the
// JSON form, so an Event marshals directly as an SSE data payload.
type Event struct {
	// Type is the event kind (and the SSE event name).
	Type EventType `json:"type"`
	// Stage names the pipeline stage for stage begin/end events.
	Stage string `json:"stage,omitempty"`
	// Cached marks a stage satisfied from a cache instead of executed
	// (the service's input-cache hits on the acquire stage).
	Cached bool `json:"cached,omitempty"`
	// Millis is the completed stage's wall-clock duration (stage end).
	Millis float64 `json:"millis,omitempty"`
	// Shard is the shard index of a sharded-extraction iteration; nil
	// for whole-graph iterations and non-iteration events.
	Shard *int `json:"shard,omitempty"`
	// Batch is the index of the batch item this event belongs to when
	// the run executes inside a Batch; nil for standalone runs. Events
	// of different batch items may interleave on a shared Observer.
	Batch *int `json:"batch,omitempty"`
	// IterationEvent flattens the iteration's wire statistics into the
	// event object; nil for non-iteration events.
	*IterationEvent
	// Stats is the iteration's native statistics with exact durations;
	// it mirrors IterationEvent for in-process consumers and is excluded
	// from the wire form.
	Stats *IterationStats `json:"-"`
	// Tuning is the resolved kernel tuning; nil except on tuning events.
	Tuning *Tuning `json:"tuning,omitempty"`
	// Delta is the stream delta an admit/defer event reports; nil for
	// every other kind.
	Delta *StreamDelta `json:"delta,omitempty"`
	// Repaired counts the edges one repair pass admitted (repair events).
	Repaired int `json:"repaired,omitempty"`
	// Chordal reports the verify stage's chordality check; nil except on
	// verify events.
	Chordal *bool `json:"chordal,omitempty"`
	// MaximalityAudited reports whether the bounded maximality audit ran
	// (verify events); ReAddableEdges counts the violations it found.
	MaximalityAudited bool `json:"maximalityAudited,omitempty"`
	ReAddableEdges    int  `json:"reAddableEdges,omitempty"`
}

// Observer receives a run's event stream. During sharded extraction it
// may be invoked concurrently for different shards; all other events
// arrive sequentially. A nil Observer disables event delivery.
type Observer func(Event)

// newStageEvent builds a stage-begin event.
func newStageEvent(stage string) Event {
	return Event{Type: EventStageBegin, Stage: stage}
}

// newStageEndEvent builds a stage-end event with its duration.
func newStageEndEvent(stage string, d time.Duration) Event {
	return Event{Type: EventStageEnd, Stage: stage, Millis: durationMillis(d)}
}

// newIterationEvent builds an iteration event; shard is nil for
// whole-graph extraction.
func newIterationEvent(shard *int, it IterationStats) Event {
	stats := it
	return Event{
		Type:  EventIteration,
		Shard: shard,
		Stats: &stats,
		IterationEvent: &IterationEvent{
			Index:          it.Index,
			QueueSize:      it.QueueSize,
			EdgesTested:    it.EdgesTested,
			EdgesAccepted:  it.EdgesAccepted,
			ScanWork:       it.ScanWork,
			DurationMillis: durationMillis(it.Duration),
		},
	}
}

// newTuningEvent builds the resolved-tuning event.
func newTuningEvent(t Tuning) Event {
	tun := t
	return Event{Type: EventTuning, Tuning: &tun}
}

// StreamDelta is the wire form of one streamed edge decision: the
// delta's sequence number within its session, the edge, and how the
// admission kernel ruled (Reason carries the incremental.Reason wire
// value verbatim).
type StreamDelta struct {
	// Seq is the 1-based position of this decision in the session's
	// event order (pushes and repair re-admissions share one sequence).
	Seq int64 `json:"seq"`
	// U and V are the delta's endpoints as submitted (canonicalized to
	// U < V for accepted edges).
	U int32 `json:"u"`
	V int32 `json:"v"`
	// Accepted reports whether the edge joined the maintained subgraph.
	Accepted bool `json:"accepted"`
	// Reason is the admission kernel's ruling: admitted, bridge,
	// repaired, deferred, present, invalid, or overflow.
	Reason string `json:"reason"`
}

// newDeltaEvent builds the admit/defer event for one stream decision.
func newDeltaEvent(d StreamDelta) Event {
	t := EventDefer
	if d.Accepted {
		t = EventAdmit
	}
	return Event{Type: t, Delta: &d}
}

// newRepairEvent builds the repair-pass summary event.
func newRepairEvent(repaired int) Event {
	return Event{Type: EventRepair, Repaired: repaired}
}

// newVerifyEvent builds the verify-outcome event.
func newVerifyEvent(chordal, audited bool, reAddable int) Event {
	ok := chordal
	return Event{Type: EventVerify, Chordal: &ok, MaximalityAudited: audited, ReAddableEdges: reAddable}
}

// durationMillis converts a duration to fractional milliseconds, the
// unit every wire payload uses.
func durationMillis(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}
