package chordal

import (
	"context"
	"fmt"
	"os"

	"chordal/internal/extio"
	"chordal/internal/graph"
)

// externalEngine is the out-of-core strategy: extraction runs against a
// binary-CSR file through internal/extio — adjacency decoded per
// vertex-range shard on demand, a bounded number of shards resident,
// per-shard edges spilled to disk — instead of against a resident
// graph. Registered seventh; selected by Spec{Engine: "external"}.
//
// Identity: the engine reuses the canonical key's fixed shards= and
// stitchonly= tokens (the same semantics-affecting knobs as the sharded
// engine, which it is byte-identical to); ResidentShards is a pure
// residency/speed knob and stays out of the key.
type externalEngine struct{}

// Name implements Engine.
func (externalEngine) Name() string { return EngineExternal }

// Extract implements Engine for callers that already hold the graph in
// memory (Runner-injected inputs, generated sources, uploads): the
// graph is spilled to a temp binary-CSR file and extraction proceeds
// through the one disk-backed path, so every surface exercises the same
// driver. True out-of-core runs enter through ExtractSource instead.
func (e externalEngine) Extract(ctx context.Context, g *Graph, cfg EngineConfig) (*EngineResult, error) {
	if g == nil {
		return nil, fmt.Errorf("chordal: external engine: nil graph")
	}
	f, err := os.CreateTemp("", "chordal-ext-*.bin")
	if err != nil {
		return nil, fmt.Errorf("chordal: external engine: creating temp input: %w", err)
	}
	path := f.Name()
	defer os.Remove(path)
	if err := graph.WriteBinary(f, g); err != nil {
		f.Close()
		return nil, fmt.Errorf("chordal: external engine: spilling input: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return e.ExtractSource(ctx, path, cfg)
}

// ExtractSource implements SourceEngine: extract straight from the
// binary-CSR file at path without ever materializing the whole graph.
func (externalEngine) ExtractSource(ctx context.Context, path string, cfg EngineConfig) (*EngineResult, error) {
	m, err := extio.Open(path)
	if err != nil {
		return nil, err
	}
	defer m.Close()

	opts, err := cfg.coreOptions()
	if err != nil {
		return nil, err
	}
	// The degree summary that drives tuning (hybrid threshold, width
	// model) comes from one bounded-memory pass over the offsets array.
	stats, err := m.Stats()
	if err != nil {
		return nil, err
	}
	tun := resolveTuningStats(&opts, stats.MaxDegree, stats.Vertices, stats.Edges)

	xOpts := extio.Options{
		Shards:     cfg.Shards,
		Resident:   cfg.ResidentShards,
		Core:       opts,
		StitchOnly: cfg.ShardStitchOnly,
		Repair:     opts.RepairMaximality,
	}
	if obs := cfg.Observer; obs != nil {
		obs(newTuningEvent(tun))
		xOpts.OnShardIteration = func(sh int, it IterationStats) {
			shardIdx := sh
			obs(newIterationEvent(&shardIdx, it))
		}
	}
	r, err := extio.Extract(ctx, m, xOpts)
	if err != nil {
		return nil, err
	}
	sum := newShardSummary(&r.Result, stats.Edges)
	ext := &ExternalSummary{
		Mapped:            r.IO.Mapped,
		BytesMapped:       r.IO.BytesMapped,
		BytesRead:         r.IO.BytesRead,
		SpillBytes:        r.IO.SpillBytes,
		PeakResidentBytes: r.IO.PeakResident,
		ResidentShards:    r.IO.Resident,
		DecodeMillis:      durationMillis(r.IO.DecodeTime),
		KernelMillis:      durationMillis(r.IO.KernelTime),
		OverlapMillis:     durationMillis(r.IO.Overlap),
	}
	inputStats := Stats(stats)
	return &EngineResult{
		Subgraph:   r.Subgraph,
		Shard:      sum,
		External:   ext,
		Tuning:     &tun,
		InputStats: &inputStats,
	}, nil
}
