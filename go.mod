module chordal

go 1.22
