package chordal_test

import (
	"path/filepath"
	"testing"

	"chordal"
)

func TestParseSourceGenerators(t *testing.T) {
	cases := []struct {
		spec     string
		vertices int
	}{
		{"rmat-er:8", 256},
		{"rmat-g:8:7", 256},
		{"rmat-b:8:7:4", 256},
		{"gnm:100:200:3", 100},
		{"ws:64:3:0.1:5", 64},
		{"geo:200:0.1:9", 200},
		{"ktree:50:3:2", 50},
		{"gse5140-unt:64:5", 45020 / 64},
	}
	for _, c := range cases {
		src, err := chordal.ParseSource(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		g, err := src.Load()
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.NumVertices() != c.vertices {
			t.Fatalf("%s: V=%d, want %d", c.spec, g.NumVertices(), c.vertices)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
	}
}

func TestParseSourceErrors(t *testing.T) {
	for _, spec := range []string{"rmat-er", "rmat-er:x", "gnm:100", "ws:64:3", "geo:200", "ktree:50", "rmat-g:8:badseed"} {
		src, err := chordal.ParseSource(spec)
		if err == nil {
			// Some errors only surface at load time for specs parsed as
			// file paths; those must fail there instead.
			if _, err := src.Load(); err == nil {
				t.Fatalf("spec %q accepted", spec)
			}
		}
	}
}

func TestParseSourceFilePath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g, err := chordal.GenerateRMAT(chordal.RMATG, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := chordal.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	src, err := chordal.ParseSource(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("reloaded E=%d, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sub.bin")
	res, err := chordal.Pipeline{
		Source:  "rmat-g:9:5",
		Relabel: chordal.RelabelBFS,
		Extract: true,
		Options: chordal.Options{RepairMaximality: true},
		Verify:  true,
		Output:  out,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Input == nil || res.Subgraph == nil || res.Extraction == nil {
		t.Fatal("missing pipeline outputs")
	}
	if !res.Verified || !res.ChordalOK {
		t.Fatal("verification did not pass")
	}
	if !res.MaximalityAudited || res.ReAddableEdges != 0 {
		t.Fatalf("repair + audit left %d re-addable edges", res.ReAddableEdges)
	}
	if len(res.Timings) != 5 {
		t.Fatalf("expected 5 stage timings, got %v", res.Timings)
	}
	// The written artifact round-trips.
	back, err := chordal.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != res.Subgraph.NumEdges() {
		t.Fatalf("written subgraph E=%d, want %d", back.NumEdges(), res.Subgraph.NumEdges())
	}
	// BFS relabeling of a connected input keeps the extraction connected
	// only per component; at minimum the subgraph spans the vertex set.
	if back.NumVertices() != res.Input.NumVertices() {
		t.Fatalf("vertex count changed: %d vs %d", back.NumVertices(), res.Input.NumVertices())
	}
}

func TestPipelineBaselines(t *testing.T) {
	serial, err := chordal.Pipeline{Source: "rmat-er:8:3", Serial: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if serial.Subgraph == nil || serial.Extraction != nil {
		t.Fatal("serial baseline should produce a subgraph without an Extraction result")
	}
	if !chordal.IsChordal(serial.Subgraph) {
		t.Fatal("serial baseline output not chordal")
	}

	parts, err := chordal.Pipeline{Source: "rmat-er:8:3", Partitions: 4, Verify: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if parts.Partition == nil || parts.Partition.Parts != 4 {
		t.Fatalf("partition summary %+v", parts.Partition)
	}
	if !parts.ChordalOK {
		t.Fatal("partitioned baseline output not chordal")
	}
}

func TestPipelineVerifyRequiresExtraction(t *testing.T) {
	if _, err := (chordal.Pipeline{Source: "rmat-er:8", Verify: true}).Run(); err == nil {
		t.Fatal("verify without extraction accepted")
	}
}

func TestPipelineLoadOnly(t *testing.T) {
	res, err := chordal.Pipeline{Source: "ktree:40:3:1"}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph != nil {
		t.Fatal("no extraction requested but subgraph present")
	}
	if res.InputStats.Vertices != 40 {
		t.Fatalf("stats %+v", res.InputStats)
	}
}
