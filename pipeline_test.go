package chordal_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"chordal"
)

func TestParseSourceGenerators(t *testing.T) {
	cases := []struct {
		spec     string
		vertices int
	}{
		{"rmat-er:8", 256},
		{"rmat-g:8:7", 256},
		{"rmat-b:8:7:4", 256},
		{"gnm:100:200:3", 100},
		{"ws:64:3:0.1:5", 64},
		{"geo:200:0.1:9", 200},
		{"ktree:50:3:2", 50},
		{"gse5140-unt:64:5", 45020 / 64},
	}
	for _, c := range cases {
		src, err := chordal.ParseSource(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		g, err := src.Load()
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if g.NumVertices() != c.vertices {
			t.Fatalf("%s: V=%d, want %d", c.spec, g.NumVertices(), c.vertices)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
	}
}

func TestParseSourceErrors(t *testing.T) {
	for _, spec := range []string{"rmat-er", "rmat-er:x", "gnm:100", "ws:64:3", "geo:200", "ktree:50", "rmat-g:8:badseed"} {
		src, err := chordal.ParseSource(spec)
		if err == nil {
			// Some errors only surface at load time for specs parsed as
			// file paths; those must fail there instead.
			if _, err := src.Load(); err == nil {
				t.Fatalf("spec %q accepted", spec)
			}
		}
	}
}

func TestParseSourceFilePath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g, err := chordal.GenerateRMAT(chordal.RMATG, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := chordal.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	src, err := chordal.ParseSource(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := src.Load()
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("reloaded E=%d, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sub.bin")
	res, err := chordal.Pipeline{
		Source:  "rmat-g:9:5",
		Relabel: chordal.RelabelBFS,
		Extract: true,
		Options: chordal.Options{RepairMaximality: true},
		Verify:  true,
		Output:  out,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Input == nil || res.Subgraph == nil || res.Extraction == nil {
		t.Fatal("missing pipeline outputs")
	}
	if !res.Verified || !res.ChordalOK {
		t.Fatal("verification did not pass")
	}
	if !res.MaximalityAudited || res.ReAddableEdges != 0 {
		t.Fatalf("repair + audit left %d re-addable edges", res.ReAddableEdges)
	}
	if len(res.Timings) != 5 {
		t.Fatalf("expected 5 stage timings, got %v", res.Timings)
	}
	// The written artifact round-trips.
	back, err := chordal.LoadGraph(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != res.Subgraph.NumEdges() {
		t.Fatalf("written subgraph E=%d, want %d", back.NumEdges(), res.Subgraph.NumEdges())
	}
	// BFS relabeling of a connected input keeps the extraction connected
	// only per component; at minimum the subgraph spans the vertex set.
	if back.NumVertices() != res.Input.NumVertices() {
		t.Fatalf("vertex count changed: %d vs %d", back.NumVertices(), res.Input.NumVertices())
	}
}

func TestPipelineBaselines(t *testing.T) {
	serial, err := chordal.Pipeline{Source: "rmat-er:8:3", Serial: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if serial.Subgraph == nil || serial.Extraction != nil {
		t.Fatal("serial baseline should produce a subgraph without an Extraction result")
	}
	if !chordal.IsChordal(serial.Subgraph) {
		t.Fatal("serial baseline output not chordal")
	}

	parts, err := chordal.Pipeline{Source: "rmat-er:8:3", Partitions: 4, Verify: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if parts.Partition == nil || parts.Partition.Parts != 4 {
		t.Fatalf("partition summary %+v", parts.Partition)
	}
	if !parts.ChordalOK {
		t.Fatal("partitioned baseline output not chordal")
	}
}

func TestPipelineSharded(t *testing.T) {
	var mu sync.Mutex
	iterEvents := 0
	res, err := chordal.Pipeline{
		Source: "rmat-g:10:7",
		Shards: 4,
		Verify: true,
		OnShardIteration: func(shard int, it chordal.IterationStats) {
			// Invoked concurrently across shards; guard the counter.
			mu.Lock()
			iterEvents++
			mu.Unlock()
			if shard < 0 || shard >= 4 {
				t.Errorf("shard index %d out of range", shard)
			}
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if iterEvents == 0 {
		t.Error("no shard iteration callbacks")
	}
	if res.Shard == nil || res.Shard.Shards != 4 {
		t.Fatalf("shard summary %+v, want 4 shards", res.Shard)
	}
	if !res.Shard.Chordal || !res.ChordalOK {
		t.Fatal("sharded pipeline output not chordal")
	}
	if len(res.Shard.PerShardIterations) != 4 || len(res.Shard.PerShardEdges) != 4 {
		t.Fatalf("per-shard series %+v", res.Shard)
	}
	if res.Extraction != nil {
		t.Fatal("sharded run must not report a whole-graph Extraction result")
	}
	got := int(res.Subgraph.NumEdges())
	want := res.Shard.InteriorEdges + res.Shard.StitchedEdges + res.Shard.BorderAdmitted
	if got != want {
		t.Fatalf("edge accounting: subgraph %d, counters %d", got, want)
	}

	// One shard reproduces the whole-graph kernel plus spanning stitch.
	one, err := chordal.Pipeline{Source: "rmat-g:10:7", Shards: 1, ShardStitchOnly: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := chordal.Pipeline{
		Source:  "rmat-g:10:7",
		Extract: true,
		Options: chordal.Options{StitchComponents: true},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if one.Subgraph.NumEdges() != ref.Subgraph.NumEdges() {
		t.Fatalf("shards=1 kept %d edges, whole-graph+stitch kept %d",
			one.Subgraph.NumEdges(), ref.Subgraph.NumEdges())
	}
}

func TestPipelineVerifyRequiresExtraction(t *testing.T) {
	if _, err := (chordal.Pipeline{Source: "rmat-er:8", Verify: true}).Run(); err == nil {
		t.Fatal("verify without extraction accepted")
	}
}

func TestPipelineLoadOnly(t *testing.T) {
	res, err := chordal.Pipeline{Source: "ktree:40:3:1"}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph != nil {
		t.Fatal("no extraction requested but subgraph present")
	}
	if res.InputStats.Vertices != 40 {
		t.Fatalf("stats %+v", res.InputStats)
	}
}

func TestSourceCanonical(t *testing.T) {
	cases := []struct {
		spec, canon string
		generated   bool
	}{
		{"rmat-er:14", "rmat-er:14:42:8", true},
		{"RMAT-ER:14:42:8", "rmat-er:14:42:8", true},
		{" rmat-er:14 ", "rmat-er:14:42:8", true},
		{"gnm:100:200", "gnm:100:200:42", true},
		{"ws:64:3:0.1", "ws:64:3:0.1:42", true},
		{"geo:200:0.25:9", "geo:200:0.25:9", true},
		{"ktree:50:3", "ktree:50:3:42", true},
		{"gse5140-crt", "gse5140-crt:8:42", true},
		{"some/dir//graph.bin", "some/dir/graph.bin", false},
	}
	for _, c := range cases {
		src, err := chordal.ParseSource(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if got := src.Canonical(); got != c.canon {
			t.Errorf("Canonical(%q) = %q, want %q", c.spec, got, c.canon)
		}
		if got := src.Generated(); got != c.generated {
			t.Errorf("Generated(%q) = %t, want %t", c.spec, got, c.generated)
		}
	}
}

func TestParseRelabel(t *testing.T) {
	for s, want := range map[string]chordal.RelabelMode{
		"": chordal.RelabelNone, "none": chordal.RelabelNone,
		"BFS": chordal.RelabelBFS, "degree": chordal.RelabelDegree,
	} {
		got, err := chordal.ParseRelabel(s)
		if err != nil || got != want {
			t.Errorf("ParseRelabel(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := chordal.ParseRelabel("shuffle"); err == nil {
		t.Error("ParseRelabel accepted unknown mode")
	}
}

func TestRunContextCancellation(t *testing.T) {
	// Pre-canceled context: the pipeline stops at the first boundary.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := chordal.Pipeline{Source: "rmat-er:10:7", Extract: true}.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled RunContext error = %v, want context.Canceled", err)
	}

	// Cancel from inside the extract loop: the first iteration callback
	// pulls the plug and extraction must stop at the next boundary with
	// ctx.Err(), not run to completion.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	iterations := 0
	_, err = chordal.Pipeline{
		Source:  "rmat-er:12:7",
		Extract: true,
		Options: chordal.Options{Schedule: chordal.ScheduleSynchronous},
		OnIteration: func(chordal.IterationStats) {
			iterations++
			cancel2()
		},
	}.RunContext(ctx2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel error = %v, want context.Canceled", err)
	}
	if iterations != 1 {
		t.Errorf("extraction ran %d iterations after cancel, want exactly 1", iterations)
	}

	// Sanity: the same pipeline uncanceled completes.
	res, err := chordal.Pipeline{Source: "rmat-er:10:7", Extract: true, Verify: true}.Run()
	if err != nil || !res.ChordalOK {
		t.Fatalf("uncancelled run: res=%v err=%v", res, err)
	}
}

func TestPipelineInputInjection(t *testing.T) {
	g := chordal.GenerateGNM(500, 1500, 3)
	res, err := chordal.Pipeline{Input: g, Extract: true, Verify: true}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Input != g {
		t.Error("pipeline did not use the injected input graph")
	}
	if !res.ChordalOK {
		t.Error("extraction on injected input not chordal")
	}
	for _, st := range res.Timings {
		if st.Stage == "acquire" {
			t.Error("acquire stage ran despite injected input")
		}
	}
}

func TestPipelineStageCallback(t *testing.T) {
	var stages []string
	out := filepath.Join(t.TempDir(), "sub.bin")
	_, err := chordal.Pipeline{
		Source:  "gnm:300:900:5",
		Relabel: chordal.RelabelBFS,
		Extract: true,
		Verify:  true,
		Output:  out,
		OnStage: func(s string) { stages = append(stages, s) },
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"acquire", "relabel", "extract", "verify", "write"}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stages = %v, want %v", stages, want)
		}
	}
}
