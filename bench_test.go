// Benchmarks regenerating the paper's evaluation, one per table/figure
// plus the ablations DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Mapping to the paper (see also EXPERIMENTS.md and cmd/benchrunner for
// the full sweeps with printed series):
//
//	BenchmarkGenerate*        Table I inputs
//	BenchmarkExtract*         Figures 4 & 6 measured kernel (Opt/Unopt x ER/G/B)
//	BenchmarkExtractBio*      Figure 5 measured kernel
//	BenchmarkSchedule*        DESIGN.md §5 schedule ablation
//	BenchmarkQueueOrder*      sorted vs arbitrary queue ablation
//	BenchmarkSerialDearing    serial baseline (Section II)
//	BenchmarkPartitioned      distributed-style baseline (Section II)
//	BenchmarkVerifyChordal    MCS verification cost
//	BenchmarkSubsetRate       Figure 7's per-iteration kernel (subset tests)
package chordal_test

import (
	"context"
	"fmt"
	"testing"

	"chordal"
	"chordal/internal/biogen"
	"chordal/internal/core"
	"chordal/internal/dearing"
	"chordal/internal/elimination"
	"chordal/internal/graph"
	"chordal/internal/partition"
	"chordal/internal/rmat"
	"chordal/internal/shard"
	"chordal/internal/synth"
	"chordal/internal/verify"
)

// benchScale keeps single-iteration benchmark time near tens of
// milliseconds; raise for real experiments via cmd/benchrunner.
const benchScale = 14

var benchGraphs = map[string]*graph.Graph{}

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	var g *graph.Graph
	var err error
	switch name {
	case "ER":
		g, err = rmat.Generate(rmat.PresetParams(rmat.ER, benchScale, 7))
	case "G":
		g, err = rmat.Generate(rmat.PresetParams(rmat.G, benchScale, 7))
	case "B":
		g, err = rmat.Generate(rmat.PresetParams(rmat.B, benchScale, 7))
	case "GSE5140UNT":
		g, err = biogen.Generate(biogen.PresetParams(biogen.GSE5140UNT, 8, 7))
	case "GSE17072NON":
		g, err = biogen.Generate(biogen.PresetParams(biogen.GSE17072NON, 8, 7))
	default:
		b.Fatalf("unknown bench graph %s", name)
	}
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = g
	return g
}

// --- Table I: generation ---

func BenchmarkGenerateRMATER(b *testing.B) { benchGenerate(b, rmat.ER) }
func BenchmarkGenerateRMATG(b *testing.B)  { benchGenerate(b, rmat.G) }
func BenchmarkGenerateRMATB(b *testing.B)  { benchGenerate(b, rmat.B) }

func benchGenerate(b *testing.B, p rmat.Preset) {
	params := rmat.PresetParams(p, benchScale, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rmat.Generate(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateBio(b *testing.B) {
	params := biogen.PresetParams(biogen.GSE5140UNT, 8, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := biogen.Generate(params); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 4 & 6: extraction kernels, Opt vs Unopt per family ---

func benchExtract(b *testing.B, name string, v core.Variant) {
	g := benchGraph(b, name)
	if v == core.VariantOptimized {
		g = g.SortAdjacency()
	}
	b.SetBytes(int64(g.NumEdges()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Extract(g, core.Options{Variant: v})
		if err != nil {
			b.Fatal(err)
		}
		if res.NumChordalEdges() == 0 {
			b.Fatal("empty extraction")
		}
	}
}

func BenchmarkExtractEROpt(b *testing.B)   { benchExtract(b, "ER", core.VariantOptimized) }
func BenchmarkExtractERUnopt(b *testing.B) { benchExtract(b, "ER", core.VariantUnoptimized) }
func BenchmarkExtractGOpt(b *testing.B)    { benchExtract(b, "G", core.VariantOptimized) }
func BenchmarkExtractGUnopt(b *testing.B)  { benchExtract(b, "G", core.VariantUnoptimized) }
func BenchmarkExtractBOpt(b *testing.B)    { benchExtract(b, "B", core.VariantOptimized) }
func BenchmarkExtractBUnopt(b *testing.B)  { benchExtract(b, "B", core.VariantUnoptimized) }

// --- Figure 5: biological networks ---

func BenchmarkExtractBioUNTOpt(b *testing.B) { benchExtract(b, "GSE5140UNT", core.VariantOptimized) }
func BenchmarkExtractBioUNTUnopt(b *testing.B) {
	benchExtract(b, "GSE5140UNT", core.VariantUnoptimized)
}
func BenchmarkExtractBioNONOpt(b *testing.B) {
	benchExtract(b, "GSE17072NON", core.VariantOptimized)
}

// --- DESIGN.md §5 ablation: schedules ---

func benchSchedule(b *testing.B, s core.Schedule) {
	g := benchGraph(b, "B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(g, core.Options{Schedule: s}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleDataflow(b *testing.B)    { benchSchedule(b, core.ScheduleDataflow) }
func BenchmarkScheduleAsync(b *testing.B)       { benchSchedule(b, core.ScheduleAsync) }
func BenchmarkScheduleSynchronous(b *testing.B) { benchSchedule(b, core.ScheduleSynchronous) }

// --- Ablation: queue ordering ---

func BenchmarkQueueOrderSorted(b *testing.B) {
	g := benchGraph(b, "B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(g, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueueOrderArbitrary(b *testing.B) {
	g := benchGraph(b, "B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(g, core.Options{UnsortedQueue: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Section II baselines ---

func BenchmarkSerialDearing(b *testing.B) {
	g := benchGraph(b, "G")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := dearing.Extract(g, 0); r.NumChordalEdges() == 0 {
			b.Fatal("empty extraction")
		}
	}
}

func BenchmarkPartitioned(b *testing.B) {
	g := benchGraph(b, "G")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := partition.Extract(g, 8); len(r.Edges) == 0 {
			b.Fatal("empty extraction")
		}
	}
}

// BenchmarkShardedExtract measures the sharded pipeline (per-shard
// Algorithm 1 + chordality-preserving border reconciliation) against
// BenchmarkExtract* (whole-graph kernel) and BenchmarkPartitioned (the
// serial-kernel distributed baseline).
func BenchmarkShardedExtract(b *testing.B) {
	g := benchGraph(b, "G")
	b.SetBytes(int64(g.NumEdges()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := shard.Extract(g, shard.Options{Shards: 8})
		if err != nil {
			b.Fatal(err)
		}
		if r.NumChordalEdges() == 0 || !r.Chordal {
			b.Fatal("bad sharded extraction")
		}
	}
}

// BenchmarkShardedExtractStitchOnly isolates the reconciliation cost:
// spanning stitch only, no exact border admission.
func BenchmarkShardedExtractStitchOnly(b *testing.B) {
	g := benchGraph(b, "G")
	b.SetBytes(int64(g.NumEdges()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shard.Extract(g, shard.Options{Shards: 8, StitchOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batched multi-graph throughput (the paper's suite shape) ---

// batchSuiteSpecs is the 20-graph bio-suite shape: the four
// gene-correlation datasets at five seeds each, downscaled so one
// graph extracts in milliseconds — the regime where per-run pool
// spawning dominates and batching pays.
func batchSuiteSpecs() []chordal.Spec {
	var specs []chordal.Spec
	for seed := 1; seed <= 5; seed++ {
		for _, d := range []string{"gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non"} {
			specs = append(specs, chordal.Spec{Source: fmt.Sprintf("%s:32:%d", d, seed)})
		}
	}
	return specs
}

// BenchmarkBatch runs the suite through chordal.Batch: one persistent
// pool and shared budget, items overlapping. Compare against
// BenchmarkBatchSequential, the per-run baseline; cmd/benchrunner
// -batch-suite emits the same comparison as BENCH_batch.json.
func BenchmarkBatch(b *testing.B) {
	specs := batchSuiteSpecs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if n := res.Failed(); n != 0 {
			b.Fatalf("%d items failed", n)
		}
	}
}

// BenchmarkBatchSequential is the baseline the batch layer replaces:
// N independent Spec.Run calls, each spinning up and tearing down its
// own full-width worker set.
func BenchmarkBatchSequential(b *testing.B) {
	specs := batchSuiteSpecs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchDedup is the suite with repeated submissions — each
// dataset requested five times, the shape of re-run analyses over a
// shared suite. Batch collapses the 20 items onto 4 executions by
// canonical key; the sequential baseline pays all 20. This win is
// core-count independent, where BenchmarkBatch's overlap win needs
// multiple CPUs.
func BenchmarkBatchDedup(b *testing.B) {
	var specs []chordal.Spec
	for rep := 0; rep < 5; rep++ {
		for _, d := range []string{"gse5140-crt", "gse5140-unt", "gse17072-ctl", "gse17072-non"} {
			specs = append(specs, chordal.Spec{Source: d + ":32:7"})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chordal.Batch(context.Background(), specs, chordal.BatchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Unique != 4 || res.Failed() != 0 {
			b.Fatalf("unique=%d failed=%d", res.Unique, res.Failed())
		}
	}
}

// --- Verification cost ---

func BenchmarkVerifyChordal(b *testing.B) {
	g := benchGraph(b, "G")
	res, err := core.Extract(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	sub := res.ToGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !verify.IsChordal(sub) {
			b.Fatal("not chordal")
		}
	}
}

// --- Figure 7 kernel: how fast are the subset tests themselves ---

func BenchmarkSubsetRate(b *testing.B) {
	g := benchGraph(b, "ER")
	b.ResetTimer()
	var tested int64
	for i := 0; i < b.N; i++ {
		res, err := core.Extract(g, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		tested += res.TotalTested()
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(tested)/b.Elapsed().Seconds(), "tests/s")
	}
}

// --- Broader families (paper future work) ---

func BenchmarkExtractGNM(b *testing.B) {
	g := synth.GNM(1<<benchScale, 8<<benchScale, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(g, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractGeometric(b *testing.B) {
	n := 1 << benchScale
	g := synth.RandomGeometric(n, synth.GeometricRadiusForDegree(n, 8), 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(g, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractKTreeNoise(b *testing.B) {
	g, _ := synth.KTreePlusNoise(1<<benchScale, 3, 1<<benchScale, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Extract(g, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Elimination application kernels ---

func BenchmarkMinDegreeOrder(b *testing.B) {
	g := synth.GNM(1024, 4096, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if order := elimination.MinDegreeOrder(g); len(order) != 1024 {
			b.Fatal("bad order")
		}
	}
}

func BenchmarkFillChordalGuided(b *testing.B) {
	g, _ := synth.KTreePlusNoise(1024, 3, 512, 7)
	order, err := elimination.ChordalGuidedOrder(g, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := elimination.Fill(g, order); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Facade sanity under bench load ---

func BenchmarkFacadeExtract(b *testing.B) {
	g, err := chordal.GenerateRMAT(chordal.RMATER, 12, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chordal.Extract(g, chordal.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
