//go:build unix

package extio

import (
	"os"
	"syscall"
)

// mapFile maps the whole file read-only. The pages are file-backed, so
// they live outside the Go heap and the OS reclaims them under memory
// pressure — the property the out-of-core GOMEMLIMIT proof rests on.
func mapFile(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(data []byte) error {
	return syscall.Munmap(data)
}
