// Package extio is the out-of-core IO layer behind the external
// engine: it exposes the library's binary CSR format (graph.WriteBinary)
// lazily from disk, so extraction can run on graphs whose CSR does not
// fit in memory.
//
// MappedCSR opens a .bin file and decodes adjacency per vertex range on
// demand — the file is never materialized as a whole *graph.Graph. On
// unix the file is mmap'd (pages are file-backed, so the OS evicts them
// under memory pressure and they never count against the Go heap); on
// other platforms, or when mapping fails, a buffered ReadAt fallback
// reads exactly the byte ranges a decode needs. Both paths return
// byte-identical results.
//
// Extract (driver.go) streams contiguous vertex-range shards through the
// internal/shard per-shard kernel with a bounded number of shards
// resident, spilling per-shard subgraph edges to a temp file and merging
// them for the border reconciliation pass.
package extio

import (
	"encoding/binary"
	"fmt"
	"os"
	"slices"
	"sync/atomic"

	"chordal/internal/graph"
)

// Binary CSR layout (must match graph.WriteBinary): 4-byte magic
// "CHRD", uint32 version, uint64 n, uint64 adjLen, uint8 sorted, then
// n+1 little-endian int64 offsets and adjLen little-endian int32
// adjacency entries.
const (
	csrMagic   = "CHRD"
	headerSize = 4 + 4 + 8 + 8 + 1
)

// MappedCSR is a lazily-decoded view of a binary CSR file. It is safe
// for concurrent readers. Close releases the mapping and the file.
type MappedCSR struct {
	f    *os.File
	size int64
	// data is the whole-file mapping; nil in fallback (ReadAt) mode.
	data []byte

	n      int
	adjLen int64
	sorted bool

	// bytesRead counts bytes decoded through this view (both modes),
	// the IO-volume statistic the external engine reports.
	bytesRead atomic.Int64
}

// Open opens path as a binary CSR, validates its header and exact size,
// and memory-maps it when the platform allows, falling back to buffered
// reads otherwise.
func Open(path string) (*MappedCSR, error) { return open(path, true) }

// OpenFallback opens path with the buffered ReadAt reader even on
// platforms that support mmap — the parity half of the reader tests and
// the escape hatch when mapping is undesirable.
func OpenFallback(path string) (*MappedCSR, error) { return open(path, false) }

func open(path string, tryMap bool) (*MappedCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := newMapped(f, tryMap)
	if err != nil {
		// Every error path releases the file (and newMapped releases any
		// mapping it made) — no partial map leaks.
		f.Close()
		return nil, err
	}
	return m, nil
}

func newMapped(f *os.File, tryMap bool) (*MappedCSR, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < headerSize {
		return nil, fmt.Errorf("extio: %s: truncated header (%d bytes)", f.Name(), size)
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("extio: %s: reading header: %w", f.Name(), err)
	}
	if string(hdr[:4]) != csrMagic {
		return nil, fmt.Errorf("extio: %s: bad magic %q", f.Name(), hdr[:4])
	}
	version := binary.LittleEndian.Uint32(hdr[4:8])
	if version != 1 {
		return nil, fmt.Errorf("extio: %s: unsupported binary version %d", f.Name(), version)
	}
	n := binary.LittleEndian.Uint64(hdr[8:16])
	adjLen := binary.LittleEndian.Uint64(hdr[16:24])
	if n > 1<<33 || adjLen > 1<<40 {
		return nil, fmt.Errorf("extio: %s: implausible header (n=%d adjLen=%d)", f.Name(), n, adjLen)
	}
	// The format is fully determined by the header, so the file size must
	// match exactly: anything shorter is truncated, anything longer is
	// trailing garbage. Checking up front means decodes never run off the
	// end of the mapping.
	want := int64(headerSize) + int64(n+1)*8 + int64(adjLen)*4
	if size != want {
		return nil, fmt.Errorf("extio: %s: size %d does not match header (want %d): truncated or corrupt", f.Name(), size, want)
	}
	m := &MappedCSR{f: f, size: size, n: int(n), adjLen: int64(adjLen), sorted: hdr[24] == 1}
	if tryMap && size > 0 {
		if data, err := mapFile(f, size); err == nil {
			m.data = data
		}
		// Mapping failures are not fatal: the ReadAt fallback serves the
		// same bytes.
	}
	return m, nil
}

// Close releases the mapping (if any) and the underlying file.
func (m *MappedCSR) Close() error {
	var first error
	if m.data != nil {
		first = unmapFile(m.data)
		m.data = nil
	}
	if m.f != nil {
		if err := m.f.Close(); first == nil {
			first = err
		}
		m.f = nil
	}
	return first
}

// NumVertices returns the vertex count recorded in the header.
func (m *MappedCSR) NumVertices() int { return m.n }

// NumEdges returns the undirected edge count (adjLen / 2).
func (m *MappedCSR) NumEdges() int64 { return m.adjLen / 2 }

// Sorted reports the header's sorted-adjacency flag.
func (m *MappedCSR) Sorted() bool { return m.sorted }

// SizeBytes returns the file size — the bytes mapped when Mapped().
func (m *MappedCSR) SizeBytes() int64 { return m.size }

// Mapped reports whether the file is memory-mapped (false means the
// buffered ReadAt fallback is serving decodes).
func (m *MappedCSR) Mapped() bool { return m.data != nil }

// BytesRead returns the total bytes decoded through this view so far.
func (m *MappedCSR) BytesRead() int64 { return m.bytesRead.Load() }

// readRange returns the file bytes [off, off+length): a direct subslice
// of the mapping, or the provided scratch buffer filled by ReadAt.
func (m *MappedCSR) readRange(off, length int64, scratch []byte) ([]byte, error) {
	m.bytesRead.Add(length)
	if m.data != nil {
		return m.data[off : off+length], nil
	}
	if int64(cap(scratch)) < length {
		scratch = make([]byte, length)
	}
	scratch = scratch[:length]
	if _, err := m.f.ReadAt(scratch, off); err != nil {
		return nil, fmt.Errorf("extio: reading %d bytes at %d: %w", length, off, err)
	}
	return scratch, nil
}

// Offsets decodes offsets[lo..hi] (inclusive of hi, so hi-lo+1 values —
// the CSR bounds of vertices [lo, hi)) into dst, reallocating as needed.
func (m *MappedCSR) Offsets(lo, hi int, dst []int64) ([]int64, error) {
	if lo < 0 || hi > m.n || lo > hi {
		return nil, fmt.Errorf("extio: offset range [%d, %d] out of [0, %d]", lo, hi, m.n)
	}
	count := hi - lo + 1
	raw, err := m.readRange(int64(headerSize)+int64(lo)*8, int64(count)*8, nil)
	if err != nil {
		return nil, err
	}
	if cap(dst) < count {
		dst = make([]int64, count)
	}
	dst = dst[:count]
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return dst, nil
}

// adjacency decodes Adj[from:to) into dst, reallocating as needed.
func (m *MappedCSR) adjacency(from, to int64, dst []int32) ([]int32, error) {
	count := to - from
	raw, err := m.readRange(int64(headerSize)+int64(m.n+1)*8+from*4, count*4, nil)
	if err != nil {
		return nil, err
	}
	if int64(cap(dst)) < count {
		dst = make([]int32, count)
	}
	dst = dst[:count]
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return dst, nil
}

// Shard decodes the induced subgraph of the contiguous vertex range
// [lo, hi) with local ids 0..hi-lo-1 (global id = lo + local id),
// touching only that range's slice of the offsets and adjacency arrays.
// Adjacency lists are sorted, matching what graph.InducedSubgraph (the
// in-memory sharded engine's slicer) produces via the Builder — the
// byte-identity of the external engine depends on this.
func (m *MappedCSR) Shard(lo, hi int32) (*graph.Graph, error) {
	if lo < 0 || int(hi) > m.n || lo > hi {
		return nil, fmt.Errorf("extio: shard range [%d, %d) out of [0, %d)", lo, hi, m.n)
	}
	span := int(hi - lo)
	offs, err := m.Offsets(int(lo), int(hi), nil)
	if err != nil {
		return nil, err
	}
	adj, err := m.adjacency(offs[0], offs[span], nil)
	if err != nil {
		return nil, err
	}
	base := offs[0]
	sub := &graph.Graph{Offsets: make([]int64, span+1), Sorted: true}
	// First pass sizes the filtered lists, second pass fills them.
	for v := 0; v < span; v++ {
		kept := int64(0)
		for _, w := range adj[offs[v]-base : offs[v+1]-base] {
			if w >= lo && w < hi {
				kept++
			}
		}
		sub.Offsets[v+1] = sub.Offsets[v] + kept
	}
	sub.Adj = make([]int32, sub.Offsets[span])
	for v := 0; v < span; v++ {
		out := sub.Adj[sub.Offsets[v]:sub.Offsets[v]:sub.Offsets[v+1]]
		for _, w := range adj[offs[v]-base : offs[v+1]-base] {
			if w >= lo && w < hi {
				out = append(out, w-lo)
			}
		}
		if !slices.IsSorted(out) {
			slices.Sort(out)
		}
	}
	return sub, nil
}

// Graph decodes the entire file into an in-memory graph, byte-identical
// to graph.ReadBinary. The single-shard driver path uses it: with one
// partition there is nothing to stream, and the in-memory sharded
// engine likewise runs the kernel on the whole graph uncopied.
func (m *MappedCSR) Graph() (*graph.Graph, error) {
	offs, err := m.Offsets(0, m.n, nil)
	if err != nil {
		return nil, err
	}
	adj, err := m.adjacency(0, m.adjLen, nil)
	if err != nil {
		return nil, err
	}
	// In mapped mode the decode helpers return views; copy so the graph
	// outlives Close. Fallback mode already allocated fresh slices.
	if m.data != nil {
		offs = slices.Clone(offs)
		adj = slices.Clone(adj)
	}
	return &graph.Graph{Offsets: offs, Adj: adj, Sorted: m.sorted}, nil
}

// edgeChunkAdj bounds the adjacency entries decoded per Edges chunk.
const edgeChunkAdj = 1 << 18

// Edges streams every undirected edge exactly once as (u, v) with
// u < v, in ascending-u, adjacency-position order — the same order
// graph.Graph.Edges produces, which the shard reconciliation pass
// depends on. Adjacency is decoded in bounded chunks, never held whole.
func (m *MappedCSR) Edges(fn func(u, v int32)) error {
	var offBuf []int64
	var adjBuf []int32
	const vertexChunk = 1 << 16
	for lo := 0; lo < m.n; lo += vertexChunk {
		hi := min(lo+vertexChunk, m.n)
		offs, err := m.Offsets(lo, hi, offBuf)
		if err != nil {
			return err
		}
		offBuf = offs
		// Walk [lo, hi) in sub-ranges whose adjacency fits the chunk
		// bound (single huge vertices get a range of their own).
		for v := lo; v < hi; {
			end := v + 1
			for end < hi && offs[end+1-lo]-offs[v-lo] <= edgeChunkAdj {
				end++
			}
			adj, err := m.adjacency(offs[v-lo], offs[end-lo], adjBuf)
			if err != nil {
				return err
			}
			adjBuf = adj
			base := offs[v-lo]
			for u := v; u < end; u++ {
				for _, w := range adj[offs[u-lo]-base : offs[u+1-lo]-base] {
					if w > int32(u) {
						fn(int32(u), w)
					}
				}
			}
			v = end
		}
	}
	return nil
}

// Stats computes the input's degree statistics (the Table-I numbers)
// from one bounded-memory pass over the offsets array — the out-of-core
// substitute for graph.ComputeStats.
func (m *MappedCSR) Stats() (graph.Stats, error) {
	s := graph.Stats{Vertices: m.n, Edges: m.adjLen / 2}
	if m.n == 0 {
		return s, nil
	}
	var buf []int64
	sum, sumSq := 0.0, 0.0
	const chunk = 1 << 16
	for lo := 0; lo < m.n; lo += chunk {
		hi := min(lo+chunk, m.n)
		offs, err := m.Offsets(lo, hi, buf)
		if err != nil {
			return s, err
		}
		buf = offs
		for v := 0; v < hi-lo; v++ {
			d := float64(offs[v+1] - offs[v])
			sum += d
			sumSq += d * d
			if int(d) > s.MaxDegree {
				s.MaxDegree = int(d)
			}
		}
	}
	s.AvgDegree = sum / float64(m.n)
	s.DegreeVariance = sumSq/float64(m.n) - s.AvgDegree*s.AvgDegree
	s.EdgesByVertices = float64(s.Edges) / float64(m.n)
	return s, nil
}
