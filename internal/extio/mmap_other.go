//go:build !unix

package extio

import (
	"errors"
	"os"
)

// errNoMmap reports that this platform has no mapping path; Open falls
// back to the buffered ReadAt reader.
var errNoMmap = errors.New("extio: memory mapping unavailable on this platform")

// mapFile always fails on non-unix platforms; callers fall back to
// buffered reads.
func mapFile(_ *os.File, _ int64) ([]byte, error) { return nil, errNoMmap }

// unmapFile is never reached on non-unix platforms (mapFile never
// returns a mapping).
func unmapFile(_ []byte) error { return nil }
