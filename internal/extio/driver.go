package extio

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/partition"
	"chordal/internal/shard"
)

// Options configures an out-of-core extraction. The semantics-affecting
// fields (Shards, StitchOnly, Repair, Core's schedule/threshold) mirror
// shard.Options exactly — at equal values the merged edge set is
// byte-identical to the in-memory sharded engine. Resident and the
// worker split are speed-only.
type Options struct {
	// Shards is the number of contiguous vertex-range shards, clamped to
	// [1, NumVertices] like shard.Options.Shards.
	Shards int
	// Resident bounds how many decoded shards are held in memory at
	// once: the one being extracted plus up to Resident-1 prefetched by
	// the IO lane. <= 0 defaults to 2, the minimum that overlaps decode
	// with extraction; 1 disables prefetch entirely.
	Resident int
	// Core configures the per-shard kernels; Core.Workers is the total
	// budget, split one lease for IO and the rest for the kernels.
	Core core.Options
	// StitchOnly and Repair select the reconciliation depth, exactly as
	// in shard.Options.
	StitchOnly bool
	Repair     bool
	// OnShardIteration receives each shard kernel's iteration
	// statistics; shards extract one at a time here, so unlike the
	// in-memory sharded engine it is never invoked concurrently.
	OnShardIteration func(shard int, it core.IterationStats)
	// SpillDir is the directory for the per-shard edge spill file; empty
	// means os.TempDir.
	SpillDir string
}

// IOStats reports the IO behavior of one out-of-core run — the numbers
// the external engine surfaces through the run report.
type IOStats struct {
	// Mapped reports whether the input was memory-mapped (false: the
	// buffered ReadAt fallback served every decode).
	Mapped bool
	// BytesMapped is the input file size when Mapped, else 0.
	BytesMapped int64
	// BytesRead is the total bytes decoded from the input across shard
	// decodes, the edge-stream reconciliation passes, and stats.
	BytesRead int64
	// SpillBytes is the size of the per-shard edge spill file.
	SpillBytes int64
	// PeakResident estimates the high-water mark of decoded shard CSR
	// bytes held at once — the quantity Resident bounds.
	PeakResident int64
	// Shards and Resident echo the clamped shard count and residency
	// bound the run used.
	Shards   int
	Resident int
	// DecodeTime and KernelTime are the summed shard decode and kernel
	// wall-clock times; Overlap is how much of DecodeTime the
	// double-buffer hid behind KernelTime (decode+kernel minus the
	// phase's wall-clock, clamped at 0).
	DecodeTime time.Duration
	KernelTime time.Duration
	Overlap    time.Duration
}

// Result is a sharded-extraction result plus the IO statistics of the
// out-of-core run that produced it.
type Result struct {
	shard.Result
	IO IOStats
}

// decoded is one shard handed from the IO lane to the kernel lane.
type decoded struct {
	p      int
	lo     int32
	sub    *graph.Graph
	decode time.Duration
	err    error
}

// Extract runs the disk-shard driver on m: decode contiguous
// vertex-range shards (at most opts.Resident resident, shard N+1's
// decode overlapping shard N's extraction), run the internal/shard
// per-shard kernel on each, spill per-shard subgraph edges to a temp
// file, then merge and reconcile borders streaming the input's edges
// from disk. The merged edge set is byte-identical to
// shard.ExtractContext on the same graph at equal shard counts.
func Extract(ctx context.Context, m *MappedCSR, opts Options) (*Result, error) {
	start := time.Now()
	startRead := m.BytesRead()
	n := m.NumVertices()
	parts := 1
	if n > 0 {
		parts = partition.ClampParts(n, opts.Shards)
	}
	workers := parallel.WorkerCount(opts.Core.Workers)
	resident := opts.Resident
	if resident <= 0 {
		resident = 2
	}

	res := &Result{Result: shard.Result{NumVertices: n, Shards: make([]shard.ShardStat, parts)}}
	res.IO = IOStats{Mapped: m.Mapped(), Shards: parts, Resident: resident}
	if m.Mapped() {
		res.IO.BytesMapped = m.SizeBytes()
	}

	// runShard mirrors shard.ExtractContext's per-shard option
	// discipline exactly (post-passes off, events off) — the kernels
	// must behave identically for the differential byte-identity proof.
	runShard := func(p int, sub *graph.Graph, lo int32, kernelWorkers int) ([]core.Edge, error) {
		co := opts.Core
		co.Workers = kernelWorkers
		co.RepairMaximality = false
		co.StitchComponents = false
		co.OnEvent = nil
		co.OnIteration = nil
		if opts.OnShardIteration != nil {
			co.OnIteration = func(it core.IterationStats) { opts.OnShardIteration(p, it) }
		}
		kt := time.Now()
		r, err := core.ExtractContext(ctx, sub, co)
		res.IO.KernelTime += time.Since(kt)
		if err != nil {
			return nil, err
		}
		edges := make([]core.Edge, len(r.Edges))
		for i, e := range r.Edges {
			edges[i] = core.Edge{U: lo + e.U, V: lo + e.V}
		}
		res.Shards[p] = shard.ShardStat{
			Shard:         p,
			Vertices:      sub.NumVertices(),
			InteriorEdges: sub.NumEdges(),
			ChordalEdges:  len(r.Edges),
			Iterations:    len(r.Iterations),
			Duration:      r.Total,
		}
		return edges, nil
	}

	if parts == 1 {
		// One shard: nothing to stream or spill. Decode the whole graph
		// and run the kernel directly, like the in-memory engine's
		// single-shard path (which skips the induced-subgraph copy).
		dt := time.Now()
		g, err := m.Graph()
		if err != nil {
			return nil, err
		}
		res.IO.DecodeTime = time.Since(dt)
		res.IO.PeakResident = g.SizeBytes()
		edges, err := runShard(0, g, 0, workers)
		if err != nil {
			return nil, err
		}
		res.Edges = edges
	} else {
		if err := extractStreaming(ctx, m, res, parts, resident, workers, runShard, opts.SpillDir); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sOpts := shard.Options{Shards: parts, Core: opts.Core, StitchOnly: opts.StitchOnly, Repair: opts.Repair}
	if err := res.Reconcile(ctx, m.Edges, parts, sOpts); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Finalize(opts.Core.Workers)
	res.IO.BytesRead = m.BytesRead() - startRead
	res.Total = time.Since(start)
	return res, nil
}

// extractStreaming is the multi-shard lane split: one goroutine (the IO
// lease) decodes shards in index order into a channel whose capacity
// enforces the residency bound, while the caller's goroutine runs the
// kernels with the remaining workers and spills each shard's edges.
func extractStreaming(ctx context.Context, m *MappedCSR, res *Result, parts, resident, workers int,
	runShard func(int, *graph.Graph, int32, int) ([]core.Edge, error), spillDir string) error {
	n := res.NumVertices
	// One parallel lease goes to the IO lane; the kernels get the rest.
	kernelWorkers := max(workers-1, 1)

	sp, err := newSpill(spillDir)
	if err != nil {
		return err
	}
	defer sp.close()

	// ioCtx releases a blocked IO lane if the kernel lane bails early.
	ioCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Capacity resident-1: the channel buffer plus the shard the kernel
	// lane holds bound the decoded shards in flight to `resident`. (The
	// IO lane's in-progress decode transiently adds one more.)
	ch := make(chan decoded, resident-1)
	go func() {
		defer close(ch)
		for p := 0; p < parts; p++ {
			if ioCtx.Err() != nil {
				return
			}
			lo, hi := partition.Bounds(n, parts, p)
			dt := time.Now()
			sub, err := m.Shard(lo, hi)
			d := decoded{p: p, lo: lo, sub: sub, decode: time.Since(dt), err: err}
			select {
			case ch <- d:
				if err != nil {
					return
				}
			case <-ioCtx.Done():
				return
			}
		}
	}()

	phase := time.Now()
	var residentBytes, peak int64
	for d := range ch {
		if d.err != nil {
			return d.err
		}
		if err := ctx.Err(); err != nil {
			cancel()
			for range ch { // drain so the IO goroutine exits
			}
			return err
		}
		res.IO.DecodeTime += d.decode
		// Watermark: this shard plus whatever the IO lane has buffered.
		residentBytes = d.sub.SizeBytes() * int64(len(ch)+1)
		if residentBytes > peak {
			peak = residentBytes
		}
		edges, err := runShard(d.p, d.sub, d.lo, kernelWorkers)
		if err != nil {
			cancel()
			for range ch {
			}
			return err
		}
		// Evict: drop the decoded adjacency (the loop variable is the
		// only reference) and spill the extracted edges to disk instead
		// of accumulating them on the heap.
		if err := sp.write(edges); err != nil {
			cancel()
			for range ch {
			}
			return err
		}
	}
	wall := time.Since(phase)
	if hidden := res.IO.DecodeTime + res.IO.KernelTime - wall; hidden > 0 {
		res.IO.Overlap = hidden
	}
	res.IO.PeakResident = peak
	res.IO.SpillBytes = sp.bytes

	// The IO lane produced shards in index order and the kernel lane
	// consumed them in arrival order, so the spill file already holds
	// the per-shard edge sets in shard index order — the same merge
	// order shard.ExtractContext uses.
	merged, err := sp.readAll()
	if err != nil {
		return err
	}
	res.Edges = merged
	return nil
}

// spill is the temp file holding extracted per-shard edges: raw
// little-endian (u, v) int32 pairs appended in shard index order.
type spill struct {
	f     *os.File
	bw    *bufio.Writer
	bytes int64
	count int
}

func newSpill(dir string) (*spill, error) {
	f, err := os.CreateTemp(dir, "chordal-spill-*.edges")
	if err != nil {
		return nil, fmt.Errorf("extio: creating spill file: %w", err)
	}
	return &spill{f: f, bw: bufio.NewWriterSize(f, 1<<20)}, nil
}

func (s *spill) write(edges []core.Edge) error {
	var rec [8]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.V))
		if _, err := s.bw.Write(rec[:]); err != nil {
			return fmt.Errorf("extio: writing spill: %w", err)
		}
	}
	s.bytes += int64(len(edges)) * 8
	s.count += len(edges)
	return nil
}

// readAll flushes the writer and reads the whole spill back as one edge
// slice — the merge of the per-shard edge sets in write order.
func (s *spill) readAll() ([]core.Edge, error) {
	if err := s.bw.Flush(); err != nil {
		return nil, fmt.Errorf("extio: flushing spill: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	edges := make([]core.Edge, 0, s.count)
	br := bufio.NewReaderSize(s.f, 1<<20)
	var rec [8]byte
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("extio: reading spill: %w", err)
		}
		edges = append(edges, core.Edge{
			U: int32(binary.LittleEndian.Uint32(rec[0:4])),
			V: int32(binary.LittleEndian.Uint32(rec[4:8])),
		})
	}
	if len(edges) != s.count {
		return nil, fmt.Errorf("extio: spill holds %d edges, wrote %d", len(edges), s.count)
	}
	return edges, nil
}

// close removes the spill file; safe to call after any failure point.
func (s *spill) close() {
	name := s.f.Name()
	s.f.Close()
	os.Remove(name)
}
