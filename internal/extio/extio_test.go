package extio

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/partition"
	"chordal/internal/rmat"
	"chordal/internal/shard"
)

// testGraph generates a deterministic RMAT graph for the parity tests.
func testGraph(t *testing.T, preset rmat.Preset, scale int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := rmat.Generate(rmat.PresetParams(preset, scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// writeBin writes g to a temp .bin and returns its path.
func writeBin(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

// openBoth opens path mapped and in fallback mode; the caller runs the
// same assertions against each, proving reader parity.
func openBoth(t *testing.T, path string) map[string]*MappedCSR {
	t.Helper()
	mm, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := OpenFallback(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mm.Close(); fb.Close() })
	if fb.Mapped() {
		t.Fatal("OpenFallback produced a mapped reader")
	}
	return map[string]*MappedCSR{"mapped": mm, "fallback": fb}
}

func TestMappedHeaderAndWholeGraph(t *testing.T) {
	g := testGraph(t, rmat.G, 8, 7)
	path := writeBin(t, g)
	for mode, m := range openBoth(t, path) {
		if m.NumVertices() != g.NumVertices() || m.NumEdges() != g.NumEdges() || m.Sorted() != g.Sorted {
			t.Fatalf("%s: header (n=%d m=%d sorted=%t) != graph (n=%d m=%d sorted=%t)",
				mode, m.NumVertices(), m.NumEdges(), m.Sorted(), g.NumVertices(), g.NumEdges(), g.Sorted)
		}
		got, err := m.Graph()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Offsets, g.Offsets) || !reflect.DeepEqual(got.Adj, g.Adj) || got.Sorted != g.Sorted {
			t.Fatalf("%s: whole-graph decode differs from the source graph", mode)
		}
		if m.BytesRead() == 0 {
			t.Fatalf("%s: BytesRead not accounted", mode)
		}
	}
}

// TestShardMatchesInducedSubgraph pins the byte-identity contract: a
// decoded shard must equal what graph.InducedSubgraph builds for the
// same contiguous range — the input the in-memory sharded engine feeds
// its kernels.
func TestShardMatchesInducedSubgraph(t *testing.T) {
	g := testGraph(t, rmat.B, 8, 5)
	path := writeBin(t, g)
	n := g.NumVertices()
	for mode, m := range openBoth(t, path) {
		for _, parts := range []int{2, 3, 7} {
			for p := 0; p < parts; p++ {
				lo, hi := partition.Bounds(n, parts, p)
				ids := make([]int32, 0, hi-lo)
				for v := lo; v < hi; v++ {
					ids = append(ids, v)
				}
				want, _ := g.InducedSubgraph(ids)
				got, err := m.Shard(lo, hi)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Offsets, want.Offsets) || !reflect.DeepEqual(got.Adj, want.Adj) || got.Sorted != want.Sorted {
					t.Fatalf("%s parts=%d shard=%d: decoded shard differs from InducedSubgraph", mode, parts, p)
				}
			}
		}
	}
}

// TestEdgesMatchesGraphOrder pins the edge-stream order contract the
// reconciliation pass depends on.
func TestEdgesMatchesGraphOrder(t *testing.T) {
	g := testGraph(t, rmat.ER, 8, 3)
	path := writeBin(t, g)
	var want []core.Edge
	g.Edges(func(u, v int32) { want = append(want, core.Edge{U: u, V: v}) })
	for mode, m := range openBoth(t, path) {
		var got []core.Edge
		if err := m.Edges(func(u, v int32) { got = append(got, core.Edge{U: u, V: v}) }); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: edge stream differs from graph.Edges (got %d, want %d edges)", mode, len(got), len(want))
		}
	}
}

func TestStatsMatchesComputeStats(t *testing.T) {
	g := testGraph(t, rmat.G, 9, 11)
	want := graph.ComputeStats(g)
	for mode, m := range openBoth(t, writeBin(t, g)) {
		got, err := m.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s: stats %+v != %+v", mode, got, want)
		}
	}
}

// TestOpenRejectsCorruptFiles checks every corruption class returns a
// clean error — no panic, no file descriptor or mapping left behind
// (the error paths close before returning, so a leak would trip the
// race/goroutine checks in CI rather than this assertion).
func TestOpenRejectsCorruptFiles(t *testing.T) {
	g := testGraph(t, rmat.ER, 6, 1)
	good := writeBin(t, g)
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	write := func(name string, b []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]string{
		"empty":           write("empty.bin", nil),
		"shortHeader":     write("short.bin", raw[:10]),
		"badMagic":        write("magic.bin", append([]byte("XXXX"), raw[4:]...)),
		"badVersion":      write("version.bin", append(append([]byte{}, raw[:4]...), append([]byte{9, 0, 0, 0}, raw[8:]...)...)),
		"truncatedArrays": write("trunc.bin", raw[:len(raw)-5]),
		"trailingJunk":    write("junk.bin", append(append([]byte{}, raw...), 0xff)),
	}
	// An implausible header: n beyond the format's plausibility bound.
	huge := append([]byte{}, raw...)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<40)
	cases["implausible"] = write("huge.bin", huge)

	for name, p := range cases {
		for opener, open := range map[string]func(string) (*MappedCSR, error){"mapped": Open, "fallback": OpenFallback} {
			if m, err := open(p); err == nil {
				m.Close()
				t.Errorf("%s/%s: corrupt file opened without error", name, opener)
			}
		}
	}
}

// TestExtractMatchesShardPackage is the driver's half of the
// byte-identity proof: the out-of-core Extract must produce exactly the
// edge set of shard.ExtractContext on the same graph at equal shard
// counts — across shard counts, residency bounds, both readers, and the
// reconciliation depths.
func TestExtractMatchesShardPackage(t *testing.T) {
	g := testGraph(t, rmat.G, 8, 7)
	path := writeBin(t, g)
	for _, shards := range []int{1, 2, 5} {
		for _, stitchOnly := range []bool{false, true} {
			want, err := shard.ExtractContext(context.Background(), g,
				shard.Options{Shards: shards, StitchOnly: stitchOnly})
			if err != nil {
				t.Fatal(err)
			}
			for mode, open := range map[string]func(string) (*MappedCSR, error){"mapped": Open, "fallback": OpenFallback} {
				for _, resident := range []int{1, 2, 4} {
					m, err := open(path)
					if err != nil {
						t.Fatal(err)
					}
					got, err := Extract(context.Background(), m,
						Options{Shards: shards, Resident: resident, StitchOnly: stitchOnly, SpillDir: t.TempDir()})
					m.Close()
					if err != nil {
						t.Fatal(err)
					}
					if !got.Chordal {
						t.Fatalf("%s shards=%d resident=%d: merged subgraph not chordal", mode, shards, resident)
					}
					if !reflect.DeepEqual(got.Edges, want.Edges) {
						t.Fatalf("%s shards=%d resident=%d stitchOnly=%t: edge set differs from shard.ExtractContext (%d vs %d edges)",
							mode, shards, resident, stitchOnly, len(got.Edges), len(want.Edges))
					}
					interior := 0
					for _, st := range got.Shards {
						interior += st.ChordalEdges
					}
					if shards > 1 && got.IO.SpillBytes != int64(interior)*8 {
						t.Fatalf("%s shards=%d: spill %d bytes, want %d", mode, shards, got.IO.SpillBytes, interior*8)
					}
					if got.IO.PeakResident <= 0 {
						t.Fatalf("%s shards=%d: peak resident %d", mode, shards, got.IO.PeakResident)
					}
				}
			}
		}
	}
}

// TestExtractCancellation checks a canceled context surfaces promptly
// with no goroutine left blocked on the shard channel.
func TestExtractCancellation(t *testing.T) {
	g := testGraph(t, rmat.ER, 9, 2)
	m, err := Open(writeBin(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Extract(ctx, m, Options{Shards: 8, SpillDir: t.TempDir()}); err == nil {
		t.Fatal("canceled extraction returned nil error")
	}
}

// TestCutEdgesMatchesBorderTotal pins partition.CutEdges to the
// reconciliation pass's own border count — the two definitions of "edge
// cut" must agree.
func TestCutEdgesMatchesBorderTotal(t *testing.T) {
	g := testGraph(t, rmat.B, 8, 5)
	for _, parts := range []int{1, 2, 3, 8} {
		r, err := shard.Extract(g, shard.Options{Shards: parts})
		if err != nil {
			t.Fatal(err)
		}
		if cut := partition.CutEdges(g, parts); cut != int64(r.BorderTotal) {
			t.Fatalf("parts=%d: CutEdges %d != reconcile BorderTotal %d", parts, cut, r.BorderTotal)
		}
	}
}
