// Package biogen synthesizes gene-correlation networks with the
// structural signature of the paper's microarray inputs (GEO datasets
// GSE5140 and GSE17072).
//
// The real datasets are expression measurements that the paper turns
// into networks by connecting gene pairs whose Pearson correlation is at
// least 0.95. Those measurements are not redistributable, so this
// package substitutes a generative model that reproduces the properties
// the paper measures and attributes to them:
//
//   - tens of thousands of genes with an edge/vertex ratio of 14-23
//     (Table I);
//   - power-law-flavoured degree distribution with moderate maximum
//     degree but large variance;
//   - assortative structure: high-clustering vertices have few
//     neighbours, hubs have low clustering (Figure 2c);
//   - a wide shortest-path-length distribution (Figure 3c);
//   - around ten extraction iterations for Algorithm 1 (Figure 7b/c).
//
// The model plants correlated co-expression modules (complete-ish local
// groups, giving high clustering), threads them together with sparse
// chains of bridge genes (giving long shortest paths), and adds a small
// number of hub genes whose neighbours are spread across modules
// (giving hubs low clustering: assortativity in the paper's sense).
//
// Two construction paths are provided:
//
//   - Generate builds the network directly from the structural model.
//     This is the fast path used by benchmarks.
//   - GenerateExpression + CorrelationNetwork actually materializes a
//     synthetic expression matrix and thresholds pairwise Pearson
//     correlations, exercising the same pipeline the paper describes.
//     This path is quadratic in genes-per-block and is used by the
//     genecorrelation example and the tests that validate the direct
//     path against it.
package biogen

import (
	"fmt"
	"math"

	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/xrand"
)

// Params configures the structural generator.
type Params struct {
	// Genes is the number of vertices (paper: 45k-49k).
	Genes int
	// ModuleSize is the mean size of a co-expression module.
	ModuleSize int
	// ModuleDensity is the probability of an intra-module edge in a
	// sparse (peripheral) module.
	ModuleDensity float64
	// DenseFrac is the fraction of modules that are near-cliques
	// (tight co-expression cores, density ~0.9). The mixture gives the
	// bimodal clustering of Figure 2c — many high-clustering
	// low-degree vertices — while the sparse majority keeps the
	// maximal chordal subgraph small, as in §V.
	DenseFrac float64
	// OverlapFrac is the fraction of a module shared with its
	// predecessor. Overlaps model genes participating in several
	// pathways; they riddle the network with chordless cycles and are
	// the main reason real correlation networks are far from chordal.
	OverlapFrac float64
	// BridgeLen is the mean length of the inter-module bridge chains.
	BridgeLen int
	// Hubs is the number of high-degree genes (e.g. transcription
	// factors) connected across modules.
	Hubs int
	// HubDegree is the mean degree of a hub.
	HubDegree int
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds the generation goroutines; <=0 means GOMAXPROCS.
	// Sampling uses per-module PRNG streams, so Workers affects only
	// speed, never the generated network.
	Workers int
}

// Dataset names the four networks of the paper's bio suite.
type Dataset int

const (
	// GSE5140CRT models the creatine-treated mouse network.
	GSE5140CRT Dataset = iota
	// GSE5140UNT models the untreated mouse network.
	GSE5140UNT
	// GSE17072CTL models the normal (control) breast-tissue network.
	GSE17072CTL
	// GSE17072NON models the non-familial cancerous tissue network.
	GSE17072NON
)

// String returns the paper's label for the dataset.
func (d Dataset) String() string {
	switch d {
	case GSE5140CRT:
		return "GSE5140(CRT)"
	case GSE5140UNT:
		return "GSE5140(UNT)"
	case GSE17072CTL:
		return "GSE17072(CTL)"
	case GSE17072NON:
		return "GSE17072(NON)"
	}
	return fmt.Sprintf("Dataset(%d)", int(d))
}

// PresetParams returns parameters tuned so each dataset's Table-I row
// (vertex count and edge/vertex ratio) is approximated. Pass scale=1 for
// paper-size networks, or a smaller fraction (e.g. 8 means 1/8 the
// genes) for quick runs; edge ratios are preserved.
func PresetParams(d Dataset, downscale int, seed uint64) Params {
	if downscale < 1 {
		downscale = 1
	}
	var p Params
	switch d {
	case GSE5140CRT: // V=45,023 E/V=15.87 maxdeg=690
		p = Params{Genes: 45023, ModuleSize: 100, ModuleDensity: 0.21, DenseFrac: 0.25, OverlapFrac: 0.35, BridgeLen: 6, Hubs: 140, HubDegree: 420}
	case GSE5140UNT: // V=45,020 E/V=14.31 maxdeg=315
		p = Params{Genes: 45020, ModuleSize: 100, ModuleDensity: 0.20, DenseFrac: 0.25, OverlapFrac: 0.30, BridgeLen: 7, Hubs: 120, HubDegree: 300}
	case GSE17072CTL: // V=48,803 E/V=19.44 maxdeg=365
		p = Params{Genes: 48803, ModuleSize: 105, ModuleDensity: 0.225, DenseFrac: 0.25, OverlapFrac: 0.45, BridgeLen: 6, Hubs: 150, HubDegree: 350}
	case GSE17072NON: // V=48,803 E/V=22.73 maxdeg=463
		p = Params{Genes: 48803, ModuleSize: 105, ModuleDensity: 0.25, DenseFrac: 0.25, OverlapFrac: 0.48, BridgeLen: 5, Hubs: 170, HubDegree: 440}
	default:
		panic("biogen: unknown dataset")
	}
	p.Genes /= downscale
	if p.Genes < 64 {
		p.Genes = 64
	}
	p.Hubs /= downscale
	if p.Hubs < 2 {
		p.Hubs = 2
	}
	// Hub degree is a per-vertex property and does not shrink with the
	// network; only cap it so hubs cannot touch most of a tiny graph.
	if p.HubDegree > p.Genes/6 {
		p.HubDegree = p.Genes / 6
	}
	if p.HubDegree < 8 {
		p.HubDegree = 8
	}
	p.Seed = seed
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Genes < 8 {
		return fmt.Errorf("biogen: need at least 8 genes, got %d", p.Genes)
	}
	if p.ModuleSize < 3 || p.ModuleSize > p.Genes {
		return fmt.Errorf("biogen: module size %d out of range", p.ModuleSize)
	}
	if p.ModuleDensity <= 0 || p.ModuleDensity > 1 {
		return fmt.Errorf("biogen: module density %f out of (0,1]", p.ModuleDensity)
	}
	if p.BridgeLen < 1 {
		return fmt.Errorf("biogen: bridge length %d must be >= 1", p.BridgeLen)
	}
	if p.Hubs < 0 || p.HubDegree < 0 {
		return fmt.Errorf("biogen: negative hub parameters")
	}
	if p.DenseFrac < 0 || p.DenseFrac > 1 {
		return fmt.Errorf("biogen: dense fraction %f out of [0,1]", p.DenseFrac)
	}
	if p.OverlapFrac < 0 || p.OverlapFrac >= 0.9 {
		return fmt.Errorf("biogen: overlap fraction %f out of [0,0.9)", p.OverlapFrac)
	}
	return nil
}

// Generate builds the network from the structural model directly. The
// module layout is laid down serially (it is a sequential chain), then
// the quadratic intra-module edge sampling and the hub wiring run in
// parallel on per-module and per-hub PRNG streams into per-worker edge
// buffers, keeping the output deterministic in Seed.
func Generate(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.NewXoshiro256(p.Seed)
	n := p.Genes
	workers := parallel.WorkerCount(p.Workers)
	bufs := parallel.NewEdgeBuffers(workers)

	// Reserve the first Hubs ids for hub genes so hubs tend to be low
	// ids. (Gene ids in correlation studies carry no meaning; the paper
	// numbers vertices arbitrarily, or by BFS for connectivity.)
	hubEnd := p.Hubs

	// Lay genes out as a chain of overlapping modules, with an
	// occasional sparse bridge run between them. Overlaps (shared
	// pathway genes) connect consecutive modules and create chordless
	// cycles through the shared region; bridges add long shortest
	// paths (Figure 3c). Most modules are sparse co-expression groups,
	// a DenseFrac of them near-clique cores (Figure 2c's
	// high-clustering, low-degree population).
	type module struct {
		lo, hi  int // [lo, hi)
		density float64
	}
	var modules []module
	v := hubEnd
	for v < n {
		// Sparse group ~ Normal(ModuleSize, ModuleSize/4); dense cores
		// are small (a quarter of the group size), as tight
		// co-expression cliques are in real data.
		mean := float64(p.ModuleSize)
		density := p.ModuleDensity
		if rng.Float64() < p.DenseFrac {
			mean /= 4
			density = 0.9
		}
		size := int(mean + rng.NormFloat64()*mean/4)
		if size < 3 {
			size = 3
		}
		if v+size > n {
			size = n - v
		}
		if size >= 3 {
			modules = append(modules, module{lo: v, hi: v + size, density: density})
		}
		// Next module starts inside this one (overlap), except when a
		// bridge chain intervenes (about one module in six).
		step := int(float64(size) * (1 - p.OverlapFrac))
		if step < 1 {
			step = 1
		}
		if rng.Float64() < 1.0/6 {
			// Bridge run: a path of isolated genes after the module.
			prev := v + size - 1
			if prev >= n {
				prev = n - 1
			}
			v += size
			blen := 1 + rng.Intn(2*p.BridgeLen)
			for j := 0; j < blen && v < n; j++ {
				bufs.Add(0, int32(prev), int32(v))
				prev = v
				v++
			}
			// The next module starts at the bridge end and connects to
			// it through its first gene.
			if v < n {
				bufs.Add(0, int32(prev), int32(v))
			}
		} else {
			v += step
		}
	}

	// Intra-module edges at each module's density: the quadratic bulk of
	// generation, parallel over modules on disjoint PRNG streams.
	moduleStreams := xrand.Streams(p.Seed^0x5bd1e9955bd1e995, len(modules))
	parallel.For(len(modules), workers, 4, func(worker, mi int) {
		m := modules[mi]
		mrng := moduleStreams[mi]
		for i := m.lo; i < m.hi; i++ {
			for j := i + 1; j < m.hi; j++ {
				if mrng.Float64() < m.density {
					bufs.Add(worker, int32(i), int32(j))
				}
			}
		}
	})

	// Hubs: each hub connects to HubDegree genes drawn from distinct
	// random modules, at most a few per module, so hub neighbourhoods
	// are sparse among themselves (low hub clustering coefficient).
	// Parallel over hubs, one PRNG stream each.
	hubStreams := xrand.Streams(p.Seed^0xa24baed4963ee407, hubEnd)
	parallel.For(hubEnd, workers, 1, func(worker, h int) {
		hrng := hubStreams[h]
		deg := p.HubDegree/2 + hrng.Intn(p.HubDegree+1)
		for k := 0; k < deg; k++ {
			m := modules[hrng.Intn(len(modules))]
			t := m.lo + hrng.Intn(m.hi-m.lo)
			bufs.Add(worker, int32(h), int32(t))
		}
		// Hubs are "unlikely to be connected" to each other
		// (assortative networks, Newman 2002): add no hub-hub edges.
	})

	us, vs := bufs.Concat()
	g := graph.BuildFromEdgesWorkers(n, us, vs, p.Workers)
	// Scatter vertex ids: microarray probe ids carry no relation to
	// co-expression modules, so module members must not be contiguous
	// in id space. (This also matters for reproduction fidelity: the
	// extraction algorithm resolves an id-contiguous dense module in
	// far fewer iterations than a scattered one.)
	return g.RelabelWorkers(rng.Perm(n), p.Workers), nil
}

// ExpressionMatrix is a genes x samples matrix of synthetic expression
// levels, row-major.
type ExpressionMatrix struct {
	Genes   int
	Samples int
	Data    []float64
}

// At returns the expression of gene g in sample s.
func (m *ExpressionMatrix) At(g, s int) float64 { return m.Data[g*m.Samples+s] }

// GenerateExpression materializes a synthetic expression matrix whose
// correlation structure follows the structural model: genes in the same
// module share a latent profile plus small independent noise (pairwise
// correlation ≈ 0.95+), unrelated genes are independent, and each hub
// gene shares a weaker latent signal with its scattered targets.
//
// The returned assignments slice maps each gene to its module id (-1 for
// bridge and hub genes).
func GenerateExpression(genes, samples, moduleSize int, seed uint64) (*ExpressionMatrix, []int) {
	rng := xrand.NewXoshiro256(seed)
	m := &ExpressionMatrix{Genes: genes, Samples: samples, Data: make([]float64, genes*samples)}
	assign := make([]int, genes)
	for i := range assign {
		assign[i] = -1
	}
	moduleID := 0
	g := 0
	for g < genes {
		size := moduleSize/2 + rng.Intn(moduleSize+1)
		if size < 2 {
			size = 2
		}
		if g+size > genes {
			size = genes - g
		}
		// Latent module profile.
		latent := make([]float64, samples)
		for s := range latent {
			latent[s] = rng.NormFloat64()
		}
		for i := 0; i < size; i++ {
			// Correlated member: latent + noise. With noise sd sigma,
			// the true pairwise correlation is 1/(1+sigma^2); sigma =
			// 0.22 gives ~0.95, so whether a pair crosses the paper's
			// 0.95 threshold depends on sampling noise — the
			// finite-sample effect that makes real correlation
			// networks sparse, non-transitive, and non-chordal rather
			// than unions of cliques (the "noise" that refs [4,5]
			// sample away).
			const sigma = 0.22
			for s := 0; s < samples; s++ {
				m.Data[(g+i)*samples+s] = latent[s] + sigma*rng.NormFloat64()
			}
			assign[g+i] = moduleID
		}
		moduleID++
		g += size
		// An independent (uncorrelated) spacer gene between modules.
		if g < genes {
			for s := 0; s < samples; s++ {
				m.Data[g*samples+s] = rng.NormFloat64()
			}
			g++
		}
	}
	return m, assign
}

// CorrelationNetwork connects gene pairs whose Pearson correlation
// coefficient is at least threshold (the paper uses 0.95). It is
// O(genes^2 * samples): use only for modest sizes.
func CorrelationNetwork(m *ExpressionMatrix, threshold float64) *graph.Graph {
	n := m.Genes
	// Pre-normalize rows to mean 0, norm 1 so correlation is a dot
	// product.
	norm := make([]float64, n*m.Samples)
	for gi := 0; gi < n; gi++ {
		row := m.Data[gi*m.Samples : (gi+1)*m.Samples]
		mean := 0.0
		for _, x := range row {
			mean += x
		}
		mean /= float64(m.Samples)
		ss := 0.0
		dst := norm[gi*m.Samples : (gi+1)*m.Samples]
		for s, x := range row {
			d := x - mean
			dst[s] = d
			ss += d * d
		}
		inv := 0.0
		if ss > 0 {
			inv = 1 / math.Sqrt(ss)
		}
		for s := range dst {
			dst[s] *= inv
		}
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		ri := norm[i*m.Samples : (i+1)*m.Samples]
		for j := i + 1; j < n; j++ {
			rj := norm[j*m.Samples : (j+1)*m.Samples]
			dot := 0.0
			for s := range ri {
				dot += ri[s] * rj[s]
			}
			if dot >= threshold {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.Build()
}
