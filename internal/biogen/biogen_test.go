package biogen

import (
	"math"
	"reflect"
	"testing"

	"chordal/internal/analysis"
	"chordal/internal/graph"
)

func TestPresetNames(t *testing.T) {
	names := map[Dataset]string{
		GSE5140CRT:  "GSE5140(CRT)",
		GSE5140UNT:  "GSE5140(UNT)",
		GSE17072CTL: "GSE17072(CTL)",
		GSE17072NON: "GSE17072(NON)",
	}
	for d, want := range names {
		if d.String() != want {
			t.Fatalf("%v != %s", d, want)
		}
	}
}

func TestPresetParamsValidate(t *testing.T) {
	for _, d := range []Dataset{GSE5140CRT, GSE5140UNT, GSE17072CTL, GSE17072NON} {
		for _, down := range []int{1, 8, 64} {
			p := PresetParams(d, down, 1)
			if err := p.Validate(); err != nil {
				t.Fatalf("%v/%d: %v", d, down, err)
			}
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := PresetParams(GSE5140UNT, 16, 1)
	cases := []func(*Params){
		func(p *Params) { p.Genes = 2 },
		func(p *Params) { p.ModuleSize = 1 },
		func(p *Params) { p.ModuleDensity = 0 },
		func(p *Params) { p.ModuleDensity = 1.5 },
		func(p *Params) { p.BridgeLen = 0 },
		func(p *Params) { p.Hubs = -1 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if p.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := PresetParams(GSE5140UNT, 32, 77)
	g1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Adj, g2.Adj) {
		t.Fatal("same seed produced different networks")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateEdgeRatios(t *testing.T) {
	// The presets are tuned to the paper's Table-I edge/vertex ratios;
	// allow generous tolerance at downscale.
	wantRatio := map[Dataset]float64{
		GSE5140CRT:  15.87,
		GSE5140UNT:  14.31,
		GSE17072CTL: 19.44,
		GSE17072NON: 22.73,
	}
	for d, want := range wantRatio {
		g, err := Generate(PresetParams(d, 16, 3))
		if err != nil {
			t.Fatal(err)
		}
		got := float64(g.NumEdges()) / float64(g.NumVertices())
		if got < want*0.5 || got > want*1.6 {
			t.Fatalf("%v: E/V = %.2f, paper %.2f", d, got, want)
		}
	}
}

func TestAssortativeStructure(t *testing.T) {
	// Figure 2c: in the bio networks, hubs have low clustering and
	// high-clustering vertices have few neighbors. Check both via the
	// clustering-by-degree series and the assortativity coefficient.
	g, err := Generate(PresetParams(GSE5140UNT, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	pts := analysis.ClusteringByDegree(g)
	if len(pts) == 0 {
		t.Fatal("no clustering data")
	}
	// Average clustering among low-degree vertices should far exceed
	// that among the highest-degree decile.
	var lowSum, highSum float64
	var lowN, highN int
	maxDeg := pts[len(pts)-1].Degree
	for _, p := range pts {
		if p.Degree <= maxDeg/4 {
			lowSum += p.AvgCC * float64(p.Vertices)
			lowN += p.Vertices
		} else if p.Degree >= maxDeg*3/4 {
			highSum += p.AvgCC * float64(p.Vertices)
			highN += p.Vertices
		}
	}
	if lowN == 0 || highN == 0 {
		t.Skip("degree range too narrow at this downscale")
	}
	low, high := lowSum/float64(lowN), highSum/float64(highN)
	if low <= high {
		t.Fatalf("low-degree clustering %.3f not above hub clustering %.3f", low, high)
	}
	if r := analysis.DegreeAssortativity(g); r >= 0.1 {
		t.Fatalf("assortativity %.3f; bio-style networks should not be strongly positive", r)
	}
}

func TestHighOverallClustering(t *testing.T) {
	// Module structure must yield far higher mean clustering than an
	// R-MAT graph of similar density, whose coefficients sit below 0.1
	// at every degree in the paper's Figure 2a/2b.
	g, err := Generate(PresetParams(GSE17072CTL, 16, 9))
	if err != nil {
		t.Fatal(err)
	}
	if cc := analysis.GlobalClusteringCoefficient(g); cc < 0.15 {
		t.Fatalf("mean clustering %.3f, want >= 0.15 for modular network", cc)
	}
	// The dense-core population must exist: some vertices with
	// clustering coefficient above 0.6 (Figure 2c's upper band).
	ccs := analysis.ClusteringCoefficients(g)
	high := 0
	for _, c := range ccs {
		if c >= 0.6 {
			high++
		}
	}
	if high < g.NumVertices()/100 {
		t.Fatalf("only %d of %d vertices in the high-clustering band", high, g.NumVertices())
	}
}

func TestGenerateExpressionShape(t *testing.T) {
	m, assign := GenerateExpression(100, 20, 10, 42)
	if m.Genes != 100 || m.Samples != 20 {
		t.Fatalf("matrix %dx%d", m.Genes, m.Samples)
	}
	if len(m.Data) != 100*20 {
		t.Fatalf("data length %d", len(m.Data))
	}
	if len(assign) != 100 {
		t.Fatalf("assignments %d", len(assign))
	}
	// At returns the same values as the backing array.
	if m.At(3, 4) != m.Data[3*20+4] {
		t.Fatal("At indexing wrong")
	}
}

func TestExpressionCorrelationStructure(t *testing.T) {
	// Same-module genes are highly correlated; different-module genes
	// are not.
	m, assign := GenerateExpression(200, 200, 12, 7)
	corr := func(a, b int) float64 {
		var ma, mb float64
		for s := 0; s < m.Samples; s++ {
			ma += m.At(a, s)
			mb += m.At(b, s)
		}
		ma /= float64(m.Samples)
		mb /= float64(m.Samples)
		var num, da, db float64
		for s := 0; s < m.Samples; s++ {
			x, y := m.At(a, s)-ma, m.At(b, s)-mb
			num += x * y
			da += x * x
			db += y * y
		}
		return num / math.Sqrt(da*db)
	}
	var sameSum, diffSum float64
	var sameN, diffN int
	for a := 0; a < 50; a++ {
		for b := a + 1; b < 50; b++ {
			c := corr(a, b)
			if assign[a] >= 0 && assign[a] == assign[b] {
				sameSum += c
				sameN++
			} else {
				diffSum += c
				diffN++
			}
		}
	}
	if sameN == 0 || diffN == 0 {
		t.Fatal("degenerate module assignment")
	}
	if sameSum/float64(sameN) < 0.9 {
		t.Fatalf("intra-module correlation %.3f, want >= 0.9", sameSum/float64(sameN))
	}
	if math.Abs(diffSum/float64(diffN)) > 0.2 {
		t.Fatalf("inter-module correlation %.3f, want ~0", diffSum/float64(diffN))
	}
}

func TestCorrelationNetworkMatchesModules(t *testing.T) {
	m, assign := GenerateExpression(150, 300, 10, 11)
	g := CorrelationNetwork(m, 0.95)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every edge should join same-module genes (spacers are
	// independent), and most same-module pairs should be connected.
	intra, inter := 0, 0
	g.Edges(func(u, v int32) {
		if assign[u] >= 0 && assign[u] == assign[v] {
			intra++
		} else {
			inter++
		}
	})
	if intra == 0 {
		t.Fatal("no intra-module edges at threshold 0.95")
	}
	if inter > intra/10 {
		t.Fatalf("too many cross-module edges: %d vs %d intra", inter, intra)
	}
}

func TestCorrelationNetworkThresholdMonotone(t *testing.T) {
	m, _ := GenerateExpression(80, 100, 8, 13)
	loose := CorrelationNetwork(m, 0.8)
	tight := CorrelationNetwork(m, 0.99)
	if tight.NumEdges() > loose.NumEdges() {
		t.Fatalf("raising threshold added edges: %d -> %d", loose.NumEdges(), tight.NumEdges())
	}
}

func TestGenerateScattersIDs(t *testing.T) {
	// Vertex ids must not be module-contiguous: consecutive ids should
	// rarely be adjacent, unlike the pre-shuffle layout.
	g, err := Generate(PresetParams(GSE5140CRT, 32, 21))
	if err != nil {
		t.Fatal(err)
	}
	adjacentConsecutive := 0
	n := g.NumVertices()
	for v := 0; v+1 < n; v++ {
		if g.HasEdge(int32(v), int32(v+1)) {
			adjacentConsecutive++
		}
	}
	// Without shuffling nearly every consecutive pair inside a module
	// is adjacent (density 0.92); after shuffling the rate should be
	// near the overall density 2E/n^2.
	if float64(adjacentConsecutive)/float64(n) > 0.3 {
		t.Fatalf("ids look module-contiguous: %d/%d consecutive pairs adjacent", adjacentConsecutive, n)
	}
	_ = graph.ComputeStats(g)
}
