// Package rmat implements the Recursive MATrix (R-MAT) graph generator of
// Chakrabarti, Zhan and Faloutsos, the generator the paper uses for its
// synthetic test suite.
//
// R-MAT places each edge by recursively descending a 2^scale x 2^scale
// adjacency matrix: at every level one of the four quadrants is chosen
// with probabilities (A, B, C, D) that sum to one. The paper's three
// parameterizations are provided as presets:
//
//	RMAT-ER {0.25, 0.25, 0.25, 0.25}  Erdős–Rényi-like, normal degrees
//	RMAT-G  {0.45, 0.15, 0.15, 0.25}  skewed, small-world communities
//	RMAT-B  {0.55, 0.15, 0.15, 0.15}  heavily skewed, widest degree range
//
// Following the paper, the number of requested edges is eight times the
// number of vertices (EdgeFactor = 8) unless overridden, and the final
// simple graph may have slightly fewer edges after removing duplicates
// and self loops — exactly the effect visible in the paper's Table I,
// where RMAT-B loses the most edges to duplication.
package rmat

import (
	"fmt"

	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/xrand"
)

// Params configures a generation run.
type Params struct {
	// Scale sets the vertex count to 2^Scale.
	Scale int
	// EdgeFactor is the requested edges per vertex (paper: 8).
	EdgeFactor int
	// A, B, C, D are the quadrant probabilities; they must be positive
	// and sum to 1 within a small tolerance.
	A, B, C, D float64
	// Seed makes generation deterministic: the same Params yield the
	// same graph regardless of worker count or machine.
	Seed uint64
	// Noise, when positive, perturbs the quadrant probabilities at each
	// recursion level by up to +/-Noise (the "smoothing" commonly applied
	// to avoid exact self-similarity). Zero matches the classic model.
	Noise float64
	// Workers bounds the generation goroutines; <=0 means GOMAXPROCS.
	// It affects only speed, never the sampled graph.
	Workers int
}

// Preset names the paper's three parameterizations.
type Preset int

const (
	// ER is RMAT-ER: uniform quadrants, Erdős–Rényi-like.
	ER Preset = iota
	// G is RMAT-G: skewed degree distribution with subcommunities.
	G
	// B is RMAT-B: the widest degree distribution of the three.
	B
)

// String returns the paper's name for the preset.
func (p Preset) String() string {
	switch p {
	case ER:
		return "RMAT-ER"
	case G:
		return "RMAT-G"
	case B:
		return "RMAT-B"
	}
	return fmt.Sprintf("Preset(%d)", int(p))
}

// PresetParams returns the Params for one of the paper's presets at the
// given scale with the paper's edge factor of 8.
func PresetParams(p Preset, scale int, seed uint64) Params {
	params := Params{Scale: scale, EdgeFactor: 8, Seed: seed}
	switch p {
	case ER:
		params.A, params.B, params.C, params.D = 0.25, 0.25, 0.25, 0.25
	case G:
		params.A, params.B, params.C, params.D = 0.45, 0.15, 0.15, 0.25
	case B:
		params.A, params.B, params.C, params.D = 0.55, 0.15, 0.15, 0.15
	default:
		panic("rmat: unknown preset")
	}
	return params
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale < 1 || p.Scale > 30 {
		return fmt.Errorf("rmat: scale %d out of range [1,30]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("rmat: edge factor %d must be >= 1", p.EdgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: probabilities sum to %f, want 1", sum)
	}
	for _, q := range []float64{p.A, p.B, p.C, p.D} {
		if q <= 0 {
			return fmt.Errorf("rmat: probabilities must be positive")
		}
	}
	if p.Noise < 0 || p.Noise >= 0.1 {
		return fmt.Errorf("rmat: noise %f out of range [0,0.1)", p.Noise)
	}
	return nil
}

// genChunks is the fixed number of disjoint PRNG streams edge sampling
// is split into. It is a constant — not the worker or CPU count — so
// the sampled edge multiset depends only on the Params, never on the
// machine or on how many goroutines happened to run the chunks. That
// invariance is what lets the service layer cache generated inputs by
// canonical spec while granting each job a different worker lease.
const genChunks = 256

// Generate produces the simple undirected graph described by p. Edges
// are sampled in a fixed number of chunks on disjoint PRNG streams and
// deduplicated during CSR construction, so the result is deterministic
// in the Params alone: Workers changes only how fast the chunks run,
// not the graph.
func Generate(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := 1 << p.Scale
	m := int64(n) * int64(p.EdgeFactor)

	chunks := genChunks
	if int64(chunks) > m {
		chunks = int(m)
	}
	if chunks < 1 {
		chunks = 1
	}
	workers := parallel.WorkerCount(p.Workers)
	if workers > chunks {
		workers = chunks
	}

	// One edge buffer per chunk (not per worker): Concat gathers them in
	// chunk order, so the edge stream is identical whichever workers ran
	// which chunks.
	streams := xrand.Streams(p.Seed, chunks)
	bufs := parallel.NewEdgeBuffers(chunks)
	per := m / int64(chunks)
	extra := m % int64(chunks)
	parallel.For(chunks, workers, 1, func(_, c int) {
		count := per
		if int64(c) < extra {
			count++
		}
		rng := streams[c]
		bufs.Grow(c, int(count))
		for i := int64(0); i < count; i++ {
			u, v := sampleEdge(rng, p)
			bufs.Add(c, u, v)
		}
	})
	us, vs := bufs.Concat()
	return graph.BuildFromEdgesWorkers(n, us, vs, p.Workers), nil
}

// sampleEdge draws one edge by recursive quadrant descent.
func sampleEdge(rng *xrand.Xoshiro256, p Params) (int32, int32) {
	var u, v int32
	a, b, c := p.A, p.B, p.C
	for level := 0; level < p.Scale; level++ {
		al, bl, cl := a, b, c
		if p.Noise > 0 {
			// Symmetric perturbation keeps the expected mass per
			// quadrant unchanged while breaking self-similarity.
			al += p.Noise * (2*rng.Float64() - 1) * a
			bl += p.Noise * (2*rng.Float64() - 1) * b
			cl += p.Noise * (2*rng.Float64() - 1) * c
		}
		r := rng.Float64()
		switch {
		case r < al:
			// top-left: no bits set
		case r < al+bl:
			v |= 1 << uint(level)
		case r < al+bl+cl:
			u |= 1 << uint(level)
		default:
			u |= 1 << uint(level)
			v |= 1 << uint(level)
		}
	}
	return u, v
}
