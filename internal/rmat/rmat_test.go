package rmat

import (
	"reflect"
	"testing"

	"chordal/internal/graph"
)

func TestPresetParams(t *testing.T) {
	for _, p := range []Preset{ER, G, B} {
		params := PresetParams(p, 10, 1)
		if err := params.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if params.EdgeFactor != 8 {
			t.Fatalf("%v: edge factor %d", p, params.EdgeFactor)
		}
		if p.String() == "" {
			t.Fatalf("empty preset name")
		}
	}
	if ER.String() != "RMAT-ER" || G.String() != "RMAT-G" || B.String() != "RMAT-B" {
		t.Fatal("preset names differ from the paper's")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	base := PresetParams(ER, 10, 1)
	cases := []func(*Params){
		func(p *Params) { p.Scale = 0 },
		func(p *Params) { p.Scale = 31 },
		func(p *Params) { p.EdgeFactor = 0 },
		func(p *Params) { p.A = 0.5 },             // sum != 1
		func(p *Params) { p.A, p.D = -0.1, 0.65 }, // negative
		func(p *Params) { p.Noise = 0.5 },         // out of range
		func(p *Params) { p.Noise = -0.01 },       // negative
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		if p.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := PresetParams(G, 10, 123)
	p.Workers = 4
	g1, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g1.Adj, g2.Adj) || !reflect.DeepEqual(g1.Offsets, g2.Offsets) {
		t.Fatal("same seed produced different graphs")
	}
	// Worker count must not change the result: the sampler is split
	// into a fixed number of chunk streams, and workers only decide who
	// runs them. This invariance is what lets the service cache
	// generated inputs by canonical spec while varying each job's
	// worker lease.
	for _, w := range []int{1, 3, 7} {
		p.Workers = w
		g3, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g1.Adj, g3.Adj) || !reflect.DeepEqual(g1.Offsets, g3.Offsets) {
			t.Fatalf("workers=%d produced a different graph than workers=4", w)
		}
		if err := g3.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(PresetParams(ER, 8, 1))
	b, _ := Generate(PresetParams(ER, 8, 2))
	if reflect.DeepEqual(a.Adj, b.Adj) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateSizes(t *testing.T) {
	for _, scale := range []int{6, 10, 12} {
		g, err := Generate(PresetParams(ER, scale, 7))
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != 1<<scale {
			t.Fatalf("scale %d: V=%d", scale, g.NumVertices())
		}
		// Dedup loses some of the 8n requested edges but most remain.
		want := int64(8) << scale
		if g.NumEdges() < want*3/4 || g.NumEdges() > want {
			t.Fatalf("scale %d: E=%d, requested %d", scale, g.NumEdges(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDegreeVarianceOrdering(t *testing.T) {
	// The paper's Table I: variance grows ER < G < B by orders of
	// magnitude. Check the ordering at a small scale.
	variance := map[Preset]float64{}
	for _, p := range []Preset{ER, G, B} {
		g, err := Generate(PresetParams(p, 12, 99))
		if err != nil {
			t.Fatal(err)
		}
		variance[p] = graph.ComputeStats(g).DegreeVariance
	}
	if !(variance[ER] < variance[G] && variance[G] < variance[B]) {
		t.Fatalf("variance ordering violated: ER=%.1f G=%.1f B=%.1f",
			variance[ER], variance[G], variance[B])
	}
}

func TestMaxDegreeOrdering(t *testing.T) {
	// Table I also orders maximum degree ER << G << B.
	maxDeg := map[Preset]int{}
	for _, p := range []Preset{ER, G, B} {
		g, err := Generate(PresetParams(p, 12, 5))
		if err != nil {
			t.Fatal(err)
		}
		maxDeg[p] = g.MaxDegree()
	}
	if !(maxDeg[ER] < maxDeg[G] && maxDeg[G] < maxDeg[B]) {
		t.Fatalf("max degree ordering violated: %v", maxDeg)
	}
}

func TestNoiseStillValid(t *testing.T) {
	p := PresetParams(B, 10, 3)
	p.Noise = 0.05
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerClamping(t *testing.T) {
	p := PresetParams(ER, 4, 1) // 16 vertices, 128 edges
	p.Workers = 1000            // more workers than edges
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerateER(b *testing.B) {
	p := PresetParams(ER, 14, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}
