package rmat

import "runtime"

func gomaxprocs() int { return runtime.GOMAXPROCS(0) }
