package chordalalg

import (
	"testing"

	"chordal/internal/graph"
	"chordal/internal/synth"
)

// isCliqueIn reports whether every pair of vertices in c is adjacent in
// g.
func isCliqueIn(g *graph.Graph, c []int32) bool {
	for i := 0; i < len(c); i++ {
		for j := i + 1; j < len(c); j++ {
			if !g.HasEdge(c[i], c[j]) {
				return false
			}
		}
	}
	return true
}

// isMaximalCliqueIn reports whether c is a clique no outside vertex
// extends.
func isMaximalCliqueIn(g *graph.Graph, c []int32) bool {
	if !isCliqueIn(g, c) {
		return false
	}
	in := make(map[int32]bool, len(c))
	for _, v := range c {
		in[v] = true
	}
	// Any extender must be a neighbor of c[0]; count adjacencies into c.
	for _, w := range g.Neighbors(c[0]) {
		if in[w] {
			continue
		}
		adj := 0
		for _, v := range c {
			if g.HasEdge(w, v) {
				adj++
			}
		}
		if adj == len(c) {
			return false
		}
	}
	return true
}

// TestMaximalCliquesTable pins MaximalCliques on fixtures with known
// clique structure: a k-tree on n vertices has exactly n-k maximal
// cliques, all of size k+1 (the seed clique plus one per attached
// vertex); a path on n vertices has n-1 maximal cliques (its edges);
// a complete graph has one. Every reported clique must be a genuinely
// maximal clique, and together they must cover every edge.
func TestMaximalCliquesTable(t *testing.T) {
	cases := []struct {
		name       string
		g          *graph.Graph
		wantCount  int
		wantSize   int // 0 = sizes vary; checked per clique otherwise
		wantChords bool
	}{
		{"path-6", path(6), 5, 2, false},
		{"complete-5", complete(5), 1, 5, false},
		{"ktree-50-3", synth.KTree(50, 3, 1), 47, 4, false},
		{"ktree-200-4", synth.KTree(200, 4, 13), 196, 5, false},
		{"ktree-120-8", synth.KTree(120, 8, 7), 112, 9, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cliques, err := MaximalCliques(c.g)
			if err != nil {
				t.Fatal(err)
			}
			if len(cliques) != c.wantCount {
				t.Fatalf("%d maximal cliques, want %d", len(cliques), c.wantCount)
			}
			covered := 0
			seen := make(map[[2]int32]bool)
			for _, cl := range cliques {
				if c.wantSize > 0 && len(cl) != c.wantSize {
					t.Fatalf("clique %v has size %d, want %d", cl, len(cl), c.wantSize)
				}
				if !isMaximalCliqueIn(c.g, cl) {
					t.Fatalf("reported clique %v is not a maximal clique", cl)
				}
				for i := 0; i < len(cl); i++ {
					for j := i + 1; j < len(cl); j++ {
						u, v := cl[i], cl[j]
						if u > v {
							u, v = v, u
						}
						if !seen[[2]int32{u, v}] {
							seen[[2]int32{u, v}] = true
							covered++
						}
					}
				}
			}
			if int64(covered) != c.g.NumEdges() {
				t.Errorf("cliques cover %d edges, graph has %d", covered, c.g.NumEdges())
			}
		})
	}
}

// TestDecomposeKTreeTable pins Decompose on k-trees, whose treewidth is
// exactly k by construction: the decomposition's width must equal k,
// every bag must be a clique, every edge must live inside at least one
// bag, and parent links must point strictly later in the elimination
// order (roots at -1) — the structural invariants of a clique tree.
func TestDecomposeKTreeTable(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"ktree-50-3", synth.KTree(50, 3, 1), 3},
		{"ktree-200-4", synth.KTree(200, 4, 13), 4},
		{"ktree-120-8", synth.KTree(120, 8, 7), 8},
		{"path-10", path(10), 1},
		{"complete-6", complete(6), 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			td, err := Decompose(c.g)
			if err != nil {
				t.Fatal(err)
			}
			if td.Width != c.k {
				t.Fatalf("width %d, want %d", td.Width, c.k)
			}
			n := c.g.NumVertices()
			if len(td.Bags) != n || len(td.Parent) != n || len(td.Order) != n {
				t.Fatalf("decomposition sizes bags=%d parent=%d order=%d, want %d each",
					len(td.Bags), len(td.Parent), len(td.Order), n)
			}
			// Each vertex's bag is indexed by its order position and
			// starts with the vertex itself.
			inBag := make(map[[2]int32]bool)
			for i, bag := range td.Bags {
				if len(bag) == 0 || bag[0] != td.Order[i] {
					t.Fatalf("bag %d = %v does not lead with order[%d]=%d", i, bag, i, td.Order[i])
				}
				if !isCliqueIn(c.g, bag) {
					t.Fatalf("bag %v is not a clique", bag)
				}
				if p := td.Parent[i]; p != -1 && (p <= int32(i) || int(p) >= n) {
					t.Fatalf("bag %d parent %d not strictly later in the order", i, p)
				}
				for _, v := range bag {
					inBag[[2]int32{int32(i), v}] = true
				}
			}
			// Edge coverage: {v, w} must appear together in the bag of
			// whichever endpoint comes first in the elimination order.
			pos := make([]int32, n)
			for i, v := range td.Order {
				pos[v] = int32(i)
			}
			for v := 0; v < n; v++ {
				for _, w := range c.g.Neighbors(int32(v)) {
					if w < int32(v) {
						continue
					}
					first := pos[v]
					if pos[w] < first {
						first = pos[w]
					}
					if !inBag[[2]int32{first, int32(v)}] || !inBag[[2]int32{first, w}] {
						t.Fatalf("edge {%d,%d} not covered by bag %d", v, w, first)
					}
				}
			}
		})
	}
}
