package chordalalg

import (
	"testing"
	"testing/quick"

	"chordal/internal/graph"
)

func TestMISKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"edgeless-4", graph.NewBuilder(4).Build(), 4},
		{"K5", complete(5), 1},
		{"path-5", path(5), 3},
		{"path-6", path(6), 3},
		{"triangle+tail", buildGraph(5, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}), 2},
		{"star", buildGraph(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}), 4},
	}
	for _, c := range cases {
		set, err := MaximumIndependentSet(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(set) != c.want {
			t.Fatalf("%s: |MIS| = %d, want %d", c.name, len(set), c.want)
		}
		// Independence.
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				if c.g.HasEdge(set[i], set[j]) {
					t.Fatalf("%s: returned set not independent", c.name)
				}
			}
		}
	}
}

func TestMISRejectsNonChordal(t *testing.T) {
	c4 := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if _, err := MaximumIndependentSet(c4); err == nil {
		t.Fatal("C4 accepted")
	}
	if _, _, err := CliqueCover(c4); err == nil {
		t.Fatal("CliqueCover accepted C4")
	}
}

func TestMISMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, mRaw uint16) bool {
		g := randomChordal(13, 2+int(mRaw%70), seed)
		set, err := MaximumIndependentSet(g)
		if err != nil {
			return false
		}
		return len(set) == bruteForceMIS(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func bruteForceMIS(g *graph.Graph) int {
	n := g.NumVertices()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		var members []int32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				members = append(members, int32(v))
			}
		}
		if len(members) <= best {
			continue
		}
		ok := true
		for i := 0; i < len(members) && ok; i++ {
			for j := i + 1; j < len(members); j++ {
				if g.HasEdge(members[i], members[j]) {
					ok = false
					break
				}
			}
		}
		if ok {
			best = len(members)
		}
	}
	return best
}

func TestCliqueCoverValid(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := randomChordal(100, 600, seed)
		cover, num, err := CliqueCover(g)
		if err != nil {
			t.Fatal(err)
		}
		if num != len(cover) {
			t.Fatal("count mismatch")
		}
		// Partition: every vertex exactly once.
		seen := make([]bool, g.NumVertices())
		for _, part := range cover {
			for _, v := range part {
				if seen[v] {
					t.Fatalf("vertex %d covered twice", v)
				}
				seen[v] = true
			}
			// Each part is a clique.
			for i := 0; i < len(part); i++ {
				for j := i + 1; j < len(part); j++ {
					if !g.HasEdge(part[i], part[j]) {
						t.Fatalf("part %v is not a clique", part)
					}
				}
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("vertex %d uncovered", v)
			}
		}
		// Perfection: cover size equals independence number.
		alpha, err := IndependenceNumber(g)
		if err != nil {
			t.Fatal(err)
		}
		if num != alpha {
			t.Fatalf("clique cover %d != independence number %d", num, alpha)
		}
	}
}

func TestCliqueCoverEdgeless(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	cover, num, err := CliqueCover(g)
	if err != nil || num != 3 || len(cover) != 3 {
		t.Fatalf("edgeless cover %v (%v)", cover, err)
	}
}
