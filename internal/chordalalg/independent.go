package chordalalg

import (
	"chordal/internal/graph"
)

// MaximumIndependentSet returns a maximum independent set of the
// chordal graph g — NP-hard in general, linear-time here by the
// classic greedy of Gavril (1972): walk a perfect elimination ordering
// and take every vertex none of whose already-taken neighbors precede
// it; equivalently, take each simplicial vertex and discard its
// neighborhood.
func MaximumIndependentSet(g *graph.Graph) ([]int32, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	excluded := make([]bool, n)
	var set []int32
	for _, v := range order {
		if excluded[v] {
			continue
		}
		set = append(set, v)
		for _, w := range g.Neighbors(v) {
			excluded[w] = true
		}
	}
	return set, nil
}

// CliqueCover returns a partition of the chordal graph's vertices into
// the minimum number of cliques, along with that number. On perfect
// graphs the clique cover number equals the independence number, and
// the same PEO greedy produces both: each independent-set pick v opens
// the clique {v} ∪ N(v); every other vertex joins the clique opened by
// the pick that excluded it first.
func CliqueCover(g *graph.Graph) (cover [][]int32, num int, err error) {
	order, err := PEO(g)
	if err != nil {
		return nil, 0, err
	}
	n := g.NumVertices()
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	for _, v := range order {
		if owner[v] != -1 {
			continue
		}
		// v is a greedy independent-set pick: open clique index.
		idx := int32(len(cover))
		cover = append(cover, []int32{v})
		owner[v] = idx
		for _, w := range g.Neighbors(v) {
			if owner[w] == -1 {
				// Claimed by v's clique. {v} ∪ later(v) is a clique in
				// the PEO sense only for later neighbors; to guarantee
				// each part is a clique, assign w only if it is
				// adjacent to every current member — for a simplicial
				// pick, N(v) is a clique, so this always holds.
				owner[w] = idx
				cover[idx] = append(cover[idx], w)
			}
		}
	}
	return cover, len(cover), nil
}

// IndependenceNumber returns the size of a maximum independent set of
// the chordal graph g.
func IndependenceNumber(g *graph.Graph) (int, error) {
	set, err := MaximumIndependentSet(g)
	if err != nil {
		return 0, err
	}
	return len(set), nil
}
