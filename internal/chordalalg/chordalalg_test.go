package chordalalg

import (
	"sort"
	"testing"
	"testing/quick"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/verify"
	"chordal/internal/xrand"
)

func buildGraph(n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// randomChordal extracts a chordal subgraph from a random graph; the
// result is a realistic chordal test instance.
func randomChordal(n, m int, seed uint64) *graph.Graph {
	rng := xrand.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	res, err := core.Extract(b.Build(), core.Options{})
	if err != nil {
		panic(err)
	}
	return res.ToGraph()
}

func TestPEORejectsNonChordal(t *testing.T) {
	c4 := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if _, err := PEO(c4); err == nil {
		t.Fatal("C4 accepted")
	}
	if _, err := MaxClique(c4); err == nil {
		t.Fatal("MaxClique accepted C4")
	}
	if _, _, err := Coloring(c4); err == nil {
		t.Fatal("Coloring accepted C4")
	}
	if _, err := Decompose(c4); err == nil {
		t.Fatal("Decompose accepted C4")
	}
}

func TestMaxCliqueKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K6", complete(6), 6},
		{"path", path(7), 2},
		{"triangle-plus-tail", buildGraph(5, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}), 3},
		{"edgeless", graph.NewBuilder(3).Build(), 1},
	}
	for _, c := range cases {
		clique, err := MaxClique(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(clique) != c.want {
			t.Fatalf("%s: clique size %d, want %d", c.name, len(clique), c.want)
		}
		// The returned set really is a clique.
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				if !c.g.HasEdge(clique[i], clique[j]) {
					t.Fatalf("%s: returned set not a clique", c.name)
				}
			}
		}
	}
}

func TestColoringProperAndOptimal(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := randomChordal(120, 700, seed)
		colors, k, err := Coloring(g)
		if err != nil {
			t.Fatal(err)
		}
		// Proper coloring.
		g.Edges(func(u, v int32) {
			if colors[u] == colors[v] {
				t.Fatalf("edge {%d,%d} monochromatic", u, v)
			}
		})
		// Optimal: chromatic number equals clique number on chordal
		// graphs.
		clique, err := MaxClique(g)
		if err != nil {
			t.Fatal(err)
		}
		if k != len(clique) {
			t.Fatalf("seed %d: colors %d != clique %d", seed, k, len(clique))
		}
		kk, err := ChromaticNumber(g)
		if err != nil || kk != k {
			t.Fatalf("ChromaticNumber %d/%v vs %d", kk, err, k)
		}
	}
}

func TestMaxCliqueMatchesBruteForce(t *testing.T) {
	// On small random chordal graphs the PEO-based clique must match
	// exhaustive search.
	f := func(seed uint64, mRaw uint16) bool {
		g := randomChordal(14, 2+int(mRaw%80), seed)
		clique, err := MaxClique(g)
		if err != nil {
			return false
		}
		return len(clique) == bruteForceClique(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceClique finds the maximum clique size by subset enumeration
// (n <= ~20).
func bruteForceClique(g *graph.Graph) int {
	n := g.NumVertices()
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		var members []int32
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				members = append(members, int32(v))
			}
		}
		if len(members) <= best {
			continue
		}
		ok := true
		for i := 0; i < len(members) && ok; i++ {
			for j := i + 1; j < len(members); j++ {
				if !g.HasEdge(members[i], members[j]) {
					ok = false
					break
				}
			}
		}
		if ok {
			best = len(members)
		}
	}
	return best
}

func TestDecomposeValidity(t *testing.T) {
	for _, seed := range []uint64{4, 5} {
		g := randomChordal(80, 500, seed)
		td, err := Decompose(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumVertices()
		if len(td.Bags) != n || len(td.Parent) != n {
			t.Fatal("decomposition size mismatch")
		}
		// Property 1: every vertex appears in some bag (its own).
		inBag := make([]bool, n)
		for _, bag := range td.Bags {
			for _, v := range bag {
				inBag[v] = true
			}
		}
		for v, ok := range inBag {
			if !ok {
				t.Fatalf("vertex %d missing from all bags", v)
			}
		}
		// Property 2: every edge is inside some bag.
		g.Edges(func(u, v int32) {
			for _, bag := range td.Bags {
				hasU, hasV := false, false
				for _, x := range bag {
					if x == u {
						hasU = true
					}
					if x == v {
						hasV = true
					}
				}
				if hasU && hasV {
					return
				}
			}
			t.Fatalf("edge {%d,%d} not covered by any bag", u, v)
		})
		// Width consistency: width+1 = max bag, and equals clique size.
		maxBag := 0
		for _, bag := range td.Bags {
			if len(bag) > maxBag {
				maxBag = len(bag)
			}
		}
		if td.Width != maxBag-1 {
			t.Fatalf("width %d vs max bag %d", td.Width, maxBag)
		}
		clique, _ := MaxClique(g)
		if td.Width != len(clique)-1 {
			t.Fatalf("treewidth %d != clique-1 %d", td.Width, len(clique)-1)
		}
		tw, err := Treewidth(g)
		if err != nil || tw != td.Width {
			t.Fatalf("Treewidth %d/%v", tw, err)
		}
		// Parents point forward in the order.
		for i, p := range td.Parent {
			if p >= 0 && int(p) <= i {
				t.Fatalf("bag %d parent %d not later", i, p)
			}
		}
	}
}

func TestMaximalCliquesCoverAndAreCliques(t *testing.T) {
	g := randomChordal(60, 400, 6)
	cliques, err := MaximalCliques(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) == 0 || len(cliques) > g.NumVertices() {
		t.Fatalf("%d maximal cliques for %d vertices", len(cliques), g.NumVertices())
	}
	// Each is a clique; the largest matches MaxClique.
	best := 0
	for _, c := range cliques {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				if !g.HasEdge(c[i], c[j]) {
					t.Fatal("reported clique is not a clique")
				}
			}
		}
		if len(c) > best {
			best = len(c)
		}
	}
	mc, _ := MaxClique(g)
	if best != len(mc) {
		t.Fatalf("largest maximal clique %d, MaxClique %d", best, len(mc))
	}
	// Every edge lies in some maximal clique.
	g.Edges(func(u, v int32) {
		for _, c := range cliques {
			hasU, hasV := false, false
			for _, x := range c {
				if x == u {
					hasU = true
				}
				if x == v {
					hasV = true
				}
			}
			if hasU && hasV {
				return
			}
		}
		t.Fatalf("edge {%d,%d} in no maximal clique", u, v)
	})
}

func TestMaximalCliquesK4(t *testing.T) {
	cliques, err := MaximalCliques(complete(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 1 || len(cliques[0]) != 4 {
		t.Fatalf("K4 maximal cliques: %v", cliques)
	}
	c := append([]int32(nil), cliques[0]...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	for i, v := range c {
		if v != int32(i) {
			t.Fatalf("K4 clique %v", c)
		}
	}
}

func TestPEOOfExtractedSubgraphs(t *testing.T) {
	// End-to-end: extract from a random graph, then the PEO pipeline
	// must succeed on the result (this is the paper's motivating
	// application path).
	g := randomChordal(200, 1500, 7)
	order, err := PEO(g)
	if err != nil {
		t.Fatal(err)
	}
	if !verify.IsPEO(g, order) {
		t.Fatal("returned order is not a PEO")
	}
}
