// Package chordalalg implements the polynomial-time combinatorial
// algorithms on chordal graphs that motivate the paper: computing the
// maximum clique, the chromatic number with an optimal coloring, and a
// tree decomposition (hence treewidth). All of them are NP-hard on
// general graphs but linear-time given a perfect elimination ordering,
// which is exactly why extracting chordal subgraphs is useful.
package chordalalg

import (
	"fmt"

	"chordal/internal/graph"
	"chordal/internal/verify"
)

// PEO computes a perfect elimination ordering of g via maximum
// cardinality search. It returns an error if g is not chordal.
func PEO(g *graph.Graph) ([]int32, error) {
	order := verify.MCSOrder(g)
	if !verify.IsPEO(g, order) {
		return nil, fmt.Errorf("chordalalg: graph is not chordal")
	}
	return order, nil
}

// laterNeighbors returns, for each vertex v, its neighbors that appear
// after v in the ordering. In a PEO, {v} ∪ laterNeighbors(v) is a
// clique, and every maximal clique arises this way.
func laterNeighbors(g *graph.Graph, order []int32) [][]int32 {
	n := g.NumVertices()
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	out := make([][]int32, n)
	for _, v := range order {
		for _, w := range g.Neighbors(v) {
			if pos[w] > pos[v] {
				out[v] = append(out[v], w)
			}
		}
	}
	return out
}

// MaxClique returns a maximum clique of the chordal graph g.
func MaxClique(g *graph.Graph) ([]int32, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, nil
	}
	later := laterNeighbors(g, order)
	best := int32(order[0])
	bestSize := len(later[best])
	for _, v := range order {
		if len(later[v]) > bestSize {
			best, bestSize = v, len(later[v])
		}
	}
	clique := append([]int32{best}, later[best]...)
	return clique, nil
}

// Coloring optimally colors the chordal graph g and returns the color
// of each vertex along with the number of colors used, which equals
// both the chromatic number and the maximum clique size (chordal graphs
// are perfect). Colors are assigned greedily in PEO-reverse order.
func Coloring(g *graph.Graph) (colors []int32, numColors int, err error) {
	order, err := PEO(g)
	if err != nil {
		return nil, 0, err
	}
	n := g.NumVertices()
	colors = make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	// Reverse PEO: each vertex's already-colored neighbors form a
	// clique, so first-fit is optimal.
	used := make([]bool, 0)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		deg := g.Degree(v)
		if deg+1 > len(used) {
			used = append(used, make([]bool, deg+1-len(used))...)
		}
		for j := range used {
			used[j] = false
		}
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c >= 0 && int(c) < len(used) {
				used[c] = true
			}
		}
		c := int32(0)
		for used[c] {
			c++
		}
		colors[v] = c
		if int(c)+1 > numColors {
			numColors = int(c) + 1
		}
	}
	return colors, numColors, nil
}

// ChromaticNumber returns the chromatic number of the chordal graph g.
func ChromaticNumber(g *graph.Graph) (int, error) {
	_, k, err := Coloring(g)
	return k, err
}

// TreeDecomposition is a clique-tree-style decomposition: Bags[i] is
// the bag of vertex order[i] ({v} ∪ later neighbors), and Parent[i]
// indexes the bag this bag attaches to (-1 for roots). Width is the
// treewidth, max bag size - 1.
type TreeDecomposition struct {
	Order  []int32
	Bags   [][]int32
	Parent []int32
	Width  int
}

// Decompose builds a tree decomposition of the chordal graph g from its
// PEO: each vertex's bag is itself plus its later neighbors, attached to
// the bag of its earliest later neighbor.
func Decompose(g *graph.Graph) (*TreeDecomposition, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	later := laterNeighbors(g, order)
	td := &TreeDecomposition{
		Order:  order,
		Bags:   make([][]int32, n),
		Parent: make([]int32, n),
		Width:  0,
	}
	for i, v := range order {
		bag := append([]int32{v}, later[v]...)
		td.Bags[i] = bag
		if len(bag)-1 > td.Width {
			td.Width = len(bag) - 1
		}
		// Parent bag: the later neighbor earliest in the order.
		td.Parent[i] = -1
		var bestPos int32 = -1
		for _, w := range later[v] {
			if bestPos == -1 || pos[w] < bestPos {
				bestPos = pos[w]
			}
		}
		if bestPos >= 0 {
			td.Parent[i] = bestPos
		}
	}
	return td, nil
}

// Treewidth returns the treewidth of the chordal graph g (max clique
// size minus one).
func Treewidth(g *graph.Graph) (int, error) {
	td, err := Decompose(g)
	if err != nil {
		return 0, err
	}
	return td.Width, nil
}

// MaximalCliques enumerates the maximal cliques of the chordal graph g
// (a chordal graph has at most |V| of them). Each clique is {v} ∪
// later(v) for vertices v whose clique is not contained in a
// predecessor's clique.
func MaximalCliques(g *graph.Graph) ([][]int32, error) {
	order, err := PEO(g)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	pos := make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	later := laterNeighbors(g, order)
	var cliques [][]int32
	for i, v := range order {
		// The clique of v is maximal unless some earlier vertex u in
		// the PEO has {v} ∪ later(v) ⊆ {u} ∪ later(u). Standard test:
		// v's clique is dominated iff some neighbor u before v in the
		// order has later-neighborhood of size |later(v)| + 1 whose
		// members include v and all of later(v); equivalently check
		// the immediately preceding attachment. Use the classical
		// counting criterion: clique is maximal iff no earlier
		// neighbor u of v satisfies |later(u)| >= |later(v)|+1 and
		// later(u) ⊇ {v} ∪ later(v).
		dominated := false
		for _, u := range g.Neighbors(v) {
			if pos[u] < int32(i) && len(later[u]) >= len(later[v])+1 {
				if containsAll(later[u], v, later[v]) {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			cliques = append(cliques, append([]int32{v}, later[v]...))
		}
	}
	return cliques, nil
}

// containsAll reports whether set (a later-neighbor list) contains v and
// every element of rest. Membership is tested by linear scan; later
// lists are clique-sized, so this stays near-linear overall.
func containsAll(set []int32, v int32, rest []int32) bool {
	contains := func(x int32) bool {
		for _, y := range set {
			if y == x {
				return true
			}
		}
		return false
	}
	if !contains(v) {
		return false
	}
	for _, x := range rest {
		if !contains(x) {
			return false
		}
	}
	return true
}
