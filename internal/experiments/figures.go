package experiments

import (
	"fmt"
	"io"
	"time"

	"chordal/internal/analysis"
	"chordal/internal/biogen"
	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/machine"
	"chordal/internal/rmat"
)

// Fig2 regenerates Figure 2: average clustering coefficient versus
// number of neighbors for RMAT-ER, RMAT-B (both at the small scale)
// and one biological network, binned for readability.
func Fig2(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Figure 2: average clustering coefficient vs number of neighbors ==")
	series := []struct {
		name string
		gen  func() (*graph.Graph, error)
	}{
		{fmt.Sprintf("RMAT-ER-%d", cfg.SmallScale), func() (*graph.Graph, error) { return cfg.genRMAT(rmat.ER, cfg.SmallScale) }},
		{fmt.Sprintf("RMAT-B-%d", cfg.SmallScale), func() (*graph.Graph, error) { return cfg.genRMAT(rmat.B, cfg.SmallScale) }},
		{"GSE5140(UNT)", func() (*graph.Graph, error) { return cfg.genBio(biogen.GSE5140UNT) }},
	}
	for _, s := range series {
		g, err := s.gen()
		if err != nil {
			return err
		}
		pts := analysis.ClusteringByDegree(g)
		fmt.Fprintf(w, "\n-- %s (mean clustering %.3f) --\n", s.name, analysis.GlobalClusteringCoefficient(g))
		fmt.Fprintf(w, "%10s %12s %10s\n", "degree", "avg-cc", "vertices")
		// Bin by powers of two above 16 to keep output readable.
		printed := 0
		binLo := 1
		for binLo <= pts[len(pts)-1].Degree {
			binHi := binLo
			if binLo >= 16 {
				binHi = binLo * 2
			}
			var sum float64
			var cnt int
			for _, p := range pts {
				if p.Degree >= binLo && p.Degree <= binHi {
					sum += p.AvgCC * float64(p.Vertices)
					cnt += p.Vertices
				}
			}
			if cnt > 0 {
				label := fmt.Sprintf("%d", binLo)
				if binHi > binLo {
					label = fmt.Sprintf("%d-%d", binLo, binHi)
				}
				fmt.Fprintf(w, "%10s %12.4f %10d\n", label, sum/float64(cnt), cnt)
				printed++
			}
			binLo = binHi + 1
		}
		if printed == 0 {
			fmt.Fprintln(w, "(no vertices of degree >= 1)")
		}
	}
	return nil
}

// Fig3 regenerates Figure 3: the distribution of shortest path lengths
// (ordered-pair counts per distance, all-sources BFS as at the paper's
// scale 10).
func Fig3(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Figure 3: distribution of shortest path lengths ==")
	series := []struct {
		name string
		gen  func() (*graph.Graph, error)
	}{
		{fmt.Sprintf("RMAT-ER-%d", cfg.SmallScale), func() (*graph.Graph, error) { return cfg.genRMAT(rmat.ER, cfg.SmallScale) }},
		{fmt.Sprintf("RMAT-B-%d", cfg.SmallScale), func() (*graph.Graph, error) { return cfg.genRMAT(rmat.B, cfg.SmallScale) }},
		{"GSE5140(UNT)", func() (*graph.Graph, error) { return cfg.genBio(biogen.GSE5140UNT) }},
	}
	for _, s := range series {
		g, err := s.gen()
		if err != nil {
			return err
		}
		// All sources up to 4096 vertices, else sampled.
		sources := 0
		if g.NumVertices() > 4096 {
			sources = 2048
		}
		h := analysis.ShortestPathHistogram(g, sources)
		fmt.Fprintf(w, "\n-- %s --\n", s.name)
		fmt.Fprintf(w, "%8s %14s\n", "length", "frequency")
		for d := 1; d < len(h); d++ {
			fmt.Fprintf(w, "%8d %14d\n", d, h[d])
		}
	}
	return nil
}

// scalingTable prints one strong-scaling block: measured host times per
// worker count for both variants, next to the Cray XMT and Opteron
// model projections derived from the run's instrumented trace. On a
// single-core host the measured columns are flat (there is no
// parallelism to buy); the model columns then carry the scaling shape
// of the paper's two platforms.
func scalingTable(w io.Writer, cfg Config, name string, g *graph.Graph) error {
	procs := cfg.procAxis()
	xmt := machine.DefaultXMT()
	amd := machine.DefaultCacheCPU()
	fmt.Fprintf(w, "\n-- %s: V=%d E=%d --\n", name, g.NumVertices(), g.NumEdges())
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s %12s %12s\n",
		"procs", "host-Unopt", "host-Opt", "XMT-Unopt", "XMT-Opt", "AMD-Unopt", "AMD-Opt")
	hline(w, 86)

	// One instrumented reference run per variant feeds the models; a
	// model then projects the whole processor axis (its inputs — queue
	// sizes and scan work — do not depend on worker count).
	traces := map[core.Variant]machine.Trace{}
	for _, v := range []core.Variant{core.VariantUnoptimized, core.VariantOptimized} {
		res, _, err := cfg.measure(g, cfg.maxProcs(), v)
		if err != nil {
			return err
		}
		traces[v] = machine.TraceFromResult(res, g.NumEdges())
	}
	modelAxis := machine.PowersOfTwo(xmt.MaxProcessors())
	for i, p := range modelAxis {
		hostU, hostO := "-", "-"
		if i < len(procs) {
			_, tU, err := cfg.measure(g, procs[i], core.VariantUnoptimized)
			if err != nil {
				return err
			}
			_, tO, err := cfg.measure(g, procs[i], core.VariantOptimized)
			if err != nil {
				return err
			}
			hostU, hostO = fmtDur(tU), fmtDur(tO)
		}
		xu := xmt.Predict(traces[core.VariantUnoptimized], p)
		xo := xmt.Predict(traces[core.VariantOptimized], p)
		au := amd.Predict(traces[core.VariantUnoptimized], p)
		ao := amd.Predict(traces[core.VariantOptimized], p)
		fmt.Fprintf(w, "%8d %12s %12s %12s %12s %12s %12s\n",
			p, hostU, hostO, fmtDur(xu), fmtDur(xo), fmtDur(au), fmtDur(ao))
	}
	return nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.0fµs", float64(d)/float64(time.Microsecond))
	}
}

// Fig4 regenerates Figure 4: strong scaling (workers 1..max) and weak
// scaling (growing scales) of the synthetic graphs, measured on the
// host (the Opteron role) with XMT projections alongside.
func Fig4(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Figure 4: synthetic graph scaling (host measured; XMT modeled) ==")
	for _, p := range allPresets {
		for _, scale := range cfg.Scales {
			g, err := cfg.genRMAT(p, scale)
			if err != nil {
				return err
			}
			if err := scalingTable(w, cfg, fmt.Sprintf("%s(%d)", p, scale), g); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fig5 regenerates Figure 5: scaling on the four gene-correlation
// networks.
func Fig5(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Figure 5: biological network scaling (host measured; XMT modeled) ==")
	for _, d := range allDatasets {
		g, err := cfg.genBio(d)
		if err != nil {
			return err
		}
		if err := scalingTable(w, cfg, d.String(), g); err != nil {
			return err
		}
	}
	return nil
}

// Fig6 regenerates Figure 6: relative performance of the two platforms
// on identical graphs (the paper uses RMAT-ER and RMAT-B at scale 24
// generated once and run on both machines).
func Fig6(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Figure 6: relative platform performance on identical inputs ==")
	scale := cfg.Scales[len(cfg.Scales)-1]
	for _, p := range []rmat.Preset{rmat.ER, rmat.B} {
		g, err := cfg.genRMAT(p, scale)
		if err != nil {
			return err
		}
		if err := scalingTable(w, cfg, fmt.Sprintf("%s(%d)", p, scale), g); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nReading: compare host columns (cache-CPU role) against XMT columns;")
	fmt.Fprintln(w, "the paper's crossover appears as XMT-Opt undercutting the host at high")
	fmt.Fprintln(w, "processor counts on RMAT-ER, while the host stays competitive on RMAT-B.")
	return nil
}

// Fig7 regenerates Figure 7: queue sizes per iteration and iteration
// counts, for the synthetic scales and the biological networks.
func Fig7(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Figure 7: queue sizes and iteration counts ==")
	row := func(name string, g *graph.Graph) error {
		res, err := core.Extract(g, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n-- %s: %d iterations --\n", name, len(res.Iterations))
		fmt.Fprintf(w, "%6s %14s %14s %14s\n", "iter", "|Q1|", "tested", "accepted")
		for _, it := range res.Iterations {
			fmt.Fprintf(w, "%6d %14d %14d %14d\n", it.Index, it.QueueSize, it.EdgesTested, it.EdgesAccepted)
		}
		return nil
	}
	for _, scale := range cfg.Scales {
		g, err := cfg.genRMAT(rmat.B, scale)
		if err != nil {
			return err
		}
		if err := row(fmt.Sprintf("RMAT-B(%d)", scale), g); err != nil {
			return err
		}
	}
	for _, d := range allDatasets {
		g, err := cfg.genBio(d)
		if err != nil {
			return err
		}
		if err := row(d.String(), g); err != nil {
			return err
		}
	}
	return nil
}
