package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps every experiment under a second for CI.
func tinyConfig() Config {
	return Config{
		Scales:       []int{8},
		BioDownscale: 64,
		MaxProcs:     2,
		Seed:         1,
		SmallScale:   8,
		Trials:       1,
	}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, name := range Names() {
		if name == "all" {
			continue
		}
		var buf bytes.Buffer
		if err := Run(&buf, name, tinyConfig()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", name)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "fig99", tinyConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Content(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "RMAT-ER(8)", "RMAT-G(8)", "RMAT-B(8)",
		"GSE5140(CRT)", "GSE5140(UNT)", "GSE17072(CTL)", "GSE17072(NON)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestPctContent(t *testing.T) {
	var buf bytes.Buffer
	if err := Pct(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "%") {
		t.Fatal("Pct output has no percentages")
	}
}

func TestFig7ShowsIterations(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig7(&buf, tinyConfig()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "iterations") {
		t.Fatal("Fig7 output missing iteration counts")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if len(cfg.Scales) == 0 || cfg.SmallScale <= 0 || cfg.Trials <= 0 {
		t.Fatalf("bad default config %+v", cfg)
	}
	if cfg.maxProcs() < 1 {
		t.Fatal("maxProcs < 1")
	}
	if len(Names()) != 11 {
		t.Fatalf("Names() = %v", Names())
	}
}
