// Package experiments regenerates every table and figure of the paper's
// evaluation section (Table I, Figures 2-7, Table II, and the §V
// chordal-edge percentages) on graphs produced by this library's
// generators. The paper's absolute scales (2^24-2^26 vertices, a
// 128-processor Cray XMT) exceed this environment, so each experiment
// runs at configurable reduced scale, measures real multicore scaling
// on the host, and projects the Cray XMT side through the calibrated
// analytic model in internal/machine. Shape comparisons — who wins,
// by what factor, where the crossovers fall — are the reproduction
// target; EXPERIMENTS.md records paper-versus-measured for each one.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"chordal/internal/biogen"
	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/machine"
	"chordal/internal/rmat"
)

// Config parameterizes the experiment suite.
type Config struct {
	// Scales are the R-MAT scales standing in for the paper's 24-26.
	Scales []int
	// BioDownscale divides the gene counts of the biological presets
	// (1 = paper-sized networks, ~45k genes).
	BioDownscale int
	// MaxProcs bounds the measured worker sweep; <= 0 uses GOMAXPROCS.
	MaxProcs int
	// Seed drives all generators.
	Seed uint64
	// SmallScale is the scale used for the structure figures (2, 3);
	// the paper uses 10 (1024 vertices).
	SmallScale int
	// Trials repeats each timing measurement, keeping the fastest (the
	// usual noise-suppression for wall-clock scaling runs).
	Trials int
}

// DefaultConfig returns the scales used when none are specified:
// small enough to run the full suite in minutes on a laptop.
func DefaultConfig() Config {
	return Config{
		Scales:       []int{14, 15, 16},
		BioDownscale: 8,
		MaxProcs:     0,
		Seed:         20120910, // ICPP 2012 began September 10, 2012
		SmallScale:   10,
		Trials:       3,
	}
}

func (c Config) maxProcs() int {
	if c.MaxProcs > 0 {
		return c.MaxProcs
	}
	return runtime.GOMAXPROCS(0)
}

// allPresets lists the paper's synthetic families in Table-I order.
var allPresets = []rmat.Preset{rmat.ER, rmat.G, rmat.B}

// allDatasets lists the paper's biological networks in Table-I order.
var allDatasets = []biogen.Dataset{
	biogen.GSE5140CRT, biogen.GSE5140UNT, biogen.GSE17072CTL, biogen.GSE17072NON,
}

// genRMAT generates a preset at scale with the config seed.
func (c Config) genRMAT(p rmat.Preset, scale int) (*graph.Graph, error) {
	return rmat.Generate(rmat.PresetParams(p, scale, c.Seed))
}

// genBio generates a dataset at the config downscale.
func (c Config) genBio(d biogen.Dataset) (*graph.Graph, error) {
	return biogen.Generate(biogen.PresetParams(d, c.BioDownscale, c.Seed))
}

// measure runs one extraction with the given worker count and variant,
// repeating Trials times and keeping the fastest run.
func (c Config) measure(g *graph.Graph, workers int, variant core.Variant) (*core.Result, time.Duration, error) {
	trials := c.Trials
	if trials < 1 {
		trials = 1
	}
	var best *core.Result
	bestTime := time.Duration(1<<63 - 1)
	for i := 0; i < trials; i++ {
		res, err := core.Extract(g, core.Options{Workers: workers, Variant: variant})
		if err != nil {
			return nil, 0, err
		}
		if res.Total < bestTime {
			best, bestTime = res, res.Total
		}
	}
	return best, bestTime, nil
}

// procAxis returns the processor counts of the measured sweep.
func (c Config) procAxis() []int {
	return machine.PowersOfTwo(c.maxProcs())
}

// hline writes a separator line.
func hline(w io.Writer, n int) {
	for i := 0; i < n; i++ {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}

// Run dispatches one named experiment ("table1", "fig2" ... "fig7",
// "table2", "pct", or "all").
func Run(w io.Writer, name string, cfg Config) error {
	switch name {
	case "table1":
		return Table1(w, cfg)
	case "fig2":
		return Fig2(w, cfg)
	case "fig3":
		return Fig3(w, cfg)
	case "fig4":
		return Fig4(w, cfg)
	case "fig5":
		return Fig5(w, cfg)
	case "fig6":
		return Fig6(w, cfg)
	case "fig7":
		return Fig7(w, cfg)
	case "table2":
		return Table2(w, cfg)
	case "pct":
		return Pct(w, cfg)
	case "ablation":
		return Ablation(w, cfg)
	case "all":
		for _, exp := range []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table2", "pct", "ablation"} {
			if err := Run(w, exp, cfg); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}

// Names lists the runnable experiments.
func Names() []string {
	return []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table2", "pct", "ablation", "all"}
}
