package experiments

import (
	"fmt"
	"io"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/machine"
)

// Table1 regenerates the paper's Table I: structural properties of the
// test suite (vertices, edges, average/maximum degree, degree variance,
// edges per vertex).
func Table1(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Table I: properties of the test suite ==")
	fmt.Fprintf(w, "%-18s %12s %14s %8s %8s %12s %8s\n",
		"Group", "Vertices", "Edges", "AvgDeg", "MaxDeg", "Variance", "E/V")
	hline(w, 86)
	for _, p := range allPresets {
		for _, scale := range cfg.Scales {
			g, err := cfg.genRMAT(p, scale)
			if err != nil {
				return err
			}
			writeTable1Row(w, fmt.Sprintf("%s(%d)", p, scale), g)
		}
	}
	for _, d := range allDatasets {
		g, err := cfg.genBio(d)
		if err != nil {
			return err
		}
		writeTable1Row(w, d.String(), g)
	}
	return nil
}

func writeTable1Row(w io.Writer, name string, g *graph.Graph) {
	s := graph.ComputeStats(g)
	fmt.Fprintf(w, "%-18s %12d %14d %8.0f %8d %12.0f %8.2f\n",
		name, s.Vertices, s.Edges, s.AvgDegree, s.MaxDegree, s.DegreeVariance, s.EdgesByVertices)
}

// Table2 regenerates the paper's Table II: speedup per network. The
// measured column is the host multicore at the sweep maximum (the
// paper's Opteron column at 32); the XMT columns are the model's
// 128-processor projection for the unoptimized and optimized variants.
func Table2(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== Table II: speedups (models @ paper machine sizes) ==")
	fmt.Fprintln(w, "at-scale columns: models driven by the measured trace as-is;")
	fmt.Fprintln(w, "paper-scale columns: the same trace extrapolated to the paper's input")
	fmt.Fprintln(w, "size (scale-24 R-MAT / full-size gene networks), where per-iteration")
	fmt.Fprintln(w, "sync stops dominating — these are the numbers comparable to Table II.")
	maxP := cfg.maxProcs()
	fmt.Fprintf(w, "%-18s %11s %11s %11s | %11s %11s %11s %11s\n",
		"Group", "XMT-Un", "XMT-Opt", "AMD-Un", "XMT*-Un", "XMT*-Opt", "AMD*-Un", fmt.Sprintf("Host@%d", maxP))
	hline(w, 112)
	row := func(name string, g *graph.Graph, paperFactor float64) error {
		xmt := machine.DefaultXMT()
		amd := machine.DefaultCacheCPU()
		type speeds struct{ at, paper float64 }
		xmtSpeed := map[core.Variant]speeds{}
		var amdAt, amdPaper float64
		for _, v := range []core.Variant{core.VariantUnoptimized, core.VariantOptimized} {
			res, _, err := cfg.measure(g, maxP, v)
			if err != nil {
				return err
			}
			tr := machine.TraceFromResult(res, g.NumEdges())
			big := machine.ScaleTrace(tr, paperFactor)
			xmtSpeed[v] = speeds{
				at:    machine.Speedup(xmt, tr, 128),
				paper: machine.Speedup(xmt, big, 128),
			}
			if v == core.VariantUnoptimized {
				amdAt = machine.Speedup(amd, tr, 32)
				amdPaper = machine.Speedup(amd, big, 32)
			}
		}
		// Host measured speedup, unoptimized variant as in the paper's
		// AMD column (flat on a single-core host).
		_, t1, err := cfg.measure(g, 1, core.VariantUnoptimized)
		if err != nil {
			return err
		}
		_, tp, err := cfg.measure(g, maxP, core.VariantUnoptimized)
		if err != nil {
			return err
		}
		host := float64(t1) / float64(tp)
		fmt.Fprintf(w, "%-18s %11.2f %11.2f %11.2f | %11.2f %11.2f %11.2f %11.2f\n",
			name,
			xmtSpeed[core.VariantUnoptimized].at, xmtSpeed[core.VariantOptimized].at, amdAt,
			xmtSpeed[core.VariantUnoptimized].paper, xmtSpeed[core.VariantOptimized].paper, amdPaper,
			host)
		return nil
	}
	for _, p := range allPresets {
		for _, scale := range cfg.Scales {
			g, err := cfg.genRMAT(p, scale)
			if err != nil {
				return err
			}
			factor := float64(int64(1) << (24 - uint(scale)))
			if scale > 24 {
				factor = 1
			}
			if err := row(fmt.Sprintf("%s(%d)", p, scale), g, factor); err != nil {
				return err
			}
		}
	}
	for _, d := range allDatasets {
		g, err := cfg.genBio(d)
		if err != nil {
			return err
		}
		factor := float64(cfg.BioDownscale)
		if factor < 1 {
			factor = 1
		}
		if err := row(d.String(), g, factor); err != nil {
			return err
		}
	}
	return nil
}

// Pct reports the chordal-edge percentages discussed in §V of the
// paper (RMAT-ER ~11%, RMAT-G ~10%, RMAT-B ~6%, biological 4-8%).
func Pct(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "== §V: fraction of edges in the maximal chordal subgraph ==")
	fmt.Fprintf(w, "%-18s %14s %14s %9s %6s\n", "Group", "Edges", "Chordal", "Percent", "Iters")
	hline(w, 66)
	row := func(name string, g *graph.Graph) error {
		res, err := core.Extract(g, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-18s %14d %14d %8.1f%% %6d\n",
			name, g.NumEdges(), res.NumChordalEdges(),
			100*float64(res.NumChordalEdges())/float64(g.NumEdges()),
			len(res.Iterations))
		return nil
	}
	for _, p := range allPresets {
		for _, scale := range cfg.Scales {
			g, err := cfg.genRMAT(p, scale)
			if err != nil {
				return err
			}
			if err := row(fmt.Sprintf("%s(%d)", p, scale), g); err != nil {
				return err
			}
		}
	}
	for _, d := range allDatasets {
		g, err := cfg.genBio(d)
		if err != nil {
			return err
		}
		if err := row(d.String(), g); err != nil {
			return err
		}
	}
	return nil
}
