package experiments

import (
	"fmt"
	"io"

	"chordal/internal/analysis"
	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/rmat"
	"chordal/internal/synth"
	"chordal/internal/verify"
)

// Ablation runs the design-choice studies DESIGN.md §5 calls out, none
// of which appear in the paper: execution schedules, queue ordering,
// degree-based renumbering, the maximality repair, and extraction
// quality on the broader input families with a planted ground truth.
func Ablation(w io.Writer, cfg Config) error {
	if err := ablationSchedules(w, cfg); err != nil {
		return err
	}
	if err := ablationQueueOrder(w, cfg); err != nil {
		return err
	}
	if err := ablationNumbering(w, cfg); err != nil {
		return err
	}
	return ablationFamilies(w, cfg)
}

// ablationSchedules compares the three schedules on one skewed input.
func ablationSchedules(w io.Writer, cfg Config) error {
	scale := cfg.Scales[len(cfg.Scales)-1]
	g, err := cfg.genRMAT(rmat.B, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== Ablation: schedules (RMAT-B(%d)) ==\n", scale)
	fmt.Fprintf(w, "%-14s %8s %10s %12s %10s\n", "schedule", "iters", "edges", "time", "determ.")
	hline(w, 60)
	for _, s := range []core.Schedule{core.ScheduleDataflow, core.ScheduleAsync, core.ScheduleSynchronous} {
		r, err := core.Extract(g, core.Options{Schedule: s})
		if err != nil {
			return err
		}
		det := "no"
		if s != core.ScheduleAsync {
			det = "yes"
		}
		fmt.Fprintf(w, "%-14s %8d %10d %12s %10s\n", s, len(r.Iterations), r.NumChordalEdges(), fmtDur(r.Total), det)
	}
	return nil
}

// ablationQueueOrder compares ascending and arbitrary queue order.
func ablationQueueOrder(w io.Writer, cfg Config) error {
	scale := cfg.Scales[len(cfg.Scales)-1]
	g, err := cfg.genRMAT(rmat.B, scale)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Ablation: queue ordering (RMAT-B(%d)) ==\n", scale)
	fmt.Fprintf(w, "%-14s %8s %12s\n", "queue", "iters", "time")
	hline(w, 38)
	for _, unsorted := range []bool{false, true} {
		label := "ascending"
		if unsorted {
			label = "arbitrary"
		}
		r, err := core.Extract(g, core.Options{UnsortedQueue: unsorted})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %8d %12s\n", label, len(r.Iterations), fmtDur(r.Total))
	}
	return nil
}

// ablationNumbering shows the effect of id assignment on extraction
// quality (DESIGN.md §5: the algorithm is the Dearing rule with
// selection forced into id order).
func ablationNumbering(w io.Writer, cfg Config) error {
	g, err := cfg.genBio(allDatasets[1]) // GSE5140(UNT)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n== Ablation: vertex numbering (%s) ==\n", allDatasets[1])
	fmt.Fprintf(w, "%-22s %10s %10s %8s\n", "numbering", "edges", "of-total", "iters")
	hline(w, 54)
	variants := []struct {
		name string
		g    *graph.Graph
	}{
		{"as generated", g},
		{"BFS order", g.Relabel(analysis.BFSOrder(g, 0))},
		{"degree-descending", g.Relabel(analysis.DegreeOrder(g))},
	}
	for _, v := range variants {
		r, err := core.Extract(v.g, core.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %10d %9.1f%% %8d\n", v.name, r.NumChordalEdges(),
			100*float64(r.NumChordalEdges())/float64(g.NumEdges()), len(r.Iterations))
	}
	return nil
}

// ablationFamilies runs extraction on the broader input set with
// planted ground truth where available.
func ablationFamilies(w io.Writer, cfg Config) error {
	fmt.Fprintln(w, "\n== Ablation: broader input families ==")
	fmt.Fprintf(w, "%-28s %10s %10s %9s %8s %8s\n", "family", "edges", "chordal", "percent", "iters", "repair+")
	hline(w, 80)
	n := 1 << cfg.SmallScale
	type fam struct {
		name string
		g    *graph.Graph
	}
	ktree, planted := synth.KTreePlusNoise(n, 3, int64(n), cfg.Seed)
	families := []fam{
		{"GNM (E=8V)", synth.GNM(n, int64(8*n), cfg.Seed)},
		{"WattsStrogatz k=4 b=0.1", synth.WattsStrogatz(n, 4, 0.1, cfg.Seed)},
		{"geometric avgdeg=8", synth.RandomGeometric(n, synth.GeometricRadiusForDegree(n, 8), cfg.Seed)},
		{fmt.Sprintf("3-tree + %d noise", n), ktree},
	}
	var ktreeKept int
	for _, f := range families {
		r, err := core.Extract(f.g, core.Options{})
		if err != nil {
			return err
		}
		rep, err := core.Extract(f.g, core.Options{RepairMaximality: true})
		if err != nil {
			return err
		}
		if !verify.IsChordal(r.ToGraph()) {
			return fmt.Errorf("ablation: %s output not chordal", f.name)
		}
		if f.g == ktree {
			ktreeKept = r.NumChordalEdges()
		}
		fmt.Fprintf(w, "%-28s %10d %10d %8.1f%% %8d %8d\n",
			f.name, f.g.NumEdges(), r.NumChordalEdges(),
			100*float64(r.NumChordalEdges())/float64(f.g.NumEdges()),
			len(r.Iterations), rep.RepairedEdges)
	}
	fmt.Fprintf(w, "(3-tree planted chordal edges: %d — extraction kept %.0f%% of the plant's size)\n",
		planted, 100*float64(ktreeKept)/float64(planted))
	return nil
}
