package synth

import (
	"math"
	"testing"

	"chordal/internal/analysis"
	"chordal/internal/core"
	"chordal/internal/verify"
)

func TestGNMExactCounts(t *testing.T) {
	for _, m := range []int64{0, 1, 50, 300} {
		g := GNM(100, m, 7)
		if g.NumEdges() != m {
			t.Fatalf("m=%d: got %d edges", m, g.NumEdges())
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGNMPanicsOnOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GNM(4, 7, 1)
}

func TestGNMComplete(t *testing.T) {
	g := GNM(5, 10, 3)
	if g.NumEdges() != 10 || g.MaxDegree() != 4 {
		t.Fatal("K5 not produced at m = max")
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: pure ring lattice, degree exactly 2k, clustering high.
	g := WattsStrogatz(100, 3, 0, 1)
	for v := int32(0); v < 100; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("lattice degree %d at %d", g.Degree(v), v)
		}
	}
	if cc := analysis.GlobalClusteringCoefficient(g); cc < 0.5 {
		t.Fatalf("lattice clustering %.3f", cc)
	}
}

func TestWattsStrogatzRewiring(t *testing.T) {
	lattice := WattsStrogatz(200, 3, 0, 2)
	rewired := WattsStrogatz(200, 3, 0.3, 2)
	// Rewiring shortens paths.
	hl := analysis.ShortestPathHistogram(lattice, 50)
	hr := analysis.ShortestPathHistogram(rewired, 50)
	if len(hr) >= len(hl) {
		t.Fatalf("rewiring did not shorten diameter: %d vs %d", len(hr), len(hl))
	}
	if err := rewired.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	for _, f := range []func(){
		func() { WattsStrogatz(10, 0, 0.1, 1) },
		func() { WattsStrogatz(10, 5, 0.1, 1) },
		func() { WattsStrogatz(10, 2, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRandomGeometric(t *testing.T) {
	n := 2000
	r := GeometricRadiusForDegree(n, 8)
	g := RandomGeometric(n, r, 5)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	avg := 2 * float64(g.NumEdges()) / float64(n)
	if math.Abs(avg-8) > 2.5 {
		t.Fatalf("average degree %.2f, want ~8", avg)
	}
	// Geometric graphs are highly clustered compared to GNM of the
	// same density.
	gnm := GNM(n, g.NumEdges(), 5)
	if analysis.GlobalClusteringCoefficient(g) < 3*analysis.GlobalClusteringCoefficient(gnm) {
		t.Fatal("geometric graph not more clustered than GNM")
	}
}

func TestRandomGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomGeometric(10, 0, 1)
}

func TestKTreeIsChordalWithRightSize(t *testing.T) {
	for _, k := range []int{1, 2, 4} {
		for _, n := range []int{k + 1, 20, 100} {
			g := KTree(n, k, 9)
			want := int64(k)*int64(n) - int64(k)*int64(k+1)/2
			if g.NumEdges() != want {
				t.Fatalf("k=%d n=%d: %d edges, want %d", k, n, g.NumEdges(), want)
			}
			if !verify.IsChordal(g) {
				t.Fatalf("k=%d n=%d: k-tree not chordal", k, n)
			}
		}
	}
}

func TestKTreeExtractionKeepsEverything(t *testing.T) {
	// Extraction of a chordal k-tree with construction-order ids must
	// retain every edge: each vertex's smaller neighbors form a clique.
	g := KTree(200, 3, 11)
	res, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.NumChordalEdges()) != g.NumEdges() {
		t.Fatalf("kept %d of %d k-tree edges", res.NumChordalEdges(), g.NumEdges())
	}
}

func TestKTreePlusNoisePlantedBound(t *testing.T) {
	// The planted k-tree lower-bounds what extraction should find:
	// on a lightly noised instance the extracted chordal subgraph must
	// be at least a large fraction of the planted size.
	g, planted := KTreePlusNoise(300, 3, 150, 13)
	if g.NumEdges() != planted+150 {
		t.Fatalf("edge accounting: %d != %d + 150", g.NumEdges(), planted)
	}
	res, err := core.Extract(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !verify.IsChordal(res.ToGraph()) {
		t.Fatal("not chordal")
	}
	if int64(res.NumChordalEdges()) < planted/2 {
		t.Fatalf("extracted %d, planted %d — far below the planted bound", res.NumChordalEdges(), planted)
	}
}

func TestKTreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KTree(3, 3, 1)
}

func TestDeterminism(t *testing.T) {
	a := GNM(50, 100, 42)
	b := GNM(50, 100, 42)
	au, av := a.EdgeList()
	bu, bv := b.EdgeList()
	for i := range au {
		if au[i] != bu[i] || av[i] != bv[i] {
			t.Fatal("GNM not deterministic")
		}
	}
	x := KTree(40, 2, 42)
	y := KTree(40, 2, 42)
	if x.NumEdges() != y.NumEdges() {
		t.Fatal("KTree not deterministic")
	}
}
