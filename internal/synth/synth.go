// Package synth provides additional graph families beyond the paper's
// test suite — its conclusion announces experiments "with a broader set
// of inputs", and these are the standard families such a study would
// use: uniform random graphs, small-world rewirings, random geometric
// (mesh-like) graphs, and partial k-trees with known chordal ground
// truth. The last family is particularly useful for validation: a
// k-tree is chordal by construction, so extraction must retain all of
// it, and the planted instance bounds how much of a k-tree-plus-noise
// graph any maximal chordal subgraph can miss.
package synth

import (
	"fmt"
	"math"

	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/xrand"
)

// workerArg resolves the optional trailing workers argument the
// generators accept: the bound for parallel construction phases, with
// 0 (or omitted) meaning machine width. The sampled edge set never
// depends on it.
func workerArg(workers []int) int {
	if len(workers) > 0 {
		return workers[0]
	}
	return 0
}

// GNM returns a uniform random simple graph with n vertices and m
// distinct edges (Erdős–Rényi G(n,m)). It panics if m exceeds the
// number of possible edges. An optional trailing workers argument
// bounds the parallel CSR construction (0 or omitted = machine width).
func GNM(n int, m int64, seed uint64, workers ...int) *graph.Graph {
	max := int64(n) * int64(n-1) / 2
	if m > max {
		panic(fmt.Sprintf("synth: GNM m=%d exceeds %d possible edges", m, max))
	}
	rng := xrand.NewXoshiro256(seed)
	us := make([]int32, 0, m)
	vs := make([]int32, 0, m)
	seen := make(map[int64]bool, m)
	for int64(len(us)) < m {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)<<32 | int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		us = append(us, u)
		vs = append(vs, v)
	}
	return graph.BuildFromEdgesWorkers(n, us, vs, workerArg(workers))
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors on each side, with every
// edge's far endpoint rewired uniformly at random with probability
// beta. beta=0 is the lattice, beta=1 nearly random; intermediate
// values give the high-clustering short-path regime. An optional
// trailing workers argument bounds the parallel CSR construction.
func WattsStrogatz(n, k int, beta float64, seed uint64, workers ...int) *graph.Graph {
	if k < 1 || 2*k >= n {
		panic("synth: WattsStrogatz requires 1 <= k < n/2")
	}
	if beta < 0 || beta > 1 {
		panic("synth: WattsStrogatz beta out of [0,1]")
	}
	rng := xrand.NewXoshiro256(seed)
	us := make([]int32, 0, n*k)
	vs := make([]int32, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % n
			if rng.Float64() < beta {
				// Rewire to a uniform random endpoint; duplicates and
				// self loops are dropped by the builder.
				w = rng.Intn(n)
			}
			us = append(us, int32(v))
			vs = append(vs, int32(w))
		}
	}
	return graph.BuildFromEdgesWorkers(n, us, vs, workerArg(workers))
}

// RandomGeometric returns a random geometric graph: n points uniform in
// the unit square, an edge whenever two points lie within radius.
// Bucketing by a radius-sized grid keeps construction near-linear for
// sparse regimes. These mesh-like graphs are the classic "easy to
// partition" counterpoint to the paper's scale-free inputs. An optional
// trailing workers argument bounds the parallel scan and construction.
func RandomGeometric(n int, radius float64, seed uint64, workers ...int) *graph.Graph {
	if radius <= 0 || radius > 1 {
		panic("synth: RandomGeometric radius out of (0,1]")
	}
	rng := xrand.NewXoshiro256(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	grid := make(map[[2]int][]int32)
	cellOf := func(i int) [2]int {
		return [2]int{int(xs[i] * float64(cells)), int(ys[i] * float64(cells))}
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		grid[c] = append(grid[c], int32(i))
	}
	// The grid is read-only from here on, so the O(n)-cell neighbor scan
	// parallelizes over points into per-worker edge buffers; the final
	// graph is schedule-independent because the CSR build canonicalizes
	// edge order.
	w := parallel.WorkersFor(n, 1024)
	if bound := workerArg(workers); bound > 0 && w > bound {
		w = bound
	}
	bufs := parallel.NewEdgeBuffers(w)
	r2 := radius * radius
	parallel.For(n, w, 256, func(worker, i int) {
		c := cellOf(i)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range grid[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= int32(i) {
						continue
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					if ddx*ddx+ddy*ddy <= r2 {
						bufs.Add(worker, int32(i), j)
					}
				}
			}
		}
	})
	us, vs := bufs.Concat()
	return graph.BuildFromEdgesWorkers(n, us, vs, workerArg(workers))
}

// GeometricRadiusForDegree returns the radius that gives a random
// geometric graph an expected average degree near target.
func GeometricRadiusForDegree(n int, target float64) float64 {
	// E[deg] ~ n * pi * r^2 ignoring boundary effects.
	return math.Sqrt(target / (math.Pi * float64(n)))
}

// KTree returns a k-tree on n vertices: a (k+1)-clique grown by
// repeatedly attaching a new vertex to a uniformly chosen existing
// k-clique. k-trees are exactly the maximal graphs of treewidth k and
// are chordal by construction; vertex ids follow construction order,
// so ascending ids are a perfect elimination ordering in reverse. An
// optional trailing workers argument bounds the parallel construction.
func KTree(n, k int, seed uint64, workers ...int) *graph.Graph {
	if k < 1 || n < k+1 {
		panic("synth: KTree requires 1 <= k and n >= k+1")
	}
	rng := xrand.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	// Seed clique.
	var cliques [][]int32
	var root []int32
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(int32(i), int32(j))
		}
		root = append(root, int32(i))
	}
	// Every k-subset of the root is an attachable k-clique.
	for drop := 0; drop <= k; drop++ {
		cl := make([]int32, 0, k)
		for i, v := range root {
			if i != drop {
				cl = append(cl, v)
			}
		}
		cliques = append(cliques, cl)
	}
	for v := int32(k + 1); v < int32(n); v++ {
		base := cliques[rng.Intn(len(cliques))]
		for _, u := range base {
			b.AddEdge(u, v)
		}
		// New attachable cliques: v plus each (k-1)-subset of base.
		for drop := 0; drop < len(base); drop++ {
			cl := make([]int32, 0, k)
			cl = append(cl, v)
			for i, u := range base {
				if i != drop {
					cl = append(cl, u)
				}
			}
			cliques = append(cliques, cl)
		}
	}
	return b.BuildWorkers(workerArg(workers))
}

// KTreePlusNoise returns a k-tree with extra additional uniform random
// edges, along with the number of planted (k-tree) edges. The planted
// chordal subgraph gives a lower bound on the maximum chordal subgraph
// of the noisy graph, making these instances useful quality yardsticks
// for extraction heuristics. An optional trailing workers argument
// bounds the parallel construction.
func KTreePlusNoise(n, k int, extra int64, seed uint64, workers ...int) (*graph.Graph, int64) {
	base := KTree(n, k, seed, workers...)
	planted := base.NumEdges()
	rng := xrand.NewXoshiro256(seed ^ 0x9e3779b97f4a7c15)
	us, vs := base.EdgeList()
	added := int64(0)
	for added < extra {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u == v || base.HasEdge(u, v) {
			continue
		}
		us = append(us, u)
		vs = append(vs, v)
		added++
	}
	return graph.BuildFromEdgesWorkers(n, us, vs, workerArg(workers)), planted
}
