// Package analysis computes the structural network measures the paper
// uses to characterize its inputs: clustering coefficients versus degree
// (Figure 2), the distribution of shortest path lengths (Figure 3),
// connected components, degree assortativity, and k-cores. It also
// provides the BFS vertex numbering the paper recommends so that the
// extracted chordal subgraph of a connected graph is connected.
package analysis

import (
	"sort"
	"sync"
	"sync/atomic"

	"chordal/internal/graph"
	"chordal/internal/parallel"
)

// TriangleCounts returns, for every vertex, the number of triangles it
// participates in. Each triangle v < w < x is discovered exactly once
// (from its smallest vertex, by sorted-list intersection) and credited
// to all three corners. Discovery parallelizes over v.
func TriangleCounts(g *graph.Graph) []int64 {
	g = g.SortAdjacency()
	n := g.NumVertices()
	counts := make([]int64, n)
	parallel.For(n, 0, 256, func(_, vi int) {
		v := int32(vi)
		nv := g.Neighbors(v)
		var own int64
		for _, w := range nv {
			if w <= v {
				continue
			}
			forEachCommonAbove(nv, g.Neighbors(w), w, func(x int32) {
				own++
				atomic.AddInt64(&counts[w], 1)
				atomic.AddInt64(&counts[x], 1)
			})
		}
		if own > 0 {
			atomic.AddInt64(&counts[v], own)
		}
	})
	return counts
}

// forEachCommonAbove calls fn for every common element above threshold.
func forEachCommonAbove(a, b []int32, threshold int32, fn func(int32)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] > threshold {
				fn(a[i])
			}
			i++
			j++
		}
	}
}

// ClusteringCoefficients returns the local clustering coefficient of
// every vertex: triangles(v) / (deg(v) choose 2), zero for degree < 2.
func ClusteringCoefficients(g *graph.Graph) []float64 {
	tri := TriangleCounts(g)
	n := g.NumVertices()
	cc := make([]float64, n)
	for v := 0; v < n; v++ {
		d := int64(g.Degree(int32(v)))
		if d >= 2 {
			cc[v] = float64(2*tri[v]) / float64(d*(d-1))
		}
	}
	return cc
}

// DegreeClusteringPoint is one point of the Figure-2 scatter: the mean
// clustering coefficient over all vertices of a given degree.
type DegreeClusteringPoint struct {
	Degree   int
	AvgCC    float64
	Vertices int
}

// ClusteringByDegree aggregates ClusteringCoefficients by vertex degree,
// producing the series plotted in Figure 2 (average clustering
// coefficient versus number of neighbors).
func ClusteringByDegree(g *graph.Graph) []DegreeClusteringPoint {
	cc := ClusteringCoefficients(g)
	maxDeg := g.MaxDegree()
	sum := make([]float64, maxDeg+1)
	cnt := make([]int, maxDeg+1)
	for v := 0; v < g.NumVertices(); v++ {
		d := g.Degree(int32(v))
		sum[d] += cc[v]
		cnt[d]++
	}
	var out []DegreeClusteringPoint
	for d := 1; d <= maxDeg; d++ {
		if cnt[d] > 0 {
			out = append(out, DegreeClusteringPoint{Degree: d, AvgCC: sum[d] / float64(cnt[d]), Vertices: cnt[d]})
		}
	}
	return out
}

// GlobalClusteringCoefficient returns the mean local clustering
// coefficient (the "average clustering coefficient" of the paper).
func GlobalClusteringCoefficient(g *graph.Graph) float64 {
	cc := ClusteringCoefficients(g)
	if len(cc) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range cc {
		s += x
	}
	return s / float64(len(cc))
}

// BFSDistances returns the BFS distance from src to every vertex
// (-1 when unreachable).
func BFSDistances(g *graph.Graph, src int32) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int32{src}
	for d := int32(1); len(frontier) > 0; d++ {
		var next []int32
		for _, v := range frontier {
			for _, w := range g.Neighbors(v) {
				if dist[w] == -1 {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}

// ShortestPathHistogram computes the Figure-3 histogram: counts[d] is
// the number of ordered vertex pairs at shortest-path distance d >= 1
// (the paper's Figure-3 counts are ordered-pair counts: its length-1
// frequency is twice the edge count). sources limits the number of BFS
// roots; 0 or >= |V| runs all of them, matching the figure exactly at
// the paper's scale 10, while fewer sources yields a strided sample
// with the same shape. BFS runs in parallel across sources.
func ShortestPathHistogram(g *graph.Graph, sources int) []int64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	if sources <= 0 || sources > n {
		sources = n
	}
	stride := n / sources
	if stride < 1 {
		stride = 1
	}
	var mu sync.Mutex
	global := make([]int64, 0)
	parallel.For(sources, 0, 1, func(_, i int) {
		src := int32(i * stride % n)
		dist := BFSDistances(g, src)
		local := make([]int64, 0, 32)
		for _, d := range dist {
			if d > 0 {
				for int(d) >= len(local) {
					local = append(local, 0)
				}
				local[d]++
			}
		}
		mu.Lock()
		for len(local) > len(global) {
			global = append(global, 0)
		}
		for d := range local {
			global[d] += local[d]
		}
		mu.Unlock()
	})
	return global
}

// Components labels each vertex with a component id (0-based, ordered
// by lowest vertex id) and returns the number of components.
func Components(g *graph.Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		id := int32(count)
		count++
		labels[v] = id
		queue = append(queue[:0], int32(v))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(u) {
				if labels[w] == -1 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// IsConnected reports whether g is connected (true for the empty graph).
func IsConnected(g *graph.Graph) bool {
	_, c := Components(g)
	return c <= 1
}

// BFSOrder returns a permutation perm such that perm[v] is the BFS visit
// rank of v starting at root (unreached components are appended in id
// order, each BFS'd in turn). Relabeling a connected graph with this
// permutation guarantees, per the remark below Theorem 2, that
// Algorithm 1 extracts a connected chordal subgraph.
func BFSOrder(g *graph.Graph, root int32) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = -1
	}
	rank := int32(0)
	bfs := func(src int32) {
		if perm[src] != -1 {
			return
		}
		perm[src] = rank
		rank++
		queue := []int32{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if perm[w] == -1 {
					perm[w] = rank
					rank++
					queue = append(queue, w)
				}
			}
		}
	}
	if n > 0 {
		if root < 0 || int(root) >= n {
			root = 0
		}
		bfs(root)
		for v := 0; v < n; v++ {
			bfs(int32(v))
		}
	}
	return perm
}

// DegreeOrder returns a permutation assigning the smallest ids to the
// highest-degree vertices (ties by original id). Relabeling with it
// before extraction is a maximality heuristic: Algorithm 1 is the
// Dearing subset rule with selection forced into ascending id order, so
// a hub with a large id tests its many smaller neighbors against the
// hub's own (initially empty) chordal set and loses most of them —
// the star-with-high-id-center pathology. Giving hubs small ids makes
// them early, well-populated parents instead.
func DegreeOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		da, db := g.Degree(idx[a]), g.Degree(idx[b])
		if da != db {
			return da > db
		}
		return idx[a] < idx[b]
	})
	perm := make([]int32, n)
	for rank, v := range idx {
		perm[v] = int32(rank)
	}
	return perm
}

// DegreeAssortativity returns Newman's degree assortativity coefficient,
// the edge-wise Pearson correlation of endpoint degrees. Biological
// networks are assortative in the paper's sense (hubs avoid hubs),
// giving negative values here.
func DegreeAssortativity(g *graph.Graph) float64 {
	var m float64
	var sumProd, sumA, sumB, sumA2, sumB2 float64
	g.Edges(func(u, v int32) {
		du := float64(g.Degree(u))
		dv := float64(g.Degree(v))
		// Symmetrize: count each edge in both orientations.
		sumProd += 2 * du * dv
		sumA += du + dv
		sumB += du + dv
		sumA2 += du*du + dv*dv
		sumB2 += du*du + dv*dv
		m += 2
	})
	if m == 0 {
		return 0
	}
	num := sumProd/m - (sumA/m)*(sumB/m)
	den := sumA2/m - (sumA/m)*(sumB/m)
	if den == 0 {
		return 0
	}
	return num / den
}

// KCores returns the core number of every vertex (the largest k such
// that the vertex belongs to a subgraph of minimum degree k), via the
// standard peeling algorithm with bucket queues.
func KCores(g *graph.Graph) []int32 {
	n := g.NumVertices()
	deg := make([]int32, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if int(deg[v]) > maxDeg {
			maxDeg = int(deg[v])
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	pos := make([]int32, n)
	vert := make([]int32, n)
	cursor := make([]int32, maxDeg+1)
	copy(cursor, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		p := cursor[deg[v]]
		cursor[deg[v]]++
		pos[v] = p
		vert[p] = int32(v)
	}
	core := make([]int32, n)
	start := make([]int32, maxDeg+1)
	copy(start, bin[:maxDeg+1])
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, w := range g.Neighbors(v) {
			if deg[w] > deg[v] {
				// Move w to the front of its current degree bucket and
				// decrement its degree.
				dw := deg[w]
				pw := pos[w]
				ph := start[dw]
				if pw != ph {
					other := vert[ph]
					vert[ph], vert[pw] = w, other
					pos[w], pos[other] = ph, pw
				}
				start[dw]++
				deg[w]--
			}
		}
	}
	return core
}
