package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"chordal/internal/graph"
	"chordal/internal/xrand"
)

func buildGraph(n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	rng := xrand.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestTriangleCountsKnown(t *testing.T) {
	// K4 has 4 triangles; every vertex is in 3 of them.
	counts := TriangleCounts(complete(4))
	for v, c := range counts {
		if c != 3 {
			t.Fatalf("K4 vertex %d in %d triangles, want 3", v, c)
		}
	}
	// A path has none.
	for _, c := range TriangleCounts(path(6)) {
		if c != 0 {
			t.Fatal("path has triangles?")
		}
	}
	// Triangle with a tail: vertices 0,1,2 in 1 triangle, 3 in 0.
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	counts = TriangleCounts(g)
	want := []int64{1, 1, 1, 0}
	for v := range want {
		if counts[v] != want[v] {
			t.Fatalf("counts %v, want %v", counts, want)
		}
	}
}

func TestTriangleCountsMatchBruteForce(t *testing.T) {
	f := func(seed uint64, mRaw uint16) bool {
		g := randomGraph(24, int(mRaw%200), seed)
		fast := TriangleCounts(g)
		slow := make([]int64, 24)
		for u := int32(0); u < 24; u++ {
			for v := u + 1; v < 24; v++ {
				for w := v + 1; w < 24; w++ {
					if g.HasEdge(u, v) && g.HasEdge(v, w) && g.HasEdge(u, w) {
						slow[u]++
						slow[v]++
						slow[w]++
					}
				}
			}
		}
		for v := range slow {
			if fast[v] != slow[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// K4: all coefficients 1. Path: all 0. Triangle+tail: vertex 2 has
	// degree 3, one triangle: 2*1/(3*2) = 1/3.
	for _, c := range ClusteringCoefficients(complete(4)) {
		if c != 1 {
			t.Fatalf("K4 clustering %v", c)
		}
	}
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	cc := ClusteringCoefficients(g)
	if math.Abs(cc[2]-1.0/3) > 1e-12 {
		t.Fatalf("cc[2] = %v, want 1/3", cc[2])
	}
	if cc[3] != 0 {
		t.Fatalf("pendant clustering %v", cc[3])
	}
}

func TestClusteringByDegree(t *testing.T) {
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	pts := ClusteringByDegree(g)
	// Degrees: 0,1 have 2 (cc 1), 2 has 3 (cc 1/3), 3 has 1 (cc 0).
	byDeg := map[int]DegreeClusteringPoint{}
	for _, p := range pts {
		byDeg[p.Degree] = p
	}
	if byDeg[2].AvgCC != 1 || byDeg[2].Vertices != 2 {
		t.Fatalf("degree-2 bucket %+v", byDeg[2])
	}
	if math.Abs(byDeg[3].AvgCC-1.0/3) > 1e-12 {
		t.Fatalf("degree-3 bucket %+v", byDeg[3])
	}
	if byDeg[1].AvgCC != 0 {
		t.Fatalf("degree-1 bucket %+v", byDeg[1])
	}
	if v := GlobalClusteringCoefficient(g); math.Abs(v-(1+1+1.0/3+0)/4) > 1e-12 {
		t.Fatalf("global clustering %v", v)
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(5)
	d := BFSDistances(g, 0)
	for v := 0; v < 5; v++ {
		if d[v] != int32(v) {
			t.Fatalf("distance to %d = %d", v, d[v])
		}
	}
	// Disconnected vertex unreachable.
	g2 := buildGraph(3, [][2]int32{{0, 1}})
	d = BFSDistances(g2, 0)
	if d[2] != -1 {
		t.Fatalf("unreachable distance %d", d[2])
	}
}

func TestShortestPathHistogram(t *testing.T) {
	// Path 0-1-2-3: ordered pairs at distance 1: 6 (3 edges × 2),
	// distance 2: 4, distance 3: 2.
	h := ShortestPathHistogram(path(4), 0)
	want := []int64{0, 6, 4, 2}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
	// Distance-1 count is always twice the edge count when all sources
	// are used (the paper's Figure-3 convention).
	g := randomGraph(100, 300, 1)
	h = ShortestPathHistogram(g, 0)
	if len(h) > 1 && h[1] != 2*g.NumEdges() {
		t.Fatalf("distance-1 count %d, want %d", h[1], 2*g.NumEdges())
	}
	// Sampled histogram has the same support shape.
	hs := ShortestPathHistogram(g, 10)
	if len(hs) == 0 || len(hs) > len(h)+1 {
		t.Fatalf("sampled histogram length %d vs full %d", len(hs), len(h))
	}
}

func TestComponents(t *testing.T) {
	g := buildGraph(7, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	labels, count := Components(g)
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component 0 split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("component labeling wrong")
	}
	if labels[5] == labels[6] {
		t.Fatal("singletons merged")
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	if !IsConnected(path(5)) {
		t.Fatal("path reported disconnected")
	}
	if !IsConnected(graph.NewBuilder(0).Build()) {
		t.Fatal("empty graph reported disconnected")
	}
}

func TestBFSOrderIsPermutation(t *testing.T) {
	g := buildGraph(6, [][2]int32{{0, 3}, {3, 5}, {1, 2}})
	perm := BFSOrder(g, 0)
	seen := make([]bool, 6)
	for _, r := range perm {
		if r < 0 || int(r) >= 6 || seen[r] {
			t.Fatalf("invalid perm %v", perm)
		}
		seen[r] = true
	}
	// Root gets rank 0; its neighbor ranks before more distant ones.
	if perm[0] != 0 {
		t.Fatalf("root rank %d", perm[0])
	}
	if perm[3] > perm[5] {
		t.Fatal("BFS layering violated")
	}
}

func TestBFSOrderBadRoot(t *testing.T) {
	g := path(4)
	perm := BFSOrder(g, -1)
	if perm[0] != 0 {
		t.Fatalf("fallback root rank %d", perm[0])
	}
	perm = BFSOrder(g, 100)
	if perm[0] != 0 {
		t.Fatalf("fallback root rank %d", perm[0])
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative.
	b := graph.NewBuilder(10)
	for i := int32(1); i < 10; i++ {
		b.AddEdge(0, i)
	}
	if r := DegreeAssortativity(b.Build()); r >= 0 {
		t.Fatalf("star assortativity %v, want negative", r)
	}
	// A cycle is degree-regular: coefficient degenerate (0 by our
	// convention).
	if r := DegreeAssortativity(cycle(8)); r != 0 {
		t.Fatalf("regular graph assortativity %v", r)
	}
	if r := DegreeAssortativity(graph.NewBuilder(3).Build()); r != 0 {
		t.Fatalf("edgeless assortativity %v", r)
	}
}

func TestKCores(t *testing.T) {
	// K4 plus a pendant: K4 members have core 3, pendant core 1.
	g := buildGraph(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}})
	core := KCores(g)
	want := []int32{3, 3, 3, 3, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("cores %v, want %v", core, want)
		}
	}
	// Cycle: all cores 2. Path: all cores 1.
	for _, c := range KCores(cycle(6)) {
		if c != 2 {
			t.Fatal("cycle core != 2")
		}
	}
	for _, c := range KCores(path(6)) {
		if c != 1 {
			t.Fatal("path core != 1")
		}
	}
}

func TestDegreeOrder(t *testing.T) {
	// Star with high-id center: center must receive id 0.
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(4, i)
	}
	g := b.Build()
	perm := DegreeOrder(g)
	if perm[4] != 0 {
		t.Fatalf("hub rank %d, want 0", perm[4])
	}
	// Relabeled graph: extraction-friendly hub at 0.
	r := g.Relabel(perm)
	if r.Degree(0) != 4 {
		t.Fatalf("relabeled hub degree %d", r.Degree(0))
	}
	// Permutation validity on a random graph.
	g2 := randomGraph(50, 200, 3)
	p2 := DegreeOrder(g2)
	seen := make([]bool, 50)
	for _, r := range p2 {
		if seen[r] {
			t.Fatal("DegreeOrder not a permutation")
		}
		seen[r] = true
	}
	// Ranks are sorted by descending degree.
	inv := make([]int32, 50)
	for v, r := range p2 {
		inv[r] = int32(v)
	}
	for i := 1; i < 50; i++ {
		if g2.Degree(inv[i-1]) < g2.Degree(inv[i]) {
			t.Fatal("DegreeOrder ranks out of order")
		}
	}
}
