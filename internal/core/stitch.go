package core

import "chordal/internal/graph"

// stitchComponents connects distinct components of the extracted
// subgraph with single original-graph edges. The paper's remark below
// Theorem 2 combines successively numbered component pairs with one edge
// each; a spanning stitch generalizes this — any acyclic set of
// inter-component edges preserves chordality, because a bridge can never
// lie on a cycle — and connects everything the original graph allows.
func stitchComponents(g *graph.Graph, res *Result) {
	n := res.NumVertices
	uf := NewUnionFind(n)
	for _, e := range res.Edges {
		uf.Union(e.U, e.V)
	}
	added := false
	g.Edges(func(u, v int32) {
		if uf.Find(u) != uf.Find(v) {
			uf.Union(u, v)
			res.addChordalEdge(u, v)
			res.StitchedEdges++
			added = true
		}
	})
	if added {
		res.sortEdges()
	}
}

// UnionFind is a standard weighted quick-union with path halving over
// int32 vertex ids. Both the component stitch here and the sharded
// reconciliation in internal/shard build their spanning stitches on
// it.
type UnionFind struct {
	parent []int32
	rank   []int8
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set, halving the path as it
// walks.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b by rank.
func (uf *UnionFind) Union(a, b int32) {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
