package core

import "chordal/internal/graph"

// stitchComponents connects distinct components of the extracted
// subgraph with single original-graph edges. The paper's remark below
// Theorem 2 combines successively numbered component pairs with one edge
// each; a spanning stitch generalizes this — any acyclic set of
// inter-component edges preserves chordality, because a bridge can never
// lie on a cycle — and connects everything the original graph allows.
func stitchComponents(g *graph.Graph, res *Result) {
	n := res.NumVertices
	uf := newUnionFind(n)
	for _, e := range res.Edges {
		uf.union(e.U, e.V)
	}
	added := false
	g.Edges(func(u, v int32) {
		if uf.find(u) != uf.find(v) {
			uf.union(u, v)
			res.addChordalEdge(u, v)
			res.StitchedEdges++
			added = true
		}
	})
	if added {
		res.sortEdges()
	}
}

// unionFind is a standard weighted quick-union with path halving.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int32) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}
