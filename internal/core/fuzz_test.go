package core

import (
	"testing"

	"chordal/internal/graph"
	"chordal/internal/verify"
)

// FuzzExtractChordality feeds arbitrary byte strings interpreted as
// edge lists through extraction and checks the Theorem-1 invariant
// (output chordal) plus accounting invariants under all three
// schedules. Run `go test -fuzz=FuzzExtractChordality ./internal/core`
// to search beyond the seed corpus.
func FuzzExtractChordality(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0})                   // triangle
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 0})             // C4
	f.Add([]byte{7, 0, 7, 1, 7, 2, 7, 3})             // high-id star
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3}) // K4
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 2 {
			return
		}
		if len(raw) > 512 {
			raw = raw[:512]
		}
		const n = 64
		b := graph.NewBuilder(n)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(int32(raw[i]%n), int32(raw[i+1]%n))
		}
		g := b.Build()
		var counts [3]int
		for i, s := range []Schedule{ScheduleDataflow, ScheduleAsync, ScheduleSynchronous} {
			res, err := Extract(g, Options{Schedule: s})
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			sub := res.ToGraph()
			if !verify.IsChordal(sub) {
				t.Fatalf("%v: output not chordal", s)
			}
			if res.TotalAccepted() != int64(res.NumChordalEdges()) {
				t.Fatalf("%v: accepted %d != edges %d", s, res.TotalAccepted(), res.NumChordalEdges())
			}
			for _, e := range res.Edges {
				if !g.HasEdge(e.U, e.V) {
					t.Fatalf("%v: edge %v not in input", s, e)
				}
			}
			counts[i] = res.NumChordalEdges()
		}
		// Repair must reach maximality on these small graphs.
		rep, err := Extract(g, Options{RepairMaximality: true})
		if err != nil {
			t.Fatal(err)
		}
		if viol := verify.AuditMaximality(g, rep.ToGraph(), 1); len(viol) != 0 {
			t.Fatalf("repair left violation %v", viol)
		}
	})
}
