package core

import (
	"testing"

	"chordal/internal/biogen"
	"chordal/internal/rmat"
)

// TestGoldenCounts pins exact chordal edge and iteration counts for
// fixed-seed inputs under the deterministic dataflow schedule. Any
// change to the generators, the queue discipline, or the subset test
// shows up here first; update the constants only after confirming the
// new values are correct (chordality + maximality audits).
func TestGoldenCounts(t *testing.T) {
	type row struct {
		name      string
		edges     int64
		chordal   int
		iterCount int
	}
	var got []row

	for _, preset := range []rmat.Preset{rmat.ER, rmat.G, rmat.B} {
		g, err := rmat.Generate(rmat.PresetParams(preset, 10, 20120910))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Extract(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, row{preset.String(), g.NumEdges(), res.NumChordalEdges(), len(res.Iterations)})
	}
	bg, err := biogen.Generate(biogen.PresetParams(biogen.GSE5140UNT, 64, 20120910))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Extract(bg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, row{"GSE5140(UNT)/64", bg.NumEdges(), res.NumChordalEdges(), len(res.Iterations)})

	want := []row{
		// Pinned after R-MAT sampling moved from per-worker to
		// fixed-chunk PRNG streams (the sampled graph is now independent
		// of worker count and machine, the invariant the service's
		// generated-input cache relies on); the new instances were
		// re-audited: extraction output chordal, byte-identical across
		// worker counts, usual few §5 repairable edges.
		{"RMAT-ER", 8116, 1021, 7},
		{"RMAT-G", 7579, 1259, 8},
		{"RMAT-B", 6745, 1618, 9},
		// Pinned after the biogen generator moved its module and hub
		// sampling onto per-module PRNG streams (parallel generation);
		// the new instance was re-audited: extraction output chordal,
		// deterministic across runs, usual few §5 repairable edges.
		{"GSE5140(UNT)/64", 9903, 1600, 12},
	}
	if len(got) != len(want) {
		t.Fatalf("row count %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
