// Package core implements the paper's contribution: the iterative
// multithreaded algorithm (Algorithm 1) that extracts a maximal chordal
// subgraph from a general undirected graph.
//
// # Algorithm
//
// Every vertex v tracks its lowest parent LP[v] — the smallest-id
// neighbor below v — and an id-ordered set of chordal neighbors C[v]
// (the smaller endpoints of its accepted chordal edges). Iterations are
// barrier-synchronized. In each iteration, every queued parent v scans
// its neighbors w; for those with LP[w] == v it tests the subset
// condition C[w] ⊆ C[v]. If the condition holds, edge (v,w) joins the
// chordal edge set and v joins C[w]. Whether or not it holds, w advances
// to its next lowest parent, which is enqueued for the next iteration.
// The loop ends when the queue empties; a vertex therefore tests its
// k-th smallest parent in iteration k.
//
// # Concurrency
//
// LP[w] is unique, so each vertex has exactly one writer per iteration.
// C[w] is an append-only array published with an atomic length store
// (the paper's "store the set of chordal neighbors as an atomic
// process"); concurrent readers of a parent's C[v] observe a consistent
// prefix. In the default asynchronous mode a reader may observe a
// mid-iteration prefix, matching the paper's behaviour on the XMT; the
// Deterministic option snapshots all set lengths at each barrier so the
// output is schedule-independent.
package core

import (
	"fmt"
	"time"

	"chordal/internal/graph"
)

// Variant selects the paper's two implementations.
type Variant int

const (
	// VariantAuto picks Optimized when the input adjacency is sorted
	// and Unoptimized otherwise.
	VariantAuto Variant = iota
	// VariantOptimized is the paper's "Opt" code path: adjacency lists
	// are sorted, so the next lowest parent is found by bumping a
	// cursor. If the input graph is unsorted a sorted copy is made
	// (the paper likewise excludes sorting time from Opt timings).
	VariantOptimized
	// VariantUnoptimized is the paper's "Unopt" code path: adjacency
	// order is arbitrary and every next-lowest-parent step rescans the
	// full neighbor list.
	VariantUnoptimized
)

// String returns the paper's abbreviation for the variant.
func (v Variant) String() string {
	switch v {
	case VariantAuto:
		return "Auto"
	case VariantOptimized:
		return "Opt"
	case VariantUnoptimized:
		return "Unopt"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Schedule selects how subset tests are ordered relative to the growth
// of the chordal sets they read. All three schedules produce a chordal
// subgraph (Theorem 1 holds for any interleaving); they differ in
// iteration count, determinism, and whether the maximality argument of
// Theorem 2 applies. See DESIGN.md §5.
type Schedule int

const (
	// ScheduleDataflow is the default and models the paper's actual
	// implementation ("we use the data flow approach to restrict the
	// pattern in which the vertices are selected"): an edge (v,w) is
	// tested only once v's chordal set is final (v has exhausted its
	// own lowest parents), and a vertex chains through as many
	// finalized parents as possible within one iteration. This is the
	// semantics under which the paper's Theorem 2 proof is sound; it
	// yields a schedule-independent edge set and the paper's observed
	// iteration counts (about three for R-MAT inputs, around ten for
	// the gene networks).
	ScheduleDataflow Schedule = iota
	// ScheduleAsync follows the pseudocode of Algorithm 1 literally:
	// a queued parent tests its children against whatever chordal-set
	// prefix is currently published. Output depends on thread timing
	// and can miss a small number of addable edges (the Theorem 2 gap);
	// provided for fidelity comparisons.
	ScheduleAsync
	// ScheduleSynchronous is the strict barrier schedule the paper's
	// complexity analysis assumes: every vertex tests exactly its k-th
	// lowest parent in iteration k, with chordal-set lengths
	// snapshotted at each barrier. Deterministic, but needs up to
	// max-smaller-degree iterations.
	ScheduleSynchronous
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleDataflow:
		return "Dataflow"
	case ScheduleAsync:
		return "Async"
	case ScheduleSynchronous:
		return "Synchronous"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// Options configures Extract. The zero value is ready to use: automatic
// variant selection, GOMAXPROCS workers, dataflow schedule.
type Options struct {
	// Variant selects the Opt/Unopt code path; see Variant.
	Variant Variant
	// Workers bounds worker goroutines; <= 0 means GOMAXPROCS.
	Workers int
	// Schedule selects the test-ordering discipline; see Schedule.
	Schedule Schedule
	// Grain is the chunk size of the per-iteration parallel loop (how
	// many queued parents one work-stealing grab claims); <= 0 picks the
	// built-in default. The root-package engines pass the calibrated
	// grain from internal/tune here.
	Grain int
	// DegreeThreshold is the chordal-set size at or above which the
	// subset test C[w] ⊆ C[parent] materializes C[parent] into a
	// per-worker epoch set and probes each element of C[w] in O(|C[w]|),
	// instead of merge-scanning in O(|C[parent]|). 0 picks the built-in
	// default; negative disables the hybrid path (pure merge scan).
	// The choice never changes the extracted edge set — the probe is an
	// exact subset test against the same published prefix.
	DegreeThreshold int
	// UnsortedQueue leaves each iteration's queue in arrival order
	// instead of ascending vertex order. Successive lowest parents have
	// increasing ids, so the default ascending queue lets dataflow
	// chains ride a finalization wave through most of the graph in very
	// few iterations; set this to model a machine (like the XMT) whose
	// queue order is arbitrary, at the cost of more iterations.
	UnsortedQueue bool
	// RepairMaximality runs a post-pass that re-tests rejected edges
	// against the final chordal sets and re-admits any that pass the
	// subset condition and, verified by maximum cardinality search,
	// keep the subgraph chordal. See DESIGN.md §5 for why Algorithm 1
	// alone can leave such edges behind.
	RepairMaximality bool
	// StitchComponents adds one original-graph edge between distinct
	// components of the extracted subgraph whenever one exists (a
	// cycle-free spanning stitch), the generalization of the
	// component-combining remark below Theorem 2.
	StitchComponents bool
	// OnEvent, when non-nil, receives every subset test: parent v,
	// child w, and whether edge (v,w) was accepted. It is invoked
	// concurrently unless Workers == 1. Intended for demonstrations and
	// tests; it slows extraction.
	OnEvent func(iteration int, parent, child int32, accepted bool)
	// OnIteration, when non-nil, receives each iteration's statistics as
	// the iteration's barrier completes. It is called from the
	// extraction goroutine (never concurrently with itself), so it is
	// the cheap hook for progress reporting — the service layer streams
	// these as server-sent events.
	OnIteration func(IterationStats)
}

// Edge is an undirected chordal edge; by construction U < V and U was
// the lowest parent that admitted the edge.
type Edge struct {
	U, V int32
}

// IterationStats records one while-loop iteration of Algorithm 1,
// the quantities behind Figure 7 of the paper.
type IterationStats struct {
	// Index is the 1-based iteration number.
	Index int
	// QueueSize is |Q1|, the number of lowest parents processed.
	QueueSize int
	// EdgesTested counts subset-condition evaluations (one per vertex
	// whose LP was in the queue).
	EdgesTested int64
	// EdgesAccepted counts edges admitted to the chordal set.
	EdgesAccepted int64
	// ScanWork is the total adjacency length scanned, the per-iteration
	// work measure consumed by the machine models.
	ScanWork int64
	// Duration is the wall-clock time of the iteration.
	Duration time.Duration
}

// Result holds the extracted maximal chordal edge set and the
// instrumentation the experiments consume.
type Result struct {
	// NumVertices is the vertex count of the input graph.
	NumVertices int
	// Edges is the chordal edge set EC.
	Edges []Edge
	// Iterations has one entry per while-loop iteration.
	Iterations []IterationStats
	// Variant is the code path actually used.
	Variant Variant
	// Schedule is the test-ordering discipline used.
	Schedule Schedule
	// Total is the wall-clock extraction time (excluding any sorting,
	// as in the paper's reported Opt numbers).
	Total time.Duration
	// RepairedEdges counts edges added by the RepairMaximality pass.
	RepairedEdges int
	// StitchedEdges counts edges added by the StitchComponents pass.
	StitchedEdges int
	// WorkersUsed, Grain, and DegreeThreshold are the resolved kernel
	// parameters the run actually used (defaults applied), recorded so
	// reports and benchmarks can state them without re-deriving the
	// resolution rules.
	WorkersUsed     int
	Grain           int
	DegreeThreshold int

	// workers is the worker bound the extraction ran under (0 = machine
	// width); ToGraph materializes the subgraph inside the same bound so
	// a budget-leased job never builds at machine width.
	workers int

	csetOff  []int64
	csetData []int32
	csetLen  []int32
}

// NumChordalEdges returns |EC|.
func (r *Result) NumChordalEdges() int { return len(r.Edges) }

// ChordalNeighbors returns the smaller-id chordal neighbors of v in
// ascending order. The slice aliases internal storage; do not modify.
func (r *Result) ChordalNeighbors(v int32) []int32 {
	off := r.csetOff[v]
	return r.csetData[off : off+int64(r.csetLen[v])]
}

// HasChordalEdge reports whether {u, v} is in the extracted edge set.
func (r *Result) HasChordalEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	set := r.ChordalNeighbors(v)
	lo, hi := 0, len(set)
	for lo < hi {
		mid := (lo + hi) / 2
		if set[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(set) && set[lo] == u
}

// ToGraph materializes the chordal edge set as a CSR graph over the
// same vertex ids, bounded to the worker count the extraction ran
// under.
func (r *Result) ToGraph() *graph.Graph {
	us := make([]int32, len(r.Edges))
	vs := make([]int32, len(r.Edges))
	for i, e := range r.Edges {
		us[i], vs[i] = e.U, e.V
	}
	return graph.SubgraphFromEdgesWorkers(r.NumVertices, us, vs, r.workers)
}

// TotalTested returns the number of subset tests over all iterations.
func (r *Result) TotalTested() int64 {
	var t int64
	for _, it := range r.Iterations {
		t += it.EdgesTested
	}
	return t
}

// TotalAccepted returns the number of accepted edges over all
// iterations (excluding repair and stitch additions).
func (r *Result) TotalAccepted() int64 {
	var t int64
	for _, it := range r.Iterations {
		t += it.EdgesAccepted
	}
	return t
}

// QueueSizes returns |Q1| per iteration, the series plotted in Figure 7.
func (r *Result) QueueSizes() []int {
	out := make([]int, len(r.Iterations))
	for i, it := range r.Iterations {
		out[i] = it.QueueSize
	}
	return out
}
