package core

import (
	"testing"

	"chordal/internal/graph"
	"chordal/internal/rmat"
	"chordal/internal/verify"
)

// This file exercises the hybrid subset-test kernel: the bitset probe
// must be an exact drop-in for the merge scan at every threshold, worker
// count, grain, and schedule that pins output order.

// sameEdges reports whether two extractions produced identical edge
// lists (same edges, same order).
func sameEdges(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHybridMatchesMergeScan is the kernel agreement property: on
// skewed and uniform random graphs, extraction with the bitset probe
// enabled at any threshold is byte-identical to the pure merge scan
// under every order-pinning schedule and worker count.
func TestHybridMatchesMergeScan(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat-b:10":  mustRMAT(t, rmat.B, 10, 7),
		"rmat-g:9":   mustRMAT(t, rmat.G, 9, 11),
		"gnm:512:4k": randomGraph(512, 4096, 13),
	}
	for name, g := range graphs {
		for _, sched := range []Schedule{ScheduleDataflow, ScheduleSynchronous} {
			base, err := Extract(g, Options{Schedule: sched, Workers: 1, DegreeThreshold: -1})
			if err != nil {
				t.Fatal(err)
			}
			for _, thr := range []int{1, 8, 32, 1 << 20} {
				for _, workers := range []int{1, 2, 4} {
					for _, grain := range []int{1, 64, 4096} {
						res, err := Extract(g, Options{
							Schedule:        sched,
							Workers:         workers,
							Grain:           grain,
							DegreeThreshold: thr,
						})
						if err != nil {
							t.Fatal(err)
						}
						if !sameEdges(base.Edges, res.Edges) {
							t.Fatalf("%s %v: threshold=%d workers=%d grain=%d diverged from merge scan (%d vs %d edges)",
								name, sched, thr, workers, grain, res.NumChordalEdges(), base.NumChordalEdges())
						}
					}
				}
			}
		}
	}
}

// TestHybridAsyncChordal checks the async schedule too: output order is
// not pinned there, so assert the invariants instead — chordality and
// an edge count matching the merge scan's under one worker.
func TestHybridAsyncChordal(t *testing.T) {
	g := mustRMAT(t, rmat.B, 10, 21)
	base, err := Extract(g, Options{Schedule: ScheduleAsync, Workers: 1, DegreeThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, thr := range []int{1, 32} {
		res, err := Extract(g, Options{Schedule: ScheduleAsync, Workers: 1, DegreeThreshold: thr})
		if err != nil {
			t.Fatal(err)
		}
		if !sameEdges(base.Edges, res.Edges) {
			t.Fatalf("threshold=%d: single-worker async diverged from merge scan", thr)
		}
		if !verify.IsChordal(res.ToGraph()) {
			t.Fatalf("threshold=%d: async hybrid output not chordal", thr)
		}
	}
}

// TestResolvedTuningRecorded pins that Result reports the tuning values
// the run actually used, including the defaulting of zeros.
func TestResolvedTuningRecorded(t *testing.T) {
	g := mustRMAT(t, rmat.G, 8, 3)
	res, err := Extract(g, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkersUsed != 2 || res.Grain != defaultGrain || res.DegreeThreshold != defaultDegreeThreshold {
		t.Fatalf("defaults not recorded: workers=%d grain=%d threshold=%d",
			res.WorkersUsed, res.Grain, res.DegreeThreshold)
	}
	res, err = Extract(g, Options{Workers: 1, Grain: 17, DegreeThreshold: -5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grain != 17 || res.DegreeThreshold != -1 {
		t.Fatalf("explicit values not recorded: grain=%d threshold=%d", res.Grain, res.DegreeThreshold)
	}
}

// benchGraph is the dense hub-heavy benchmark input shared by the
// kernel benchmarks; built once.
var benchGraph = func() *graph.Graph {
	g, err := rmat.Generate(rmat.PresetParams(rmat.B, 12, 42))
	if err != nil {
		panic(err)
	}
	return g
}()

func benchExtract(b *testing.B, threshold int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Extract(benchGraph, Options{Workers: 1, DegreeThreshold: threshold})
		if err != nil {
			b.Fatal(err)
		}
		if res.NumChordalEdges() == 0 {
			b.Fatal("empty extraction")
		}
	}
}

// BenchmarkExtractMergeScan is the pure merge-scan baseline on a
// skewed scale-12 R-MAT graph.
func BenchmarkExtractMergeScan(b *testing.B) { benchExtract(b, -1) }

// BenchmarkExtractHybrid is the same workload with the bitset probe at
// the default threshold.
func BenchmarkExtractHybrid(b *testing.B) { benchExtract(b, defaultDegreeThreshold) }
