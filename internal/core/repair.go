package core

import (
	"slices"
	"sort"

	"chordal/internal/graph"
	"chordal/internal/incremental"
)

// repairMaximality re-examines every rejected edge against the final
// extracted subgraph and admits those whose insertion keeps it chordal,
// repeating until a pass admits nothing. Algorithm 1 can leave such
// edges behind: the paper's Theorem 2 argues that a rejected edge
// would close a cycle longer than a triangle, but a long cycle only
// violates chordality when it is chordless, and on graphs with multiple
// internally-connected regions the surrounding chords can exist (the
// serial baseline avoids this by always selecting the vertex with the
// largest candidate set, a global greedy choice the parallel algorithm
// gives up). Admission is delegated to incremental.Maintainer — the
// repository's one implementation of the dynamic-chordal-graph
// separator criterion — seeded with the kernel's edge set: one scan of
// the input defers every inadmissible absent edge, and Repair retests
// the deferred queue to the fixpoint.
func repairMaximality(g *graph.Graph, res *Result, threshold int) {
	m := incremental.New(g.NumVertices(), threshold)
	for _, e := range res.Edges {
		m.Seed(e.U, e.V)
	}
	g.Edges(func(u, v int32) {
		if res.HasChordalEdge(u, v) {
			return
		}
		if ok, _ := m.Admit(u, v); ok {
			res.addChordalEdge(u, v)
			res.RepairedEdges++
		}
	})
	for _, e := range m.Repair() {
		res.addChordalEdge(e.U, e.V)
		res.RepairedEdges++
	}
	if res.RepairedEdges > 0 {
		res.sortEdges()
	}
}

// addChordalEdge inserts u (u < v) into v's chordal set in place and
// appends the edge. The per-vertex region was sized for every smaller
// neighbor, so capacity is always sufficient.
func (r *Result) addChordalEdge(u, v int32) {
	off := r.csetOff[v]
	n := int(r.csetLen[v])
	set := r.csetData[off : off+int64(n)+1]
	i := sort.Search(n, func(i int) bool { return set[i] >= u })
	copy(set[i+1:n+1], set[i:n])
	set[i] = u
	r.csetLen[v]++
	r.Edges = append(r.Edges, Edge{U: u, V: v})
}

func (r *Result) sortEdges() {
	slices.SortFunc(r.Edges, func(a, b Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
}
