package core

import (
	"testing"
	"testing/quick"

	"chordal/internal/graph"
	"chordal/internal/rmat"
	"chordal/internal/verify"
	"chordal/internal/xrand"
)

// buildGraph constructs a graph from an edge list over n vertices.
func buildGraph(n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// randomGraph returns an Erdős–Rényi-style graph with n vertices and
// about m edges, deterministic in seed.
func randomGraph(n, m int, seed uint64) *graph.Graph {
	rng := xrand.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

var allSchedules = []Schedule{ScheduleDataflow, ScheduleAsync, ScheduleSynchronous}
var allVariants = []Variant{VariantOptimized, VariantUnoptimized}

func TestExtractNilGraph(t *testing.T) {
	if _, err := Extract(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestExtractEmptyAndTrivial(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		g := graph.NewBuilder(n).Build()
		res, err := Extract(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumChordalEdges() != 0 {
			t.Fatalf("n=%d: %d edges from edgeless graph", n, res.NumChordalEdges())
		}
		if len(res.Iterations) != 0 {
			t.Fatalf("n=%d: %d iterations for edgeless graph", n, len(res.Iterations))
		}
	}
	// A single edge is always extracted.
	g := buildGraph(2, [][2]int32{{0, 1}})
	res, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChordalEdges() != 1 {
		t.Fatalf("single edge not extracted")
	}
}

func TestExtractTriangle(t *testing.T) {
	g := buildGraph(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	for _, s := range allSchedules {
		res, err := Extract(g, Options{Schedule: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumChordalEdges() != 3 {
			t.Fatalf("%v: triangle extracted %d edges", s, res.NumChordalEdges())
		}
	}
}

func TestExtractC4DropsOneEdge(t *testing.T) {
	// A 4-cycle's maximal chordal subgraph is any 3-edge path.
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	for _, s := range allSchedules {
		res, err := Extract(g, Options{Schedule: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.NumChordalEdges() != 3 {
			t.Fatalf("%v: C4 extracted %d edges, want 3", s, res.NumChordalEdges())
		}
		if !verify.IsChordal(res.ToGraph()) {
			t.Fatalf("%v: C4 result not chordal", s)
		}
	}
}

func TestExtractCompleteGraph(t *testing.T) {
	// K_n is chordal; the algorithm must keep every edge: each vertex's
	// chordal set grows to exactly its smaller neighbors.
	for _, n := range []int{3, 5, 10, 32} {
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.AddEdge(int32(i), int32(j))
			}
		}
		g := b.Build()
		for _, s := range allSchedules {
			res, err := Extract(g, Options{Schedule: s})
			if err != nil {
				t.Fatal(err)
			}
			if int64(res.NumChordalEdges()) != g.NumEdges() {
				t.Fatalf("K%d %v: kept %d of %d edges", n, s, res.NumChordalEdges(), g.NumEdges())
			}
		}
	}
}

func TestStarCenterIdSensitivity(t *testing.T) {
	// The id-order selection pathology (DESIGN.md §5): a star whose
	// center has the highest id keeps only one edge, while a center at
	// id 0 keeps them all. This is inherent to Algorithm 1's subset
	// rule, not a bug in this implementation.
	lowCenter := buildGraph(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	res, err := Extract(lowCenter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChordalEdges() != 4 {
		t.Fatalf("low-id center kept %d of 4 edges", res.NumChordalEdges())
	}

	highCenter := buildGraph(5, [][2]int32{{4, 0}, {4, 1}, {4, 2}, {4, 3}})
	res, err = Extract(highCenter, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChordalEdges() != 1 {
		t.Fatalf("high-id center kept %d edges, expected the documented 1", res.NumChordalEdges())
	}
	// RepairMaximality must recover the remaining star edges.
	res, err = Extract(highCenter, Options{RepairMaximality: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChordalEdges() != 4 {
		t.Fatalf("repair recovered only %d of 4 edges", res.NumChordalEdges())
	}
	if res.RepairedEdges != 3 {
		t.Fatalf("RepairedEdges = %d, want 3", res.RepairedEdges)
	}
}

func TestChordalityAllConfigurations(t *testing.T) {
	// Theorem 1 must hold under every schedule, variant and worker
	// count.
	graphs := map[string]*graph.Graph{
		"random-sparse": randomGraph(300, 900, 1),
		"random-dense":  randomGraph(100, 2000, 2),
		"rmat-b":        mustRMAT(t, rmat.B, 10, 3),
	}
	for name, g := range graphs {
		for _, s := range allSchedules {
			for _, v := range allVariants {
				for _, w := range []int{1, 4} {
					res, err := Extract(g, Options{Schedule: s, Variant: v, Workers: w})
					if err != nil {
						t.Fatal(err)
					}
					if !verify.IsChordal(res.ToGraph()) {
						t.Fatalf("%s/%v/%v/w%d: not chordal", name, s, v, w)
					}
				}
			}
		}
	}
}

func mustRMAT(t *testing.T, p rmat.Preset, scale int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := rmat.Generate(rmat.PresetParams(p, scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDataflowDeterministic(t *testing.T) {
	g := mustRMAT(t, rmat.B, 11, 9)
	ref, err := Extract(g, Options{Workers: 1, Variant: VariantOptimized})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range allVariants {
		for _, w := range []int{2, 3, 8} {
			for _, uq := range []bool{false, true} {
				res, err := Extract(g, Options{Workers: w, Variant: v, UnsortedQueue: uq})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Edges) != len(ref.Edges) {
					t.Fatalf("%v/w%d/uq=%v: %d edges vs %d", v, w, uq, len(res.Edges), len(ref.Edges))
				}
				for i := range res.Edges {
					if res.Edges[i] != ref.Edges[i] {
						t.Fatalf("%v/w%d/uq=%v: edge %d differs", v, w, uq, i)
					}
				}
			}
		}
	}
}

func TestSynchronousDeterministic(t *testing.T) {
	g := mustRMAT(t, rmat.G, 10, 4)
	ref, err := Extract(g, Options{Schedule: ScheduleSynchronous, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7} {
		res, err := Extract(g, Options{Schedule: ScheduleSynchronous, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Edges) != len(ref.Edges) {
			t.Fatalf("w%d: %d vs %d edges", w, len(res.Edges), len(ref.Edges))
		}
		for i := range res.Edges {
			if res.Edges[i] != ref.Edges[i] {
				t.Fatalf("w%d: edge %d differs", w, i)
			}
		}
	}
}

func TestVariantsAgreeUnderDataflow(t *testing.T) {
	// Dataflow output is schedule-free, so Opt and Unopt must extract
	// the identical edge set.
	g := randomGraph(500, 3000, 5)
	a, err := Extract(g, Options{Variant: VariantOptimized})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(g.SortAdjacency(), Options{Variant: VariantUnoptimized})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("Opt %d vs Unopt %d edges", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs between variants", i)
		}
	}
}

func TestEdgesAreRealAndSorted(t *testing.T) {
	g := randomGraph(200, 1000, 6)
	res, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range res.Edges {
		if e.U >= e.V {
			t.Fatalf("edge %d not oriented: %v", i, e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("edge %d not in input graph: %v", i, e)
		}
		if i > 0 {
			prev := res.Edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				t.Fatalf("edges not sorted at %d", i)
			}
		}
	}
}

func TestResultAccessors(t *testing.T) {
	g := randomGraph(100, 400, 7)
	res, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// HasChordalEdge agrees with the edge list.
	inSet := map[Edge]bool{}
	for _, e := range res.Edges {
		inSet[e] = true
	}
	g.Edges(func(u, v int32) {
		if res.HasChordalEdge(u, v) != inSet[Edge{U: u, V: v}] {
			t.Fatalf("HasChordalEdge(%d,%d) disagrees with edge list", u, v)
		}
		if res.HasChordalEdge(v, u) != res.HasChordalEdge(u, v) {
			t.Fatal("HasChordalEdge not symmetric")
		}
	})
	if res.HasChordalEdge(5, 5) {
		t.Fatal("self edge reported")
	}
	// ChordalNeighbors are ascending smaller ids matching the edges.
	count := 0
	for v := int32(0); v < 100; v++ {
		nb := res.ChordalNeighbors(v)
		for i, u := range nb {
			if u >= v {
				t.Fatalf("chordal neighbor %d >= vertex %d", u, v)
			}
			if i > 0 && nb[i-1] >= u {
				t.Fatalf("chordal neighbors of %d not ascending", v)
			}
			count++
		}
	}
	if count != len(res.Edges) {
		t.Fatalf("chordal sets hold %d entries, edge list %d", count, len(res.Edges))
	}
	// Totals line up with iteration stats.
	if res.TotalAccepted() != int64(len(res.Edges)) {
		t.Fatalf("TotalAccepted %d != %d edges", res.TotalAccepted(), len(res.Edges))
	}
	if res.TotalTested() < res.TotalAccepted() {
		t.Fatal("tested < accepted")
	}
	if len(res.QueueSizes()) != len(res.Iterations) {
		t.Fatal("QueueSizes length mismatch")
	}
}

func TestEveryEdgeTestedExactlyOnce(t *testing.T) {
	// Each edge {u,v}, u<v, is subset-tested exactly once (when u is
	// v's current lowest parent), under the synchronous and dataflow
	// schedules.
	g := randomGraph(200, 1200, 8)
	for _, s := range []Schedule{ScheduleDataflow, ScheduleSynchronous} {
		res, err := Extract(g, Options{Schedule: s})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalTested() != g.NumEdges() {
			t.Fatalf("%v: tested %d, want %d", s, res.TotalTested(), g.NumEdges())
		}
	}
}

func TestOnEventTrace(t *testing.T) {
	// With one worker the trace covers every edge exactly once, and
	// accepted events match the final edge set.
	g := randomGraph(60, 200, 9)
	type ev struct {
		parent, child int32
		accepted      bool
	}
	var events []ev
	res, err := Extract(g, Options{Workers: 1, OnEvent: func(_ int, p, c int32, acc bool) {
		events = append(events, ev{p, c, acc})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(events)) != g.NumEdges() {
		t.Fatalf("%d events for %d edges", len(events), g.NumEdges())
	}
	accepted := 0
	for _, e := range events {
		if e.parent >= e.child {
			t.Fatalf("event parent %d >= child %d", e.parent, e.child)
		}
		if e.accepted {
			accepted++
			if !res.HasChordalEdge(e.parent, e.child) {
				t.Fatal("accepted event absent from result")
			}
		}
	}
	if accepted != res.NumChordalEdges() {
		t.Fatalf("%d accepted events, %d edges", accepted, res.NumChordalEdges())
	}
}

func TestIterationStatsConsistency(t *testing.T) {
	g := mustRMAT(t, rmat.ER, 10, 10)
	res, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	for i, it := range res.Iterations {
		if it.Index != i+1 {
			t.Fatalf("iteration %d has index %d", i, it.Index)
		}
		if it.QueueSize <= 0 {
			t.Fatalf("iteration %d queue size %d", i, it.QueueSize)
		}
		if it.EdgesAccepted > it.EdgesTested {
			t.Fatalf("iteration %d accepted > tested", i)
		}
		if it.ScanWork < 0 || it.Duration < 0 {
			t.Fatalf("iteration %d negative work/duration", i)
		}
	}
}

func TestChordalityProperty(t *testing.T) {
	// Random graphs of arbitrary shape always yield chordal subgraphs,
	// and repair keeps them chordal while achieving maximality.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 3 + int(nRaw%120)
		m := int(mRaw % 1200)
		g := randomGraph(n, m, seed)
		res, err := Extract(g, Options{RepairMaximality: true})
		if err != nil {
			return false
		}
		sub := res.ToGraph()
		if !verify.IsChordal(sub) {
			return false
		}
		return len(verify.AuditMaximality(g, sub, 1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStitchConnectsComponents(t *testing.T) {
	// Two triangles joined by one edge that the subset test rejects.
	g := buildGraph(7, [][2]int32{
		{0, 1}, {1, 2}, {0, 2}, // triangle A
		{4, 5}, {5, 6}, {4, 6}, // triangle B
		{2, 4}, // bridge
		{3, 0}, // pendant through id 3
	})
	res, err := Extract(g, Options{StitchComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	sub := res.ToGraph()
	if !verify.IsChordal(sub) {
		t.Fatal("stitched result not chordal")
	}
	// All 7 vertices reachable from 0 in the result.
	seen := make([]bool, 7)
	stack := []int32{0}
	seen[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range sub.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("vertex %d not connected after stitch", v)
		}
	}
}

func TestRepairAuditsToZero(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		g := randomGraph(150, 900, seed)
		res, err := Extract(g, Options{RepairMaximality: true})
		if err != nil {
			t.Fatal(err)
		}
		sub := res.ToGraph()
		if !verify.IsChordal(sub) {
			t.Fatal("repaired subgraph not chordal")
		}
		if viol := verify.AuditMaximality(g, sub, 0); len(viol) != 0 {
			t.Fatalf("seed %d: %d violations after repair", seed, len(viol))
		}
	}
}

func TestChordalInputKeptWhole(t *testing.T) {
	// Build a chordal graph (a k-tree-ish stacking of triangles) and
	// verify extraction keeps it entirely when ids follow construction
	// order: each new vertex attaches to a clique of smaller ids, so
	// every subset test passes.
	b := graph.NewBuilder(50)
	b.AddEdge(0, 1)
	rng := xrand.NewXoshiro256(99)
	for v := int32(2); v < 50; v++ {
		// Attach to a random edge among smaller ids: {u, w} adjacent.
		u := int32(rng.Intn(int(v)))
		b.AddEdge(u, v)
		// Also attach to one of u's smaller chordal anchors if any: use
		// u-1 when adjacent to keep it simple — attach to vertex 0 as
		// the common anchor instead for guaranteed chordality.
		b.AddEdge(0, v)
		b.AddEdge(0, u)
	}
	g := b.Build()
	if !verify.IsChordal(g) {
		t.Skip("construction not chordal; skip")
	}
	res, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.NumChordalEdges()) != g.NumEdges() {
		t.Fatalf("chordal input lost edges: %d of %d", res.NumChordalEdges(), g.NumEdges())
	}
}

func TestVariantString(t *testing.T) {
	if VariantAuto.String() != "Auto" || VariantOptimized.String() != "Opt" ||
		VariantUnoptimized.String() != "Unopt" || Variant(9).String() == "" {
		t.Fatal("variant names wrong")
	}
	if ScheduleDataflow.String() != "Dataflow" || ScheduleAsync.String() != "Async" ||
		ScheduleSynchronous.String() != "Synchronous" || Schedule(9).String() == "" {
		t.Fatal("schedule names wrong")
	}
}

func TestSubsetSorted(t *testing.T) {
	cases := []struct {
		a, b []int32
		want bool
	}{
		{nil, nil, true},
		{nil, []int32{1}, true},
		{[]int32{1}, nil, false},
		{[]int32{1, 3}, []int32{1, 2, 3}, true},
		{[]int32{1, 4}, []int32{1, 2, 3}, false},
		{[]int32{2}, []int32{1, 2, 3}, true},
		{[]int32{0}, []int32{1, 2, 3}, false},
		{[]int32{1, 2, 3}, []int32{1, 2, 3}, true},
	}
	for i, c := range cases {
		if got := subsetSorted(c.a, c.b); got != c.want {
			t.Fatalf("case %d: subsetSorted(%v,%v) = %v", i, c.a, c.b, got)
		}
	}
}

func TestSubsetSortedProperty(t *testing.T) {
	f := func(aRaw, bRaw []byte) bool {
		a := uniqueSorted(aRaw)
		b := uniqueSorted(bRaw)
		got := subsetSorted(a, b)
		want := true
		set := map[int32]bool{}
		for _, x := range b {
			set[x] = true
		}
		for _, x := range a {
			if !set[x] {
				want = false
			}
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func uniqueSorted(raw []byte) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, r := range raw {
		seen[int32(r)] = true
	}
	for v := int32(0); v < 256; v++ {
		if seen[v] {
			out = append(out, v)
		}
	}
	return out
}
