package core

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync/atomic"
	"time"

	"chordal/internal/bitset"
	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/worklist"
)

// Default kernel tunables, used when Options leaves them at zero. The
// root-package engines usually override both with values calibrated by
// internal/tune at startup.
const (
	// defaultGrain is the parallel.For chunk size of the main loop.
	defaultGrain = 64
	// defaultDegreeThreshold is the chordal-set size at which the subset
	// test switches from merge scan to the hybrid bitset probe.
	defaultDegreeThreshold = 32
)

// noParent marks a vertex whose lowest parents are exhausted (the
// paper's "LP = 0"; we use -1 because ids start at 0). A vertex whose
// lp is noParent is "finalized": its chordal set can no longer grow.
const noParent = int32(-1)

// workerCounters accumulates per-worker statistics; instances live in a
// []parallel.Padded[workerCounters] so each worker's counters stay on
// their own cache line.
type workerCounters struct {
	tested   int64
	accepted int64
	scan     int64
}

// hybridScratch is one worker's state for the hybrid subset test: a
// lazily allocated epoch set holding the membership of owner's chordal
// set at length ownerLen. The chordal-set storage is append-only during
// extraction, so (owner, ownerLen) fully identifies the materialized
// contents — a cached set is stale exactly when the published length
// moved, never silently.
type hybridScratch struct {
	set      *bitset.Epoch
	owner    int32
	ownerLen int32
}

// state carries the shared arrays of one extraction run.
type state struct {
	g   *graph.Graph
	opt bool // optimized (sorted-adjacency) code path

	lp           []int32 // current lowest parent id, or noParent (atomic access)
	lpIdx        []int32 // Opt: cursor into the sorted smaller-neighbor prefix
	smallerCount []int32 // number of neighbors with smaller id

	csetOff  []int64 // prefix offsets into csetData, one region per vertex
	csetData []int32 // chordal neighbor storage, ascending per vertex
	csetLen  []int32 // published lengths (atomic access)
	snapLen  []int32 // synchronous schedule: lengths at iteration start
	lpIter   []int32 // synchronous schedule: iteration that assigned lp[w]

	frontier  *worklist.Frontier
	workers   int
	grain     int
	threshold int // hybrid subset-test threshold, -1 = merge scan only
	counters  []parallel.Padded[workerCounters]
	hybrid    []parallel.Padded[hybridScratch]
	edgeBufs  [][]Edge
	opts      Options
	iter      int
}

// Extract runs Algorithm 1 on g and returns the maximal chordal edge set
// together with per-iteration instrumentation. It is ExtractContext with
// a background context.
func Extract(g *graph.Graph, opts Options) (*Result, error) {
	return ExtractContext(context.Background(), g, opts)
}

// ExtractContext runs Algorithm 1 on g under ctx. Cancellation is
// observed at iteration boundaries (and before the repair and stitch
// post-passes): when ctx is done, all worker goroutines of the current
// iteration drain and ctx.Err() is returned, so a canceled job never
// leaks workers.
func ExtractContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	n := g.NumVertices()
	if int64(n) > 1<<31-1 {
		return nil, fmt.Errorf("core: %d vertices exceed int32 id space", n)
	}

	workers := parallel.WorkerCount(opts.Workers)

	variant := opts.Variant
	if variant == VariantAuto {
		if g.Sorted {
			variant = VariantOptimized
		} else {
			variant = VariantUnoptimized
		}
	}
	if variant == VariantOptimized && !g.Sorted {
		// The paper's Opt variant requires ordered neighbor lists and
		// excludes the sorting time from its measurements; we do the
		// same by sorting a copy up front, inside the worker bound so a
		// budget-leased job never sorts at machine width.
		g = g.SortAdjacencyWorkers(opts.Workers)
	}

	grain := opts.Grain
	if grain <= 0 {
		grain = defaultGrain
	}
	threshold := opts.DegreeThreshold
	switch {
	case threshold == 0:
		threshold = defaultDegreeThreshold
	case threshold < 0:
		threshold = -1
	}
	st := &state{
		g:         g,
		opt:       variant == VariantOptimized,
		workers:   workers,
		grain:     grain,
		threshold: threshold,
		opts:      opts,
		counters:  parallel.NewPadded[workerCounters](workers),
		hybrid:    parallel.NewPadded[hybridScratch](workers),
		edgeBufs:  make([][]Edge, workers),
	}
	start := time.Now()
	st.initialize()

	res := &Result{
		NumVertices:     n,
		Variant:         variant,
		Schedule:        opts.Schedule,
		WorkersUsed:     workers,
		Grain:           st.grain,
		DegreeThreshold: st.threshold,
		workers:         opts.Workers,
		csetOff:         st.csetOff,
		csetData:        st.csetData,
		csetLen:         st.csetLen,
	}

	// The while loop of Algorithm 1 (lines 11-24).
	for st.frontier.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.iter++
		if opts.Schedule == ScheduleSynchronous {
			copy(st.snapLen, st.csetLen)
		}
		iterStart := time.Now()
		before := st.totals()
		cur := st.frontier.Current()
		if !opts.UnsortedQueue {
			slices.Sort(cur)
		}
		parallel.For(len(cur), workers, st.grain, func(worker, i int) {
			st.processParent(worker, cur[i])
		})
		after := st.totals()
		res.Iterations = append(res.Iterations, IterationStats{
			Index:         st.iter,
			QueueSize:     len(cur),
			EdgesTested:   after.tested - before.tested,
			EdgesAccepted: after.accepted - before.accepted,
			ScanWork:      after.scan - before.scan,
			Duration:      time.Since(iterStart),
		})
		if opts.OnIteration != nil {
			opts.OnIteration(res.Iterations[len(res.Iterations)-1])
		}
		st.frontier.Advance()
	}

	total := 0
	for _, buf := range st.edgeBufs {
		total += len(buf)
	}
	res.Edges = make([]Edge, 0, total)
	for _, buf := range st.edgeBufs {
		res.Edges = append(res.Edges, buf...)
	}
	res.sortEdges()
	res.Total = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opts.RepairMaximality {
		repairMaximality(g, res, st.threshold)
	}
	if opts.StitchComponents {
		stitchComponents(g, res)
	}
	return res, nil
}

// totals sums the per-worker counters.
func (st *state) totals() (t workerCounters) {
	for i := range st.counters {
		t.tested += st.counters[i].V.tested
		t.accepted += st.counters[i].V.accepted
		t.scan += st.counters[i].V.scan
	}
	return t
}

// initialize performs lines 2-10 of Algorithm 1: compute every vertex's
// first lowest parent, size the chordal-set storage, and seed Q1 with
// all vertices that are a lowest parent of someone.
func (st *state) initialize() {
	g := st.g
	n := g.NumVertices()
	st.lp = make([]int32, n)
	st.smallerCount = make([]int32, n)
	if st.opt {
		st.lpIdx = make([]int32, n)
	}
	st.frontier = worklist.NewFrontier(n, st.workers)

	parallel.For(n, st.workers, 2048, func(worker, v int) {
		nb := g.Neighbors(int32(v))
		if st.opt {
			// Sorted: smaller neighbors form a prefix.
			k := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
			st.smallerCount[v] = int32(k)
			if k > 0 {
				st.lp[v] = nb[0]
			} else {
				st.lp[v] = noParent
			}
		} else {
			min := noParent
			count := int32(0)
			for _, w := range nb {
				if w < int32(v) {
					count++
					if min == noParent || w < min {
						min = w
					}
				}
			}
			st.smallerCount[v] = count
			st.lp[v] = min
		}
	})

	// Chordal-set storage: vertex v can accept at most smallerCount[v]
	// chordal neighbors, and the counts sum to exactly |E|.
	st.csetOff = make([]int64, n+1)
	for v := 0; v < n; v++ {
		st.csetOff[v+1] = st.csetOff[v] + int64(st.smallerCount[v])
	}
	st.csetData = make([]int32, st.csetOff[n])
	st.csetLen = make([]int32, n)
	if st.opts.Schedule == ScheduleSynchronous {
		st.snapLen = make([]int32, n)
		st.lpIter = make([]int32, n)
	}

	// Q1 <- distinct lowest parents.
	parallel.For(n, st.workers, 2048, func(worker, v int) {
		if p := st.lp[v]; p != noParent {
			st.frontier.Push(worker, p)
		}
	})
	st.frontier.Advance()
}

// finalized reports whether v's chordal set can no longer change: v has
// tested all of its own lowest parents. The lp store that publishes
// noParent is sequenced after the final chordal-set store, so observing
// noParent guarantees a stable, complete C[v].
func (st *state) finalized(v int32) bool {
	return atomic.LoadInt32(&st.lp[v]) == noParent
}

// processParent performs lines 12-22 for one queued parent v: scan v's
// neighbors for vertices whose current lowest parent is v, test the
// subset condition, and advance each such vertex. Under the dataflow
// schedule a non-finalized parent defers itself, and an advanced child
// immediately chains through further finalized parents.
func (st *state) processParent(worker int, v int32) {
	dataflow := st.opts.Schedule == ScheduleDataflow
	if dataflow && !st.finalized(v) {
		// C[v] is still growing: testing now could reject an edge that
		// the final set admits. Defer v to the next iteration.
		st.frontier.Push(worker, v)
		return
	}
	g := st.g
	nb := g.Neighbors(v)
	ctr := &st.counters[worker].V
	ctr.scan += int64(len(nb))

	start := 0
	if st.opt {
		// Children have larger ids; with sorted adjacency they are the
		// suffix after v's position.
		start = sort.Search(len(nb), func(i int) bool { return nb[i] > v })
	}
	for _, w := range nb[start:] {
		if w <= v {
			continue // unoptimized path scans everything
		}
		if atomic.LoadInt32(&st.lp[w]) != v {
			continue
		}
		if st.opts.Schedule == ScheduleSynchronous && st.lpIter[w] == int32(st.iter) {
			// The parent pointer was assigned earlier in this very
			// iteration; deferring the test to the next iteration
			// keeps the strict k-th-parent schedule.
			continue
		}
		st.testChain(worker, v, w, dataflow)
	}
}

// testChain tests edge (parent, w), then advances w. Under the dataflow
// schedule it keeps testing w against successive finalized parents —
// this intra-iteration chaining is what lets the paper finish R-MAT
// inputs in about three iterations despite vertices with thousands of
// smaller neighbors. Ownership of w is retained for the whole chain:
// other threads act on w only after the final lp store publishes a
// parent this thread is done with.
func (st *state) testChain(worker int, parent, w int32, dataflow bool) {
	ctr := &st.counters[worker].V
	outer := parent
	for {
		// Subset test C[w] ⊆ C[parent] (line 15). This worker owns w,
		// so C[w]'s length is stable; C[parent] may still be growing
		// under the async schedule, so its published length is loaded
		// (under dataflow the parent is finalized and stable; under the
		// synchronous schedule the barrier snapshot is used).
		lw := atomic.LoadInt32(&st.csetLen[w])
		var lp int32
		switch st.opts.Schedule {
		case ScheduleSynchronous:
			lp = st.snapLen[parent]
		default:
			lp = atomic.LoadInt32(&st.csetLen[parent])
		}
		cw := st.csetData[st.csetOff[w] : st.csetOff[w]+int64(lw)]
		cp := st.csetData[st.csetOff[parent] : st.csetOff[parent]+int64(lp)]
		ctr.tested++
		accepted := st.subsetTest(worker, parent, cw, cp, parent == outer)
		if accepted {
			// Lines 16-17: C[w] <- C[w] ∪ {parent}; EC <- EC ∪ {e}.
			// Parents are tested in ascending order, so appending
			// keeps C[w] sorted.
			st.csetData[st.csetOff[w]+int64(lw)] = parent
			atomic.StoreInt32(&st.csetLen[w], lw+1)
			st.edgeBufs[worker] = append(st.edgeBufs[worker], Edge{U: parent, V: w})
			ctr.accepted++
		}
		if st.opts.OnEvent != nil {
			st.opts.OnEvent(st.iter, parent, w, accepted)
		}

		// Lines 18-22: find the next lowest parent of w.
		next := st.nextParent(worker, w, parent)
		if next == noParent {
			st.publishParent(w, noParent)
			return
		}
		if dataflow && st.finalized(next) {
			// Chain: the next parent's set is already final, so the
			// test can proceed immediately without losing an
			// iteration.
			parent = next
			continue
		}
		st.publishParent(w, next)
		st.frontier.Push(worker, next)
		return
	}
}

// nextParent returns w's next lowest parent after current, advancing the
// Opt cursor or rescanning the adjacency in the Unopt variant.
func (st *state) nextParent(worker int, w, current int32) int32 {
	if st.opt {
		idx := st.lpIdx[w] + 1
		st.lpIdx[w] = idx
		if idx < st.smallerCount[w] {
			return st.g.Neighbors(w)[idx]
		}
		return noParent
	}
	// Unoptimized: rescan the whole neighbor list for the smallest id
	// above the current parent (this is exactly the cost the paper's
	// Opt variant removes).
	nb := st.g.Neighbors(w)
	st.counters[worker].V.scan += int64(len(nb))
	next := noParent
	for _, x := range nb {
		if x > current && x < w && (next == noParent || x < next) {
			next = x
		}
	}
	return next
}

// publishParent hands w to its next parent. The lpIter write is
// sequenced before the atomic lp store, so a thread that observes the
// new lp value also observes the iteration tag.
func (st *state) publishParent(w, next int32) {
	if st.lpIter != nil {
		st.lpIter[w] = int32(st.iter)
	}
	atomic.StoreInt32(&st.lp[w], next)
}

// subsetTest decides the subset condition C[w] ⊆ C[parent] (line 15),
// choosing between two exact tests of the same prefixes. Below the
// degree threshold it merge-scans, O(|cp|). At or above it, it
// materializes cp's membership into this worker's epoch set once and
// probes each element of cw, O(|cw|) per test — a hub parent tested
// against hundreds of children pays the materialization once and turns
// every subsequent test from a scan of its (large) set into a scan of
// the child's (small) one. Only the outer queued parent materializes
// (cacheable): a dataflow chain visits a different parent per step, so
// letting chains materialize would evict the hub's set between every
// two of its children. The chordal-set storage is append-only during
// extraction, so a cached (owner, length) pair always denotes
// identical contents and the two paths agree on every input; the
// threshold is a speed knob, never a semantic one.
func (st *state) subsetTest(worker int, parent int32, cw, cp []int32, cacheable bool) bool {
	if st.threshold < 0 || len(cp) < st.threshold || len(cw) > len(cp) {
		return subsetSorted(cw, cp)
	}
	hs := &st.hybrid[worker].V
	if hs.owner != parent || hs.ownerLen != int32(len(cp)) {
		if !cacheable {
			return subsetSorted(cw, cp)
		}
		if hs.set == nil {
			hs.set = bitset.NewEpoch(st.g.NumVertices())
		}
		hs.set.Clear()
		for _, x := range cp {
			hs.set.Add(x)
		}
		hs.owner = parent
		hs.ownerLen = int32(len(cp))
	}
	for _, x := range cw {
		if !hs.set.Contains(x) {
			return false
		}
	}
	return true
}

// subsetSorted reports whether sorted slice a is a subset of sorted
// slice b, in O(len(b)) by merge scan ("testing set intersections is
// efficient, linear in terms of the size of the smallest set").
func subsetSorted(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
