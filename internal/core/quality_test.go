package core

import (
	"fmt"
	"testing"

	"chordal/internal/dearing"
	"chordal/internal/graph"
	"chordal/internal/verify"
)

// TestQualityVersusSerial compares the parallel algorithm's extracted
// edge count against the serial Dearing baseline across structurally
// diverse inputs. The parallel algorithm trades the serial greedy's
// global selection rule for concurrency, so it can extract fewer
// edges; this test bounds how much quality is given up and asserts the
// repair pass recovers strict maximality everywhere.
func TestQualityVersusSerial(t *testing.T) {
	inputs := []struct {
		name string
		g    *graph.Graph
		// minRatio is the minimum acceptable |parallel EC| / |serial EC|.
		minRatio float64
	}{
		{"random-sparse", randomGraph(400, 1600, 1), 0.75},
		{"random-dense", randomGraph(120, 3500, 2), 0.60},
		{"bipartite-ish", bipartite(100, 100, 1200, 3), 0.45},
		{"lollipop", lollipop(40, 200), 0.90},
		{"cliques-chain", cliqueChain(12, 20), 0.80},
	}
	for _, in := range inputs {
		serial := dearing.Extract(in.g, 0)
		par, err := Extract(in.g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(par.NumChordalEdges()) / float64(serial.NumChordalEdges())
		if ratio < in.minRatio {
			t.Errorf("%s: parallel kept %d vs serial %d (ratio %.2f < %.2f)",
				in.name, par.NumChordalEdges(), serial.NumChordalEdges(), ratio, in.minRatio)
		}
		// With repair the parallel result is maximal, hence within the
		// same class of subgraphs the serial one lives in.
		rep, err := Extract(in.g, Options{RepairMaximality: true})
		if err != nil {
			t.Fatal(err)
		}
		sub := rep.ToGraph()
		if !verify.IsChordal(sub) {
			t.Fatalf("%s: repaired subgraph not chordal", in.name)
		}
		if len(verify.AuditMaximality(in.g, sub, 1)) != 0 {
			t.Errorf("%s: repaired subgraph not maximal", in.name)
		}
	}
}

// bipartite returns a random bipartite graph with parts of size a and
// b and roughly m edges. Bipartite graphs are triangle-free, so the
// maximal chordal subgraph is a spanning forest — a stress case for
// the subset rule (almost every test must reject).
func bipartite(a, b, m int, seed uint64) *graph.Graph {
	gb := graph.NewBuilder(a + b)
	state := seed
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for i := 0; i < m; i++ {
		gb.AddEdge(int32(next(a)), int32(a+next(b)))
	}
	return gb.Build()
}

// TestBipartiteYieldsForest checks the structural theorem directly:
// on a triangle-free graph every extracted chordal subgraph is a
// forest (edges <= vertices - components).
func TestBipartiteYieldsForest(t *testing.T) {
	g := bipartite(80, 80, 900, 7)
	res, err := Extract(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub := res.ToGraph()
	if !verify.IsChordal(sub) {
		t.Fatal("not chordal")
	}
	// A chordal triangle-free graph has no cycles at all.
	n := sub.NumVertices()
	comps := countComponents(sub)
	if int(sub.NumEdges()) > n-comps {
		t.Fatalf("forest bound violated: %d edges, %d vertices, %d components",
			sub.NumEdges(), n, comps)
	}
}

func countComponents(g *graph.Graph) int {
	n := g.NumVertices()
	seen := make([]bool, n)
	comps := 0
	var stack []int32
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		comps++
		seen[v] = true
		stack = append(stack[:0], int32(v))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return comps
}

// lollipop returns a clique of size k with a path of length tail
// hanging off it — maximal parallelism in the clique, none in the
// tail.
func lollipop(k, tail int) *graph.Graph {
	b := graph.NewBuilder(k + tail)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	for i := 0; i < tail; i++ {
		prev := k + i - 1
		if i == 0 {
			prev = k - 1
		}
		b.AddEdge(int32(prev), int32(k+i))
	}
	return b.Build()
}

// cliqueChain returns count cliques of size k, consecutive cliques
// sharing a single vertex — a chordal graph whose extraction must be
// lossless under every schedule.
func cliqueChain(count, k int) *graph.Graph {
	n := count*(k-1) + 1
	b := graph.NewBuilder(n)
	for c := 0; c < count; c++ {
		base := c * (k - 1)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddEdge(int32(base+i), int32(base+j))
			}
		}
	}
	return b.Build()
}

func TestCliqueChainLossless(t *testing.T) {
	g := cliqueChain(10, 8)
	if !verify.IsChordal(g) {
		t.Fatal("clique chain should be chordal")
	}
	for _, s := range allSchedules {
		res, err := Extract(g, Options{Schedule: s})
		if err != nil {
			t.Fatal(err)
		}
		if int64(res.NumChordalEdges()) != g.NumEdges() {
			t.Fatalf("%v: lost %d edges of a chordal input",
				s, g.NumEdges()-int64(res.NumChordalEdges()))
		}
	}
}

// TestCliqueIterationScaling verifies the paper's dense-component
// analysis: under the synchronous schedule a k-clique needs exactly
// k-1 iterations, while dataflow chaining resolves it in far fewer.
func TestCliqueIterationScaling(t *testing.T) {
	for _, k := range []int{8, 16, 32} {
		b := graph.NewBuilder(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				b.AddEdge(int32(i), int32(j))
			}
		}
		g := b.Build()
		sync, err := Extract(g, Options{Schedule: ScheduleSynchronous})
		if err != nil {
			t.Fatal(err)
		}
		if len(sync.Iterations) != k-1 {
			t.Fatalf("K%d synchronous: %d iterations, paper predicts %d",
				k, len(sync.Iterations), k-1)
		}
		flow, err := Extract(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(flow.Iterations) >= k-1 {
			t.Fatalf("K%d dataflow: %d iterations, expected chaining to beat %d",
				k, len(flow.Iterations), k-1)
		}
	}
}

// TestManyWorkersStress hammers one graph with every schedule at high
// worker counts, checking chordality and (for deterministic schedules)
// stable counts.
func TestManyWorkersStress(t *testing.T) {
	g := randomGraph(2000, 12000, 11)
	baseline := map[Schedule]int{}
	for _, s := range allSchedules {
		for _, w := range []int{1, 2, 4, 8, 16, 32} {
			res, err := Extract(g, Options{Schedule: s, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if !verify.IsChordal(res.ToGraph()) {
				t.Fatalf("%v/w%d: not chordal", s, w)
			}
			if s == ScheduleAsync {
				continue // timing-dependent count is acceptable
			}
			if base, ok := baseline[s]; !ok {
				baseline[s] = res.NumChordalEdges()
			} else if base != res.NumChordalEdges() {
				t.Fatalf("%v/w%d: count %d != baseline %d", s, w, res.NumChordalEdges(), base)
			}
		}
	}
	_ = fmt.Sprintf // keep fmt for debugging convenience
}
