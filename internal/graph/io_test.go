package graph

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertex counts differ: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	au, av := a.SortAdjacency().EdgeList()
	bu, bv := b.SortAdjacency().EdgeList()
	if !reflect.DeepEqual(au, bu) || !reflect.DeepEqual(av, bv) {
		t.Fatal("edge lists differ")
	}
}

func testGraph() *Graph {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	return b.Build()
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, back)
}

func TestEdgeListCommentsAndBlankLines(t *testing.T) {
	in := "# comment\n\n% another comment\n0 1\n 1 2 \n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeListExplicitN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 10 {
		t.Fatalf("V=%d, want 10", g.NumVertices())
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 x\n", "-1 2\n"}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, back)
	if back.Sorted != g.Sorted {
		t.Fatal("Sorted flag lost")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("JUNKJUNKJUNK"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Wrong version.
	var buf bytes.Buffer
	buf.WriteString("CHRD")
	buf.Write([]byte{9, 0, 0, 0})
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := testGraph()
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "%%MatrixMarket") {
		t.Fatal("missing banner")
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, back)
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"not a banner\n1 1 0\n",
		"%%MatrixMarket matrix array real general\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n0 1\n",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n3 1\n",
	}
	for _, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestSaveLoadFileFormats(t *testing.T) {
	g := testGraph()
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.bin", "g.mtx"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameGraph(t, g, back)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := SaveFile(filepath.Join(t.TempDir(), "no", "dir", "g.txt"), testGraph()); err == nil {
		t.Fatal("bad directory accepted")
	}
	_ = os.ErrNotExist
}

// TestEdgeListStreamingLargeInput pushes the reader across many chunk
// boundaries (the input is several MB) and checks the parallel parse
// reconstructs exactly the written graph.
func TestEdgeListStreamingLargeInput(t *testing.T) {
	const n = 2000
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for k := 1; k <= 40; k++ {
			w := (v + k*37) % n
			if v != w {
				b.AddEdge(int32(v), int32(w))
			}
		}
	}
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Duplicate the body a few times so the stream spans multiple chunks
	// and contains heavy duplication.
	body := buf.Bytes()
	var big bytes.Buffer
	for i := 0; i < 3; i++ {
		big.Write(body)
	}
	t.Logf("streaming input: %d bytes", big.Len())
	back, err := ReadEdgeList(&big, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, back)
}

// TestEdgeListErrorReportsEarliestLine checks that with parallel chunk
// parsing the reported failure is still the first bad line.
func TestEdgeListErrorReportsEarliestLine(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 100000; i++ {
		fmt.Fprintf(&buf, "%d %d\n", i%50, (i+1)%50)
	}
	buf.WriteString("oops here\n")
	for i := 0; i < 100000; i++ {
		fmt.Fprintf(&buf, "bad line too\n")
	}
	_, err := ReadEdgeList(&buf, 0)
	if err == nil {
		t.Fatal("bad input accepted")
	}
	if !strings.Contains(err.Error(), "line 100001") {
		t.Fatalf("error %q does not name the first bad line 100001", err)
	}
}

// TestEdgeListNoTrailingNewline exercises the final partial chunk.
func TestEdgeListNoTrailingNewline(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("E=%d, want 2", g.NumEdges())
	}
}

// TestEdgeListExtraFields: weighted edge lists parse, extra fields are
// ignored (seed-compatible behavior).
func TestEdgeListExtraFields(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 0.75\n1 2 0.9\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("E=%d, want 2", g.NumEdges())
	}
}
