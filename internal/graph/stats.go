package graph

import "fmt"

// Stats summarizes the structural properties reported in Table I of the
// paper for each input graph.
type Stats struct {
	Vertices        int
	Edges           int64
	AvgDegree       float64
	MaxDegree       int
	DegreeVariance  float64
	EdgesByVertices float64
}

// ComputeStats returns the Table-I statistics of g.
func ComputeStats(g *Graph) Stats {
	n := g.NumVertices()
	s := Stats{Vertices: n, Edges: g.NumEdges()}
	if n == 0 {
		return s
	}
	sum := 0.0
	sumSq := 0.0
	for v := 0; v < n; v++ {
		d := float64(g.Degree(int32(v)))
		sum += d
		sumSq += d * d
		if int(d) > s.MaxDegree {
			s.MaxDegree = int(d)
		}
	}
	s.AvgDegree = sum / float64(n)
	s.DegreeVariance = sumSq/float64(n) - s.AvgDegree*s.AvgDegree
	s.EdgesByVertices = float64(s.Edges) / float64(n)
	return s
}

// String formats the stats as one Table-I style row.
func (s Stats) String() string {
	return fmt.Sprintf("V=%d E=%d avgDeg=%.2f maxDeg=%d var=%.1f E/V=%.2f",
		s.Vertices, s.Edges, s.AvgDegree, s.MaxDegree, s.DegreeVariance, s.EdgesByVertices)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func DegreeHistogram(g *Graph) []int64 {
	counts := make([]int64, g.MaxDegree()+1)
	for v := 0; v < g.NumVertices(); v++ {
		counts[g.Degree(int32(v))]++
	}
	return counts
}
