package graph

import (
	"reflect"
	"sort"
	"testing"

	"chordal/internal/xrand"
)

// buildReference reproduces the seed's serial count + scatter + sort +
// compact construction, the baseline the parallel build must match
// byte-for-byte and the benchmark comparison point.
func buildReference(n int, us, vs []int32) *Graph {
	if len(us) != len(vs) {
		panic("graph: reference endpoint slices differ in length")
	}
	counts := make([]int64, n+1)
	for i := range us {
		if us[i] != vs[i] {
			counts[us[i]+1]++
			counts[vs[i]+1]++
		}
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	offsets := counts
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	for i := range us {
		u, v := us[i], vs[i]
		if u == v {
			continue
		}
		adj[offsets[u]+cursor[u]] = v
		cursor[u]++
		adj[offsets[v]+cursor[v]] = u
		cursor[v]++
	}
	newDeg := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		s := adj[lo:hi]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		k := 0
		for i := 0; i < len(s); i++ {
			if i == 0 || s[i] != s[i-1] {
				s[k] = s[i]
				k++
			}
		}
		newDeg[v+1] = int64(k)
	}
	finalOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		finalOffsets[v+1] = finalOffsets[v] + newDeg[v+1]
	}
	finalAdj := make([]int32, finalOffsets[n])
	for v := 0; v < n; v++ {
		src := adj[offsets[v] : offsets[v]+newDeg[v+1]]
		copy(finalAdj[finalOffsets[v]:finalOffsets[v+1]], src)
	}
	return &Graph{Offsets: finalOffsets, Adj: finalAdj, Sorted: true}
}

// rmatEdges samples R-MAT style endpoint tuples (RMAT-G quadrant
// probabilities) without going through the rmat package, which would
// create an import cycle in this test binary.
func rmatEdges(scale int, m int64, seed uint64) (int, []int32, []int32) {
	n := 1 << scale
	rng := xrand.NewXoshiro256(seed)
	us := make([]int32, m)
	vs := make([]int32, m)
	for i := range us {
		var u, v int32
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			switch {
			case r < 0.45:
			case r < 0.60:
				v |= 1 << uint(level)
			case r < 0.75:
				u |= 1 << uint(level)
			default:
				u |= 1 << uint(level)
				v |= 1 << uint(level)
			}
		}
		us[i], vs[i] = u, v
	}
	return n, us, vs
}

func identicalCSR(t *testing.T, tag string, got, want *Graph) {
	t.Helper()
	if got.Sorted != want.Sorted {
		t.Fatalf("%s: Sorted = %v, want %v", tag, got.Sorted, want.Sorted)
	}
	if !reflect.DeepEqual(got.Offsets, want.Offsets) {
		t.Fatalf("%s: offsets differ", tag)
	}
	if !reflect.DeepEqual(got.Adj, want.Adj) {
		t.Fatalf("%s: adjacency differs", tag)
	}
}

// TestBuildFromEdgesMatchesReference is the property test for the
// parallel build: across duplicate- and self-loop-heavy random edge
// lists, skewed R-MAT lists and degenerate shapes, every worker count
// must produce a CSR byte-identical to the serial reference build.
func TestBuildFromEdgesMatchesReference(t *testing.T) {
	rng := xrand.NewXoshiro256(7)
	type input struct {
		tag    string
		n      int
		us, vs []int32
	}
	var inputs []input

	// Dense random lists with many duplicates and self loops.
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(300)
		m := rng.Intn(4 * n)
		us := make([]int32, m)
		vs := make([]int32, m)
		for i := 0; i < m; i++ {
			us[i] = int32(rng.Intn(n))
			if rng.Intn(4) == 0 {
				vs[i] = us[i] // planted self loop
			} else {
				vs[i] = int32(rng.Intn(n))
			}
		}
		inputs = append(inputs, input{"random", n, us, vs})
	}
	// Skewed: R-MAT tuples concentrate both duplicates and hubs.
	n, us, vs := rmatEdges(10, 1<<13, 99)
	inputs = append(inputs, input{"rmat", n, us, vs})
	// Degenerate shapes.
	inputs = append(inputs,
		input{"empty", 0, nil, nil},
		input{"no-edges", 5, nil, nil},
		input{"all-self-loops", 3, []int32{0, 1, 2}, []int32{0, 1, 2}},
		input{"one-edge", 2, []int32{1}, []int32{0}},
	)

	for _, in := range inputs {
		want := buildReference(in.n, in.us, in.vs)
		if err := want.Validate(); err != nil {
			t.Fatalf("%s: reference invalid: %v", in.tag, err)
		}
		for _, workers := range []int{0, 1, 2, 3, 7, 16} {
			got := buildFromEdges(in.n, in.us, in.vs, workers)
			identicalCSR(t, in.tag, got, want)
		}
	}
}

func TestBuildFromEdgesDoesNotModifyInput(t *testing.T) {
	us := []int32{3, 1, 2, 2}
	vs := []int32{0, 3, 2, 0}
	usCopy := append([]int32(nil), us...)
	vsCopy := append([]int32(nil), vs...)
	buildFromEdges(4, us, vs, 4)
	if !reflect.DeepEqual(us, usCopy) || !reflect.DeepEqual(vs, vsCopy) {
		t.Fatal("BuildFromEdges modified its input slices")
	}
}

// BenchmarkBuildFromEdges measures the parallel CSR build on R-MAT
// endpoint tuples at scale 20 (2^20 vertices, 2^23 requested edges).
// Compare against BenchmarkBuildFromEdgesSeedSerial, the seed's serial
// count+scatter construction, for the ingestion speedup.
func BenchmarkBuildFromEdges(b *testing.B) {
	n, us, vs := rmatEdges(20, 1<<23, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildFromEdges(n, us, vs)
	}
}

func BenchmarkBuildFromEdgesSeedSerial(b *testing.B) {
	n, us, vs := rmatEdges(20, 1<<23, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildReference(n, us, vs)
	}
}
