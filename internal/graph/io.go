package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"chordal/internal/parallel"
)

// This file implements three on-disk formats:
//
//   - Text edge list: "u v" per line, '#' or '%' comments, 0-based ids.
//   - Binary CSR: a compact little-endian dump for fast reload of large
//     generated graphs ("CHRD" magic, version 1).
//   - Matrix Market coordinate format (pattern/symmetric), the exchange
//     format most sparse-graph collections use, with 1-based ids.
//
// The two text readers stream the input in large line-aligned chunks
// that are parsed in parallel into per-worker edge buffers, so parsing
// keeps pace with the parallel CSR construction instead of bottlenecking
// the ingestion pipeline on one growing slice.

// WriteEdgeList writes g as a text edge list with a header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# chordal edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	var err error
	buf := make([]byte, 0, 32)
	g.Edges(func(u, v int32) {
		if err == nil {
			buf = strconv.AppendInt(buf[:0], int64(u), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, '\n')
			_, err = bw.Write(buf)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// textChunk is one line-aligned block of input handed to a parse worker.
type textChunk struct {
	data []byte
	line int // 1-based line number of the first line in data
}

// chunkSize is the streaming block size for text parsing.
const chunkSize = 1 << 20

// lineError is a parse failure tagged with its line number so the
// earliest failure can be reported regardless of which worker hit it.
type lineError struct {
	line int
	err  error
}

// streamChunks reads r in line-aligned blocks and sends them to ch,
// tracking line numbers. stop aborts the producer early.
func streamChunks(r io.Reader, firstLine int, ch chan<- textChunk, stop *atomic.Bool) error {
	defer close(ch)
	line := firstLine
	var tail []byte
	for {
		if stop.Load() {
			return nil
		}
		// Grow past chunkSize when a single line exceeds it.
		buf := make([]byte, len(tail)+chunkSize)
		k := copy(buf, tail)
		nr, err := io.ReadFull(r, buf[k:])
		total := k + nr
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			if total > 0 {
				ch <- textChunk{data: buf[:total], line: line}
			}
			return nil
		}
		if err != nil {
			return err
		}
		// Cut at the last newline; the remainder seeds the next block.
		cut := total
		for cut > 0 && buf[cut-1] != '\n' {
			cut--
		}
		if cut == 0 {
			// No newline in the whole block: keep growing the tail.
			tail = buf[:total]
			continue
		}
		ch <- textChunk{data: buf[:cut], line: line}
		for _, c := range buf[:cut] {
			if c == '\n' {
				line++
			}
		}
		tail = append([]byte(nil), buf[cut:total]...)
	}
}

// parseChunks runs the streaming producer and a pool of parse workers.
// parse is called concurrently with distinct worker ids; the earliest
// line error wins.
func parseChunks(r io.Reader, firstLine, workers int, parse func(worker int, c textChunk) *lineError) error {
	ch := make(chan textChunk, workers)
	var stop atomic.Bool
	errs := make([]*lineError, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Every received chunk is parsed even after an error is
			// flagged: a worker may still hold a chunk earlier in the
			// stream than the one that failed, and skipping it would
			// lose the true earliest error. stop only halts the
			// producer, which bounds the waste to the buffered chunks.
			for c := range ch {
				if e := parse(worker, c); e != nil && errs[worker] == nil {
					errs[worker] = e
					stop.Store(true)
				}
			}
		}(w)
	}
	readErr := streamChunks(r, firstLine, ch, &stop)
	wg.Wait()
	var first *lineError
	for _, e := range errs {
		if e != nil && (first == nil || e.line < first.line) {
			first = e
		}
	}
	if first != nil {
		return first.err
	}
	return readErr
}

// parseID parses a decimal vertex id from b starting at i, returning
// the value and the index after the last digit consumed.
func parseID(b []byte, i int) (int64, int, bool) {
	neg := false
	if i < len(b) && (b[i] == '-' || b[i] == '+') {
		neg = b[i] == '-'
		i++
	}
	start := i
	var v int64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + int64(b[i]-'0')
		if v > math.MaxInt32 {
			return 0, i, false
		}
		i++
	}
	if i == start {
		return 0, i, false
	}
	if neg {
		v = -v
	}
	return v, i, true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' }

// parseEdgeLines scans the lines of one chunk for endpoint pairs,
// skipping blanks and '#'/'%' comments. base is subtracted from each id
// (1 for Matrix Market); ids must land in [0, maxVertex) when
// maxVertex > 0. Fields beyond the first two are ignored (Matrix
// Market entries carry numeric values; weighted edge lists likewise).
func parseEdgeLines(c textChunk, base int64, maxVertex int, emit func(u, v int32)) *lineError {
	data := c.data
	line := c.line
	for i := 0; i < len(data); line++ {
		end := i
		for end < len(data) && data[end] != '\n' {
			end++
		}
		ln := data[i:end]
		i = end + 1
		// Trim and classify.
		s := 0
		for s < len(ln) && isSpace(ln[s]) {
			s++
		}
		if s == len(ln) || ln[s] == '#' || ln[s] == '%' {
			continue
		}
		u, p, ok := parseID(ln, s)
		if !ok || (p < len(ln) && !isSpace(ln[p])) {
			return &lineError{line, fmt.Errorf("graph: line %d: bad vertex id in %q", line, string(ln))}
		}
		for p < len(ln) && isSpace(ln[p]) {
			p++
		}
		if p == len(ln) {
			return &lineError{line, fmt.Errorf("graph: line %d: need two fields, got %q", line, string(ln))}
		}
		v, p2, ok := parseID(ln, p)
		if !ok || (p2 < len(ln) && !isSpace(ln[p2])) {
			return &lineError{line, fmt.Errorf("graph: line %d: bad vertex id in %q", line, string(ln))}
		}
		u -= base
		v -= base
		if u < 0 || v < 0 {
			return &lineError{line, fmt.Errorf("graph: line %d: vertex id below %d", line, base)}
		}
		if maxVertex > 0 && (u >= int64(maxVertex) || v >= int64(maxVertex)) {
			return &lineError{line, fmt.Errorf("graph: line %d: entry (%d,%d) out of range", line, u+base, v+base)}
		}
		emit(int32(u), int32(v))
	}
	return nil
}

// ReadEdgeList parses a text edge list with streaming chunked parallel
// parsing. Vertex count is inferred as max id + 1 unless a larger n is
// given (pass 0 to infer).
func ReadEdgeList(r io.Reader, n int) (*Graph, error) {
	return ReadEdgeListWorkers(r, n, 0)
}

// ReadEdgeListWorkers is ReadEdgeList bounded to the given worker count
// for both the chunked parse and the CSR build (<= 0 means machine
// width).
func ReadEdgeListWorkers(r io.Reader, n, maxWorkers int) (*Graph, error) {
	workers := parallel.WorkerCount(maxWorkers)
	bufs := parallel.NewEdgeBuffers(workers)
	maxIDs := parallel.NewPadded[int32](workers)
	for w := range maxIDs {
		maxIDs[w].V = -1
	}
	err := parseChunks(r, 1, workers, func(worker int, c textChunk) *lineError {
		return parseEdgeLines(c, 0, 0, func(u, v int32) {
			bufs.Add(worker, u, v)
			if u > maxIDs[worker].V {
				maxIDs[worker].V = u
			}
			if v > maxIDs[worker].V {
				maxIDs[worker].V = v
			}
		})
	})
	if err != nil {
		return nil, err
	}
	maxID := int32(-1)
	for w := range maxIDs {
		if maxIDs[w].V > maxID {
			maxID = maxIDs[w].V
		}
	}
	if int(maxID)+1 > n {
		n = int(maxID) + 1
	}
	us, vs := bufs.Concat()
	return BuildFromEdgesWorkers(n, us, vs, maxWorkers), nil
}

const binaryMagic = "CHRD"

// WriteBinary writes g in the library's binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []any{uint32(1), uint64(g.NumVertices()), uint64(len(g.Adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	sorted := uint8(0)
	if g.Sorted {
		sorted = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, sorted); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary. The array payloads
// are read as raw bytes and decoded in parallel, bypassing the
// reflection-based encoding/binary slice path — this is the fast path
// LoadFile takes for .bin files.
func ReadBinary(r io.Reader) (*Graph, error) {
	return ReadBinaryWorkers(r, 0)
}

// ReadBinaryWorkers is ReadBinary with the parallel payload decode
// bounded to the given worker count (<= 0 means machine width).
func ReadBinaryWorkers(r io.Reader, maxWorkers int) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version uint32
	var n, adjLen uint64
	var sorted uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &adjLen); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &sorted); err != nil {
		return nil, err
	}
	if n > 1<<33 || adjLen > 1<<40 {
		return nil, fmt.Errorf("graph: implausible header (V=%d, adj=%d)", n, adjLen)
	}
	g := &Graph{
		Offsets: make([]int64, n+1),
		Adj:     make([]int32, adjLen),
		Sorted:  sorted == 1,
	}
	raw := make([]byte, 8*(n+1))
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, err
	}
	parallel.ForChunks(int(n+1), boundedWorkers(int(n+1), 1<<16, maxWorkers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			g.Offsets[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	})
	raw = make([]byte, 4*adjLen)
	if _, err := io.ReadFull(br, raw); err != nil {
		return nil, err
	}
	parallel.ForChunks(int(adjLen), boundedWorkers(int(adjLen), 1<<16, maxWorkers), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			g.Adj[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	})
	return g, nil
}

// boundedWorkers clamps the automatic worker pick for n items to an
// optional explicit bound (<= 0 means no bound).
func boundedWorkers(n, minChunk, bound int) int {
	w := parallel.WorkersFor(n, minChunk)
	if bound > 0 && w > bound {
		w = bound
	}
	return w
}

// WriteMatrixMarket writes g in Matrix Market symmetric pattern format.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric")
	fmt.Fprintf(bw, "%d %d %d\n", g.NumVertices(), g.NumVertices(), g.NumEdges())
	var err error
	buf := make([]byte, 0, 32)
	g.Edges(func(u, v int32) {
		if err == nil {
			// Matrix Market stores the lower triangle: row >= col.
			buf = strconv.AppendInt(buf[:0], int64(v)+1, 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(u)+1, 10)
			buf = append(buf, '\n')
			_, err = bw.Write(buf)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a coordinate-format Matrix Market graph,
// treating entries as undirected edges regardless of symmetry mode and
// ignoring any numeric values. The header is read serially; the entry
// body streams through the chunked parallel parser.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	return ReadMatrixMarketWorkers(r, 0)
}

// ReadMatrixMarketWorkers is ReadMatrixMarket bounded to the given
// worker count for both the chunked parse and the CSR build (<= 0 means
// machine width).
func ReadMatrixMarketWorkers(r io.Reader, maxWorkers int) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := br.ReadString('\n')
	if err != nil && header == "" {
		return nil, fmt.Errorf("graph: empty Matrix Market input")
	}
	if !strings.HasPrefix(header, "%%MatrixMarket") {
		return nil, fmt.Errorf("graph: missing MatrixMarket banner")
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("graph: only coordinate format is supported")
	}
	// Skip comments, read the size line.
	line := 1
	var n int
	for {
		text, err := br.ReadString('\n')
		if text == "" && err != nil {
			return nil, fmt.Errorf("graph: missing size line")
		}
		line++
		text = strings.TrimSpace(text)
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: bad size line %q", text)
		}
		rows, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		cols, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if rows != cols {
			return nil, fmt.Errorf("graph: matrix is %dx%d, need square", rows, cols)
		}
		n = rows
		if _, err := strconv.Atoi(fields[2]); err != nil {
			return nil, err
		}
		break
	}
	workers := parallel.WorkerCount(maxWorkers)
	bufs := parallel.NewEdgeBuffers(workers)
	err = parseChunks(br, line+1, workers, func(worker int, c textChunk) *lineError {
		return parseEdgeLines(c, 1, n, func(u, v int32) {
			bufs.Add(worker, u, v)
		})
	})
	if err != nil {
		return nil, err
	}
	us, vs := bufs.Concat()
	return BuildFromEdgesWorkers(n, us, vs, maxWorkers), nil
}

// SaveFile writes g to path, choosing the format from the extension:
// .bin for binary CSR, .mtx for Matrix Market, anything else text edges.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".bin"):
		err = WriteBinary(f, g)
	case strings.HasSuffix(path, ".mtx"):
		err = WriteMatrixMarket(f, g)
	default:
		err = WriteEdgeList(f, g)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path, choosing the format from the
// extension as in SaveFile.
func LoadFile(path string) (*Graph, error) {
	return LoadFileWorkers(path, 0)
}

// LoadFileWorkers is LoadFile with the parallel decode bounded to the
// given worker count (<= 0 means machine width). The pipeline's acquire
// stage uses this so file ingestion respects a job's budget lease.
func LoadFileWorkers(path string, maxWorkers int) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".bin"):
		return ReadBinaryWorkers(f, maxWorkers)
	case strings.HasSuffix(path, ".mtx"):
		return ReadMatrixMarketWorkers(f, maxWorkers)
	default:
		return ReadEdgeListWorkers(f, 0, maxWorkers)
	}
}
