package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// This file implements three on-disk formats:
//
//   - Text edge list: "u v" per line, '#' or '%' comments, 0-based ids.
//   - Binary CSR: a compact little-endian dump for fast reload of large
//     generated graphs ("CHRD" magic, version 1).
//   - Matrix Market coordinate format (pattern/symmetric), the exchange
//     format most sparse-graph collections use, with 1-based ids.

// WriteEdgeList writes g as a text edge list with a header comment.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# chordal edge list: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(u, v int32) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses a text edge list. Vertex count is inferred as
// max id + 1 unless a larger n is given (pass 0 to infer).
func ReadEdgeList(r io.Reader, n int) (*Graph, error) {
	var us, vs []int32
	maxID := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edge list line %d: need two fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list line %d: negative vertex id", line)
		}
		us = append(us, int32(u))
		vs = append(vs, int32(v))
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if int(maxID)+1 > n {
		n = int(maxID) + 1
	}
	return BuildFromEdges(n, us, vs), nil
}

const binaryMagic = "CHRD"

// WriteBinary writes g in the library's binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := []any{uint32(1), uint64(g.NumVertices()), uint64(len(g.Adj))}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	sorted := uint8(0)
	if g.Sorted {
		sorted = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, sorted); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Adj); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var version uint32
	var n, adjLen uint64
	var sorted uint8
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &adjLen); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &sorted); err != nil {
		return nil, err
	}
	g := &Graph{
		Offsets: make([]int64, n+1),
		Adj:     make([]int32, adjLen),
		Sorted:  sorted == 1,
	}
	if err := binary.Read(br, binary.LittleEndian, &g.Offsets); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &g.Adj); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteMatrixMarket writes g in Matrix Market symmetric pattern format.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintln(bw, "%%MatrixMarket matrix coordinate pattern symmetric")
	fmt.Fprintf(bw, "%d %d %d\n", g.NumVertices(), g.NumVertices(), g.NumEdges())
	var err error
	g.Edges(func(u, v int32) {
		if err == nil {
			// Matrix Market stores the lower triangle: row >= col.
			_, err = fmt.Fprintf(bw, "%d %d\n", v+1, u+1)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMatrixMarket reads a coordinate-format Matrix Market graph,
// treating entries as undirected edges regardless of symmetry mode and
// ignoring any numeric values.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty Matrix Market input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "%%MatrixMarket") {
		return nil, fmt.Errorf("graph: missing MatrixMarket banner")
	}
	if !strings.Contains(header, "coordinate") {
		return nil, fmt.Errorf("graph: only coordinate format is supported")
	}
	// Skip comments, read size line.
	var n, m int
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return nil, fmt.Errorf("graph: bad size line %q", text)
		}
		rows, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		cols, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if rows != cols {
			return nil, fmt.Errorf("graph: matrix is %dx%d, need square", rows, cols)
		}
		n = rows
		m, err = strconv.Atoi(fields[2])
		if err != nil {
			return nil, err
		}
		break
	}
	us := make([]int32, 0, m)
	vs := make([]int32, 0, m)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: bad entry line %q", text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if u < 1 || v < 1 || u > n || v > n {
			return nil, fmt.Errorf("graph: entry (%d,%d) out of range 1..%d", u, v, n)
		}
		us = append(us, int32(u-1))
		vs = append(vs, int32(v-1))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return BuildFromEdges(n, us, vs), nil
}

// SaveFile writes g to path, choosing the format from the extension:
// .bin for binary CSR, .mtx for Matrix Market, anything else text edges.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".bin"):
		err = WriteBinary(f, g)
	case strings.HasSuffix(path, ".mtx"):
		err = WriteMatrixMarket(f, g)
	default:
		err = WriteEdgeList(f, g)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path, choosing the format from the
// extension as in SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".bin"):
		return ReadBinary(f)
	case strings.HasSuffix(path, ".mtx"):
		return ReadMatrixMarket(f)
	default:
		return ReadEdgeList(f, 0)
	}
}
