// Package graph provides the compressed sparse row (CSR) graph substrate
// used by every algorithm in this library.
//
// Graphs are simple (no self loops, no parallel edges), undirected, and
// store each edge in both endpoint adjacency lists, exactly as the paper
// describes: "we use a compressed storage format to store the graphs in
// memory, where the neighbors of each vertex are stored contiguously".
//
// Vertices are identified by int32 ids in [0, NumVertices). The paper's
// algorithm depends on this total order of ids (lowest parents), and on
// the distinction between graphs whose adjacency lists are sorted
// (the "Opt" variant of the paper) and unsorted (the "Unopt" variant).
package graph

import (
	"fmt"
	"slices"
	"sort"

	"chordal/internal/parallel"
)

// Graph is an undirected graph in CSR form. The neighbors of vertex v are
// Adj[Offsets[v]:Offsets[v+1]]. A Graph is immutable after construction
// and safe for concurrent readers.
type Graph struct {
	// Offsets has length NumVertices+1; Offsets[v+1]-Offsets[v] is the
	// degree of v.
	Offsets []int64
	// Adj holds the concatenated adjacency lists (2 * NumEdges entries).
	Adj []int32
	// Sorted records whether every adjacency list is in ascending order.
	Sorted bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency list of v. The returned slice aliases
// the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} is present. On sorted graphs it
// runs in O(log deg(u)); otherwise it scans.
func (g *Graph) HasEdge(u, v int32) bool {
	nu := g.Neighbors(u)
	if g.Sorted {
		i := sort.Search(len(nu), func(i int) bool { return nu[i] >= v })
		return i < len(nu) && nu[i] == v
	}
	for _, w := range nu {
		if w == v {
			return true
		}
	}
	return false
}

// SizeBytes returns the in-memory size of the CSR arrays (offsets plus
// adjacency) — the byte cost the service's caches charge per graph.
func (g *Graph) SizeBytes() int64 {
	return int64(len(g.Offsets))*8 + int64(len(g.Adj))*4
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(int32(v)); d > max {
			max = d
		}
	}
	return max
}

// SortAdjacency returns a copy of g whose adjacency lists are sorted
// ascending, the representation the paper's optimized variant requires.
// If g is already sorted it is returned unchanged. Lists are sorted in
// parallel across vertices.
func (g *Graph) SortAdjacency() *Graph {
	return g.SortAdjacencyWorkers(0)
}

// SortAdjacencyWorkers is SortAdjacency bounded to the given worker
// count (<= 0 means machine width), so budget-leased callers sort
// inside their lease.
func (g *Graph) SortAdjacencyWorkers(workers int) *Graph {
	if g.Sorted {
		return g
	}
	adj := make([]int32, len(g.Adj))
	copy(adj, g.Adj)
	out := &Graph{Offsets: g.Offsets, Adj: adj, Sorted: true}
	parallel.ForVerticesN(g.NumVertices(), workers, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		slices.Sort(adj[lo:hi])
	})
	return out
}

// Validate checks structural invariants: monotone offsets, neighbor ids
// in range, no self loops, no duplicate neighbors, and symmetric edges.
// It is O(E log E)-ish and intended for tests and tools, not hot paths.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.Offsets) == 0 || g.Offsets[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if g.Offsets[n] != int64(len(g.Adj)) {
		return fmt.Errorf("graph: final offset %d != len(adj) %d", g.Offsets[n], len(g.Adj))
	}
	for v := 0; v < n; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		seen := make(map[int32]bool, g.Degree(int32(v)))
		for _, w := range g.Neighbors(int32(v)) {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if int(w) == v {
				return fmt.Errorf("graph: self loop at vertex %d", v)
			}
			if seen[w] {
				return fmt.Errorf("graph: duplicate edge {%d,%d}", v, w)
			}
			seen[w] = true
		}
		if g.Sorted {
			nb := g.Neighbors(int32(v))
			for i := 1; i < len(nb); i++ {
				if nb[i-1] >= nb[i] {
					return fmt.Errorf("graph: vertex %d marked sorted but adjacency is not", v)
				}
			}
		}
	}
	// Symmetry: every {u,v} must appear from both sides.
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(int32(v)) {
			if !g.HasEdge(w, int32(v)) {
				return fmt.Errorf("graph: edge {%d,%d} missing reverse direction", v, w)
			}
		}
	}
	return nil
}

// Edges calls fn once per undirected edge with u < v. Iteration order is
// by u then adjacency position.
func (g *Graph) Edges(fn func(u, v int32)) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(int32(u)) {
			if int32(u) < v {
				fn(int32(u), v)
			}
		}
	}
}

// EdgeList returns all undirected edges with U[i] < V[i].
func (g *Graph) EdgeList() (us, vs []int32) {
	m := g.NumEdges()
	us = make([]int32, 0, m)
	vs = make([]int32, 0, m)
	g.Edges(func(u, v int32) {
		us = append(us, u)
		vs = append(vs, v)
	})
	return us, vs
}

// InducedSubgraph returns the subgraph induced by keep (a set of vertex
// ids) together with the mapping from new ids to original ids. New ids
// preserve the relative order of the originals.
//
// The id remap is a flat slice when keep is a sizable fraction of the
// graph — analysis passes call this on most of a large graph, where
// per-vertex hashing dominates — and falls back to a map for small
// keeps so many-small-parts callers (the partitioned baseline) do not
// pay O(NumVertices) per call.
func (g *Graph) InducedSubgraph(keep []int32) (*Graph, []int32) {
	sorted := make([]int32, len(keep))
	copy(sorted, keep)
	slices.Sort(sorted)
	var lookup func(w int32) (int32, bool)
	if n := g.NumVertices(); len(sorted) >= n/16 {
		const absent = int32(-1)
		newID := make([]int32, n)
		for i := range newID {
			newID[i] = absent
		}
		for i, v := range sorted {
			newID[v] = int32(i)
		}
		lookup = func(w int32) (int32, bool) {
			nw := newID[w]
			return nw, nw != absent
		}
	} else {
		newID := make(map[int32]int32, len(sorted))
		for i, v := range sorted {
			newID[v] = int32(i)
		}
		lookup = func(w int32) (int32, bool) {
			nw, ok := newID[w]
			return nw, ok
		}
	}
	b := NewBuilder(len(sorted))
	for i, v := range sorted {
		for _, w := range g.Neighbors(v) {
			if nw, ok := lookup(w); ok && int32(i) < nw {
				b.AddEdge(int32(i), nw)
			}
		}
	}
	return b.Build(), sorted
}

// Relabel returns a copy of g in which old vertex v becomes perm[v].
// perm must be a permutation of [0, NumVertices). The result preserves
// the Sorted flag by re-sorting if g was sorted.
func (g *Graph) Relabel(perm []int32) *Graph {
	return g.RelabelWorkers(perm, 0)
}

// RelabelWorkers is Relabel bounded to the given worker count (<= 0
// means machine width), the budget-leased form the pipeline's relabel
// stage uses.
func (g *Graph) RelabelWorkers(perm []int32, workers int) *Graph {
	n := g.NumVertices()
	if len(perm) != n {
		panic("graph: Relabel permutation has wrong length")
	}
	deg := make([]int64, n+1)
	for v := 0; v < n; v++ {
		deg[perm[v]+1] = int64(g.Degree(int32(v)))
	}
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v+1]
	}
	adj := make([]int32, len(g.Adj))
	parallel.ForVerticesN(n, workers, func(v int) {
		nv := perm[v]
		dst := adj[offsets[nv]:offsets[nv+1]]
		for i, w := range g.Neighbors(int32(v)) {
			dst[i] = perm[w]
		}
	})
	out := &Graph{Offsets: offsets, Adj: adj}
	if g.Sorted {
		out = out.SortAdjacencyWorkers(workers)
	}
	return out
}

// SubgraphFromEdges builds a graph over the same vertex set containing
// only the listed edges (given as endpoint pairs with no required order).
// It is used to materialize extracted chordal edge sets as graphs.
func SubgraphFromEdges(n int, us, vs []int32) *Graph {
	return SubgraphFromEdgesWorkers(n, us, vs, 0)
}

// SubgraphFromEdgesWorkers is SubgraphFromEdges bounded to the given
// worker count (<= 0 means the automatic width), so an extraction that
// ran on a budget lease materializes its subgraph inside the same
// lease.
func SubgraphFromEdgesWorkers(n int, us, vs []int32, workers int) *Graph {
	if len(us) != len(vs) {
		panic("graph: SubgraphFromEdges endpoint slices differ in length")
	}
	b := NewBuilder(n)
	for i := range us {
		b.AddEdge(us[i], vs[i])
	}
	return b.BuildWorkers(workers)
}
