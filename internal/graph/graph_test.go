package graph

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// pathGraph returns the path 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// completeGraph returns K_n.
func completeGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	for v := int32(0); v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // reverse orientation duplicate
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop: dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self loop survived: degree(2) = %d", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := pathGraph(5)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("missing path edge")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge")
	}
	// Unsorted variant uses the scan path.
	sh := ShuffleAdjacency(g, 1)
	if !sh.HasEdge(1, 2) || sh.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong on shuffled graph")
	}
}

func TestSortAdjacency(t *testing.T) {
	g := pathGraph(100)
	sh := ShuffleAdjacency(g, 99)
	if sh.Sorted {
		t.Fatal("shuffled graph claims sorted")
	}
	re := sh.SortAdjacency()
	if !re.Sorted {
		t.Fatal("SortAdjacency did not mark sorted")
	}
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	// Sorting a sorted graph returns it unchanged.
	if g.SortAdjacency() != g {
		t.Fatal("sorting a sorted graph copied it")
	}
}

func TestEdgesIteratesOnce(t *testing.T) {
	g := completeGraph(7)
	count := 0
	g.Edges(func(u, v int32) {
		if u >= v {
			t.Fatalf("Edges yielded u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != 21 {
		t.Fatalf("iterated %d edges, want 21", count)
	}
	us, vs := g.EdgeList()
	if len(us) != 21 || len(vs) != 21 {
		t.Fatalf("EdgeList lengths %d/%d", len(us), len(vs))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := completeGraph(6)
	sub, orig := g.InducedSubgraph([]int32{5, 1, 3})
	if sub.NumVertices() != 3 {
		t.Fatalf("sub vertices = %d", sub.NumVertices())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("sub edges = %d, want triangle", sub.NumEdges())
	}
	want := []int32{1, 3, 5}
	if !reflect.DeepEqual(orig, want) {
		t.Fatalf("orig mapping %v, want %v", orig, want)
	}
	// Induced subgraph of a path keeps only consecutive pairs.
	p := pathGraph(6)
	sub, _ = p.InducedSubgraph([]int32{0, 1, 2, 4})
	if sub.NumEdges() != 2 {
		t.Fatalf("path induced edges = %d, want 2", sub.NumEdges())
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := pathGraph(6)
	perm := []int32{5, 4, 3, 2, 1, 0} // reverse
	r := g.Relabel(perm)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d -> %d", g.NumEdges(), r.NumEdges())
	}
	// Edge {0,1} must become {5,4}.
	if !r.HasEdge(5, 4) {
		t.Fatal("relabeled edge missing")
	}
	if r.HasEdge(0, 2) {
		t.Fatal("phantom relabeled edge")
	}
	// Degrees follow the permutation.
	for v := 0; v < 6; v++ {
		if g.Degree(int32(v)) != r.Degree(perm[v]) {
			t.Fatalf("degree mismatch at %d", v)
		}
	}
}

func TestRelabelPanicsOnBadPerm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pathGraph(3).Relabel([]int32{0, 1})
}

func TestSubgraphFromEdges(t *testing.T) {
	g := SubgraphFromEdges(5, []int32{0, 2}, []int32{1, 3})
	if g.NumVertices() != 5 || g.NumEdges() != 2 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Fatal("edges missing")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := pathGraph(4)
	bad := &Graph{Offsets: g.Offsets, Adj: append([]int32(nil), g.Adj...), Sorted: g.Sorted}
	bad.Adj[0] = 99 // out of range
	if bad.Validate() == nil {
		t.Fatal("Validate accepted out-of-range neighbor")
	}
	bad.Adj[0] = 0 // self loop at vertex 0
	if bad.Validate() == nil {
		t.Fatal("Validate accepted self loop")
	}
}

func TestStats(t *testing.T) {
	g := completeGraph(5)
	s := ComputeStats(g)
	if s.Vertices != 5 || s.Edges != 10 {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgDegree != 4 || s.MaxDegree != 4 {
		t.Fatalf("degree stats %+v", s)
	}
	if s.DegreeVariance != 0 {
		t.Fatalf("variance %v, want 0 for regular graph", s.DegreeVariance)
	}
	if s.EdgesByVertices != 2 {
		t.Fatalf("E/V = %v", s.EdgesByVertices)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	// Star graph: one hub of degree n-1.
	b := NewBuilder(5)
	for i := int32(1); i < 5; i++ {
		b.AddEdge(0, i)
	}
	star := b.Build()
	ss := ComputeStats(star)
	if ss.MaxDegree != 4 {
		t.Fatalf("star max degree %d", ss.MaxDegree)
	}
	if ss.DegreeVariance <= 0 {
		t.Fatalf("star variance %v", ss.DegreeVariance)
	}
	hist := DegreeHistogram(star)
	if hist[1] != 4 || hist[4] != 1 {
		t.Fatalf("histogram %v", hist)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph malformed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Vertices != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestBuildFromEdgesProperty(t *testing.T) {
	// Building from arbitrary endpoint bytes always yields a valid
	// simple symmetric graph, and rebuilding its edge list is a fixed
	// point.
	f := func(raw []byte) bool {
		if len(raw)%2 == 1 {
			raw = raw[:len(raw)-1]
		}
		const n = 256
		us := make([]int32, 0, len(raw)/2)
		vs := make([]int32, 0, len(raw)/2)
		for i := 0; i < len(raw); i += 2 {
			us = append(us, int32(raw[i]))
			vs = append(vs, int32(raw[i+1]))
		}
		g := BuildFromEdges(n, us, vs)
		if g.Validate() != nil {
			return false
		}
		u2, v2 := g.EdgeList()
		g2 := BuildFromEdges(n, u2, v2)
		if g2.NumEdges() != g.NumEdges() {
			return false
		}
		u3, v3 := g2.EdgeList()
		return reflect.DeepEqual(u2, u3) && reflect.DeepEqual(v2, v3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleAdjacencyPreservesSets(t *testing.T) {
	g := completeGraph(20)
	sh := ShuffleAdjacency(g, 5)
	for v := int32(0); v < 20; v++ {
		a := append([]int32(nil), g.Neighbors(v)...)
		b := append([]int32(nil), sh.Neighbors(v)...)
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("vertex %d neighbor set changed", v)
		}
	}
	// Deterministic in seed.
	sh2 := ShuffleAdjacency(g, 5)
	if !reflect.DeepEqual(sh.Adj, sh2.Adj) {
		t.Fatal("shuffle not deterministic")
	}
	sh3 := ShuffleAdjacency(g, 6)
	if reflect.DeepEqual(sh.Adj, sh3.Adj) {
		t.Fatal("different seeds gave identical shuffle")
	}
}

func TestMaxDegree(t *testing.T) {
	if d := pathGraph(2).MaxDegree(); d != 1 {
		t.Fatalf("path MaxDegree = %d", d)
	}
	if d := NewBuilder(3).Build().MaxDegree(); d != 0 {
		t.Fatalf("edgeless MaxDegree = %d", d)
	}
}
