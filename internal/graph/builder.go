package graph

import (
	"runtime"
	"sort"
)

// Builder accumulates undirected edges and produces a deduplicated,
// self-loop-free CSR Graph. It tolerates duplicate insertions and both
// orientations of the same edge, which is what the R-MAT generator emits.
// A Builder is not safe for concurrent use; parallel generators should
// build per-worker edge lists and combine them with BuildFromEdges.
type Builder struct {
	n  int
	us []int32
	vs []int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self loops are dropped.
// Out-of-range endpoints panic: they indicate a generator bug.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic("graph: AddEdge endpoint out of range")
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
}

// NumPending returns the number of recorded (pre-deduplication) edges.
func (b *Builder) NumPending() int { return len(b.us) }

// Build produces the deduplicated CSR graph with sorted adjacency lists.
func (b *Builder) Build() *Graph {
	return BuildFromEdges(b.n, b.us, b.vs)
}

// BuildFromEdges constructs a simple undirected CSR graph with sorted
// adjacency lists from raw endpoint slices, dropping self loops and
// duplicate edges (in either orientation). The input slices are not
// modified. Construction parallelizes the per-vertex sort/dedup pass.
func BuildFromEdges(n int, us, vs []int32) *Graph {
	if len(us) != len(vs) {
		panic("graph: BuildFromEdges endpoint slices differ in length")
	}
	// Count directed degree (both directions) excluding self loops.
	counts := make([]int64, n+1)
	for i := range us {
		if us[i] != vs[i] {
			counts[us[i]+1]++
			counts[vs[i]+1]++
		}
	}
	for v := 0; v < n; v++ {
		counts[v+1] += counts[v]
	}
	offsets := counts // prefix sums; counts[v] = start of v's bucket
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	for i := range us {
		u, v := us[i], vs[i]
		if u == v {
			continue
		}
		adj[offsets[u]+cursor[u]] = v
		cursor[u]++
		adj[offsets[v]+cursor[v]] = u
		cursor[v]++
	}
	// Sort and dedup each list in parallel, then compact.
	newDeg := make([]int64, n+1)
	parallelForVertices(n, func(v int) {
		lo, hi := offsets[v], offsets[v+1]
		s := adj[lo:hi]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		// In-place dedup.
		k := 0
		for i := 0; i < len(s); i++ {
			if i == 0 || s[i] != s[i-1] {
				s[k] = s[i]
				k++
			}
		}
		newDeg[v+1] = int64(k)
	})
	finalOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		finalOffsets[v+1] = finalOffsets[v] + newDeg[v+1]
	}
	finalAdj := make([]int32, finalOffsets[n])
	parallelForVertices(n, func(v int) {
		src := adj[offsets[v] : offsets[v]+newDeg[v+1]]
		copy(finalAdj[finalOffsets[v]:finalOffsets[v+1]], src)
	})
	return &Graph{Offsets: finalOffsets, Adj: finalAdj, Sorted: true}
}

// ShuffleAdjacency returns a copy of g whose adjacency lists are each
// pseudo-randomly permuted (deterministically from seed). This produces
// the "unordered" input representation of the paper's unoptimized
// variant from a canonical sorted graph.
func ShuffleAdjacency(g *Graph, seed uint64) *Graph {
	adj := make([]int32, len(g.Adj))
	copy(adj, g.Adj)
	out := &Graph{Offsets: g.Offsets, Adj: adj, Sorted: false}
	n := g.NumVertices()
	parallelForVertices(n, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		s := adj[lo:hi]
		// Per-vertex generator so the shuffle is independent of the
		// parallel schedule.
		state := seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		for i := len(s) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			s[i], s[j] = s[j], s[i]
		}
	})
	return out
}

// workerCount picks a worker count for n items with the given minimum
// chunk size, bounded by GOMAXPROCS.
func workerCount(n, minChunk int) int {
	w := runtime.GOMAXPROCS(0)
	if max := (n + minChunk - 1) / minChunk; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}
