package graph

import (
	"math"
	"slices"
	"sort"

	"chordal/internal/parallel"
)

// Builder accumulates undirected edges and produces a deduplicated,
// self-loop-free CSR Graph. It tolerates duplicate insertions and both
// orientations of the same edge, which is what the R-MAT generator emits.
// A Builder is not safe for concurrent use; parallel generators should
// build per-worker edge lists and combine them with BuildFromEdges.
type Builder struct {
	n  int
	us []int32
	vs []int32
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u, v}. Self loops are dropped.
// Out-of-range endpoints panic: they indicate a generator bug.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic("graph: AddEdge endpoint out of range")
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
}

// NumPending returns the number of recorded (pre-deduplication) edges.
func (b *Builder) NumPending() int { return len(b.us) }

// Build produces the deduplicated CSR graph with sorted adjacency lists.
func (b *Builder) Build() *Graph {
	return BuildFromEdges(b.n, b.us, b.vs)
}

// BuildWorkers is Build bounded to the given worker count; workers <= 0
// selects the automatic memory-budgeted count. Budget-leased callers
// use this so graph materialization stays inside their lease.
func (b *Builder) BuildWorkers(workers int) *Graph {
	return buildFromEdges(b.n, b.us, b.vs, workers)
}

// scatterWorkers picks the worker count for the count and scatter
// passes over m edges into n buckets. Each worker carries a private
// n-entry count array, so the count is bounded both by the available
// parallelism and by a memory budget proportional to the edge data
// itself (at most ~2 extra int32 per directed edge slot).
func scatterWorkers(n, m int) int {
	workers := parallel.WorkersFor(m, 1<<14)
	if n > 0 {
		if byBudget := (4*m + n - 1) / n; workers > byBudget {
			workers = byBudget
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// countTotals sums per-worker per-vertex counts into a per-vertex
// degree array. workers bounds the pass (<= 0 means automatic).
func countTotals(n, workers int, counts [][]int32) []int64 {
	deg := make([]int64, n)
	parallel.ForVerticesN(n, workers, func(v int) {
		var d int64
		for w := range counts {
			d += int64(counts[w][v])
		}
		deg[v] = d
	})
	return deg
}

// seedCursors turns per-worker per-vertex counts into per-worker write
// cursors in dst: dst[w][v] = base[v] + exclusive prefix of
// counts[0..w-1][v], so workers writing their own chunk in order fill
// each vertex's bucket contiguously and without atomics. When every
// position fits in int32, callers pass dst aliasing counts to convert
// in place, avoiding a second set of per-worker arrays entirely.
func seedCursors[C int32 | int64](n, workers int, counts [][]int32, base []int64, dst [][]C) {
	parallel.ForVerticesN(n, workers, func(v int) {
		pos := base[v]
		for w := range counts {
			c := counts[w][v]
			dst[w][v] = C(pos)
			pos += int64(c)
		}
	})
}

// newCursorSet allocates per-worker cursor arrays of the given width.
func newCursorSet[C int32 | int64](n, workers int) [][]C {
	dst := make([][]C, workers)
	parallel.ForChunks(workers, workers, func(_, lo, hi int) {
		for w := lo; w < hi; w++ {
			dst[w] = make([]C, n)
		}
	})
	return dst
}

// scatterHalf writes each canonical half-edge's larger endpoint into
// its smaller endpoint's bucket. The edge chunking must match the
// counting pass that produced the cursors.
func scatterHalf[C int32 | int64](us, vs []int32, workers int, cursors [][]C, lowAdj []int32) {
	parallel.ForChunks(len(us), workers, func(w, lo, hi int) {
		cur := cursors[w]
		for i := lo; i < hi; i++ {
			a, b := min(us[i], vs[i]), max(us[i], vs[i])
			if a == b {
				continue
			}
			lowAdj[cur[a]] = b
			cur[a]++
		}
	})
}

// scatterSmaller fills every vertex's smaller-neighbor region by
// walking the compacted half-edge array in ascending (u, v) order.
// The range chunking must match the counting pass that produced the
// cursors; together with the per-worker cursor bases it guarantees
// each region is written in ascending-u order.
func scatterSmaller[C int32 | int64](n, total, workers int, edgeOff []int64, edgeAdj, adj []int32, cursors [][]C) {
	parallel.ForChunks(total, workers, func(w, lo, hi int) {
		cur := cursors[w]
		// Owner of entry lo: the last u with edgeOff[u] <= lo.
		u := int32(sort.Search(n, func(x int) bool { return edgeOff[x+1] > int64(lo) }))
		for i := lo; i < hi; {
			end := hi
			if e := edgeOff[u+1]; e < int64(end) {
				end = int(e)
			}
			for ; i < end; i++ {
				b := edgeAdj[i]
				adj[cur[b]] = u
				cur[b]++
			}
			if i < hi {
				u++
			}
		}
	})
}

// BuildFromEdgesWorkers is BuildFromEdges bounded to the given worker
// count in every construction phase; workers <= 0 selects the automatic
// memory-budgeted count. This is the entry point for budget-leased
// callers: a service job granted k worker tokens materializes graphs at
// width k instead of machine width.
func BuildFromEdgesWorkers(n int, us, vs []int32, workers int) *Graph {
	return buildFromEdges(n, us, vs, workers)
}

// BuildFromEdges constructs a simple undirected CSR graph with sorted
// adjacency lists from raw endpoint slices, dropping self loops and
// duplicate edges (in either orientation). The input slices are not
// modified.
//
// The construction is parallel in every phase and touches each edge in
// canonical (min, max) orientation only, halving the count, scatter and
// sort volume of the naive both-directions build:
//
//  1. workers count canonical half-edges per smaller endpoint into
//     private arrays over disjoint edge chunks;
//  2. a parallel prefix sum yields the half-edge CSR offsets and
//     per-worker write cursors, and a partitioned scatter places each
//     larger endpoint into its smaller endpoint's bucket (no atomics:
//     the cursor bases make all write ranges disjoint);
//  3. each bucket is sorted and deduplicated (dynamically scheduled so
//     hub vertices cannot stall a static partition) and compacted,
//     producing the distinct edge set in canonical order;
//  4. the full adjacency is assembled directly in sorted order: vertex
//     v's smaller neighbors arrive from the compacted half-edge lists
//     in ascending-u order (contiguous ascending worker chunks +
//     per-worker cursor bases preserve order), and its larger
//     neighbors are its own half-edge list — already ascending and all
//     greater than v — appended after them. No second sort is needed.
func BuildFromEdges(n int, us, vs []int32) *Graph {
	return buildFromEdges(n, us, vs, 0)
}

// buildFromEdges is BuildFromEdges with an explicit worker count;
// forceWorkers <= 0 selects the memory-budgeted automatic count. Tests
// use the explicit form to exercise every parallel schedule under the
// race detector regardless of the host's CPU count.
func buildFromEdges(n int, us, vs []int32, forceWorkers int) *Graph {
	if len(us) != len(vs) {
		panic("graph: BuildFromEdges endpoint slices differ in length")
	}
	m := len(us)
	// bound caps every phase of the construction when the caller forced
	// a worker count; 0 keeps the automatic per-phase widths.
	bound := 0
	if forceWorkers > 0 {
		bound = forceWorkers
	}
	workers := forceWorkers
	if workers <= 0 {
		workers = scatterWorkers(n, m)
	}

	// Phase 1: per-worker canonical half-edge counts over disjoint
	// edge chunks (self loops excluded).
	counts := make([][]int32, workers)
	parallel.ForChunks(m, workers, func(w, lo, hi int) {
		cnt := make([]int32, n)
		for i := lo; i < hi; i++ {
			if us[i] != vs[i] {
				cnt[min(us[i], vs[i])]++
			}
		}
		counts[w] = cnt
	})
	// Workers past the last ceil-divided edge chunk never ran and have
	// no count array.
	active := 0
	for active < workers && counts[active] != nil {
		active++
	}
	counts = counts[:active]

	// Phase 2: half-edge offsets and partitioned scatter of each larger
	// endpoint into its smaller endpoint's bucket. When offsets fit in
	// int32 (graphs under 2^31 half-edges, i.e. essentially all) the
	// count arrays are converted to cursors in place.
	lowOff := parallel.Offsets(countTotals(n, bound, counts))
	lowAdj := make([]int32, lowOff[n])
	if lowOff[n] <= math.MaxInt32 {
		seedCursors(n, bound, counts, lowOff, counts)
		scatterHalf(us, vs, workers, counts, lowAdj)
	} else {
		cursors := newCursorSet[int64](n, active)
		seedCursors(n, bound, counts, lowOff, cursors)
		scatterHalf(us, vs, workers, cursors, lowAdj)
	}
	counts = nil

	// Phase 3: sort and deduplicate each bucket, then compact. The
	// result is the distinct edge set in canonical (u, v) order.
	distinct := make([]int64, n)
	parallel.For(n, bound, 256, func(_, v int) {
		s := lowAdj[lowOff[v]:lowOff[v+1]]
		slices.Sort(s)
		k := 0
		for i := 0; i < len(s); i++ {
			if i == 0 || s[i] != s[i-1] {
				s[k] = s[i]
				k++
			}
		}
		distinct[v] = int64(k)
	})
	edgeOff := parallel.Offsets(distinct)
	edgeAdj := make([]int32, edgeOff[n])
	parallel.For(n, bound, 256, func(_, v int) {
		copy(edgeAdj[edgeOff[v]:edgeOff[v+1]], lowAdj[lowOff[v]:lowOff[v]+distinct[v]])
	})
	lowAdj = nil

	// Phase 4: count each vertex's smaller neighbors (its appearances
	// as a larger endpoint) per worker over contiguous ranges of the
	// compacted half-edge array.
	total := int(edgeOff[n])
	inWorkers := forceWorkers
	if inWorkers <= 0 {
		inWorkers = scatterWorkers(n, total)
	}
	inCounts := make([][]int32, inWorkers)
	parallel.ForChunks(total, inWorkers, func(w, lo, hi int) {
		cnt := make([]int32, n)
		for i := lo; i < hi; i++ {
			cnt[edgeAdj[i]]++
		}
		inCounts[w] = cnt
	})
	inActive := 0
	for inActive < inWorkers && inCounts[inActive] != nil {
		inActive++
	}
	inCounts = inCounts[:inActive]

	// Phase 5: full CSR offsets. Vertex v's bucket holds its smaller
	// neighbors first, then its own half-edge (larger) list.
	inDeg := countTotals(n, bound, inCounts)
	deg := make([]int64, n)
	parallel.ForVerticesN(n, bound, func(v int) {
		deg[v] = inDeg[v] + distinct[v]
	})
	offsets := parallel.Offsets(deg)
	adj := make([]int32, offsets[n])

	// Phase 6a: copy each vertex's larger neighbors after its
	// smaller-neighbor region.
	parallel.For(n, bound, 256, func(_, v int) {
		copy(adj[offsets[v]+inDeg[v]:offsets[v+1]], edgeAdj[edgeOff[v]:edgeOff[v+1]])
	})

	// Phase 6b: scatter each vertex's smaller neighbors, ascending-u by
	// construction (see scatterSmaller).
	if offsets[n] <= math.MaxInt32 {
		seedCursors(n, bound, inCounts, offsets, inCounts)
		scatterSmaller(n, total, inWorkers, edgeOff, edgeAdj, adj, inCounts)
	} else {
		inCursors := newCursorSet[int64](n, inActive)
		seedCursors(n, bound, inCounts, offsets, inCursors)
		scatterSmaller(n, total, inWorkers, edgeOff, edgeAdj, adj, inCursors)
	}
	return &Graph{Offsets: offsets, Adj: adj, Sorted: true}
}

// ShuffleAdjacency returns a copy of g whose adjacency lists are each
// pseudo-randomly permuted (deterministically from seed). This produces
// the "unordered" input representation of the paper's unoptimized
// variant from a canonical sorted graph.
func ShuffleAdjacency(g *Graph, seed uint64) *Graph {
	adj := make([]int32, len(g.Adj))
	copy(adj, g.Adj)
	out := &Graph{Offsets: g.Offsets, Adj: adj, Sorted: false}
	n := g.NumVertices()
	parallel.ForVertices(n, func(v int) {
		lo, hi := g.Offsets[v], g.Offsets[v+1]
		s := adj[lo:hi]
		// Per-vertex generator so the shuffle is independent of the
		// parallel schedule.
		state := seed ^ (uint64(v)+1)*0x9e3779b97f4a7c15
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		for i := len(s) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			s[i], s[j] = s[j], s[i]
		}
	})
	return out
}
