package shard

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/rmat"
	"chordal/internal/synth"
	"chordal/internal/verify"
	"chordal/internal/xrand"
)

func rmatG(t testing.TB, scale int) *graph.Graph {
	t.Helper()
	g, err := rmat.Generate(rmat.PresetParams(rmat.G, scale, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOneShardMatchesStitchedCore pins the degenerate case: one shard
// with stitch-only reconciliation is exactly the whole-graph kernel
// plus the spanning stitch (core's StitchComponents), byte for byte.
func TestOneShardMatchesStitchedCore(t *testing.T) {
	g := rmatG(t, 10)
	sres, err := Extract(g, Options{Shards: 1, StitchOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := core.Extract(g, core.Options{StitchComponents: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sres.Edges, cres.Edges) {
		t.Fatalf("shards=1 edge set (%d) differs from core+stitch (%d)",
			len(sres.Edges), len(cres.Edges))
	}
	if sres.BorderTotal != 0 || sres.BorderBridges != 0 {
		t.Fatalf("one shard reported border edges: %+v", sres)
	}
}

// TestShardedChordalAcrossShardCounts is the acceptance property: for
// shards in {1, 2, 8} on an R-MAT input, the merged subgraph is
// verified chordal, structurally valid, and the reported counters are
// internally consistent.
func TestShardedChordalAcrossShardCounts(t *testing.T) {
	g := rmatG(t, 10)
	for _, shards := range []int{1, 2, 8} {
		for _, stitchOnly := range []bool{false, true} {
			res, err := Extract(g, Options{Shards: shards, StitchOnly: stitchOnly})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Chordal || !verify.IsChordal(res.Subgraph) {
				t.Fatalf("shards=%d stitchOnly=%t: merged subgraph not chordal", shards, stitchOnly)
			}
			if err := res.Subgraph.Validate(); err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if len(res.Shards) != shards {
				t.Fatalf("shards=%d: %d shard stats", shards, len(res.Shards))
			}
			interior := 0
			for _, st := range res.Shards {
				interior += st.ChordalEdges
				if st.Iterations < 1 && st.InteriorEdges > 0 {
					t.Fatalf("shard %d: no iterations for %d interior edges", st.Shard, st.InteriorEdges)
				}
			}
			want := interior + res.StitchedEdges + res.BorderAdmitted
			if got := len(res.Edges); got != want {
				t.Fatalf("shards=%d: %d edges, counters sum to %d", shards, got, want)
			}
			if stitchOnly && res.BorderAdmitted != 0 {
				t.Fatalf("stitch-only run admitted %d border edges", res.BorderAdmitted)
			}
			if int64(res.Subgraph.NumEdges()) != int64(len(res.Edges)) {
				t.Fatalf("subgraph has %d edges, result %d", res.Subgraph.NumEdges(), len(res.Edges))
			}
		}
	}
}

// TestDeterministicAcrossWorkerCounts is the byte-identity property:
// under the dataflow schedule the merged edge set must not depend on
// how many workers ran the shards. Run under -race in CI.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	g := rmatG(t, 9)
	for _, shards := range []int{1, 2, 8} {
		var base *Result
		for _, workers := range []int{1, 2, 3, 8} {
			opts := Options{Shards: shards}
			opts.Core.Workers = workers
			res, err := Extract(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if base == nil {
				base = res
				continue
			}
			if !reflect.DeepEqual(res.Edges, base.Edges) {
				t.Fatalf("shards=%d workers=%d: edge set differs from workers=1", shards, workers)
			}
		}
	}
}

// bipartiteGraph builds a graph whose every edge crosses the midpoint
// of the id range: with two contiguous shards, every single edge is a
// border edge and the shard kernels see empty interiors.
func bipartiteGraph(n int, m int, seed uint64) *graph.Graph {
	rng := xrand.NewXoshiro256(seed)
	us := make([]int32, 0, m)
	vs := make([]int32, 0, m)
	half := n / 2
	for i := 0; i < m; i++ {
		us = append(us, int32(rng.Intn(half)))
		vs = append(vs, int32(half+rng.Intn(n-half)))
	}
	return graph.BuildFromEdges(n, us, vs)
}

// TestBorderHeavyAdversarial drives the reconciliation with a graph
// built to maximize border edges: a random bipartite graph across the
// two-shard boundary. Interior extraction contributes nothing; the
// stitch and admission passes must still produce a chordal subgraph.
func TestBorderHeavyAdversarial(t *testing.T) {
	g := bipartiteGraph(600, 2400, 11)
	res, err := Extract(g, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if int64(res.BorderTotal) != g.NumEdges() {
		t.Fatalf("border edges %d, want all %d", res.BorderTotal, g.NumEdges())
	}
	for _, st := range res.Shards {
		if st.ChordalEdges != 0 {
			t.Fatalf("shard %d extracted %d interior edges from a bipartite cut", st.Shard, st.ChordalEdges)
		}
	}
	if !res.Chordal {
		t.Fatal("border-heavy merge not chordal")
	}
	// A bipartite graph has no triangles, so the chordal subgraph is a
	// forest; the spanning stitch alone must recover a spanning
	// structure and admission can only add edges that keep it chordal
	// (for bipartite inputs, none beyond the forest: any extra edge
	// closes an even cycle of length >= 4).
	if res.BorderAdmitted != 0 {
		t.Fatalf("admitted %d border edges into a bipartite (triangle-free) graph", res.BorderAdmitted)
	}
	if res.StitchedEdges == 0 || len(res.Edges) != res.StitchedEdges {
		t.Fatalf("stitched=%d total=%d, want a pure spanning forest", res.StitchedEdges, len(res.Edges))
	}
}

// TestShardRepairReachesMaximality checks the optional merged repair
// pass: on a small input the result must be maximal chordal — no edge
// of g can be added — closing both the §5 gap and the sharding gap.
func TestShardRepairReachesMaximality(t *testing.T) {
	g := synth.GNM(400, 1600, 3)
	res, err := Extract(g, Options{Shards: 4, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Chordal {
		t.Fatal("repaired merge not chordal")
	}
	if !verify.IsMaximalChordal(g, res.Subgraph) {
		t.Fatal("repaired sharded extraction is not maximal")
	}
	if res.RepairedEdges == 0 {
		t.Log("repair pass added nothing (merge already maximal)")
	}
}

// TestShardedKTreeKeepsEverything: a k-tree is chordal, so extraction
// with one shard keeps every edge; with many shards the stitch +
// admission passes must still return a chordal subgraph and the repair
// pass recovers maximality.
func TestShardedKTreeKeepsEverything(t *testing.T) {
	g := synth.KTree(500, 3, 9)
	res, err := Extract(g, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(res.Edges)) != g.NumEdges() {
		t.Fatalf("one-shard extraction of a chordal graph kept %d of %d edges",
			len(res.Edges), g.NumEdges())
	}
	res8, err := Extract(g, Options{Shards: 8, Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res8.Chordal || !verify.IsMaximalChordal(g, res8.Subgraph) {
		t.Fatal("sharded+repaired k-tree extraction lost maximality or chordality")
	}
}

// TestShardClampAndTinyGraphs covers degenerate shapes: more shards
// than vertices, empty and single-vertex graphs.
func TestShardClampAndTinyGraphs(t *testing.T) {
	g := synth.GNM(5, 6, 1)
	res, err := Extract(g, Options{Shards: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shards) != 5 {
		t.Fatalf("shards clamped to %d, want 5", len(res.Shards))
	}
	if !res.Chordal {
		t.Fatal("tiny merge not chordal")
	}
	empty := graph.BuildFromEdges(0, nil, nil)
	if res, err = Extract(empty, Options{Shards: 4}); err != nil || len(res.Edges) != 0 {
		t.Fatalf("empty graph: res=%+v err=%v", res, err)
	}
}

// TestShardCancellation: a pre-canceled context returns ctx.Err() with
// no partial result.
func TestShardCancellation(t *testing.T) {
	g := rmatG(t, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtractContext(ctx, g, Options{Shards: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOnShardIteration checks the progress hook fires with shard
// indices in range.
func TestOnShardIteration(t *testing.T) {
	g := rmatG(t, 9)
	var mu = make(chan struct{}, 1)
	seen := map[int]int{}
	opts := Options{Shards: 4}
	opts.OnShardIteration = func(shard int, it core.IterationStats) {
		mu <- struct{}{}
		seen[shard]++
		<-mu
	}
	if _, err := Extract(g, opts); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no shard iteration callbacks")
	}
	for s := range seen {
		if s < 0 || s >= 4 {
			t.Fatalf("shard index %d out of range", s)
		}
	}
}
