// Package shard implements sharded extraction: Algorithm 1 runs
// independently on vertex-range shards of the input, and the per-shard
// chordal subgraphs are reconciled into one chordal subgraph of the
// whole graph. This is the architectural step toward inputs larger
// than one node's memory — each shard's extraction touches only the
// shard-induced subgraph, so the full worklist state never needs to be
// resident at once.
//
// # Reconciliation
//
// The input is partitioned with internal/partition's contiguous-range
// part assignment. Edges interior to a shard are decided by that
// shard's own run of core.ExtractContext; edges whose endpoints lie in
// different shards (border edges) are never seen by any kernel and are
// reconciled afterwards in two chordality-preserving passes:
//
//  1. Spanning stitch: a union-find over the merged interior edge sets
//     admits any original edge joining two distinct components. Such an
//     edge is a bridge of the result, a bridge lies on no cycle, so no
//     chordless cycle can appear (the generalization of the paper's
//     remark below Theorem 2 that core.stitchComponents already uses).
//  2. Border admission (skipped under StitchOnly): each remaining
//     border edge {u, v} is tested with the exact dynamic-chordal-graph
//     separator criterion (incremental.Maintainer, the repository's one
//     admission kernel) against the merged subgraph built so far — the
//     admit-if-it-closes-a-triangle idea of the distributed baseline in
//     internal/partition, but with the exact criterion, so chordality
//     is preserved by construction instead of repaired by a
//     cycle-elimination pass afterwards.
//
// Both passes are sequential scans in a deterministic edge order, and
// the per-shard kernels run the schedule-independent dataflow
// discipline, so the merged edge set is byte-identical across worker
// counts. See DESIGN.md §7 for the proof sketch and the maximality
// trade-off.
package shard

import (
	"context"
	"fmt"
	"slices"
	"sync"
	"time"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/incremental"
	"chordal/internal/parallel"
	"chordal/internal/partition"
	"chordal/internal/verify"
)

// Options configures a sharded extraction. Shards is the only required
// field; the zero value of everything else mirrors core.Options
// defaults.
type Options struct {
	// Shards is the number of contiguous vertex-range shards; it is
	// clamped to [1, NumVertices]. One shard degenerates to a plain
	// core extraction (no border edges exist).
	Shards int
	// Core configures the per-shard extraction kernels. Core.Workers is
	// the total worker budget for the whole sharded run — shards run
	// concurrently and divide it, so a budget-leased job never exceeds
	// its lease no matter how many shards it asked for. Core.Schedule
	// should stay ScheduleDataflow when byte-identical output across
	// worker counts matters.
	Core core.Options
	// StitchOnly restricts border reconciliation to the spanning
	// stitch: only bridges join the merged subgraph and all other
	// border edges are dropped. This is the cheapest reconciliation and
	// the one whose output is most directly comparable across shard
	// counts; the default additionally admits border edges that provably
	// keep the subgraph chordal.
	StitchOnly bool
	// Repair runs a final exact repair pass over every absent original
	// edge (interior and border) until none can be added, closing both
	// the §5 maximality gap and the sharding gap. Cost grows with the
	// number of absent edges; intended for small graphs and validation.
	Repair bool
	// OnShardIteration, when non-nil, receives each shard's iteration
	// statistics as they complete. Shards extract concurrently, so it
	// may be invoked concurrently for different shards; the service
	// layer serializes the events it emits from this hook.
	OnShardIteration func(shard int, it core.IterationStats)
}

// ShardStat describes one shard's extraction.
type ShardStat struct {
	// Shard is the shard index in [0, Shards).
	Shard int
	// Vertices is the shard's vertex-range size.
	Vertices int
	// InteriorEdges is the number of input edges interior to the shard
	// (both endpoints inside it).
	InteriorEdges int64
	// ChordalEdges is the size of the shard kernel's chordal edge set.
	ChordalEdges int
	// Iterations is the shard kernel's while-loop iteration count.
	Iterations int
	// Duration is the shard kernel's wall-clock time.
	Duration time.Duration
}

// Result is the merged outcome of a sharded extraction.
type Result struct {
	// NumVertices is the vertex count of the input graph.
	NumVertices int
	// Edges is the merged chordal edge set (U < V, sorted).
	Edges []core.Edge
	// Subgraph is the merged chordal subgraph materialized as a graph.
	Subgraph *graph.Graph
	// Shards holds one entry per shard in index order.
	Shards []ShardStat
	// BorderTotal is the number of input edges crossing shards.
	BorderTotal int
	// StitchedEdges counts edges admitted by the spanning stitch;
	// BorderBridges is the subset of them that cross shards (the rest
	// reconnect components split within a shard by the §5 gap).
	StitchedEdges int
	BorderBridges int
	// BorderAdmitted counts border edges admitted by the exact
	// chordality-preserving pass (0 under StitchOnly).
	BorderAdmitted int
	// RepairedEdges counts edges added by the optional Repair pass.
	RepairedEdges int
	// Chordal is the internal/verify chordality check of the merged
	// subgraph; it must always be true and exists as a self-check of
	// the reconciliation argument.
	Chordal bool
	// Total is the wall-clock time of the whole sharded extraction.
	Total time.Duration
}

// NumChordalEdges returns the merged chordal edge count.
func (r *Result) NumChordalEdges() int { return len(r.Edges) }

// EdgeStream iterates every undirected input edge exactly once as
// (u, v) with u < v, in ascending-u, adjacency-position order — the
// order graph.Graph.Edges produces. Reconcile's admission sequence (and
// therefore the merged edge set) is a function of this order, so any
// alternative input representation (extio's disk-backed CSR) must
// reproduce it exactly to stay byte-identical with the in-memory path.
// A stream may be consumed more than once and must replay identically.
type EdgeStream func(fn func(u, v int32)) error

// GraphEdges adapts an in-memory graph to an EdgeStream.
func GraphEdges(g *graph.Graph) EdgeStream {
	return func(fn func(u, v int32)) error {
		g.Edges(fn)
		return nil
	}
}

// Extract runs a sharded extraction with a background context.
func Extract(g *graph.Graph, opts Options) (*Result, error) {
	return ExtractContext(context.Background(), g, opts)
}

// ExtractContext runs a sharded extraction under ctx: partition the
// vertex range, extract per shard concurrently within the worker
// budget, reconcile border edges, and verify the merged subgraph.
// Cancellation is observed between shards' iterations and between the
// merge phases; the first error returned after cancellation is
// ctx.Err(), with no goroutines left behind.
func ExtractContext(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: nil graph")
	}
	start := time.Now()
	n := g.NumVertices()
	parts := 1
	if n > 0 {
		parts = partition.ClampParts(n, opts.Shards)
	}
	workers := parallel.WorkerCount(opts.Core.Workers)
	conc := parts
	if conc > workers {
		conc = workers
	}
	perShard := workers / conc
	if perShard < 1 {
		perShard = 1
	}

	res := &Result{NumVertices: n, Shards: make([]ShardStat, parts)}

	// Per-shard kernels. The per-shard options disable the kernel's own
	// post-passes: stitching and repair are global decisions made after
	// the merge, where the reconciled edge set is known.
	runShard := func(p int, sub *graph.Graph, remap func(int32) int32) ([]core.Edge, error) {
		co := opts.Core
		co.Workers = perShard
		co.RepairMaximality = false
		co.StitchComponents = false
		co.OnEvent = nil
		co.OnIteration = nil
		if opts.OnShardIteration != nil {
			co.OnIteration = func(it core.IterationStats) {
				opts.OnShardIteration(p, it)
			}
		}
		r, err := core.ExtractContext(ctx, sub, co)
		if err != nil {
			return nil, err
		}
		edges := make([]core.Edge, len(r.Edges))
		for i, e := range r.Edges {
			edges[i] = core.Edge{U: remap(e.U), V: remap(e.V)}
		}
		res.Shards[p] = ShardStat{
			Shard:         p,
			Vertices:      sub.NumVertices(),
			InteriorEdges: sub.NumEdges(),
			ChordalEdges:  len(r.Edges),
			Iterations:    len(r.Iterations),
			Duration:      r.Total,
		}
		return edges, nil
	}

	var (
		shardEdges = make([][]core.Edge, parts)
		errMu      sync.Mutex
		firstErr   error
	)
	if parts == 1 {
		// Single shard: the induced subgraph is the graph itself — skip
		// the copy and run the kernel directly.
		edges, err := runShard(0, g, func(v int32) int32 { return v })
		if err != nil {
			return nil, err
		}
		shardEdges[0] = edges
	} else {
		parallel.For(parts, conc, 1, func(_, p int) {
			lo, hi := partition.Bounds(n, parts, p)
			ids := make([]int32, 0, hi-lo)
			for v := lo; v < hi; v++ {
				ids = append(ids, v)
			}
			// The keep set is a contiguous ascending range, so local id
			// i maps back to lo+i.
			sub, _ := g.InducedSubgraph(ids)
			edges, err := runShard(p, sub, func(v int32) int32 { return lo + v })
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			shardEdges[p] = edges
		})
		if firstErr != nil {
			return nil, firstErr
		}
	}

	total := 0
	for _, es := range shardEdges {
		total += len(es)
	}
	res.Edges = make([]core.Edge, 0, total)
	for _, es := range shardEdges {
		res.Edges = append(res.Edges, es...)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if err := res.Reconcile(ctx, GraphEdges(g), parts, opts); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res.Finalize(opts.Core.Workers)
	res.Total = time.Since(start)
	return res, nil
}

// Reconcile performs the border passes: spanning stitch, optional exact
// border admission, and the optional full repair. It appends to
// res.Edges and fills the border counters. The per-shard edge sets must
// already be merged into res.Edges in shard index order. An error from
// the edge stream is returned as-is; cancellation aborts silently and is
// surfaced by the caller's own ctx check, as before the stream refactor.
func (res *Result) Reconcile(ctx context.Context, edges EdgeStream, parts int, opts Options) error {
	n := res.NumVertices
	partOf := partition.PartOf(n, max(parts, 1))

	// Pass 1 — spanning stitch. Seed the union-find with the merged
	// interior edges, then admit any original edge bridging two
	// components. Border edges that do not bridge are remembered for
	// pass 2.
	uf := core.NewUnionFind(n)
	for _, e := range res.Edges {
		uf.Union(e.U, e.V)
	}
	var deferred []core.Edge
	err := edges(func(u, v int32) {
		border := parts > 1 && partOf(u) != partOf(v)
		if border {
			res.BorderTotal++
		}
		if uf.Find(u) != uf.Find(v) {
			uf.Union(u, v)
			res.Edges = append(res.Edges, core.Edge{U: u, V: v})
			res.StitchedEdges++
			if border {
				res.BorderBridges++
			}
			return
		}
		if border {
			deferred = append(deferred, core.Edge{U: u, V: v})
		}
	})
	if err != nil {
		return err
	}

	if opts.StitchOnly && !opts.Repair {
		return nil
	}
	if ctx.Err() != nil {
		return nil
	}

	// Passes 2 and 3 delegate admission to incremental.Maintainer — the
	// repository's one implementation of the separator criterion —
	// seeded with the merged subgraph. The maintainer runs the cheap
	// common-neighbor pre-filter before the exact check (after pass 1
	// every candidate's endpoints lie in one component, so an empty
	// N(u) ∩ N(v) cannot separate them), keeps a hub's marked
	// neighborhood cached across the ascending-u candidate order, and
	// records every rejection in its deferred queue for the repair
	// fixpoint.
	m := incremental.New(n, opts.Core.DegreeThreshold)
	for _, e := range res.Edges {
		m.Seed(e.U, e.V)
	}

	// Pass 2 — exact border admission in deterministic order. The
	// exact check can walk a large part of the merged graph per edge,
	// so cancellation is observed every few hundred edges: a canceled
	// job must release its budget tokens promptly, not after the whole
	// border drains.
	if !opts.StitchOnly {
		for i, e := range deferred {
			if i%256 == 0 && ctx.Err() != nil {
				return nil
			}
			if ok, _ := m.Admit(e.U, e.V); ok {
				res.Edges = append(res.Edges, e)
				res.BorderAdmitted++
			}
		}
	}

	// Pass 3 — optional full repair to maximality, the merged analogue
	// of core's RepairMaximality post-pass: one scan of the original
	// graph defers every inadmissible absent edge in scan order, then
	// the maintainer retests the queue until a pass admits nothing.
	if opts.Repair {
		m.ResetDeferred() // rebuild the queue in edge-stream scan order
		scanned, aborted := 0, false
		err := edges(func(u, v int32) {
			if aborted {
				return
			}
			if scanned++; scanned%1024 == 0 && ctx.Err() != nil {
				aborted = true
				return
			}
			if ok, _ := m.Admit(u, v); ok {
				res.Edges = append(res.Edges, core.Edge{U: u, V: v})
				res.RepairedEdges++
			}
		})
		if err != nil {
			return err
		}
		if aborted {
			return nil
		}
		admitted, _ := m.RepairContext(ctx) // ctx error rechecked by the caller
		for _, e := range admitted {
			res.Edges = append(res.Edges, core.Edge{U: e.U, V: e.V})
			res.RepairedEdges++
		}
	}
	return nil
}

// Finalize sorts the merged edge set into the canonical (U, V) order,
// materializes Subgraph within the given worker bound, and runs the
// chordality self-check. Callers that assemble a Result outside
// ExtractContext (the out-of-core driver) call it after Reconcile.
func (res *Result) Finalize(workers int) {
	sortEdges(res.Edges)
	us := make([]int32, len(res.Edges))
	vs := make([]int32, len(res.Edges))
	for i, e := range res.Edges {
		us[i], vs[i] = e.U, e.V
	}
	res.Subgraph = graph.SubgraphFromEdgesWorkers(res.NumVertices, us, vs, workers)
	res.Chordal = verify.IsChordal(res.Subgraph)
}

// sortEdges orders edges by (U, V), the canonical order every
// extraction result uses.
func sortEdges(edges []core.Edge) {
	slices.SortFunc(edges, func(a, b core.Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
}
