package dearing

import (
	"testing"
	"testing/quick"

	"chordal/internal/graph"
	"chordal/internal/verify"
	"chordal/internal/xrand"
)

func buildGraph(n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	rng := xrand.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	r := Extract(graph.NewBuilder(0).Build(), 0)
	if r.NumChordalEdges() != 0 || len(r.Order) != 0 {
		t.Fatal("empty graph mishandled")
	}
}

func TestSingleVertex(t *testing.T) {
	r := Extract(graph.NewBuilder(1).Build(), 0)
	if len(r.Order) != 1 {
		t.Fatalf("order %v", r.Order)
	}
}

func TestTriangle(t *testing.T) {
	g := buildGraph(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}})
	r := Extract(g, 0)
	if r.NumChordalEdges() != 3 {
		t.Fatalf("triangle kept %d edges", r.NumChordalEdges())
	}
}

func TestC4KeepsThree(t *testing.T) {
	g := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	r := Extract(g, 0)
	if r.NumChordalEdges() != 3 {
		t.Fatalf("C4 kept %d edges, want 3", r.NumChordalEdges())
	}
}

func TestStarAnyCenter(t *testing.T) {
	// Unlike the id-order parallel algorithm, Dearing's greedy keeps
	// every star edge regardless of the center's id.
	for _, center := range []int32{0, 2, 4} {
		b := graph.NewBuilder(5)
		for i := int32(0); i < 5; i++ {
			if i != center {
				b.AddEdge(center, i)
			}
		}
		r := Extract(b.Build(), 0)
		if r.NumChordalEdges() != 4 {
			t.Fatalf("center %d: kept %d of 4 star edges", center, r.NumChordalEdges())
		}
	}
}

func TestCompleteGraphKept(t *testing.T) {
	b := graph.NewBuilder(12)
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	g := b.Build()
	r := Extract(g, 0)
	if int64(r.NumChordalEdges()) != g.NumEdges() {
		t.Fatalf("K12 kept %d of %d", r.NumChordalEdges(), g.NumEdges())
	}
}

func TestOrderSelectsEveryVertexOnce(t *testing.T) {
	g := randomGraph(100, 300, 1)
	r := Extract(g, 0)
	if len(r.Order) != 100 {
		t.Fatalf("order length %d", len(r.Order))
	}
	seen := make([]bool, 100)
	for _, v := range r.Order {
		if seen[v] {
			t.Fatalf("vertex %d selected twice", v)
		}
		seen[v] = true
	}
}

func TestChordalAndMaximalProperty(t *testing.T) {
	// The serial baseline guarantees both chordality and maximality on
	// every input.
	f := func(seed uint64, nRaw, mRaw uint16) bool {
		n := 3 + int(nRaw%80)
		m := int(mRaw % 800)
		g := randomGraph(n, m, seed)
		r := Extract(g, 0)
		sub := r.ToGraph(n)
		if !verify.IsChordal(sub) {
			return false
		}
		return len(verify.AuditMaximality(g, sub, 1)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStartVertexHonored(t *testing.T) {
	g := randomGraph(50, 150, 2)
	r := Extract(g, 17)
	if r.Order[0] != 17 {
		t.Fatalf("start vertex %d, want 17", r.Order[0])
	}
	// Out-of-range start falls back to 0.
	r = Extract(g, -5)
	if r.Order[0] != 0 {
		t.Fatalf("fallback start %d", r.Order[0])
	}
	r = Extract(g, 1000)
	if r.Order[0] != 0 {
		t.Fatalf("fallback start %d", r.Order[0])
	}
}

func TestDisconnectedComponentsAllSelected(t *testing.T) {
	g := buildGraph(6, [][2]int32{{0, 1}, {3, 4}})
	r := Extract(g, 0)
	if len(r.Order) != 6 {
		t.Fatalf("order covers %d of 6 vertices", len(r.Order))
	}
	if r.NumChordalEdges() != 2 {
		t.Fatalf("kept %d of 2 edges", r.NumChordalEdges())
	}
}

func TestEdgesSortedAndReal(t *testing.T) {
	g := randomGraph(80, 400, 3)
	r := Extract(g, 0)
	for i, e := range r.Edges {
		if e.U >= e.V {
			t.Fatalf("edge %v not oriented", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v not in input", e)
		}
		if i > 0 {
			p := r.Edges[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				t.Fatalf("edges unsorted at %d", i)
			}
		}
	}
}

func TestSelectionOrderIsReversePEO(t *testing.T) {
	// The selection order reversed is a perfect elimination ordering of
	// the extracted subgraph: each vertex's candidate clique comes
	// earlier.
	g := randomGraph(60, 240, 4)
	r := Extract(g, 0)
	sub := r.ToGraph(60)
	rev := make([]int32, len(r.Order))
	for i, v := range r.Order {
		rev[len(r.Order)-1-i] = v
	}
	if !verify.IsPEO(sub, rev) {
		t.Fatal("reversed selection order is not a PEO of the output")
	}
}

func TestInsertSorted(t *testing.T) {
	s := []int32{}
	for _, x := range []int32{5, 1, 3, 2, 4} {
		s = insertSorted(s, x)
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Fatalf("not sorted: %v", s)
		}
	}
	if len(s) != 5 {
		t.Fatalf("length %d", len(s))
	}
}
