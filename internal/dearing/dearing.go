// Package dearing implements the serial maximal chordal subgraph
// algorithm of Dearing, Shier and Warner (Discrete Applied Mathematics,
// 1988), the baseline the paper's parallel algorithm derives from and is
// compared against conceptually.
//
// The algorithm grows the chordal subgraph one vertex at a time. Each
// unselected vertex v carries a candidate set C(v): the selected
// neighbors whose edges to v will be kept when v is selected. At every
// step the unselected vertex with the largest candidate set is selected
// and its candidate edges are added; then, for every unselected neighbor
// w of the new vertex v, v joins C(w) exactly when C(w) ⊆ C(v) — the
// same subset test the multithreaded Algorithm 1 inherits. The
// traversal is inherently sequential because each selection depends on
// all previous ones; its complexity is O(|E|·Δ).
//
// The selected candidate sets always form cliques in the grown
// subgraph, which is what makes the output chordal and maximal.
package dearing

import (
	"sort"
	"time"

	"chordal/internal/graph"
)

// Result is the output of Extract.
type Result struct {
	// Edges is the maximal chordal edge set, each with U < V.
	Edges []Edge
	// Order is the vertex selection order (a reverse perfect
	// elimination ordering of the extracted subgraph).
	Order []int32
	// Total is the wall-clock extraction time.
	Total time.Duration
}

// Edge is an undirected chordal edge with U < V.
type Edge struct {
	U, V int32
}

// NumChordalEdges returns |EC|.
func (r *Result) NumChordalEdges() int { return len(r.Edges) }

// ToGraph materializes the chordal edge set as a CSR graph.
func (r *Result) ToGraph(n int) *graph.Graph {
	us := make([]int32, len(r.Edges))
	vs := make([]int32, len(r.Edges))
	for i, e := range r.Edges {
		us[i], vs[i] = e.U, e.V
	}
	return graph.SubgraphFromEdges(n, us, vs)
}

// Extract runs the serial algorithm on g, starting from vertex start
// (pass a negative value to start from vertex 0). Unreached components
// are started from their lowest-id vertex, so every vertex is selected
// exactly once.
func Extract(g *graph.Graph, start int32) *Result {
	t0 := time.Now()
	n := g.NumVertices()
	res := &Result{Order: make([]int32, 0, n)}
	if n == 0 {
		res.Total = time.Since(t0)
		return res
	}
	if start < 0 || int(start) >= n {
		start = 0
	}

	selected := make([]bool, n)
	// cand[v] is C(v), kept sorted by id so the subset test is a merge
	// scan, mirroring the optimized representation of the paper.
	cand := make([][]int32, n)

	// Max-priority selection by |C(v)| with lazy deletion: a simple
	// bucket queue over candidate-set sizes.
	buckets := make([][]int32, 1)
	inSize := make([]int32, n) // current |C(v)| for unselected v
	pushBucket := func(v int32) {
		s := inSize[v]
		for int(s) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[s] = append(buckets[s], v)
	}
	maxSize := 0

	popMax := func() int32 {
		for maxSize >= 0 {
			b := buckets[maxSize]
			for len(b) > 0 {
				v := b[len(b)-1]
				b = b[:len(b)-1]
				buckets[maxSize] = b
				// Lazy deletion: skip entries whose size has since
				// changed or that were already selected.
				if !selected[v] && int(inSize[v]) == maxSize {
					return v
				}
			}
			maxSize--
		}
		return -1
	}

	selectVertex := func(v int32) {
		selected[v] = true
		res.Order = append(res.Order, v)
		cv := cand[v]
		for _, u := range cv {
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			res.Edges = append(res.Edges, Edge{U: a, V: b})
		}
		for _, w := range g.Neighbors(v) {
			if selected[w] {
				continue
			}
			if subsetSorted(cand[w], cv) {
				cand[w] = insertSorted(cand[w], v)
				inSize[w]++
				pushBucket(w)
				if int(inSize[w]) > maxSize {
					maxSize = int(inSize[w])
				}
			}
		}
	}

	// Seed with the requested start vertex, then sweep remaining
	// components in id order.
	selectVertex(start)
	remaining := n - 1
	nextSweep := int32(0)
	for remaining > 0 {
		v := popMax()
		if v < 0 {
			// Queue exhausted: start a new component at the lowest
			// unselected id. Its candidate set is empty, so no edges
			// are implied — matching the disconnected-components
			// discussion below the paper's Theorem 2.
			for selected[nextSweep] {
				nextSweep++
			}
			v = nextSweep
		}
		selectVertex(v)
		remaining--
	}

	sort.Slice(res.Edges, func(i, j int) bool {
		if res.Edges[i].U != res.Edges[j].U {
			return res.Edges[i].U < res.Edges[j].U
		}
		return res.Edges[i].V < res.Edges[j].V
	})
	res.Total = time.Since(t0)
	return res
}

// subsetSorted reports whether sorted a ⊆ sorted b.
func subsetSorted(a, b []int32) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

// insertSorted inserts x into sorted s, preserving order.
func insertSorted(s []int32, x int32) []int32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}
