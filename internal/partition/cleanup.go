package partition

import (
	"chordal/internal/graph"
	"chordal/internal/verify"
)

// CleanupReport describes one run of the long-cycle elimination pass.
type CleanupReport struct {
	// Removed counts border edges deleted to break holes.
	Removed int
	// Rounds counts hole-search iterations until chordality.
	Rounds int
	// Chordal reports the final state (always true on return unless
	// the round limit was hit).
	Chordal bool
}

// Cleanup implements the cycle-elimination step the paper describes
// for the distributed approach (Section II): border edges can assemble
// cycles longer than three, and "this process in turn can create other
// cycles, and the cycle elimination process has to be repeated" — the
// repetition the paper identifies as the scheme's sequential
// bottleneck. Each round finds a hole (a chordless cycle of length
// >= 4), deletes one border edge on it, and repeats until the subgraph
// is chordal or maxRounds passes without convergence (maxRounds <= 0
// means unbounded). Only border edges are candidates: interior edges
// come from per-partition maximal chordal subgraphs and cannot lie on
// a hole by themselves.
func (r *Result) Cleanup(n int, partOf func(int32) int, maxRounds int) CleanupReport {
	adj := make([][]int32, n)
	for _, e := range r.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	removed := map[[2]int32]bool{}
	report := CleanupReport{}
	for {
		if maxRounds > 0 && report.Rounds >= maxRounds {
			report.Chordal = verify.IsChordalAdj(adj)
			break
		}
		hole := verify.FindHole(adj)
		if hole == nil {
			report.Chordal = true
			break
		}
		report.Rounds++
		// Delete the first border edge on the hole (one must exist).
		deleted := false
		k := len(hole)
		for i := 0; i < k && !deleted; i++ {
			u, v := hole[i], hole[(i+1)%k]
			if partOf(u) == partOf(v) {
				continue
			}
			removeEdge(adj, u, v)
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			removed[[2]int32{a, b}] = true
			report.Removed++
			deleted = true
		}
		if !deleted {
			// A hole with no border edge means an interior extraction
			// bug; remove any edge to guarantee progress and let the
			// verification surface the anomaly.
			removeEdge(adj, hole[0], hole[1])
			report.Removed++
		}
	}
	if report.Removed > 0 {
		kept := r.Edges[:0]
		for _, e := range r.Edges {
			if !removed[[2]int32{e.U, e.V}] {
				kept = append(kept, e)
			}
		}
		r.Edges = kept
		r.BorderAdmitted -= report.Removed
		r.Chordal = report.Chordal
	}
	return report
}

func removeEdge(adj [][]int32, u, v int32) {
	adj[u] = dropValue(adj[u], v)
	adj[v] = dropValue(adj[v], u)
}

func dropValue(s []int32, x int32) []int32 {
	for i, y := range s {
		if y == x {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// ExtractAndClean runs the partitioned scheme followed by the cleanup
// pass, yielding a guaranteed-chordal (though not necessarily maximal)
// subgraph — the full pipeline of the paper's reference [8].
func ExtractAndClean(g *graph.Graph, parts int) (*Result, CleanupReport) {
	res := Extract(g, parts)
	n := g.NumVertices()
	parts = ClampParts(n, parts)
	rep := res.Cleanup(n, PartOf(n, parts), 0)
	return res, rep
}
