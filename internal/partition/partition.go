// Package partition implements the earlier distributed-memory approach
// to chordal subgraph extraction that the paper discusses as related
// work (Dempsey, Duraisamy, Ali, Bhowmick — refs [4], [5], [8]): the
// graph is partitioned, the serial Dearing algorithm runs independently
// on each partition's interior, and border edges (edges whose endpoints
// lie in different partitions) are then admitted when they close a
// triangle with already-chordal edges.
//
// As the paper points out, this scheme is only *nearly* chordal — border
// edges can assemble cycles longer than three — and eliminating those
// cycles can degenerate to sequential work. The package therefore
// reports exactly how non-chordal the result is (via a final
// verification) so the benchmark harness can contrast it against
// Algorithm 1, which never admits a long cycle in the first place.
package partition

import (
	"sort"
	"time"

	"chordal/internal/dearing"
	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/verify"
)

// Result is the output of Extract.
type Result struct {
	// Edges is the extracted (nearly chordal) edge set, U < V.
	Edges []dearing.Edge
	// InteriorEdges counts edges contributed by per-partition serial
	// extraction.
	InteriorEdges int
	// BorderAdmitted counts border edges admitted by the triangle rule.
	BorderAdmitted int
	// BorderTotal counts all border edges examined.
	BorderTotal int
	// Chordal records whether the combined subgraph happened to be
	// chordal (it is not guaranteed to be).
	Chordal bool
	// Parts is the number of partitions used.
	Parts int
	// Total is the wall-clock extraction time.
	Total time.Duration
}

// ToGraph materializes the extracted edge set.
func (r *Result) ToGraph(n int) *graph.Graph {
	us := make([]int32, len(r.Edges))
	vs := make([]int32, len(r.Edges))
	for i, e := range r.Edges {
		us[i], vs[i] = e.U, e.V
	}
	return graph.SubgraphFromEdges(n, us, vs)
}

// ClampParts bounds a requested part count to [1, n], the valid range
// for a contiguous partition of n vertices.
func ClampParts(n, parts int) int {
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	return parts
}

// PartOf returns the contiguous-range part assignment for a graph with
// n vertices split into parts ranges: vertex v belongs to part
// v*parts/n. This is the shared assignment used by both the
// distributed-style baseline here and the sharded extraction in
// internal/shard, so border-edge classification agrees everywhere.
func PartOf(n, parts int) func(v int32) int {
	return func(v int32) int { return int(int64(v) * int64(parts) / int64(n)) }
}

// Bounds returns the vertex id range [lo, hi) of part p under the
// PartOf assignment.
func Bounds(n, parts, p int) (lo, hi int32) {
	return int32(int64(p) * int64(n) / int64(parts)), int32(int64(p+1) * int64(n) / int64(parts))
}

// CutEdges counts the edges of g crossing parts under the PartOf
// assignment — the border edges every kernel skips and the
// reconciliation pass must examine. It is the per-run measure of how
// much a contiguous-range partition costs (and what a smarter
// edge-cut-minimizing partitioner would shrink); sharded runs surface
// it as ShardSummary.EdgeCut. parts <= 1 has no borders and returns 0.
func CutEdges(g *graph.Graph, parts int) int64 {
	n := g.NumVertices()
	if n == 0 || parts <= 1 {
		return 0
	}
	parts = ClampParts(n, parts)
	if parts == 1 {
		return 0
	}
	partOf := PartOf(n, parts)
	var cut int64
	g.Edges(func(u, v int32) {
		if partOf(u) != partOf(v) {
			cut++
		}
	})
	return cut
}

// Extract partitions g into parts contiguous vertex ranges, extracts a
// maximal chordal subgraph inside each range concurrently with the
// serial baseline, then admits border edges that form a triangle with
// an interior chordal edge.
func Extract(g *graph.Graph, parts int) *Result {
	t0 := time.Now()
	n := g.NumVertices()
	parts = ClampParts(n, parts)
	res := &Result{Parts: parts}

	partOf := PartOf(n, parts)

	// Interior extraction, one task per part on the shared runtime.
	type interior struct{ edges []dearing.Edge }
	interiors := make([]interior, parts)
	parallel.For(parts, 0, 1, func(_, p int) {
		lo, hi := Bounds(n, parts, p)
		ids := make([]int32, 0, hi-lo)
		for v := lo; v < hi; v++ {
			ids = append(ids, v)
		}
		sub, orig := g.InducedSubgraph(ids)
		r := dearing.Extract(sub, 0)
		edges := make([]dearing.Edge, len(r.Edges))
		for i, e := range r.Edges {
			u, v := orig[e.U], orig[e.V]
			if u > v {
				u, v = v, u
			}
			edges[i] = dearing.Edge{U: u, V: v}
		}
		interiors[p] = interior{edges: edges}
	})

	edgeKey := func(u, v int32) int64 { return int64(u)<<32 | int64(v) }
	chordalSet := make(map[int64]bool)
	for _, in := range interiors {
		for _, e := range in.edges {
			chordalSet[edgeKey(e.U, e.V)] = true
			res.Edges = append(res.Edges, e)
		}
	}
	res.InteriorEdges = len(res.Edges)

	isChordalEdge := func(u, v int32) bool {
		if u > v {
			u, v = v, u
		}
		return chordalSet[edgeKey(u, v)]
	}

	// Border pass: admit a border edge {u,v} when some common neighbor
	// x has both {u,x} and {v,x} already chordal (the triangle rule of
	// ref [5]). Process in a deterministic order.
	g.Edges(func(u, v int32) {
		if partOf(u) == partOf(v) {
			return
		}
		res.BorderTotal++
		if closesTriangle(g, u, v, isChordalEdge) {
			chordalSet[edgeKey(u, v)] = true
			res.Edges = append(res.Edges, dearing.Edge{U: u, V: v})
			res.BorderAdmitted++
		}
	})

	sort.Slice(res.Edges, func(i, j int) bool {
		if res.Edges[i].U != res.Edges[j].U {
			return res.Edges[i].U < res.Edges[j].U
		}
		return res.Edges[i].V < res.Edges[j].V
	})
	res.Chordal = verify.IsChordal(res.ToGraph(n))
	res.Total = time.Since(t0)
	return res
}

// closesTriangle reports whether u and v share a neighbor x with both
// {u,x} and {v,x} chordal. Intersection is a merge scan when adjacency
// is sorted, a hash probe otherwise.
func closesTriangle(g *graph.Graph, u, v int32, isChordal func(int32, int32) bool) bool {
	nu, nv := g.Neighbors(u), g.Neighbors(v)
	if g.Sorted {
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] < nv[j]:
				i++
			case nu[i] > nv[j]:
				j++
			default:
				x := nu[i]
				if isChordal(u, x) && isChordal(v, x) {
					return true
				}
				i++
				j++
			}
		}
		return false
	}
	set := make(map[int32]bool, len(nu))
	for _, x := range nu {
		set[x] = true
	}
	for _, x := range nv {
		if set[x] && isChordal(u, x) && isChordal(v, x) {
			return true
		}
	}
	return false
}
