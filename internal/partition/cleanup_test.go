package partition

import (
	"testing"

	"chordal/internal/rmat"
	"chordal/internal/verify"
)

func TestExtractAndCleanAlwaysChordal(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := randomGraph(200, 1200, seed)
		res, rep := ExtractAndClean(g, 6)
		if !rep.Chordal || !res.Chordal {
			t.Fatalf("seed %d: cleanup did not reach chordality", seed)
		}
		sub := res.ToGraph(200)
		if !verify.IsChordal(sub) {
			t.Fatalf("seed %d: final subgraph not chordal", seed)
		}
	}
}

func TestCleanupOnStructuredInput(t *testing.T) {
	// RMAT-B with several partitions usually needs the cleanup; the
	// report should show the repeated rounds the paper warns about.
	g, err := rmat.Generate(rmat.PresetParams(rmat.B, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	res := Extract(g, 6)
	if res.Chordal {
		t.Skip("this instance happened to be chordal; nothing to clean")
	}
	before := len(res.Edges)
	rep := res.Cleanup(g.NumVertices(), PartOf(g.NumVertices(), 6), 0)
	if !rep.Chordal {
		t.Fatal("cleanup did not converge")
	}
	if rep.Removed == 0 || rep.Rounds == 0 {
		t.Fatalf("non-chordal input cleaned with no work: %+v", rep)
	}
	if len(res.Edges) != before-rep.Removed {
		t.Fatalf("edge accounting: %d -> %d with %d removed", before, len(res.Edges), rep.Removed)
	}
	if !verify.IsChordal(res.ToGraph(g.NumVertices())) {
		t.Fatal("result not chordal after cleanup")
	}
}

func TestCleanupRoundLimit(t *testing.T) {
	g, err := rmat.Generate(rmat.PresetParams(rmat.B, 10, 9))
	if err != nil {
		t.Fatal(err)
	}
	res := Extract(g, 8)
	if res.Chordal {
		t.Skip("instance already chordal")
	}
	rep := res.Cleanup(g.NumVertices(), PartOf(g.NumVertices(), 8), 1)
	if rep.Rounds > 1 {
		t.Fatalf("round limit ignored: %d rounds", rep.Rounds)
	}
}

func TestCleanupNoopOnChordal(t *testing.T) {
	g := randomGraph(50, 100, 5)
	res, _ := ExtractAndClean(g, 1) // single partition: serial, chordal
	rep := res.Cleanup(50, PartOf(50, 1), 0)
	if rep.Removed != 0 || rep.Rounds != 0 || !rep.Chordal {
		t.Fatalf("noop cleanup did work: %+v", rep)
	}
}
