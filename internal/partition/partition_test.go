package partition

import (
	"testing"

	"chordal/internal/dearing"
	"chordal/internal/graph"
	"chordal/internal/rmat"
	"chordal/internal/verify"
	"chordal/internal/xrand"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	rng := xrand.NewXoshiro256(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestSinglePartitionMatchesSerial(t *testing.T) {
	g := randomGraph(100, 400, 1)
	p := Extract(g, 1)
	d := dearing.Extract(g, 0)
	if p.InteriorEdges != d.NumChordalEdges() {
		t.Fatalf("1-part interior %d != serial %d", p.InteriorEdges, d.NumChordalEdges())
	}
	if p.BorderTotal != 0 {
		t.Fatalf("1 partition has %d border edges", p.BorderTotal)
	}
	if !p.Chordal {
		t.Fatal("single-partition result must be chordal")
	}
}

func TestInteriorsAreChordal(t *testing.T) {
	// With the border pass skipped conceptually (check interiors only),
	// per-partition outputs must each be chordal; the combined interior
	// set is a disjoint union, hence chordal.
	g := randomGraph(200, 1000, 2)
	p := Extract(g, 4)
	interior := make([]dearing.Edge, 0, p.InteriorEdges)
	interior = append(interior, p.Edges[:0:0]...)
	for _, e := range p.Edges {
		interior = append(interior, e)
	}
	// Reconstruct interior-only subgraph: drop admitted border edges by
	// re-running with the count.
	_ = interior
	sub := p.ToGraph(200)
	if p.BorderAdmitted == 0 && !verify.IsChordal(sub) {
		t.Fatal("no border edges admitted yet result not chordal")
	}
}

func TestBorderCounts(t *testing.T) {
	g := randomGraph(300, 1500, 3)
	p := Extract(g, 8)
	if p.Parts != 8 {
		t.Fatalf("Parts = %d", p.Parts)
	}
	if p.BorderAdmitted > p.BorderTotal {
		t.Fatal("admitted more border edges than exist")
	}
	if len(p.Edges) != p.InteriorEdges+p.BorderAdmitted {
		t.Fatalf("edge accounting: %d != %d + %d", len(p.Edges), p.InteriorEdges, p.BorderAdmitted)
	}
	// Every border edge crosses partitions; every interior edge does
	// not need checking here, but all edges must exist in g.
	for _, e := range p.Edges {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v not in input", e)
		}
	}
}

func TestNearChordalityReported(t *testing.T) {
	// On structured inputs the combined result is usually NOT chordal
	// (the paper's motivation for the new algorithm); the field must
	// reflect an actual verification.
	g, err := rmat.Generate(rmat.PresetParams(rmat.B, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	p := Extract(g, 6)
	want := verify.IsChordal(p.ToGraph(g.NumVertices()))
	if p.Chordal != want {
		t.Fatalf("Chordal = %v, verification says %v", p.Chordal, want)
	}
}

func TestPartsClamping(t *testing.T) {
	g := randomGraph(10, 30, 5)
	p := Extract(g, 0) // clamped to 1
	if p.Parts != 1 {
		t.Fatalf("Parts = %d, want 1", p.Parts)
	}
	p = Extract(g, 100) // clamped to n
	if p.Parts != 10 {
		t.Fatalf("Parts = %d, want 10", p.Parts)
	}
}

func TestTriangleRule(t *testing.T) {
	// Two partitions: {0,1} and {2,3}. Interior edges: 0-1 and 2-3.
	// Border edges 1-2, 0-2: 0-2 closes a triangle with 0-1 and 1-2
	// only if 1-2 is chordal first; construct so one border edge forms
	// a triangle with interior chordal edges and is admitted.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // interior part 0
	b.AddEdge(2, 3) // interior part 1
	b.AddEdge(1, 2) // border, no common neighbor with chordal edges on both sides
	g := b.Build()
	p := Extract(g, 2)
	if p.InteriorEdges != 2 {
		t.Fatalf("interior %d", p.InteriorEdges)
	}
	// 1-2: common neighbors of 1 and 2 in g: none. Not admitted.
	if p.BorderAdmitted != 0 {
		t.Fatalf("admitted %d border edges, want 0", p.BorderAdmitted)
	}

	// Add vertex 1-3 edge so border edge 1-3?? Instead: make triangle
	// 1-2 with common neighbor: add 1-3 and keep 2-3: then border edge
	// 1-2 has common neighbor 3 with edges 1-3 (border) and 2-3
	// (interior chordal). 1-3 is itself a border edge; admission
	// requires both incident edges already chordal, so order matters —
	// construct the clean case: common neighbor inside one partition.
	b2 := graph.NewBuilder(4)
	b2.AddEdge(0, 1) // interior part 0 {0,1}
	b2.AddEdge(0, 2) // border
	b2.AddEdge(1, 2) // border... need common neighbor with chordal edges
	g2 := b2.Build()
	p2 := Extract(g2, 2)
	// Common neighbor of 0 and 2: vertex 1 with edges 0-1 (interior
	// chordal) and 1-2 (border, admitted iff processed first). The
	// deterministic edge order processes 0-2 before 1-2; 0-2 needs 1-2
	// chordal, not yet admitted -> rejected; then 1-2 needs 0-2 -> also
	// rejected? 1-2's common neighbor with chordal edges: 0 with 0-1
	// chordal and 0-2 not chordal -> rejected. So 1 of 3 edges lost.
	if p2.BorderAdmitted != 0 {
		t.Fatalf("admitted %d, want 0 under deterministic order", p2.BorderAdmitted)
	}
	if !p2.Chordal {
		t.Fatal("result should be chordal (a path)")
	}
}

func TestMoreParts(t *testing.T) {
	// Smoke over several partition counts: accounting consistent,
	// result materializable.
	g := randomGraph(500, 2500, 7)
	for _, parts := range []int{2, 3, 5, 16} {
		p := Extract(g, parts)
		if len(p.Edges) == 0 {
			t.Fatalf("parts=%d extracted nothing", parts)
		}
		if err := p.ToGraph(500).Validate(); err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
	}
}
