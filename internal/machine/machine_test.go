package machine

import (
	"testing"
	"time"

	"chordal/internal/core"
)

// rmatLikeTrace models a scale-24 R-MAT run: 3 iterations, huge queues,
// work proportional to hundreds of millions of edge scans.
func rmatLikeTrace() Trace {
	return Trace{
		QueueSize:       []int{8_000_000, 9_000_000, 3},
		Work:            []int64{300_000_000, 250_000_000, 1_000},
		WorkingSetBytes: 4_000_000_000,
	}
}

// bioLikeTrace models a gene-network run: ten iterations, small queues,
// a working set that fits in a large L3 complex.
func bioLikeTrace() Trace {
	q := make([]int, 10)
	w := make([]int64, 10)
	for i := range q {
		q[i] = 25_000
		w[i] = 1_500_000
	}
	return Trace{QueueSize: q, Work: w, WorkingSetBytes: 30_000_000}
}

func TestModelsIdentity(t *testing.T) {
	x := DefaultXMT()
	o := DefaultCacheCPU()
	if x.Name() != "XMT" || o.Name() != "Opteron" {
		t.Fatal("model names")
	}
	if x.MaxProcessors() != 128 {
		t.Fatalf("XMT procs %d", x.MaxProcessors())
	}
	if o.MaxProcessors() != 48 {
		t.Fatalf("Opteron procs %d", o.MaxProcessors())
	}
}

func TestPredictPositive(t *testing.T) {
	for _, m := range []Model{DefaultXMT(), DefaultCacheCPU()} {
		for _, tr := range []Trace{rmatLikeTrace(), bioLikeTrace()} {
			for _, p := range []int{1, 2, 16, 128} {
				if d := m.Predict(tr, p); d <= 0 {
					t.Fatalf("%s p=%d: non-positive prediction %v", m.Name(), p, d)
				}
			}
		}
	}
}

func TestScalingMonotoneOnBigWork(t *testing.T) {
	// With abundant per-iteration parallelism, doubling processors must
	// shrink XMT predicted time.
	x := DefaultXMT()
	tr := rmatLikeTrace()
	prev := x.Predict(tr, 1)
	for p := 2; p <= 128; p *= 2 {
		cur := x.Predict(tr, p)
		if cur >= prev {
			t.Fatalf("XMT time rose at p=%d: %v -> %v", p, prev, cur)
		}
		prev = cur
	}
}

func TestXMTSpeedupRange(t *testing.T) {
	// Paper Table II: XMT speedups of roughly 16-48 at 128 processors
	// on the synthetic inputs.
	s := Speedup(DefaultXMT(), rmatLikeTrace(), 128)
	if s < 10 || s > 128 {
		t.Fatalf("XMT 128p speedup %.1f outside plausible band", s)
	}
	// Bio networks speed up far less than the synthetic ones (paper:
	// 1.1-2.0 vs 16-48; our coarse model reproduces the gap's shape,
	// though it underestimates chain serialization and so lands nearer
	// 8 than 2 — recorded in EXPERIMENTS.md).
	sb := Speedup(DefaultXMT(), bioLikeTrace(), 128)
	if sb > s/3 {
		t.Fatalf("XMT bio speedup %.1f not well below synthetic %.1f", sb, s)
	}
	if sb < 1 {
		t.Fatalf("speedup below 1: %.2f", sb)
	}
}

func TestOpteronSpeedupRange(t *testing.T) {
	// Paper Table II: Opteron speedups ~5-8 at 32 cores on synthetic
	// inputs (memory bandwidth bound), ~3 on bio.
	s := Speedup(DefaultCacheCPU(), rmatLikeTrace(), 32)
	if s < 2 || s > 32 {
		t.Fatalf("Opteron 32c speedup %.1f outside plausible band", s)
	}
}

func TestCrossoverBioFavorsCPU(t *testing.T) {
	// Figure 5: on the small biological networks the Opteron beats the
	// XMT outright.
	tr := bioLikeTrace()
	x := DefaultXMT().Predict(tr, 16)
	o := DefaultCacheCPU().Predict(tr, 16)
	if o >= x {
		t.Fatalf("bio trace: Opteron %v not faster than XMT %v", o, x)
	}
}

func TestCrossoverBigGraphFavorsXMTAtScale(t *testing.T) {
	// Figure 6a: RMAT-ER runs faster on the XMT at high processor
	// counts (latency fully hidden, no cache to thrash).
	tr := rmatLikeTrace()
	x := DefaultXMT().Predict(tr, 128)
	o := DefaultCacheCPU().Predict(tr, 32)
	if x >= o {
		t.Fatalf("large trace: XMT@128 %v not faster than Opteron@32 %v", x, o)
	}
}

func TestQueueStarvationHurtsXMT(t *testing.T) {
	// An iteration whose queue is tiny cannot use the streams: time
	// must not improve when processors grow.
	tr := Trace{QueueSize: []int{4}, Work: []int64{1_000_000}, WorkingSetBytes: 1 << 20}
	x := DefaultXMT()
	t1 := x.Predict(tr, 1)
	t128 := x.Predict(tr, 128)
	if t128 < t1*98/100 {
		t.Fatalf("starved queue still sped up: %v -> %v", t1, t128)
	}
}

func TestPredictClampsProcessors(t *testing.T) {
	x := DefaultXMT()
	tr := rmatLikeTrace()
	if x.Predict(tr, 0) != x.Predict(tr, 1) {
		t.Fatal("p=0 not clamped to 1")
	}
	if x.Predict(tr, 1000) != x.Predict(tr, 128) {
		t.Fatal("p beyond machine not clamped")
	}
}

func TestTraceFromResult(t *testing.T) {
	res := &core.Result{
		NumVertices: 100,
		Iterations: []core.IterationStats{
			{Index: 1, QueueSize: 50, EdgesTested: 200, EdgesAccepted: 40, ScanWork: 800},
			{Index: 2, QueueSize: 20, EdgesTested: 100, EdgesAccepted: 10, ScanWork: 300},
		},
	}
	tr := TraceFromResult(res, 400)
	if len(tr.QueueSize) != 2 || len(tr.Work) != 2 {
		t.Fatal("trace length")
	}
	if tr.QueueSize[0] != 50 || tr.QueueSize[1] != 20 {
		t.Fatal("queue sizes")
	}
	if tr.Work[0] != 800+2*200+2*40 {
		t.Fatalf("work[0] = %d", tr.Work[0])
	}
	if tr.WorkingSetBytes <= 0 {
		t.Fatal("working set")
	}
}

func TestScalingCurveAndPowersOfTwo(t *testing.T) {
	procs := PowersOfTwo(48)
	want := []int{1, 2, 4, 8, 16, 32, 48}
	if len(procs) != len(want) {
		t.Fatalf("procs %v", procs)
	}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("procs %v", procs)
		}
	}
	if p := PowersOfTwo(128); p[len(p)-1] != 128 || len(p) != 8 {
		t.Fatalf("128 axis %v", p)
	}
	curve := ScalingCurve(DefaultXMT(), rmatLikeTrace(), procs)
	if len(curve) != len(procs) {
		t.Fatal("curve length")
	}
	for _, d := range curve {
		if d <= 0 {
			t.Fatal("non-positive point")
		}
	}
}

func TestEmptyIterationCharged(t *testing.T) {
	// Zero-work iterations still cost a sync.
	tr := Trace{QueueSize: []int{0}, Work: []int64{0}, WorkingSetBytes: 1}
	if DefaultXMT().Predict(tr, 4) <= 0 {
		t.Fatal("sync cost not charged")
	}
}

func TestSpeedupDegenerate(t *testing.T) {
	tr := Trace{}
	// No iterations: predictions are zero; Speedup must not divide by
	// zero.
	s := Speedup(DefaultXMT(), tr, 8)
	if s != 0 && (s < 0 || s != s) {
		t.Fatalf("degenerate speedup %v", s)
	}
	_ = time.Duration(0)
}
