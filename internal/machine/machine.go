// Package machine provides analytic execution models of the paper's two
// hardware platforms — the Cray XMT (massively multithreaded, uniform
// high-latency memory, latency hidden by concurrency) and an AMD
// Opteron Magny-Cours class multicore (cache hierarchy, fast clock,
// latency hidden only by locality).
//
// Neither machine exists in this environment, so the cross-platform
// figures (4, 5, 6) and the XMT column of Table II are reproduced by
// substitution: the extraction algorithm is instrumented per iteration
// (queue size and scan work — exactly the quantities in the paper's
// Figure 7), and the models convert that trace into a predicted runtime
// for a given processor count. The paper's platform effects are
// functions of the trace, not of the silicon:
//
//   - When per-iteration work vastly exceeds the available hardware
//     streams, the XMT hides its ~600-cycle memory latency completely
//     and time scales as work/(P·streams) at a slow 500 MHz clock.
//   - When an iteration offers little parallel work (small queues, as
//     in the biological networks), XMT pipelines drain and each of the
//     few concurrent operations pays full memory latency, so small
//     graphs with many iterations run poorly there — matching Figure 5.
//   - The cache CPU runs each memory access at a miss-probability
//     blended cost. Irregular access over a working set far beyond L3
//     costs near-DRAM latency per edge, but a fast clock and caches
//     keep small or cache-resident graphs quick — so Opteron wins the
//     biological networks and loses RMAT-ER/G at scale, matching
//     Figures 4-6.
package machine

import (
	"time"

	"chordal/internal/core"
)

// Trace is the per-iteration workload profile of one extraction run,
// the input to every model.
type Trace struct {
	// QueueSize is |Q1| per iteration: the number of independent
	// parallel tasks available.
	QueueSize []int
	// Work is the memory-access-weighted work per iteration (adjacency
	// entries scanned plus subset-test traffic).
	Work []int64
	// WorkingSetBytes approximates the bytes the run touches (CSR
	// arrays plus chordal-set storage).
	WorkingSetBytes int64
}

// TraceFromResult derives a Trace from an instrumented extraction
// result over a graph with the given edge count.
func TraceFromResult(res *core.Result, numEdges int64) Trace {
	t := Trace{
		QueueSize: make([]int, len(res.Iterations)),
		Work:      make([]int64, len(res.Iterations)),
	}
	for i, it := range res.Iterations {
		t.QueueSize[i] = it.QueueSize
		// Every scanned adjacency entry is at least one irregular
		// memory access; each subset test and accept adds traffic
		// proportional to the sets touched, approximated by 2 accesses
		// per test (amortized short sets dominate the inputs studied).
		t.Work[i] = it.ScanWork + 2*it.EdgesTested + 2*it.EdgesAccepted
	}
	// CSR: 8-byte offsets per vertex + 4-byte entries both directions;
	// chordal sets: at most one 4-byte entry per edge, plus per-vertex
	// bookkeeping.
	t.WorkingSetBytes = 8*int64(res.NumVertices) + 2*4*numEdges + 4*numEdges + 16*int64(res.NumVertices)
	return t
}

// Model predicts the runtime of a traced extraction on p processors.
type Model interface {
	// Name identifies the platform in experiment output.
	Name() string
	// Predict returns the modeled wall-clock time of the traced run on
	// p processors.
	Predict(t Trace, p int) time.Duration
	// MaxProcessors is the largest processor count the platform offers
	// (128 for the paper's XMT, 48 cores / 32 measured for Opteron).
	MaxProcessors() int
}

// XMT models the Cray XMT: ThreadStorm processors at 500 MHz with up to
// StreamsPerProc hardware streams each, a uniform hashed memory with
// ~600-cycle average latency and no caches, and single-cycle context
// switches. Streams hide latency but add no issue bandwidth: a
// processor still retires at most one instruction per cycle, so an
// iteration is either latency-bound (too few concurrent accesses in
// flight) or issue-bound.
type XMT struct {
	// ClockHz is the processor clock (paper hardware: 500 MHz).
	ClockHz float64
	// StreamsPerProc is the number of streams requested per processor;
	// the paper requests about 100 of the 128 available.
	StreamsPerProc int
	// MemLatencyCycles is the average memory latency (about 600).
	MemLatencyCycles float64
	// IssueCyclesPerAccess is the pipeline issue cost per memory-
	// touching operation once latency is hidden.
	IssueCyclesPerAccess float64
	// SyncCycles is the per-iteration cost of starting the parallel
	// loop and draining/swap-ping the queues across the whole machine;
	// on the real machine this is milliseconds-scale thread management,
	// which is what flattens the small biological inputs (Figure 5).
	SyncCycles float64
	// SerialFraction is the Amdahl fraction of per-iteration work that
	// does not parallelize (hot spots on shared queue tails and chordal
	// sets); it reproduces the paper's sub-linear 30-48x speedups at
	// 128 processors.
	SerialFraction float64
	// Procs is the machine size (128 in the paper).
	Procs int
}

// DefaultXMT returns a model with the paper's published machine
// parameters (Section IV-A).
func DefaultXMT() *XMT {
	return &XMT{
		ClockHz:              500e6,
		StreamsPerProc:       100,
		MemLatencyCycles:     600,
		IssueCyclesPerAccess: 3,
		SyncCycles:           1e6,
		SerialFraction:       0.03,
		Procs:                128,
	}
}

// Name implements Model.
func (m *XMT) Name() string { return "XMT" }

// MaxProcessors implements Model.
func (m *XMT) MaxProcessors() int { return m.Procs }

// Predict implements Model. Each iteration's concurrency is the smaller
// of the hardware streams and the queue size (concurrency beyond the
// runnable tasks is idle — how dense components starve the XMT); the
// iteration then runs at the worse of the latency-bound rate
// (work·latency/concurrency) and the issue-bound rate (work·issue/p).
func (m *XMT) Predict(t Trace, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	if p > m.Procs {
		p = m.Procs
	}
	streams := float64(p * m.StreamsPerProc)
	var cycles float64
	for i, w := range t.Work {
		q := float64(t.QueueSize[i])
		if q == 0 || w == 0 {
			cycles += m.SyncCycles
			continue
		}
		conc := streams
		if q < conc {
			conc = q
		}
		parallel := float64(w) * (1 - m.SerialFraction)
		latencyBound := parallel * m.MemLatencyCycles / conc
		issueBound := parallel * m.IssueCyclesPerAccess / float64(p)
		body := latencyBound
		if issueBound > body {
			body = issueBound
		}
		serial := float64(w) * m.SerialFraction * m.IssueCyclesPerAccess
		cycles += body + serial + m.SyncCycles
	}
	return time.Duration(cycles / m.ClockHz * float64(time.Second))
}

// CacheCPU models an Opteron-class multicore: fast clock, a three-level
// cache per the paper (64 KB L1 + 512 KB L2 private, 12 MB L3 per die),
// and DRAM latency paid on misses. Irregular graph access gives a miss
// probability that grows with the ratio of working set to covering
// cache; a software barrier costs more as cores increase.
type CacheCPU struct {
	// ClockHz is the core clock (Magny-Cours: ~2.2 GHz).
	ClockHz float64
	// IssueCyclesPerAccess is the hit-path cost per access.
	IssueCyclesPerAccess float64
	// MissLatencyCycles is the DRAM miss penalty in cycles.
	MissLatencyCycles float64
	// CacheBytes is the effective per-socket covering cache (L3).
	CacheBytes float64
	// BarrierCyclesPerCore is the per-iteration software barrier cost
	// multiplied by the core count.
	BarrierCyclesPerCore float64
	// MemBandwidthSaturation caps useful cores on the memory-bound
	// path: beyond this many cores, extra cores add no miss throughput
	// (four memory controllers on the paper's box).
	MemBandwidthSaturation int
	// Procs is the machine size (paper measures up to 32 of 48).
	Procs int
}

// DefaultCacheCPU returns a model with the paper's Opteron parameters.
func DefaultCacheCPU() *CacheCPU {
	return &CacheCPU{
		ClockHz:                2.2e9,
		IssueCyclesPerAccess:   2,
		MissLatencyCycles:      200,
		CacheBytes:             4 * 12e6, // four sockets' worth of L3
		BarrierCyclesPerCore:   30000,
		MemBandwidthSaturation: 6, // four on-package memory controllers saturate early
		Procs:                  48,
	}
}

// Name implements Model.
func (m *CacheCPU) Name() string { return "Opteron" }

// MaxProcessors implements Model.
func (m *CacheCPU) MaxProcessors() int { return m.Procs }

// Predict implements Model.
func (m *CacheCPU) Predict(t Trace, p int) time.Duration {
	if p < 1 {
		p = 1
	}
	if p > m.Procs {
		p = m.Procs
	}
	// Miss probability for irregular access over the working set: no
	// misses when it fits in cache, asymptotically certain misses far
	// beyond it.
	ws := float64(t.WorkingSetBytes)
	miss := 0.0
	if ws > m.CacheBytes {
		miss = 1 - m.CacheBytes/ws
	}
	var cycles float64
	for i, w := range t.Work {
		q := float64(t.QueueSize[i])
		cores := float64(p)
		if q < cores {
			cores = q
		}
		if cores < 1 {
			cores = 1
		}
		// The miss-bound portion stops scaling at the bandwidth
		// saturation point.
		memCores := cores
		if memCores > float64(m.MemBandwidthSaturation) {
			memCores = float64(m.MemBandwidthSaturation)
		}
		hitCycles := float64(w) * m.IssueCyclesPerAccess / cores
		missCycles := float64(w) * miss * m.MissLatencyCycles / memCores
		cycles += hitCycles + missCycles + m.BarrierCyclesPerCore*float64(p)
	}
	return time.Duration(cycles / m.ClockHz * float64(time.Second))
}

// ScaleTrace returns the trace of the "same" run on a graph factor
// times larger: per-iteration work, queue sizes and the working set all
// grow linearly while the iteration structure stays fixed. The paper
// observes exactly this scale-stability for R-MAT inputs (iteration
// counts and chordal fractions constant across scales 24-26), which is
// what justifies projecting laptop-scale traces to paper-scale machines
// in Table II.
func ScaleTrace(t Trace, factor float64) Trace {
	out := Trace{
		QueueSize:       make([]int, len(t.QueueSize)),
		Work:            make([]int64, len(t.Work)),
		WorkingSetBytes: int64(float64(t.WorkingSetBytes) * factor),
	}
	for i := range t.Work {
		out.QueueSize[i] = int(float64(t.QueueSize[i]) * factor)
		out.Work[i] = int64(float64(t.Work[i]) * factor)
	}
	return out
}

// ScalingCurve evaluates the model at each processor count in procs.
func ScalingCurve(m Model, t Trace, procs []int) []time.Duration {
	out := make([]time.Duration, len(procs))
	for i, p := range procs {
		out[i] = m.Predict(t, p)
	}
	return out
}

// Speedup returns Predict(1)/Predict(p), the quantity in Table II.
func Speedup(m Model, t Trace, p int) float64 {
	t1 := m.Predict(t, 1)
	tp := m.Predict(t, p)
	if tp <= 0 {
		return 0
	}
	return float64(t1) / float64(tp)
}

// PowersOfTwo returns 1, 2, 4, ... up to and including max (max itself
// is appended when it is not a power of two), the processor axis used
// by the paper's log-log scaling plots.
func PowersOfTwo(max int) []int {
	var out []int
	for p := 1; p <= max; p *= 2 {
		out = append(out, p)
	}
	if len(out) > 0 && out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}
