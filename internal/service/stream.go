package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"chordal"
	"chordal/internal/graph"
)

// This file adds streaming sessions to the service: a POST /v1/streams
// opens a long-lived chordal.Stream keyed by the same canonical spec
// identity as jobs, edge deltas arrive as NDJSON POSTs, admission
// events fan out over SSE, and closing the session returns the
// StreamReport and makes the canonical subgraph downloadable.
//
//	POST   /v1/streams              open a session: JSON {options,
//	                                vertices, maxVertices, repairEvery}
//	POST   /v1/streams/{id}/edges   push NDJSON edge deltas ({"u":..,
//	                                "v":..} or "u v" per line); returns
//	                                per-line decisions + counters
//	POST   /v1/streams/{id}/close   finalize: canonical extraction over
//	                                the accumulated input; returns the
//	                                StreamReport (idempotent)
//	GET    /v1/streams/{id}         status + counters
//	GET    /v1/streams/{id}/events  SSE: admit/defer/repair events,
//	                                replayed from the start then live
//	GET    /v1/streams/{id}/result  the canonical subgraph of a closed
//	                                session (?format=edges|bin|mtx)
//	DELETE /v1/streams/{id}         abandon the session
//
// Sessions run outside the worker budget: deltas are admitted on the
// request goroutine (one union-find probe or a local BFS each), and
// only Close runs an extraction kernel. Idle open sessions and
// terminal ones are garbage collected on the job GC cadence.

// Stream session states.
const (
	StreamOpen     = "open"
	StreamClosed   = "closed"
	StreamCanceled = "canceled"
)

// StreamOpenRequest is the JSON body of POST /v1/streams. Options is
// the jobs' options object (engine, repair, verify, ...); Mode is
// implied. Vertices, MaxVertices and RepairEvery map onto
// chordal.StreamConfig and are not part of the session's identity.
type StreamOpenRequest struct {
	Options     JobOptions `json:"options"`
	Vertices    int        `json:"vertices,omitempty"`
	MaxVertices int        `json:"maxVertices,omitempty"`
	RepairEvery int        `json:"repairEvery,omitempty"`
}

// StreamStatus is the JSON view of a session.
type StreamStatus struct {
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Canonical string    `json:"canonical"`
	Created   time.Time `json:"created"`
	// Stats snapshots the session counters (pushed, admitted, deferred,
	// ...); frozen at the Close-time values once the session is closed.
	Stats chordal.StreamStats `json:"stats"`
	// Report is the full close report of a closed session.
	Report *chordal.StreamReport `json:"report,omitempty"`
}

// DeltaBatchResult is the response of POST /v1/streams/{id}/edges: how
// many lines were applied and the decision of each.
type DeltaBatchResult struct {
	Applied   int                   `json:"applied"`
	Decisions []chordal.StreamDelta `json:"decisions"`
	Stats     chordal.StreamStats   `json:"stats"`
}

// streamSession is one live session in the store. Lock ordering: the
// chordal.Stream has its own mutex and emits observer events while
// holding it, and the observer appends under mu — so methods holding mu
// must never call into the Stream.
type streamSession struct {
	id      string
	created time.Time
	stream  *chordal.Stream

	mu         sync.Mutex
	state      string
	lastActive time.Time
	finished   time.Time
	report     *chordal.StreamReport
	subgraph   *graph.Graph
	events     []sseEvent
	changed    chan struct{}
}

// appendEventLocked mirrors Job.appendLocked; callers hold ss.mu.
func (ss *streamSession) appendEventLocked(name string, data any) {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(`{}`)
	}
	ss.events = append(ss.events, sseEvent{name, payload})
	close(ss.changed)
	ss.changed = make(chan struct{})
}

// appendEvent appends one SSE event and wakes subscribers.
func (ss *streamSession) appendEvent(name string, data any) {
	ss.mu.Lock()
	ss.appendEventLocked(name, data)
	ss.mu.Unlock()
}

// touch stamps the session as recently active.
func (ss *streamSession) touch(now time.Time) {
	ss.mu.Lock()
	ss.lastActive = now
	ss.mu.Unlock()
}

// eventsSince mirrors Job.eventsSince for the SSE handler.
func (ss *streamSession) eventsSince(cursor int) (evs []sseEvent, terminal bool, changed <-chan struct{}) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if cursor < len(ss.events) {
		evs = ss.events[cursor:]
	}
	return evs, ss.state != StreamOpen, ss.changed
}

// status snapshots the session's JSON view. It reads the Stream's
// counters before taking ss.mu (see the lock-ordering note on the
// type).
func (ss *streamSession) status() StreamStatus {
	stats := ss.stream.Stats()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st := StreamStatus{
		ID:        ss.id,
		State:     ss.state,
		Canonical: ss.stream.Canonical(),
		Created:   ss.created,
		Stats:     stats,
		Report:    ss.report,
	}
	if ss.report != nil {
		st.Stats = ss.report.Stream
	}
	return st
}

// expired is the GC predicate: a terminal session aged past the TTL,
// or an open one idle past it (an abandoned session must not pin its
// maintained subgraph forever).
func (ss *streamSession) expired(cutoff time.Time) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.state != StreamOpen {
		return ss.finished.Before(cutoff)
	}
	return ss.lastActive.Before(cutoff)
}

// handleStreamOpen serves POST /v1/streams. Sessions run outside the
// scheduler's slot queue (deltas are admitted on request goroutines),
// but opening one still passes the tenant's rate limit so a flood of
// stream opens cannot sidestep admission control — a limited tenant
// gets 429 + Retry-After here exactly as on job submission.
func (s *Server) handleStreamOpen(w http.ResponseWriter, r *http.Request) {
	var req StreamOpenRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if err := s.sched.AdmitSession(tenantFromRequest(r)); err != nil {
		writeSubmitError(w, err)
		return
	}
	spec := req.Options.rawSpec("")
	spec.Mode = chordal.ModeStream
	now := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, errShuttingDown)
		return
	}
	s.streamSeq++
	id := fmt.Sprintf("s%06d", s.streamSeq)
	ss := &streamSession{
		id:         id,
		created:    now,
		state:      StreamOpen,
		lastActive: now,
		changed:    make(chan struct{}),
	}
	// OpenStream validates the spec (engine capability, relabel/output
	// conflicts) and builds the session; the observer feeds the SSE log.
	st, err := chordal.OpenStream(s.baseCtx, spec, chordal.StreamConfig{
		Vertices:    req.Vertices,
		MaxVertices: req.MaxVertices,
		RepairEvery: req.RepairEvery,
		Observer: func(ev chordal.Event) {
			ss.appendEvent(string(ev.Type), ev)
		},
	})
	if err != nil {
		s.mu.Unlock()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	ss.stream = st
	s.streams[id] = ss
	s.mu.Unlock()
	w.Header().Set("Location", "/v1/streams/"+id)
	writeJSON(w, http.StatusCreated, ss.status())
}

// lookupStream finds a session by id.
func (s *Server) lookupStream(id string) (*streamSession, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ss, ok := s.streams[id]
	return ss, ok
}

// streamState reads the session state.
func (ss *streamSession) getState() string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.state
}

// handleStreamEdges serves POST /v1/streams/{id}/edges: NDJSON deltas,
// one decision per valid line. A malformed line stops the batch with a
// 400 that reports how many earlier lines were applied (those stay
// applied — deltas are not transactional).
func (s *Server) handleStreamEdges(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	if ss.getState() != StreamOpen {
		httpError(w, http.StatusConflict, fmt.Errorf("service: stream %s is %s", ss.id, ss.getState()))
		return
	}
	ss.touch(time.Now())
	var res DeltaBatchResult
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := chordal.ParseEdgeDelta(line)
		if err != nil {
			httpError(w, http.StatusBadRequest,
				fmt.Errorf("service: %w (after %d applied deltas)", err, res.Applied))
			return
		}
		dec, err := ss.stream.Push(r.Context(), d.U, d.V)
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		res.Applied++
		res.Decisions = append(res.Decisions, dec)
	}
	if err := sc.Err(); err != nil {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("service: reading deltas: %w (after %d applied deltas)", err, res.Applied))
		return
	}
	res.Stats = ss.stream.Stats()
	writeJSON(w, http.StatusOK, res)
}

// handleStreamClose serves POST /v1/streams/{id}/close: the canonical
// Close-time extraction over the accumulated input. Idempotent —
// closing a closed session returns the stored report again.
func (s *Server) handleStreamClose(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	ss.mu.Lock()
	if ss.state == StreamCanceled {
		ss.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Errorf("service: stream %s is canceled", ss.id))
		return
	}
	if ss.report != nil {
		rep := ss.report
		ss.mu.Unlock()
		writeJSON(w, http.StatusOK, rep)
		return
	}
	ss.mu.Unlock()

	// Finalize under the server's base context so shutdown cancels the
	// extraction; chordal.Stream.Close is itself idempotent, so two
	// racing close requests get one extraction and the same result.
	res, err := ss.stream.Close(s.baseCtx)
	now := time.Now()
	if err != nil {
		ss.mu.Lock()
		ss.state = StreamCanceled
		ss.finished = now
		ss.appendEventLocked("done", map[string]string{"state": StreamCanceled, "error": err.Error()})
		ss.mu.Unlock()
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	ss.mu.Lock()
	if ss.report == nil {
		ss.state = StreamClosed
		ss.finished = now
		ss.lastActive = now
		ss.report = &res.Report
		ss.subgraph = res.Subgraph
		ss.appendEventLocked("done", res.Report)
	}
	rep := ss.report
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, rep)
}

// handleStreamStatus serves GET /v1/streams/{id}.
func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	writeJSON(w, http.StatusOK, ss.status())
}

// handleStreamDelete serves DELETE /v1/streams/{id}: the session is
// abandoned — no finalize, the maintained subgraph is dropped, and the
// id is removed from the store.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	ss.mu.Lock()
	if ss.state == StreamOpen {
		ss.state = StreamCanceled
		ss.finished = time.Now()
		ss.appendEventLocked("done", map[string]string{"state": StreamCanceled})
	}
	ss.mu.Unlock()
	s.mu.Lock()
	delete(s.streams, ss.id)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, ss.status())
}

// handleStreamEvents serves GET /v1/streams/{id}/events: the session's
// admission event log as SSE, replayed then followed live until the
// terminal "done" event or disconnect.
func (s *Server) handleStreamEvents(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("service: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	cursor := 0
	for {
		evs, terminal, changed := ss.eventsSince(cursor)
		for _, e := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.name, e.data)
		}
		cursor += len(evs)
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleStreamResult serves GET /v1/streams/{id}/result: the canonical
// subgraph of a closed session, same formats as the job result.
func (s *Server) handleStreamResult(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.lookupStream(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such stream"))
		return
	}
	ss.mu.Lock()
	sub := ss.subgraph
	state := ss.state
	ss.mu.Unlock()
	if state != StreamClosed || sub == nil {
		httpError(w, http.StatusConflict,
			fmt.Errorf("service: stream %s is %s, result not available", ss.id, state))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "edges"
	}
	switch format {
	case "edges":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.txt", ss.id))
		graph.WriteEdgeList(w, sub)
	case "bin":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.bin", ss.id))
		graph.WriteBinary(w, sub)
	case "mtx":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.mtx", ss.id))
		graph.WriteMatrixMarket(w, sub)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: unknown format %q (want edges|bin|mtx)", format))
	}
}
