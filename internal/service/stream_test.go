package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"chordal"
	"chordal/internal/graph"
)

// openStream posts a StreamOpenRequest and decodes the session status.
func openStream(t *testing.T, base string, req StreamOpenRequest) (StreamStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/streams", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/streams: %v", err)
	}
	defer resp.Body.Close()
	var st StreamStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode open response: %v", err)
	}
	return st, resp.StatusCode
}

// TestStreamSessionEndToEnd drives the full session flow: open, push
// NDJSON deltas, follow admission SSE, close for the canonical report,
// download the result, and byte-compare it with the library running the
// same spec on the same edges.
func TestStreamSessionEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{})

	g, err := chordal.GenerateRMAT(chordal.RMATER, 7, 3)
	if err != nil {
		t.Fatal(err)
	}

	st, code := openStream(t, ts.URL, StreamOpenRequest{
		Options:  JobOptions{Repair: true},
		Vertices: g.NumVertices(),
	})
	if code != http.StatusCreated || st.State != StreamOpen {
		t.Fatalf("open: code %d state %s", code, st.State)
	}
	// Session identity is the library's canonical stream key.
	wantCanon, err := chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}, Verify: true}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if st.Canonical != wantCanon {
		t.Fatalf("canonical:\n got  %s\n want %s", st.Canonical, wantCanon)
	}

	// Push the graph in two NDJSON batches, mixing the two line forms.
	us, vs := g.EdgeList()
	half := len(us) / 2
	var b1, b2 strings.Builder
	b1.WriteString("# first half\n")
	for i := 0; i < half; i++ {
		fmt.Fprintf(&b1, "%d %d\n", us[i], vs[i])
	}
	for i := half; i < len(us); i++ {
		fmt.Fprintf(&b2, "{\"u\":%d,\"v\":%d}\n", us[i], vs[i])
	}
	var pushed int
	for _, body := range []string{b1.String(), b2.String()} {
		resp, err := http.Post(ts.URL+"/v1/streams/"+st.ID+"/edges", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var res DeltaBatchResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("edges: HTTP %d", resp.StatusCode)
		}
		if len(res.Decisions) != res.Applied {
			t.Fatalf("edges: %d decisions for %d applied", len(res.Decisions), res.Applied)
		}
		pushed += res.Applied
	}
	if int64(pushed) != g.NumEdges() {
		t.Fatalf("pushed %d deltas, want %d", pushed, g.NumEdges())
	}

	// A malformed delta line 400s and reports the applied count; lines
	// before it stay applied (deltas are not transactional), so re-push
	// an already-streamed edge to keep the accumulated input unchanged.
	resp, err := http.Post(ts.URL+"/v1/streams/"+st.ID+"/edges", "application/x-ndjson",
		strings.NewReader(fmt.Sprintf("%d %d\nnot a delta\n", us[0], vs[0])))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed delta: HTTP %d, want 400", resp.StatusCode)
	}

	// Close: the canonical report, idempotent on a second call.
	var rep chordal.StreamReport
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/streams/"+st.ID+"/close", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("close #%d: HTTP %d", i+1, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if rep.Canonical != wantCanon {
		t.Fatalf("report canonical %q, want %q", rep.Canonical, wantCanon)
	}
	if rep.Verify == nil || !rep.Verify.Chordal {
		t.Fatalf("close verify: %+v", rep.Verify)
	}
	if rep.Input.Edges != g.NumEdges() || rep.Input.Vertices != g.NumVertices() {
		t.Fatalf("accumulated input %d/%d, want %d/%d", rep.Input.Vertices, rep.Input.Edges, g.NumVertices(), g.NumEdges())
	}

	// The SSE log replays admissions through the terminal done event.
	counts, _ := followStreamEvents(t, ts.URL, st.ID)
	if counts["admit"] == 0 || counts["done"] != 1 {
		t.Fatalf("event counts %v: want admits and one done", counts)
	}
	if int64(counts["admit"]+counts["defer"]) < g.NumEdges() {
		t.Fatalf("event counts %v cover %d deltas, want >= %d", counts, counts["admit"]+counts["defer"], g.NumEdges())
	}

	// Download and byte-compare with the library path on the same edges.
	resp, err = http.Get(ts.URL + "/v1/streams/" + st.ID + "/result?format=edges")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d", resp.StatusCode)
	}
	lib, err := chordal.OpenStream(context.Background(),
		chordal.Spec{Mode: chordal.ModeStream, EngineConfig: chordal.EngineConfig{Repair: true}, Verify: true},
		chordal.StreamConfig{Vertices: g.NumVertices()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if _, err := lib.Push(context.Background(), us[i], vs[i]); err != nil {
			t.Fatal(err)
		}
	}
	libRes, err := lib.Close(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := graph.WriteEdgeList(&want, libRes.Subgraph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Fatalf("served result differs from the library's canonical subgraph (%d vs %d bytes)", len(served), want.Len())
	}

	// Pushing into a closed session conflicts.
	resp, err = http.Post(ts.URL+"/v1/streams/"+st.ID+"/edges", "application/x-ndjson", strings.NewReader("0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("push after close: HTTP %d, want 409", resp.StatusCode)
	}
}

// followStreamEvents consumes the session SSE stream to the done event.
func followStreamEvents(t *testing.T, base, id string) (map[string]int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/streams/" + id + "/events")
	if err != nil {
		t.Fatalf("GET stream events: %v", err)
	}
	defer resp.Body.Close()
	counts := map[string]int{}
	var event string
	var done []byte
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			counts[event]++
			if event == "done" {
				done = []byte(strings.TrimPrefix(line, "data: "))
				return counts, done
			}
		}
	}
	t.Fatalf("stream event feed ended without done (err=%v, counts=%v)", sc.Err(), counts)
	return nil, nil
}

// TestStreamValidationAndLifecycle covers open-time validation, the
// jobs endpoint redirecting stream specs, delete, and GC of idle and
// terminal sessions.
func TestStreamValidationAndLifecycle(t *testing.T) {
	svc, ts := startServer(t, Config{JobTTL: 50 * time.Millisecond})

	// Stream specs are not jobs.
	if _, code := submitJSON(t, ts.URL, JobRequest{Source: "gnm:100:300:1", Options: JobOptions{Mode: "stream"}}); code != http.StatusBadRequest {
		t.Fatalf("mode=stream job: HTTP %d, want 400", code)
	}
	// Open-time spec validation surfaces as a 400.
	if _, code := openStream(t, ts.URL, StreamOpenRequest{Options: JobOptions{Relabel: "bfs"}}); code != http.StatusBadRequest {
		t.Fatalf("relabel stream: HTTP %d, want 400", code)
	}
	if _, code := openStream(t, ts.URL, StreamOpenRequest{Options: JobOptions{Engine: "serial"}}); code != http.StatusBadRequest {
		t.Fatalf("serial stream: HTTP %d, want 400", code)
	}

	// Result of an open session is a conflict; delete abandons it.
	st, code := openStream(t, ts.URL, StreamOpenRequest{})
	if code != http.StatusCreated {
		t.Fatalf("open: HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/streams/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result while open: HTTP %d, want 409", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/streams/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", resp.StatusCode)
	}
	if _, ok := svc.lookupStream(st.ID); ok {
		t.Fatal("deleted session still in the store")
	}

	// GC: an idle open session and a closed one both age out.
	idle, _ := openStream(t, ts.URL, StreamOpenRequest{})
	closed, _ := openStream(t, ts.URL, StreamOpenRequest{})
	if resp, err := http.Post(ts.URL+"/v1/streams/"+closed.ID+"/close", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	time.Sleep(60 * time.Millisecond)
	svc.gcSweep(time.Now())
	if _, ok := svc.lookupStream(idle.ID); ok {
		t.Fatal("idle open session survived the GC sweep")
	}
	if _, ok := svc.lookupStream(closed.ID); ok {
		t.Fatal("closed session survived the GC sweep")
	}
}
