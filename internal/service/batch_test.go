package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// postBatch submits a BatchRequest and decodes the returned status.
func postBatch(t *testing.T, base string, req BatchRequest) (BatchStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batches: %v", err)
	}
	defer resp.Body.Close()
	var st BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode batch response: %v", err)
	}
	return st, resp.StatusCode
}

// waitBatchDone polls GET /v1/batches/{id} until Done.
func waitBatchDone(t *testing.T, base, id string) BatchStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/batches/" + id)
		if err != nil {
			t.Fatalf("GET batch: %v", err)
		}
		var st BatchStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode batch status: %v", err)
		}
		if st.Done {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("batch did not finish in time")
	return BatchStatus{}
}

// TestBatchEndpointFanOut drives POST /v1/batches end to end: items
// fan out to ordinary jobs, identical items share one job via the
// usual dedup, the aggregate status reaches Done with per-item
// metrics, and the member jobs remain individually addressable.
func TestBatchEndpointFanOut(t *testing.T) {
	_, ts := startServer(t, Config{MaxConcurrent: 2, Workers: 4})
	verify := true
	req := BatchRequest{Items: []JobRequest{
		{Source: "rmat-g:9:5", Options: JobOptions{Verify: &verify}},
		{Source: "gnm:500:2000:3", Options: JobOptions{Verify: &verify}},
		{Source: "RMAT-G:9:5:8", Options: JobOptions{Verify: &verify}}, // dedups onto item 0's job
	}}
	st, code := postBatch(t, ts.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/batches = %d, want 202", code)
	}
	if st.ID == "" || len(st.Items) != 3 {
		t.Fatalf("batch status %+v", st)
	}
	if st.Items[0].ID != st.Items[2].ID {
		t.Errorf("canonical duplicates got distinct jobs %s / %s", st.Items[0].ID, st.Items[2].ID)
	}
	if st.Items[0].ID == st.Items[1].ID {
		t.Error("distinct specs share a job")
	}

	final := waitBatchDone(t, ts.URL, st.ID)
	if final.Counts[StateDone] != 3 {
		t.Fatalf("final counts %+v, want 3 done", final.Counts)
	}
	for _, item := range final.Items {
		if item.Metrics == nil || item.Metrics.Chordal == nil || !*item.Metrics.Chordal {
			t.Errorf("item %d lacks verified metrics: %+v", item.Index, item.Metrics)
		}
	}

	// Member jobs stay reachable through the ordinary job API.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.Items[1].ID)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET member job: %v / %v", err, resp)
	}
	resp.Body.Close()

	// Healthz counts the batch.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if n, _ := hz["batches"].(float64); n != 1 {
		t.Errorf("healthz batches = %v, want 1", hz["batches"])
	}
}

// TestBatchEndpointValidation pins the all-or-nothing admission rule:
// one invalid item rejects the whole batch with its index named, and
// empty batches are rejected.
func TestBatchEndpointValidation(t *testing.T) {
	_, ts := startServer(t, Config{MaxConcurrent: 1})
	body := func(req BatchRequest) *bytes.Reader {
		b, _ := json.Marshal(req)
		return bytes.NewReader(b)
	}

	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", body(BatchRequest{}))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/batches", "application/json", body(BatchRequest{Items: []JobRequest{
		{Source: "gnm:100:300:1"},
		{Source: "gnm:10:20", Options: JobOptions{Engine: "serial", Shards: 4}},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicting item = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(e["error"], "item 1") || !strings.Contains(e["error"], "conflict") {
		t.Errorf("error %q should name item 1 and the conflict", e["error"])
	}
	// Nothing was admitted: no batch exists and no job ran.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if n, _ := hz["batches"].(float64); n != 0 {
		t.Errorf("healthz batches = %v after rejected submissions, want 0", hz["batches"])
	}
	if n, _ := hz["jobs"].(float64); n != 0 {
		t.Errorf("healthz jobs = %v after rejected submissions, want 0", hz["jobs"])
	}
}

// TestBatchGCSpareFreshCacheHitBatch pins the GC window the sweep must
// not fall into: a batch whose items all hit the result cache is made
// of jobs that finished before the batch existed, so the member-age
// predicate alone would sweep it seconds after its 202. The batch's
// own creation time gates the sweep.
func TestBatchGCSpareFreshCacheHitBatch(t *testing.T) {
	svc, ts := startServer(t, Config{MaxConcurrent: 1, JobTTL: time.Hour})
	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:200:800:5"})
	followEvents(t, ts.URL, st.ID) // wait for completion

	// Backdate the producing job past the TTL while it is still stored:
	// the batch below attaches to it via the result cache, recreating
	// the window where every member is sweep-old the moment the batch
	// is born.
	job, ok := svc.lookup(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	job.mu.Lock()
	job.finished = time.Now().Add(-2 * time.Hour)
	job.mu.Unlock()

	bst, code := postBatch(t, ts.URL, BatchRequest{Items: []JobRequest{{Source: "gnm:200:800:5"}}})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if !bst.Done {
		t.Fatalf("cache-hit batch not born done: %+v", bst)
	}
	if bst.Items[0].ID != st.ID {
		t.Fatalf("batch item job %s, want cache hit on %s", bst.Items[0].ID, st.ID)
	}

	if removed := svc.gcSweep(time.Now()); removed == 0 {
		t.Fatal("sweep removed no jobs; the cache-hit window was not constructed")
	}
	resp, err := http.Get(ts.URL + "/v1/batches/" + bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh batch swept with its aged members: GET = %d, want 200", resp.StatusCode)
	}
	// Once the batch itself ages past the TTL it goes too.
	svc.gcSweep(time.Now().Add(3 * time.Hour))
	resp, err = http.Get(ts.URL + "/v1/batches/" + bst.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("aged batch not swept: GET = %d, want 404", resp.StatusCode)
	}
}

// TestBatchEndpointMergedSSE checks the merged event stream: every
// member job's events arrive wrapped with its batch index and job id,
// and the stream terminates with one batchDone event carrying the
// final aggregate status.
func TestBatchEndpointMergedSSE(t *testing.T) {
	_, ts := startServer(t, Config{MaxConcurrent: 2, Workers: 4})
	verify := true
	st, code := postBatch(t, ts.URL, BatchRequest{Items: []JobRequest{
		{Source: "rmat-g:9:5", Options: JobOptions{Verify: &verify}},
		{Source: "gnm:400:1600:7", Options: JobOptions{Verify: &verify}},
	}})
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/batches/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET batch events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	type frame struct {
		Batch *int            `json:"batch"`
		Job   string          `json:"job"`
		Data  json.RawMessage `json:"data"`
	}
	seenBatch := map[int]bool{}
	doneEvents := 0
	var batchDone *BatchStatus
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() && batchDone == nil {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "batchDone" {
				var final BatchStatus
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("decode batchDone: %v", err)
				}
				batchDone = &final
				continue
			}
			var f frame
			if err := json.Unmarshal([]byte(data), &f); err != nil {
				t.Fatalf("merged event %q is not wrapped JSON: %v", data, err)
			}
			if f.Batch == nil || f.Job == "" || len(f.Data) == 0 {
				t.Fatalf("merged frame missing batch/job/data: %s", data)
			}
			seenBatch[*f.Batch] = true
			if event == "done" {
				doneEvents++
			}
		}
	}
	if !seenBatch[0] || !seenBatch[1] {
		t.Errorf("merged stream missing items: saw %v", seenBatch)
	}
	if doneEvents != 2 {
		t.Errorf("%d per-job done events, want 2", doneEvents)
	}
	if batchDone == nil || !batchDone.Done || batchDone.Counts[StateDone] != 2 {
		t.Errorf("batchDone = %+v", batchDone)
	}
}
