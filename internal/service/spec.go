package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"chordal"
)

// JobRequest is the JSON body of POST /v1/jobs: where the input graph
// comes from and how to extract. Multipart submissions carry the graph
// bytes instead of Source and may attach the same Options object as a
// JSON-encoded "options" form field.
type JobRequest struct {
	// Source is a file path or generator spec, as understood by
	// chordal.ParseSource (see chordal.SourceSpecs for the grammar).
	Source string `json:"source"`
	// Options selects the extraction configuration; the zero value uses
	// the defaults (auto variant, dataflow schedule, verify on).
	Options JobOptions `json:"options"`
}

// JobOptions is the wire form of the extraction configuration. String
// enums use the CLI names so the HTTP API and the chordal command read
// identically. JSON key order and omitted-versus-defaulted fields do
// not affect job identity: options are normalized before hashing.
type JobOptions struct {
	// Variant is auto|opt|unopt (default auto).
	Variant string `json:"variant,omitempty"`
	// Schedule is dataflow|async|sync (default dataflow).
	Schedule string `json:"schedule,omitempty"`
	// Relabel is none|bfs|degree (default none).
	Relabel string `json:"relabel,omitempty"`
	// Workers requests extraction parallelism, granted from the
	// server's shared worker budget: the job receives up to the
	// requested count, limited to the tokens currently free (at least
	// one; a request against an exhausted pool waits for the first
	// release). <= 0 requests the default fair share of the budget
	// (total / MaxConcurrent; the server clamps MaxConcurrent to the
	// budget), which keeps default-width jobs genuinely concurrent;
	// request more for full width on an idle server. The metrics
	// report the actual grant.
	Workers int `json:"workers,omitempty"`
	// Repair enables the maximality repair post-pass.
	Repair bool `json:"repair,omitempty"`
	// Stitch enables the component stitch post-pass.
	Stitch bool `json:"stitch,omitempty"`
	// Shards > 0 runs sharded extraction: the kernel runs per
	// contiguous vertex-range shard inside the job's worker lease and
	// border edges are reconciled with a chordality-preserving stitch
	// (see DESIGN.md §7). 0 (the default) extracts the whole graph in
	// one kernel.
	Shards int `json:"shards,omitempty"`
	// ShardStitchOnly restricts border reconciliation to the spanning
	// stitch. Ignored (and canonicalized away) unless Shards > 0.
	ShardStitchOnly bool `json:"shardStitchOnly,omitempty"`
	// Verify runs the chordality check (and maximality audit on small
	// inputs) on the result; omitted means true.
	Verify *bool `json:"verify,omitempty"`
}

// jobSpec is a fully normalized job description: the canonical input
// identity plus resolved option enums. Equal jobSpecs produce the same
// Key regardless of how the request spelled them.
type jobSpec struct {
	source          string // canonical Source spec, or "upload:<sha256>" for uploads
	generated       bool   // source is a deterministic generator spec
	variant         chordal.Variant
	schedule        chordal.Schedule
	relabel         chordal.RelabelMode
	workers         int
	repair          bool
	stitch          bool
	verify          bool
	shards          int
	shardStitchOnly bool
}

// normalizeOptions resolves the wire options to their canonical enum
// values, rejecting unknown names.
func normalizeOptions(o JobOptions) (jobSpec, error) {
	var spec jobSpec
	var err error
	if spec.variant, err = chordal.ParseVariant(o.Variant); err != nil {
		return spec, err
	}
	if spec.schedule, err = chordal.ParseSchedule(o.Schedule); err != nil {
		return spec, err
	}
	if spec.relabel, err = chordal.ParseRelabel(o.Relabel); err != nil {
		return spec, err
	}
	spec.workers = o.Workers
	if spec.workers < 0 {
		spec.workers = 0
	}
	spec.repair = o.Repair
	spec.stitch = o.Stitch
	spec.verify = o.Verify == nil || *o.Verify
	if o.Shards < 0 {
		return spec, fmt.Errorf("service: shards %d must be >= 0", o.Shards)
	}
	spec.shards = o.Shards
	// ShardStitchOnly has no effect without sharding; canonicalize it
	// away so {"shardStitchOnly":true} alone does not split identity.
	spec.shardStitchOnly = o.ShardStitchOnly && o.Shards > 0
	return spec, nil
}

// newJobSpec normalizes a Source-based request: the source is parsed
// and canonicalized (defaults filled, whitespace trimmed), the options
// resolved. Unless allowPaths is set, sources that are not generator
// specs are rejected — a network-facing server must not let clients
// name arbitrary server files (error messages and results would
// disclose their contents); uploads are the supported way to submit
// graph data.
func newJobSpec(req JobRequest, allowPaths bool) (jobSpec, error) {
	if strings.TrimSpace(req.Source) == "" {
		return jobSpec{}, fmt.Errorf("service: job needs a source (or a multipart graph upload)")
	}
	src, err := chordal.ParseSource(req.Source)
	if err != nil {
		return jobSpec{}, err
	}
	if !src.Generated() && !allowPaths {
		return jobSpec{}, fmt.Errorf("service: file-path sources are disabled (upload the graph, or start the server with path sources allowed)")
	}
	spec, err := normalizeOptions(req.Options)
	if err != nil {
		return jobSpec{}, err
	}
	spec.source = src.Canonical()
	spec.generated = src.Generated()
	return spec, nil
}

// uploadSource returns the canonical source identity of uploaded graph
// bytes: the decode format plus the full SHA-256 content digest. The
// format is part of the identity because the same bytes decode to
// different graphs under different parsers (Matrix Market is 1-based
// with comment banners; edge lists are 0-based); within one format,
// re-uploading the same bytes hits the caches no matter the filename.
// Takes the digest rather than the bytes so callers can hash a
// streamed upload without buffering it.
func uploadSource(format string, digest [sha256.Size]byte) string {
	return "upload:" + format + ":" + hex.EncodeToString(digest[:])
}

// cacheable reports whether completed extractions for this spec may be
// served from the result cache: generator specs are deterministic in
// their canonical form and uploads are content-addressed, but a file
// path's contents can change between loads, so path-sourced jobs are
// always re-run.
func (s jobSpec) cacheable() bool {
	return s.generated || strings.HasPrefix(s.source, "upload:")
}

// Key returns the result-cache identity of the job: a hash of the
// canonical source and every option that can change the extracted
// subgraph. Workers is deliberately excluded — the dataflow schedule's
// edge set is worker-count independent, and for the async schedule any
// run's output is an equally valid representative — so a repeat of the
// same spec at a different parallelism is still a cache hit.
func (s jobSpec) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "src=%s;variant=%s;schedule=%s;relabel=%d;repair=%t;stitch=%t;verify=%t;shards=%d;shardstitchonly=%t",
		s.source, s.variant, s.schedule, s.relabel, s.repair, s.stitch, s.verify,
		s.shards, s.shardStitchOnly)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Pipeline materializes the chordal.Pipeline for this spec. The caller
// wires Input, OnStage and OnIteration before running.
func (s jobSpec) Pipeline() chordal.Pipeline {
	return chordal.Pipeline{
		Source:          s.source,
		Relabel:         s.relabel,
		Extract:         true,
		Shards:          s.shards,
		ShardStitchOnly: s.shardStitchOnly,
		Options: chordal.Options{
			Variant:          s.variant,
			Schedule:         s.schedule,
			Workers:          s.workers,
			RepairMaximality: s.repair,
			StitchComponents: s.stitch,
		},
		Verify: s.verify,
	}
}
