package service

import (
	"fmt"
	"strconv"
	"strings"

	"chordal"
)

// JobRequest is the JSON body of POST /v1/jobs: where the input graph
// comes from and how to extract. Multipart submissions carry the graph
// bytes instead of Source and may attach the same Options object as a
// JSON-encoded "options" form field. The request is a thin wire shim:
// it decodes into a chordal.Spec, and every normalization, validation
// and identity rule lives in the chordal package.
type JobRequest struct {
	// Source is a file path or generator spec, as understood by
	// chordal.ParseSource (see chordal.SourceSpecs for the grammar).
	Source string `json:"source"`
	// Options selects the extraction configuration; the zero value uses
	// the defaults (parallel engine, auto variant, dataflow schedule,
	// verify on).
	Options JobOptions `json:"options"`
}

// JobOptions is the wire form of the extraction configuration. String
// enums use the CLI names so the HTTP API and the chordal command read
// identically. JSON key order and omitted-versus-defaulted fields do
// not affect job identity: the decoded chordal.Spec is normalized and
// its Canonical() string is the job key.
type JobOptions struct {
	// Engine names the extraction engine (chordal.EngineNames; default
	// parallel). Omitted, it is implied by Partitions/Shards when
	// exactly one of them is set; conflicting selections are rejected.
	Engine string `json:"engine,omitempty"`
	// Variant is auto|opt|unopt (default auto).
	Variant string `json:"variant,omitempty"`
	// Schedule is dataflow|async|sync (default dataflow).
	Schedule string `json:"schedule,omitempty"`
	// Relabel is none|bfs|degree (default none).
	Relabel string `json:"relabel,omitempty"`
	// Workers requests extraction parallelism, granted from the
	// server's shared worker budget: the job receives up to the
	// requested count, limited to the tokens currently free (at least
	// one; a request against an exhausted pool waits for the first
	// release). <= 0 requests the default fair share of the budget
	// (total / MaxConcurrent; the server clamps MaxConcurrent to the
	// budget), which keeps default-width jobs genuinely concurrent;
	// request more for full width on an idle server. The metrics
	// report the actual grant.
	Workers int `json:"workers,omitempty"`
	// Repair enables the maximality repair post-pass.
	Repair bool `json:"repair,omitempty"`
	// Stitch enables the component stitch post-pass.
	Stitch bool `json:"stitch,omitempty"`
	// Partitions > 0 runs the distributed-style partitioned baseline
	// engine with this many parts.
	Partitions int `json:"partitions,omitempty"`
	// Shards > 0 runs the sharded engine: the kernel runs per
	// contiguous vertex-range shard inside the job's worker lease and
	// border edges are reconciled with a chordality-preserving stitch
	// (see DESIGN.md §7). 0 (the default) extracts the whole graph in
	// one kernel.
	Shards int `json:"shards,omitempty"`
	// ShardStitchOnly restricts border reconciliation to the spanning
	// stitch. Ignored (and canonicalized away) unless the sharded
	// engine runs.
	ShardStitchOnly bool `json:"shardStitchOnly,omitempty"`
	// ResidentShards bounds how many decoded shards the external
	// engine holds in memory at once (default 2, the double-buffer
	// minimum). A residency knob, not identity: it never splits the
	// canonical job key.
	ResidentShards int `json:"residentShards,omitempty"`
	// MaxDeferred bounds a stream session's deferred-edge queue;
	// deltas past the bound drop with an overflow event. 0 (default)
	// is unbounded; rejected outside stream mode.
	MaxDeferred int `json:"maxDeferred,omitempty"`
	// Start is the dearing engine's start vertex; setting it non-zero
	// with any other engine is rejected.
	Start int `json:"start,omitempty"`
	// Order is the elimination engine's ordering, natural|mindeg
	// (default mindeg); setting it with any other engine is rejected.
	Order string `json:"order,omitempty"`
	// Verify runs the chordality check (and maximality audit on small
	// inputs) on the result; omitted means true.
	Verify *bool `json:"verify,omitempty"`
	// Mode is batch|stream (default batch). Stream-mode specs are not
	// jobs: POST /v1/jobs rejects them and points at POST /v1/streams,
	// which takes the same options object.
	Mode string `json:"mode,omitempty"`
}

// Spec decodes the wire options into a normalized chordal.Spec for the
// given source — the thin mapping layer between the HTTP API and the
// library's one spec representation.
func (o JobOptions) Spec(source string) (chordal.Spec, error) {
	return o.rawSpec(source).Normalize()
}

// rawSpec builds the un-normalized chordal.Spec the wire options
// describe; Spec and the stream-open handler normalize it themselves.
func (o JobOptions) rawSpec(source string) chordal.Spec {
	return chordal.Spec{
		V:       chordal.SpecVersion,
		Source:  source,
		Relabel: o.Relabel,
		Mode:    o.Mode,
		Engine:  o.Engine,
		EngineConfig: chordal.EngineConfig{
			Variant:         o.Variant,
			Schedule:        o.Schedule,
			Workers:         o.Workers,
			Repair:          o.Repair,
			Stitch:          o.Stitch,
			Partitions:      o.Partitions,
			Shards:          o.Shards,
			ShardStitchOnly: o.ShardStitchOnly,
			ResidentShards:  o.ResidentShards,
			MaxDeferred:     o.MaxDeferred,
			Start:           o.Start,
			Order:           o.Order,
		},
		Verify: o.Verify == nil || *o.Verify,
	}
}

// jobSpec pairs a normalized chordal.Spec with its canonical identity —
// the service holds no option-normalization or hashing logic of its
// own; the key is chordal.Spec.Canonical() verbatim.
type jobSpec struct {
	// spec is the normalized run description (canonical source,
	// explicit engine, defaulted enums).
	spec chordal.Spec
	// key is spec.Canonical(), the cache/dedup identity shared with the
	// CLI and library.
	key string
	// generated reports a deterministic generator source, the inputs
	// the input cache may hold.
	generated bool
	// deterministic reports that reruns see the same input (generator
	// or content-addressed upload), making results cacheable.
	deterministic bool
}

// newJobSpec decodes and normalizes a Source-based request. Unless
// allowPaths is set, sources that are neither generator specs nor
// uploads are rejected — a network-facing server must not let clients
// name arbitrary server files (error messages and results would
// disclose their contents); uploads are the supported way to submit
// graph data.
func newJobSpec(req JobRequest, allowPaths bool) (jobSpec, error) {
	if strings.EqualFold(strings.TrimSpace(req.Options.Mode), chordal.ModeStream) {
		return jobSpec{}, fmt.Errorf("service: stream-mode specs are sessions, not jobs; open one at POST /v1/streams")
	}
	if strings.TrimSpace(req.Source) == "" {
		return jobSpec{}, fmt.Errorf("service: job needs a source (or a multipart graph upload)")
	}
	spec, err := req.Options.Spec(req.Source)
	if err != nil {
		return jobSpec{}, err
	}
	src, err := chordal.ParseSource(spec.Source)
	if err != nil {
		return jobSpec{}, err
	}
	if src.ContentAddressed() {
		// An upload identity names bytes this request did not carry; a
		// job built from it could only fail at load time — and, being
		// cacheable, could absorb a genuine concurrent upload of the
		// same graph via single-flight and fail that too.
		return jobSpec{}, fmt.Errorf("service: source %q is an upload identity; submit the graph bytes as a multipart upload instead", spec.Source)
	}
	if !src.Generated() && !allowPaths {
		return jobSpec{}, fmt.Errorf("service: file-path sources are disabled (upload the graph, or start the server with path sources allowed)")
	}
	return finishJobSpec(spec, src)
}

// finishJobSpec derives the canonical key and cacheability of a
// normalized spec.
func finishJobSpec(spec chordal.Spec, src chordal.Source) (jobSpec, error) {
	key, err := spec.Canonical()
	if err != nil {
		return jobSpec{}, err
	}
	return jobSpec{
		spec:          spec,
		key:           key,
		generated:     src.Generated(),
		deterministic: src.Generated() || src.ContentAddressed(),
	}, nil
}

// cacheable reports whether completed extractions for this spec may be
// served from the result cache: generator specs are deterministic in
// their canonical form and uploads are content-addressed, but a file
// path's contents can change between loads, so path-sourced jobs are
// always re-run.
func (s jobSpec) cacheable() bool { return s.deterministic }

// Key returns the job's cache/dedup identity: the spec's canonical
// encoding, shared verbatim with chordal.Spec.Canonical callers.
func (s jobSpec) Key() string { return s.key }

// Scheduler cost units: one unit per costUnitEdges estimated input
// edges (so a default job is cost 1 and a scale-20 R-MAT weighs in
// around 128), capped so a single pathological estimate cannot dwarf
// a tenant's entire fair share.
const (
	costUnitEdges = 64 << 10
	maxJobCost    = 1 << 10
)

// cost estimates the job's scheduler cost from its canonical source: a
// cheap reparse of the generator arguments into an expected edge
// count. Uploads and file paths carry no size in their identity and
// charge the single-unit default — the estimate steers weighted-fair
// interleaving, it is not an admission bound, so erring small only
// softens (never breaks) fairness.
func (s jobSpec) cost() int64 {
	edges := estimateEdges(s.spec.Source)
	c := 1 + edges/costUnitEdges
	if c > maxJobCost {
		c = maxJobCost
	}
	return c
}

// estimateEdges reads an expected edge count off a canonical generator
// source ("family:arg:..." with defaults filled in); unknown families,
// paths, and uploads estimate 0 (one cost unit).
func estimateEdges(source string) int64 {
	fields := strings.Split(source, ":")
	arg := func(i int) int64 {
		if i >= len(fields) {
			return 0
		}
		n, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			return 0
		}
		return n
	}
	switch strings.ToLower(fields[0]) {
	case "gnm": // gnm:n:m:seed
		return arg(2)
	case "rmat-er", "rmat-g", "rmat-b": // family:scale:seed:edgefactor
		scale, ef := arg(1), arg(3)
		if scale <= 0 || scale > 40 {
			return 0
		}
		if ef <= 0 {
			ef = 8
		}
		return ef << scale
	case "ws": // ws:n:k:beta:seed — n*k/2 edges
		return arg(1) * arg(2) / 2
	case "ktree": // ktree:n:k:seed — ~n*k edges
		return arg(1) * arg(2)
	case "geo": // geo:n:radius:seed — degree depends on radius; charge by n
		return arg(1)
	default:
		return 0
	}
}
