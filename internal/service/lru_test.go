package service

import "testing"

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU[int](2)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d,%t; want 1,true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d,%t; want 3,true", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Add("a", 10) // refresh existing key updates in place
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a after refresh = %d, want 10", v)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](-1)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}
