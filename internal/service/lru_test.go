package service

import "testing"

// unitCost charges every entry 1 byte, recovering entry-count
// semantics for the recency tests.
func unitCost(int) int64 { return 1 }

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU[int](2, unitCost)
	c.Add("a", 1)
	c.Add("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction; want LRU evicted")
	}
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Errorf("a = %d,%t; want 1,true", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Errorf("c = %d,%t; want 3,true", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Add("a", 10) // refresh existing key updates in place
	if v, _ := c.Get("a"); v != 10 {
		t.Errorf("a after refresh = %d, want 10", v)
	}
}

func TestLRUByteBounded(t *testing.T) {
	// Charge each entry its own value: a 10-byte budget holds 4+5 but
	// evicts the older entry when 3 more bytes arrive.
	c := newLRU[int](10, func(v int) int64 { return int64(v) })
	c.Add("a", 4)
	c.Add("b", 5)
	if got := c.Bytes(); got != 9 {
		t.Fatalf("Bytes = %d, want 9", got)
	}
	c.Add("c", 3)
	if _, ok := c.Get("a"); ok {
		t.Error("a survived; want evicted to fit the byte budget")
	}
	if got := c.Bytes(); got != 8 {
		t.Errorf("Bytes = %d, want 8 (b+c)", got)
	}

	// Refreshing a key at a new cost adjusts the accounting.
	c.Add("b", 7)
	if got := c.Bytes(); got != 10 {
		t.Errorf("Bytes after refresh = %d, want 10 (b=7, c=3)", got)
	}

	// An entry larger than the whole budget passes through uncached
	// and must NOT flush the entries that do fit.
	c.Add("huge", 100)
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized entry cached; want passed through")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("oversized insert evicted a fitting entry")
	}
	if got := c.Bytes(); got != 10 {
		t.Errorf("Bytes after oversized insert = %d, want 10 (b and c intact)", got)
	}

	// Refreshing an existing key to an oversized value drops the stale
	// entry rather than serving it forever.
	c.Add("b", 100)
	if _, ok := c.Get("b"); ok {
		t.Error("stale entry survived an oversized refresh")
	}
	if got := c.Bytes(); got != 3 {
		t.Errorf("Bytes after oversized refresh = %d, want 3 (c only)", got)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](-1, unitCost)
	c.Add("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}
