package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// doDelete issues DELETE /v1/jobs/{id} and decodes the response.
func doDelete(t *testing.T, base, id string) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	return st, resp.StatusCode
}

// TestCacheHitReturnsProducingJob pins the fix for the born-done job
// churn: a result-cache hit must return the job that produced the
// result — same id, no new job registered per request.
func TestCacheHitReturnsProducingJob(t *testing.T) {
	svc, ts := startServer(t, Config{})
	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:800:2400"})
	followEvents(t, ts.URL, st.ID)

	for i := 0; i < 5; i++ {
		hit, code := submitJSON(t, ts.URL, JobRequest{Source: "GNM:800:2400:42"})
		if code != http.StatusOK || hit.ID != st.ID {
			t.Fatalf("hit %d: code %d id %s, want 200 with id %s", i, code, hit.ID, st.ID)
		}
	}
	svc.mu.Lock()
	stored := len(svc.jobs)
	svc.mu.Unlock()
	if stored != 1 {
		t.Fatalf("job store holds %d jobs after 5 cache hits, want 1", stored)
	}
}

// TestJobGC pins the TTL sweep: a terminal job leaves the store after
// JobTTL, and a later cache hit re-registers exactly one born-done job
// whose id is then pinned for further hits.
func TestJobGC(t *testing.T) {
	svc, ts := startServer(t, Config{JobTTL: 30 * time.Millisecond})
	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:600:1800"})
	followEvents(t, ts.URL, st.ID)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still in the store long after its TTL", st.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The cached result survived the job: the next submission is still
	// a hit, served by one fresh born-done job...
	hit, code := submitJSON(t, ts.URL, JobRequest{Source: "gnm:600:1800"})
	if code != http.StatusOK || !hit.Cached || hit.State != StateDone {
		t.Fatalf("post-GC hit: code %d %+v, want 200 cached done", code, hit)
	}
	if hit.ID == st.ID {
		t.Fatalf("post-GC hit reused the collected id %s", st.ID)
	}
	// ...whose id is pinned: an immediate further hit reuses it instead
	// of minting another.
	hit2, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:600:1800"})
	if hit2.ID != hit.ID {
		t.Fatalf("second post-GC hit minted %s, want pinned %s", hit2.ID, hit.ID)
	}
	_ = svc
}

// TestGCSpareRunningJobs pins the sweep predicate: only terminal jobs
// age out; a queued job blocked on the worker budget survives sweeps
// far beyond its TTL.
func TestGCSpareRunningJobs(t *testing.T) {
	svc, ts := startServer(t, Config{JobTTL: 20 * time.Millisecond, Workers: 2})
	hold := svc.budget.Lease(0) // starve the pool so the job stays queued
	defer svc.budget.Release(hold)

	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:500:1500"})
	time.Sleep(100 * time.Millisecond) // several sweep intervals
	if removed := svc.gcSweep(time.Now()); removed != 0 {
		t.Fatalf("sweep removed %d jobs while one was queued", removed)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued job vanished: status %d", resp.StatusCode)
	}
}

// TestSingleFlightDedup pins the cache-stampede fix: identical specs
// submitted while the first is still executing share that execution
// and its job id. The first job is held deterministically in its
// budget lease wait so the duplicates must land mid-flight.
func TestSingleFlightDedup(t *testing.T) {
	svc, ts := startServer(t, Config{MaxConcurrent: 2, Workers: 2})
	hold := svc.budget.Lease(0)

	st1, code1 := submitJSON(t, ts.URL, JobRequest{Source: "gnm:2500:7500"})
	if code1 != http.StatusAccepted {
		t.Fatalf("first submission: code %d", code1)
	}
	for i := 0; i < 4; i++ {
		dup, code := submitJSON(t, ts.URL, JobRequest{Source: "GNM:2500:7500:42"})
		if dup.ID != st1.ID {
			t.Fatalf("duplicate %d ran as its own job %s, want shared %s", i, dup.ID, st1.ID)
		}
		if code != http.StatusAccepted {
			t.Fatalf("duplicate %d: code %d, want 202 (shared in-flight job)", i, code)
		}
	}
	// A different spec is not absorbed.
	other, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:2500:7500:7"})
	if other.ID == st1.ID {
		t.Fatal("distinct spec deduplicated onto the wrong job")
	}

	svc.budget.Release(hold)
	if _, done := followEvents(t, ts.URL, st1.ID); done.State != StateDone {
		t.Fatalf("shared job finished %q (%s)", done.State, done.Error)
	}
	if _, done := followEvents(t, ts.URL, other.ID); done.State != StateDone {
		t.Fatalf("other job finished %q (%s)", done.State, done.Error)
	}
	// Post-flight, the same spec is a plain cache hit on the shared job.
	hit, code := submitJSON(t, ts.URL, JobRequest{Source: "gnm:2500:7500"})
	if code != http.StatusOK || hit.ID != st1.ID {
		t.Fatalf("post-flight: code %d id %s, want 200 on %s", code, hit.ID, st1.ID)
	}
}

// TestCancelQueuedJob pins the DELETE endpoint end to end on a job
// held deterministically in its budget-lease wait: cancel must drive
// it to the terminal canceled state, release nothing it never leased,
// and leave the budget fully usable for the next full-width job.
func TestCancelQueuedJob(t *testing.T) {
	svc, ts := startServer(t, Config{MaxConcurrent: 2, Workers: 2})
	hold := svc.budget.Lease(0)

	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:3000:9000"})
	got, code := doDelete(t, ts.URL, st.ID)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE: code %d, want 202", code)
	}
	if terminalState(got.State) && got.State != StateCanceled {
		t.Fatalf("DELETE response state %q", got.State)
	}
	_, done := followEvents(t, ts.URL, st.ID)
	if done.State != StateCanceled {
		t.Fatalf("terminal state %q (error %q), want canceled", done.State, done.Error)
	}

	// Cancelling a terminal job is a conflict.
	if _, code := doDelete(t, ts.URL, st.ID); code != http.StatusConflict {
		t.Fatalf("second DELETE: code %d, want 409", code)
	}

	// The canceled job leased nothing, so after releasing the hold a
	// full-width request must get every token and complete.
	svc.budget.Release(hold)
	body, _ := json.Marshal(JobRequest{Source: "gnm:1000:3000", Options: JobOptions{Workers: 2}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var full JobStatus
	json.NewDecoder(resp.Body).Decode(&full)
	resp.Body.Close()
	_, done = followEvents(t, ts.URL, full.ID)
	if done.State != StateDone || done.Metrics.Workers != 2 {
		t.Fatalf("post-cancel full-width job: %+v", done)
	}
}

// TestCancelUnknownJob: DELETE of a job that never existed is a 404.
func TestCancelUnknownJob(t *testing.T) {
	_, ts := startServer(t, Config{})
	if _, code := doDelete(t, ts.URL, "jx"); code != http.StatusNotFound {
		t.Fatalf("code %d, want 404", code)
	}
}

// TestCancelNoGoroutineLeak extends the shutdown leak contract to
// cancellation: after cancelling jobs (queued and lease-blocked) and
// closing the server, the process goroutine count returns to its
// pre-server level.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{MaxConcurrent: 1, Workers: 1, JobTTL: time.Hour})
	hold := svc.budget.Lease(0)
	// One job blocked in the lease wait, one blocked on the semaphore.
	specA, err := newJobSpec(JobRequest{Source: "gnm:2000:6000"}, false)
	if err != nil {
		t.Fatal(err)
	}
	specB, err := newJobSpec(JobRequest{Source: "gnm:2000:6000:7"}, false)
	if err != nil {
		t.Fatal(err)
	}
	jobA, _, err := svc.submit(specA, nil)
	if err != nil {
		t.Fatal(err)
	}
	jobB, _, err := svc.submit(specB, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{jobA, jobB} {
		if !j.requestCancel() {
			t.Fatalf("job %s already terminal before cancel", j.ID())
		}
		j.cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		a, b := jobA.Status(), jobB.Status()
		if a.State == StateCanceled && b.State == StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs not canceled: %s=%q %s=%q", jobA.ID(), a.State, jobB.ID(), b.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	svc.budget.Release(hold)
	svc.Close()

	deadline = time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, want <= %d: worker leak after cancel + Close",
				runtime.NumGoroutine(), before+2)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedJobOverHTTP drives the shards=N option end to end: the
// job must finish verified chordal with per-shard iteration counts in
// its metrics, and its cache identity must be distinct from the
// unsharded spec.
func TestShardedJobOverHTTP(t *testing.T) {
	_, ts := startServer(t, Config{})

	body := `{"source":"rmat-g:10:7","options":{"shards":4}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var st JobStatus
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()

	counts, done := followEvents(t, ts.URL, st.ID)
	if done.State != StateDone {
		t.Fatalf("sharded job: %q (error %q)", done.State, done.Error)
	}
	m := done.Metrics
	if m.Shards != 4 || len(m.ShardIterations) != 4 {
		t.Fatalf("shard metrics %+v, want 4 shards with per-shard iterations", m)
	}
	if m.Chordal == nil || !*m.Chordal {
		t.Fatalf("sharded result not verified chordal: %+v", m)
	}
	if m.BorderTotal == 0 {
		t.Errorf("4-way shard of an R-MAT graph reported no border edges")
	}
	if counts["iteration"] < 4 {
		t.Errorf("saw %d shard iteration SSE events, want >= 4", counts["iteration"])
	}

	// The unsharded spelling of the same source is a different job, not
	// a cache hit.
	plain, code := submitJSON(t, ts.URL, JobRequest{Source: "rmat-g:10:7"})
	if code == http.StatusOK || plain.ID == st.ID {
		t.Fatalf("unsharded spec collided with sharded job: code %d id %s", code, plain.ID)
	}
}
