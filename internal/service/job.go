package service

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"chordal"
	"chordal/internal/graph"
	"chordal/internal/sched"
)

// Job states, in lifecycle order. A job moves queued → running → done,
// failed, or canceled; cache hits are born done.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminalState reports whether s is a final job state.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// StageMillis is one pipeline stage's wall-clock duration in the
// status metrics.
type StageMillis struct {
	// Stage is the pipeline stage name (acquire, relabel, extract,
	// verify).
	Stage string `json:"stage"`
	// Millis is the stage's wall-clock duration in milliseconds.
	Millis float64 `json:"millis"`
}

// Metrics summarizes a completed extraction for GET /v1/jobs/{id}.
type Metrics struct {
	// Vertices and InputEdges describe the acquired input graph.
	Vertices   int   `json:"vertices"`
	InputEdges int64 `json:"inputEdges"`
	// ChordalEdges is |EC|, the extracted chordal edge count;
	// EdgesKeptPct is its share of the input edges.
	ChordalEdges int     `json:"chordalEdges"`
	EdgesKeptPct float64 `json:"edgesKeptPct"`
	// Iterations is the extract loop's iteration count (whole-graph
	// extraction; sharded jobs report per-shard counts instead).
	Iterations int `json:"iterations"`
	// Shards is the shard count of a sharded extraction (0 for
	// whole-graph jobs); ShardIterations has one kernel iteration count
	// per shard.
	Shards          int   `json:"shards,omitempty"`
	ShardIterations []int `json:"shardIterations,omitempty"`
	// BorderTotal counts input edges crossing shards;
	// StitchedBorderEdges the cross-shard bridges admitted by the
	// spanning stitch; BorderAdmitted the border edges admitted by the
	// exact chordality-preserving pass.
	BorderTotal         int `json:"borderTotal,omitempty"`
	StitchedBorderEdges int `json:"stitchedBorderEdges,omitempty"`
	BorderAdmitted      int `json:"borderAdmitted,omitempty"`
	// EdgeCut is the number of input edges crossing the shard
	// partition (equal to BorderTotal, typed for the report) and
	// EdgeCutPct its percentage of the input edges; shard jobs only.
	EdgeCut    int64   `json:"edgeCut,omitempty"`
	EdgeCutPct float64 `json:"edgeCutPct,omitempty"`
	// External carries the out-of-core engine's IO accounting (bytes
	// mapped/read/spilled, peak resident estimate, decode/kernel
	// overlap); nil for in-memory engines.
	External *chordal.ExternalSummary `json:"external,omitempty"`
	// Variant and Schedule are the code path and test-ordering
	// discipline actually used.
	Variant  string `json:"variant"`
	Schedule string `json:"schedule"`
	// Workers is the parallelism granted by the shared worker budget.
	Workers int `json:"workers"`
	// Chordal reports the verify stage's chordality check; nil when
	// verification was disabled.
	Chordal *bool `json:"chordal,omitempty"`
	// MaximalityAudited reports whether the bounded maximality audit
	// ran; ReAddableEdges is the number of violations it found.
	MaximalityAudited bool `json:"maximalityAudited"`
	ReAddableEdges    int  `json:"reAddableEdges"`
	// RepairedEdges and StitchedEdges count post-pass additions.
	RepairedEdges int `json:"repairedEdges"`
	StitchedEdges int `json:"stitchedEdges"`
	// Quality scores the extracted subgraph against the input (edge
	// retention, fill-in, treewidth, chromatic number); nil when no
	// subgraph was extracted or the metrics were skipped.
	Quality *chordal.Quality `json:"quality,omitempty"`
	// Stages holds per-stage wall-clock timings; TotalMillis is their
	// sum.
	Stages      []StageMillis `json:"stages"`
	TotalMillis float64       `json:"totalMillis"`
}

// JobStatus is the JSON view of a job returned by POST /v1/jobs and
// GET /v1/jobs/{id}, and carried by the terminal "done" SSE event.
type JobStatus struct {
	// ID is the server-assigned job identifier.
	ID string `json:"id"`
	// State is one of queued, running, done, failed, canceled.
	State string `json:"state"`
	// Source is the canonical input spec the job runs (uploads appear
	// as upload:<hash>).
	Source string `json:"source"`
	// Cached reports a born-done job registered to represent a cached
	// result whose producing job was garbage collected. A result-cache
	// hit normally returns the producing job itself (same id, Cached
	// false) with HTTP 200 signalling the hit.
	Cached bool `json:"cached,omitempty"`
	// Tenant is the tenant the job was submitted under; omitted for
	// the default tenant, keeping single-tenant responses unchanged.
	Tenant string `json:"tenant,omitempty"`
	// QueuePosition is the job's current 1-based place in its tenant's
	// scheduler queue; present only while the job is queued there (a
	// dispatched job waiting on its worker lease reports queued with
	// no position).
	QueuePosition int `json:"queuePosition,omitempty"`
	// Created, Started and Finished are lifecycle timestamps; Started
	// and Finished are omitted until reached.
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// Metrics summarizes the extraction once the job is done.
	Metrics *Metrics `json:"metrics,omitempty"`
}

// sseEvent is one pre-marshaled server-sent event in a job's log.
type sseEvent struct {
	name string
	data []byte
}

// Job is one submitted extraction: lifecycle state, the append-only
// event log that SSE subscribers replay and follow, and the result.
// All fields behind mu; events are pre-marshaled so subscribers only
// copy bytes.
type Job struct {
	id     string
	spec   jobSpec
	cached bool
	// tenant is the submitting tenant ("" = default) and ticket the
	// job's handle on the weighted-fair scheduler; both are set by
	// Server.submitTenant before the job is published and never
	// change (born-done cache hits leave ticket nil — they were never
	// scheduled).
	tenant string
	ticket *sched.Ticket

	created time.Time

	// ctx governs the job's execution and cancel aborts it; both are
	// set by Server.submit before the job is published (born-done cache
	// hits leave them nil — there is nothing to cancel).
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	state     string
	canceling bool // DELETE arrived; the next error finishes as canceled
	started   time.Time
	finished  time.Time
	err       error
	metrics   *Metrics
	subgraph  *graph.Graph
	events    []sseEvent
	changed   chan struct{} // closed and replaced on every append
}

// newJob creates a queued job for spec.
func newJob(id string, spec jobSpec, now time.Time) *Job {
	j := &Job{
		id:      id,
		spec:    spec,
		created: now,
		state:   StateQueued,
		changed: make(chan struct{}),
	}
	j.appendEvent("state", map[string]string{"state": StateQueued})
	return j
}

// ID returns the server-assigned job identifier.
func (j *Job) ID() string { return j.id }

// appendLocked appends a marshaled event to the log and wakes
// subscribers. Callers hold j.mu.
func (j *Job) appendLocked(name string, data any) {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(`{}`)
	}
	j.events = append(j.events, sseEvent{name, payload})
	close(j.changed)
	j.changed = make(chan struct{})
}

// appendEvent marshals data and appends it to the event log, waking
// subscribers. Callers must not hold j.mu.
func (j *Job) appendEvent(name string, data any) {
	j.mu.Lock()
	j.appendLocked(name, data)
	j.mu.Unlock()
}

// eventsSince returns the events after cursor, whether the job is
// terminal, and a channel closed on the next append — the subscription
// primitive behind the SSE handler.
func (j *Job) eventsSince(cursor int) (evs []sseEvent, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor < len(j.events) {
		evs = j.events[cursor:]
	}
	return evs, terminalState(j.state), j.changed
}

// setRunning transitions the job to running. The state change and its
// event land in one critical section so subscribers never observe one
// without the other.
func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = now
	j.appendLocked("state", map[string]string{"state": StateRunning})
	j.mu.Unlock()
}

// complete finishes the job with its metrics and extracted subgraph,
// appending the terminal "done" event atomically with the state change
// (a subscriber that sees the terminal state is guaranteed the event is
// already in the log).
func (j *Job) complete(now time.Time, m *Metrics, sub *graph.Graph) {
	j.mu.Lock()
	j.state = StateDone
	j.finished = now
	j.metrics = m
	j.subgraph = sub
	j.appendLocked("done", j.statusLocked())
	j.mu.Unlock()
}

// fail finishes the job with an error; event ordering as in complete.
// A job whose cancellation was requested finishes in the terminal
// canceled state instead of failed — the context error it died with is
// the cancel taking effect, not a fault.
func (j *Job) fail(now time.Time, err error) {
	j.mu.Lock()
	if j.canceling {
		j.state = StateCanceled
	} else {
		j.state = StateFailed
	}
	j.finished = now
	j.err = err
	j.appendLocked("done", j.statusLocked())
	j.mu.Unlock()
}

// requestCancel marks the job for cancellation. It returns false when
// the job is already terminal (nothing to cancel); otherwise the
// caller must follow up by firing j.cancel. The job reaches the
// terminal canceled state when its goroutine observes the dead context
// at the next boundary.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if terminalState(j.state) {
		return false
	}
	j.canceling = true
	return true
}

// terminalBefore reports whether the job is terminal and finished
// before t — the GC sweep predicate.
func (j *Job) terminalBefore(t time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return terminalState(j.state) && j.finished.Before(t)
}

// Status snapshots the job as its JSON view. The scheduler queue
// position is read before taking the job lock (the scheduler has its
// own mutex and never calls back into Job, so the order is safe); a
// position observed just before dispatch simply reports the final
// queued instant.
func (j *Job) Status() JobStatus {
	var pos int
	if j.ticket != nil {
		pos = j.ticket.Position()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.statusLocked()
	if st.State == StateQueued {
		st.QueuePosition = pos
	}
	return st
}

// statusLocked builds the JSON view; callers hold j.mu.
func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:      j.id,
		State:   j.state,
		Source:  j.spec.spec.Source,
		Cached:  j.cached,
		Tenant:  j.tenant,
		Created: j.created,
		Metrics: j.metrics,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// result returns the extracted subgraph of a done job.
func (j *Job) result() (*graph.Graph, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.subgraph, j.state == StateDone && j.subgraph != nil
}

// buildMetrics converts a pipeline result into the wire metrics.
func buildMetrics(res *chordal.PipelineResult, workers int, extra []StageMillis) *Metrics {
	m := &Metrics{
		Vertices:   res.InputStats.Vertices,
		InputEdges: res.InputStats.Edges,
		Workers:    workers,
		Stages:     extra,
	}
	if res.Subgraph != nil {
		m.ChordalEdges = int(res.Subgraph.NumEdges())
		if res.InputStats.Edges > 0 {
			m.EdgesKeptPct = 100 * float64(m.ChordalEdges) / float64(res.InputStats.Edges)
		}
	}
	if r := res.Extraction; r != nil {
		m.Iterations = len(r.Iterations)
		m.Variant = r.Variant.String()
		m.Schedule = r.Schedule.String()
		m.RepairedEdges = r.RepairedEdges
		m.StitchedEdges = r.StitchedEdges
	}
	if sh := res.Shard; sh != nil {
		m.Shards = sh.Shards
		m.ShardIterations = sh.PerShardIterations
		m.BorderTotal = sh.BorderTotal
		m.StitchedEdges = sh.StitchedEdges
		m.StitchedBorderEdges = sh.BorderBridges
		m.BorderAdmitted = sh.BorderAdmitted
		m.RepairedEdges = sh.RepairedEdges
		m.EdgeCut = sh.EdgeCut
		m.EdgeCutPct = sh.EdgeCutPct
	}
	m.External = res.External
	if res.Verified {
		ok := res.ChordalOK
		m.Chordal = &ok
		m.MaximalityAudited = res.MaximalityAudited
		m.ReAddableEdges = res.ReAddableEdges
	}
	m.Quality = res.Quality
	for _, st := range res.Timings {
		m.Stages = append(m.Stages, StageMillis{st.Stage, float64(st.Duration.Microseconds()) / 1000})
	}
	for _, st := range m.Stages {
		m.TotalMillis += st.Millis
	}
	return m
}
