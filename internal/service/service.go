// Package service implements the extraction service: a long-running
// HTTP job server over chordal.Pipeline, the serving layer for
// production-scale traffic on top of the paper's algorithm.
//
// # API
//
//	POST   /v1/jobs              submit a job: JSON {source, options} or
//	                             a multipart graph upload (field "graph",
//	                             optional "options" JSON field)
//	GET    /v1/jobs/{id}         status + metrics
//	DELETE /v1/jobs/{id}         cancel a queued or running job; it
//	                             drains at the next iteration boundary
//	                             into the terminal "canceled" state with
//	                             its budget tokens released
//	GET    /v1/jobs/{id}/events  server-sent events: state changes, stage
//	                             starts, per-iteration extraction progress
//	                             (sharded jobs tag events with the shard)
//	GET    /v1/jobs/{id}/result  the chordal subgraph (?format=edges|bin|mtx)
//	POST   /v1/batches           submit many jobs at once: JSON
//	                             {items: [{source, options}, ...]}; each
//	                             item becomes (or joins) a regular job,
//	                             with caching and single-flight dedup
//	GET    /v1/batches/{id}        aggregate per-item status + counts
//	GET    /v1/batches/{id}/events merged SSE over every member job,
//	                             each event wrapped with its batch index
//	GET    /v1/scheduler         weighted-fair scheduler snapshot:
//	                             per-tenant queue depth, running slots,
//	                             served share, shed counts, queue waits
//	GET    /healthz              liveness + job/batch/cache counters
//
// # Architecture
//
// Submitted jobs enter a weighted-fair run queue (internal/sched) with
// Config.MaxConcurrent dispatch slots. Every request is attributed to
// a tenant (the X-Tenant or X-API-Key header; absent means the default
// tenant) with a configurable weight, priority class, running quota,
// token-bucket rate limit, and bounded pending queue. Backlogged
// tenants are served in proportion to their weights (virtual-time fair
// queueing over per-job cost estimates), so one tenant's flood — or
// one 100-item batch — can no longer monopolize the run queue, and a
// light tenant's job dispatches within a bounded wait. Admission
// control sheds instead of queueing without bound: a submission that
// would overflow the tenant's or the global pending bound, or that
// exceeds the tenant's rate limit, receives 429 Too Many Requests with
// a Retry-After hint computed from the observed queue drain rate. The
// default tenant runs at weight 1 with no rate limit and the global
// queue bound, preserving the single-tenant service behavior.
//
// Each dispatched job leases worker tokens
// from one shared parallel.Budget sized to the machine: a job with no
// explicit request takes its fair share (total / MaxConcurrent, with
// MaxConcurrent clamped to the budget), so the extraction kernels of
// simultaneous default-width jobs divide the cores instead of each
// running full width, and never serialize behind one another's leases
// (a job requesting explicit parallelism beyond the free tokens does
// wait for a release). The lease is threaded through every pipeline
// stage — acquire (generation and file decode), relabel, the
// extraction kernel (whole-graph or per-shard), and subgraph
// materialization all run inside the granted width, so concurrent jobs
// never oversubscribe the box. Each job runs the chordal.Pipeline
// under its own context derived from the server's base context:
// shutdown cancels every in-flight extraction at its next iteration
// boundary, and DELETE /v1/jobs/{id} cancels one job the same way,
// releasing its budget tokens as its goroutine drains.
//
// Jobs are identified by the canonical encoding of their
// chordal.Spec (Spec.Canonical): requests decode into a Spec, generator
// sources are normalized (family lowercased, defaults filled), uploads
// are content-addressed, and the engine plus its parameters render in
// fixed field order, so equivalent submissions — different JSON key
// order, whitespace, or spelled-out defaults — share one identity, the
// same one a CLI run or library Spec would compute. Two byte-bounded
// LRU caches exploit that identity: generated input graphs are cached
// by canonical source (the benchmark and bio-suite shapes regenerate
// the same specs constantly), and completed extractions are cached by
// the full canonical spec, so a repeated spec is served instantly with
// Cached: true in its status. A result-cache hit returns the job that
// produced the result (or one persistent born-done job if that one was
// garbage collected) rather than registering a new job per request,
// and identical cacheable specs submitted while the first is still
// running are deduplicated onto that single in-flight execution
// (single-flight), so a stampede of equal requests costs one pipeline
// run and one job id. Terminal jobs are garbage collected
// Config.JobTTL after finishing, keeping the job store bounded.
//
// Every job keeps an append-only event log; the SSE endpoint replays it
// from the start and then follows live appends, so a subscriber that
// connects late still sees the full history through the terminal "done"
// event.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"chordal"
	"chordal/internal/graph"
	"chordal/internal/parallel"
	"chordal/internal/sched"
)

// Config sizes the server. The zero value is ready to use; see each
// field for its default.
type Config struct {
	// MaxConcurrent bounds simultaneously running jobs; <= 0 means 2.
	// Further submissions queue. Clamped to the worker budget —
	// admitting more jobs than there are worker tokens could only
	// serialize the surplus behind earlier leases.
	MaxConcurrent int
	// Workers is the total worker-token budget shared by all running
	// jobs; <= 0 means the machine's effective parallelism.
	Workers int
	// InputCacheBytes bounds the generated-input LRU by the summed CSR
	// byte size of the graphs it holds; 0 means 256 MiB, negative
	// disables input caching. Reported by /healthz alongside current
	// occupancy.
	InputCacheBytes int64
	// ResultCacheBytes bounds the completed-extraction LRU by the
	// summed CSR byte size of the cached subgraphs; 0 means 256 MiB,
	// negative disables result caching. Reported by /healthz alongside
	// current occupancy.
	ResultCacheBytes int64
	// MaxUploadBytes bounds one multipart graph upload; <= 0 means
	// 256 MiB.
	MaxUploadBytes int64
	// AllowPathSources permits jobs whose source is a server-side file
	// path. Off by default: on a network-facing server, path sources
	// let any client probe server files (parse errors echo file
	// contents and parseable graphs are downloadable via /result).
	// Enable only for trusted single-tenant deployments.
	AllowPathSources bool
	// JobTTL is how long a terminal (done, failed, canceled) job stays
	// in the store after finishing before the GC sweep removes it; 0
	// means 15 minutes, negative disables GC. Cached results outlive
	// their job: a later cache hit re-registers one born-done job.
	JobTTL time.Duration
	// Scheduler configures the weighted-fair run queue and admission
	// control: the global pending bound, the default tenant policy
	// template, and per-tenant overrides (see sched.Config). Slots is
	// ignored — MaxConcurrent is the slot count. The zero value keeps
	// the pre-scheduler behavior for single-tenant traffic: FIFO
	// dispatch at weight 1, no rate limits, and a generous (4096)
	// pending bound in place of unbounded queueing.
	Scheduler sched.Config
	// Tenants holds per-tenant scheduling policy by tenant name,
	// merged over (and overriding) Scheduler.Tenants — the
	// -tenant-config file surfaces here.
	Tenants map[string]sched.TenantConfig
}

// cachedResult is one completed extraction in the result LRU. jobID is
// the job whose status a cache hit returns — the producing job, or a
// born-done replacement registered after the producer was garbage
// collected; it is read and written under Server.mu.
type cachedResult struct {
	jobID    string
	metrics  Metrics
	subgraph *graph.Graph
}

// Server is the extraction service. Create with New, mount as an
// http.Handler, and Close on shutdown to cancel in-flight jobs.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	budget *parallel.Budget
	sched  *sched.Scheduler

	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	jobs     map[string]*Job
	seq      int
	batches  map[string]*batchRec
	batchSeq int
	// inflight maps a cacheable job key to its currently executing job,
	// the single-flight table: identical concurrent submissions attach
	// to the entry instead of running the pipeline again.
	inflight map[string]*Job
	// streams holds the live streaming sessions; they ride the same GC
	// sweep as jobs (terminal sessions by age, open ones by idleness).
	streams   map[string]*streamSession
	streamSeq int

	inputs  *lruCache[*graph.Graph]
	results *lruCache[*cachedResult]
}

// New creates a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.InputCacheBytes == 0 {
		cfg.InputCacheBytes = 256 << 20
	}
	if cfg.ResultCacheBytes == 0 {
		cfg.ResultCacheBytes = 256 << 20
	}
	if cfg.MaxUploadBytes <= 0 {
		cfg.MaxUploadBytes = 256 << 20
	}
	if cfg.JobTTL == 0 {
		cfg.JobTTL = 15 * time.Minute
	}
	budget := parallel.NewBudget(cfg.Workers)
	if cfg.MaxConcurrent > budget.Total() {
		cfg.MaxConcurrent = budget.Total()
	}
	schedCfg := cfg.Scheduler
	schedCfg.Slots = cfg.MaxConcurrent
	if len(cfg.Tenants) > 0 {
		merged := make(map[string]sched.TenantConfig, len(schedCfg.Tenants)+len(cfg.Tenants))
		for name, tc := range schedCfg.Tenants {
			merged[name] = tc
		}
		for name, tc := range cfg.Tenants {
			merged[name] = tc
		}
		schedCfg.Tenants = merged
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		budget:   budget,
		sched:    sched.New(schedCfg),
		baseCtx:  ctx,
		stop:     stop,
		jobs:     make(map[string]*Job),
		batches:  make(map[string]*batchRec),
		inflight: make(map[string]*Job),
		streams:  make(map[string]*streamSession),
		inputs: newLRU[*graph.Graph](cfg.InputCacheBytes, func(g *graph.Graph) int64 {
			return g.SizeBytes()
		}),
		results: newLRU[*cachedResult](cfg.ResultCacheBytes, func(r *cachedResult) int64 {
			// The subgraph CSR dominates; metrics and bookkeeping ride
			// along under a small fixed charge.
			cost := int64(4096)
			if r.subgraph != nil {
				cost += r.subgraph.SizeBytes()
			}
			return cost
		}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/batches", s.handleBatchSubmit)
	s.mux.HandleFunc("GET /v1/batches/{id}", s.handleBatchStatus)
	s.mux.HandleFunc("GET /v1/batches/{id}/events", s.handleBatchEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/streams", s.handleStreamOpen)
	s.mux.HandleFunc("POST /v1/streams/{id}/edges", s.handleStreamEdges)
	s.mux.HandleFunc("POST /v1/streams/{id}/close", s.handleStreamClose)
	s.mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamStatus)
	s.mux.HandleFunc("GET /v1/streams/{id}/events", s.handleStreamEvents)
	s.mux.HandleFunc("GET /v1/streams/{id}/result", s.handleStreamResult)
	s.mux.HandleFunc("DELETE /v1/streams/{id}", s.handleStreamDelete)
	s.mux.HandleFunc("GET /v1/scheduler", s.handleScheduler)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.JobTTL > 0 {
		s.wg.Add(1)
		go s.gcLoop()
	}
	return s
}

// gcLoop periodically sweeps terminal jobs older than JobTTL out of
// the store. It exits when the server closes.
func (s *Server) gcLoop() {
	defer s.wg.Done()
	interval := s.cfg.JobTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			s.gcSweep(time.Now())
		}
	}
}

// gcSweep removes every terminal job that finished more than JobTTL
// before now, returning how many were removed. Queued and running jobs
// are never touched; a swept job's cached result (if any) stays in the
// LRU and a later hit re-registers one born-done job.
func (s *Server) gcSweep(now time.Time) int {
	cutoff := now.Add(-s.cfg.JobTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for id, j := range s.jobs {
		if j.terminalBefore(cutoff) {
			delete(s.jobs, id)
			removed++
		}
	}
	// A batch follows its members out: once every member job is both
	// terminal and older than the TTL, the record (which pins the job
	// objects in memory) goes too. The batch's own age gates the sweep:
	// a fresh batch whose items all hit the result cache is made of
	// jobs that finished before it was created, and must not vanish
	// moments after its 202.
	for id, b := range s.batches {
		if b.created.Before(cutoff) && b.terminalBefore(cutoff) {
			delete(s.batches, id)
		}
	}
	// Streaming sessions: terminal ones age out like jobs, and an open
	// session with no delta, close, or status activity for a full TTL is
	// abandoned — sweeping it drops the maintained subgraph it pins.
	for id, ss := range s.streams {
		if ss.created.Before(cutoff) && ss.expired(cutoff) {
			delete(s.streams, id)
		}
	}
	return removed
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close rejects further submissions, cancels every queued and running
// job, and waits for their goroutines to drain. Safe to call more than
// once.
func (s *Server) Close() {
	// The closed flag and submit's wg.Add share one critical section,
	// so no Add can race the Wait below (sync.WaitGroup forbids Add
	// concurrent with Wait on a zero counter).
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	// Fail every scheduler-queued ticket too: job contexts are already
	// canceled above, so this is belt and braces for tickets whose
	// goroutines have not yet observed the dead context.
	s.sched.Close()
	s.wg.Wait()
}

// errShuttingDown rejects submissions that race server shutdown.
var errShuttingDown = errors.New("service: server is shutting down")

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// handleSubmit accepts a job: a JSON JobRequest, or a multipart form
// with the graph bytes in field "graph" (format chosen by filename
// extension, as in chordal.LoadGraph) and optional JobOptions JSON in
// field "options".
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobSpec
	var upload *graph.Graph

	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "multipart/form-data") {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
		if err := r.ParseMultipartForm(32 << 20); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad multipart form: %w", err))
			return
		}
		file, hdr, err := r.FormFile("graph")
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf(`service: multipart submission needs a "graph" file field`))
			return
		}
		defer file.Close()
		var opts JobOptions
		if o := r.FormValue("options"); o != "" {
			if err := json.Unmarshal([]byte(o), &opts); err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad options field: %w", err))
				return
			}
		}
		format := uploadFormat(hdr.Filename)
		// Reject bad options before paying a hash pass over a
		// potentially multi-hundred-MiB upload: normalize against a
		// placeholder digest, which shares every validation rule with
		// the real spec built below.
		if _, err := opts.Spec(chordal.UploadSource(format, [sha256.Size]byte{})); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// Hash by streaming over the (memory- or disk-spooled)
		// multipart file rather than buffering a second in-heap copy,
		// then rewind to parse — multipart form files are seekable.
		h := sha256.New()
		if _, err := io.Copy(h, file); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		var digest [sha256.Size]byte
		copy(digest[:], h.Sum(nil))
		source := chordal.UploadSource(format, digest)
		cs, err := opts.Spec(source)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		src, err := chordal.ParseSource(cs.Source)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if spec, err = finishJobSpec(cs, src); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		// Probe the result cache before parsing: the job key needs only
		// the format, content hash and options, so a re-upload of an
		// already-extracted graph skips the (potentially large) parse.
		if job, ok := s.tryCached(spec); ok {
			w.Header().Set("Location", "/v1/jobs/"+job.ID())
			writeJSON(w, http.StatusOK, job.Status())
			return
		}
		if _, err := file.Seek(0, io.SeekStart); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		g, err := parseUpload(format, file)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		upload = g
	} else {
		var req JobRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
			return
		}
		var err error
		if spec, err = newJobSpec(req, s.cfg.AllowPathSources); err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
	}

	job, hit, err := s.submitTenant(spec, upload, tenantFromRequest(r))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	code := http.StatusAccepted
	if hit {
		code = http.StatusOK
	}
	writeJSON(w, code, job.Status())
}

// submit is submitTenant for the default tenant.
func (s *Server) submit(spec jobSpec, upload *graph.Graph) (*Job, bool, error) {
	return s.submitTenant(spec, upload, "")
}

// submitTenant registers a job for spec on behalf of a tenant, serving
// it from the result cache when possible and deduplicating onto an
// identical in-flight job otherwise; only a genuinely new spec is
// enqueued with the scheduler. Caches and single-flight are shared
// across tenants — the canonical spec is the identity, so tenant B's
// resubmission of tenant A's spec is a hit. The returned bool reports
// a cache hit; the error is errShuttingDown when the server is closing
// or a *sched.ShedError when admission control rejects the submission.
func (s *Server) submitTenant(spec jobSpec, upload *graph.Graph, tenant string) (*Job, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errShuttingDown
	}
	key := spec.Key()
	if spec.cacheable() {
		// Single-flight: an identical cacheable spec already executing
		// absorbs this submission — the caller shares its job id,
		// events and result instead of stampeding the pipeline.
		//
		// The inflight check MUST precede the cache probe: the runner
		// publishes to the result cache first and deletes its inflight
		// entry second (under this same lock), so a submission that
		// misses the inflight map is guaranteed to see the result in
		// the cache — missing both, and re-running the pipeline, is
		// impossible.
		if j, ok := s.inflight[key]; ok {
			return j, false, nil
		}
	}
	if job, ok := s.tryCachedLocked(spec); ok {
		return job, true, nil
	}
	// Admission control happens after the dedup probes — cache hits and
	// absorbed duplicates cost no queue slot, so they are never shed.
	ticket, err := s.sched.Enqueue(tenant, spec.cost())
	if err != nil {
		return nil, false, err
	}
	job := newJob(s.nextIDLocked(), spec, time.Now())
	job.tenant = tenant
	job.ticket = ticket
	job.ctx, job.cancel = context.WithCancel(s.baseCtx)
	job.appendEvent("queued", map[string]any{
		"tenant":   displayTenant(tenant),
		"position": ticket.Position(),
		"cost":     spec.cost(),
	})
	s.jobs[job.ID()] = job
	if spec.cacheable() {
		s.inflight[key] = job
	}
	s.wg.Add(1)
	go s.run(job, upload)
	return job, false, nil
}

// nextIDLocked allocates a job identifier; callers hold s.mu.
func (s *Server) nextIDLocked() string {
	s.seq++
	return fmt.Sprintf("j%06d", s.seq)
}

// tryCached serves spec from the result cache when possible. A hit
// returns the job that produced the cached result while it is still in
// the store; once that job has been garbage collected, one born-done
// job is registered and pinned to the cache entry, so repeated hits
// reuse a single job id instead of minting one per request.
func (s *Server) tryCached(spec jobSpec) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tryCachedLocked(spec)
}

// tryCachedLocked is tryCached with s.mu held (the LRU has its own
// lock and never takes s.mu, so probing it here cannot deadlock).
func (s *Server) tryCachedLocked(spec jobSpec) (*Job, bool) {
	if !spec.cacheable() {
		return nil, false
	}
	hit, ok := s.results.Get(spec.Key())
	if !ok {
		return nil, false
	}
	now := time.Now()
	if j, ok := s.jobs[hit.jobID]; ok {
		return j, true
	}
	job := newJob(s.nextIDLocked(), spec, now)
	job.cached = true
	// A born-done job never ran, but clients compute durations from
	// started/finished; stamp both with the submission instant (the
	// job is not yet published, so direct writes are safe).
	job.started = now
	m := hit.metrics
	job.complete(now, &m, hit.subgraph)
	hit.jobID = job.ID()
	s.jobs[job.ID()] = job
	return job, true
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// uploadFormat resolves an uploaded filename to its decode format,
// following the same extension rules as chordal.LoadGraph for paths.
func uploadFormat(filename string) string {
	switch {
	case strings.HasSuffix(filename, ".bin"):
		return "bin"
	case strings.HasSuffix(filename, ".mtx"):
		return "mtx"
	default:
		return "edges"
	}
}

// parseUpload decodes an uploaded graph stream in the given format.
func parseUpload(format string, r io.Reader) (*graph.Graph, error) {
	switch format {
	case "bin":
		return graph.ReadBinary(r)
	case "mtx":
		return graph.ReadMatrixMarket(r)
	default:
		return graph.ReadEdgeList(r, 0)
	}
}

// run executes one job: wait for the weighted-fair scheduler to
// dispatch its ticket, lease workers from the shared budget, resolve
// the input (upload, input cache, generator, or file), run the
// pipeline with progress events, and publish the result to the caches.
// It runs under the job's own context, so both server shutdown and
// DELETE /v1/jobs/{id} drain it at the next boundary — a still-queued
// ticket is removed from its tenant's queue by Wait itself, and the
// run slot, the budget lease, and the single-flight entry are released
// on every exit path.
func (s *Server) run(job *Job, upload *graph.Graph) {
	defer s.wg.Done()
	defer job.cancel()
	// The single-flight entry must outlive the result-cache publish
	// (which happens in the body, before defers run): a duplicate
	// submission always finds the key in at least one of the two.
	defer func() {
		s.mu.Lock()
		if s.inflight[job.spec.Key()] == job {
			delete(s.inflight, job.spec.Key())
		}
		s.mu.Unlock()
	}()
	if err := job.ticket.Wait(job.ctx); err != nil {
		// Canceled (or the scheduler closed) while queued: Wait already
		// released the ticket, so no slot or queue entry leaks.
		job.fail(time.Now(), err)
		return
	}
	defer job.ticket.Done()
	job.appendEvent("admitted", map[string]any{
		"tenant":     displayTenant(job.tenant),
		"waitMillis": float64(job.ticket.QueueWait().Microseconds()) / 1000,
	})

	// A job with no explicit worker request leases its fair share of
	// the pool (total / MaxConcurrent) — even on an otherwise idle
	// server. Leasing more opportunistically would serialize the next
	// arrival behind this job's entire runtime (leases cannot shrink
	// once the kernel starts), so the policy trades some idle-server
	// width for the guarantee that MaxConcurrent default jobs always
	// run side by side; single-tenant callers get full width with an
	// explicit workers request, granted up to the currently free
	// tokens (at least one — an empty pool waits for the first
	// release). The lease precedes the running transition so a
	// token-starved job still reports queued.
	want := job.spec.spec.Workers
	if want <= 0 {
		want = max(1, s.budget.Total()/s.cfg.MaxConcurrent)
	}
	granted, err := s.budget.LeaseContext(job.ctx, want)
	if err != nil {
		// Canceled while waiting for tokens: nothing was leased, so
		// nothing leaks.
		job.fail(time.Now(), err)
		return
	}
	defer s.budget.Release(granted)
	job.setRunning(time.Now())

	spec := job.spec.spec
	spec.Workers = granted
	// The unified event stream serializes straight onto the SSE wire:
	// the event Type is the SSE event name and the marshaled Event the
	// payload. Shard iterations report concurrently; appendEvent
	// serializes under the job lock, so the log stays consistent.
	observe := func(ev chordal.Event) {
		job.appendEvent(string(ev.Type), ev)
	}
	runner := chordal.Runner{Observer: observe}

	// Resolve the input ahead of the run when it can come from the
	// input cache (uploads were parsed at submission; generated sources
	// are deterministic in their canonical spec). File-path sources load
	// inside the runner, where the acquire stage is timed as usual.
	var acquire []StageMillis
	switch {
	case upload != nil:
		runner.Input = upload
	case job.spec.generated:
		if g, ok := s.inputs.Get(spec.Source); ok {
			runner.Input = g
			observe(chordal.Event{Type: chordal.EventStageBegin, Stage: "acquire", Cached: true})
		} else {
			if err := job.ctx.Err(); err != nil {
				job.fail(time.Now(), err)
				return
			}
			src, err := chordal.ParseSource(spec.Source)
			if err != nil {
				job.fail(time.Now(), err)
				return
			}
			observe(chordal.Event{Type: chordal.EventStageBegin, Stage: "acquire"})
			t0 := time.Now()
			// Generation honors the job's lease; the sampled graph is
			// identical at any width, so caching it by canonical spec
			// stays sound.
			g, err := src.LoadWorkers(granted)
			if err != nil {
				job.fail(time.Now(), err)
				return
			}
			acquire = append(acquire, StageMillis{"acquire", float64(time.Since(t0).Microseconds()) / 1000})
			s.inputs.Add(spec.Source, g)
			runner.Input = g
		}
	}

	res, err := runner.Run(job.ctx, spec)
	if err != nil {
		job.fail(time.Now(), err)
		return
	}
	m := buildMetrics(res, granted, acquire)
	job.complete(time.Now(), m, res.Subgraph)
	if job.spec.cacheable() {
		s.results.Add(job.spec.Key(), &cachedResult{jobID: job.ID(), metrics: *m, subgraph: res.Subgraph})
	}
}

// handleCancel serves DELETE /v1/jobs/{id}: a queued or running job is
// marked for cancellation and its context fired; the job goroutine
// drains at the next iteration boundary into the terminal canceled
// state, releasing its scheduler ticket (queued or dispatched) and
// budget tokens. Cancelling an
// already terminal job is a 409.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	if !job.requestCancel() {
		httpError(w, http.StatusConflict,
			fmt.Errorf("service: job %s is already %s", job.ID(), job.Status().State))
		return
	}
	job.cancel()
	writeJSON(w, http.StatusAccepted, job.Status())
}

// handleStatus serves GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleEvents serves GET /v1/jobs/{id}/events as a server-sent event
// stream: the job's full event log is replayed, then followed live
// until the terminal "done" event or client disconnect.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("service: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	cursor := 0
	for {
		evs, terminal, changed := job.eventsSince(cursor)
		for _, e := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.name, e.data)
		}
		cursor += len(evs)
		flusher.Flush()
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult serves GET /v1/jobs/{id}/result: the extracted chordal
// subgraph as a text edge list (format=edges, the default), binary CSR
// (format=bin), or Matrix Market (format=mtx).
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookup(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such job"))
		return
	}
	sub, done := job.result()
	if !done {
		httpError(w, http.StatusConflict,
			fmt.Errorf("service: job %s is %s, result not available", job.ID(), job.Status().State))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "edges"
	}
	var err error
	switch format {
	case "edges":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.txt", job.ID()))
		err = graph.WriteEdgeList(w, sub)
	case "bin":
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.bin", job.ID()))
		err = graph.WriteBinary(w, sub)
	case "mtx":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%s.mtx", job.ID()))
		err = graph.WriteMatrixMarket(w, sub)
	default:
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: unknown format %q (want edges|bin|mtx)", format))
		return
	}
	if err != nil {
		// Headers are already sent; the broken stream is the signal.
		return
	}
}

// handleHealthz serves GET /healthz with liveness and occupancy
// counters.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	total := len(s.jobs)
	batches := len(s.batches)
	inflight := len(s.inflight)
	streams := len(s.streams)
	counts := map[string]int{}
	for _, j := range s.jobs {
		counts[j.Status().State]++
	}
	s.mu.Unlock()
	sst := s.sched.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":                 "ok",
		"jobs":                   total,
		"queued":                 counts[StateQueued],
		"running":                counts[StateRunning],
		"done":                   counts[StateDone],
		"failed":                 counts[StateFailed],
		"canceled":               counts[StateCanceled],
		"inflight":               inflight,
		"batches":                batches,
		"streams":                streams,
		"workers":                s.budget.Total(),
		"budgetAvailable":        s.budget.Available(),
		"budgetWaiters":          s.budget.Waiters(),
		"maxConcurrent":          s.cfg.MaxConcurrent,
		"schedQueued":            sst.Queued,
		"schedRunning":           sst.Running,
		"schedShed":              sst.Shed,
		"schedMaxQueue":          sst.MaxQueue,
		"schedDrainPerSec":       sst.DrainPerSec,
		"schedTenants":           len(sst.Tenants),
		"inputCache":             s.inputs.Len(),
		"inputCacheBytes":        s.inputs.Bytes(),
		"inputCacheBudgetBytes":  s.cfg.InputCacheBytes,
		"resultCache":            s.results.Len(),
		"resultCacheBytes":       s.results.Bytes(),
		"resultCacheBudgetBytes": s.cfg.ResultCacheBytes,
	})
}
