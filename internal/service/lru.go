package service

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded least-recently-used cache bounded by a
// byte budget rather than an entry count: every entry is charged a cost
// (the CSR byte size of the graph it holds) and the least recently used
// entries are evicted until the sum fits the budget. The service keeps
// two: generated inputs keyed by canonical Source spec, and completed
// extractions keyed by the spec's canonical encoding. Byte bounding
// means one scale-20 R-MAT cannot silently pin as much memory as dozens
// of bio-suite graphs the way an entry cap allowed.
type lruCache[V any] struct {
	mu       sync.Mutex
	maxBytes int64
	cost     func(V) int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *lruEntry[V]
	items    map[string]*list.Element
}

// lruEntry is one key/value pair in the recency list, with the cost it
// was charged at insertion.
type lruEntry[V any] struct {
	key  string
	val  V
	cost int64
}

// newLRU creates a cache holding at most maxBytes of summed entry cost;
// maxBytes <= 0 disables caching (every Get misses, Add is a no-op).
// cost prices one value; an entry whose cost alone exceeds the budget
// is never retained.
func newLRU[V any](maxBytes int64, cost func(V) int64) *lruCache[V] {
	return &lruCache[V]{
		maxBytes: maxBytes,
		cost:     cost,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes key, then evicts least recently used
// entries until the byte budget holds. An insertion larger than the
// whole budget evicts itself — oversized graphs pass through uncached.
func (c *lruCache[V]) Add(key string, val V) {
	if c.maxBytes <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	charged := c.cost(val)
	if charged > c.maxBytes {
		// Oversized values pass through uncached; inserting one first
		// would flush every fitting entry before evicting itself. A
		// refresh to an oversized value drops the stale entry instead.
		if el, ok := c.items[key]; ok {
			e := el.Value.(*lruEntry[V])
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= e.cost
		}
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*lruEntry[V])
		c.bytes += charged - e.cost
		e.val, e.cost = val, charged
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry[V]{key, val, charged})
		c.bytes += charged
	}
	for c.bytes > c.maxBytes && c.ll.Len() > 0 {
		oldest := c.ll.Back()
		e := oldest.Value.(*lruEntry[V])
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes -= e.cost
	}
}

// Len returns the current number of cached entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the summed cost of the cached entries.
func (c *lruCache[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
