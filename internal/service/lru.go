package service

import (
	"container/list"
	"sync"
)

// lruCache is a mutex-guarded least-recently-used cache with a fixed
// entry capacity. The service keeps two: generated inputs keyed by
// canonical Source spec, and completed extractions keyed by the full
// job key (source + option fingerprint). Entry-count capacity is a
// deliberate simplification — graphs vary in size, but the operator
// sizes the caches for the expected working set (the benchmark and
// bio-suite shapes reuse a handful of specs heavily).
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used; values are *lruEntry[V]
	items map[string]*list.Element
}

// lruEntry is one key/value pair in the recency list.
type lruEntry[V any] struct {
	key string
	val V
}

// newLRU creates a cache holding at most capacity entries; capacity <=
// 0 disables caching (every Get misses, Add is a no-op).
func newLRU[V any](capacity int) *lruCache[V] {
	return &lruCache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *lruCache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache[V]) Add(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key, val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
	}
}

// Len returns the current number of cached entries.
func (c *lruCache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
