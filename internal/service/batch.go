package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// This file implements the batch surface: POST /v1/batches fans a list
// of job requests out to the ordinary job store — every item becomes
// (or joins) a regular job, so the result cache, single-flight dedup,
// worker-budget leases and per-job cancel all apply unchanged — and the
// batch endpoints aggregate over the member jobs: GET /v1/batches/{id}
// snapshots every item's status, and /v1/batches/{id}/events streams
// the members' SSE logs merged into one connection, each event wrapped
// with its batch index and job id.

// maxBatchItems bounds one batch submission; a larger suite should be
// split, keeping a single request from monopolizing the job queue.
const maxBatchItems = 1024

// BatchRequest is the JSON body of POST /v1/batches: the items are
// ordinary job requests, submitted in order.
type BatchRequest struct {
	// Items are the batch's job requests. Items with identical
	// canonical specs share one job (and one execution) via the same
	// dedup every individual submission gets.
	Items []JobRequest `json:"items"`
}

// BatchItemStatus is one member of a batch status: the item's index in
// the submitted list plus the flattened status of its job.
type BatchItemStatus struct {
	// Index is the item's position in the submitted batch.
	Index int `json:"index"`
	// JobStatus is the member job's current status. Deduplicated items
	// repeat the shared job's status under their own index.
	JobStatus
}

// BatchStatus is the JSON view of a batch returned by POST /v1/batches
// and GET /v1/batches/{id}, and carried by the terminal "batchDone" SSE
// event.
type BatchStatus struct {
	// ID is the server-assigned batch identifier.
	ID string `json:"id"`
	// Created is the submission timestamp.
	Created time.Time `json:"created"`
	// Done reports every member job terminal.
	Done bool `json:"done"`
	// Counts tallies member jobs by state (queued, running, done,
	// failed, canceled).
	Counts map[string]int `json:"counts"`
	// Items holds per-member statuses in submission order.
	Items []BatchItemStatus `json:"items"`
}

// batchRec is the server-side record of a batch: the member jobs in
// submission order. It holds *Job pointers directly, so statuses stay
// readable even after the job GC sweeps a member out of the store.
type batchRec struct {
	id      string
	created time.Time
	jobs    []*Job
}

// status snapshots the batch's aggregate view.
func (b *batchRec) status() BatchStatus {
	st := BatchStatus{
		ID:      b.id,
		Created: b.created,
		Done:    true,
		Counts:  map[string]int{},
	}
	for i, j := range b.jobs {
		js := j.Status()
		st.Counts[js.State]++
		if !terminalState(js.State) {
			st.Done = false
		}
		st.Items = append(st.Items, BatchItemStatus{Index: i, JobStatus: js})
	}
	return st
}

// terminalBefore reports whether every member job is terminal and
// finished before t — the batch GC predicate.
func (b *batchRec) terminalBefore(t time.Time) bool {
	for _, j := range b.jobs {
		if !j.terminalBefore(t) {
			return false
		}
	}
	return true
}

// handleBatchSubmit serves POST /v1/batches: every item is validated
// first (one bad item rejects the whole batch before any job runs),
// then fanned out through the ordinary submission path — cache hits and
// in-flight duplicates attach to existing jobs; only genuinely new
// specs queue executions. Admission control applies to the batch as a
// unit: a conservative capacity pre-check (assuming every item is a new
// job) sheds the whole batch with 429 before any member submits, so a
// partially-admitted batch can only arise from losing an admission race
// mid-fan-out — that, too, sheds the request with 429, and the members
// already admitted run (or dedup) normally.
func (s *Server) handleBatchSubmit(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("service: bad batch body: %w", err))
		return
	}
	if len(req.Items) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("service: batch needs at least one item"))
		return
	}
	if len(req.Items) > maxBatchItems {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("service: batch of %d items exceeds the %d-item limit; split it", len(req.Items), maxBatchItems))
		return
	}
	specs := make([]jobSpec, len(req.Items))
	for i, item := range req.Items {
		spec, err := newJobSpec(item, s.cfg.AllowPathSources)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("service: batch item %d: %w", i, err))
			return
		}
		specs[i] = spec
	}

	tenant := tenantFromRequest(r)
	if err := s.sched.CheckCapacity(tenant, len(specs)); err != nil {
		writeSubmitError(w, err)
		return
	}

	rec := &batchRec{created: time.Now()}
	for _, spec := range specs {
		job, _, err := s.submitTenant(spec, nil, tenant)
		if err != nil {
			// A shed here means another tenant's submissions raced past
			// the pre-check, or shutdown raced the fan-out; jobs already
			// submitted run (or are canceled by Close) like any others.
			writeSubmitError(w, err)
			return
		}
		rec.jobs = append(rec.jobs, job)
	}

	s.mu.Lock()
	s.batchSeq++
	rec.id = fmt.Sprintf("b%06d", s.batchSeq)
	s.batches[rec.id] = rec
	s.mu.Unlock()

	w.Header().Set("Location", "/v1/batches/"+rec.id)
	writeJSON(w, http.StatusAccepted, rec.status())
}

// lookupBatch finds a batch by id.
func (s *Server) lookupBatch(id string) (*batchRec, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// handleBatchStatus serves GET /v1/batches/{id}.
func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookupBatch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such batch"))
		return
	}
	writeJSON(w, http.StatusOK, rec.status())
}

// batchFrame is one merged SSE event ready to write: the member job's
// event name, with its payload wrapped in {batch, job, data}.
type batchFrame struct {
	name string
	data string
}

// handleBatchEvents serves GET /v1/batches/{id}/events: the member
// jobs' SSE logs merged into one stream. Each member event keeps its
// original event name; the data payload is wrapped as
// {"batch":index,"job":"id","data":<original payload>} so a consumer
// can demultiplex. The stream ends with one "batchDone" event carrying
// the final BatchStatus once every member is terminal.
func (s *Server) handleBatchEvents(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.lookupBatch(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("service: no such batch"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("service: response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	// One forwarder per member replays and follows that job's log; the
	// single writer loop serializes frames onto the wire. Forwarders
	// stop at their job's terminal event or on client disconnect.
	ctx := r.Context()
	frames := make(chan batchFrame, 64)
	var wg sync.WaitGroup
	for i, job := range rec.jobs {
		wg.Add(1)
		go func(index int, job *Job) {
			defer wg.Done()
			cursor := 0
			for {
				evs, terminal, changed := job.eventsSince(cursor)
				for _, e := range evs {
					frame := batchFrame{
						name: e.name,
						data: fmt.Sprintf(`{"batch":%d,"job":%q,"data":%s}`, index, job.ID(), e.data),
					}
					select {
					case frames <- frame:
					case <-ctx.Done():
						return
					}
				}
				cursor += len(evs)
				if terminal {
					return
				}
				select {
				case <-changed:
				case <-ctx.Done():
					return
				}
			}
		}(i, job)
	}
	go func() {
		wg.Wait()
		close(frames)
	}()
	for f := range frames {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.name, f.data)
		flusher.Flush()
	}
	if ctx.Err() == nil {
		payload, err := json.Marshal(rec.status())
		if err == nil {
			fmt.Fprintf(w, "event: batchDone\ndata: %s\n\n", payload)
			flusher.Flush()
		}
	}
}
