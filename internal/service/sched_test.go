package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"

	"chordal/internal/sched"
)

// This file pins the multi-tenant scheduling and admission-control
// surface end to end: load shedding with 429 + Retry-After on a
// saturated queue, cross-tenant cache/single-flight dedup surviving
// saturation, lifecycle of scheduler-queued jobs (cancel, Close, GC),
// and the tenant labels on statuses and events.

// postJobTenant posts a JobRequest under a tenant and returns the raw
// response (callers close the body); raw because shed responses carry
// an error payload and a Retry-After header, not a JobStatus.
func postJobTenant(t *testing.T, base, tenant string, req JobRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hr.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatalf("POST /v1/jobs (tenant %q): %v", tenant, err)
	}
	return resp
}

// submitTenantJSON is postJobTenant + status decode for responses that
// are expected to carry a JobStatus.
func submitTenantJSON(t *testing.T, base, tenant string, req JobRequest) (JobStatus, int) {
	t.Helper()
	resp := postJobTenant(t, base, tenant, req)
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return st, resp.StatusCode
}

// schedulerStats fetches GET /v1/scheduler.
func schedulerStats(t *testing.T, base string) sched.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/scheduler")
	if err != nil {
		t.Fatalf("GET /v1/scheduler: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/scheduler: status %d", resp.StatusCode)
	}
	var st sched.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode scheduler stats: %v", err)
	}
	return st
}

// TestServiceLoadShed429 saturates a 1-slot, 1-deep-queue service and
// pins the admission-control contract end to end: the overflow
// submission sheds with 429 and a sane Retry-After; cache hits and
// in-flight duplicates — including from other tenants — are never
// shed; and after the queue drains, the shed spec resubmits
// successfully.
func TestServiceLoadShed429(t *testing.T) {
	svc, ts := startServer(t, Config{
		MaxConcurrent: 1,
		Workers:       1,
		Scheduler:     sched.Config{MaxQueue: 1},
	})
	hold := svc.budget.Lease(0) // park the dispatched job in its budget wait

	// Job 1 takes the single run slot (blocked in its lease), job 2
	// fills the 1-deep pending queue.
	st1, code := submitTenantJSON(t, ts.URL, "alice", JobRequest{Source: "gnm:900:2700"})
	if code != http.StatusAccepted {
		t.Fatalf("job 1: code %d, want 202", code)
	}
	if st1.Tenant != "alice" {
		t.Fatalf("job 1 tenant %q, want alice", st1.Tenant)
	}
	st2, code := submitTenantJSON(t, ts.URL, "bob", JobRequest{Source: "gnm:901:2703"})
	if code != http.StatusAccepted {
		t.Fatalf("job 2: code %d, want 202", code)
	}
	if st2.State != StateQueued || st2.QueuePosition != 1 {
		t.Fatalf("job 2 = %+v, want queued at position 1", st2)
	}

	// The queue is full: a third distinct spec sheds with 429 and a
	// Retry-After header inside the clamp range.
	resp := postJobTenant(t, ts.URL, "bob", JobRequest{Source: "gnm:902:2706"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: code %d, want 429", resp.StatusCode)
	}
	retry, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	resp.Body.Close()
	if err != nil || retry < 1 || retry > 300 {
		t.Fatalf("Retry-After = %q, want an integer in [1, 300]", resp.Header.Get("Retry-After"))
	}

	// Saturation must not shed dedup: the same specs resubmitted — by
	// other tenants — attach to the in-flight jobs instead of 429ing.
	dup1, code := submitTenantJSON(t, ts.URL, "carol", JobRequest{Source: "gnm:900:2700"})
	if code != http.StatusAccepted || dup1.ID != st1.ID {
		t.Fatalf("cross-tenant duplicate of running job: code %d id %s, want 202 on %s", code, dup1.ID, st1.ID)
	}
	dup2, code := submitTenantJSON(t, ts.URL, "", JobRequest{Source: "gnm:901:2703"})
	if code != http.StatusAccepted || dup2.ID != st2.ID {
		t.Fatalf("duplicate of queued job: code %d id %s, want 202 on %s", code, dup2.ID, st2.ID)
	}

	if stats := schedulerStats(t, ts.URL); stats.Shed < 1 || stats.Queued != 1 || stats.Running != 1 {
		t.Fatalf("scheduler stats during saturation = %+v, want shed>=1 queued=1 running=1", stats)
	}

	// Drain: both jobs complete, the shed spec now submits fine, and a
	// cross-tenant resubmission of job 1 is a plain cache hit.
	svc.budget.Release(hold)
	counts, done := followEvents(t, ts.URL, st1.ID)
	if done.State != StateDone {
		t.Fatalf("job 1 finished %q (%s)", done.State, done.Error)
	}
	if counts["queued"] != 1 || counts["admitted"] != 1 {
		t.Fatalf("job 1 admission events = %v, want one queued and one admitted", counts)
	}
	if _, done := followEvents(t, ts.URL, st2.ID); done.State != StateDone {
		t.Fatalf("job 2 finished %q (%s)", done.State, done.Error)
	}
	st3, code := submitTenantJSON(t, ts.URL, "bob", JobRequest{Source: "gnm:902:2706"})
	if code != http.StatusAccepted {
		t.Fatalf("post-drain retry of shed spec: code %d, want 202", code)
	}
	if _, done := followEvents(t, ts.URL, st3.ID); done.State != StateDone {
		t.Fatalf("retried job finished %q (%s)", done.State, done.Error)
	}
	hit, code := submitTenantJSON(t, ts.URL, "dave", JobRequest{Source: "gnm:900:2700"})
	if code != http.StatusOK || hit.ID != st1.ID {
		t.Fatalf("cross-tenant cache hit: code %d id %s, want 200 on %s", code, hit.ID, st1.ID)
	}
}

// TestTenantRateLimit429 pins the token-bucket admission path over
// HTTP: a burst-1 tenant's second immediate submission sheds with 429
// while other tenants are unaffected, and stream opens draw from the
// same bucket.
func TestTenantRateLimit429(t *testing.T) {
	_, ts := startServer(t, Config{
		Tenants: map[string]sched.TenantConfig{
			"limited": {RatePerSec: 0.001, Burst: 1},
		},
	})

	if _, code := submitTenantJSON(t, ts.URL, "limited", JobRequest{Source: "gnm:300:900"}); code != http.StatusAccepted {
		t.Fatalf("first limited submission: code %d, want 202", code)
	}
	resp := postJobTenant(t, ts.URL, "limited", JobRequest{Source: "gnm:301:903"})
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("second limited submission: code %d Retry-After %q, want 429 with header",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	// The bucket is per tenant: an unlimited tenant submits freely.
	if _, code := submitTenantJSON(t, ts.URL, "free", JobRequest{Source: "gnm:302:906"}); code != http.StatusAccepted {
		t.Fatalf("unlimited tenant: code %d, want 202", code)
	}

	// Stream opens share the tenant's bucket, so the drained bucket
	// sheds them too.
	body := bytes.NewReader([]byte(`{"vertices":16}`))
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/streams", body)
	hr.Header.Set("X-Tenant", "limited")
	sresp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("stream open on drained bucket: code %d, want 429", sresp.StatusCode)
	}
}

// TestCancelSchedulerQueuedJob pins DELETE on a job still waiting in
// the scheduler's pending queue (as opposed to the budget-lease wait
// the pre-scheduler cancel test covers): the job must reach canceled,
// leave the queue immediately, and release nothing.
func TestCancelSchedulerQueuedJob(t *testing.T) {
	svc, ts := startServer(t, Config{MaxConcurrent: 1, Workers: 2})
	hold := svc.budget.Lease(0)

	st1, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:1100:3300"})
	st2, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:1101:3303"})
	if st2.State != StateQueued || st2.QueuePosition != 1 {
		t.Fatalf("job 2 = %+v, want scheduler-queued at position 1", st2)
	}

	if _, code := doDelete(t, ts.URL, st2.ID); code != http.StatusAccepted {
		t.Fatalf("DELETE queued job: code %d, want 202", code)
	}
	if _, done := followEvents(t, ts.URL, st2.ID); done.State != StateCanceled {
		t.Fatalf("canceled job terminal state %q", done.State)
	}
	// The ticket left the pending queue at cancel time, not at some
	// later dispatch: the scheduler reports an empty queue while job 1
	// still holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := svc.sched.Stats()
		if stats.Queued == 0 && stats.Running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scheduler did not release the canceled ticket: %+v", stats)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Job 1 is unaffected: it drains normally and frees its slot.
	svc.budget.Release(hold)
	if _, done := followEvents(t, ts.URL, st1.ID); done.State != StateDone {
		t.Fatalf("job 1 finished %q (%s)", done.State, done.Error)
	}
	if stats := svc.sched.Stats(); stats.Running != 0 || stats.Queued != 0 {
		t.Fatalf("post-drain scheduler occupancy = %+v, want empty", stats)
	}
	if avail := svc.budget.Available(); avail != svc.budget.Total() {
		t.Fatalf("budget %d/%d after drain: canceled job leaked tokens", avail, svc.budget.Total())
	}
}

// TestCloseWithQueuedTenantsNoLeak extends the shutdown leak contract
// to non-empty per-tenant scheduler queues: Close with one dispatched
// job parked in its budget wait and further jobs pending under several
// tenants must drive everything terminal and return the process to its
// pre-server goroutine count with the budget intact.
func TestCloseWithQueuedTenantsNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	svc := New(Config{MaxConcurrent: 1, Workers: 1, JobTTL: time.Hour})
	hold := svc.budget.Lease(0)
	var jobs []*Job
	for i, tenant := range []string{"a", "b", ""} {
		spec, err := newJobSpec(JobRequest{Source: "gnm:1500:4500:" + strconv.Itoa(i)}, false)
		if err != nil {
			t.Fatal(err)
		}
		job, _, err := svc.submitTenant(spec, nil, tenant)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	if stats := svc.sched.Stats(); stats.Queued != 2 || stats.Running != 1 {
		t.Fatalf("pre-Close scheduler occupancy = %+v, want 1 running + 2 queued", stats)
	}

	svc.Close()

	for _, j := range jobs {
		if st := j.Status(); !terminalState(st.State) {
			t.Fatalf("job %s state %q after Close, want terminal", j.ID(), st.State)
		}
	}
	if stats := svc.sched.Stats(); stats.Queued != 0 {
		t.Fatalf("scheduler still holds %d queued tickets after Close", stats.Queued)
	}
	svc.budget.Release(hold)
	if avail := svc.budget.Available(); avail != svc.budget.Total() {
		t.Fatalf("budget %d/%d after Close: shutdown leaked tokens", avail, svc.budget.Total())
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, want <= %d: leak after Close with queued tenants",
				runtime.NumGoroutine(), before+2)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGCSparesSchedulerQueuedJobs pins the sweep predicate for the
// scheduler era: a job waiting in the scheduler's pending queue — like
// one parked in its budget-lease wait — reports queued (with its queue
// position) and survives TTL sweeps indefinitely; only terminal jobs
// age out.
func TestGCSparesSchedulerQueuedJobs(t *testing.T) {
	svc, ts := startServer(t, Config{JobTTL: 20 * time.Millisecond, MaxConcurrent: 1, Workers: 2})
	hold := svc.budget.Lease(0)
	defer svc.budget.Release(hold)

	st1, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:700:2100"})
	st2, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:701:2103"})
	time.Sleep(100 * time.Millisecond) // several TTL intervals
	if removed := svc.gcSweep(time.Now()); removed != 0 {
		t.Fatalf("sweep removed %d jobs while both were queued", removed)
	}
	for _, id := range []string{st1.ID, st2.ID} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || st.State != StateQueued {
			t.Fatalf("job %s: status %d state %q, want 200 queued", id, resp.StatusCode, st.State)
		}
		if id == st2.ID && st.QueuePosition != 1 {
			t.Fatalf("scheduler-queued job reports position %d, want 1", st.QueuePosition)
		}
	}
}

// TestBatchLoadShed429 pins batch admission: a batch larger than the
// remaining queue capacity sheds whole with 429 before creating any
// job, and a batch that fits fans out normally.
func TestBatchLoadShed429(t *testing.T) {
	svc, ts := startServer(t, Config{
		MaxConcurrent: 1,
		Workers:       1,
		Scheduler:     sched.Config{MaxQueue: 2},
	})
	hold := svc.budget.Lease(0)

	post := func(items ...string) *http.Response {
		var req BatchRequest
		for _, src := range items {
			req.Items = append(req.Items, JobRequest{Source: src})
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/batches", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Capacity is 2 pending + 1 slot; a 4-item batch cannot fit and
	// sheds before any member job exists.
	resp := post("gnm:400:1200", "gnm:401:1203", "gnm:402:1206", "gnm:403:1209")
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("oversized batch: code %d Retry-After %q, want 429 with header",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
	svc.mu.Lock()
	stored := len(svc.jobs)
	svc.mu.Unlock()
	if stored != 0 {
		t.Fatalf("shed batch left %d jobs in the store", stored)
	}

	// A 2-item batch fits (1 dispatched + 1 queued) and completes.
	resp = post("gnm:400:1200", "gnm:401:1203")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fitting batch: code %d, want 202", resp.StatusCode)
	}
	var bst BatchStatus
	json.NewDecoder(resp.Body).Decode(&bst)
	resp.Body.Close()
	svc.budget.Release(hold)
	deadline := time.Now().Add(30 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/v1/batches/" + bst.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur BatchStatus
		json.NewDecoder(r2.Body).Decode(&cur)
		r2.Body.Close()
		if cur.Done {
			if cur.Counts[StateDone] != 2 {
				t.Fatalf("batch finished with counts %v, want 2 done", cur.Counts)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch did not finish: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
