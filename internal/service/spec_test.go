package service

import (
	"crypto/sha256"
	"encoding/json"
	"strings"
	"testing"

	"chordal"
)

func specKey(t *testing.T, req JobRequest) string {
	t.Helper()
	spec, err := newJobSpec(req, false)
	if err != nil {
		t.Fatalf("newJobSpec(%+v): %v", req, err)
	}
	return spec.Key()
}

func TestCanonicalKeySourceSpellings(t *testing.T) {
	base := specKey(t, JobRequest{Source: "rmat-er:12"})
	for _, spelled := range []string{
		"RMAT-ER:12",      // case-insensitive family
		"rmat-er:12:42",   // default seed spelled out
		"rmat-er:12:42:8", // default seed and edge factor spelled out
		" rmat-er:12 ",    // surrounding whitespace
		"\trmat-er:12:42\n",
	} {
		if got := specKey(t, JobRequest{Source: spelled}); got != base {
			t.Errorf("source %q: key %s, want %s (same input as rmat-er:12)", spelled, got, base)
		}
	}
	for _, different := range []string{
		"rmat-er:12:7",    // different seed
		"rmat-er:13",      // different scale
		"rmat-g:12",       // different family
		"rmat-er:12:42:9", // different edge factor
	} {
		if got := specKey(t, JobRequest{Source: different}); got == base {
			t.Errorf("source %q: key collides with rmat-er:12", different)
		}
	}
}

func TestCanonicalKeyOptionSpellings(t *testing.T) {
	// JSON key order and spelled-out defaults must not change identity.
	bodies := []string{
		`{"source":"gnm:1000:5000","options":{}}`,
		`{"source":"gnm:1000:5000"}`,
		`{"source":"gnm:1000:5000:42","options":{"variant":"auto","schedule":"dataflow"}}`,
		`{"options":{"verify":true,"relabel":"none"},"source":"GNM:1000:5000"}`,
		`{"options":{"workers":4},"source":"gnm:1000:5000"}`, // workers excluded from identity
	}
	keys := make([]string, len(bodies))
	for i, body := range bodies {
		var req JobRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatalf("unmarshal %s: %v", body, err)
		}
		keys[i] = specKey(t, req)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("body %d (%s): key %s, want %s", i, bodies[i], keys[i], keys[0])
		}
	}

	// Options that change the output change the key.
	off := false
	variants := []JobRequest{
		{Source: "gnm:1000:5000", Options: JobOptions{Repair: true}},
		{Source: "gnm:1000:5000", Options: JobOptions{Stitch: true}},
		{Source: "gnm:1000:5000", Options: JobOptions{Relabel: "bfs"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Schedule: "sync"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Variant: "unopt"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Verify: &off}},
		{Source: "gnm:1000:5000", Options: JobOptions{Shards: 2}},
		{Source: "gnm:1000:5000", Options: JobOptions{Shards: 8}},
		{Source: "gnm:1000:5000", Options: JobOptions{Shards: 8, ShardStitchOnly: true}},
	}
	seen := map[string]int{keys[0]: -1}
	for i, req := range variants {
		k := specKey(t, req)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with %d: key %s", i, prev, k)
		}
		seen[k] = i
	}
}

// TestShardStitchOnlyCanonicalized pins the identity rule: stitch-only
// without sharding is meaningless and must not split the cache key.
func TestShardStitchOnlyCanonicalized(t *testing.T) {
	plain := specKey(t, JobRequest{Source: "gnm:1000:5000"})
	noop := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{ShardStitchOnly: true}})
	if plain != noop {
		t.Errorf("shardStitchOnly without shards split the key: %s vs %s", plain, noop)
	}
	a := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Shards: 4}})
	b := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Shards: 4, ShardStitchOnly: true}})
	if a == b {
		t.Error("shardStitchOnly with shards must change the key")
	}
}

func TestCanonicalKeyRejectsBadSpecs(t *testing.T) {
	for _, req := range []JobRequest{
		{Source: ""},
		{Source: "   "},
		{Source: "rmat-er"},  // missing scale
		{Source: "gnm:1000"}, // missing m
		{Source: "gnm:1000:5000", Options: JobOptions{Variant: "fast"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Schedule: "eventually"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Relabel: "random"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Shards: -1}},
		{Source: "gnm:1000:5000", Options: JobOptions{Engine: "warp"}},
		{Source: "gnm:1000:5000", Options: JobOptions{Engine: "serial", Shards: 4}},
		{Source: "gnm:1000:5000", Options: JobOptions{Partitions: 2, Shards: 4}},
	} {
		if _, err := newJobSpec(req, false); err == nil {
			t.Errorf("newJobSpec(%+v): want error", req)
		}
	}
}

// TestEngineOptionWired pins the engine field of the wire options: a
// named engine lands in the canonical key, implied engines (shards /
// partitions) resolve to the same identity as their explicit spelling,
// and the service itself adds no engine logic beyond the decode.
func TestEngineOptionWired(t *testing.T) {
	serial := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Engine: "serial"}})
	if !strings.Contains(serial, "engine=serial") {
		t.Errorf("serial key %q does not carry the engine", serial)
	}
	implicit := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Shards: 4}})
	explicit := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Engine: "sharded", Shards: 4}})
	if implicit != explicit {
		t.Errorf("implicit sharded key %q != explicit %q", implicit, explicit)
	}
	partImplicit := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Partitions: 4}})
	partExplicit := specKey(t, JobRequest{Source: "gnm:1000:5000", Options: JobOptions{Engine: "partitioned", Partitions: 4}})
	if partImplicit != partExplicit {
		t.Errorf("implicit partitioned key %q != explicit %q", partImplicit, partExplicit)
	}
}

// TestUploadSourcesRejectedInJSON pins that an upload identity cannot
// be submitted as a plain JSON source: the request carries no graph
// bytes, so the job could only fail — and, via single-flight, drag a
// genuine concurrent upload of the same graph down with it.
func TestUploadSourcesRejectedInJSON(t *testing.T) {
	src := chordal.UploadSource("edges", sha256.Sum256([]byte("0 1\n")))
	for _, allowPaths := range []bool{false, true} {
		if _, err := newJobSpec(JobRequest{Source: src}, allowPaths); err == nil {
			t.Errorf("upload identity accepted as JSON source (allowPaths=%t)", allowPaths)
		}
	}
}

func TestPathSourcesGated(t *testing.T) {
	req := JobRequest{Source: "/etc/hosts"}
	if _, err := newJobSpec(req, false); err == nil {
		t.Error("path source accepted with paths disabled")
	}
	spec, err := newJobSpec(req, true)
	if err != nil {
		t.Fatalf("path source rejected with paths allowed: %v", err)
	}
	if spec.generated || spec.cacheable() {
		t.Errorf("path spec %+v must be non-generated and non-cacheable", spec)
	}
}

func TestUploadSourceContentAddressed(t *testing.T) {
	a := chordal.UploadSource("edges", sha256.Sum256([]byte("0 1\n1 2\n")))
	b := chordal.UploadSource("edges", sha256.Sum256([]byte("0 1\n1 2\n")))
	c := chordal.UploadSource("edges", sha256.Sum256([]byte("0 1\n1 3\n")))
	if a != b {
		t.Errorf("identical content hashed differently: %s vs %s", a, b)
	}
	if a == c {
		t.Errorf("distinct content collided: %s", a)
	}
	// The same bytes decode differently under a different parser, so
	// the format is part of the identity.
	if d := chordal.UploadSource("mtx", sha256.Sum256([]byte("0 1\n1 2\n"))); d == a {
		t.Errorf("same bytes under different formats collided: %s", d)
	}
}
