package service

import (
	"errors"
	"math"
	"net/http"
	"strconv"
	"strings"

	"chordal/internal/sched"
)

// This file holds the multi-tenant surface of the service: tenant
// identity extraction, the mapping from scheduler admission rejections
// to 429 + Retry-After responses, and the scheduler metrics endpoint.
//
// Tenant identity is taken from the X-Tenant request header (an API
// key works identically via X-API-Key — the service treats the key
// value as the tenant name; real key→tenant mapping belongs in a
// gateway). Requests carrying neither header belong to the default
// tenant, whose scheduling behavior matches the pre-scheduler service:
// FIFO dispatch at weight 1 with no rate limit, so single-tenant
// deployments see no change.

// tenantFromRequest resolves the request's tenant: the X-Tenant
// header, else the X-API-Key header, else the default tenant ("").
func tenantFromRequest(r *http.Request) string {
	if t := strings.TrimSpace(r.Header.Get("X-Tenant")); t != "" {
		return t
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// displayTenant renders a tenant name for events and status payloads:
// the default tenant's empty name shows as "default".
func displayTenant(name string) string {
	if name == "" {
		return "default"
	}
	return name
}

// writeSubmitError maps a submission failure onto its HTTP shape: an
// admission-control shed becomes 429 Too Many Requests with a
// Retry-After header (whole seconds, rounded up from the scheduler's
// drain-rate or token-bucket hint); anything else — in practice server
// shutdown — stays 503.
func writeSubmitError(w http.ResponseWriter, err error) {
	var shed *sched.ShedError
	if errors.As(err, &shed) {
		secs := int(math.Ceil(shed.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		httpError(w, http.StatusTooManyRequests, err)
		return
	}
	httpError(w, http.StatusServiceUnavailable, err)
}

// handleScheduler serves GET /v1/scheduler: the full weighted-fair
// scheduler snapshot — per-tenant queue depth, running slots, served
// share, shed counts, and average queue wait — alongside the global
// occupancy and drain-rate estimate.
func (s *Server) handleScheduler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Stats())
}
