package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"chordal"
	"chordal/internal/graph"
)

// startServer spins up the service behind an httptest listener.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// submitJSON posts a JobRequest and decodes the returned status.
func submitJSON(t *testing.T, base string, req JobRequest) (JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return st, resp.StatusCode
}

// followEvents streams SSE for a job until the terminal "done" event,
// returning per-event-name counts and the final status.
func followEvents(t *testing.T, base, id string) (map[string]int, JobStatus) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q, want text/event-stream", ct)
	}
	counts := map[string]int{}
	var event string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			counts[event]++
			if event == "done" {
				var st JobStatus
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st); err != nil {
					t.Fatalf("decode done event: %v", err)
				}
				return counts, st
			}
		}
	}
	t.Fatalf("event stream ended without a done event (err=%v, counts=%v)", scanner.Err(), counts)
	return nil, JobStatus{}
}

// TestServeJobEndToEnd is the acceptance flow: submit an RMAT Source
// spec, observe per-iteration SSE progress, fetch a verified chordal
// result, and watch an identical resubmission hit the result cache.
func TestServeJobEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{})

	st, code := submitJSON(t, ts.URL, JobRequest{Source: "rmat-er:8:7"})
	if code != http.StatusAccepted {
		t.Fatalf("first submission: status %d, want %d", code, http.StatusAccepted)
	}
	if st.ID == "" || st.Cached {
		t.Fatalf("first submission: %+v, want uncached job with id", st)
	}

	counts, done := followEvents(t, ts.URL, st.ID)
	if counts["iteration"] < 1 {
		t.Errorf("saw %d iteration SSE events, want >= 1 (all events: %v)", counts["iteration"], counts)
	}
	if counts["stage"] < 1 {
		t.Errorf("saw %d stage SSE events, want >= 1", counts["stage"])
	}
	if done.State != StateDone {
		t.Fatalf("terminal state %q (error %q), want %q", done.State, done.Error, StateDone)
	}
	m := done.Metrics
	if m == nil {
		t.Fatal("done status has no metrics")
	}
	if m.Chordal == nil || !*m.Chordal {
		t.Errorf("result not verified chordal: %+v", m)
	}
	if m.ChordalEdges <= 0 || m.Iterations < 1 {
		t.Errorf("implausible metrics: %+v", m)
	}

	// Status endpoint agrees with the terminal event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var polled JobStatus
	json.NewDecoder(resp.Body).Decode(&polled)
	resp.Body.Close()
	if polled.State != StateDone || polled.Metrics == nil {
		t.Errorf("GET status = %+v, want done with metrics", polled)
	}

	// Result in edge-list form matches the reported edge count.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=edges")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", resp.StatusCode)
	}
	var header string
	if sc := bufio.NewScanner(resp.Body); sc.Scan() {
		header = sc.Text()
	}
	want := fmt.Sprintf("%d edges", m.ChordalEdges)
	if !strings.Contains(header, want) {
		t.Errorf("result header %q does not report %s", header, want)
	}

	// An equivalent respelled submission is a cache hit (HTTP 200)
	// returning the producing job itself — same id, no new job minted.
	st2, code2 := submitJSON(t, ts.URL, JobRequest{Source: " RMAT-ER:8:7:8 "})
	if code2 != http.StatusOK {
		t.Errorf("resubmission: status %d, want %d (cache hit)", code2, http.StatusOK)
	}
	if st2.ID != st.ID || st2.State != StateDone {
		t.Errorf("resubmission: %+v, want the original done job %s", st2, st.ID)
	}
	if st2.Metrics == nil || st2.Metrics.ChordalEdges != m.ChordalEdges {
		t.Errorf("cached metrics %+v, want %d chordal edges", st2.Metrics, m.ChordalEdges)
	}
}

// TestConcurrentSubmissions hammers one spec from many goroutines with
// the race detector on: every job must complete, and once the first
// finishes the rest of the traffic is eventually served from cache.
func TestConcurrentSubmissions(t *testing.T) {
	svc, ts := startServer(t, Config{MaxConcurrent: 3})

	const clients = 12
	var wg sync.WaitGroup
	states := make([]JobStatus, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := "gnm:2000:8000"
			if i%3 == 0 {
				src = "GNM:2000:8000:42" // respelled, same canonical job
			}
			st, _ := submitJSON(t, ts.URL, JobRequest{Source: src})
			_, done := followEvents(t, ts.URL, st.ID)
			states[i] = done
		}(i)
	}
	wg.Wait()

	edges := -1
	for i, st := range states {
		if st.State != StateDone {
			t.Fatalf("client %d: state %q (error %q)", i, st.State, st.Error)
		}
		if edges == -1 {
			edges = st.Metrics.ChordalEdges
		} else if st.Metrics.ChordalEdges != edges {
			t.Errorf("client %d: %d chordal edges, others got %d", i, st.Metrics.ChordalEdges, edges)
		}
	}

	// The dust has settled: one more submission must be a pure hit —
	// HTTP 200 with an already-done job, no fresh execution.
	st, code := submitJSON(t, ts.URL, JobRequest{Source: "gnm:2000:8000"})
	if code != http.StatusOK || st.State != StateDone {
		t.Errorf("post-storm submission: code %d state %s, want 200/done cache hit", code, st.State)
	}
	if got := svc.results.Len(); got < 1 {
		t.Errorf("result cache has %d entries, want >= 1", got)
	}
}

// TestMultipartUpload submits graph bytes directly and checks the
// upload is content-addressed in the cache.
func TestMultipartUpload(t *testing.T) {
	_, ts := startServer(t, Config{})

	post := func() (JobStatus, int) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		fw, _ := mw.CreateFormFile("graph", "square.txt")
		// A 4-cycle plus one chord: extraction keeps the triangles.
		fmt.Fprint(fw, "0 1\n1 2\n2 3\n0 3\n0 2\n")
		mw.WriteField("options", `{"repair": true}`)
		mw.Close()
		resp, err := http.Post(ts.URL+"/v1/jobs", mw.FormDataContentType(), &buf)
		if err != nil {
			t.Fatalf("POST multipart: %v", err)
		}
		defer resp.Body.Close()
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		return st, resp.StatusCode
	}

	st, code := post()
	if code != http.StatusAccepted {
		t.Fatalf("upload: status %d, want %d", code, http.StatusAccepted)
	}
	if !strings.HasPrefix(st.Source, "upload:") {
		t.Errorf("upload source %q, want content-addressed upload:<hash>", st.Source)
	}
	_, done := followEvents(t, ts.URL, st.ID)
	if done.State != StateDone {
		t.Fatalf("upload job: %q (error %q)", done.State, done.Error)
	}
	if done.Metrics.ChordalEdges != 5 {
		// All five edges fit: the chord triangulates the square.
		t.Errorf("upload extraction kept %d edges, want 5", done.Metrics.ChordalEdges)
	}

	st2, code2 := post()
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Errorf("re-upload: code %d id %s, want content-addressed hit on job %s", code2, st2.ID, st.ID)
	}
}

// TestJobErrorsSurface checks API error paths. Path sources are
// enabled to exercise the load-failure path; the default gating is
// asserted separately.
func TestJobErrorsSurface(t *testing.T) {
	_, ts := startServer(t, Config{AllowPathSources: true})

	// Bad spec is a 400 at submission.
	_, code := func() (JobStatus, int) {
		body := []byte(`{"source":"rmat-er"}`)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return JobStatus{}, resp.StatusCode
	}()
	if code != http.StatusBadRequest {
		t.Errorf("bad spec: status %d, want 400", code)
	}

	// Unknown job is a 404 everywhere.
	for _, path := range []string{"/v1/jobs/jx", "/v1/jobs/jx/events", "/v1/jobs/jx/result"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}

	// A job whose source fails to load fails with the error surfaced.
	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "/no/such/file.txt"})
	_, done := followEvents(t, ts.URL, st.ID)
	if done.State != StateFailed || done.Error == "" {
		t.Errorf("missing-file job: %+v, want failed with error", done)
	}

	// Result of a failed job is a 409.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("failed-job result: status %d, want 409", resp.StatusCode)
	}
}

// TestPathSourcesRejectedByDefault pins the security default: a
// network client must not be able to point jobs at server files.
func TestPathSourcesRejectedByDefault(t *testing.T) {
	_, ts := startServer(t, Config{})
	body := []byte(`{"source":"/etc/hosts"}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("path source: status %d, want 400", resp.StatusCode)
	}
}

// TestSubmitAfterCloseRejected pins the shutdown contract: a
// submission racing Close gets a 503, never a leaked job goroutine.
func TestSubmitAfterCloseRejected(t *testing.T) {
	svc, ts := startServer(t, Config{})
	svc.Close()
	body := []byte(`{"source":"gnm:100:300"}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after Close: status %d, want 503", resp.StatusCode)
	}
}

// TestSpecParityAcrossSurfaces is the acceptance check for the one-spec
// redesign: a job submitted as JSON to the service and a library
// Spec.Run with identical parameters share the identical canonical key
// and a byte-identical extracted subgraph (the CLI's -json path is
// pinned against the same canonical in the root cli_test).
func TestSpecParityAcrossSurfaces(t *testing.T) {
	_, ts := startServer(t, Config{})

	libSpec := chordal.Spec{
		Source:       "rmat-g:9:5",
		EngineConfig: chordal.EngineConfig{Repair: true},
		Verify:       true,
	}
	libCanon, err := libSpec.Canonical()
	if err != nil {
		t.Fatal(err)
	}

	// The service decodes the equivalent JSON request to the same key.
	js, err := newJobSpec(JobRequest{
		Source:  " RMAT-G:9:5 ",
		Options: JobOptions{Repair: true},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if js.Key() != libCanon {
		t.Fatalf("service key\n %s\nlibrary canonical\n %s", js.Key(), libCanon)
	}

	// And the job's extracted bytes match the library run's.
	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "rmat-g:9:5", Options: JobOptions{Repair: true}})
	if _, done := followEvents(t, ts.URL, st.ID); done.State != StateDone {
		t.Fatalf("service job: %s (%s)", done.State, done.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=bin")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	res, err := libSpec.Run()
	if err != nil {
		t.Fatal(err)
	}
	var lib bytes.Buffer
	if err := graph.WriteBinary(&lib, res.Subgraph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, lib.Bytes()) {
		t.Fatalf("service result (%d bytes) differs from library Spec.Run (%d bytes)",
			len(served), lib.Len())
	}
}

// TestResultCacheByteBounded pins the byte budget: with a budget too
// small for any subgraph, completed results are never retained, so an
// identical resubmission runs fresh instead of hitting the cache.
func TestResultCacheByteBounded(t *testing.T) {
	svc, ts := startServer(t, Config{ResultCacheBytes: 64})

	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:500:1500"})
	if _, done := followEvents(t, ts.URL, st.ID); done.State != StateDone {
		t.Fatalf("job: %s", done.State)
	}
	if n := svc.results.Len(); n != 0 {
		t.Fatalf("result cache holds %d entries under a 64-byte budget", n)
	}
	again, code := submitJSON(t, ts.URL, JobRequest{Source: "gnm:500:1500"})
	if code != http.StatusAccepted || again.ID == st.ID {
		t.Fatalf("resubmission: code %d id %s, want a fresh 202 job (no cache to hit)", code, again.ID)
	}
	if _, done := followEvents(t, ts.URL, again.ID); done.State != StateDone {
		t.Fatalf("rerun job: %s", done.State)
	}

	// The generated-input cache ran under the default budget and did
	// retain the input, charged at CSR size.
	if svc.inputs.Len() < 1 || svc.inputs.Bytes() == 0 {
		t.Errorf("input cache len=%d bytes=%d, want the generated graph retained",
			svc.inputs.Len(), svc.inputs.Bytes())
	}
}

// TestHealthz checks the liveness endpoint's counters move.
func TestHealthz(t *testing.T) {
	_, ts := startServer(t, Config{})
	st, _ := submitJSON(t, ts.URL, JobRequest{Source: "gnm:500:1500"})
	followEvents(t, ts.URL, st.ID)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h map[string]any
		json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if h["status"] != "ok" {
			t.Fatalf("healthz status = %v", h["status"])
		}
		if _, ok := h["inputCacheBudgetBytes"]; !ok {
			t.Fatalf("healthz misses the cache byte budget: %v", h)
		}
		if _, ok := h["resultCacheBytes"]; !ok {
			t.Fatalf("healthz misses the cache byte occupancy: %v", h)
		}
		if h["done"].(float64) >= 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never reported a done job: %v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
