// Package incremental is the single home of dynamic-chordal-graph
// admission: deciding whether an edge can join a chordal graph without
// breaking chordality, and maintaining a chordal subgraph under an
// edge-insertion stream.
//
// The criterion is the classic dynamic-chordal-graph separator test:
// inserting the non-edge {u, v} keeps the graph chordal exactly when u
// and v lie in different connected components, or their common
// neighborhood N(u) ∩ N(v) separates u from v (then every cycle through
// the new edge gains a chord at the separator). Checker implements the
// test over a caller-owned adjacency; Maintainer owns the adjacency and
// layers on a union-find bridge fast path, a common-neighbor pre-filter,
// a deferred-edge queue for rejected insertions, and Repair — the
// fixpoint retest that closes the paper's Theorem 2 maximality gap
// (DESIGN.md §5): a rejected edge can become addable after later
// admissions, so deferred edges are retested until a pass admits
// nothing.
//
// Every other admission site in the repository — verify.CanAddEdge, the
// shard border reconciliation, the core repair post-pass, and the
// streaming sessions — delegates here; there is exactly one
// implementation of the separator criterion.
package incremental

import (
	"context"
	"slices"

	"chordal/internal/bitset"
)

// Edge is an undirected edge with U < V, the canonical orientation every
// extraction result uses.
type Edge struct {
	U, V int32
}

// Reason explains an Admit decision. The strings are stable wire values:
// the streaming admission events and the CLI's NDJSON output carry them
// verbatim.
type Reason string

// Admit outcomes.
const (
	// ReasonAdmitted: the exact separator criterion accepted the edge.
	ReasonAdmitted Reason = "admitted"
	// ReasonBridge: the endpoints were in different components, so the
	// edge is a bridge of the result — a bridge lies on no cycle, so no
	// chordless cycle can appear (the paper's remark below Theorem 2).
	ReasonBridge Reason = "bridge"
	// ReasonRepaired: a previously deferred edge admitted by Repair.
	ReasonRepaired Reason = "repaired"
	// ReasonPresent: the edge is already in the maintained subgraph.
	ReasonPresent Reason = "present"
	// ReasonDeferred: the separator criterion rejected the edge for now;
	// it is queued for retest by Repair.
	ReasonDeferred Reason = "deferred"
	// ReasonInvalid: a self loop or an endpoint outside the universe.
	ReasonInvalid Reason = "invalid"
	// ReasonOverflow: the separator criterion rejected the edge and the
	// deferred queue is at its SetMaxDeferred bound, so the edge was
	// dropped instead of queued — it will never be retested by Repair.
	ReasonOverflow Reason = "overflow"
)

// Checker is the reusable scratch state of the separator checks: epoch
// mark sets (bitset.Epoch) whose O(1) clear replaces per-call restore
// loops, plus an optional cached marked neighborhood that amortizes
// repeated intersections against the same high-degree vertex (border
// admission tests edges in ascending-u order, so consecutive candidates
// usually share u). A Checker is single-owner: give each worker its own.
type Checker struct {
	sep      *bitset.Epoch // current separator membership
	visited  *bitset.Epoch // BFS visit marks (also tentative N(u) marks)
	nbr      *bitset.Epoch // cached neighborhood membership of nbrOwner
	nbrOwner int32         // vertex whose adjacency nbr holds, or -1
	// threshold is the degree at or above which a vertex's neighborhood
	// is worth caching in nbr for reuse across consecutive checks;
	// negative disables caching.
	threshold int
	queue     []int32
	sepList   []int32
}

// NewChecker returns a Checker for graphs with n vertices. threshold is
// the degree at or above which a vertex's marked neighborhood is cached
// for reuse across calls (0 picks a conservative default, negative
// disables caching).
func NewChecker(n, threshold int) *Checker {
	if threshold == 0 {
		threshold = 32
	}
	return &Checker{
		sep:       bitset.NewEpoch(n),
		visited:   bitset.NewEpoch(n),
		nbr:       bitset.NewEpoch(n),
		nbrOwner:  -1,
		threshold: threshold,
	}
}

// Invalidate drops the cached neighborhood. Call it after mutating the
// adjacency a previous check marked (admitting an edge appends to both
// endpoint lists, so a cached marking of either endpoint goes stale).
func (s *Checker) Invalidate() { s.nbrOwner = -1 }

// HasCommonNeighbor reports whether u and v share a neighbor — the
// cheap triangle-style pre-filter run before the exact separator check
// (an empty N(u) ∩ N(v) cannot separate connected vertices). The marked
// side prefers the cached neighborhood, then the longer list, so a hub
// is materialized once and each check probes the short list in
// O(deg(small)). Low-degree markings go to a throwaway epoch set so
// they never evict a cached hub.
func (s *Checker) HasCommonNeighbor(adj [][]int32, u, v int32) bool {
	// Swap so v is the side to mark: the cached owner when one matches,
	// otherwise the longer list.
	if s.nbrOwner != v && (s.nbrOwner == u || len(adj[u]) >= len(adj[v])) {
		u, v = v, u
	}
	var marked *bitset.Epoch
	switch {
	case s.nbrOwner == v:
		marked = s.nbr
	case s.threshold >= 0 && len(adj[v]) >= s.threshold:
		s.nbr.Clear()
		for _, x := range adj[v] {
			s.nbr.Add(x)
		}
		s.nbrOwner = v
		marked = s.nbr
	default:
		s.visited.Clear()
		for _, x := range adj[v] {
			s.visited.Add(x)
		}
		marked = s.visited
	}
	for _, x := range adj[u] {
		if marked.Contains(x) {
			return true
		}
	}
	return false
}

// CanAddEdge reports whether adding the non-edge {u, v} to the chordal
// graph with the given adjacency keeps it chordal. It uses the classic
// dynamic-chordal-graph criterion: the insertion is safe exactly when u
// and v lie in different connected components, or their common
// neighborhood separates u from v (every u-v path meets it, so every
// cycle through the new edge gains a chord at the separator). The
// check is a BFS from u that avoids N(u) ∩ N(v) and looks for v,
// O(V+E) worst case but typically local. The adjacency must be chordal
// and must not already contain {u, v}. All bookkeeping lives in the
// epoch sets of s — clearing is one epoch bump, so nothing is restored
// between calls.
func (s *Checker) CanAddEdge(adj [][]int32, u, v int32) bool {
	// Mark the common neighborhood N(u) ∩ N(v) in sep: tentatively mark
	// N(u) in visited, intersect with N(v), then drop the tentative
	// marks with one epoch bump.
	s.visited.Clear()
	for _, x := range adj[u] {
		s.visited.Add(x)
	}
	s.sep.Clear()
	s.sepList = s.sepList[:0]
	for _, x := range adj[v] {
		if s.visited.Contains(x) {
			s.sep.Add(x)
			s.sepList = append(s.sepList, x)
		}
	}
	s.visited.Clear()

	// Search from u avoiding the separator; if v is reached, the common
	// neighborhood does not separate them and the edge is not addable.
	s.queue = append(s.queue[:0], u)
	s.visited.Add(u)
	for len(s.queue) > 0 {
		x := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		for _, y := range adj[x] {
			if y == v {
				return false
			}
			if !s.sep.Contains(y) && !s.visited.Contains(y) {
				s.visited.Add(y)
				s.queue = append(s.queue, y)
			}
		}
	}
	return true
}

// Maintainer holds a chordal subgraph of an n-vertex universe and
// decides edge insertions with the separator criterion. It is the one
// admission kernel shared by the batch engines (shard border
// reconciliation, the repair post-pass) and the streaming sessions.
// A Maintainer is single-owner: callers serialize access.
type Maintainer struct {
	adj     [][]int32
	checker *Checker
	// uf is a union-find over the maintained subgraph's components:
	// Admit takes the O(α) bridge fast path when the endpoints are in
	// different components, skipping the BFS entirely, and the same-
	// component fact is what licenses the common-neighbor pre-filter
	// as a rejection (an empty separator cannot separate connected
	// vertices).
	uf       []int32
	ufSize   []int32
	deferred []Edge
	// inDeferred dedups the queue so a delta stream that repeats a
	// rejected edge cannot grow it without bound.
	inDeferred map[int64]struct{}
	// maxDeferred caps the queue's length (0 = unbounded): dedup alone
	// cannot stop a hostile stream of all-distinct inadmissible edges
	// from growing the queue linearly, so once the cap is reached new
	// rejections are dropped with ReasonOverflow instead of queued.
	maxDeferred int
	edges       int
	threshold   int
}

// New returns a Maintainer over an empty subgraph of n vertices.
// threshold follows NewChecker's convention (0 = default, negative
// disables the hub-neighborhood cache).
func New(n, threshold int) *Maintainer {
	m := &Maintainer{
		adj:        make([][]int32, n),
		checker:    NewChecker(n, threshold),
		uf:         make([]int32, n),
		ufSize:     make([]int32, n),
		inDeferred: make(map[int64]struct{}),
		threshold:  threshold,
	}
	for i := range m.uf {
		m.uf[i] = int32(i)
		m.ufSize[i] = 1
	}
	return m
}

// Seed adds the edge {u, v} without any chordality check — the caller
// promises the seeded edge set is chordal (a kernel's extraction
// result). Seeding an edge twice, a self loop, or an out-of-range
// endpoint corrupts the invariant; Seed is for trusted bulk adoption,
// Admit for everything else.
func (m *Maintainer) Seed(u, v int32) {
	m.adj[u] = append(m.adj[u], v)
	m.adj[v] = append(m.adj[v], u)
	m.union(u, v)
	m.edges++
}

// Vertices returns the universe size.
func (m *Maintainer) Vertices() int { return len(m.adj) }

// EdgeCount returns the number of edges in the maintained subgraph.
func (m *Maintainer) EdgeCount() int { return m.edges }

// DeferredCount returns the number of rejected edges queued for Repair.
func (m *Maintainer) DeferredCount() int { return len(m.deferred) }

// SetMaxDeferred bounds the deferred queue to at most n edges (n <= 0
// means unbounded, the default). When the queue is full, Admit returns
// (false, ReasonOverflow) for a newly rejected edge and drops it — the
// memory-safety trade on adversarial streams: a dropped edge is gone
// and will not be reconsidered by later Repair passes. Lowering the
// bound does not evict edges already queued.
func (m *Maintainer) SetMaxDeferred(n int) {
	if n < 0 {
		n = 0
	}
	m.maxDeferred = n
}

// DeferredEdges returns a copy of the deferred queue in queue order.
// Together with EdgeList it reconstructs every distinct valid edge ever
// offered to Admit: each one is either in the maintained subgraph or
// still deferred.
func (m *Maintainer) DeferredEdges() []Edge {
	out := make([]Edge, len(m.deferred))
	copy(out, m.deferred)
	return out
}

// Adj exposes the maintained adjacency. The slices alias the
// Maintainer's storage: callers must not mutate them, and the view goes
// stale on the next Admit/Repair.
func (m *Maintainer) Adj() [][]int32 { return m.adj }

// EdgeList returns the maintained edges with U < V in (U, V) order.
func (m *Maintainer) EdgeList() []Edge {
	out := make([]Edge, 0, m.edges)
	for u := range m.adj {
		for _, v := range m.adj[u] {
			if int32(u) < v {
				out = append(out, Edge{U: int32(u), V: v})
			}
		}
	}
	sortEdges(out)
	return out
}

// Grow extends the universe to n vertices (no-op when already at least
// that large). Growth reallocates the checker's epoch sets, so it is
// amortized by the session layer's doubling policy, not called per
// delta.
func (m *Maintainer) Grow(n int) {
	if n <= len(m.adj) {
		return
	}
	adj := make([][]int32, n)
	copy(adj, m.adj)
	m.adj = adj
	for i := len(m.uf); i < n; i++ {
		m.uf = append(m.uf, int32(i))
		m.ufSize = append(m.ufSize, 1)
	}
	m.checker = NewChecker(n, m.threshold)
}

// HasEdge reports whether {u, v} is in the maintained subgraph.
func (m *Maintainer) HasEdge(u, v int32) bool {
	a, b := u, v
	if len(m.adj[a]) > len(m.adj[b]) {
		a, b = b, a
	}
	for _, w := range m.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Admit decides the insertion of {u, v}: accepted edges join the
// maintained subgraph (chordality preserved by the separator
// criterion), rejections are queued for Repair, and the reason reports
// which path decided. The decision sequence for a given delta order is
// deterministic.
func (m *Maintainer) Admit(u, v int32) (bool, Reason) {
	return m.admit(u, v, true)
}

// admit is Admit with the deferred-queue policy explicit; Repair
// retests with deferOnReject=false so a rejected edge keeps its one
// queue slot instead of re-entering.
func (m *Maintainer) admit(u, v int32, deferOnReject bool) (bool, Reason) {
	n := int32(len(m.adj))
	if u == v || u < 0 || v < 0 || u >= n || v >= n {
		return false, ReasonInvalid
	}
	if u > v {
		u, v = v, u
	}
	if m.HasEdge(u, v) {
		return false, ReasonPresent
	}
	if m.find(u) != m.find(v) {
		m.add(u, v)
		return true, ReasonBridge
	}
	// Connected endpoints: an empty common neighborhood cannot separate
	// them, so the cheap intersection rejects without the BFS; otherwise
	// run the exact check.
	if !m.checker.HasCommonNeighbor(m.adj, u, v) || !m.checker.CanAddEdge(m.adj, u, v) {
		if deferOnReject {
			key := int64(u)<<32 | int64(v)
			if _, dup := m.inDeferred[key]; !dup {
				if m.maxDeferred > 0 && len(m.deferred) >= m.maxDeferred {
					return false, ReasonOverflow
				}
				m.inDeferred[key] = struct{}{}
				m.deferred = append(m.deferred, Edge{U: u, V: v})
			}
		}
		return false, ReasonDeferred
	}
	m.add(u, v)
	return true, ReasonAdmitted
}

// add records an accepted edge: adjacency on both sides, component
// union, and invalidation of the checker's cached neighborhood (the
// lists it marked just grew).
func (m *Maintainer) add(u, v int32) {
	m.adj[u] = append(m.adj[u], v)
	m.adj[v] = append(m.adj[v], u)
	m.checker.Invalidate()
	m.union(u, v)
	m.edges++
}

// Repair retests the deferred queue until a full pass admits nothing,
// returning the edges admitted in admission order. This is the fixpoint
// that closes the Theorem 2 maximality gap: after Repair, no deferred
// edge can be added to the maintained subgraph without breaking
// chordality.
func (m *Maintainer) Repair() []Edge {
	admitted, _ := m.RepairContext(context.Background())
	return admitted
}

// RepairContext is Repair under a context: cancellation is observed
// every few hundred retests, returning the edges admitted so far with
// ctx.Err(). Queue order is preserved across passes, so the admission
// sequence is deterministic for a given deferral order.
func (m *Maintainer) RepairContext(ctx context.Context) ([]Edge, error) {
	var admitted []Edge
	tested := 0
	for changed := true; changed; {
		changed = false
		rest := m.deferred[:0]
		for _, e := range m.deferred {
			if tested++; tested%256 == 0 && ctx.Err() != nil {
				rest = append(rest, e)
				continue
			}
			ok, _ := m.admit(e.U, e.V, false)
			if ok {
				delete(m.inDeferred, int64(e.U)<<32|int64(e.V))
				admitted = append(admitted, e)
				changed = true
			} else {
				rest = append(rest, e)
			}
		}
		m.deferred = rest
		if err := ctx.Err(); err != nil {
			return admitted, err
		}
	}
	return admitted, nil
}

// ResetDeferred drops the deferred queue. The shard repair pass uses it
// to rebuild the queue from a full scan of the original graph, so its
// retest order matches the scan order exactly.
func (m *Maintainer) ResetDeferred() {
	m.deferred = m.deferred[:0]
	for k := range m.inDeferred {
		delete(m.inDeferred, k)
	}
}

// find is union-find lookup with path halving.
func (m *Maintainer) find(v int32) int32 {
	for m.uf[v] != v {
		m.uf[v] = m.uf[m.uf[v]]
		v = m.uf[v]
	}
	return v
}

// union merges the components of u and v by size.
func (m *Maintainer) union(u, v int32) {
	ru, rv := m.find(u), m.find(v)
	if ru == rv {
		return
	}
	if m.ufSize[ru] < m.ufSize[rv] {
		ru, rv = rv, ru
	}
	m.uf[rv] = ru
	m.ufSize[ru] += m.ufSize[rv]
}

// sortEdges orders edges by (U, V), the canonical result order.
func sortEdges(edges []Edge) {
	slices.SortFunc(edges, func(a, b Edge) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
}
