package incremental_test

import (
	"context"
	"math/rand"
	"testing"

	"chordal/internal/incremental"
	"chordal/internal/verify"
)

// chordalNow asserts the maintained subgraph is chordal.
func chordalNow(t *testing.T, m *incremental.Maintainer, when string) {
	t.Helper()
	if hole := verify.FindHole(m.Adj()); hole != nil {
		t.Fatalf("%s: maintained subgraph has a hole %v", when, hole)
	}
}

// TestMaintainerC4 walks the canonical defer-then-repair story: the
// closing edge of a 4-cycle is deferred, and landing the chord makes a
// repair pass admit it.
func TestMaintainerC4(t *testing.T) {
	m := incremental.New(4, 0)
	steps := []struct {
		u, v   int32
		ok     bool
		reason incremental.Reason
	}{
		{0, 1, true, incremental.ReasonBridge},
		{1, 2, true, incremental.ReasonBridge},
		{2, 3, true, incremental.ReasonBridge},
		{0, 3, false, incremental.ReasonDeferred}, // would close a chordless C4
		{3, 0, false, incremental.ReasonDeferred}, // same edge, swapped: dedup'd
		{1, 0, false, incremental.ReasonPresent},
		{2, 2, false, incremental.ReasonInvalid},
		{1, 7, false, incremental.ReasonInvalid},
		{0, 2, true, incremental.ReasonAdmitted}, // the chord: {1} separates 0|2
	}
	for _, s := range steps {
		ok, reason := m.Admit(s.u, s.v)
		if ok != s.ok || reason != s.reason {
			t.Fatalf("Admit(%d,%d) = (%t, %s), want (%t, %s)", s.u, s.v, ok, reason, s.ok, s.reason)
		}
		chordalNow(t, m, "after Admit")
	}
	if m.DeferredCount() != 1 {
		t.Fatalf("deferred %d, want 1 (the repeated {0,3} keeps one slot)", m.DeferredCount())
	}
	admitted := m.Repair()
	if len(admitted) != 1 || admitted[0] != (incremental.Edge{U: 0, V: 3}) {
		t.Fatalf("Repair admitted %v, want [{0 3}]", admitted)
	}
	chordalNow(t, m, "after Repair")
	if m.DeferredCount() != 0 || m.EdgeCount() != 5 {
		t.Fatalf("deferred %d edges %d, want 0 and 5", m.DeferredCount(), m.EdgeCount())
	}
	// The queue slot was consumed: re-offering is now "present".
	if _, reason := m.Admit(0, 3); reason != incremental.ReasonPresent {
		t.Fatalf("re-offer after repair: %s, want present", reason)
	}
}

// TestMaintainerGrow checks that growth preserves the subgraph, the
// components, and the deferred queue.
func TestMaintainerGrow(t *testing.T) {
	m := incremental.New(4, 0)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}} {
		m.Admit(e[0], e[1])
	}
	m.Admit(0, 3) // deferred
	m.Grow(100)
	if m.Vertices() != 100 {
		t.Fatalf("grew to %d, want 100", m.Vertices())
	}
	if ok, reason := m.Admit(0, 99); !ok || reason != incremental.ReasonBridge {
		t.Fatalf("bridge to a new vertex: (%t, %s)", ok, reason)
	}
	if ok, _ := m.Admit(0, 2); !ok {
		t.Fatal("chord rejected after growth")
	}
	if got := m.Repair(); len(got) != 1 {
		t.Fatalf("deferred queue lost across Grow: repair admitted %v", got)
	}
	chordalNow(t, m, "after grow+repair")
}

// TestMaintainerRandomStream drives random deltas through the kernel
// and checks the central invariants after every repair pass: the
// subgraph stays chordal, and maintained ∪ deferred reconstructs every
// distinct valid edge offered.
func TestMaintainerRandomStream(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(42))
	m := incremental.New(n, 0)
	offered := map[[2]int32]bool{}
	for i := 0; i < 1200; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		offered[[2]int32{u, v}] = true
		m.Admit(u, v)
		if i%200 == 199 {
			if _, err := m.RepairContext(context.Background()); err != nil {
				t.Fatal(err)
			}
			chordalNow(t, m, "mid-stream repair")
		}
	}
	m.Repair()
	chordalNow(t, m, "final repair")
	got := map[[2]int32]bool{}
	for _, e := range m.EdgeList() {
		got[[2]int32{e.U, e.V}] = true
	}
	for _, e := range m.DeferredEdges() {
		if got[[2]int32{e.U, e.V}] {
			t.Fatalf("edge {%d,%d} both maintained and deferred", e.U, e.V)
		}
		got[[2]int32{e.U, e.V}] = true
	}
	if len(got) != len(offered) {
		t.Fatalf("maintained ∪ deferred has %d edges, offered %d distinct", len(got), len(offered))
	}
	for e := range offered {
		if !got[e] {
			t.Fatalf("offered edge %v lost", e)
		}
	}
}

// TestCheckerMatchesNaive cross-checks CanAddEdge against a from-scratch
// hole search on small random chordal graphs built by the Maintainer
// itself.
func TestCheckerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		const n = 14
		m := incremental.New(n, 0)
		for i := 0; i < 40; i++ {
			m.Admit(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		chk := incremental.NewChecker(n, 0)
		adj := m.Adj()
		for u := int32(0); u < n; u++ {
			for v := u + 1; v < n; v++ {
				if m.HasEdge(u, v) {
					continue
				}
				// The criterion applies to connected endpoints; bridges are
				// always safe and take the union-find path in Admit.
				if !sameComponent(adj, u, v) {
					continue
				}
				got := chk.CanAddEdge(adj, u, v)
				want := addKeepsChordal(adj, u, v)
				if got != want {
					t.Fatalf("trial %d: CanAddEdge(%d,%d) = %t, naive says %t", trial, u, v, got, want)
				}
			}
		}
	}
}

// sameComponent reports connectivity by BFS.
func sameComponent(adj [][]int32, u, v int32) bool {
	seen := make([]bool, len(adj))
	queue := []int32{u}
	seen[u] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if x == v {
			return true
		}
		for _, y := range adj[x] {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return false
}

// addKeepsChordal copies the adjacency, inserts {u,v}, and searches for
// a hole — the ground truth CanAddEdge must match.
func addKeepsChordal(adj [][]int32, u, v int32) bool {
	cp := make([][]int32, len(adj))
	for i := range adj {
		cp[i] = append([]int32(nil), adj[i]...)
	}
	cp[u] = append(cp[u], v)
	cp[v] = append(cp[v], u)
	return verify.FindHole(cp) == nil
}
