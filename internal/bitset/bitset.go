// Package bitset provides dense bit sets used throughout the library for
// vertex marking: a plain single-threaded Set, a concurrency-safe Atomic
// set with compare-and-swap test-and-set semantics, and an EpochSet that
// supports O(1) clearing, which the extraction queues use to deduplicate
// vertex insertions once per iteration.
package bitset

import (
	"math/bits"
	"sync/atomic"
)

const wordBits = 64

// Set is a fixed-size dense bit set. It is not safe for concurrent use.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set able to hold n bits, all initially clear.
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) { s.words[i/wordBits] |= 1 << (uint(i) % wordBits) }

// Clear clears bit i.
func (s *Set) Clear(i int) { s.words[i/wordBits] &^= 1 << (uint(i) % wordBits) }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Atomic is a fixed-size dense bit set safe for concurrent use.
type Atomic struct {
	words []atomic.Uint64
	n     int
}

// NewAtomic returns an Atomic set able to hold n bits, all clear.
func NewAtomic(n int) *Atomic {
	return &Atomic{words: make([]atomic.Uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set in bits.
func (a *Atomic) Len() int { return a.n }

// TestAndSet atomically sets bit i and reports whether it was previously
// clear (that is, whether this call was the one that set it). This is the
// fundamental "claim" operation used to insert a vertex into a queue at
// most once.
func (a *Atomic) TestAndSet(i int) bool {
	w := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|mask) {
			return true
		}
	}
}

// Test reports whether bit i is set.
func (a *Atomic) Test(i int) bool {
	return a.words[i/wordBits].Load()&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i unconditionally.
func (a *Atomic) Set(i int) {
	w := &a.words[i/wordBits]
	mask := uint64(1) << (uint(i) % wordBits)
	for {
		old := w.Load()
		if old&mask != 0 || w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// Count returns the number of set bits. It is linearizable only when no
// concurrent mutation is in flight.
func (a *Atomic) Count() int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i].Load())
	}
	return c
}

// Reset clears every bit. Callers must ensure no concurrent access.
func (a *Atomic) Reset() {
	for i := range a.words {
		a.words[i].Store(0)
	}
}

// Epoch is a single-owner membership set over [0, n) with O(1) clearing:
// a slot is a member exactly when its tag equals the current epoch, so
// Clear is one integer increment instead of an O(n) (or O(members))
// reset. It is the non-atomic sibling of EpochSet, intended for
// per-worker scratch on hot paths — the extraction kernel's hybrid
// subset test and the separator checks of verify.CanAddEdge
// materialize neighborhoods into one of these and discard them per
// vertex or per edge without paying a reset loop.
type Epoch struct {
	tags []uint32
	cur  uint32
}

// NewEpoch returns an Epoch set over [0, n) with an empty membership.
func NewEpoch(n int) *Epoch {
	return &Epoch{tags: make([]uint32, n), cur: 1}
}

// Len returns the capacity of the set.
func (e *Epoch) Len() int { return len(e.tags) }

// Add makes i a member of the current epoch.
func (e *Epoch) Add(i int32) { e.tags[i] = e.cur }

// Contains reports whether i is a member in the current epoch.
func (e *Epoch) Contains(i int32) bool { return e.tags[i] == e.cur }

// Clear empties the set in O(1) by advancing the epoch. After 2^32-1
// epochs the tag space wraps; Clear then pays one full reset to keep
// correctness.
func (e *Epoch) Clear() {
	e.cur++
	if e.cur == 0 { // wrapped: stale tags could alias, so reset them
		for i := range e.tags {
			e.tags[i] = 0
		}
		e.cur = 1
	}
}

// EpochSet is a concurrency-safe membership set over [0, n) whose entire
// contents can be discarded in O(1) by advancing the epoch. A slot is a
// member exactly when its stored tag equals the current epoch. This is
// the structure behind the "if x not in Q2" test of Algorithm 1: each
// while-loop iteration advances the epoch instead of clearing per-vertex
// flags.
type EpochSet struct {
	tags  []atomic.Uint32
	epoch uint32
	n     int
}

// NewEpochSet returns an EpochSet over [0, n) with an empty membership.
func NewEpochSet(n int) *EpochSet {
	return &EpochSet{tags: make([]atomic.Uint32, n), epoch: 1, n: n}
}

// Len returns the capacity of the set.
func (e *EpochSet) Len() int { return e.n }

// TryAdd atomically adds i for the current epoch and reports whether this
// call performed the addition (false if i was already a member).
func (e *EpochSet) TryAdd(i int) bool {
	t := &e.tags[i]
	cur := e.epoch
	for {
		old := t.Load()
		if old == cur {
			return false
		}
		if t.CompareAndSwap(old, cur) {
			return true
		}
	}
}

// Contains reports whether i is a member in the current epoch.
func (e *EpochSet) Contains(i int) bool { return e.tags[i].Load() == e.epoch }

// NextEpoch empties the set in O(1). It must not race with TryAdd.
// After 2^32-1 epochs the tag space wraps; NextEpoch then pays a full
// clear to keep correctness.
func (e *EpochSet) NextEpoch() {
	e.epoch++
	if e.epoch == 0 { // wrapped: stale tags could alias, so clear them
		for i := range e.tags {
			e.tags[i].Store(0)
		}
		e.epoch = 1
	}
}
