package bitset

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetBasic(t *testing.T) {
	s := New(200)
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if s.Test(i) {
			t.Fatalf("bit %d set initially", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatalf("Count after Reset = %d", s.Count())
	}
}

func TestSetProperty(t *testing.T) {
	// Setting an arbitrary collection of bits yields exactly that
	// membership.
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		want := map[int]bool{}
		for _, r := range raw {
			s.Set(int(r))
			want[int(r)] = true
		}
		for _, r := range raw {
			if !s.Test(int(r)) {
				return false
			}
		}
		return s.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicTestAndSet(t *testing.T) {
	a := NewAtomic(100)
	if !a.TestAndSet(5) {
		t.Fatal("first TestAndSet returned false")
	}
	if a.TestAndSet(5) {
		t.Fatal("second TestAndSet returned true")
	}
	if !a.Test(5) {
		t.Fatal("bit not set")
	}
	a.Set(6)
	if !a.Test(6) {
		t.Fatal("Set did not set")
	}
	if a.Count() != 2 {
		t.Fatalf("Count = %d", a.Count())
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestAtomicConcurrentClaims(t *testing.T) {
	// Exactly one goroutine must win each bit.
	const n = 10000
	const workers = 8
	a := NewAtomic(n)
	wins := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if a.TestAndSet(i) {
					wins[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range wins {
		total += c
	}
	if total != n {
		t.Fatalf("total wins %d, want %d", total, n)
	}
	if a.Count() != n {
		t.Fatalf("Count = %d, want %d", a.Count(), n)
	}
}

func TestEpochSetBasic(t *testing.T) {
	e := NewEpochSet(50)
	if e.Len() != 50 {
		t.Fatalf("Len = %d", e.Len())
	}
	if !e.TryAdd(3) {
		t.Fatal("first TryAdd failed")
	}
	if e.TryAdd(3) {
		t.Fatal("duplicate TryAdd succeeded")
	}
	if !e.Contains(3) {
		t.Fatal("Contains(3) false")
	}
	e.NextEpoch()
	if e.Contains(3) {
		t.Fatal("membership survived NextEpoch")
	}
	if !e.TryAdd(3) {
		t.Fatal("TryAdd after NextEpoch failed")
	}
}

func TestEpochSetManyEpochs(t *testing.T) {
	e := NewEpochSet(4)
	for epoch := 0; epoch < 1000; epoch++ {
		for i := 0; i < 4; i++ {
			if !e.TryAdd(i) {
				t.Fatalf("epoch %d: TryAdd(%d) failed", epoch, i)
			}
			if e.TryAdd(i) {
				t.Fatalf("epoch %d: duplicate TryAdd(%d) succeeded", epoch, i)
			}
		}
		e.NextEpoch()
	}
}

func TestEpochSetConcurrent(t *testing.T) {
	const n = 4096
	e := NewEpochSet(n)
	for round := 0; round < 10; round++ {
		var wg sync.WaitGroup
		var winners [8][]int
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if e.TryAdd(i) {
						winners[w] = append(winners[w], i)
					}
				}
			}(w)
		}
		wg.Wait()
		total := 0
		for _, wn := range winners {
			total += len(wn)
		}
		if total != n {
			t.Fatalf("round %d: %d wins, want %d", round, total, n)
		}
		e.NextEpoch()
	}
}

func TestEpochWraparound(t *testing.T) {
	e := NewEpochSet(8)
	e.TryAdd(1)
	// Force the epoch counter to the wrap boundary.
	e.epoch = ^uint32(0)
	e.TryAdd(2)
	e.NextEpoch() // wraps: must clear all tags
	for i := 0; i < 8; i++ {
		if e.Contains(i) {
			t.Fatalf("stale member %d after wraparound", i)
		}
		if !e.TryAdd(i) {
			t.Fatalf("TryAdd(%d) failed after wraparound", i)
		}
	}
}

func TestEpochBasic(t *testing.T) {
	e := NewEpoch(64)
	if e.Len() != 64 {
		t.Fatalf("Len = %d", e.Len())
	}
	for _, i := range []int32{0, 7, 63} {
		if e.Contains(i) {
			t.Fatalf("member %d initially", i)
		}
		e.Add(i)
		if !e.Contains(i) {
			t.Fatalf("Contains(%d) false after Add", i)
		}
	}
	e.Clear()
	for i := int32(0); i < 64; i++ {
		if e.Contains(i) {
			t.Fatalf("membership of %d survived Clear", i)
		}
	}
	e.Add(5)
	if !e.Contains(5) {
		t.Fatal("Add after Clear failed")
	}
}

func TestEpochWrap(t *testing.T) {
	e := NewEpoch(8)
	e.Add(1)
	e.cur = ^uint32(0)
	e.Add(2)
	e.Clear() // wraps: must reset all tags
	for i := int32(0); i < 8; i++ {
		if e.Contains(i) {
			t.Fatalf("stale member %d after wraparound", i)
		}
	}
	e.Add(3)
	if !e.Contains(3) || e.Contains(1) || e.Contains(2) {
		t.Fatal("membership wrong after wraparound")
	}
}

func TestEpochManyClears(t *testing.T) {
	// Membership must track exactly the adds since the last Clear,
	// across many epochs.
	e := NewEpoch(16)
	for round := int32(0); round < 500; round++ {
		member := round % 16
		e.Add(member)
		for i := int32(0); i < 16; i++ {
			if e.Contains(i) != (i == member) {
				t.Fatalf("round %d: Contains(%d) = %v", round, i, e.Contains(i))
			}
		}
		e.Clear()
	}
}

func BenchmarkAtomicTestAndSet(b *testing.B) {
	a := NewAtomic(1 << 20)
	for i := 0; i < b.N; i++ {
		a.TestAndSet(i & (1<<20 - 1))
	}
}
