package elimination

import (
	"testing"

	"chordal/internal/synth"
	"chordal/internal/verify"
)

// FuzzFill fuzzes the elimination game's order validation and counting:
// arbitrary bytes are decoded as a candidate elimination order for a
// fixed graph. Invalid orders (wrong length, repeats, out of range)
// must error cleanly; valid permutations must never panic, never return
// a negative fill count, and must agree with FillCapped when the cap is
// not hit.
//
//	go test -fuzz=FuzzFill -fuzztime=30s -run '^$' ./internal/elimination
func FuzzFill(f *testing.F) {
	g := synth.GNM(24, 60, 7)
	n := g.NumVertices()
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{5, 5, 5, 5})
	// The identity permutation and one rotation as well-formed seeds.
	id := make([]byte, n)
	rot := make([]byte, n)
	for i := range id {
		id[i] = byte(i)
		rot[i] = byte((i + 7) % n)
	}
	f.Add(id)
	f.Add(rot)
	f.Fuzz(func(t *testing.T, raw []byte) {
		order := make([]int32, len(raw))
		for i, b := range raw {
			order[i] = int32(int8(b)) // exercise negative values too
		}
		fill, err := Fill(g, order)
		if err != nil {
			// Must have rejected a genuinely invalid order.
			if isPermutation(order, n) {
				t.Fatalf("valid permutation rejected: %v", err)
			}
			return
		}
		if !isPermutation(order, n) {
			t.Fatalf("invalid order %v accepted", order)
		}
		if fill < 0 {
			t.Fatalf("negative fill %d", fill)
		}
		// A permutation of a fixed graph fills in at most C(n,2) - E edges.
		if maxPossible := int64(n)*int64(n-1)/2 - g.NumEdges(); fill > maxPossible {
			t.Fatalf("fill %d exceeds maximum possible %d", fill, maxPossible)
		}
		// FillCapped with a generous cap must agree exactly and report
		// completion.
		capped, complete, err := FillCapped(g, order, fill+1)
		if err != nil {
			t.Fatalf("FillCapped errored on an order Fill accepted: %v", err)
		}
		if !complete || capped != fill {
			t.Fatalf("FillCapped = (%d, %t), Fill = %d", capped, complete, fill)
		}
		// Zero fill must coincide with the order being a PEO.
		if (fill == 0) != verify.IsPEO(g, order) {
			t.Fatalf("fill %d disagrees with IsPEO=%t", fill, verify.IsPEO(g, order))
		}
	})
}

func isPermutation(order []int32, n int) bool {
	if len(order) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
