// Package elimination implements the sparse-matrix application that
// motivates chordal subgraph extraction as an ordering tool: symbolic
// Gaussian elimination. Eliminating a vertex connects its remaining
// neighbors pairwise; edges created this way are "fill". An ordering
// is fill-free exactly when it is a perfect elimination ordering of a
// chordal graph, so a PEO of a large extracted chordal subgraph is a
// natural fill-reducing ordering for the original graph: all fill is
// confined to the non-chordal remainder.
//
// The package provides exact fill computation for any ordering, the
// classic greedy minimum-degree heuristic as a baseline, and the
// chordal-subgraph-guided ordering built from this library's extractor.
package elimination

import (
	"fmt"
	"sort"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/verify"
)

// Fill runs the elimination game on g in the given vertex order and
// returns the number of fill edges created. order must be a
// permutation of the vertices: order[0] is eliminated first.
// Complexity is O(V + E + fill·Δ'), where Δ' is the degree in the
// partially eliminated graph; exact, not an estimate.
func Fill(g *graph.Graph, order []int32) (int64, error) {
	n := g.NumVertices()
	if len(order) != n {
		return 0, fmt.Errorf("elimination: order length %d != %d vertices", len(order), n)
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n || pos[v] != -1 {
			return 0, fmt.Errorf("elimination: order is not a permutation")
		}
		pos[v] = int32(i)
	}
	// Adjacency among later (not yet eliminated) vertices, as sets.
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]bool, g.Degree(int32(v)))
		for _, w := range g.Neighbors(int32(v)) {
			adj[v][w] = true
		}
	}
	var fill int64
	for _, v := range order {
		// Later neighbors of v.
		later := make([]int32, 0, len(adj[v]))
		for w := range adj[v] {
			if pos[w] > pos[v] {
				later = append(later, w)
			}
		}
		// Pairwise connect them.
		for i := 0; i < len(later); i++ {
			for j := i + 1; j < len(later); j++ {
				a, b := later[i], later[j]
				if !adj[a][b] {
					adj[a][b] = true
					adj[b][a] = true
					fill++
				}
			}
		}
	}
	return fill, nil
}

// NaturalOrder returns the identity ordering 0, 1, ..., n-1.
func NaturalOrder(n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// MinDegreeOrder returns the classic greedy minimum-degree ordering:
// repeatedly eliminate a vertex of smallest degree in the current
// (fill-updated) elimination graph. This is the standard baseline
// fill-reducing heuristic (the ancestor of AMD/METIS orderings).
func MinDegreeOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]bool, g.Degree(int32(v)))
		for _, w := range g.Neighbors(int32(v)) {
			adj[v][w] = true
		}
	}
	eliminated := make([]bool, n)
	order := make([]int32, 0, n)
	// Simple bucket queue on degree with lazy revalidation.
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	cur := 0
	push := func(v int32) {
		d := deg[v]
		for d >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[d] = append(buckets[d], v)
		if d < cur {
			cur = d
		}
	}
	for len(order) < n {
		for cur < len(buckets) && len(buckets[cur]) == 0 {
			cur++
		}
		if cur >= len(buckets) {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if eliminated[v] || deg[v] != cur {
			continue // stale entry
		}
		eliminated[v] = true
		order = append(order, v)
		// Connect v's remaining neighbors pairwise and update degrees.
		var nbrs []int32
		for w := range adj[v] {
			if !eliminated[w] {
				nbrs = append(nbrs, w)
			}
		}
		for i := 0; i < len(nbrs); i++ {
			a := nbrs[i]
			delete(adj[a], v)
			deg[a]--
			for j := i + 1; j < len(nbrs); j++ {
				bb := nbrs[j]
				if !adj[a][bb] {
					adj[a][bb] = true
					adj[bb][a] = true
					deg[a]++
					deg[bb]++
				}
			}
		}
		for _, a := range nbrs {
			push(a)
		}
	}
	return order
}

// ChordalGuidedOrder extracts a maximal chordal subgraph from g and
// returns an elimination ordering of the whole graph that is a perfect
// elimination ordering of the subgraph. All fill under this ordering
// comes from edges outside the chordal subgraph, so a larger extracted
// subgraph directly bounds the fill.
func ChordalGuidedOrder(g *graph.Graph, opts core.Options) ([]int32, error) {
	res, err := core.Extract(g, opts)
	if err != nil {
		return nil, err
	}
	sub := res.ToGraph()
	peo := verify.MCSOrder(sub)
	if !verify.IsPEO(sub, peo) {
		return nil, fmt.Errorf("elimination: extracted subgraph failed PEO validation")
	}
	return peo, nil
}

// CompareOrders evaluates the three orderings on g and returns their
// fill counts keyed by name ("natural", "mindegree", "chordal").
func CompareOrders(g *graph.Graph) (map[string]int64, error) {
	out := make(map[string]int64, 3)
	natural, err := Fill(g, NaturalOrder(g.NumVertices()))
	if err != nil {
		return nil, err
	}
	out["natural"] = natural
	md, err := Fill(g, MinDegreeOrder(g))
	if err != nil {
		return nil, err
	}
	out["mindegree"] = md
	order, err := ChordalGuidedOrder(g, core.Options{})
	if err != nil {
		return nil, err
	}
	cg, err := Fill(g, order)
	if err != nil {
		return nil, err
	}
	out["chordal"] = cg
	return out, nil
}

// SortedKeys returns the comparison keys in stable order, for printing.
func SortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
