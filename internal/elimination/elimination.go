// Package elimination implements the sparse-matrix application that
// motivates chordal subgraph extraction as an ordering tool: symbolic
// Gaussian elimination. Eliminating a vertex connects its remaining
// neighbors pairwise; edges created this way are "fill". An ordering
// is fill-free exactly when it is a perfect elimination ordering of a
// chordal graph, so a PEO of a large extracted chordal subgraph is a
// natural fill-reducing ordering for the original graph: all fill is
// confined to the non-chordal remainder.
//
// The package provides exact fill computation for any ordering, the
// classic greedy minimum-degree heuristic as a baseline, and the
// chordal-subgraph-guided ordering built from this library's extractor.
package elimination

import (
	"fmt"
	"slices"
	"sort"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/verify"
)

// Fill runs the elimination game on g in the given vertex order and
// returns the number of fill edges created. order must be a
// permutation of the vertices: order[0] is eliminated first.
// Complexity is O(V + E + fill·Δ'), where Δ' is the degree in the
// partially eliminated graph; exact, not an estimate.
func Fill(g *graph.Graph, order []int32) (int64, error) {
	fill, _, err := fillGame(g, order, -1, -1)
	return fill, err
}

// FillCapped is Fill with a cost bound: the elimination game is
// abandoned once the fill count exceeds maxFill edges (<= 0 means
// unbounded), returning the partial count and complete=false. A bad
// ordering on a non-chordal graph densifies the elimination graph
// toward completeness, making exact fill Θ(V³); the cap turns
// "measure the fill" into a bounded probe whose work is O(V + E +
// (E + maxFill)·Δ'). The abort criterion counts fill edges and pair
// probes, not time, so capped results stay deterministic.
func FillCapped(g *graph.Graph, order []int32, maxFill int64) (fill int64, complete bool, err error) {
	maxOps := int64(-1)
	if maxFill <= 0 {
		maxFill = -1
	} else {
		// Pair-probe budget: probes either discover fill (bounded by
		// maxFill) or re-find existing edges, which the elimination game
		// revisits at most Δ' times each; 64 passes over the capped edge
		// set is far beyond any run that stays under the fill cap.
		maxOps = 64 * (int64(g.NumVertices()) + g.NumEdges() + maxFill)
	}
	return fillGame(g, order, maxFill, maxOps)
}

// fillGame runs the elimination game on g in the given order, counting
// fill edges. Negative caps disable the corresponding bound.
func fillGame(g *graph.Graph, order []int32, maxFill, maxOps int64) (int64, bool, error) {
	n := g.NumVertices()
	if len(order) != n {
		return 0, false, fmt.Errorf("elimination: order length %d != %d vertices", len(order), n)
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n || pos[v] != -1 {
			return 0, false, fmt.Errorf("elimination: order is not a permutation")
		}
		pos[v] = int32(i)
	}
	// Adjacency among later (not yet eliminated) vertices, as sets.
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]bool, g.Degree(int32(v)))
		for _, w := range g.Neighbors(int32(v)) {
			adj[v][w] = true
		}
	}
	var fill, ops int64
	for _, v := range order {
		// Later neighbors of v.
		later := make([]int32, 0, len(adj[v]))
		for w := range adj[v] {
			if pos[w] > pos[v] {
				later = append(later, w)
			}
		}
		// Pairwise connect them.
		for i := 0; i < len(later); i++ {
			for j := i + 1; j < len(later); j++ {
				a, b := later[i], later[j]
				ops++
				if !adj[a][b] {
					adj[a][b] = true
					adj[b][a] = true
					fill++
				}
			}
			if (maxFill >= 0 && fill > maxFill) || (maxOps >= 0 && ops > maxOps) {
				return fill, false, nil
			}
		}
	}
	return fill, true, nil
}

// NaturalOrder returns the identity ordering 0, 1, ..., n-1.
func NaturalOrder(n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return order
}

// MinDegreeOrder returns the classic greedy minimum-degree ordering:
// repeatedly eliminate a vertex of smallest degree in the current
// (fill-updated) elimination graph. This is the standard baseline
// fill-reducing heuristic (the ancestor of AMD/METIS orderings).
func MinDegreeOrder(g *graph.Graph) []int32 {
	n := g.NumVertices()
	adj := make([]map[int32]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int32]bool, g.Degree(int32(v)))
		for _, w := range g.Neighbors(int32(v)) {
			adj[v][w] = true
		}
	}
	eliminated := make([]bool, n)
	order := make([]int32, 0, n)
	// Simple bucket queue on degree with lazy revalidation.
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int32, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], int32(v))
	}
	cur := 0
	push := func(v int32) {
		d := deg[v]
		for d >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[d] = append(buckets[d], v)
		if d < cur {
			cur = d
		}
	}
	for len(order) < n {
		for cur < len(buckets) && len(buckets[cur]) == 0 {
			cur++
		}
		if cur >= len(buckets) {
			break
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if eliminated[v] || deg[v] != cur {
			continue // stale entry
		}
		eliminated[v] = true
		order = append(order, v)
		// Connect v's remaining neighbors pairwise and update degrees.
		var nbrs []int32
		for w := range adj[v] {
			if !eliminated[w] {
				nbrs = append(nbrs, w)
			}
		}
		// Map iteration order is randomized; sorting keeps the bucket
		// push order — and with it equal-degree tie-breaking — identical
		// across runs, so the ordering (and everything derived from it,
		// like the elimination engine's subgraph) is deterministic.
		slices.Sort(nbrs)
		for i := 0; i < len(nbrs); i++ {
			a := nbrs[i]
			delete(adj[a], v)
			deg[a]--
			for j := i + 1; j < len(nbrs); j++ {
				bb := nbrs[j]
				if !adj[a][bb] {
					adj[a][bb] = true
					adj[bb][a] = true
					deg[a]++
					deg[bb]++
				}
			}
		}
		for _, a := range nbrs {
			push(a)
		}
	}
	return order
}

// ChordalSubgraph returns the chordal subgraph of g induced by the
// elimination order: the largest greedy edge set for which order is a
// perfect elimination ordering. Vertices are processed from the end of
// the order backwards; each vertex v keeps the edge to a later
// neighbor w (scanned in ascending order position) exactly when w is
// adjacent, in the subgraph built so far, to every later neighbor v
// already kept. Edges among vertices later than v are final when v is
// processed, so v's kept later neighborhood is a clique of the result
// and the order is a PEO of it — the result is chordal by
// construction and a subgraph of g, though not necessarily maximal.
// The construction is deterministic in (g, order). Complexity is
// O(V + E·ω) where ω bounds the kept clique sizes.
func ChordalSubgraph(g *graph.Graph, order []int32) (*graph.Graph, error) {
	n := g.NumVertices()
	if len(order) != n {
		return nil, fmt.Errorf("elimination: order length %d != %d vertices", len(order), n)
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n || pos[v] != -1 {
			return nil, fmt.Errorf("elimination: order is not a permutation")
		}
		pos[v] = int32(i)
	}
	kept := make([]map[int32]bool, n)
	var us, vs []int32
	var later, clique []int32
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		later = later[:0]
		for _, w := range g.Neighbors(v) {
			if pos[w] > int32(i) {
				later = append(later, w)
			}
		}
		// Ascending order position: earlier-eliminated later neighbors
		// are offered membership in v's clique first, which mirrors the
		// elimination game's fill pattern and keeps the scan
		// deterministic (CSR neighbor lists are sorted by id, not
		// position).
		slices.SortFunc(later, func(a, b int32) int { return int(pos[a] - pos[b]) })
		clique = clique[:0]
		for _, w := range later {
			ok := true
			for _, k := range clique {
				if !kept[w][k] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			clique = append(clique, w)
			us = append(us, v)
			vs = append(vs, w)
			if kept[v] == nil {
				kept[v] = make(map[int32]bool, len(later))
			}
			if kept[w] == nil {
				kept[w] = make(map[int32]bool, 4)
			}
			kept[v][w] = true
			kept[w][v] = true
		}
	}
	return graph.SubgraphFromEdges(n, us, vs), nil
}

// ChordalGuidedOrder extracts a maximal chordal subgraph from g and
// returns an elimination ordering of the whole graph that is a perfect
// elimination ordering of the subgraph. All fill under this ordering
// comes from edges outside the chordal subgraph, so a larger extracted
// subgraph directly bounds the fill.
func ChordalGuidedOrder(g *graph.Graph, opts core.Options) ([]int32, error) {
	res, err := core.Extract(g, opts)
	if err != nil {
		return nil, err
	}
	sub := res.ToGraph()
	peo := verify.MCSOrder(sub)
	if !verify.IsPEO(sub, peo) {
		return nil, fmt.Errorf("elimination: extracted subgraph failed PEO validation")
	}
	return peo, nil
}

// CompareOrders evaluates the three orderings on g and returns their
// fill counts keyed by name ("natural", "mindegree", "chordal").
func CompareOrders(g *graph.Graph) (map[string]int64, error) {
	out := make(map[string]int64, 3)
	natural, err := Fill(g, NaturalOrder(g.NumVertices()))
	if err != nil {
		return nil, err
	}
	out["natural"] = natural
	md, err := Fill(g, MinDegreeOrder(g))
	if err != nil {
		return nil, err
	}
	out["mindegree"] = md
	order, err := ChordalGuidedOrder(g, core.Options{})
	if err != nil {
		return nil, err
	}
	cg, err := Fill(g, order)
	if err != nil {
		return nil, err
	}
	out["chordal"] = cg
	return out, nil
}

// SortedKeys returns the comparison keys in stable order, for printing.
func SortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
