package elimination

import (
	"testing"
	"testing/quick"

	"chordal/internal/core"
	"chordal/internal/graph"
	"chordal/internal/synth"
	"chordal/internal/verify"
	"chordal/internal/xrand"
)

func buildGraph(n int, edges [][2]int32) *graph.Graph {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestFillKnown(t *testing.T) {
	// Path 0-1-2-3 eliminated in natural order: no fill (each vertex
	// has one later neighbor).
	p4 := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	fill, err := Fill(p4, NaturalOrder(4))
	if err != nil || fill != 0 {
		t.Fatalf("path fill %d (%v)", fill, err)
	}
	// Star center first: eliminating the center clique-connects all
	// leaves: C(4,2) = 6 fill edges.
	star := buildGraph(5, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	fill, err = Fill(star, []int32{0, 1, 2, 3, 4})
	if err != nil || fill != 6 {
		t.Fatalf("star center-first fill %d (%v)", fill, err)
	}
	// Star leaves first: zero fill.
	fill, err = Fill(star, []int32{1, 2, 3, 4, 0})
	if err != nil || fill != 0 {
		t.Fatalf("star leaves-first fill %d (%v)", fill, err)
	}
	// C4 in natural order: eliminating 0 adds {1,3}: 1 fill, rest none.
	c4 := buildGraph(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	fill, err = Fill(c4, NaturalOrder(4))
	if err != nil || fill != 1 {
		t.Fatalf("C4 fill %d (%v)", fill, err)
	}
}

func TestFillRejectsBadOrders(t *testing.T) {
	g := buildGraph(3, [][2]int32{{0, 1}})
	if _, err := Fill(g, []int32{0, 1}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := Fill(g, []int32{0, 1, 1}); err == nil {
		t.Fatal("repeat accepted")
	}
	if _, err := Fill(g, []int32{0, 1, 5}); err == nil {
		t.Fatal("out of range accepted")
	}
}

func TestPEOOfChordalGraphIsFillFree(t *testing.T) {
	// Fundamental theorem: an ordering has zero fill iff it is a PEO;
	// verify on k-trees with their construction-order PEO reversed.
	g := synth.KTree(60, 3, 5)
	peo := verify.MCSOrder(g)
	fill, err := Fill(g, peo)
	if err != nil {
		t.Fatal(err)
	}
	if fill != 0 {
		t.Fatalf("PEO of chordal graph produced %d fill", fill)
	}
}

func TestFillFreeImpliesChordalProperty(t *testing.T) {
	// Property: fill(MCS order) == 0 exactly when the graph is
	// chordal.
	f := func(seed uint64, mRaw uint16) bool {
		rng := xrand.NewXoshiro256(seed)
		n := 20
		b := graph.NewBuilder(n)
		for i := 0; i < int(mRaw%120); i++ {
			b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
		g := b.Build()
		fill, err := Fill(g, verify.MCSOrder(g))
		if err != nil {
			return false
		}
		return (fill == 0) == verify.IsChordal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMinDegreeOrderIsPermutation(t *testing.T) {
	g := synth.GNM(200, 800, 3)
	order := MinDegreeOrder(g)
	if len(order) != 200 {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, 200)
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d repeated", v)
		}
		seen[v] = true
	}
}

func TestMinDegreeBeatsNatural(t *testing.T) {
	// On random sparse graphs minimum degree should (almost always)
	// produce less fill than the natural order.
	g := synth.GNM(150, 450, 7)
	natural, err := Fill(g, NaturalOrder(150))
	if err != nil {
		t.Fatal(err)
	}
	md, err := Fill(g, MinDegreeOrder(g))
	if err != nil {
		t.Fatal(err)
	}
	if md > natural {
		t.Fatalf("min degree fill %d worse than natural %d", md, natural)
	}
}

func TestChordalGuidedOrderZeroFillOnChordal(t *testing.T) {
	// On an already chordal input, the extracted subgraph is the whole
	// graph and the guided order is fill-free.
	g := synth.KTree(80, 2, 11)
	order, err := ChordalGuidedOrder(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill, err := Fill(g, order)
	if err != nil {
		t.Fatal(err)
	}
	if fill != 0 {
		t.Fatalf("guided order on chordal input gave %d fill", fill)
	}
}

func TestFillCappedSemantics(t *testing.T) {
	// Complete small runs match Fill exactly.
	g := synth.GNM(100, 400, 3)
	order := NaturalOrder(100)
	exact, err := Fill(g, order)
	if err != nil {
		t.Fatal(err)
	}
	capped, complete, err := FillCapped(g, order, exact+1)
	if err != nil || !complete || capped != exact {
		t.Fatalf("generous cap: got (%d, %t, %v), want (%d, true, nil)", capped, complete, err, exact)
	}
	// maxFill <= 0 disables the bound entirely.
	capped, complete, err = FillCapped(g, order, 0)
	if err != nil || !complete || capped != exact {
		t.Fatalf("no cap: got (%d, %t, %v), want (%d, true, nil)", capped, complete, err, exact)
	}
	// A cap below the exact fill abandons the run and says so.
	if exact < 2 {
		t.Fatalf("fixture too sparse for the abandon case: exact fill %d", exact)
	}
	capped, complete, err = FillCapped(g, order, exact/2)
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatalf("cap %d below exact fill %d reported complete", exact/2, exact)
	}
	if capped <= exact/2 || capped > exact {
		t.Fatalf("abandoned run returned fill %d, want in (%d, %d]", capped, exact/2, exact)
	}
}

func TestChordalSubgraphProperties(t *testing.T) {
	// On any input and any ordering the result must be a chordal
	// subgraph of the input that admits the ordering as a PEO (zero
	// fill), deterministically.
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		order []int32
	}{
		{"gnm-natural", synth.GNM(300, 1500, 5), NaturalOrder(300)},
		{"gnm-mindeg", synth.GNM(300, 1500, 5), MinDegreeOrder(synth.GNM(300, 1500, 5))},
		{"ws-mindeg", synth.WattsStrogatz(200, 6, 0.1, 9), MinDegreeOrder(synth.WattsStrogatz(200, 6, 0.1, 9))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sub, err := ChordalSubgraph(tc.g, tc.order)
			if err != nil {
				t.Fatal(err)
			}
			if !verify.IsChordal(sub) {
				t.Fatal("result is not chordal")
			}
			for v := 0; v < sub.NumVertices(); v++ {
				for _, w := range sub.Neighbors(int32(v)) {
					if !tc.g.HasEdge(int32(v), w) {
						t.Fatalf("edge {%d,%d} not in input", v, w)
					}
				}
			}
			fill, err := Fill(sub, tc.order)
			if err != nil {
				t.Fatal(err)
			}
			if fill != 0 {
				t.Fatalf("order is not a PEO of the result: fill %d", fill)
			}
			again, err := ChordalSubgraph(tc.g, tc.order)
			if err != nil {
				t.Fatal(err)
			}
			if sub.NumEdges() != again.NumEdges() {
				t.Fatalf("nondeterministic: %d then %d edges", sub.NumEdges(), again.NumEdges())
			}
		})
	}
}

func TestChordalSubgraphOfChordalInputIsIdentity(t *testing.T) {
	// A PEO of a chordal graph keeps every edge: the greedy clique test
	// never rejects when the later neighborhood is already a clique.
	g := synth.KTree(150, 4, 11)
	peo := verify.MCSOrder(g)
	sub, err := ChordalSubgraph(g, peo)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != g.NumEdges() {
		t.Fatalf("kept %d of %d edges of a chordal input under its own PEO", sub.NumEdges(), g.NumEdges())
	}
}

func TestChordalSubgraphRejectsBadOrders(t *testing.T) {
	g := buildGraph(3, [][2]int32{{0, 1}})
	for _, order := range [][]int32{{0, 1}, {0, 1, 1}, {0, 1, 5}, {0, -1, 2}} {
		if _, err := ChordalSubgraph(g, order); err == nil {
			t.Fatalf("order %v accepted", order)
		}
	}
}

func TestCompareOrders(t *testing.T) {
	g, _ := synth.KTreePlusNoise(120, 3, 60, 9)
	fills, err := CompareOrders(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"natural", "mindegree", "chordal"} {
		if _, ok := fills[k]; !ok {
			t.Fatalf("missing key %s", k)
		}
	}
	keys := SortedKeys(fills)
	if len(keys) != 3 || keys[0] != "chordal" {
		t.Fatalf("keys %v", keys)
	}
	// The guided order must beat natural on a noised k-tree (most fill
	// confined to the 60 noise edges).
	if fills["chordal"] > fills["natural"] {
		t.Fatalf("chordal-guided fill %d worse than natural %d", fills["chordal"], fills["natural"])
	}
}
