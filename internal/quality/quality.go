// Package quality computes the paper's comparison axes for an
// extracted chordal subgraph: how much of the input the extraction
// retained, and how useful the subgraph is downstream. The metrics are
// shared by RunReport.Quality (every `chordal -json` run), the
// benchrunner engine bake-off matrix, and the differential test grid,
// so every engine is scored with exactly the same code.
//
// The three metric groups mirror the evaluation dimensions of the
// paper: edge retention (the paper's §V chordal-edge percentages),
// fill-in under the subgraph's perfect elimination ordering (the
// sparse-elimination application — all fill comes from edges outside
// the chordal subgraph, so a better extraction means less fill), and
// the linear-time chordal-graph invariants (treewidth and chromatic
// number of the subgraph, exact because the subgraph is chordal).
package quality

import (
	"fmt"

	"chordal/internal/chordalalg"
	"chordal/internal/elimination"
	"chordal/internal/graph"
	"chordal/internal/verify"
)

// Metrics scores one extracted chordal subgraph against its input
// graph. The zero value of a group's *Computed flag means the group
// was skipped by the Limits, not that it measured zero.
type Metrics struct {
	// EdgesInput and EdgesRetained size the input and the subgraph;
	// RetentionPct is the percentage of input edges kept (the paper's
	// §V metric).
	EdgesInput    int64   `json:"edgesInput"`
	EdgesRetained int64   `json:"edgesRetained"`
	RetentionPct  float64 `json:"retentionPct"`
	// FillComputed reports whether the elimination metrics ran (they
	// are skipped above Limits.MaxFillEdges). FillIn is the number of
	// fill edges symbolic elimination creates on the INPUT graph under
	// the subgraph's PEO — the application-level quality of the
	// extraction (every fill edge traces to an input edge the
	// extraction dropped). SubgraphFill is the same count on the
	// subgraph itself under its own PEO and must be exactly 0 for any
	// chordal subgraph; it is kept as a cross-implementation self-check
	// rather than assumed.
	FillComputed bool  `json:"fillComputed"`
	FillIn       int64 `json:"fillIn"`
	SubgraphFill int64 `json:"subgraphFill"`
	// CliquesComputed reports whether the chordal-graph invariants ran
	// (skipped above Limits.MaxCliqueVertices). Treewidth and
	// ChromaticNumber are exact on the subgraph (linear-time via its
	// PEO); MaxCliqueSize = Treewidth + 1 is recorded explicitly for
	// readability.
	CliquesComputed bool `json:"cliquesComputed"`
	Treewidth       int  `json:"treewidth"`
	ChromaticNumber int  `json:"chromaticNumber"`
	MaxCliqueSize   int  `json:"maxCliqueSize"`
}

// Limits bounds the expensive metric groups; the cheap retention
// ratio is always computed. The zero value computes everything.
type Limits struct {
	// MaxFillEdges abandons the input-fill metric once the elimination
	// game has created this many fill edges (fill grows toward Θ(V²) on
	// a bad ordering, and measuring it exactly costs Θ(V³) there); the
	// metric is then reported as skipped, never as a partial count.
	// <= 0 means no bound.
	MaxFillEdges int64
	// MaxCliqueVertices skips treewidth/coloring when the subgraph has
	// more vertices. <= 0 means no bound.
	MaxCliqueVertices int
}

// DefaultLimits bounds the fill probe to about a million fill edges —
// comfortably past any fill a decent extraction leaves behind on
// CI-sized inputs, while keeping always-on quality reporting bounded
// when an ordering densifies the elimination graph.
func DefaultLimits() Limits {
	return Limits{MaxFillEdges: 1 << 20, MaxCliqueVertices: 1 << 20}
}

// Compute scores sub against its input graph g. sub must be chordal
// and defined over the same vertex set; a non-chordal sub (no PEO) is
// an error, never a bogus score.
func Compute(g, sub *graph.Graph, lim Limits) (*Metrics, error) {
	if g.NumVertices() != sub.NumVertices() {
		return nil, fmt.Errorf("quality: subgraph has %d vertices, input %d", sub.NumVertices(), g.NumVertices())
	}
	m := &Metrics{
		EdgesInput:    g.NumEdges(),
		EdgesRetained: sub.NumEdges(),
	}
	if m.EdgesInput > 0 {
		m.RetentionPct = 100 * float64(m.EdgesRetained) / float64(m.EdgesInput)
	}
	peo := verify.MCSOrder(sub)
	if !verify.IsPEO(sub, peo) {
		return nil, fmt.Errorf("quality: subgraph is not chordal")
	}
	// The subgraph is chordal under peo, so its own fill game is linear
	// and needs no cap; the input-fill probe is where a bad ordering
	// can densify, so it carries the bound.
	subFill, _, err := elimination.FillCapped(sub, peo, lim.MaxFillEdges)
	if err != nil {
		return nil, err
	}
	fillIn, complete, err := elimination.FillCapped(g, peo, lim.MaxFillEdges)
	if err != nil {
		return nil, err
	}
	if complete {
		m.SubgraphFill = subFill
		m.FillIn = fillIn
		m.FillComputed = true
	}
	if lim.MaxCliqueVertices <= 0 || sub.NumVertices() <= lim.MaxCliqueVertices {
		var err error
		if m.Treewidth, err = chordalalg.Treewidth(sub); err != nil {
			return nil, err
		}
		if m.ChromaticNumber, err = chordalalg.ChromaticNumber(sub); err != nil {
			return nil, err
		}
		m.MaxCliqueSize = m.Treewidth + 1
		m.CliquesComputed = true
	}
	return m, nil
}
