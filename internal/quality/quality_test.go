package quality

import (
	"testing"

	"chordal/internal/graph"
	"chordal/internal/synth"
)

func TestComputeOnChordalIdentity(t *testing.T) {
	// Scoring a chordal graph against itself: full retention, zero fill
	// both ways, and the exact k-tree invariants.
	g := synth.KTree(120, 4, 7)
	m, err := Compute(g, g, DefaultLimits())
	if err != nil {
		t.Fatal(err)
	}
	if m.EdgesInput != g.NumEdges() || m.EdgesRetained != g.NumEdges() || m.RetentionPct != 100 {
		t.Fatalf("identity retention: %+v", m)
	}
	if !m.FillComputed || m.FillIn != 0 || m.SubgraphFill != 0 {
		t.Fatalf("identity fill: %+v", m)
	}
	if !m.CliquesComputed || m.Treewidth != 4 || m.MaxCliqueSize != 5 || m.ChromaticNumber != 5 {
		t.Fatalf("k-tree invariants: %+v", m)
	}
}

func TestComputeRejectsMismatchedAndNonChordal(t *testing.T) {
	g := synth.KTree(50, 3, 1)
	if _, err := Compute(g, synth.KTree(40, 3, 1), DefaultLimits()); err == nil {
		t.Fatal("vertex-count mismatch accepted")
	}
	// C4 is not chordal: no PEO, so no score.
	b := graph.NewBuilder(50)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	if _, err := Compute(g, b.Build(), DefaultLimits()); err == nil {
		t.Fatal("non-chordal subgraph accepted")
	}
}

func TestComputeLimitsSkipGroups(t *testing.T) {
	g, _ := synth.KTreePlusNoise(200, 3, 400, 9)
	sub := synth.KTree(200, 3, 9) // the noiseless core is a subgraph
	// A one-edge fill cap abandons the input-fill probe on a noised
	// input; a tiny vertex bound skips the clique group.
	m, err := Compute(g, sub, Limits{MaxFillEdges: 1, MaxCliqueVertices: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.FillComputed {
		t.Fatalf("fill probe not abandoned under cap 1: %+v", m)
	}
	if m.FillIn != 0 || m.SubgraphFill != 0 {
		t.Fatalf("abandoned probe leaked a partial count: %+v", m)
	}
	if m.CliquesComputed {
		t.Fatalf("clique group ran over the vertex bound: %+v", m)
	}
	if m.EdgesRetained != sub.NumEdges() {
		t.Fatalf("retention always computed: %+v", m)
	}
}
