// Package sched implements the service's weighted-fair job scheduler
// and admission-control layer: the replacement for the one global FIFO
// semaphore that could not survive multi-tenant traffic (one heavy
// tenant starved everyone and the queue grew without bound).
//
// # Model
//
// Every job belongs to a tenant and carries a cost estimate. The
// scheduler runs start-time fair queueing (SFQ, the virtual-time form
// of weighted fair queueing): each tenant keeps a FIFO of pending
// tickets, a ticket enqueued by tenant t is tagged with the virtual
// start time
//
//	S = max(V, F_t)        F_t ← S + cost/weight_t
//
// where V is the scheduler's virtual clock (the start tag of the most
// recently dispatched ticket) and F_t the tenant's running virtual
// finish. Whenever a run slot is free, the ticket with the smallest
// start tag among eligible tenants is dispatched; ties break by tenant
// name so the order is deterministic. Backlogged tenants therefore
// converge to service shares proportional to their weights, and a
// light tenant's first job is tagged at the current virtual clock —
// ahead of every queued ticket of a flooding tenant — which bounds its
// wait by the in-service work plus one quantum (the starvation-freedom
// invariant pinned by the package tests).
//
// Priority classes sit above the virtual clock: an eligible ticket of
// a higher-priority tenant always dispatches before any lower class,
// with SFQ fairness applying within each class.
//
// # Admission control
//
// Enqueue sheds instead of queueing without bound: a tenant whose
// token-bucket rate limit is exhausted, whose own pending queue is
// full, or who would overflow the global pending bound receives a
// *ShedError carrying a Retry-After hint — rate shortfall for the
// bucket, queue-ahead divided by the observed drain rate for full
// queues. Per-tenant running quotas (MaxConcurrent) cap how many slots
// one tenant may hold at once regardless of backlog.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// TenantConfig is one tenant's scheduling policy. The zero value is a
// weight-1, priority-0 tenant with no rate limit, no running quota,
// and the scheduler-default queue bound.
type TenantConfig struct {
	// Weight is the tenant's relative service share under contention;
	// <= 0 means 1. A weight-3 tenant backlogged against a weight-1
	// tenant receives 3x the dispatches.
	Weight int `json:"weight,omitempty"`
	// Priority is the tenant's class; an eligible higher-priority
	// ticket always dispatches before any lower one. Default 0.
	Priority int `json:"priority,omitempty"`
	// MaxQueue bounds the tenant's pending queue; <= 0 inherits the
	// scheduler's global bound. Submissions past it are shed.
	MaxQueue int `json:"maxQueue,omitempty"`
	// MaxConcurrent caps how many run slots the tenant may hold at
	// once; <= 0 means no per-tenant cap (the global slot count still
	// applies).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// RatePerSec is the tenant's token-bucket refill rate in
	// admissions per second; 0 means unlimited.
	RatePerSec float64 `json:"ratePerSec,omitempty"`
	// Burst is the token-bucket capacity; <= 0 means
	// max(1, ceil(RatePerSec)).
	Burst int `json:"burst,omitempty"`
}

// Config sizes a Scheduler.
type Config struct {
	// Slots is the number of concurrently dispatched jobs; <= 0 means 2.
	Slots int
	// MaxQueue bounds total pending tickets across all tenants; 0
	// means 4096, negative disables the global bound (per-tenant
	// bounds still apply, themselves defaulting to 4096).
	MaxQueue int
	// DefaultTenant is the policy template for tenants without an
	// explicit entry in Tenants — including the default (empty-name)
	// tenant every unattributed request maps to.
	DefaultTenant TenantConfig
	// Tenants holds per-tenant policy overrides keyed by tenant name.
	Tenants map[string]TenantConfig
	// Clock overrides the time source; nil means time.Now. Tests use
	// it to drive the rate limiter and wait accounting virtually.
	Clock func() time.Time
}

// defaultMaxQueue is the pending bound applied when a Config leaves
// MaxQueue zero: bounded by default is the whole point of the layer.
const defaultMaxQueue = 4096

// Shed reasons reported by ShedError.
const (
	// ShedRateLimited: the tenant's token bucket is empty.
	ShedRateLimited = "rate limited"
	// ShedTenantQueueFull: the tenant's pending queue is at its bound.
	ShedTenantQueueFull = "tenant queue full"
	// ShedGlobalQueueFull: the scheduler-wide pending bound is reached.
	ShedGlobalQueueFull = "global queue full"
)

// ShedError is the admission-control rejection: the request was not
// enqueued and should be retried after RetryAfter. The HTTP layer maps
// it to 429 with a Retry-After header.
type ShedError struct {
	// Tenant is the shed tenant's name ("" is the default tenant).
	Tenant string
	// Reason is one of the Shed* constants.
	Reason string
	// RetryAfter is the suggested backoff: the token-bucket shortfall
	// for rate sheds, queue-ahead over the observed drain rate for
	// full queues; always at least one second.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("sched: %s (tenant %q, retry after %s)", e.Reason, e.Tenant, e.RetryAfter)
}

// ErrClosed rejects tickets and enqueues once the scheduler has shut
// down.
var ErrClosed = errors.New("sched: scheduler closed")

// Ticket states.
const (
	stateQueued = iota
	stateDispatched
	stateDone
	stateCanceled
)

// Ticket is one queued or running job's handle on the scheduler. The
// owner must Wait for dispatch and call Done when the job finishes (or
// abandon via Wait's context, which removes a still-queued ticket).
type Ticket struct {
	s      *Scheduler
	tenant *tenant
	cost   int64
	start  float64 // virtual start tag
	ready  chan struct{}

	// Owned by s.mu.
	state      int
	err        error
	enqueuedAt time.Time
	dispatched time.Time
}

// Scheduler is the weighted-fair queue. Create with New; Close on
// shutdown fails every still-queued ticket.
type Scheduler struct {
	cfg Config
	now func() time.Time

	mu      sync.Mutex
	closed  bool
	tenants map[string]*tenant
	order   []*tenant // deterministic iteration: sorted by (priority desc, name)
	vtime   float64
	running int
	queued  int
	shed    int64
	// drainRate is an EWMA of ticket completions per second, the
	// denominator of queue-full Retry-After hints.
	drainRate float64
	lastDone  time.Time
}

// tenant is the per-tenant scheduler state; all fields owned by
// Scheduler.mu.
type tenant struct {
	name  string
	cfg   TenantConfig
	queue []*Ticket
	// finish is the tenant's running virtual finish tag F_t.
	finish  float64
	running int
	// Token bucket.
	tokens     float64
	lastRefill time.Time
	// Stats.
	served      int64
	servedCost  int64
	shed        int64
	rateLimited int64
	waitTotal   time.Duration
}

// New creates a Scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Slots <= 0 {
		cfg.Slots = 2
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = defaultMaxQueue
	}
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &Scheduler{cfg: cfg, now: now, tenants: make(map[string]*tenant)}
}

// weight returns the tenant's effective weight.
func (t *tenant) weight() int {
	if t.cfg.Weight <= 0 {
		return 1
	}
	return t.cfg.Weight
}

// eligible reports whether the tenant has a dispatchable head: pending
// work and a free slot under its running quota.
func (t *tenant) eligible() bool {
	if len(t.queue) == 0 {
		return false
	}
	return t.cfg.MaxConcurrent <= 0 || t.running < t.cfg.MaxConcurrent
}

// tenantLocked finds or creates the named tenant's state, resolving
// its policy from Config.Tenants with DefaultTenant as the template.
func (s *Scheduler) tenantLocked(name string) *tenant {
	if t, ok := s.tenants[name]; ok {
		return t
	}
	cfg, ok := s.cfg.Tenants[name]
	if !ok {
		cfg = s.cfg.DefaultTenant
	}
	t := &tenant{name: name, cfg: cfg, lastRefill: s.now()}
	if cfg.RatePerSec > 0 {
		t.tokens = float64(t.burst())
	}
	s.tenants[name] = t
	s.order = append(s.order, t)
	sort.SliceStable(s.order, func(i, j int) bool {
		a, b := s.order[i], s.order[j]
		if a.cfg.Priority != b.cfg.Priority {
			return a.cfg.Priority > b.cfg.Priority
		}
		return a.name < b.name
	})
	return t
}

// burst returns the tenant's effective token-bucket capacity.
func (t *tenant) burst() int {
	if t.cfg.Burst > 0 {
		return t.cfg.Burst
	}
	return int(math.Max(1, math.Ceil(t.cfg.RatePerSec)))
}

// takeToken refills and consumes one rate token, or reports how long
// until one is available.
func (t *tenant) takeToken(now time.Time) (bool, time.Duration) {
	if t.cfg.RatePerSec <= 0 {
		return true, 0
	}
	elapsed := now.Sub(t.lastRefill).Seconds()
	if elapsed > 0 {
		t.tokens = math.Min(float64(t.burst()), t.tokens+elapsed*t.cfg.RatePerSec)
		t.lastRefill = now
	}
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	wait := time.Duration((1 - t.tokens) / t.cfg.RatePerSec * float64(time.Second))
	return false, wait
}

// maxQueue returns the tenant's effective pending bound.
func (s *Scheduler) maxQueue(t *tenant) int {
	if t.cfg.MaxQueue > 0 {
		return t.cfg.MaxQueue
	}
	if s.cfg.MaxQueue > 0 {
		return s.cfg.MaxQueue
	}
	return defaultMaxQueue
}

// clampRetry bounds a Retry-After hint to [1s, 5m]: sub-second hints
// invite immediate re-stampedes and anything past minutes is a guess.
func clampRetry(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > 5*time.Minute {
		return 5 * time.Minute
	}
	return d
}

// retryAfterLocked estimates how long until ahead queued tickets drain,
// from the completion-rate EWMA (falling back to one slot-second per
// job before any completion has been observed).
func (s *Scheduler) retryAfterLocked(ahead int) time.Duration {
	rate := s.drainRate
	if rate <= 0 {
		rate = float64(s.cfg.Slots)
	}
	return clampRetry(time.Duration(float64(ahead+1) / rate * float64(time.Second)))
}

// Enqueue admits one job of the given cost (clamped to >= 1) for the
// named tenant and returns its Ticket, or a *ShedError when admission
// control rejects it: the tenant's rate bucket is empty, its queue is
// full, or the global pending bound is reached. The ticket dispatches
// immediately when a slot is free and the tenant is next in fair
// order.
func (s *Scheduler) Enqueue(tenantName string, cost int64) (*Ticket, error) {
	if cost < 1 {
		cost = 1
	}
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	t := s.tenantLocked(tenantName)
	if ok, wait := t.takeToken(now); !ok {
		t.rateLimited++
		t.shed++
		s.shed++
		return nil, &ShedError{Tenant: tenantName, Reason: ShedRateLimited, RetryAfter: clampRetry(wait)}
	}
	if len(t.queue) >= s.maxQueue(t) {
		t.shed++
		s.shed++
		return nil, &ShedError{Tenant: tenantName, Reason: ShedTenantQueueFull, RetryAfter: s.retryAfterLocked(len(t.queue))}
	}
	if s.cfg.MaxQueue > 0 && s.queued >= s.cfg.MaxQueue {
		t.shed++
		s.shed++
		return nil, &ShedError{Tenant: tenantName, Reason: ShedGlobalQueueFull, RetryAfter: s.retryAfterLocked(s.queued)}
	}
	start := math.Max(s.vtime, t.finish)
	t.finish = start + float64(cost)/float64(t.weight())
	tk := &Ticket{
		s:          s,
		tenant:     t,
		cost:       cost,
		start:      start,
		ready:      make(chan struct{}),
		state:      stateQueued,
		enqueuedAt: now,
	}
	t.queue = append(t.queue, tk)
	s.queued++
	s.dispatchLocked()
	return tk, nil
}

// AdmitSession applies only the tenant's token-bucket rate limit — the
// admission path for requests that never enter the run queue, like
// stream-session opens. It returns a *ShedError when the bucket is
// empty and nil otherwise.
func (s *Scheduler) AdmitSession(tenantName string) error {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tenantLocked(tenantName)
	if ok, wait := t.takeToken(now); !ok {
		t.rateLimited++
		t.shed++
		s.shed++
		return &ShedError{Tenant: tenantName, Reason: ShedRateLimited, RetryAfter: clampRetry(wait)}
	}
	return nil
}

// FreeQueue reports how many more tickets the named tenant could
// enqueue right now before hitting its own or the global pending bound
// — a conservative capacity snapshot (it consumes no rate tokens and
// another submitter may race it) used by the batch fan-out to shed
// oversized batches up front.
func (s *Scheduler) FreeQueue(tenantName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.tenantLocked(tenantName)
	free := s.maxQueue(t) - len(t.queue)
	if s.cfg.MaxQueue > 0 {
		if g := s.cfg.MaxQueue - s.queued; g < free {
			free = g
		}
	}
	if free < 0 {
		free = 0
	}
	return free
}

// CheckCapacity reports whether n more enqueues could overflow the
// tenant's or the global pending bound, as a *ShedError carrying the
// usual drain-rate Retry-After hint (nil when there is room). It is
// deliberately conservative — a batch whose items would all dedup onto
// cached results still counts n fresh slots — and consumes nothing, so
// a concurrent submitter can still race the reservation; the batch
// fan-out uses it to shed oversized batches before creating any job.
func (s *Scheduler) CheckCapacity(tenantName string, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tenantLocked(tenantName)
	if len(t.queue)+n > s.maxQueue(t) {
		return &ShedError{Tenant: tenantName, Reason: ShedTenantQueueFull, RetryAfter: s.retryAfterLocked(len(t.queue) + n)}
	}
	if s.cfg.MaxQueue > 0 && s.queued+n > s.cfg.MaxQueue {
		return &ShedError{Tenant: tenantName, Reason: ShedGlobalQueueFull, RetryAfter: s.retryAfterLocked(s.queued + n)}
	}
	return nil
}

// dispatchLocked fills free run slots: while one is open, the eligible
// ticket with the highest tenant priority and, within the class, the
// smallest virtual start tag (ties by tenant name, then FIFO) is
// dispatched. Callers hold s.mu.
func (s *Scheduler) dispatchLocked() {
	for s.running < s.cfg.Slots {
		var best *tenant
		for _, t := range s.order { // sorted priority desc, name asc
			if !t.eligible() {
				continue
			}
			if best == nil {
				best = t
				continue
			}
			if t.cfg.Priority < best.cfg.Priority {
				break // order is priority-sorted; no better candidate follows
			}
			if t.queue[0].start < best.queue[0].start {
				best = t
			}
		}
		if best == nil {
			return
		}
		tk := best.queue[0]
		best.queue = best.queue[1:]
		s.queued--
		s.running++
		best.running++
		best.served++
		best.servedCost += tk.cost
		now := s.now()
		best.waitTotal += now.Sub(tk.enqueuedAt)
		if tk.start > s.vtime {
			s.vtime = tk.start
		}
		tk.state = stateDispatched
		tk.dispatched = now
		close(tk.ready)
	}
}

// removeLocked takes a still-queued ticket out of its tenant's queue.
func (s *Scheduler) removeLocked(tk *Ticket) {
	q := tk.tenant.queue
	for i, other := range q {
		if other == tk {
			tk.tenant.queue = append(q[:i], q[i+1:]...)
			s.queued--
			break
		}
	}
}

// finishLocked releases a dispatched ticket's slot, folds the
// completion into the drain-rate EWMA, and dispatches successors.
func (s *Scheduler) finishLocked(tk *Ticket) {
	tk.state = stateDone
	s.running--
	tk.tenant.running--
	now := s.now()
	if !s.lastDone.IsZero() {
		if dt := now.Sub(s.lastDone).Seconds(); dt > 0 {
			inst := 1 / dt
			if s.drainRate <= 0 {
				s.drainRate = inst
			} else {
				s.drainRate = 0.7*s.drainRate + 0.3*inst
			}
		}
	}
	s.lastDone = now
	s.dispatchLocked()
}

// Wait blocks until the ticket is dispatched into a run slot, the
// context is done, or the scheduler closes. A nil return means the
// caller holds a slot and must call Done when the job finishes; any
// error return means the ticket is fully released (a still-queued
// ticket is removed, a dispatch that raced the cancellation is undone)
// and Done must not be called.
func (t *Ticket) Wait(ctx context.Context) error {
	select {
	case <-t.ready:
	case <-ctx.Done():
	}
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	switch t.state {
	case stateDispatched:
		if ctx.Err() != nil {
			// The dispatch raced the cancellation; give the slot back.
			s.finishLocked(t)
			return ctx.Err()
		}
		return nil
	case stateQueued:
		// Only a ctx fire gets here (ready is closed before leaving
		// the queued state on every other path).
		t.state = stateCanceled
		s.removeLocked(t)
		return ctx.Err()
	case stateCanceled:
		if t.err != nil {
			return t.err
		}
		return ErrClosed
	default: // stateDone: Wait after Done is a caller bug; report closed.
		return ErrClosed
	}
}

// Done releases the run slot of a dispatched ticket and dispatches
// successors. Idempotent; a no-op for tickets that never dispatched.
func (t *Ticket) Done() {
	s := t.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.state == stateDispatched {
		s.finishLocked(t)
	}
}

// Dispatched reports whether the ticket currently holds a run slot.
func (t *Ticket) Dispatched() bool {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	return t.state == stateDispatched
}

// Position returns the ticket's 1-based place in its tenant's pending
// queue, or 0 once dispatched (or otherwise out of the queue).
func (t *Ticket) Position() int {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.state != stateQueued {
		return 0
	}
	for i, other := range t.tenant.queue {
		if other == t {
			return i + 1
		}
	}
	return 0
}

// QueueWait returns how long the ticket sat queued before dispatch
// (zero until dispatched).
func (t *Ticket) QueueWait() time.Duration {
	t.s.mu.Lock()
	defer t.s.mu.Unlock()
	if t.dispatched.IsZero() {
		return 0
	}
	return t.dispatched.Sub(t.enqueuedAt)
}

// Tenant returns the ticket's tenant name.
func (t *Ticket) Tenant() string { return t.tenant.name }

// Close shuts the scheduler down: every still-queued ticket fails with
// ErrClosed (waking its Wait) and further Enqueues are rejected.
// Dispatched tickets are unaffected; their Done still releases
// normally. Safe to call more than once.
func (s *Scheduler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for _, t := range s.order {
		for _, tk := range t.queue {
			tk.state = stateCanceled
			tk.err = ErrClosed
			close(tk.ready)
		}
		t.queue = nil
	}
	s.queued = 0
}

// TenantStats is one tenant's scheduler counters in a Stats snapshot.
type TenantStats struct {
	// Tenant is the tenant name; the default (empty-name) tenant
	// reports as "default".
	Tenant string `json:"tenant"`
	// Weight and Priority echo the effective policy.
	Weight   int `json:"weight"`
	Priority int `json:"priority,omitempty"`
	// Queued and Running are current occupancy; MaxQueue and
	// MaxConcurrent the effective bounds (0 = uncapped concurrency).
	Queued        int `json:"queued"`
	Running       int `json:"running"`
	MaxQueue      int `json:"maxQueue"`
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// Served counts dispatched tickets and ServedCost their summed
	// cost; ServedSharePct is the tenant's share of all served cost —
	// the number the fairness grid pins against Weight/ΣWeights.
	Served         int64   `json:"served"`
	ServedCost     int64   `json:"servedCost"`
	ServedSharePct float64 `json:"servedSharePct"`
	// Shed counts admission rejections, RateLimited the subset shed by
	// the token bucket.
	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rateLimited,omitempty"`
	// AvgWaitMillis is the mean queue wait of dispatched tickets.
	AvgWaitMillis float64 `json:"avgWaitMillis"`
}

// Stats is a point-in-time snapshot of the scheduler, served by the
// service's metrics endpoints.
type Stats struct {
	// Slots, Running and Queued are global occupancy; MaxQueue the
	// global pending bound (0 = unbounded).
	Slots    int `json:"slots"`
	Running  int `json:"running"`
	Queued   int `json:"queued"`
	MaxQueue int `json:"maxQueue"`
	// Shed counts all admission rejections since start.
	Shed int64 `json:"shed"`
	// DrainPerSec is the completion-rate EWMA behind queue-full
	// Retry-After hints.
	DrainPerSec float64 `json:"drainPerSec"`
	// Tenants holds per-tenant counters, priority-then-name ordered.
	Tenants []TenantStats `json:"tenants"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Slots:       s.cfg.Slots,
		Running:     s.running,
		Queued:      s.queued,
		Shed:        s.shed,
		DrainPerSec: s.drainRate,
	}
	if s.cfg.MaxQueue > 0 {
		st.MaxQueue = s.cfg.MaxQueue
	}
	var totalCost int64
	for _, t := range s.order {
		totalCost += t.servedCost
	}
	for _, t := range s.order {
		ts := TenantStats{
			Tenant:        t.name,
			Weight:        t.weight(),
			Priority:      t.cfg.Priority,
			Queued:        len(t.queue),
			Running:       t.running,
			MaxQueue:      s.maxQueue(t),
			MaxConcurrent: t.cfg.MaxConcurrent,
			Served:        t.served,
			ServedCost:    t.servedCost,
			Shed:          t.shed,
			RateLimited:   t.rateLimited,
		}
		if ts.Tenant == "" {
			ts.Tenant = "default"
		}
		if totalCost > 0 {
			ts.ServedSharePct = 100 * float64(t.servedCost) / float64(totalCost)
		}
		if t.served > 0 {
			ts.AvgWaitMillis = float64(t.waitTotal.Microseconds()) / 1000 / float64(t.served)
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st
}
