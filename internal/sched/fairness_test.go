package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file is the scheduler property grid (run under -race in CI):
// weighted shares converge to w_i/Σw for backlogged tenants, and a
// flooding tenant cannot delay a light tenant's job beyond a bounded
// number of dispatches — the two invariants the service's fairness
// story rests on, exercised through real concurrent Wait/Done traffic
// rather than the virtual-time harness.

// TestSchedFairShare backlogs N tenants with weights 1, 2, 3 and
// uniform cost-1 jobs, serves them through concurrent waiter
// goroutines, and asserts each tenant's share of the first window of
// dispatches converges to w_i/Σw within tolerance.
func TestSchedFairShare(t *testing.T) {
	weights := map[string]int{"a": 1, "b": 2, "c": 3}
	tenants := map[string]TenantConfig{}
	totalWeight := 0
	for name, w := range weights {
		tenants[name] = TenantConfig{Weight: w}
		totalWeight += w
	}
	s := New(Config{Slots: 2, MaxQueue: -1, Tenants: tenants})
	defer s.Close()

	// Backlog every tenant fully before serving begins, so the
	// measurement window never sees an idle queue.
	const perTenant = 240
	const window = 3 * perTenant / 2 // half the jobs: all tenants still backlogged
	type served struct {
		tenant string
		seq    int64
	}
	var (
		seq     atomic.Int64
		mu      sync.Mutex
		order   []served
		tickets []*Ticket
		names   []string
	)
	for name := range weights {
		for i := 0; i < perTenant; i++ {
			tk, err := s.Enqueue(name, 1)
			if err != nil {
				t.Fatalf("Enqueue(%q): %v", name, err)
			}
			tickets = append(tickets, tk)
			names = append(names, name)
		}
	}
	var wg sync.WaitGroup
	for i, tk := range tickets {
		wg.Add(1)
		go func(tk *Ticket, name string) {
			defer wg.Done()
			if err := tk.Wait(context.Background()); err != nil {
				t.Errorf("Wait(%q): %v", name, err)
				return
			}
			n := seq.Add(1)
			mu.Lock()
			order = append(order, served{name, n})
			mu.Unlock()
			tk.Done()
		}(tk, names[i])
	}
	wg.Wait()

	counts := map[string]int{}
	for _, sv := range order {
		if sv.seq <= window {
			counts[sv.tenant]++
		}
	}
	for name, w := range weights {
		got := float64(counts[name]) / float64(window)
		want := float64(w) / float64(totalWeight)
		// ±20% relative tolerance absorbs the slots=2 in-flight skew
		// and wake-order jitter under -race.
		if got < 0.8*want || got > 1.2*want {
			t.Errorf("tenant %s served share %.3f over the first %d dispatches, want %.3f ±20%% (counts %v)",
				name, got, window, want, counts)
		}
	}

	// The scheduler's own accounting agrees over the full run: equal
	// job counts were submitted, so final served counts are equal, but
	// cost shares during contention were weight-proportional — checked
	// via zero leftover occupancy and the stats invariants.
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("occupancy after drain: queued %d running %d, want 0, 0", st.Queued, st.Running)
	}
	for _, ts := range st.Tenants {
		if ts.Served != perTenant {
			t.Errorf("tenant %s served %d, want %d", ts.Tenant, ts.Served, perTenant)
		}
	}
}

// TestSchedStarvationFree floods one tenant's queue, lets service
// begin, then submits a single job from a light tenant: SFQ tags the
// light job at the current virtual clock — ahead of the flood's
// backlog — so it must dispatch within a handful of subsequent
// completions, never after the flood drains.
func TestSchedStarvationFree(t *testing.T) {
	s := New(Config{Slots: 1, MaxQueue: -1})
	defer s.Close()

	const flood = 400
	var dispatches atomic.Int64
	floodTickets := make([]*Ticket, 0, flood)
	for i := 0; i < flood; i++ {
		tk, err := s.Enqueue("flood", 1)
		if err != nil {
			t.Fatalf("Enqueue(flood): %v", err)
		}
		floodTickets = append(floodTickets, tk)
	}

	// Serve the flood one completion at a time from a single worker,
	// injecting the light tenant's job partway through.
	var wg sync.WaitGroup
	for _, tk := range floodTickets {
		wg.Add(1)
		go func(tk *Ticket) {
			defer wg.Done()
			if err := tk.Wait(context.Background()); err != nil {
				t.Errorf("flood Wait: %v", err)
				return
			}
			dispatches.Add(1)
			tk.Done()
		}(tk)
	}

	// Wait until the flood is genuinely mid-service.
	deadline := time.Now().Add(5 * time.Second)
	for dispatches.Load() < 50 {
		if time.Now().After(deadline) {
			t.Fatal("flood never started draining")
		}
		time.Sleep(time.Millisecond)
	}

	light, err := s.Enqueue("light", 1)
	if err != nil {
		t.Fatalf("Enqueue(light): %v", err)
	}
	at := dispatches.Load()
	done := make(chan int64, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := light.Wait(context.Background()); err != nil {
			t.Errorf("light Wait: %v", err)
			done <- -1
			return
		}
		n := dispatches.Load()
		light.Done()
		done <- n
	}()

	select {
	case n := <-done:
		if n < 0 {
			t.FailNow()
		}
		// The bound: the in-service flood job plus wake jitter. A FIFO
		// queue would have made this ~flood-at; SFQ makes it O(1).
		const bound = 8
		if n-at > bound {
			t.Errorf("light tenant waited %d flood dispatches (enqueued at %d, served at %d), want <= %d",
				n-at, at, n, bound)
		}
		if n-at > flood/4 {
			t.Fatalf("light tenant effectively starved: %d dispatches of delay", n-at)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("light tenant's job never dispatched: starved behind the flood")
	}
	wg.Wait()
}
