package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source: the unit suite drives
// the scheduler entirely in virtual time, so dispatch order, rate
// limiting, and Retry-After hints are exact rather than timing-prone.
type fakeClock struct{ t time.Time }

func (c *fakeClock) Now() time.Time                { return c.t }
func (c *fakeClock) Advance(d time.Duration)       { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                     { return &fakeClock{t: time.Unix(1000, 0)} }
func clockConfig(c *fakeClock, cfg Config) Config { cfg.Clock = c.Now; return cfg }

// mustEnqueue enqueues or fails the test.
func mustEnqueue(t *testing.T, s *Scheduler, tenant string, cost int64) *Ticket {
	t.Helper()
	tk, err := s.Enqueue(tenant, cost)
	if err != nil {
		t.Fatalf("Enqueue(%q, %d): %v", tenant, cost, err)
	}
	return tk
}

// nextDispatched finds which of the still-pending tickets became
// dispatched after the last Done, asserting exactly one did.
func nextDispatched(t *testing.T, pending map[string][]*Ticket) string {
	t.Helper()
	var name string
	var tk *Ticket
	for tenant, q := range pending {
		if len(q) > 0 && q[0].Dispatched() {
			if tk != nil {
				t.Fatalf("two tickets dispatched at once (%s and %s)", name, tenant)
			}
			name, tk = tenant, q[0]
		}
	}
	if tk == nil {
		t.Fatal("no ticket dispatched")
	}
	pending[name] = pending[name][1:]
	tk.Done()
	return name
}

// TestSFQWeightedOrder pins the DRR/WFQ core deterministically: with
// one slot and uniform cost-1 jobs, backlogged tenants of weight 1 and
// 2 are served in a 1:2 interleave fixed by their virtual start tags.
func TestSFQWeightedOrder(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{
		Slots:   1,
		Tenants: map[string]TenantConfig{"a": {Weight: 1}, "b": {Weight: 2}},
	}))
	// Occupy the slot so the backlog builds before any fair pick.
	gate := mustEnqueue(t, s, "gate", 1)
	if !gate.Dispatched() {
		t.Fatal("first ticket on an idle scheduler did not dispatch")
	}
	pending := map[string][]*Ticket{}
	for i := 0; i < 3; i++ {
		pending["a"] = append(pending["a"], mustEnqueue(t, s, "a", 1))
	}
	for i := 0; i < 6; i++ {
		pending["b"] = append(pending["b"], mustEnqueue(t, s, "b", 1))
	}
	gate.Done()

	// Tags: a = 0, 1, 2; b = 0, 0.5, 1, 1.5, 2, 2.5. Ties break by
	// name, so the exact order is a b b | a b b | a b b.
	want := []string{"a", "b", "b", "a", "b", "b", "a", "b", "b"}
	for i, w := range want {
		if got := nextDispatched(t, pending); got != w {
			t.Fatalf("dispatch %d: got tenant %s, want %s (want order %v)", i, got, w, want)
		}
	}
}

// TestSFQCostWeighting pins cost accounting: a tenant submitting
// cost-4 jobs against a same-weight tenant's cost-1 jobs gets one
// dispatch per four of the other's — fair shares are measured in cost,
// not job count.
func TestSFQCostWeighting(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{Slots: 1}))
	gate := mustEnqueue(t, s, "gate", 1)
	pending := map[string][]*Ticket{}
	for i := 0; i < 2; i++ {
		pending["big"] = append(pending["big"], mustEnqueue(t, s, "big", 4))
	}
	for i := 0; i < 8; i++ {
		pending["small"] = append(pending["small"], mustEnqueue(t, s, "small", 1))
	}
	gate.Done()

	// Tags: big = 0, 4; small = 0, 1, ..., 7. "big" wins the tag-0 tie
	// by name, then four smalls run before big's second job (tag 4).
	want := []string{"big", "small", "small", "small", "small", "big", "small", "small", "small", "small"}
	for i, w := range want {
		if got := nextDispatched(t, pending); got != w {
			t.Fatalf("dispatch %d: got tenant %s, want %s", i, got, w)
		}
	}
}

// TestPriorityClasses: an eligible higher-priority tenant always
// dispatches before lower classes, regardless of virtual tags.
func TestPriorityClasses(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{
		Slots:   1,
		Tenants: map[string]TenantConfig{"urgent": {Priority: 10}},
	}))
	gate := mustEnqueue(t, s, "gate", 1)
	pending := map[string][]*Ticket{}
	for i := 0; i < 4; i++ {
		pending["batch"] = append(pending["batch"], mustEnqueue(t, s, "batch", 1))
	}
	// The urgent tenant arrives last, with tags far behind batch's.
	pending["urgent"] = append(pending["urgent"], mustEnqueue(t, s, "urgent", 1), mustEnqueue(t, s, "urgent", 1))
	gate.Done()

	want := []string{"urgent", "urgent", "batch", "batch", "batch", "batch"}
	for i, w := range want {
		if got := nextDispatched(t, pending); got != w {
			t.Fatalf("dispatch %d: got tenant %s, want %s", i, got, w)
		}
	}
}

// TestTenantQuota: MaxConcurrent caps a tenant's simultaneous slots;
// the surplus slot goes to another tenant (or idles) even though the
// capped tenant has backlog.
func TestTenantQuota(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{
		Slots:   2,
		Tenants: map[string]TenantConfig{"capped": {MaxConcurrent: 1}},
	}))
	c1 := mustEnqueue(t, s, "capped", 1)
	c2 := mustEnqueue(t, s, "capped", 1)
	if !c1.Dispatched() {
		t.Fatal("first capped ticket not dispatched")
	}
	if c2.Dispatched() {
		t.Fatal("quota violated: tenant holds two slots with MaxConcurrent 1")
	}
	other := mustEnqueue(t, s, "other", 1)
	if !other.Dispatched() {
		t.Fatal("free slot not granted to the uncapped tenant")
	}
	c1.Done()
	if !c2.Dispatched() {
		t.Fatal("capped tenant's next ticket not dispatched after its slot freed")
	}
	c2.Done()
	other.Done()
}

// TestQueueBounds pins both shed paths: the per-tenant bound, then the
// global bound, each with a positive clamped Retry-After.
func TestQueueBounds(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{
		Slots:    1,
		MaxQueue: 3,
		Tenants:  map[string]TenantConfig{"small": {MaxQueue: 1}},
	}))
	gate := mustEnqueue(t, s, "gate", 1) // occupies the slot
	defer gate.Done()

	mustEnqueue(t, s, "small", 1)
	_, err := s.Enqueue("small", 1)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedTenantQueueFull {
		t.Fatalf("tenant overflow: err %v, want ShedTenantQueueFull", err)
	}
	if shed.RetryAfter < time.Second || shed.RetryAfter > 5*time.Minute {
		t.Fatalf("tenant shed RetryAfter %v outside [1s, 5m]", shed.RetryAfter)
	}

	mustEnqueue(t, s, "other", 1)
	mustEnqueue(t, s, "other", 1) // global queue now 3/3
	_, err = s.Enqueue("third", 1)
	if !errors.As(err, &shed) || shed.Reason != ShedGlobalQueueFull {
		t.Fatalf("global overflow: err %v, want ShedGlobalQueueFull", err)
	}
	if got := s.Stats().Shed; got != 2 {
		t.Fatalf("stats shed = %d, want 2", got)
	}
	if free := s.FreeQueue("other"); free != 0 {
		t.Fatalf("FreeQueue with a full global queue = %d, want 0", free)
	}
}

// TestRateLimit drives the token bucket in virtual time: burst 1 at
// 2/s admits one, sheds the next with a ~500ms (clamped to 1s) hint,
// and admits again after the refill.
func TestRateLimit(t *testing.T) {
	clock := newFakeClock()
	s := New(clockConfig(clock, Config{
		Slots:   4,
		Tenants: map[string]TenantConfig{"limited": {RatePerSec: 2, Burst: 1}},
	}))
	tk := mustEnqueue(t, s, "limited", 1)
	tk.Done()
	_, err := s.Enqueue("limited", 1)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedRateLimited {
		t.Fatalf("second admission in the same instant: err %v, want ShedRateLimited", err)
	}
	if shed.RetryAfter != time.Second { // 500ms shortfall, clamped up to 1s
		t.Fatalf("rate shed RetryAfter %v, want 1s", shed.RetryAfter)
	}
	clock.Advance(600 * time.Millisecond)
	tk2, err := s.Enqueue("limited", 1)
	if err != nil {
		t.Fatalf("post-refill admission: %v", err)
	}
	tk2.Done()
	// AdmitSession shares the same bucket.
	if err := s.AdmitSession("limited"); err == nil {
		t.Fatal("AdmitSession admitted with an empty bucket")
	}
	clock.Advance(time.Second)
	if err := s.AdmitSession("limited"); err != nil {
		t.Fatalf("AdmitSession after refill: %v", err)
	}
	st := s.Stats()
	for _, ts := range st.Tenants {
		if ts.Tenant == "limited" && ts.RateLimited != 2 {
			t.Fatalf("rateLimited = %d, want 2", ts.RateLimited)
		}
	}
}

// TestCancelWhileQueued: a context fire removes a queued ticket from
// its tenant's queue with no slot held and position accounting intact.
func TestCancelWhileQueued(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{Slots: 1}))
	gate := mustEnqueue(t, s, "gate", 1)
	a := mustEnqueue(t, s, "t", 1)
	b := mustEnqueue(t, s, "t", 1)
	if a.Position() != 1 || b.Position() != 2 {
		t.Fatalf("positions %d, %d, want 1, 2", a.Position(), b.Position())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on canceled ctx: %v", err)
	}
	if b.Position() != 1 {
		t.Fatalf("position after cancel = %d, want 1", b.Position())
	}
	if got := s.Stats().Queued; got != 1 {
		t.Fatalf("queued after cancel = %d, want 1", got)
	}
	gate.Done()
	if err := b.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if w := b.QueueWait(); w < 0 {
		t.Fatalf("negative queue wait %v", w)
	}
	b.Done()
	if st := s.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Fatalf("running %d queued %d after drain, want 0, 0", st.Running, st.Queued)
	}
}

// TestCloseFailsQueued: Close wakes every queued Wait with ErrClosed,
// rejects further enqueues, and leaves dispatched tickets to finish.
func TestCloseFailsQueued(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{Slots: 1}))
	running := mustEnqueue(t, s, "t", 1)
	queued := mustEnqueue(t, s, "t", 1)
	s.Close()
	if err := queued.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("queued Wait after Close: %v, want ErrClosed", err)
	}
	if _, err := s.Enqueue("t", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after Close: %v, want ErrClosed", err)
	}
	if !running.Dispatched() {
		t.Fatal("dispatched ticket lost its slot on Close")
	}
	running.Done()
	s.Close() // idempotent
}

// TestDrainRateRetryAfter: completions spaced 100ms apart in virtual
// time converge the drain EWMA near 10/s, so a queue-full shed with 3
// ahead suggests ~max(1s, 4/10s) = 1s and a deeper queue scales up.
func TestDrainRateRetryAfter(t *testing.T) {
	clock := newFakeClock()
	s := New(clockConfig(clock, Config{Slots: 1, MaxQueue: 40}))
	for i := 0; i < 20; i++ {
		tk := mustEnqueue(t, s, "t", 1)
		clock.Advance(100 * time.Millisecond)
		tk.Done()
	}
	st := s.Stats()
	if st.DrainPerSec < 5 || st.DrainPerSec > 15 {
		t.Fatalf("drain EWMA %.2f/s, want ~10/s", st.DrainPerSec)
	}
	gate := mustEnqueue(t, s, "t", 1)
	defer gate.Done()
	for i := 0; i < 40; i++ {
		mustEnqueue(t, s, "t", 1)
	}
	_, err := s.Enqueue("t", 1)
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("overflow err %v", err)
	}
	// 40 ahead at ~10/s → ~4s, far under the 5m clamp.
	if shed.RetryAfter < 2*time.Second || shed.RetryAfter > 10*time.Second {
		t.Fatalf("RetryAfter %v, want ~4s from the drain rate", shed.RetryAfter)
	}
}

// TestStatsServedShare: the per-tenant served-share accounting that
// the fairness grid asserts against sums to 100 and tracks cost.
func TestStatsServedShare(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{Slots: 1}))
	for i := 0; i < 3; i++ {
		mustEnqueue(t, s, "a", 1).Done()
	}
	mustEnqueue(t, s, "b", 3).Done()
	st := s.Stats()
	var sum float64
	for _, ts := range st.Tenants {
		sum += ts.ServedSharePct
		if ts.Tenant == "a" && (ts.Served != 3 || ts.ServedCost != 3 || ts.ServedSharePct != 50) {
			t.Fatalf("tenant a stats %+v, want served 3, cost 3, share 50", ts)
		}
		if ts.Tenant == "b" && (ts.Served != 1 || ts.ServedCost != 3) {
			t.Fatalf("tenant b stats %+v, want served 1, cost 3", ts)
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("served shares sum to %.2f, want 100", sum)
	}
}

// TestDefaultTenantTemplate: tenants without an explicit entry inherit
// DefaultTenant's policy; the empty name reports as "default".
func TestDefaultTenantTemplate(t *testing.T) {
	s := New(clockConfig(newFakeClock(), Config{
		Slots:         1,
		DefaultTenant: TenantConfig{Weight: 5, MaxQueue: 2},
	}))
	mustEnqueue(t, s, "", 1).Done()
	st := s.Stats()
	if len(st.Tenants) != 1 {
		t.Fatalf("tenant count %d, want 1", len(st.Tenants))
	}
	ts := st.Tenants[0]
	if ts.Tenant != "default" || ts.Weight != 5 || ts.MaxQueue != 2 {
		t.Fatalf("default tenant stats %+v, want name default, weight 5, maxQueue 2", ts)
	}
}
