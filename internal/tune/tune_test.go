package tune

import (
	"testing"

	"chordal/internal/parallel"
)

func TestCalibrateSane(t *testing.T) {
	p := Calibrate()
	if p.Source != "calibrated" {
		t.Fatalf("Source = %q", p.Source)
	}
	found := false
	for _, g := range grainCandidates {
		if p.Grain == g {
			found = true
		}
	}
	if !found {
		t.Fatalf("Grain = %d not among candidates %v", p.Grain, grainCandidates)
	}
	if p.DegreeThreshold < 8 || p.DegreeThreshold > 512 {
		t.Fatalf("DegreeThreshold = %d outside [8, 512]", p.DegreeThreshold)
	}
	if p.CPUs < 1 || p.MaxProcs < 1 {
		t.Fatalf("CPUs = %d, MaxProcs = %d", p.CPUs, p.MaxProcs)
	}
	if p.CalibrationTime <= 0 {
		t.Fatalf("CalibrationTime = %v", p.CalibrationTime)
	}
}

func TestResolveOff(t *testing.T) {
	env := map[string]string{"CHORDAL_TUNE": "off"}
	p := resolve(func(k string) string { return env[k] })
	if p.Source != "off" {
		t.Fatalf("Source = %q, want off", p.Source)
	}
	if p.Grain != DefaultGrain || p.DegreeThreshold != DefaultDegreeThreshold {
		t.Fatalf("off profile = %+v, want defaults", p)
	}
}

func TestResolveEnvOverrides(t *testing.T) {
	env := map[string]string{
		"CHORDAL_TUNE":           "off", // skip measurement for test speed
		"CHORDAL_TUNE_GRAIN":     "128",
		"CHORDAL_TUNE_THRESHOLD": "-1",
	}
	p := resolve(func(k string) string { return env[k] })
	if p.Source != "env" {
		t.Fatalf("Source = %q, want env", p.Source)
	}
	if p.Grain != 128 {
		t.Fatalf("Grain = %d, want 128", p.Grain)
	}
	if p.DegreeThreshold != -1 {
		t.Fatalf("DegreeThreshold = %d, want -1", p.DegreeThreshold)
	}
}

func TestResolveBadEnvIgnored(t *testing.T) {
	env := map[string]string{
		"CHORDAL_TUNE":           "off",
		"CHORDAL_TUNE_GRAIN":     "not-a-number",
		"CHORDAL_TUNE_THRESHOLD": "",
	}
	p := resolve(func(k string) string { return env[k] })
	if p.Grain != DefaultGrain || p.DegreeThreshold != DefaultDegreeThreshold {
		t.Fatalf("bad env changed profile: %+v", p)
	}
}

func TestCurrentMemoized(t *testing.T) {
	a := Current()
	b := Current()
	if a != b {
		t.Fatalf("Current not stable: %+v vs %+v", a, b)
	}
	if a.Grain < 1 {
		t.Fatalf("Grain = %d", a.Grain)
	}
}

func TestThresholdFor(t *testing.T) {
	cal := Profile{DegreeThreshold: 40, Source: "calibrated"}
	cases := []struct {
		name     string
		p        Profile
		maxDeg   int
		vertices int
		edges    int64
		want     int
	}{
		// The measured kernel-suite shapes: skewed graphs keep the
		// calibrated threshold, the uniformly dense k-tree (avg degree
		// 95 >= 40, the 0.92x regression) and hub-free graphs (max
		// degree below the threshold) disable the hybrid outright.
		{"rmat-b skewed hubs", cal, 660, 4096, 55300, 40},
		{"gnm moderate", cal, 57, 4096, 65536, 40},
		{"ktree uniform dense", cal, 2858, 3000, 142824, -1},
		{"rmat-er hub-free", cal, 34, 16384, 131008, -1},
		{"ws hub-free", cal, 23, 10000, 79990, -1},
		{"avg exactly at threshold", cal, 100, 100, 2000, -1},
		{"env pin wins", Profile{DegreeThreshold: 40, Source: "env"}, 2858, 3000, 142824, 40},
		{"already disabled", Profile{DegreeThreshold: -1, Source: "calibrated"}, 660, 4096, 55300, -1},
		{"empty graph", cal, 0, 0, 0, 40},
	}
	for _, tc := range cases {
		if got := tc.p.ThresholdFor(tc.maxDeg, tc.vertices, tc.edges); got != tc.want {
			t.Errorf("%s: ThresholdFor(%d, %d, %d) = %d, want %d",
				tc.name, tc.maxDeg, tc.vertices, tc.edges, got, tc.want)
		}
	}
}

func TestEstimateTrace(t *testing.T) {
	tr := EstimateTrace(1000, 5000)
	if len(tr.QueueSize) != 3 || len(tr.Work) != 3 {
		t.Fatalf("trace shape: %+v", tr)
	}
	for i := 0; i < 3; i++ {
		if tr.QueueSize[i] < 1 {
			t.Fatalf("QueueSize[%d] = %d", i, tr.QueueSize[i])
		}
		if i > 0 && tr.QueueSize[i] > tr.QueueSize[i-1] {
			t.Fatal("queue sizes must shrink")
		}
	}
	if tr.WorkingSetBytes <= 0 {
		t.Fatalf("WorkingSetBytes = %d", tr.WorkingSetBytes)
	}
	// Degenerate inputs must not panic or produce zero queues.
	tiny := EstimateTrace(1, 0)
	for _, q := range tiny.QueueSize {
		if q < 1 {
			t.Fatalf("tiny queue %d", q)
		}
	}
}

func TestWidthBounds(t *testing.T) {
	tr := EstimateTrace(1<<20, 1<<23)
	for _, limit := range []int{1, 2, 8, 32} {
		w, name := Width(tr, limit)
		if w < 1 || w > limit {
			t.Fatalf("Width(limit=%d) = %d", limit, w)
		}
		if name == "" {
			t.Fatal("empty model name")
		}
	}
	// Default limit uses local parallelism.
	w, _ := Width(tr, 0)
	if w < 1 || w > parallel.WorkerCount(0) {
		t.Fatalf("Width(limit=0) = %d", w)
	}
}

func TestWidthTinyWorkloadStaysNarrow(t *testing.T) {
	// A trivially small workload must not ask for a wide machine: the
	// model's per-core barrier cost dominates, so the argmin sits at or
	// near one core.
	tr := EstimateTrace(64, 128)
	w, _ := Width(tr, 32)
	if w > 4 {
		t.Fatalf("tiny workload picked width %d", w)
	}
}
