// Package tune calibrates the machine-dependent kernel parameters at
// process startup: the grain (chunk size) of the dynamic parallel-for
// that drives every extraction iteration, and the degree threshold at
// which the subset test switches from merge scan to the hybrid bitset
// probe. Both are pure speed knobs — they never change an extracted
// edge set — so the calibration is free to be approximate; its job is
// only to avoid pathological settings on hardware the defaults were
// not picked on.
//
// Calibration is a few hundred microseconds of micro-benchmarks run
// once per process (Current memoizes). It can be bypassed entirely
// with CHORDAL_TUNE=off, and individual decisions can be pinned with
// CHORDAL_TUNE_GRAIN and CHORDAL_TUNE_THRESHOLD, which take precedence
// over measurement — the escape hatch for reproducing a run exactly on
// different hardware.
//
// The package also answers "how wide should this job run": Width feeds
// a workload trace (estimated from graph size, or recorded from a real
// run) to the analytic cache-CPU model of internal/machine and picks
// the processor count with the smallest predicted runtime, clamped to
// the hardware limit. On a machine with few cores this degenerates to
// using them all; its value is on wide machines where the model knows
// that small inputs stop scaling long before machine width.
package tune

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"chordal/internal/bitset"
	"chordal/internal/machine"
	"chordal/internal/parallel"
)

// Defaults used when calibration is disabled or inconclusive; they
// match the built-in defaults of internal/core.
const (
	DefaultGrain           = 64
	DefaultDegreeThreshold = 32
)

// grainCandidates is the sweep grid of calibrateGrain, spanning the
// plausible range: small grains balance skewed work, large grains
// amortize the atomic block counter.
var grainCandidates = []int{16, 64, 256, 1024}

// Profile is the calibrated kernel configuration of this process.
type Profile struct {
	// Grain is the parallel.For chunk size for the extraction loop.
	Grain int
	// DegreeThreshold is the chordal-set size at which the hybrid
	// bitset subset test takes over from the merge scan.
	DegreeThreshold int
	// CPUs and MaxProcs record the hardware and runtime widths the
	// profile was calibrated under.
	CPUs     int
	MaxProcs int
	// CalibrationTime is the wall-clock cost of Calibrate (0 when the
	// profile came from defaults or the environment).
	CalibrationTime time.Duration
	// Source records how the profile was decided: "calibrated", "env"
	// (at least one value pinned by environment), "off" (CHORDAL_TUNE=off,
	// defaults used).
	Source string
}

var (
	once    sync.Once
	current Profile
)

// Current returns the process-wide profile, calibrating on first use.
// CHORDAL_TUNE=off skips measurement; CHORDAL_TUNE_GRAIN and
// CHORDAL_TUNE_THRESHOLD pin individual values.
func Current() Profile {
	once.Do(func() { current = resolve(os.Getenv) })
	return current
}

// resolve computes the profile under the given environment lookup
// (parameterized for tests).
func resolve(getenv func(string) string) Profile {
	var p Profile
	if getenv("CHORDAL_TUNE") == "off" {
		p = Profile{
			Grain:           DefaultGrain,
			DegreeThreshold: DefaultDegreeThreshold,
			CPUs:            runtime.NumCPU(),
			MaxProcs:        runtime.GOMAXPROCS(0),
			Source:          "off",
		}
	} else {
		p = Calibrate()
	}
	if v, ok := envInt(getenv, "CHORDAL_TUNE_GRAIN"); ok && v > 0 {
		p.Grain = v
		p.Source = "env"
	}
	if v, ok := envInt(getenv, "CHORDAL_TUNE_THRESHOLD"); ok && v != 0 {
		p.DegreeThreshold = v
		p.Source = "env"
	}
	return p
}

func envInt(getenv func(string) string, key string) (int, bool) {
	s := getenv(key)
	if s == "" {
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Calibrate measures the grain and degree-threshold micro-benchmarks
// and returns the resulting profile. It is cheap (sub-millisecond
// scale) but not free; most callers want the memoized Current.
func Calibrate() Profile {
	start := time.Now()
	p := Profile{
		Grain:           calibrateGrain(),
		DegreeThreshold: calibrateThreshold(),
		CPUs:            runtime.NumCPU(),
		MaxProcs:        runtime.GOMAXPROCS(0),
		Source:          "calibrated",
	}
	p.CalibrationTime = time.Since(start)
	return p
}

// calibrateGrain times a skew-free synthetic loop body under each
// candidate grain and returns the fastest (preferring the larger grain
// on a near-tie, since larger grains also reduce contention on skewed
// real workloads the synthetic body cannot model).
func calibrateGrain() int {
	const n = 1 << 15
	data := make([]int64, 1024)
	for i := range data {
		data[i] = int64(i)*2654435761 + 1
	}
	sinks := parallel.NewPadded[int64](parallel.WorkerCount(0))
	best, bestT := DefaultGrain, time.Duration(0)
	for _, grain := range grainCandidates {
		var elapsed time.Duration
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			parallel.For(n, 0, grain, func(worker, i int) {
				sinks[worker].V ^= data[i&1023]
			})
			if d := time.Since(t0); rep == 0 || d < elapsed {
				elapsed = d
			}
		}
		// Prefer the larger grain unless it is measurably (>5%) slower.
		if bestT == 0 || elapsed*100 < bestT*105 {
			best, bestT = grain, elapsed
		}
	}
	return best
}

// calibrateThreshold measures the per-element costs of the two subset
// tests — merge scan versus epoch-set materialize-and-probe — and
// solves for the set size where the probe's amortized cost wins,
// assuming a hub's materialized set is reused across reuse children
// with small child sets (the shape hub-heavy inputs actually have).
func calibrateThreshold() int {
	const (
		size   = 256 // parent-set size used for per-element cost measurement
		probes = 8   // child-set size per test
		reuse  = 8   // assumed tests per materialization
		reps   = 64
	)
	cp := make([]int32, size)
	for i := range cp {
		cp[i] = int32(2 * i)
	}
	cw := make([]int32, probes)
	for i := range cw {
		cw[i] = cp[i*(size/probes)]
	}

	sink := 0
	t0 := time.Now()
	for r := 0; r < reps; r++ {
		i := 0
		for _, x := range cw {
			for i < len(cp) && cp[i] < x {
				i++
			}
			if i < len(cp) && cp[i] == x {
				sink++
			}
		}
		// The merge scan pays for the whole parent set on accepting
		// tests; finish the walk to model that full cost.
		sink += len(cp) - i
	}
	scanPerElem := float64(time.Since(t0)) / float64(reps*size)

	set := bitset.NewEpoch(2 * size)
	t0 = time.Now()
	for r := 0; r < reps; r++ {
		set.Clear()
		for _, x := range cp {
			set.Add(x)
		}
	}
	matPerElem := float64(time.Since(t0)) / float64(reps*size)

	set.Clear()
	for _, x := range cp {
		set.Add(x)
	}
	t0 = time.Now()
	for r := 0; r < reps*size/probes; r++ {
		for _, x := range cw {
			if set.Contains(x) {
				sink++
			}
		}
	}
	probePerElem := float64(time.Since(t0)) / float64(reps*size)
	_ = sink

	// Break-even set size T: reuse tests by merge scan cost
	// reuse·T·scan; by hybrid they cost T·mat (one materialization)
	// plus reuse·probes·probe.
	denom := reuse*scanPerElem - matPerElem
	if denom <= 0 {
		return DefaultDegreeThreshold
	}
	t := int(float64(reuse*probes)*probePerElem/denom) + 1
	// Clamp to sanity: below 8 the bookkeeping dominates either way,
	// above 512 the measurement is telling us probes are unusually
	// slow, which the clamp treats as noise.
	if t < 8 {
		t = 8
	}
	if t > 512 {
		t = 512
	}
	return t
}

// ThresholdFor adapts the profile's hybrid threshold to one graph's
// degree shape. The hybrid probe only pays off when hubs are rare —
// a few large chordal sets materialized once and probed by many small
// children. Two cheap degree statistics detect the shapes where that
// assumption fails, and both disable the hybrid (threshold -1) so the
// kernel runs the pure merge scan:
//
//   - maxDegree < threshold: no chordal set can ever reach the
//     threshold, so the hybrid branch is dead weight on every test.
//   - average degree >= threshold: essentially every vertex is a "hub",
//     so the kernel materializes constantly and the per-materialization
//     reuse the break-even model assumes never happens. This is the
//     k-tree shape (uniformly dense) that regressed to 0.92x.
//
// Values pinned by the environment (Source "env") and explicit spec
// values (resolved before this is consulted) are never overridden —
// they are the reproduce-exactly escape hatch. The check is pure
// arithmetic on the degree summary, deterministic across machines, and
// never changes the extracted edge set (the threshold is a speed knob).
func (p Profile) ThresholdFor(maxDegree, vertices int, edges int64) int {
	t := p.DegreeThreshold
	if t <= 0 || p.Source == "env" || vertices == 0 {
		return t
	}
	if maxDegree < t {
		return -1
	}
	if avg := float64(2*edges) / float64(vertices); avg >= float64(t) {
		return -1
	}
	return t
}

// EstimateTrace synthesizes a workload trace for an extraction over a
// graph of the given size without running it: the dataflow schedule's
// typical shape of a few geometrically shrinking iterations, with scan
// work proportional to the edge count and the working set of the CSR
// plus chordal storage (the same formula machine.TraceFromResult uses).
func EstimateTrace(vertices int, edges int64) machine.Trace {
	t := machine.Trace{
		QueueSize:       make([]int, 3),
		Work:            make([]int64, 3),
		WorkingSetBytes: 24*int64(vertices) + 12*edges,
	}
	q := vertices / 2
	w := 4 * edges // scan both directions plus subset-test traffic
	for i := 0; i < 3; i++ {
		if q < 1 {
			q = 1
		}
		t.QueueSize[i] = q
		t.Work[i] = w
		q /= 4
		w /= 4
	}
	return t
}

// Width returns the worker count in [1, limit] with the smallest
// runtime predicted by the cache-CPU model for the traced workload,
// evaluated on the power-of-two axis, together with the model's name.
// limit <= 0 means the effective local parallelism.
func Width(t machine.Trace, limit int) (int, string) {
	m := machine.DefaultCacheCPU()
	if limit <= 0 {
		limit = parallel.WorkerCount(0)
	}
	best := 1
	var bestT time.Duration
	for i, p := range machine.PowersOfTwo(limit) {
		d := m.Predict(t, p)
		if i == 0 || d < bestT {
			best, bestT = p, d
		}
	}
	return best, m.Name()
}
