// Package worklist provides the frontier substrate for the extraction
// algorithm: a dual-frontier queue (the paper's Q1/Q2) with per-worker
// insertion buffers and epoch-based membership deduplication.
//
// The dynamically scheduled parallel-for that drives iteration over a
// frontier lives in the shared chordal/internal/parallel runtime
// (parallel.For).
package worklist

import (
	"chordal/internal/bitset"
)

// Frontier is the dual-queue (Q1/Q2) of Algorithm 1. The current
// frontier is read-only during an iteration while workers push next-
// iteration vertices into per-worker buffers; Advance merges the buffers
// and rolls the deduplication epoch, implementing lines 21-24 of the
// paper's listing without per-vertex clearing.
type Frontier struct {
	cur     []int32
	next    [][]int32
	seen    *bitset.EpochSet
	workers int
}

// NewFrontier creates a Frontier over vertex ids [0, n) for the given
// number of worker slots (at least 1).
func NewFrontier(n, workers int) *Frontier {
	if workers < 1 {
		workers = 1
	}
	next := make([][]int32, workers)
	return &Frontier{next: next, seen: bitset.NewEpochSet(n), workers: workers}
}

// Workers returns the number of per-worker push slots.
func (f *Frontier) Workers() int { return f.workers }

// Seed initializes the current frontier from items, deduplicating them.
// It must be called before the first iteration, not concurrently.
func (f *Frontier) Seed(items []int32) {
	f.cur = f.cur[:0]
	for _, v := range items {
		if f.seen.TryAdd(int(v)) {
			f.cur = append(f.cur, v)
		}
	}
	f.seen.NextEpoch()
}

// Push adds v to the next frontier if it is not already there. It is
// safe for concurrent use provided each worker passes its own index.
func (f *Frontier) Push(worker int, v int32) {
	if f.seen.TryAdd(int(v)) {
		f.next[worker] = append(f.next[worker], v)
	}
}

// Current returns the current frontier. The returned slice must be
// treated as read-only and is invalidated by Advance.
func (f *Frontier) Current() []int32 { return f.cur }

// Len returns the size of the current frontier.
func (f *Frontier) Len() int { return len(f.cur) }

// Advance merges the per-worker next buffers into the current frontier
// and opens a fresh deduplication epoch. It must not run concurrently
// with Push.
func (f *Frontier) Advance() {
	f.cur = f.cur[:0]
	for w := range f.next {
		f.cur = append(f.cur, f.next[w]...)
		f.next[w] = f.next[w][:0]
	}
	f.seen.NextEpoch()
}
