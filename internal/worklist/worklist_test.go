package worklist

import (
	"sort"
	"sync"
	"testing"
)

func TestFrontierSeedDedup(t *testing.T) {
	f := NewFrontier(10, 2)
	f.Seed([]int32{3, 1, 3, 3, 7, 1})
	got := append([]int32(nil), f.Current()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int32{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFrontierPushAdvance(t *testing.T) {
	f := NewFrontier(100, 4)
	f.Seed([]int32{0})
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
	// Push duplicates across workers; each id must appear once.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := int32(0); v < 50; v++ {
				f.Push(w, v)
			}
		}(w)
	}
	wg.Wait()
	f.Advance()
	if f.Len() != 50 {
		t.Fatalf("after Advance Len = %d, want 50", f.Len())
	}
	seen := map[int32]bool{}
	for _, v := range f.Current() {
		if seen[v] {
			t.Fatalf("duplicate %d in frontier", v)
		}
		seen[v] = true
	}
	// Next epoch allows re-push.
	f.Advance()
	if f.Len() != 0 {
		t.Fatalf("empty advance Len = %d", f.Len())
	}
	f.Push(0, 7)
	f.Advance()
	if f.Len() != 1 || f.Current()[0] != 7 {
		t.Fatalf("re-push failed: %v", f.Current())
	}
}

func TestFrontierWorkersFloor(t *testing.T) {
	f := NewFrontier(4, 0)
	if f.Workers() != 1 {
		t.Fatalf("Workers = %d, want 1", f.Workers())
	}
	f.Push(0, 2)
	f.Advance()
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFrontierManyIterations(t *testing.T) {
	// Simulate the extraction loop shape: repeated push/advance cycles
	// with overlapping ids, verifying per-epoch dedup.
	f := NewFrontier(1000, 3)
	f.Seed([]int32{0, 1, 2})
	for iter := 0; iter < 200; iter++ {
		cur := f.Current()
		var wg sync.WaitGroup
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for _, v := range cur {
					f.Push(w, (v+1)%1000)
					f.Push(w, (v+1)%1000) // duplicate on purpose
				}
			}(w)
		}
		wg.Wait()
		f.Advance()
		if f.Len() != len(cur) {
			t.Fatalf("iter %d: frontier grew from %d to %d despite dedup", iter, len(cur), f.Len())
		}
	}
}
