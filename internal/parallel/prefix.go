package parallel

// PrefixSum replaces x with its inclusive prefix sum in place and
// returns the total. Large inputs are scanned in parallel with the
// classic three-phase scheme: per-chunk sums, a serial scan of the
// chunk totals, then a per-chunk rescan with the chunk's base offset.
// It is the offset-construction primitive behind every CSR build.
func PrefixSum(x []int64) int64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	const minChunk = 1 << 15
	workers := WorkersFor(n, minChunk)
	if workers == 1 {
		var sum int64
		for i := range x {
			sum += x[i]
			x[i] = sum
		}
		return sum
	}
	sums := make([]int64, workers)
	ForChunks(n, workers, func(w, lo, hi int) {
		var sum int64
		for i := lo; i < hi; i++ {
			sum += x[i]
		}
		sums[w] = sum
	})
	var total int64
	for w := range sums {
		total, sums[w] = total+sums[w], total
	}
	ForChunks(n, workers, func(w, lo, hi int) {
		sum := sums[w]
		for i := lo; i < hi; i++ {
			sum += x[i]
			x[i] = sum
		}
	})
	return total
}

// Offsets builds a CSR offset array from per-item counts: the returned
// slice has len(deg)+1 entries with Offsets[0] = 0 and
// Offsets[i+1]-Offsets[i] = deg[i]. The counts slice is not modified.
func Offsets(deg []int64) []int64 {
	out := make([]int64, len(deg)+1)
	copy(out[1:], deg)
	PrefixSum(out[1:])
	return out
}
